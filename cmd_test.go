package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommands smoke-tests every binary end to end via `go run`. These
// are the integration points users touch first; each invocation checks
// both exit status and a load-bearing fragment of the output.
func TestCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("command smoke tests in -short mode")
	}
	dir := t.TempDir()
	cFile := filepath.Join(dir, "demo.c")
	if err := os.WriteFile(cFile, []byte(`
int mylen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
void set(char *p) { *p = 0; }
int partial(int c) {
    int x;
    if (c) x = 1;
    return x;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"cqual", []string{"run", "./cmd/cqual", "-v", "-suggest", cFile},
			[]string{"not-const", "int mylen(const char *s)", "inferrable const: 1"}},
		{"cqual-poly-schemes", []string{"run", "./cmd/cqual", "-poly", "-schemes", cFile},
			[]string{"∀", "⊑"}},
		{"cqual-uninit", []string{"run", "./cmd/cqual", "-uninit", cFile},
			[]string{`variable "x" may be used uninitialized`}},
		{"qlambda-expr", []string{"run", "./cmd/qlambda", "-spec", "nonzero", "-eval", "-e", "100 / (@nonzero (3 - 1))"},
			[]string{"type: int", "value: nonzero 50"}},
		{"qlambda-lattice", []string{"run", "./cmd/qlambda", "-spec", "figure2", "-lattice"},
			[]string{"rank 3: const dynamic", "rank 0: nonzero"}},
		{"benchgen", []string{"run", "./cmd/benchgen", "-out", dir, "-only", "woman-3.0a"},
			[]string{"woman-3.0a.c"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", c.args, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}

	// Verbose-mode marker: "+" flags the consts the programmer can add.
	out, err := exec.Command("go", "run", "./cmd/cqual", "-v", cFile).CombinedOutput()
	if err != nil {
		t.Fatalf("cqual -v: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "+ mylen") {
		t.Errorf("no addable-const marker:\n%s", out)
	}

	// Conflicts give exit status 1.
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(bad, []byte("void f(const char *s) { *s = 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/cqual", bad)
	outB, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("cqual on a const violation exited 0:\n%s", outB)
	}
	if !strings.Contains(string(outB), "conflict") {
		t.Errorf("conflict not reported:\n%s", outB)
	}

	// qlambda rejects qualifier conflicts with exit 1.
	cmd = exec.Command("go", "run", "./cmd/qlambda", "-spec", "const", "-e", "(@const ref 1) := 2")
	outB, err = cmd.CombinedOutput()
	if err == nil {
		t.Errorf("qlambda on a const violation exited 0:\n%s", outB)
	}

	// The examples all run to completion.
	for _, ex := range []string{"quickstart", "constcheck", "taint", "bindingtime", "nonzero", "flowcheck"} {
		ex := ex
		t.Run("example-"+ex, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+ex).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", ex)
			}
		})
	}
}
