package repro

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestCommands smoke-tests every binary end to end via `go run`. These
// are the integration points users touch first; each invocation checks
// both exit status and a load-bearing fragment of the output.
func TestCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("command smoke tests in -short mode")
	}
	dir := t.TempDir()
	cFile := filepath.Join(dir, "demo.c")
	if err := os.WriteFile(cFile, []byte(`
int mylen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
void set(char *p) { *p = 0; }
int partial(int c) {
    int x;
    if (c) x = 1;
    return x;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"cqual", []string{"run", "./cmd/cqual", "-v", "-suggest", cFile},
			[]string{"not-const", "int mylen(const char *s)", "inferrable const: 1"}},
		{"cqual-poly-schemes", []string{"run", "./cmd/cqual", "-poly", "-schemes", cFile},
			[]string{"∀", "⊑"}},
		{"cqual-uninit", []string{"run", "./cmd/cqual", "-uninit", cFile},
			[]string{`variable "x" may be used uninitialized`}},
		{"qlambda-expr", []string{"run", "./cmd/qlambda", "-spec", "nonzero", "-eval", "-e", "100 / (@nonzero (3 - 1))"},
			[]string{"type: int", "value: nonzero 50"}},
		{"qlambda-lattice", []string{"run", "./cmd/qlambda", "-spec", "figure2", "-lattice"},
			[]string{"rank 3: const dynamic", "rank 0: nonzero"}},
		{"benchgen", []string{"run", "./cmd/benchgen", "-out", dir, "-only", "woman-3.0a"},
			[]string{"woman-3.0a.c"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", c.args, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}

	// Verbose-mode marker: "+" flags the consts the programmer can add.
	out, err := exec.Command("go", "run", "./cmd/cqual", "-v", cFile).CombinedOutput()
	if err != nil {
		t.Fatalf("cqual -v: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "+ mylen") {
		t.Errorf("no addable-const marker:\n%s", out)
	}

	// Conflicts give exit status 1.
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(bad, []byte("void f(const char *s) { *s = 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/cqual", bad)
	outB, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("cqual on a const violation exited 0:\n%s", outB)
	}
	if !strings.Contains(string(outB), "conflict") {
		t.Errorf("conflict not reported:\n%s", outB)
	}

	// qlambda rejects qualifier conflicts with exit 1.
	cmd = exec.Command("go", "run", "./cmd/qlambda", "-spec", "const", "-e", "(@const ref 1) := 2")
	outB, err = cmd.CombinedOutput()
	if err == nil {
		t.Errorf("qlambda on a const violation exited 0:\n%s", outB)
	}

	// The examples all run to completion.
	for _, ex := range []string{"quickstart", "constcheck", "taint", "bindingtime", "nonzero", "flowcheck"} {
		ex := ex
		t.Run("example-"+ex, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+ex).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", ex)
			}
		})
	}
}

// buildCqual compiles the cqual binary once for the golden tests.
func buildCqual(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cqual")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/cqual").CombinedOutput()
	if err != nil {
		t.Fatalf("build cqual: %v\n%s", err, out)
	}
	return bin
}

// TestCqualGoldenDeterminism: cqual output over the whole constinfer
// testdata corpus is byte-identical between GOMAXPROCS=1 and the default
// parallel run, in every mode. This is the end-to-end determinism
// guarantee of the parallel constraint-generation stage.
func TestCqualGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	corpus, err := filepath.Glob("internal/constinfer/testdata/*.c")
	if err != nil || len(corpus) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(corpus))
	}
	bin := buildCqual(t)

	modes := [][]string{
		{"-v", "-suggest"},
		{"-poly", "-v", "-schemes", "-suggest"},
		{"-poly", "-simplify", "-json"},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(strings.Join(mode, ""), func(t *testing.T) {
			args := append(append([]string(nil), mode...), corpus...)

			serial := exec.Command(bin, args...)
			serial.Env = append(os.Environ(), "GOMAXPROCS=1")
			serialOut, err := serial.CombinedOutput()
			if err != nil {
				t.Fatalf("GOMAXPROCS=1: %v\n%s", err, serialOut)
			}

			parallel := exec.Command(bin, args...)
			parallel.Env = append(os.Environ(), "GOMAXPROCS=8")
			parallelOut, err := parallel.CombinedOutput()
			if err != nil {
				t.Fatalf("GOMAXPROCS=8: %v\n%s", err, parallelOut)
			}

			serialS, parallelS := string(serialOut), string(parallelOut)
			if strings.Contains(strings.Join(mode, " "), "json") {
				// Timings are wall-clock and legitimately differ.
				serialS = stripTimings(serialS)
				parallelS = stripTimings(parallelS)
			}
			if serialS != parallelS {
				t.Errorf("output differs between serial and parallel runs\n--- serial ---\n%s\n--- parallel ---\n%s",
					serialS, parallelS)
			}
		})
	}
}

// stripTimings removes the timings block from JSON output.
func stripTimings(s string) string {
	i := strings.Index(s, `"timings"`)
	if i < 0 {
		return s
	}
	end := strings.Index(s[i:], "}")
	if end < 0 {
		return s
	}
	return s[:i] + s[i+end+1:]
}

// TestCqualTaint: the taint analysis over the seeded examples/taint-c
// corpus reports every planted source→sink violation with its multi-hop
// flow trace, byte-identical across worker counts; -analyses lists the
// registry and an unknown -analysis is a usage error.
func TestCqualTaint(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	corpus, err := filepath.Glob("examples/taint-c/*.c")
	if err != nil || len(corpus) != 3 {
		t.Fatalf("taint corpus missing: %v (%d files)", err, len(corpus))
	}
	args := append([]string{"-analysis", "taint", "-prelude", "examples/taint-c/taint.q"}, corpus...)

	run := func(jobs string) string {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"-jobs", jobs}, args...)...).CombinedOutput()
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("want exit 1 on planted violations, got %v\n%s", err, out)
		}
		return string(out)
	}
	out := run("1")
	if !strings.Contains(out, "4 qualifier conflict(s):") {
		t.Errorf("planted violations not all found:\n%s", out)
	}
	// Every planted sink is reported, and the longest flow (network.c:
	// getenv → local → helper param → return → local → system) keeps its
	// full hop sequence.
	for _, want := range []string{
		`argument 1 of "printf" must be untainted`,
		`argument 1 of "system" must be untainted`,
		`result of "getenv" is tainted (prelude)`,
		`argument 1 of "fgets" is tainted`,
		"(function argument)",
		"(returned value)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "flow:"); got < 8 {
		t.Errorf("only %d flow hops rendered, want the full multi-hop traces:\n%s", got, out)
	}
	for _, jobs := range []string{"4", "8"} {
		if got := run(jobs); got != out {
			t.Errorf("-jobs %s differs from -jobs 1\n--- jobs 1 ---\n%s\n--- jobs %s ---\n%s", jobs, out, jobs, got)
		}
	}

	// The registry listing names every built-in analysis with its
	// vocabulary and lattice shape.
	list, err := exec.Command(bin, "-analyses").CombinedOutput()
	if err != nil {
		t.Fatalf("cqual -analyses: %v\n%s", err, list)
	}
	for _, want := range []string{
		"const", "taint", "unique", "fdstate",
		"tainted (seed)", "untainted (sink)", "negative",
		"borrowed (borrow)", "closed (seed)",
		"untainted ⊑ tainted", "unique ⊑ shared", "open ⊑ closed", "¬const ⊑ const",
	} {
		if !strings.Contains(string(list), want) {
			t.Errorf("-analyses listing missing %q:\n%s", want, list)
		}
	}

	// Unknown analyses are usage errors naming the registry.
	out2, err := exec.Command(bin, "-analysis", "leak", corpus[0]).CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("cqual -analysis leak: want exit 2, got %v\n%s", err, out2)
	}
	if !strings.Contains(string(out2), `unknown analysis "leak" (registered: const, fdstate, taint, unique)`) {
		t.Errorf("unknown-analysis error not helpful:\n%s", out2)
	}
}

// normalizeKappa rewrites solver-variable numbers (κ582) to a fixed
// token so golden comparisons pin the flow structure, not the
// allocation order of constraint variables.
func normalizeKappa(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], "κ") {
			b.WriteString("κ#")
			i += len("κ")
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// TestCqualGoTaint: the Go taint examples against their committed
// golden flow-trace output — the dirty twin reports both injection
// flows byte-identically at every worker count, the clean twin passes.
func TestCqualGoTaint(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	args := []string{"-lang", "go", "-analysis", "taint", "-prelude", "examples/go-taint/go.q"}

	run := func(jobs, pkg string, wantExit int) string {
		t.Helper()
		out, err := exec.Command(bin, append(append([]string{"-jobs", jobs}, args...), pkg)...).CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("cqual %s: %v\n%s", pkg, err, out)
		}
		if exit != wantExit {
			t.Fatalf("cqual %s: exit %d, want %d\n%s", pkg, exit, wantExit, out)
		}
		return string(out)
	}

	dirty := run("1", "./examples/go-taint/dirty", 1)
	golden, err := os.ReadFile("examples/go-taint/expected_dirty.txt")
	if err != nil {
		t.Fatal(err)
	}
	if normalizeKappa(dirty) != normalizeKappa(string(golden)) {
		t.Errorf("dirty output drifted from examples/go-taint/expected_dirty.txt\n--- got ---\n%s--- want ---\n%s", dirty, golden)
	}
	for _, jobs := range []string{"4", "8"} {
		if got := run(jobs, "./examples/go-taint/dirty", 1); got != dirty {
			t.Errorf("-jobs %s differs from -jobs 1 for -lang go\n%s", jobs, got)
		}
	}

	clean := run("1", "./examples/go-taint/clean", 0)
	if !strings.Contains(clean, "0 conflict") && strings.Contains(clean, "conflict(s):") {
		t.Errorf("clean twin reported conflicts:\n%s", clean)
	}
}

// TestCqualGoSelf: the flagship workload — the checker analyzing one of
// its own packages end to end with non-trivial statistics.
func TestCqualGoSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	out, err := exec.Command(bin, "-lang", "go", "./internal/qual").CombinedOutput()
	if err != nil {
		t.Fatalf("self-analysis failed: %v\n%s", err, out)
	}
	got := string(out)
	if !strings.Contains(got, "functions") || strings.Contains(got, " 0 functions") {
		t.Errorf("self-analysis stats empty or missing:\n%s", got)
	}
}

// TestCqualJSON: the -json flag emits a well-formed report.
func TestCqualJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	dir := t.TempDir()
	cFile := filepath.Join(dir, "demo.c")
	if err := os.WriteFile(cFile, []byte("int mylen(char *s) { return *s; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-json", "-poly", cFile).CombinedOutput()
	if err != nil {
		t.Fatalf("cqual -json: %v\n%s", err, out)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"files", "mode", "summary", "positions", "diagnostics", "timings"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("JSON output missing %q:\n%s", key, out)
		}
	}
	if doc["mode"] != "polymorphic" {
		t.Errorf("mode = %v", doc["mode"])
	}
}

// TestCqualJobsValidation: a negative worker count is a usage error.
func TestCqualJobsValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	dir := t.TempDir()
	cFile := filepath.Join(dir, "ok.c")
	if err := os.WriteFile(cFile, []byte("int f(int x) { return x; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-jobs", "-3", cFile).CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("cqual -jobs -3: want exit 2, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "-jobs must be >= 0") {
		t.Errorf("no usage error for negative -jobs:\n%s", out)
	}
}

// buildCquald compiles the daemon binary.
func buildCquald(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cquald")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/cquald").CombinedOutput()
	if err != nil {
		t.Fatalf("build cquald: %v\n%s", err, out)
	}
	return bin
}

// TestCqualdDaemonSmoke is the daemon end-to-end check: start cquald on a
// free port, analyze the corpus through `cqual -serve`, verify the report
// matches a local `cqual -json` run modulo timings, confirm the repeat
// request hits the result cache, and shut down gracefully with SIGTERM.
func TestCqualdDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test in -short mode")
	}
	corpus, err := filepath.Glob("internal/constinfer/testdata/*.c")
	if err != nil || len(corpus) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(corpus))
	}
	cqual := buildCqual(t)
	cquald := buildCquald(t)

	daemon := exec.Command(cquald, "-addr", "127.0.0.1:0")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// The daemon logs the resolved address (port 0 picks a free port).
	var addr string
	logs := bufio.NewScanner(stderr)
	for logs.Scan() {
		line := logs.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			addr = "http://" + strings.TrimPrefix(line[i:], "listening on http://")
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address: %v", logs.Err())
	}
	go func() { // drain so the daemon never blocks on a full pipe
		for logs.Scan() {
		}
	}()

	local, err := exec.Command(cqual, append([]string{"-json", "-poly"}, corpus...)...).Output()
	if err != nil {
		t.Fatalf("local cqual -json: %v", err)
	}
	remote1, err := exec.Command(cqual, append([]string{"-serve", addr, "-poly"}, corpus...)...).Output()
	if err != nil {
		t.Fatalf("cqual -serve (cold): %v", err)
	}
	if stripTimings(string(local)) != stripTimings(string(remote1)) {
		t.Fatalf("daemon report differs from local run\n--- local ---\n%s\n--- daemon ---\n%s", local, remote1)
	}

	// The repeat request is a result-cache hit: byte-identical, timings
	// and all, because the stored bytes are served verbatim.
	remote2, err := exec.Command(cqual, append([]string{"-serve", addr, "-poly"}, corpus...)...).Output()
	if err != nil {
		t.Fatalf("cqual -serve (warm): %v", err)
	}
	if string(remote1) != string(remote2) {
		t.Fatal("cache hit not byte-identical to cold response")
	}

	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Requests    uint64 `json:"requests"`
		Analyses    uint64 `json:"analyses"`
		ResultCache struct {
			Hits uint64 `json:"hits"`
		} `json:"result_cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Requests != 2 || metrics.Analyses != 1 || metrics.ResultCache.Hits != 1 {
		t.Fatalf("metrics = %+v; want 2 requests, 1 analysis, 1 hit", metrics)
	}

	// A conflicting program round-trips the exit status through the
	// daemon: 1, same as local cqual.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(bad, []byte("void f(const char *s) { *s = 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(cqual, "-serve", addr, bad).CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("conflict via -serve: want exit 1, got %v\n%s", err, out)
	}

	// Taint round-trip: the daemon runs the prelude-driven analysis,
	// reports the planted flow, and the warm repeat is byte-identical.
	taintArgs := []string{"-serve", addr, "-analysis", "taint", "-prelude", "examples/taint-c/taint.q",
		"examples/taint-c/format.c", "examples/taint-c/network.c", "examples/taint-c/buffer.c"}
	taint1, err := exec.Command(cqual, taintArgs...).Output()
	exitT, ok := err.(*exec.ExitError)
	if !ok || exitT.ExitCode() != 1 {
		t.Fatalf("taint via -serve (cold): want exit 1, got %v\n%s", err, taint1)
	}
	for _, want := range []string{`"analyses"`, "taint", "qualifier-conflict", `result of \"getenv\" is tainted`} {
		if !strings.Contains(string(taint1), want) {
			t.Errorf("daemon taint report missing %q:\n%s", want, taint1)
		}
	}
	taint2, err := exec.Command(cqual, taintArgs...).Output()
	if exitT, ok = err.(*exec.ExitError); !ok || exitT.ExitCode() != 1 {
		t.Fatalf("taint via -serve (warm): want exit 1, got %v", err)
	}
	if string(taint1) != string(taint2) {
		t.Fatal("warm taint response not byte-identical to cold")
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly on SIGTERM: %v", err)
	}
}

// TestCqualAllParseErrors: every bad input file is reported, not just the
// first, and the exit status is 2.
func TestCqualAllParseErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	dir := t.TempDir()
	bad1 := filepath.Join(dir, "bad1.c")
	bad2 := filepath.Join(dir, "bad2.c")
	missing := filepath.Join(dir, "missing.c")
	for _, f := range []string{bad1, bad2} {
		if err := os.WriteFile(f, []byte("int broken( {\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command(bin, bad1, bad2, missing)
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("want exit 2, got %v\n%s", err, out)
	}
	for _, want := range []string{"bad1.c", "bad2.c", "missing.c"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("error for %s not reported:\n%s", want, out)
		}
	}
}

// TestCqualUniqueC: the uniqueness analysis over its C example corpus
// against the committed golden flow traces. Three planted violations
// (aliased mutation, consuming a shared buffer, mutation after the
// conservative escape) are reported; the borrowing function recovers
// and stays clean.
func TestCqualUniqueC(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	args := []string{"-analysis", "unique", "-prelude", "examples/unique-c/unique.q", "examples/unique-c/registry.c"}

	run := func(jobs string) string {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"-jobs", jobs}, args...)...).CombinedOutput()
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("want exit 1 on planted violations, got %v\n%s", err, out)
		}
		return string(out)
	}
	out := run("1")
	golden, err := os.ReadFile("examples/unique-c/expected.txt")
	if err != nil {
		t.Fatal(err)
	}
	if normalizeKappa(out) != normalizeKappa(string(golden)) {
		t.Errorf("output drifted from examples/unique-c/expected.txt\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
	// The recovery rule: borrow_then_free writes and frees its buffer
	// after a borrow and must NOT be reported.
	if strings.Contains(out, "borrow_then_free") || !strings.Contains(out, "3 qualifier conflict(s):") {
		t.Errorf("recovery rule failed (borrowed call must not escape):\n%s", out)
	}
	for _, jobs := range []string{"4", "8"} {
		if got := run(jobs); got != out {
			t.Errorf("-jobs %s differs from -jobs 1\n%s", jobs, got)
		}
	}
}

// TestCqualFdstateC: the fd-state analysis over its C example corpus
// against the committed golden flow traces — a use-after-close and a
// returned closed descriptor, each with its flow through the close
// site; the delegated-close function stays clean.
func TestCqualFdstateC(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	args := []string{"-analysis", "fdstate", "-prelude", "examples/fdstate/fd.q", "examples/fdstate/server.c"}

	run := func(jobs string) string {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"-jobs", jobs}, args...)...).CombinedOutput()
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("want exit 1 on planted violations, got %v\n%s", err, out)
		}
		return string(out)
	}
	out := run("1")
	golden, err := os.ReadFile("examples/fdstate/expected.txt")
	if err != nil {
		t.Fatal(err)
	}
	if normalizeKappa(out) != normalizeKappa(string(golden)) {
		t.Errorf("output drifted from examples/fdstate/expected.txt\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
	if strings.Contains(out, "copy_request") || !strings.Contains(out, "returned from stale_handle") {
		t.Errorf("leak-on-return or clean-discipline check failed:\n%s", out)
	}
	for _, jobs := range []string{"4", "8"} {
		if got := run(jobs); got != out {
			t.Errorf("-jobs %s differs from -jobs 1\n%s", jobs, got)
		}
	}
}

// TestCqualGoFdstate: the Go fd-state examples against their committed
// golden flow traces — receiver annotations ("recv: closed") seed and
// sink through os.File methods; the clean twin delegates Close and
// passes.
func TestCqualGoFdstate(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	args := []string{"-lang", "go", "-analysis", "fdstate", "-prelude", "examples/go-fdstate/fd.q"}

	run := func(jobs, pkg string, wantExit int) string {
		t.Helper()
		out, err := exec.Command(bin, append(append([]string{"-jobs", jobs}, args...), pkg)...).CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("cqual %s: %v\n%s", pkg, err, out)
		}
		if exit != wantExit {
			t.Fatalf("cqual %s: exit %d, want %d\n%s", pkg, exit, wantExit, out)
		}
		return string(out)
	}

	dirty := run("1", "./examples/go-fdstate/dirty", 1)
	golden, err := os.ReadFile("examples/go-fdstate/expected_dirty.txt")
	if err != nil {
		t.Fatal(err)
	}
	if normalizeKappa(dirty) != normalizeKappa(string(golden)) {
		t.Errorf("dirty output drifted from examples/go-fdstate/expected_dirty.txt\n--- got ---\n%s--- want ---\n%s", dirty, golden)
	}
	for _, want := range []string{
		`receiver of "os.File.Read" must be open`,
		`receiver of "os.File.Close" is closed`,
		"returned from repro/examples/go-fdstate/dirty.staleHandle",
	} {
		if !strings.Contains(dirty, want) {
			t.Errorf("dirty output missing %q:\n%s", want, dirty)
		}
	}
	for _, jobs := range []string{"4", "8"} {
		if got := run(jobs, "./examples/go-fdstate/dirty", 1); got != dirty {
			t.Errorf("-jobs %s differs from -jobs 1\n%s", jobs, got)
		}
	}
	run("1", "./examples/go-fdstate/clean", 0)
}

// TestCqualLint: lint mode renders findings as
// "file:line:col: analysis: message", emits stable rule ids in JSON,
// and the baseline turns the exit status incremental — the dogfood
// gate's negative test: a synthetic new conflict fails the run even
// under the old baseline.
func TestCqualLint(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "app.c")
	if err := os.WriteFile(src, []byte(`extern char *getenv(char *name);
extern int system(const char *cmd);
int run(void) {
    char *cmd = getenv("CMD");
    return system(cmd);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-analysis", "taint", "-prelude", "examples/taint-c/taint.q"}

	// Plain lint: one finding line per conflict, vet-shaped, exit 1.
	out, err := exec.Command(bin, append(append([]string{"-lint"}, args...), src)...).CombinedOutput()
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("cqual -lint: want exit 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "app.c:5:19: taint: qualifier {tainted} does not fit under bound {untainted}") {
		t.Errorf("lint line not in file:line:col: analysis: message form:\n%s", out)
	}

	// JSON findings carry the stable rule id; redirected output is the
	// baseline file format.
	baseline := filepath.Join(dir, "lint-baseline.json")
	jout, err := exec.Command(bin, append(append([]string{"-lint", "-json"}, args...), src)...).Output()
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("cqual -lint -json: want exit 1, got %v\n%s", err, jout)
	}
	if !strings.Contains(string(jout), `"rule": "taint-conflict"`) {
		t.Errorf("lint JSON missing stable rule id:\n%s", jout)
	}
	if err := os.WriteFile(baseline, jout, 0o644); err != nil {
		t.Fatal(err)
	}

	// Under the baseline the same findings are suppressed: exit 0.
	out, err = exec.Command(bin, append(append([]string{"-lint", "-baseline", baseline}, args...), src)...).CombinedOutput()
	if err != nil {
		t.Fatalf("cqual -lint -baseline: want exit 0 on baselined findings, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 new finding(s), 1 suppressed") {
		t.Errorf("baseline summary missing:\n%s", out)
	}

	// The negative test: a synthetic new conflict must fail the gate.
	if err := os.WriteFile(src, []byte(`extern char *getenv(char *name);
extern int system(const char *cmd);
extern int printf(const char *fmt);
int run(void) {
    char *cmd = getenv("CMD");
    return system(cmd);
}
int shout(void) {
    char *msg = getenv("MSG");
    return printf(msg);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, append(append([]string{"-lint", "-baseline", baseline}, args...), src)...).CombinedOutput()
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("baseline gate: want exit 1 on a new conflict, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `"printf" must be untainted`) || strings.Contains(string(out), `"system" must be untainted`) {
		t.Errorf("gate must report exactly the new finding (printf), suppressing the baselined one (system):\n%s", out)
	}
}

// TestCqualGoPolyError: -lang go -poly names the limitation and where
// its resolution is tracked instead of a bare rejection.
func TestCqualGoPolyError(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	out, err := exec.Command(bin, "-lang", "go", "-poly", "./examples/go-taint/clean").CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("cqual -lang go -poly: want exit 2, got %v\n%s", err, out)
	}
	for _, want := range []string{"monomorphic", "ROADMAP item 3"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("-lang go -poly error missing %q:\n%s", want, out)
		}
	}
}

// TestCqualDogfood is the CI dogfood gate run locally: cqual analyzes
// this repository's own internal packages through the Go front end,
// and the committed lint-baseline.json must account for every finding.
// If this fails after an intentional change, regenerate with:
//
//	go run ./cmd/cqual -lang go -lint -json -analysis const,taint \
//	    -prelude examples/go-taint/go.q ./internal/... > lint-baseline.json
func TestCqualDogfood(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI tests in -short mode")
	}
	bin := buildCqual(t)
	out, err := exec.Command(bin, "-lang", "go", "-lint",
		"-analysis", "const,taint", "-prelude", "examples/go-taint/go.q",
		"-baseline", "lint-baseline.json", "./internal/...").CombinedOutput()
	if err != nil {
		t.Fatalf("dogfood gate failed — new findings over lint-baseline.json (see test doc to refresh): %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 new finding(s)") {
		t.Errorf("gate summary missing:\n%s", out)
	}
}
