// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (Section 4.4) as testing.B benchmarks:
//
//   - BenchmarkTable1Generate — producing the benchmark programs of Table 1;
//   - BenchmarkTable2Compile  — the "Compile time" column (parsing);
//   - BenchmarkTable2Mono     — the "Mono time" column;
//   - BenchmarkTable2Poly     — the "Poly time" column;
//   - BenchmarkFigure6        — the full pipeline behind Figure 6;
//
// plus ablations for the design choices DESIGN.md calls out:
//
//   - BenchmarkAblationPolyFull      — polymorphic inference without
//     scheme simplification (whole-SCC constraint replay);
//   - BenchmarkAblationPolyRec       — polymorphic recursion;
//   - BenchmarkAblationLambdaPoly    — mono vs poly on the example
//     language (generated programs);
//   - BenchmarkSolverScaling         — the atomic-subtyping solver alone;
//   - BenchmarkGoFrontSelf           — the Go front end analyzing one of
//     this repository's own packages (the self-analysis workload).
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/cfront"
	"repro/internal/constinfer"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/experiment"
	_ "repro/internal/gofront"
	"repro/internal/lambda"
	"repro/internal/progen"
	"repro/internal/qual"
)

// suite caches generated sources and parsed files across benchmarks.
type suiteEntry struct {
	cfg  benchgen.Config
	src  string
	file *cfront.File
}

var suiteCache []suiteEntry

func suite(b *testing.B) []suiteEntry {
	b.Helper()
	if suiteCache != nil {
		return suiteCache
	}
	for _, cfg := range benchgen.PaperSuite() {
		src := benchgen.Generate(cfg)
		f, err := cfront.Parse(cfg.Name+".c", src)
		if err != nil {
			b.Fatalf("%s: %v", cfg.Name, err)
		}
		suiteCache = append(suiteCache, suiteEntry{cfg: cfg, src: src, file: f})
	}
	return suiteCache
}

func BenchmarkTable1Generate(b *testing.B) {
	for _, cfg := range benchgen.PaperSuite() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := benchgen.Generate(cfg)
				if len(src) == 0 {
					b.Fatal("empty program")
				}
			}
		})
	}
}

func BenchmarkTable2Compile(b *testing.B) {
	for _, e := range suite(b) {
		e := e
		b.Run(e.cfg.Name, func(b *testing.B) {
			b.SetBytes(int64(len(e.src)))
			for i := 0; i < b.N; i++ {
				if _, err := cfront.Parse(e.cfg.Name+".c", e.src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2Mono(b *testing.B) {
	for _, e := range suite(b) {
		e := e
		b.Run(e.cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := constinfer.Analyze([]*cfront.File{e.file}, constinfer.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Conflicts) > 0 {
					b.Fatal("conflicts")
				}
			}
		})
	}
}

func BenchmarkTable2Poly(b *testing.B) {
	for _, e := range suite(b) {
		e := e
		b.Run(e.cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := constinfer.Analyze([]*cfront.File{e.file},
					constinfer.Options{Poly: true, Simplify: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Conflicts) > 0 {
					b.Fatal("conflicts")
				}
			}
		})
	}
}

// benchDriver runs the staged pipeline over the whole multi-file paper
// suite with a fixed worker count; the serial/parallel pair below
// measures the constraint-generation speedup on multi-core hosts.
func benchDriver(b *testing.B, jobs int) {
	entries := suite(b)
	files := make([]*cfront.File, len(entries))
	for i, e := range entries {
		files[i] = e.file
	}
	cfg := driver.Config{
		Options: constinfer.Options{Poly: true, Simplify: true},
		Jobs:    jobs,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := driver.RunFiles(cfg, files)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report == nil || res.HasErrors() {
			b.Fatalf("driver errors: %v", res.Diagnostics)
		}
	}
}

// BenchmarkDriverSerial is the staged pipeline with a single
// constraint-generation worker.
func BenchmarkDriverSerial(b *testing.B) { benchDriver(b, 1) }

// BenchmarkDriverParallel is the same pipeline with a GOMAXPROCS-bounded
// worker pool; with ≥4 cores it should beat BenchmarkDriverSerial while
// producing byte-identical output (see TestCqualGoldenDeterminism).
func BenchmarkDriverParallel(b *testing.B) { benchDriver(b, 0) }

// BenchmarkGoFrontSelf is the Go front end's flagship workload: the
// checker analyzing its own constraint-solver package end to end
// (load, type-check, θ translation, constrain, solve, classify).
func BenchmarkGoFrontSelf(b *testing.B) {
	cfg := driver.Config{Lang: "go"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := driver.Run(cfg, []driver.Source{{Path: "./internal/constraint"}})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report == nil || res.Report.Functions == 0 {
			b.Fatalf("self-analysis produced no report: %v", res.Diagnostics)
		}
	}
}

// BenchmarkFigure6 runs the complete experiment pipeline (generate, parse,
// mono, poly, render) for the two smallest benchmarks, the unit of work
// behind one bar of Figure 6.
func BenchmarkFigure6(b *testing.B) {
	cfgs := benchgen.PaperSuite()[:2]
	for i := 0; i < b.N; i++ {
		var results []*experiment.Result
		for _, cfg := range cfgs {
			r, err := experiment.Run(cfg, constinfer.Options{Simplify: true})
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
		if out := experiment.Figure6(results); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkAblationPolyFull measures polymorphic inference without the
// Section 6 scheme simplification: schemes replay their whole SCC
// fragment at every instantiation.
func BenchmarkAblationPolyFull(b *testing.B) {
	for _, e := range suite(b)[:4] { // the larger two take seconds per op
		e := e
		b.Run(e.cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := constinfer.Analyze([]*cfront.File{e.file},
					constinfer.Options{Poly: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPolyRec measures the polymorphic-recursion extension.
func BenchmarkAblationPolyRec(b *testing.B) {
	for _, e := range suite(b)[:4] {
		e := e
		b.Run(e.cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := constinfer.Analyze([]*cfront.File{e.file},
					constinfer.Options{Poly: true, PolyRec: true, Simplify: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLambdaPoly compares monomorphic and polymorphic
// qualifier inference on generated programs of the example language.
func BenchmarkAblationLambdaPoly(b *testing.B) {
	spec := core.ConstSpec()
	g := progen.New(2024, progen.Config{MaxDepth: 8, Annotate: []string{"const"}})
	progs := make([]lambda.Expr, 40)
	for i := range progs {
		progs[i] = g.Program()
	}
	for _, mono := range []bool{false, true} {
		name := "poly"
		if mono {
			name = "mono"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range progs {
					c := spec.NewChecker()
					c.Monomorphic = mono
					if _, err := c.Check(nil, p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// solverBenchSet is the product lattice the solver benchmarks run over:
// two components, so masked edges and condensation classes are exercised.
func solverBenchSet() *qual.Set {
	return qual.MustSet(
		qual.Qualifier{Name: "const", Sign: qual.Positive},
		qual.Qualifier{Name: "tainted", Sign: qual.Positive},
	)
}

// solverBenchSetWide is an eight-analysis product lattice, the
// multi-analysis registry shape: each analysis masks its constraints to
// its own lattice component, so condensation classes carry real work.
func solverBenchSetWide() *qual.Set {
	quals := make([]qual.Qualifier, 8)
	for i := range quals {
		quals[i] = qual.Qualifier{Name: fmt.Sprintf("q%d", i), Sign: qual.Positive}
	}
	return qual.MustSet(quals...)
}

// BenchmarkSolverScaling measures the atomic-subtyping solver — the core
// [HR97] operation — on generated graphs of varying ⊑-cycle density.
// cycles=0.0 is the classic seeded-chain case; higher densities are what
// the condensed engine collapses. The analyses=8 shape is the headline:
// long recursion cycles local to one analysis of a wide product lattice,
// where the per-edge fixpoint circulates every seed around every cycle
// while the condensed engine solves each cycle as a single node.
func BenchmarkSolverScaling(b *testing.B) {
	set := solverBenchSet()
	for _, size := range []int{1000, 10000, 100000} {
		for _, frac := range []float64{0, 0.5, 0.9} {
			b.Run(fmt.Sprintf("n=%d/cycles=%.1f", size, frac), func(b *testing.B) {
				sys, _ := benchgen.CycleSystem(set, benchgen.CycleConfig{
					Vars:       size,
					CycleFrac:  frac,
					CycleLen:   8,
					CrossEdges: size / 4,
					MaskedFrac: 0.2,
					Seed:       int64(size),
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if errs := sys.Solve(); errs != nil {
						b.Fatal("unsat")
					}
				}
			})
		}
	}
	// Shared flow graph (full-mask edges — every analysis rides the same
	// value-flow edges), per-analysis seeds: one wave per component for a
	// per-edge fixpoint, a single sweep for the condensed engine.
	wide := solverBenchSetWide()
	for _, size := range []int{10000, 100000} {
		for _, frac := range []float64{0.5, 0.9} {
			b.Run(fmt.Sprintf("analyses=8/n=%d/cycles=%.1f", size, frac), func(b *testing.B) {
				sys, _ := benchgen.CycleSystem(wide, benchgen.CycleConfig{
					Vars:       size,
					CycleFrac:  frac,
					CycleLen:   64,
					CrossEdges: size / 4,
					Seeds:      size / 4,
					Bounds:     size / 4,
					BitSeeds:   true,
					Seed:       int64(size),
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if errs := sys.Solve(); errs != nil {
						b.Fatal("unsat")
					}
				}
			})
		}
	}
	// Analysis-local flow (structure-level masks): cycles live inside one
	// analysis's lattice component, the shape per-class condensation
	// collapses without touching the other components.
	for _, size := range []int{100000} {
		b.Run(fmt.Sprintf("analyses=8/local/n=%d/cycles=0.9", size), func(b *testing.B) {
			sys, _ := benchgen.CycleSystem(wide, benchgen.CycleConfig{
				Vars:        size,
				CycleFrac:   0.9,
				CycleLen:    64,
				CrossEdges:  size / 4,
				Seeds:       size / 4,
				Bounds:      size / 4,
				MaskedFrac:  0.95,
				StructMasks: true,
				BitSeeds:    true,
				Seed:        int64(size),
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if errs := sys.Solve(); errs != nil {
					b.Fatal("unsat")
				}
			}
		})
	}
}

// BenchmarkDeltaWarmResolve compares a cold solve of the n=20k cycle
// workload against a retained constraint.Session re-solving it after a
// one-fragment edit (the delta re-solve engine's headline case; see
// experiment.MeasureDelta and BENCH_6.json). System construction is
// excluded on both sides.
func BenchmarkDeltaWarmResolve(b *testing.B) {
	const (
		n        = 20000
		fragSize = 64
	)
	set := solverBenchSet()
	gen, _ := benchgen.CycleSystem(set, benchgen.CycleConfig{
		Vars:       n,
		CycleFrac:  0.5,
		CycleLen:   8,
		CrossEdges: n / 4,
		MaskedFrac: 0.2,
		Seed:       n,
	})
	cons := gen.Constraints()
	nv := gen.NumVars()
	nfrags := (len(cons) + fragSize - 1) / fragSize
	editFrag := nfrags / 2
	// build replays the generated constraints into a fresh system; ver > 0
	// renames the edit fragment's key, which a retained session sees as
	// one function's constraints removed and re-added.
	build := func(ver int) (*constraint.System, []constraint.FragmentSpan) {
		sys := constraint.NewSystem(set)
		for i := 0; i < nv; i++ {
			sys.Fresh()
		}
		var spans []constraint.FragmentSpan
		for i := 0; i < nfrags; i++ {
			start, end := i*fragSize, (i+1)*fragSize
			if end > len(cons) {
				end = len(cons)
			}
			at := sys.NumConstraints()
			for _, c := range cons[start:end] {
				sys.AddMasked(c.L, c.R, c.Mask, c.Why)
			}
			key := fmt.Sprintf("frag:%d", i)
			if i == editFrag && ver > 0 {
				key = fmt.Sprintf("frag:%d@%d", i, ver)
			}
			spans = append(spans, constraint.FragmentSpan{Key: key, Start: at, End: sys.NumConstraints()})
		}
		return sys, spans
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, _ := build(0)
			b.StartTimer()
			if errs := sys.Solve(); errs != nil {
				b.Fatal("unsat")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ss := constraint.NewSession(set)
		first, spans := build(0)
		ss.Solve(first, spans) // retained baseline
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, spans := build(i + 1)
			b.StartTimer()
			if errs := ss.Solve(sys, spans); errs != nil {
				b.Fatal("unsat")
			}
			if d := ss.Delta(); !d.Applied {
				b.Fatalf("warm round fell back: %+v", d)
			}
		}
	})
}

// BenchmarkRestrictScaling measures the scheme-simplification projection
// (constraint.Restrict) on cycle-heavy graphs: the let-generalization hot
// path of polymorphic inference.
func BenchmarkRestrictScaling(b *testing.B) {
	set := solverBenchSet()
	for _, size := range []int{2000, 20000} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			sys, iface := benchgen.CycleSystem(set, benchgen.CycleConfig{
				Vars:       size,
				CycleFrac:  0.8,
				CycleLen:   8,
				CrossEdges: size / 4,
				MaskedFrac: 0.2,
				Seed:       int64(size),
			})
			cons := sys.Constraints()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := constraint.Restrict(set, cons, iface); len(out) == 0 {
					b.Fatal("empty projection")
				}
			}
		})
	}
}
