// Command qlambda checks (and optionally runs) programs of the paper's
// example language under a chosen qualifier system.
//
// Usage:
//
//	qlambda [-spec name] [-mono] [-eval] [-lattice] [-trace FILE] (-e 'expr' | file.q)
//
// Built-in specs: const, nonzero, bindingtime, taint, figure2. The
// -lattice flag prints the spec's qualifier lattice as a Hasse diagram
// (Figure 2 of the paper for -spec figure2).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/eval"
	"repro/internal/obs"
)

func main() {
	specName := flag.String("spec", "const", "qualifier spec: const, nonzero, bindingtime, taint, figure2")
	mono := flag.Bool("mono", false, "disable qualifier polymorphism")
	doEval := flag.Bool("eval", false, "evaluate the program under the Figure-5 semantics")
	lattice := flag.Bool("lattice", false, "print the qualifier lattice and exit")
	exprText := flag.String("e", "", "program text (instead of a file)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline to this file")
	flag.Parse()

	spec, err := core.Lookup(*specName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qlambda:", err)
		os.Exit(2)
	}

	if *lattice {
		fmt.Printf("qualifier lattice for %q (%s):\n", spec.Name, spec.Doc)
		fmt.Print(spec.Set.HasseDiagram())
		return
	}

	src := *exprText
	file := "<cmdline>"
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: qlambda [-spec name] [-mono] [-eval] (-e 'expr' | file.q)")
			os.Exit(2)
		}
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlambda:", err)
			os.Exit(2)
		}
		src = string(data)
	}

	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(nil)
		ctx = obs.WithTracer(ctx, tracer)
	}
	res := driver.RunLambdaContext(ctx, driver.LambdaConfig{
		Spec:        spec,
		Monomorphic: *mono,
		Eval:        *doEval,
	}, file, src)
	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err == nil {
			err = tracer.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlambda:", err)
			os.Exit(2)
		}
	}

	var conflicts, others []driver.Diagnostic
	for _, d := range res.Diagnostics {
		if d.Severity != driver.SevError {
			continue
		}
		if d.Code == "qualifier-conflict" {
			conflicts = append(conflicts, d)
		} else {
			others = append(others, d)
		}
	}
	for _, d := range others {
		switch d.Stage {
		case driver.StageParse:
			fmt.Fprintln(os.Stderr, "qlambda:", d.Message)
			os.Exit(2)
		case driver.StageConstrain:
			fmt.Fprintln(os.Stderr, "qlambda: type error:", d.Message)
			os.Exit(1)
		}
	}
	if len(conflicts) > 0 {
		fmt.Fprintf(os.Stderr, "qlambda: %d qualifier conflict(s):\n", len(conflicts))
		for _, d := range conflicts {
			fmt.Fprintln(os.Stderr, "  "+explain(d))
		}
		os.Exit(1)
	}
	fmt.Printf("type: %s\n", res.Type.FormatSolved(spec.Set, res.Checker.Sys))

	if *doEval {
		for _, d := range others {
			if d.Stage == driver.StageEval {
				fmt.Fprintln(os.Stderr, "qlambda: runtime:", d.Message)
				os.Exit(1)
			}
		}
		fmt.Printf("value: %s\n", eval.Format(spec.Set, res.Value))
	}
}

// explain renders a conflict diagnostic in the traditional Explain form:
// the bound violation followed by the flow path.
func explain(d driver.Diagnostic) string {
	s := d.Message
	if d.Pos != "" {
		s += " at " + d.Pos
	}
	for _, f := range d.Flow {
		s += "\n\tflow: " + f.Note
		if f.Pos != "" {
			s += " (" + f.Pos + ")"
		}
	}
	return s
}
