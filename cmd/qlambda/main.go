// Command qlambda checks (and optionally runs) programs of the paper's
// example language under a chosen qualifier system.
//
// Usage:
//
//	qlambda [-spec name] [-mono] [-eval] [-lattice] (-e 'expr' | file.q)
//
// Built-in specs: const, nonzero, bindingtime, taint, figure2. The
// -lattice flag prints the spec's qualifier lattice as a Hasse diagram
// (Figure 2 of the paper for -spec figure2).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lambda"
)

func main() {
	specName := flag.String("spec", "const", "qualifier spec: const, nonzero, bindingtime, taint, figure2")
	mono := flag.Bool("mono", false, "disable qualifier polymorphism")
	doEval := flag.Bool("eval", false, "evaluate the program under the Figure-5 semantics")
	lattice := flag.Bool("lattice", false, "print the qualifier lattice and exit")
	exprText := flag.String("e", "", "program text (instead of a file)")
	flag.Parse()

	spec, err := core.Lookup(*specName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qlambda:", err)
		os.Exit(2)
	}

	if *lattice {
		fmt.Printf("qualifier lattice for %q (%s):\n", spec.Name, spec.Doc)
		fmt.Print(spec.Set.HasseDiagram())
		return
	}

	src := *exprText
	file := "<cmdline>"
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: qlambda [-spec name] [-mono] [-eval] (-e 'expr' | file.q)")
			os.Exit(2)
		}
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlambda:", err)
			os.Exit(2)
		}
		src = string(data)
	}

	prog, err := lambda.Parse(file, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qlambda:", err)
		os.Exit(2)
	}

	checker := spec.NewChecker()
	checker.Monomorphic = *mono
	res, err := checker.Check(nil, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qlambda: type error:", err)
		os.Exit(1)
	}
	if len(res.Conflicts) > 0 {
		fmt.Fprintf(os.Stderr, "qlambda: %d qualifier conflict(s):\n", len(res.Conflicts))
		for _, c := range res.Conflicts {
			fmt.Fprintln(os.Stderr, "  "+c.Explain(spec.Set))
		}
		os.Exit(1)
	}
	fmt.Printf("type: %s\n", res.Type.FormatSolved(spec.Set, res.Sys))

	if *doEval {
		v, err := spec.Run(file, src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qlambda: runtime:", err)
			os.Exit(1)
		}
		fmt.Printf("value: %s\n", eval.Format(spec.Set, v))
	}
}
