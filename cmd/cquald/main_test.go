package main

import (
	"testing"
	"time"
)

// TestParseSLOs pins the -slo flag grammar: comma-separated
// endpoint=duration pairs, nil for an empty flag (server default), and
// rejection of malformed or non-positive objectives.
func TestParseSLOs(t *testing.T) {
	if slos, err := parseSLOs(""); err != nil || slos != nil {
		t.Errorf("empty flag: got %v, %v; want nil, nil", slos, err)
	}

	slos, err := parseSLOs("analyze=250ms, metrics=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 || slos["analyze"] != 250*time.Millisecond || slos["metrics"] != 50*time.Millisecond {
		t.Errorf("parsed %v, want analyze=250ms metrics=50ms", slos)
	}

	for _, bad := range []string{"analyze", "=250ms", "analyze=", "analyze=fast", "analyze=-1s", "analyze=0s", "analyze=250ms,,"} {
		if _, err := parseSLOs(bad); err == nil {
			t.Errorf("parseSLOs(%q) accepted, want error", bad)
		}
	}
}
