package main

// -watch mode: the delta re-solve engine's local front door. Instead of
// serving HTTP, the daemon walks a directory tree for the active front
// end's source files (stdlib only — filepath.WalkDir plus mtime/size
// stamps, no platform notification APIs) and re-analyzes through one
// retained driver.Session whenever a file appears, changes, or
// disappears. Each run prints the conflict diagnostics with their
// step-by-step flow paths and a one-line delta summary: what the
// retained session reused and how much of the constraint graph the
// edit actually dirtied.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/constinfer"
	"repro/internal/driver"
	"repro/internal/obs"
)

// watchOptions carries the cqual-style mode flags into watch mode.
type watchOptions struct {
	poly, polyrec, simplify, uninit bool
	jobs, solveJobs                 int
	lang                            string // front-end language ("" = c)
	analyses                        string // comma-separated
	preludes                        string // comma-separated file paths
}

// runWatchMode validates the flags, builds the fixed session config, and
// runs the poll loop until SIGINT/SIGTERM. Returns the process exit
// status.
func runWatchMode(dir string, interval time.Duration, opts watchOptions) int {
	if info, err := os.Stat(dir); err != nil || !info.IsDir() {
		fmt.Fprintf(os.Stderr, "cquald: -watch %s: not a directory\n", dir)
		return 2
	}
	if interval <= 0 {
		fmt.Fprintln(os.Stderr, "cquald: -watch-interval must be positive")
		return 2
	}
	var analyses []string
	for _, part := range strings.Split(opts.analyses, ",") {
		if part = strings.TrimSpace(part); part != "" {
			analyses = append(analyses, part)
		}
	}
	for _, name := range analyses {
		if _, ok := analysis.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "cquald: unknown analysis %q (registered: %s)\n",
				name, strings.Join(analysis.Names(), ", "))
			return 2
		}
	}
	var preludes []driver.PreludeFile
	for _, path := range strings.Split(opts.preludes, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cquald:", err)
			return 2
		}
		preludes = append(preludes, driver.PreludeFile{Path: path, Text: string(text)})
	}
	fe, ok := driver.LookupFrontEnd(opts.lang)
	if !ok {
		fmt.Fprintf(os.Stderr, "cquald: unknown language %q (registered: %s)\n",
			opts.lang, strings.Join(driver.FrontEndLangs(), ", "))
		return 2
	}
	cfg := driver.Config{
		Options: constinfer.Options{
			Poly:     opts.poly || opts.polyrec,
			PolyRec:  opts.polyrec,
			Simplify: opts.simplify,
		},
		Jobs:      opts.jobs,
		SolveJobs: opts.solveJobs,
		Lang:      fe.Lang(),
		Uninit:    opts.uninit,
		Analyses:  analyses,
		Preludes:  preludes,
	}
	if err := fe.Check(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cquald:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("cquald: watching %s every %v (lang %s, mode %s)\n", dir, interval, fe.Lang(), cfg.Mode())
	w := newWatcher(dir, cfg, os.Stdout)
	w.exts = fe.Extensions()
	// Watch mode serves no HTTP, so the journal's mirror is its only
	// outlet: every re-analysis event becomes a structured slog line on
	// stderr, keeping stdout reserved for the human report.
	w.journal.SetMirror(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	if err := w.run(ctx, interval); err != nil {
		fmt.Fprintln(os.Stderr, "cquald: watch:", err)
		return 1
	}
	fmt.Printf("cquald: watch: %d poll(s), %d re-analysis(es), %d front-end failure(s)\n",
		w.polls.Value(), w.reanalyses.Value(), w.feFailures.Value())
	return 0
}

// fileStamp is the change detector for one source file. Content is not
// hashed here: a stale mtime+size pair only costs one redundant
// analysis, which the session then mostly reuses anyway.
type fileStamp struct {
	mod  time.Time
	size int64
}

// watcher polls one directory and feeds changed source sets through a
// retained analysis session. It carries its own metrics registry and
// event journal — watch mode serves no HTTP, so the journal's mirror
// (structured slog lines on stderr in production) is how the events
// get out, and the counters are read directly by tests and by the
// shutdown summary.
type watcher struct {
	dir  string
	sess *driver.Session
	out  io.Writer
	exts []string // source extensions claimed by the front end
	seen map[string]fileStamp
	runs int

	reg        *obs.Registry
	journal    *obs.Journal
	polls      *obs.Counter // watch iterations (scan attempts)
	reanalyses *obs.Counter // polls that ran the pipeline
	feFailures *obs.Counter // runs the front end rejected
}

func newWatcher(dir string, cfg driver.Config, out io.Writer) *watcher {
	reg := obs.NewRegistry()
	return &watcher{
		dir:     dir,
		sess:    driver.NewSession(cfg),
		out:     out,
		exts:    []string{".c"},
		seen:    make(map[string]fileStamp),
		reg:     reg,
		journal: obs.NewJournal(0),
		polls: reg.NewCounter("cquald_watch_polls_total",
			"Watch-mode scan iterations, changed or not."),
		reanalyses: reg.NewCounter("cquald_watch_reanalyses_total",
			"Watch-mode analysis runs triggered by source changes."),
		feFailures: reg.NewCounter("cquald_watch_frontend_failures_total",
			"Watch-mode runs rejected by the front end (session state retained)."),
	}
}

// skipWatchDir reports whether a subdirectory is outside the corpus:
// hidden, underscore-prefixed, vendored, or test fixtures — the same
// set the go tool ignores.
func skipWatchDir(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "vendor" || name == "testdata"
}

// scan stamps every source file under the watched tree whose extension
// the active front end claims and reports whether the set differs from
// the last scan.
func (w *watcher) scan() (paths []string, changed bool, err error) {
	now := make(map[string]fileStamp)
	err = filepath.WalkDir(w.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if path == w.dir {
				return err
			}
			return nil // a subtree vanished mid-walk; next poll settles it
		}
		if d.IsDir() {
			if path != w.dir && skipWatchDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		ext := filepath.Ext(d.Name())
		claimed := false
		for _, e := range w.exts {
			if ext == e {
				claimed = true
				break
			}
		}
		if !claimed || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // deleted between WalkDir and Stat; next poll settles it
		}
		now[path] = fileStamp{mod: info.ModTime(), size: info.Size()}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	sort.Strings(paths)
	if len(now) != len(w.seen) {
		changed = true
	} else {
		for p, st := range now {
			if w.seen[p] != st {
				changed = true
				break
			}
		}
	}
	w.seen = now
	return paths, changed, nil
}

// poll runs one scan-and-maybe-analyze step; it reports whether an
// analysis ran.
func (w *watcher) poll(ctx context.Context) (bool, error) {
	w.polls.Inc()
	paths, changed, err := w.scan()
	if err != nil {
		return false, err
	}
	if !changed {
		return false, nil
	}
	w.runs++
	if len(paths) == 0 {
		fmt.Fprintf(w.out, "watch: no %s files in %s\n", strings.Join(w.exts, "/"), w.dir)
		return false, nil
	}
	w.reanalyses.Inc()
	res, err := w.sess.RunDelta(ctx, driver.FileSources(paths...))
	if err != nil {
		return false, err
	}
	w.report(res, paths)
	return true, nil
}

// report prints one analysis outcome: front-end errors or the conflict
// diagnostics with their flow paths, then the delta summary line.
func (w *watcher) report(res *driver.Result, paths []string) {
	fmt.Fprintf(w.out, "watch: run %d: %d file(s)\n", w.runs, len(paths))
	if res.Report == nil {
		for _, d := range res.Errors() {
			fmt.Fprintln(w.out, "  "+strings.ReplaceAll(d.String(), "\n", "\n  "))
		}
		fmt.Fprintln(w.out, "  (front-end failure; session state retained)")
		w.feFailures.Inc()
		w.journal.Append("watch_run", "warn", "re-analysis rejected by front end",
			"run", fmt.Sprint(w.runs), "files", fmt.Sprint(len(paths)),
			"errors", fmt.Sprint(len(res.Errors())))
		return
	}
	conflicts := 0
	for _, d := range res.Diagnostics {
		if d.Code == "qualifier-conflict" {
			conflicts++
			fmt.Fprintln(w.out, "  "+strings.ReplaceAll(d.String(), "\n", "\n  "))
		}
	}
	fmt.Fprintf(w.out, "  %d function(s), %d constraint(s), %d conflict(s)\n",
		res.Report.Functions, res.Report.Constraints, conflicts)
	fmt.Fprintf(w.out, "  %s (solve %v)\n", deltaLine(res), res.Timings.Solve.Round(time.Microsecond))
	w.journal.Append("watch_run", "info", "re-analysis complete",
		"run", fmt.Sprint(w.runs), "files", fmt.Sprint(len(paths)),
		"conflicts", fmt.Sprint(conflicts), "delta", deltaLine(res))
}

// deltaLine renders what the retained session did for one run.
func deltaLine(res *driver.Result) string {
	d := res.Delta
	switch {
	case d == nil:
		return "delta: none"
	case d.Applied:
		return fmt.Sprintf("delta: hit — %d/%d fragment(s) reused (+%d −%d), %d SCC(s) re-solved, %d var(s) dirty",
			d.FragsReused, d.FragsReused+d.FragsAdded, d.FragsAdded, d.FragsRemoved,
			d.ResolvedSCCs, d.DirtyVars)
	default:
		return fmt.Sprintf("delta: cold solve (%s)", d.Fallback)
	}
}

// run is the watch loop: poll at the interval until the context ends.
func (w *watcher) run(ctx context.Context, interval time.Duration) error {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if _, err := w.poll(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}
