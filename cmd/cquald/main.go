// Command cquald is the resident qualifier-analysis daemon: the const
// inference of Section 4 of "A Theory of Type Qualifiers" (PLDI 1999) as
// a long-running HTTP/JSON service with a content-addressed incremental
// cache (see internal/server and internal/cache).
//
// Usage:
//
//	cquald [-addr host:port] [-jobs n] [-max-concurrent n]
//	       [-timeout d] [-shutdown-timeout d]
//	       [-result-cache-entries n] [-result-cache-bytes n]
//	       [-summary-cache-entries n] [-summary-cache-bytes n]
//	       [-session-entries n]
//	       [-pprof] [-slow-request d] [-trace-entries n]
//	       [-journal-entries n] [-retain-slowest n] [-retain-sample n]
//	       [-slo endpoint=objective,...]
//	cquald -watch DIR [-watch-interval d] [-jobs n] [-lang l]
//	       [-poly] [-polyrec] [-simplify] [-uninit]
//	       [-analysis LIST] [-prelude FILES]
//
// POST a batch of sources to /v1/analyze and receive the same JSON
// report `cqual -json` prints; repeated requests for unchanged sources
// are answered from cache (X-Cache: hit), and requests that change one
// function re-derive only that function's constraint fragment. /healthz
// and /metrics serve liveness and counters; /metrics answers Prometheus
// text exposition (with latency histograms) to Accept: text/plain or
// ?format=prometheus, and OpenMetrics 1.0 with trace-id exemplars to
// Accept: application/openmetrics-text or ?format=openmetrics.
//
// Every analyze response carries an X-Trace-Id, and every request
// records spans into the flight recorder: at request end a
// tail-retention policy keeps the traces of slow, failed, shed,
// delta-fallback, and 1-in-K sampled requests (?trace=1 forces
// retention), retrievable at /v1/traces/<id> after the fact.
// -trace-entries bounds the retention ring; -retain-slowest and
// -retain-sample tune the policy. GET /v1/events serves the structured
// event journal (session evictions, delta fallbacks with reason codes,
// cache churn, slow requests; ?since=<seq> resumes, ?wait=1
// long-polls), bounded by -journal-entries. GET /v1/introspect dumps
// live state: retained sessions with their last solve/delta stats,
// cache occupancy, worker depths, ring and journal stats, SLO burn
// rates. -slo declares per-endpoint latency objectives
// ("analyze=250ms,metrics=50ms"); burn-rate gauges over 5m/1h/6h
// windows are computed at scrape time. The cqualtop command renders all
// of this as a live dashboard.
//
// -pprof mounts the net/http/pprof handlers under /debug/pprof/;
// -slow-request logs requests slower than the threshold (the records
// also land in the event journal). SIGINT/SIGTERM drain in-flight
// requests before exiting.
//
// Requests carrying a "session" id share a retained constraint-graph
// session (bounded by -session-entries): successive versions of the
// same corpus re-solve only the region downstream of changed constraint
// fragments, visible in the report's solver.delta block and the
// /metrics delta counters.
//
// With -watch DIR the daemon serves no HTTP at all: it walks DIR
// recursively for the active front end's source files (.c by default,
// .go with -lang go; stdlib mtime/size polling, -watch-interval apart)
// and re-runs the analysis through one retained session whenever a
// file appears, changes, or disappears, printing conflict diagnostics
// with their flow paths plus a per-run delta summary to stdout. The
// mode flags (-lang, -poly, -polyrec, -simplify, -uninit, -analysis,
// -prelude) mirror cqual and apply only to -watch, which fixes the
// configuration for the session's lifetime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "repro/internal/gofront" // registers the -lang go front end
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8710", "listen address (host:port; port 0 picks a free port)")
	jobs := flag.Int("jobs", 0, "constraint-generation workers per analysis (0 = GOMAXPROCS)")
	solveJobs := flag.Int("solve-jobs", 0, "solver workers per analysis (0 = GOMAXPROCS, 1 = sequential; results are identical for every value)")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneous analyses (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline including queue time (negative = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining in-flight requests on SIGINT/SIGTERM")
	resultEntries := flag.Int("result-cache-entries", 1024, "result cache: max entries (0 = unbounded)")
	resultBytes := flag.Int64("result-cache-bytes", 256<<20, "result cache: max stored report bytes (0 = unbounded)")
	summaryEntries := flag.Int("summary-cache-entries", 65536, "per-function summary cache: max entries (0 = unbounded)")
	summaryBytes := flag.Int64("summary-cache-bytes", 256<<20, "per-function summary cache: max approximate bytes (0 = unbounded)")
	sessionEntries := flag.Int("session-entries", 0, "retained delta re-solve sessions (0 = 64)")
	enablePprof := flag.Bool("pprof", false, "mount the net/http/pprof profiling handlers under /debug/pprof/")
	slowRequest := flag.Duration("slow-request", 0, "log analyze requests at or above this latency (0 = disabled)")
	traceEntries := flag.Int("trace-entries", 0, "flight-recorder retained-trace ring entries (0 = 32)")
	journalEntries := flag.Int("journal-entries", 0, "structured event journal entries (0 = 1024)")
	retainSlowest := flag.Int("retain-slowest", 0, "retain the first n traces per latency bucket, then only new bucket maxima (0 = 2, negative disables)")
	retainSample := flag.Int("retain-sample", 0, "retain one trace in every n requests as a baseline sample (0 = 64, negative disables)")
	sloFlag := flag.String("slo", "", `per-endpoint latency objectives as "endpoint=objective,..." (e.g. "analyze=250ms,metrics=50ms"; default analyze=250ms)`)
	sloTarget := flag.Float64("slo-target", 0, "SLO success-fraction objective shared by all endpoints (0 = 0.99)")
	watch := flag.String("watch", "", "watch this directory of source files instead of serving HTTP; re-analyze on change through a retained session")
	watchInterval := flag.Duration("watch-interval", 500*time.Millisecond, "poll interval for -watch")
	lang := flag.String("lang", "", "with -watch: source language of the watched files (c, go; default c)")
	poly := flag.Bool("poly", false, "with -watch: polymorphic qualifier inference")
	polyrec := flag.Bool("polyrec", false, "with -watch: polymorphic recursion (implies -poly)")
	simplify := flag.Bool("simplify", false, "with -watch: simplify schemes")
	uninit := flag.Bool("uninit", false, "with -watch: also run the definite-initialization check")
	analysisFlag := flag.String("analysis", "", "with -watch: comma-separated qualifier analyses (default const)")
	preludeFlag := flag.String("prelude", "", "with -watch: comma-separated prelude files")
	flag.Parse()

	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "cquald: -jobs must be >= 0")
		os.Exit(2)
	}
	if *solveJobs < 0 {
		fmt.Fprintln(os.Stderr, "cquald: -solve-jobs must be >= 0")
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "cquald: unexpected arguments; the daemon takes sources over HTTP, not the command line")
		os.Exit(2)
	}

	if *watch != "" {
		os.Exit(runWatchMode(*watch, *watchInterval, watchOptions{
			poly: *poly, polyrec: *polyrec, simplify: *simplify,
			uninit: *uninit, jobs: *jobs, solveJobs: *solveJobs, lang: *lang,
			analyses: *analysisFlag, preludes: *preludeFlag,
		}))
	}
	for _, f := range []struct {
		set  bool
		name string
	}{
		{*poly, "-poly"}, {*polyrec, "-polyrec"}, {*simplify, "-simplify"},
		{*uninit, "-uninit"}, {*analysisFlag != "", "-analysis"}, {*preludeFlag != "", "-prelude"},
		{*lang != "", "-lang"},
	} {
		if f.set {
			fmt.Fprintf(os.Stderr, "cquald: %s only applies to -watch; HTTP requests carry their own mode flags\n", f.name)
			os.Exit(2)
		}
	}

	slos, err := parseSLOs(*sloFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cquald: %v\n", err)
		os.Exit(2)
	}
	if *sloTarget < 0 || *sloTarget >= 1 {
		fmt.Fprintln(os.Stderr, "cquald: -slo-target must be in [0, 1)")
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Jobs:           *jobs,
		SolveJobs:      *solveJobs,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *timeout,
		ResultEntries:  *resultEntries,
		ResultBytes:    *resultBytes,
		SummaryEntries: *summaryEntries,
		SummaryBytes:   *summaryBytes,
		SessionEntries: *sessionEntries,
		EnablePprof:    *enablePprof,
		SlowRequest:    *slowRequest,
		TraceEntries:   *traceEntries,
		JournalEntries: *journalEntries,
		RetainSlowest:  *retainSlowest,
		RetainSample:   *retainSample,
		SLOs:           slos,
		SLOTarget:      *sloTarget,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cquald: listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv}

	// The resolved address is logged (not just the flag value) so that
	// port 0 — used by the end-to-end tests — is observable.
	log.Printf("cquald: listening on http://%s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("cquald: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("cquald: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		log.Printf("cquald: shutdown: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cquald: serve: %v", err)
		os.Exit(1)
	}
	log.Printf("cquald: bye")
}

// parseSLOs parses the -slo flag: a comma-separated list of
// endpoint=objective pairs ("analyze=250ms,metrics=50ms"). An empty
// flag returns nil, leaving the server's default (analyze=250ms); a
// present flag replaces the default outright, so "-slo ”" cannot be
// used to disable it — pass an objective for no endpoint you care
// about instead.
func parseSLOs(s string) (map[string]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	slos := make(map[string]time.Duration)
	for _, part := range strings.Split(s, ",") {
		endpoint, obj, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || endpoint == "" {
			return nil, fmt.Errorf("-slo: %q is not endpoint=objective", part)
		}
		d, err := time.ParseDuration(obj)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("-slo: bad objective in %q (want a positive duration like 250ms)", part)
		}
		slos[endpoint] = d
	}
	return slos, nil
}
