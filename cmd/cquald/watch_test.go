package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/driver"
)

const watchV1 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); }
`

const watchV2 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); probe(buf); }
`

// writeStamped writes a source file with a forced distinct mtime so the
// poll-based change detector sees every edit regardless of filesystem
// timestamp granularity.
func writeStamped(t *testing.T, path, text string, seq int) {
	t.Helper()
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	stamp := time.Date(2020, 1, 1, 0, 0, seq, 0, time.UTC)
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
}

func TestWatcherDeltaCycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	writeStamped(t, path, watchV1, 1)

	var out strings.Builder
	w := newWatcher(dir, driver.Config{Jobs: 1}, &out)
	ctx := context.Background()

	ran, err := w.poll(ctx)
	if err != nil || !ran {
		t.Fatalf("first poll: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(out.String(), "delta: cold solve (first-solve)") {
		t.Fatalf("first run should cold-solve:\n%s", out.String())
	}

	// No change: no analysis.
	out.Reset()
	if ran, err := w.poll(ctx); err != nil || ran {
		t.Fatalf("unchanged poll: ran=%v err=%v output=%q", ran, err, out.String())
	}

	// Trailing-function edit: the session takes the delta path.
	writeStamped(t, path, watchV2, 2)
	out.Reset()
	if ran, err := w.poll(ctx); err != nil || !ran {
		t.Fatalf("edit poll: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(out.String(), "delta: hit") {
		t.Fatalf("edit should be a delta hit:\n%s", out.String())
	}

	// A new file changes the set and re-analyzes.
	writeStamped(t, filepath.Join(dir, "extra.c"), "int twice(int x) { return x + x; }\n", 3)
	out.Reset()
	if ran, err := w.poll(ctx); err != nil || !ran {
		t.Fatalf("new-file poll: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(out.String(), "2 file(s)") {
		t.Fatalf("new file not picked up:\n%s", out.String())
	}
}

// TestWatcherRecursiveScan pins that the scanner walks subdirectories
// but skips the trees the go tool would skip (hidden, underscore,
// vendor, testdata) and files of other languages.
func TestWatcherRecursiveScan(t *testing.T) {
	dir := t.TempDir()
	writeStamped(t, filepath.Join(dir, "top.c"), watchV1, 1)
	for _, sub := range []string{"nested", "nested/deeper"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	writeStamped(t, filepath.Join(dir, "nested", "mid.c"), "int mid(int x) { return x; }\n", 2)
	writeStamped(t, filepath.Join(dir, "nested", "deeper", "leaf.c"), "int leaf(int x) { return x; }\n", 3)
	for _, sub := range []string{"vendor", "testdata", ".hidden", "_skip"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		writeStamped(t, filepath.Join(dir, sub, "no.c"), "int no(int x) { return x; }\n", 4)
	}
	writeStamped(t, filepath.Join(dir, "other.go"), "package p\n", 5)

	w := newWatcher(dir, driver.Config{Jobs: 1}, &strings.Builder{})
	paths, changed, err := w.scan()
	if err != nil || !changed {
		t.Fatalf("scan: changed=%v err=%v", changed, err)
	}
	want := []string{
		filepath.Join(dir, "nested", "deeper", "leaf.c"),
		filepath.Join(dir, "nested", "mid.c"),
		filepath.Join(dir, "top.c"),
	}
	if len(paths) != len(want) {
		t.Fatalf("scan found %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("scan found %v, want %v", paths, want)
		}
	}
}

// TestWatcherGoLang pins the -lang go watch path: the scanner claims .go
// files (skipping tests), and edits delta-solve through the retained
// session exactly like C.
func TestWatcherGoLang(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.go")
	writeStamped(t, path, "package p\n\nfunc get(p *int) int { return *p }\n", 1)
	writeStamped(t, filepath.Join(dir, "prog_test.go"), "package p\n", 2)

	var out strings.Builder
	w := newWatcher(dir, driver.Config{Jobs: 1, Lang: "go"}, &out)
	w.exts = []string{".go"}
	ctx := context.Background()

	if ran, err := w.poll(ctx); err != nil || !ran {
		t.Fatalf("first poll: ran=%v err=%v\n%s", ran, err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "1 file(s)") {
		t.Fatalf("_test.go should be ignored:\n%s", got)
	}
	if !strings.Contains(got, "delta: cold solve (first-solve)") {
		t.Fatalf("first run should cold-solve:\n%s", got)
	}

	writeStamped(t, path, "package p\n\nfunc get(p *int) int { return *p }\n\nfunc put(p *int) { *p = 1 }\n", 3)
	out.Reset()
	if ran, err := w.poll(ctx); err != nil || !ran {
		t.Fatalf("edit poll: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(out.String(), "delta:") {
		t.Fatalf("edit should report a delta line:\n%s", out.String())
	}
}

// TestWatcherEmptyMessage pins that the no-sources message names the
// front end's actual extensions, not a hard-coded .c.
func TestWatcherEmptyMessage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.go")
	writeStamped(t, path, "package p\n\nfunc id(x int) int { return x }\n", 1)

	var out strings.Builder
	w := newWatcher(dir, driver.Config{Jobs: 1, Lang: "go"}, &out)
	w.exts = []string{".go"}
	ctx := context.Background()
	if ran, err := w.poll(ctx); err != nil || !ran {
		t.Fatalf("first poll: ran=%v err=%v", ran, err)
	}

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if ran, err := w.poll(ctx); err != nil || ran {
		t.Fatalf("empty poll: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(out.String(), "no .go files") {
		t.Fatalf("empty message should name .go:\n%s", out.String())
	}
}

// TestWatcherConflictFlow pins that conflicts are printed with their
// step-by-step flow path, the -watch mode's whole point as a front door.
func TestWatcherConflictFlow(t *testing.T) {
	dir := t.TempDir()
	writeStamped(t, filepath.Join(dir, "bad.c"),
		"void f(const char *s) { *s = 0; }\n", 1)

	var out strings.Builder
	w := newWatcher(dir, driver.Config{Jobs: 1}, &out)
	if ran, err := w.poll(context.Background()); err != nil || !ran {
		t.Fatalf("poll: ran=%v err=%v", ran, err)
	}
	got := out.String()
	if !strings.Contains(got, "1 conflict(s)") || !strings.Contains(got, "flow:") {
		t.Fatalf("conflict flow trace missing:\n%s", got)
	}
}

// TestWatcherFrontEndError pins that a broken edit reports errors but
// keeps the session: the fixed version still delta-solves.
func TestWatcherFrontEndError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	writeStamped(t, path, watchV1, 1)

	var out strings.Builder
	w := newWatcher(dir, driver.Config{Jobs: 1}, &out)
	ctx := context.Background()
	if _, err := w.poll(ctx); err != nil {
		t.Fatal(err)
	}

	writeStamped(t, path, "void broken( {", 2)
	out.Reset()
	if ran, err := w.poll(ctx); err != nil || !ran {
		t.Fatalf("broken poll: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(out.String(), "front-end failure") {
		t.Fatalf("parse failure not reported:\n%s", out.String())
	}

	writeStamped(t, path, watchV2, 3)
	out.Reset()
	if _, err := w.poll(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "delta: hit") {
		t.Fatalf("session lost across front-end error:\n%s", out.String())
	}
}

// TestWatcherObservability pins the watch-mode flight-recorder hooks:
// poll/re-analysis/front-end-failure counters count what actually
// happened, and every re-analysis appends a journal event with its
// outcome.
func TestWatcherObservability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.c")
	writeStamped(t, path, watchV1, 1)

	var out strings.Builder
	w := newWatcher(dir, driver.Config{Jobs: 1}, &out)
	ctx := context.Background()

	// Poll 1: cold solve. Poll 2: unchanged, no analysis. Poll 3: broken
	// edit, front-end failure. Poll 4: fixed edit, delta hit.
	if _, err := w.poll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.poll(ctx); err != nil {
		t.Fatal(err)
	}
	writeStamped(t, path, "void broken( {", 2)
	if _, err := w.poll(ctx); err != nil {
		t.Fatal(err)
	}
	writeStamped(t, path, watchV2, 3)
	if _, err := w.poll(ctx); err != nil {
		t.Fatal(err)
	}

	if got := w.polls.Value(); got != 4 {
		t.Errorf("polls = %d, want 4", got)
	}
	if got := w.reanalyses.Value(); got != 3 {
		t.Errorf("reanalyses = %d, want 3 (unchanged poll must not count)", got)
	}
	if got := w.feFailures.Value(); got != 1 {
		t.Errorf("front-end failures = %d, want 1", got)
	}

	events, _ := w.journal.Since(0, 0)
	if len(events) != 3 {
		t.Fatalf("journal has %d event(s), want 3 (one per re-analysis): %+v", len(events), events)
	}
	for i, e := range events {
		if e.Type != "watch_run" {
			t.Errorf("event %d type = %q, want watch_run", i, e.Type)
		}
		if e.Attrs["run"] != fmt.Sprint(i+1) {
			t.Errorf("event %d run = %q, want %d", i, e.Attrs["run"], i+1)
		}
	}
	if events[0].Level != "info" || !strings.Contains(events[0].Attrs["delta"], "cold solve") {
		t.Errorf("cold-solve event wrong: %+v", events[0])
	}
	if events[1].Level != "warn" || events[1].Attrs["errors"] == "" {
		t.Errorf("front-end-failure event wrong: %+v", events[1])
	}
	if !strings.Contains(events[2].Attrs["delta"], "delta: hit") {
		t.Errorf("delta-hit event wrong: %+v", events[2])
	}
}
