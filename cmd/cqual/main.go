// Command cqual runs the const-inference system of Section 4 of "A
// Theory of Type Qualifiers" (PLDI 1999) over one or more C files
// analyzed as a single program.
//
// Usage:
//
//	cqual [-poly] [-polyrec] [-simplify] [-v] [-json] [-serve URL] file.c ...
//
// For every "interesting" position (each pointer level of the parameters
// and results of defined functions) cqual reports whether it must be
// const, must not be const, or could be either; positions in the last two
// classes that are not yet declared const are the consts the programmer
// could add. Qualifier conflicts (writes through declared-const
// references) are reported with their flow path and make the exit status
// nonzero. All input files are parsed before exiting, so every parse
// error is reported, not just the first.
//
// With -serve URL the files are not analyzed locally: they are POSTed to
// a running cquald daemon at URL and the daemon's JSON report — which is
// byte-identical to what -json would print here — goes to stdout. Exit
// status matches -json: 1 on qualifier conflicts, 2 on front-end or
// transport failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/constinfer"
	"repro/internal/driver"
	"repro/internal/server"
)

func main() {
	poly := flag.Bool("poly", false, "polymorphic qualifier inference (Section 4.3)")
	polyrec := flag.Bool("polyrec", false, "polymorphic recursion (implies -poly)")
	simplify := flag.Bool("simplify", false, "simplify schemes (with -poly)")
	verbose := flag.Bool("v", false, "list every position, not just the summary")
	suggest := flag.Bool("suggest", false, "print re-declared signatures with inferred consts inserted")
	schemes := flag.Bool("schemes", false, "print inferred polymorphic qualifier schemes (with -poly)")
	uninit := flag.Bool("uninit", false, "also run the flow-sensitive definite-initialization check (Section 6 extension)")
	jsonOut := flag.Bool("json", false, "emit the report and diagnostics as JSON")
	jobs := flag.Int("jobs", 0, "constraint-generation workers (0 = GOMAXPROCS; results are identical for every value)")
	serve := flag.String("serve", "", "analyze via a running cquald daemon at this base URL instead of locally")
	flag.Parse()

	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "cqual: -jobs must be >= 0")
		fmt.Fprintln(os.Stderr, "usage: cqual [-poly] [-polyrec] [-simplify] [-v] [-json] [-serve URL] file.c ...")
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cqual [-poly] [-polyrec] [-simplify] [-v] [-json] [-serve URL] file.c ...")
		os.Exit(2)
	}

	if *serve != "" {
		os.Exit(runRemote(*serve, remoteOptions{
			poly: *poly, polyrec: *polyrec, simplify: *simplify || *schemes,
			uninit: *uninit, jobs: *jobs,
		}, flag.Args()))
	}

	cfg := driver.Config{
		Options: constinfer.Options{
			Poly:     *poly || *polyrec,
			PolyRec:  *polyrec,
			Simplify: *simplify || *schemes,
		},
		Jobs:   *jobs,
		Uninit: *uninit,
	}
	res, err := driver.Run(cfg, driver.FileSources(flag.Args()...))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		os.Exit(2)
	}
	if res.Report == nil {
		// Front-end failure: every load/parse error has a diagnostic.
		if *jsonOut {
			emitJSON(res)
			os.Exit(2)
		}
		for _, d := range res.Errors() {
			fmt.Fprintln(os.Stderr, "cqual:", d.Message)
		}
		os.Exit(2)
	}

	if *jsonOut {
		emitJSON(res)
		if len(res.Report.Conflicts) > 0 {
			os.Exit(1)
		}
		return
	}

	rep := res.Report
	if *verbose {
		printPositions(rep)
	}
	if *suggest {
		for _, s := range rep.Suggested {
			fmt.Printf("%s: %s\n    was: %s\n    now: %s\n", s.Pos, s.Func, s.Old, s.New)
		}
	}
	if *schemes {
		names := make([]string, 0, len(rep.Positions))
		seen := map[string]bool{}
		for _, p := range rep.Positions {
			if !seen[p.Func] {
				seen[p.Func] = true
				names = append(names, p.Func)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if s, ok := res.Analysis.SchemeString(name); ok {
				fmt.Println(s)
			}
		}
	}
	printSummary(rep, cfg.Options)

	if *uninit {
		warned := 0
		for _, d := range res.Diagnostics {
			if d.Stage == driver.StageInit {
				fmt.Printf("%s: %s\n", d.Pos, d.Message)
				warned++
			}
		}
		fmt.Printf("definite-initialization: %d warning(s)\n", warned)
	}

	if len(rep.Conflicts) > 0 {
		fmt.Printf("\n%d qualifier conflict(s):\n", len(rep.Conflicts))
		for _, c := range rep.Conflicts {
			fmt.Println("  " + c.Error())
		}
		os.Exit(1)
	}
}

type remoteOptions struct {
	poly, polyrec, simplify, uninit bool
	jobs                            int
}

// runRemote is the -serve client: it reads the files locally, POSTs them
// to a cquald daemon, and prints the daemon's report verbatim. The exit
// status mirrors the -json local path (0 clean, 1 conflicts, 2 front-end
// or transport failure) so scripts can swap -serve in and out.
func runRemote(base string, opts remoteOptions, paths []string) int {
	req := server.AnalyzeRequest{
		Poly:     opts.poly,
		PolyRec:  opts.polyrec,
		Simplify: opts.simplify,
		Uninit:   opts.uninit,
		Jobs:     opts.jobs,
	}
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqual:", err)
			return 2
		}
		req.Sources = append(req.Sources, server.SourceJSON{Path: p, Text: string(text)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		return 2
	}
	resp, err := http.Post(strings.TrimRight(base, "/")+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		return 2
	}
	defer resp.Body.Close()
	report, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		return 2
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "cqual: %s: %s: %s", base, resp.Status, report)
		return 2
	}
	os.Stdout.Write(report)

	// The report is the wire contract; derive the exit status from it
	// rather than from a side channel.
	var parsed struct {
		Summary *struct {
			Conflicts int `json:"conflicts"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(report, &parsed); err != nil {
		fmt.Fprintln(os.Stderr, "cqual: malformed report:", err)
		return 2
	}
	switch {
	case parsed.Summary == nil:
		return 2 // front-end failure: diagnostics only, no report
	case parsed.Summary.Conflicts > 0:
		return 1
	default:
		return 0
	}
}

func emitJSON(res *driver.Result) {
	data, err := res.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		os.Exit(2)
	}
	os.Stdout.Write(append(data, '\n'))
}

func printPositions(rep *constinfer.Report) {
	positions := append([]constinfer.PositionResult(nil), rep.Positions...)
	sort.Slice(positions, func(i, j int) bool {
		if positions[i].Func != positions[j].Func {
			return positions[i].Func < positions[j].Func
		}
		if positions[i].Index != positions[j].Index {
			return positions[i].Index < positions[j].Index
		}
		return positions[i].Depth < positions[j].Depth
	})
	for _, p := range positions {
		where := "result"
		if p.Index >= 0 {
			where = fmt.Sprintf("param %q", p.Param)
			if p.Param == "" {
				where = fmt.Sprintf("param #%d", p.Index)
			}
		}
		marker := " "
		if p.Verdict == constinfer.Either && !p.Declared {
			marker = "+" // a const the programmer could add
		}
		decl := ""
		if p.Declared {
			decl = " (declared)"
		}
		fmt.Printf("%s %s: %s level %d: %s%s\n", marker, p.Func, where, p.Depth, p.Verdict, decl)
	}
}

func printSummary(rep *constinfer.Report, opts constinfer.Options) {
	mode := "monomorphic"
	if opts.Poly {
		mode = "polymorphic"
		if opts.PolyRec {
			mode = "polymorphic-recursive"
		}
	}
	addable := rep.Inferred - rep.Declared
	fmt.Printf("%s const inference: %d functions, %d positions\n", mode, rep.Functions, rep.Total)
	fmt.Printf("  declared const:   %d\n", rep.Declared)
	fmt.Printf("  inferrable const: %d (%d more than declared)\n", rep.Inferred, addable)
	fmt.Printf("  never const:      %d\n", rep.Total-rep.Inferred)
}
