// Command cqual runs the const-inference system of Section 4 of "A
// Theory of Type Qualifiers" (PLDI 1999) over one or more C files
// analyzed as a single program.
//
// Usage:
//
//	cqual [-poly] [-polyrec] [-simplify] [-v] file.c ...
//
// For every "interesting" position (each pointer level of the parameters
// and results of defined functions) cqual reports whether it must be
// const, must not be const, or could be either; positions in the last two
// classes that are not yet declared const are the consts the programmer
// could add. Qualifier conflicts (writes through declared-const
// references) are reported with their flow path and make the exit status
// nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cfront"
	"repro/internal/constinfer"
	"repro/internal/initcheck"
)

func main() {
	poly := flag.Bool("poly", false, "polymorphic qualifier inference (Section 4.3)")
	polyrec := flag.Bool("polyrec", false, "polymorphic recursion (implies -poly)")
	simplify := flag.Bool("simplify", false, "simplify schemes (with -poly)")
	verbose := flag.Bool("v", false, "list every position, not just the summary")
	suggest := flag.Bool("suggest", false, "print re-declared signatures with inferred consts inserted")
	schemes := flag.Bool("schemes", false, "print inferred polymorphic qualifier schemes (with -poly)")
	uninit := flag.Bool("uninit", false, "also run the flow-sensitive definite-initialization check (Section 6 extension)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cqual [-poly] [-polyrec] [-simplify] [-v] file.c ...")
		os.Exit(2)
	}

	var files []*cfront.File
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqual:", err)
			os.Exit(2)
		}
		f, err := cfront.Parse(path, string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqual:", err)
			os.Exit(2)
		}
		files = append(files, f)
	}

	opts := constinfer.Options{
		Poly:     *poly || *polyrec,
		PolyRec:  *polyrec,
		Simplify: *simplify || *schemes,
	}
	analysis := constinfer.NewAnalysis(files, opts)
	rep, err := analysis.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		os.Exit(2)
	}

	if *verbose {
		printPositions(rep)
	}
	if *suggest {
		for _, s := range rep.Suggested {
			fmt.Printf("%s: %s\n    was: %s\n    now: %s\n", s.Pos, s.Func, s.Old, s.New)
		}
	}
	if *schemes {
		names := make([]string, 0, len(rep.Positions))
		seen := map[string]bool{}
		for _, p := range rep.Positions {
			if !seen[p.Func] {
				seen[p.Func] = true
				names = append(names, p.Func)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if s, ok := analysis.SchemeString(name); ok {
				fmt.Println(s)
			}
		}
	}
	printSummary(rep, opts)

	if *uninit {
		warned := 0
		for _, f := range files {
			for _, w := range initcheck.CheckFile(f) {
				fmt.Println(w)
				warned++
			}
		}
		fmt.Printf("definite-initialization: %d warning(s)\n", warned)
	}

	if len(rep.Conflicts) > 0 {
		fmt.Printf("\n%d qualifier conflict(s):\n", len(rep.Conflicts))
		for _, c := range rep.Conflicts {
			fmt.Println("  " + c.Error())
		}
		os.Exit(1)
	}
}

func printPositions(rep *constinfer.Report) {
	positions := append([]constinfer.PositionResult(nil), rep.Positions...)
	sort.Slice(positions, func(i, j int) bool {
		if positions[i].Func != positions[j].Func {
			return positions[i].Func < positions[j].Func
		}
		if positions[i].Index != positions[j].Index {
			return positions[i].Index < positions[j].Index
		}
		return positions[i].Depth < positions[j].Depth
	})
	for _, p := range positions {
		where := "result"
		if p.Index >= 0 {
			where = fmt.Sprintf("param %q", p.Param)
			if p.Param == "" {
				where = fmt.Sprintf("param #%d", p.Index)
			}
		}
		marker := " "
		if p.Verdict == constinfer.Either && !p.Declared {
			marker = "+" // a const the programmer could add
		}
		decl := ""
		if p.Declared {
			decl = " (declared)"
		}
		fmt.Printf("%s %s: %s level %d: %s%s\n", marker, p.Func, where, p.Depth, p.Verdict, decl)
	}
}

func printSummary(rep *constinfer.Report, opts constinfer.Options) {
	mode := "monomorphic"
	if opts.Poly {
		mode = "polymorphic"
		if opts.PolyRec {
			mode = "polymorphic-recursive"
		}
	}
	addable := rep.Inferred - rep.Declared
	fmt.Printf("%s const inference: %d functions, %d positions\n", mode, rep.Functions, rep.Total)
	fmt.Printf("  declared const:   %d\n", rep.Declared)
	fmt.Printf("  inferrable const: %d (%d more than declared)\n", rep.Inferred, addable)
	fmt.Printf("  never const:      %d\n", rep.Total-rep.Inferred)
}
