// Command cqual runs the qualifier-inference systems of "A Theory of
// Type Qualifiers" (PLDI 1999) over one or more C files analyzed as a
// single program. The default analysis is the Section 4 const
// inference; -analysis selects others from the registry (see
// -analyses), and several analyses named together run in one constraint
// pass over a shared product lattice.
//
// Usage:
//
//	cqual [-analysis LIST] [-prelude FILES] [-poly] [-polyrec] [-simplify] [-v] [-json] [-stats] [-serve URL] file.c ...
//	cqual -analyses
//
// For every "interesting" position (each pointer level of the parameters
// and results of defined functions) cqual reports whether it must be
// const, must not be const, or could be either; positions in the last two
// classes that are not yet declared const are the consts the programmer
// could add. Qualifier conflicts (writes through declared-const
// references, tainted data reaching an untainted sink) are reported with
// their step-by-step flow path and make the exit status nonzero. All
// input files are parsed before exiting, so every parse error is
// reported, not just the first.
//
// Analyses whose seeds and sinks live in library functions (taint) take
// a prelude file via -prelude, e.g.
//
//	analysis taint
//	getenv(_) -> tainted
//	printf(untainted, ...)
//
// With -trace FILE the run additionally records a hierarchical span
// trace of every pipeline stage — per-function constraint generation,
// per-mask-class solver sweeps — as Chrome trace-event JSON, viewable in
// chrome://tracing or Perfetto. The trace is deterministic: the same
// sources produce the same span sequence for every -jobs value.
//
// With -serve URL the files are not analyzed locally: they are POSTed to
// a running cquald daemon at URL and the daemon's JSON report — which is
// byte-identical to what -json would print here — goes to stdout. Exit
// status matches -json: 1 on qualifier conflicts, 2 on front-end or
// transport failure. Adding -json splices the daemon's X-Trace-Id into
// the report as a leading "trace_id" member (the daemon's flight
// recorder retains failing runs' traces at /v1/traces/<id>); without
// -json the report stays byte-verbatim and a failing run prints the
// trace URL as a stderr footer instead.
//
// With -lint the run reports vet-style findings instead of the
// experiment summary: one "file:line:col: analysis: message" line per
// diagnostic (-json switches to a findings array with stable rule
// ids). -baseline FILE suppresses the findings recorded in a committed
// baseline — itself just an earlier `-lint -json` output — so CI can
// gate on *new* findings only (the repository's own gate runs the Go
// front end over ./internal/... against lint-baseline.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/constinfer"
	"repro/internal/driver"
	_ "repro/internal/gofront" // registers the -lang go front end
	"repro/internal/obs"
	"repro/internal/qual"
	"repro/internal/server"
)

const usage = "usage: cqual [-lang c|go] [-analysis LIST] [-prelude FILES] [-poly] [-polyrec] [-simplify] [-v] [-json] [-stats] [-lint] [-baseline FILE] [-trace FILE] [-serve URL] file.c ... | ./pkg/..."

func main() {
	lang := flag.String("lang", "c", "source language / front end (see driver.FrontEndLangs: c, go)")
	poly := flag.Bool("poly", false, "polymorphic qualifier inference (Section 4.3)")
	polyrec := flag.Bool("polyrec", false, "polymorphic recursion (implies -poly)")
	simplify := flag.Bool("simplify", false, "simplify schemes (with -poly)")
	verbose := flag.Bool("v", false, "list every position, not just the summary")
	suggest := flag.Bool("suggest", false, "print re-declared signatures with inferred consts inserted")
	schemes := flag.Bool("schemes", false, "print inferred polymorphic qualifier schemes (with -poly)")
	uninit := flag.Bool("uninit", false, "also run the flow-sensitive definite-initialization check (Section 6 extension)")
	jsonOut := flag.Bool("json", false, "emit the report and diagnostics as JSON")
	stats := flag.Bool("stats", false, "print solver statistics (system size, cycle condensation) to stderr")
	jobs := flag.Int("jobs", 0, "constraint-generation workers (0 = GOMAXPROCS; results are identical for every value)")
	solveJobs := flag.Int("solve-jobs", 0, "solver workers for mask classes and level sweeps (0 = GOMAXPROCS, 1 = sequential; results are identical for every value)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline to this file (view in chrome://tracing or Perfetto)")
	serve := flag.String("serve", "", "analyze via a running cquald daemon at this base URL instead of locally")
	analysisFlag := flag.String("analysis", "const", "comma-separated qualifier analyses to run together (see -analyses)")
	preludeFlag := flag.String("prelude", "", "comma-separated prelude files declaring library seeds and sinks")
	listAnalyses := flag.Bool("analyses", false, "list the registered qualifier analyses and exit")
	lint := flag.Bool("lint", false, "vet-style output: one finding per line (with -json, a findings array with stable rule ids)")
	baselineFlag := flag.String("baseline", "", "with -lint, suppress findings recorded in this baseline file (a previous `-lint -json` output)")
	flag.Parse()

	if *listAnalyses {
		printAnalyses()
		return
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "cqual: -jobs must be >= 0")
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	if *solveJobs < 0 {
		fmt.Fprintln(os.Stderr, "cqual: -solve-jobs must be >= 0")
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	if _, ok := driver.LookupFrontEnd(*lang); !ok {
		fmt.Fprintf(os.Stderr, "cqual: unknown language %q (registered: %s)\n",
			*lang, strings.Join(driver.FrontEndLangs(), ", "))
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	analyses := splitList(*analysisFlag)
	for _, name := range analyses {
		if _, ok := analysis.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "cqual: unknown analysis %q (registered: %s)\n",
				name, strings.Join(analysis.Names(), ", "))
			fmt.Fprintln(os.Stderr, usage)
			os.Exit(2)
		}
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	var preludes []driver.PreludeFile
	for _, path := range splitList(*preludeFlag) {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqual:", err)
			os.Exit(2)
		}
		preludes = append(preludes, driver.PreludeFile{Path: path, Text: string(text)})
	}

	if *baselineFlag != "" && !*lint {
		fmt.Fprintln(os.Stderr, "cqual: -baseline only applies with -lint")
		os.Exit(2)
	}
	if *serve != "" {
		if *traceFile != "" {
			fmt.Fprintln(os.Stderr, "cqual: -trace records the local pipeline and cannot be combined with -serve (use the daemon's ?trace=1 instead)")
			os.Exit(2)
		}
		if *lint {
			fmt.Fprintln(os.Stderr, "cqual: -lint renders findings from the local pipeline and cannot be combined with -serve")
			os.Exit(2)
		}
		os.Exit(runRemote(*serve, remoteOptions{
			lang: *lang,
			poly: *poly, polyrec: *polyrec, simplify: *simplify || *schemes,
			uninit: *uninit, jobs: *jobs, solveJobs: *solveJobs,
			analyses: analyses, preludes: preludes, jsonOut: *jsonOut,
		}, flag.Args(), os.Stdout, os.Stderr))
	}

	cfg := driver.Config{
		Lang: *lang,
		Options: constinfer.Options{
			Poly:     *poly || *polyrec,
			PolyRec:  *polyrec,
			Simplify: *simplify || *schemes,
		},
		Jobs:      *jobs,
		SolveJobs: *solveJobs,
		Uninit:    *uninit,
		Analyses:  analyses,
		Preludes:  preludes,
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(nil)
		ctx = obs.WithTracer(ctx, tracer)
	}
	res, err := driver.RunContext(ctx, cfg, driver.FileSources(flag.Args()...))
	if tracer != nil {
		// Written before the exit-status paths below: a run that found
		// conflicts is exactly the one worth profiling.
		if werr := writeTrace(*traceFile, tracer); werr != nil {
			fmt.Fprintln(os.Stderr, "cqual:", werr)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		os.Exit(2)
	}
	if *lint {
		os.Exit(runLint(res, *baselineFlag, *jsonOut))
	}
	if res.Report == nil {
		// Front-end failure: every load/parse error has a diagnostic.
		if *jsonOut {
			emitJSON(res)
			os.Exit(2)
		}
		for _, d := range res.Errors() {
			fmt.Fprintln(os.Stderr, "cqual:", d.Message)
		}
		os.Exit(2)
	}

	if *stats {
		printSolverStats(res)
	}

	if *jsonOut {
		emitJSON(res)
		if len(res.Report.Conflicts) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, d := range res.Diagnostics {
		if d.Severity == driver.SevWarning && d.Stage == driver.StageBuild {
			fmt.Fprintln(os.Stderr, "cqual: warning:", d.Message)
		}
	}

	rep := res.Report
	constSelected := false
	for _, name := range analyses {
		if name == "const" {
			constSelected = true
		}
	}
	if *verbose && constSelected {
		printPositions(rep)
	}
	if *suggest && constSelected {
		for _, s := range rep.Suggested {
			fmt.Printf("%s: %s\n    was: %s\n    now: %s\n", s.Pos, s.Func, s.Old, s.New)
		}
	}
	if *schemes && constSelected && res.Analysis != nil {
		names := make([]string, 0, len(rep.Positions))
		seen := map[string]bool{}
		for _, p := range rep.Positions {
			if !seen[p.Func] {
				seen[p.Func] = true
				names = append(names, p.Func)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if s, ok := res.Analysis.SchemeString(name); ok {
				fmt.Println(s)
			}
		}
	}
	if constSelected {
		printSummary(rep, cfg.Options)
	} else {
		// The position summary is const-specific; other analyses report
		// per-analysis conflict counts instead.
		counts := map[string]int{}
		for _, d := range res.Diagnostics {
			if d.Code == "qualifier-conflict" {
				counts[d.Analysis]++
			}
		}
		fmt.Printf("qualifier analysis (%s): %d functions, %d constraints\n",
			strings.Join(analyses, ", "), rep.Functions, rep.Constraints)
		for _, name := range analyses {
			fmt.Printf("  %-10s %d conflict(s)\n", name+":", counts[name])
		}
	}

	if *uninit {
		warned := 0
		for _, d := range res.Diagnostics {
			if d.Stage == driver.StageInit {
				fmt.Printf("%s: %s\n", d.Pos, d.Message)
				warned++
			}
		}
		fmt.Printf("definite-initialization: %d warning(s)\n", warned)
	}

	var conflicts []driver.Diagnostic
	for _, d := range res.Diagnostics {
		if d.Code == "qualifier-conflict" {
			conflicts = append(conflicts, d)
		}
	}
	if len(conflicts) > 0 {
		fmt.Printf("\n%d qualifier conflict(s):\n", len(conflicts))
		for _, d := range conflicts {
			fmt.Println("  " + strings.ReplaceAll(d.String(), "\n", "\n  "))
		}
		os.Exit(1)
	}
}

// runLint renders the run as vet-style findings and returns the exit
// status: 0 clean, 1 new findings, 2 front-end failure. A baseline, if
// given, suppresses its recorded findings from both the text output
// and the exit status; `-json` always emits the full findings array
// (so redirecting it refreshes the baseline) while the exit status
// still honors the baseline.
func runLint(res *driver.Result, baselinePath string, jsonOut bool) int {
	findings := driver.Findings(res)
	shown := findings
	if baselinePath != "" {
		base, err := driver.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqual:", err)
			return 2
		}
		shown = base.New(findings)
	}
	if jsonOut {
		if err := driver.WriteLintJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "cqual:", err)
			return 2
		}
	} else {
		for _, f := range shown {
			fmt.Println(f.String())
		}
		if baselinePath != "" {
			fmt.Fprintf(os.Stderr, "cqual: %d new finding(s), %d suppressed by baseline %s\n",
				len(shown), len(findings)-len(shown), baselinePath)
		}
	}
	switch {
	case res.Report == nil:
		return 2
	case len(shown) > 0:
		return 1
	default:
		return 0
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// printAnalyses lists the registry for -analyses: every analysis with
// its qualifier, lattice shape, prelude expectations, and annotation
// vocabulary.
func printAnalyses() {
	for _, name := range analysis.Names() {
		a, _ := analysis.Lookup(name)
		sign := "positive"
		if a.Qual.Sign == qual.Negative {
			sign = "negative"
		}
		qualifier := a.Qual.Name
		if a.Qual.NegName != "" {
			qualifier += " (absence: " + a.Qual.NegName + ")"
		}
		// The two-point component lattice, bottom first: a positive
		// qualifier's presence is its top (¬const ⊑ const), a negative
		// qualifier's presence is its bottom (untainted ⊑ tainted).
		absent := a.Qual.NegName
		if absent == "" {
			absent = "¬" + a.Qual.Name
		}
		bottom, top := absent, a.Qual.Name
		if a.Qual.Sign == qual.Negative {
			bottom, top = a.Qual.Name, absent
		}
		prelude := "optional"
		if a.WantsPrelude {
			prelude = "recommended (seeds and sinks come from -prelude)"
		}
		fmt.Printf("%s — %s\n", a.Name, a.Doc)
		fmt.Printf("  qualifier:   %s, %s\n", qualifier, sign)
		fmt.Printf("  lattice:     %s ⊑ %s (two-point, one component of the product lattice)\n", bottom, top)
		fmt.Printf("  prelude:     %s\n", prelude)
		var anns []string
		for _, n := range a.AnnotationNames() {
			anns = append(anns, fmt.Sprintf("%s (%s)", n, a.Annotations[n].Kind))
		}
		fmt.Printf("  annotations: %s\n", strings.Join(anns, ", "))
	}
}

type remoteOptions struct {
	lang                            string
	poly, polyrec, simplify, uninit bool
	jobs, solveJobs                 int
	analyses                        []string
	preludes                        []driver.PreludeFile
	jsonOut                         bool
}

// runRemote is the -serve client: it reads the files locally, POSTs them
// to a cquald daemon, and prints the daemon's report verbatim. The exit
// status mirrors the -json local path (0 clean, 1 conflicts, 2 front-end
// or transport failure) so scripts can swap -serve in and out. With
// -lang go the arguments must be .go files (the daemon analyzes
// request-supplied texts as one package; package patterns are local).
//
// The daemon's X-Trace-Id names the flight-recorder trace it kept (or
// may have kept) for this request. With -json it is spliced into the
// report as a leading "trace_id" member; without -json the report
// stays byte-verbatim (scripts diff it), and a failing run instead
// points at the retained trace in a stderr footer.
func runRemote(base string, opts remoteOptions, paths []string, stdout, stderr io.Writer) int {
	lang := opts.lang
	if lang == "c" {
		lang = "" // the wire default; keeps C requests byte-identical
	}
	req := server.AnalyzeRequest{
		Lang:      lang,
		Poly:      opts.poly,
		PolyRec:   opts.polyrec,
		Simplify:  opts.simplify,
		Uninit:    opts.uninit,
		Jobs:      opts.jobs,
		SolveJobs: opts.solveJobs,
		Analyses:  opts.analyses,
	}
	for _, p := range opts.preludes {
		req.Preludes = append(req.Preludes, server.PreludeJSON{Path: p.Path, Text: p.Text})
	}
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(stderr, "cqual:", err)
			return 2
		}
		req.Sources = append(req.Sources, server.SourceJSON{Path: p, Text: string(text)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(stderr, "cqual:", err)
		return 2
	}
	base = strings.TrimRight(base, "/")
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(stderr, "cqual:", err)
		return 2
	}
	defer resp.Body.Close()
	report, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(stderr, "cqual:", err)
		return 2
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "cqual: %s: %s: %s", base, resp.Status, report)
		traceFooter(stderr, base, traceID)
		return 2
	}
	if opts.jsonOut {
		stdout.Write(spliceTraceID(report, traceID))
	} else {
		stdout.Write(report)
	}

	// The report is the wire contract; derive the exit status from it
	// rather than from a side channel.
	var parsed struct {
		Summary *struct {
			Conflicts int `json:"conflicts"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(report, &parsed); err != nil {
		fmt.Fprintln(stderr, "cqual: malformed report:", err)
		return 2
	}
	// With -json the trace id is already in the report; for humans, a
	// failing run gets a stderr pointer at the retained trace instead.
	footer := func() {
		if !opts.jsonOut {
			traceFooter(stderr, base, traceID)
		}
	}
	switch {
	case parsed.Summary == nil:
		footer()
		return 2 // front-end failure: diagnostics only, no report
	case parsed.Summary.Conflicts > 0:
		footer()
		return 1
	default:
		return 0
	}
}

// spliceTraceID inserts the daemon's X-Trace-Id as a leading "trace_id"
// member of the JSON report, preserving the two-space indentation the
// daemon renders with. Reports that don't look like that rendering (or
// an absent id) pass through untouched — the verbatim body is the wire
// contract, and plain -serve output must stay byte-identical run to run.
func spliceTraceID(report []byte, id string) []byte {
	if id == "" || !bytes.HasPrefix(report, []byte("{\n")) {
		return report
	}
	idJSON, err := json.Marshal(id)
	if err != nil {
		return report
	}
	var buf bytes.Buffer
	buf.Grow(len(report) + len(idJSON) + 16)
	buf.WriteString("{\n  \"trace_id\": ")
	buf.Write(idJSON)
	buf.WriteString(",\n")
	buf.Write(report[len("{\n"):])
	return buf.Bytes()
}

// traceFooter tells a human where the daemon's flight recorder kept (or
// tail-retains) the trace of a failing run. Stderr only: stdout carries
// the report verbatim.
func traceFooter(stderr io.Writer, base, traceID string) {
	if traceID == "" {
		return
	}
	fmt.Fprintf(stderr, "cqual: trace retained by daemon: GET %s/v1/traces/%s\n", base, traceID)
}

// writeTrace exports the recorded spans as Chrome trace-event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func emitJSON(res *driver.Result) {
	data, err := res.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqual:", err)
		os.Exit(2)
	}
	os.Stdout.Write(append(data, '\n'))
}

// printSolverStats reports, on stderr, the size of the final constraint
// system and how much the solver's cycle condensation compressed it —
// the same counters the JSON report carries in its "solver" block.
func printSolverStats(res *driver.Result) {
	st := res.Solver
	fmt.Fprintf(os.Stderr, "solver: %d vars, %d constraints, %d mask class(es)\n",
		st.Vars, st.Constraints, st.MaskClasses)
	fmt.Fprintf(os.Stderr, "  condensation: %d components, %d cycles collapsed (%d vars merged), %d edges dropped\n",
		st.Components, st.SCCsCollapsed, st.VarsCollapsed, st.EdgesDropped)
	// Execution counters: how the solve ran, never what it computed
	// (results are byte-identical at every -solve-jobs setting).
	if st.Workers > 1 {
		fmt.Fprintf(os.Stderr, "  parallel:     %d workers, %d class(es) fanned out, %d region(s), %d level sweep(s), %d sequential fallback(s)\n",
			st.Workers, st.ParallelClasses, st.CCRegions, st.SweepLevels, st.SweepFallbacks)
	} else {
		fmt.Fprintf(os.Stderr, "  parallel:     sequential solve (-solve-jobs 1 or below threshold)\n")
	}
	// Delta counters appear only when the run went through a retained
	// session (driver.Session / cquald sessions); plain cqual runs solve
	// cold and print nothing here.
	if d := res.Delta; d != nil {
		if d.Applied {
			fmt.Fprintf(os.Stderr, "  delta:        hit — %d fragment(s) reused (+%d −%d), %d SCC(s) re-solved, %d var(s) dirty\n",
				d.FragsReused, d.FragsAdded, d.FragsRemoved, d.ResolvedSCCs, d.DirtyVars)
		} else {
			fmt.Fprintf(os.Stderr, "  delta:        cold solve (%s)\n", d.Fallback)
		}
		fmt.Fprintf(os.Stderr, "  session:      %d hit(s), %d fallback(s)\n", st.DeltaHits, st.DeltaFallbacks)
	}
	fmt.Fprintf(os.Stderr, "  solve time:   %v (analysis %v)\n", res.Timings.Solve, res.Timings.Analysis())
}

func printPositions(rep *constinfer.Report) {
	positions := append([]constinfer.PositionResult(nil), rep.Positions...)
	sort.Slice(positions, func(i, j int) bool {
		if positions[i].Func != positions[j].Func {
			return positions[i].Func < positions[j].Func
		}
		if positions[i].Index != positions[j].Index {
			return positions[i].Index < positions[j].Index
		}
		return positions[i].Depth < positions[j].Depth
	})
	for _, p := range positions {
		where := "result"
		if p.Index >= 0 {
			where = fmt.Sprintf("param %q", p.Param)
			if p.Param == "" {
				where = fmt.Sprintf("param #%d", p.Index)
			}
		}
		marker := " "
		if p.Verdict == constinfer.Either && !p.Declared {
			marker = "+" // a const the programmer could add
		}
		decl := ""
		if p.Declared {
			decl = " (declared)"
		}
		fmt.Printf("%s %s: %s level %d: %s%s\n", marker, p.Func, where, p.Depth, p.Verdict, decl)
	}
}

func printSummary(rep *constinfer.Report, opts constinfer.Options) {
	mode := "monomorphic"
	if opts.Poly {
		mode = "polymorphic"
		if opts.PolyRec {
			mode = "polymorphic-recursive"
		}
	}
	addable := rep.Inferred - rep.Declared
	fmt.Printf("%s const inference: %d functions, %d positions\n", mode, rep.Functions, rep.Total)
	fmt.Printf("  declared const:   %d\n", rep.Declared)
	fmt.Printf("  inferrable const: %d (%d more than declared)\n", rep.Inferred, addable)
	fmt.Printf("  never const:      %d\n", rep.Total-rep.Inferred)
}
