package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// writeSource drops one source file into a temp dir and returns its path.
func writeSource(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunRemoteVerbatim pins the -serve wire contract scripts depend
// on: without -json the daemon's report reaches stdout byte-verbatim —
// identical across runs, no trace_id splice — and a clean run prints no
// trace footer.
func TestRunRemoteVerbatim(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}))
	defer ts.Close()

	path := writeSource(t, "ok.c", "int id(int x) { return x; }\n")
	var out1, out2, errw bytes.Buffer
	if code := runRemote(ts.URL, remoteOptions{}, []string{path}, &out1, &errw); code != 0 {
		t.Fatalf("clean run exit = %d, want 0\nstderr: %s", code, errw.String())
	}
	if code := runRemote(ts.URL, remoteOptions{}, []string{path}, &out2, &errw); code != 0 {
		t.Fatalf("second run exit = %d, want 0", code)
	}
	if out1.String() != out2.String() {
		t.Error("plain -serve stdout differs between identical runs")
	}
	if strings.Contains(out1.String(), "trace_id") {
		t.Error("plain -serve report contains trace_id; the splice must be -json only")
	}
	if errw.Len() != 0 {
		t.Errorf("clean runs wrote stderr: %s", errw.String())
	}
}

// TestRunRemoteTraceID pins the flight-recorder surfacing: with -json
// the daemon's X-Trace-Id becomes a leading "trace_id" report member
// whose trace is retrievable from the daemon, and without -json a
// failing run points at it in a stderr footer instead.
func TestRunRemoteTraceID(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}))
	defer ts.Close()

	// A qualifier conflict: exit 1, and the first request is always
	// tail-retained (first of its latency bucket and the 1-in-K sample).
	path := writeSource(t, "bad.c", "void f(const char *s) { *s = 0; }\n")

	var out, errw bytes.Buffer
	if code := runRemote(ts.URL, remoteOptions{jsonOut: true}, []string{path}, &out, &errw); code != 1 {
		t.Fatalf("conflict run exit = %d, want 1\nstderr: %s", code, errw.String())
	}
	var rep struct {
		TraceID string `json:"trace_id"`
		Summary *struct {
			Conflicts int `json:"conflicts"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("spliced report is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.TraceID == "" {
		t.Fatalf("-json report missing trace_id:\n%s", out.String())
	}
	if rep.Summary == nil || rep.Summary.Conflicts != 1 {
		t.Errorf("splice damaged the report: %+v", rep.Summary)
	}
	if !bytes.HasPrefix(out.Bytes(), []byte("{\n  \"trace_id\": ")) {
		t.Errorf("trace_id not spliced as the leading member:\n%.80s", out.String())
	}
	if strings.Contains(errw.String(), "trace retained") {
		t.Error("-json run printed the human footer too")
	}

	// The id is live: the daemon serves the retained trace.
	resp, err := http.Get(ts.URL + "/v1/traces/" + rep.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/traces/%s: status %d, want 200", rep.TraceID, resp.StatusCode)
	}

	// Human mode: verbatim stdout, footer on stderr.
	out.Reset()
	errw.Reset()
	if code := runRemote(ts.URL, remoteOptions{}, []string{path}, &out, &errw); code != 1 {
		t.Fatalf("human conflict run exit = %d, want 1", code)
	}
	if strings.Contains(out.String(), "trace_id") {
		t.Error("human run stdout gained trace_id")
	}
	if !strings.Contains(errw.String(), "trace retained by daemon: GET "+ts.URL+"/v1/traces/") {
		t.Errorf("human conflict run missing trace footer:\n%s", errw.String())
	}
}

// TestRunRemoteFrontEndFailure: a parse failure exits 2 through -serve
// and still points the human at the retained trace.
func TestRunRemoteFrontEndFailure(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}))
	defer ts.Close()

	path := writeSource(t, "broken.c", "void broken( {\n")
	var out, errw bytes.Buffer
	if code := runRemote(ts.URL, remoteOptions{}, []string{path}, &out, &errw); code != 2 {
		t.Fatalf("broken run exit = %d, want 2\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "/v1/traces/") {
		t.Errorf("front-end failure missing trace footer:\n%s", errw.String())
	}
}

// TestSpliceTraceID pins the splice's defensive edges: absent ids and
// non-indented bodies pass through untouched.
func TestSpliceTraceID(t *testing.T) {
	report := []byte("{\n  \"summary\": {}\n}\n")
	if got := spliceTraceID(report, ""); !bytes.Equal(got, report) {
		t.Error("empty id must not alter the report")
	}
	compact := []byte(`{"summary":{}}`)
	if got := spliceTraceID(compact, "abc"); !bytes.Equal(got, compact) {
		t.Error("non-indented body must pass through verbatim")
	}
	got := spliceTraceID(report, `we"ird`)
	if !json.Valid(got) {
		t.Errorf("spliced report with quoted id is invalid JSON: %s", got)
	}
}
