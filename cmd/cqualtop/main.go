// Command cqualtop is a terminal dashboard for a running cquald
// daemon: the flight recorder's front panel. It polls the daemon's
// JSON surfaces — /metrics for the counter totals, /v1/introspect for
// live worker/cache/session/retention state, and /v1/events for the
// structured journal tail — and renders one compact refreshing screen:
// request throughput, cache hit rates, SLO burn rates per window,
// retained traces with their retention reasons, resident sessions with
// their last delta outcome, and the newest journal events.
//
// Usage:
//
//	cqualtop [-addr URL] [-interval d] [-events n] [-once]
//
// The display is plain ANSI (a home-and-clear escape between frames,
// nothing else), so it works in any terminal and in `watch`. -once
// prints a single frame and exits — the scripting and CI mode — and
// needs no TTY at all. Event tails accumulate across frames: each poll
// resumes the journal from the last seen sequence number, so a slow
// interval drops nothing that the daemon's ring still holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8710", "base URL of the cquald daemon")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	events := flag.Int("events", 8, "journal events shown in the tail")
	once := flag.Bool("once", false, "print one frame and exit (no ANSI clear; for scripts and CI)")
	flag.Parse()

	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "cqualtop: -interval must be positive")
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "cqualtop: unexpected arguments")
		os.Exit(2)
	}
	st := newTopState(*addr, *events)
	if *once {
		if err := st.runOnce(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cqualtop:", err)
			os.Exit(1)
		}
		return
	}
	for {
		var frame strings.Builder
		if err := st.runOnce(&frame); err != nil {
			// The daemon may be restarting; say so and keep polling.
			fmt.Fprintf(os.Stdout, "\x1b[H\x1b[2Jcqualtop: %s: %v (retrying every %v)\n", *addr, err, *interval)
		} else {
			fmt.Fprint(os.Stdout, "\x1b[H\x1b[2J"+frame.String())
		}
		time.Sleep(*interval)
	}
}

// topState carries what persists between frames: the HTTP client, the
// journal resume point, the rolling event tail, and the previous
// counter sample for rate computation.
type topState struct {
	base      string
	client    *http.Client
	maxEvents int

	since  uint64      // journal resume point (last seen Seq)
	events []obs.Event // rolling tail, oldest first

	prev   *server.Metrics // previous frame's counters, nil on the first
	prevAt time.Time
	now    func() time.Time // test seam
}

func newTopState(base string, maxEvents int) *topState {
	if maxEvents <= 0 {
		maxEvents = 8
	}
	return &topState{
		base:      strings.TrimRight(base, "/"),
		client:    &http.Client{Timeout: 10 * time.Second},
		maxEvents: maxEvents,
		now:       time.Now,
	}
}

// getJSON fetches one daemon endpoint into out.
func (st *topState) getJSON(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, st.base+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := st.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runOnce polls the three surfaces and renders one frame to w. It is
// the whole dashboard; main only decides how often to call it and
// whether to clear the screen in between.
func (st *topState) runOnce(w io.Writer) error {
	var m server.Metrics
	if err := st.getJSON("/metrics", &m); err != nil {
		return err
	}
	var intro server.Introspection
	if err := st.getJSON("/v1/introspect", &intro); err != nil {
		return err
	}
	var ev server.EventsResponse
	if err := st.getJSON(fmt.Sprintf("/v1/events?since=%d", st.since), &ev); err != nil {
		return err
	}
	st.since = ev.Next
	st.events = append(st.events, ev.Events...)
	if len(st.events) > st.maxEvents {
		st.events = st.events[len(st.events)-st.maxEvents:]
	}

	now := st.now()
	st.render(w, &m, &intro, now)
	st.prev, st.prevAt = &m, now
	return nil
}

// render writes one frame. Sections, top to bottom: header, request
// totals with rates, caches, solver/delta, SLO burn rates, flight
// recorder, retained traces, sessions, journal tail.
func (st *topState) render(w io.Writer, m *server.Metrics, intro *server.Introspection, now time.Time) {
	up := time.Duration(m.UptimeMS * float64(time.Millisecond)).Round(time.Second)
	fmt.Fprintf(w, "cqualtop — %s — up %v\n\n", st.base, up)

	rate := ""
	if st.prev != nil {
		if dt := now.Sub(st.prevAt).Seconds(); dt > 0 && m.Requests >= st.prev.Requests {
			rate = fmt.Sprintf(" (%.1f/s)", float64(m.Requests-st.prev.Requests)/dt)
		}
	}
	fmt.Fprintf(w, "requests  %d%s · analyses %d · failures %d · timeouts %d · in-flight %d/%d (running %d)\n",
		m.Requests, rate, m.Analyses, m.Failures, m.Timeouts,
		intro.Workers.InFlight, intro.Workers.MaxConcurrent, intro.Workers.Running)
	fmt.Fprintf(w, "caches    result %s · summary %s · sessions %s\n",
		cacheLine(intro.Caches.Result), cacheLine(intro.Caches.Summary), cacheLine(intro.Caches.Session))
	fmt.Fprintf(w, "solver    %d vars · %d constraints over %d run(s) · delta hits %d fallbacks %d\n",
		m.Solver.Vars, m.Solver.Constraints, m.Stages.Runs, m.Delta.Hits, m.Delta.Fallbacks)

	fmt.Fprintf(w, "\nslo       (burn <1 inside budget, >1 burning)\n")
	if len(intro.SLOs) == 0 {
		fmt.Fprintln(w, "  none declared")
	}
	for _, s := range intro.SLOs {
		labels := make([]string, 0, len(s.Burn))
		for label := range s.Burn {
			labels = append(labels, label)
		}
		sort.Slice(labels, func(i, j int) bool { return windowRank(labels[i]) < windowRank(labels[j]) })
		parts := make([]string, len(labels))
		worst := 0.0
		for i, label := range labels {
			parts[i] = fmt.Sprintf("%s %.2f", label, s.Burn[label])
			if s.Burn[label] > worst {
				worst = s.Burn[label]
			}
		}
		status := "ok"
		if worst > 1 {
			status = "BURNING"
		}
		fmt.Fprintf(w, "  %-10s %v @ %.2f%%: %s  [%s]\n",
			s.Endpoint, time.Duration(s.ObjectiveMS*float64(time.Millisecond)), s.Target*100,
			strings.Join(parts, " · "), status)
	}

	ret := intro.Retention
	fmt.Fprintf(w, "\nflight    %d decision(s) · %d admitted · %d resident · %d evicted · journal %d event(s), %d dropped\n",
		ret.Decisions, ret.Admitted, ret.Resident, ret.Evicted, intro.Journal.Entries, intro.Journal.Dropped)
	reasons := make([]string, 0, len(ret.ByReason))
	for _, r := range obs.RetainReasons {
		if n := ret.ByReason[r]; n > 0 {
			reasons = append(reasons, fmt.Sprintf("%s %d", r, n))
		}
	}
	if len(reasons) > 0 {
		fmt.Fprintf(w, "          retained by reason: %s\n", strings.Join(reasons, " · "))
	}
	fmt.Fprintf(w, "traces    (newest first; GET %s/v1/traces/<id>)\n", st.base)
	if len(ret.Traces) == 0 {
		fmt.Fprintln(w, "  none retained yet")
	}
	for i, tr := range ret.Traces {
		if i == 5 {
			fmt.Fprintf(w, "  … %d more resident\n", len(ret.Traces)-i)
			break
		}
		fmt.Fprintf(w, "  %-34s %8.1fms  %6s  [%s]\n",
			tr.ID, tr.Seconds*1000, byteCount(int64(tr.Bytes)), strings.Join(tr.Reasons, ","))
	}

	fmt.Fprintln(w, "\nsessions  (most recent first)")
	if len(intro.Sessions) == 0 {
		fmt.Fprintln(w, "  none retained")
	}
	for i, s := range intro.Sessions {
		if i == 5 {
			fmt.Fprintf(w, "  … %d more retained\n", len(intro.Sessions)-i)
			break
		}
		if s.Last == nil {
			fmt.Fprintf(w, "  %-14s (never run)\n", s.Key)
			continue
		}
		delta := fmt.Sprintf("cold (%s)", s.Last.Delta.Fallback)
		if s.Last.Delta.Applied {
			delta = fmt.Sprintf("hit: %d reused, %d SCC(s), %d dirty",
				s.Last.Delta.FragsReused, s.Last.Delta.ResolvedSCCs, s.Last.Delta.DirtyVars)
		}
		fmt.Fprintf(w, "  %-14s run %-3d %d file(s) %d diag · delta %s\n",
			s.Key, s.Last.Runs, s.Last.Sources, s.Last.Diagnostics, delta)
	}

	fmt.Fprintf(w, "\nevents    (journal tail; next seq %d)\n", intro.Journal.NextSeq)
	if len(st.events) == 0 {
		fmt.Fprintln(w, "  none yet")
	}
	for _, e := range st.events {
		attrs := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			attrs = append(attrs, k)
		}
		sort.Strings(attrs)
		for i, k := range attrs {
			attrs[i] = k + "=" + e.Attrs[k]
		}
		fmt.Fprintf(w, "  %s %-5s %-16s %s %s\n",
			time.UnixMilli(e.TimeMS).Format("15:04:05"), e.Level, e.Type, e.Message, strings.Join(attrs, " "))
	}
}

// cacheLine renders one cache stat block as "entries (bytes) hit-rate".
func cacheLine(s cache.Stats) string {
	total := s.Hits + s.Misses
	rate := "–"
	if total > 0 {
		rate = fmt.Sprintf("%.0f%%", 100*float64(s.Hits)/float64(total))
	}
	line := fmt.Sprintf("%d entr%s %s hit", s.Entries, plural(s.Entries, "y", "ies"), rate)
	if s.Bytes > 0 {
		line += " " + byteCount(s.Bytes)
	}
	return line
}

// plural picks a suffix by count.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// windowRank orders burn-window labels short-to-long ("5m" < "1h" < "6h").
func windowRank(label string) time.Duration {
	d, err := time.ParseDuration(label)
	if err != nil {
		return time.Duration(1<<62 - 1)
	}
	return d
}

// byteCount renders a size compactly (B/KB/MB).
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
