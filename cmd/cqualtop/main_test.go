package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRunOnce drives the dashboard against a real in-process daemon:
// one clean analyze, one session analyze (whose second run delta-hits),
// then two frames. The first frame must carry every section with live
// numbers; the second must show a request rate and resume the journal
// tail without re-printing consumed events.
func TestRunOnce(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{MaxConcurrent: 3}))
	defer ts.Close()

	post := func(body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post(`{"sources":[{"path":"a.c","text":"int id(int x) { return x; }"}]}`)
	post(`{"session":"top","sources":[{"path":"s.c","text":"int one(void) { return 1; }"}]}`)
	post(`{"session":"top","sources":[{"path":"s.c","text":"int one(void) { return 1; }\nint two(void) { return 2; }"}]}`)

	st := newTopState(ts.URL, 8)
	base := time.Unix(1700000000, 0)
	st.now = func() time.Time { return base }

	var frame1 strings.Builder
	if err := st.runOnce(&frame1); err != nil {
		t.Fatal(err)
	}
	got := frame1.String()
	for _, want := range []string{
		"cqualtop — " + ts.URL,
		"requests  3",
		"in-flight 0/3",
		"delta hits 1",
		"slo",
		"analyze", // the default SLO endpoint
		"5m",      // burn windows rendered short-to-long
		"flight    3 decision(s)",
		"traces    (newest first",
		"sessions  (most recent first)",
		"top",       // the session key
		"delta hit", // its last run reused fragments
		"events    (journal tail",
		"delta_fallback", // the session's first solve journaled its reason
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[") {
		t.Error("runOnce emitted ANSI escapes; clearing is main's job")
	}

	// Second frame: rate appears, consumed events don't repeat.
	firstEvents := strings.Count(got, "delta_fallback")
	post(`{"sources":[{"path":"b.c","text":"int id2(int x) { return x; }"}]}`)
	st.now = func() time.Time { return base.Add(2 * time.Second) }
	var frame2 strings.Builder
	if err := st.runOnce(&frame2); err != nil {
		t.Fatal(err)
	}
	got2 := frame2.String()
	if !strings.Contains(got2, "requests  4 (0.5/s)") {
		t.Errorf("second frame missing request rate:\n%s", got2)
	}
	if n := strings.Count(got2, "delta_fallback"); n != firstEvents {
		t.Errorf("event tail changed across frames: %d vs %d occurrences (tail must accumulate, not refetch)", n, firstEvents)
	}
}

// TestRunOnceDown pins the failure mode: a dead daemon is an error,
// not a blank frame.
func TestRunOnceDown(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	st := newTopState(ts.URL, 4)
	if err := st.runOnce(&strings.Builder{}); err == nil {
		t.Fatal("runOnce against a closed server succeeded")
	}
}
