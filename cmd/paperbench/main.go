// Command paperbench regenerates the evaluation of Section 4.4 of "A
// Theory of Type Qualifiers" (PLDI 1999): Table 1 (benchmarks), Table 2
// (compile/mono/poly times and const counts) and Figure 6 (stacked
// percentage chart), over the synthetic benchmark suite.
//
// Usage:
//
//	paperbench [-table1] [-table2] [-figure6] [-simplify] [-polyrec]
//
// With no selection flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/constinfer"
	"repro/internal/experiment"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 only")
	table2 := flag.Bool("table2", false, "print Table 2 only")
	figure6 := flag.Bool("figure6", false, "print Figure 6 only")
	simplify := flag.Bool("simplify", true, "scheme simplification in the polymorphic pass (the Section 6 optimization; disable with -simplify=false)")
	polyrec := flag.Bool("polyrec", false, "enable polymorphic recursion in the polymorphic pass")
	flag.Parse()

	opts := constinfer.Options{Simplify: *simplify, PolyRec: *polyrec}
	results, err := experiment.RunSuite(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}

	all := !*table1 && !*table2 && !*figure6
	if all || *table1 {
		fmt.Println(experiment.Table1(results))
	}
	if all || *table2 {
		fmt.Println(experiment.Table2(results))
	}
	if all || *figure6 {
		fmt.Println(experiment.Figure6(results))
	}
}
