// Command paperbench regenerates the evaluation of Section 4.4 of "A
// Theory of Type Qualifiers" (PLDI 1999): Table 1 (benchmarks), Table 2
// (compile/mono/poly times and const counts) and Figure 6 (stacked
// percentage chart), over the synthetic benchmark suite.
//
// Usage:
//
//	paperbench [-table1] [-table2] [-figure6] [-simplify] [-polyrec]
//	           [-delta-vars n] [-delta-rounds n]
//	           [-go-self PATTERN] [-go-self-rounds n]
//	           [-new-analyses] [-parallel] [-parallel-lines n]
//	           [-obs] [-obs-requests n] [-obs-rounds n] [-out FILE]
//
// With no selection flags, everything is printed. -out additionally
// writes the per-benchmark measurements as machine-readable JSON (the
// repository tracks them as BENCH_N.json files, one per perf-relevant
// change, so the trajectory accumulates). Every measurement block also
// records its allocation footprint (runtime.ReadMemStats deltas), so
// memory regressions show up in the same trajectory as time ones.
//
// The report also carries a warm-session column: a retained
// constraint.Session re-solving the -delta-vars cycle-graph workload
// after a one-fragment edit, against a cold solve of the same system
// (see experiment.MeasureDelta). -delta-vars 0 disables it.
//
// -parallel runs the parallel-solve scaling benchmark: one large
// benchgen corpus (-parallel-lines, default a million lines) built
// once, then cold-solved at -solve-jobs 1/2/4/NumCPU (see
// experiment.MeasureParallel). The block records the solve-time curve
// and the solver's parallel-execution counters at each point.
//
// -obs measures what cquald's always-on flight recorder costs a
// warm-path (cache-hit) request: two in-process servers, recording on
// vs off, same repeated request, median latencies and their ratio (see
// experiment.MeasureObs). The acceptance bound is overhead ≤ 5%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/constinfer"
	"repro/internal/driver"
	"repro/internal/experiment"

	// The -new-analyses Go corpus goes through the Go front end.
	_ "repro/internal/gofront"
)

// memJSON is one block's allocation footprint: how much the block's
// measurement allocated in total (cumulative, survives GC) and where
// the live heap stood when it finished.
type memJSON struct {
	AllocBytes     uint64 `json:"alloc_bytes"`
	Mallocs        uint64 `json:"mallocs"`
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
}

// measureMem runs fn between two runtime.ReadMemStats snapshots.
// TotalAlloc/Mallocs are monotonic, so their deltas attribute
// allocation to the block even when the GC runs mid-measurement.
func measureMem(fn func()) memJSON {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return memJSON{
		AllocBytes:     after.TotalAlloc - before.TotalAlloc,
		Mallocs:        after.Mallocs - before.Mallocs,
		HeapInuseBytes: after.HeapInuse,
	}
}

// benchJSON is the -out schema: one record per benchmark, mirroring the
// Table 2 columns plus the generated size.
type benchJSON struct {
	Name          string  `json:"name"`
	Lines         int     `json:"lines"`
	CompileTimeMS float64 `json:"compile_time_ms"`
	MonoTimeMS    float64 `json:"mono_time_ms"`
	PolyTimeMS    float64 `json:"poly_time_ms"`
	Declared      int     `json:"declared_const"`
	Mono          int     `json:"mono_const"`
	Poly          int     `json:"poly_const"`
	Total         int     `json:"total_positions"`
}

// deltaJSON is the warm-session re-solve block of the -out schema: the
// delta engine's headline numbers on the synthetic solver workload.
type deltaJSON struct {
	Vars          int     `json:"vars"`
	Constraints   int     `json:"constraints"`
	Frags         int     `json:"frags"`
	ColdSolveMS   float64 `json:"cold_solve_ms"`
	WarmResolveMS float64 `json:"warm_resolve_ms"`
	WarmOverCold  float64 `json:"warm_over_cold"`
	Hits          int     `json:"delta_hits"`
	Fallbacks     int     `json:"delta_fallbacks"`
	Memory        memJSON `json:"memory"`
}

// goSelfJSON is the Go self-analysis block of the -out schema: the Go
// front end analyzing this repository's own packages.
type goSelfJSON struct {
	Pattern     string  `json:"pattern"`
	Files       int     `json:"files"`
	Functions   int     `json:"functions"`
	Total       int     `json:"total_positions"`
	Inferred    int     `json:"inferred_const"`
	NotConst    int     `json:"not_const"`
	Constraints int     `json:"constraints"`
	Vars        int     `json:"vars"`
	FrontEndMS  float64 `json:"frontend_ms"`
	ConstrainMS float64 `json:"constrain_ms"`
	SolveMS     float64 `json:"solve_ms"`
	TotalMS     float64 `json:"total_ms"`
	Memory      memJSON `json:"memory"`
}

// newAnalysisJSON is one -new-analyses measurement: an expansion-pack
// analysis (or the combined four-analysis pass) over its seeded example
// corpus, with the planted-conflict count and the shared-solver stats.
type newAnalysisJSON struct {
	Name        string   `json:"name"`
	Lang        string   `json:"lang"`
	Analyses    []string `json:"analyses"`
	Conflicts   int      `json:"conflicts"`
	Vars        int      `json:"vars"`
	Constraints int      `json:"constraints"`
	MaskClasses int      `json:"mask_classes"`
	SolveMS     float64  `json:"solve_ms"`
	TotalMS     float64  `json:"total_ms"`
	Memory      memJSON  `json:"memory"`
}

// parallelPointJSON is one worker count on the parallel-solve curve.
type parallelPointJSON struct {
	Jobs            int     `json:"jobs"`
	SolveMS         float64 `json:"solve_ms"`
	Workers         int     `json:"workers"`
	ParallelClasses int     `json:"parallel_classes"`
	SweepLevels     int     `json:"sweep_levels"`
	SweepFallbacks  int     `json:"sweep_fallbacks"`
	CCRegions       int     `json:"cc_regions"`
	Speedup         float64 `json:"speedup_vs_sequential"`
}

// obsJSON is the -obs block of the -out schema: the flight recorder's
// warm-path overhead, measured by A/B-ing two in-process servers (see
// experiment.MeasureObs). Overhead is (on/off)-1; the acceptance bound
// for always-on recording is ≤ 0.05.
type obsJSON struct {
	Requests  int     `json:"requests"`
	Rounds    int     `json:"rounds"`
	WarmOnUS  float64 `json:"warm_on_us"`
	WarmOffUS float64 `json:"warm_off_us"`
	Overhead  float64 `json:"overhead"`
	Retained  int     `json:"retained_traces"`
	Events    int     `json:"journal_events"`
	Memory    memJSON `json:"memory"`
}

// parallelJSON is the -parallel block of the -out schema: cold solves
// of one large generated corpus at increasing solver worker counts.
type parallelJSON struct {
	CorpusLines int                 `json:"corpus_lines"`
	CorpusVars  int                 `json:"corpus_vars"`
	Constraints int                 `json:"constraints"`
	MaskClasses int                 `json:"mask_classes"`
	Rounds      int                 `json:"rounds"`
	NumCPU      int                 `json:"num_cpus"`
	Points      []parallelPointJSON `json:"points"`
	Memory      memJSON             `json:"memory"`
}

type benchFile struct {
	Options struct {
		Simplify bool `json:"simplify"`
		PolyRec  bool `json:"polyrec"`
	} `json:"options"`
	Benchmarks  []benchJSON       `json:"benchmarks"`
	SuiteMemory *memJSON          `json:"suite_memory,omitempty"`
	Delta       *deltaJSON        `json:"delta,omitempty"`
	GoSelf      *goSelfJSON       `json:"go_self,omitempty"`
	NewAnalyses []newAnalysisJSON `json:"new_analyses,omitempty"`
	Parallel    *parallelJSON     `json:"parallel,omitempty"`
	Obs         *obsJSON          `json:"obs,omitempty"`
}

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 only")
	table2 := flag.Bool("table2", false, "print Table 2 only")
	figure6 := flag.Bool("figure6", false, "print Figure 6 only")
	simplify := flag.Bool("simplify", true, "scheme simplification in the polymorphic pass (the Section 6 optimization; disable with -simplify=false)")
	polyrec := flag.Bool("polyrec", false, "enable polymorphic recursion in the polymorphic pass")
	deltaVars := flag.Int("delta-vars", 20000, "warm-session re-solve workload size in variables (0 = skip)")
	deltaRounds := flag.Int("delta-rounds", 9, "warm-session re-solve measurement rounds (median reported)")
	goSelf := flag.String("go-self", "", "also run the Go front end over this package pattern (e.g. ./internal/...) and report the self-analysis block")
	goSelfRounds := flag.Int("go-self-rounds", 3, "Go self-analysis measurement rounds (median reported)")
	newAnalyses := flag.Bool("new-analyses", false, "also measure the expansion-pack analyses (unique, fdstate, and the combined four-analysis pass) over the seeded example corpora")
	newAnalysesRounds := flag.Int("new-analyses-rounds", 3, "expansion-pack measurement rounds (median reported)")
	parallel := flag.Bool("parallel", false, "also run the parallel-solve scaling benchmark (cold solves at -solve-jobs 1/2/4/NumCPU)")
	parallelLines := flag.Int("parallel-lines", 1_000_000, "parallel benchmark corpus size in generated lines")
	parallelRounds := flag.Int("parallel-rounds", 3, "parallel benchmark measurement rounds per worker count (median reported)")
	parallelSeed := flag.Int64("parallel-seed", 2001, "parallel benchmark corpus generation seed")
	obsBench := flag.Bool("obs", false, "also measure the flight recorder's warm-path overhead (always-on recording vs a disabled baseline)")
	obsRequests := flag.Int("obs-requests", 200, "warm-path requests timed per round in the -obs block")
	obsRounds := flag.Int("obs-rounds", 5, "rounds per arm in the -obs block (median of per-round medians reported)")
	out := flag.String("out", "", "also write the measurements as JSON to this file (e.g. BENCH_5.json)")
	flag.Parse()

	opts := constinfer.Options{Simplify: *simplify, PolyRec: *polyrec}
	var results []*experiment.Result
	var err error
	suiteMem := measureMem(func() { results, err = experiment.RunSuite(opts) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}

	all := !*table1 && !*table2 && !*figure6
	if all || *table1 {
		fmt.Println(experiment.Table1(results))
	}
	if all || *table2 {
		fmt.Println(experiment.Table2(results))
	}
	if all || *figure6 {
		fmt.Println(experiment.Figure6(results))
	}

	var f benchFile
	f.Options.Simplify = opts.Simplify
	f.Options.PolyRec = opts.PolyRec
	f.SuiteMemory = &suiteMem
	for _, r := range results {
		f.Benchmarks = append(f.Benchmarks, benchJSON{
			Name:          r.Config.Name,
			Lines:         r.Lines,
			CompileTimeMS: r.CompileTime.Seconds() * 1000,
			MonoTimeMS:    r.MonoTime.Seconds() * 1000,
			PolyTimeMS:    r.PolyTime.Seconds() * 1000,
			Declared:      r.Declared,
			Mono:          r.Mono,
			Poly:          r.Poly,
			Total:         r.Total,
		})
	}

	if *deltaVars > 0 {
		var d experiment.DeltaResult
		mem := measureMem(func() { d = experiment.MeasureDelta(*deltaVars, *deltaRounds) })
		f.Delta = &deltaJSON{
			Vars:          d.Vars,
			Constraints:   d.Constraints,
			Frags:         d.Frags,
			ColdSolveMS:   d.ColdSolve.Seconds() * 1000,
			WarmResolveMS: d.WarmResolve.Seconds() * 1000,
			WarmOverCold:  d.WarmOverCold(),
			Hits:          d.Hits,
			Fallbacks:     d.Fallbacks,
			Memory:        mem,
		}
		fmt.Printf("Delta re-solve (n=%d, %d frags): cold %.3fms, warm %.3fms (%.1f%% of cold), %d hit(s), %d fallback(s)\n",
			d.Vars, d.Frags, f.Delta.ColdSolveMS, f.Delta.WarmResolveMS,
			f.Delta.WarmOverCold*100, d.Hits, d.Fallbacks)
	}

	if *goSelf != "" {
		var g *experiment.GoSelfResult
		mem := measureMem(func() { g, err = experiment.MeasureGoSelf(*goSelf, *goSelfRounds) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		f.GoSelf = &goSelfJSON{
			Pattern:     g.Pattern,
			Files:       g.Files,
			Functions:   g.Functions,
			Total:       g.Total,
			Inferred:    g.Inferred,
			NotConst:    g.NotConst,
			Constraints: g.Constraints,
			Vars:        g.Vars,
			FrontEndMS:  g.FrontEnd.Seconds() * 1000,
			ConstrainMS: g.Constrain.Seconds() * 1000,
			SolveMS:     g.Solve.Seconds() * 1000,
			TotalMS:     g.TotalTime.Seconds() * 1000,
			Memory:      mem,
		}
		fmt.Printf("Go self-analysis (%s): %d files, %d functions, %d positions (%d inferrable const, %d never const), %d constraints; front end %.1fms, constrain %.1fms, solve %.1fms (total %.1fms)\n",
			g.Pattern, g.Files, g.Functions, g.Total, g.Inferred, g.NotConst,
			g.Constraints, f.GoSelf.FrontEndMS, f.GoSelf.ConstrainMS,
			f.GoSelf.SolveMS, f.GoSelf.TotalMS)
	}

	if *newAnalyses {
		f.NewAnalyses, err = measureNewAnalyses(*newAnalysesRounds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		for _, r := range f.NewAnalyses {
			fmt.Printf("New analysis %s (%s): %d conflict(s), %d vars, %d constraints, %d mask class(es); solve %.3fms (total %.1fms)\n",
				r.Name, r.Lang, r.Conflicts, r.Vars, r.Constraints, r.MaskClasses, r.SolveMS, r.TotalMS)
		}
	}

	if *parallel {
		jobsList := parallelJobsList(runtime.NumCPU())
		var p experiment.ParallelResult
		mem := measureMem(func() {
			p, err = experiment.MeasureParallel(*parallelLines, *parallelSeed, *parallelRounds, jobsList)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		f.Parallel = &parallelJSON{
			CorpusLines: p.Lines,
			CorpusVars:  p.Vars,
			Constraints: p.Constraints,
			MaskClasses: p.MaskClasses,
			Rounds:      p.Rounds,
			NumCPU:      p.NumCPU,
			Memory:      mem,
		}
		fmt.Printf("Parallel solve (%d lines, %d vars, %d constraints, %d mask class(es), %d cpu(s), median of %d):\n",
			p.Lines, p.Vars, p.Constraints, p.MaskClasses, p.NumCPU, p.Rounds)
		for _, pt := range p.Points {
			speedup := p.Speedup(pt)
			f.Parallel.Points = append(f.Parallel.Points, parallelPointJSON{
				Jobs:            pt.Jobs,
				SolveMS:         pt.Solve.Seconds() * 1000,
				Workers:         pt.Stats.Workers,
				ParallelClasses: pt.Stats.ParallelClasses,
				SweepLevels:     pt.Stats.SweepLevels,
				SweepFallbacks:  pt.Stats.SweepFallbacks,
				CCRegions:       pt.Stats.CCRegions,
				Speedup:         speedup,
			})
			fmt.Printf("  -solve-jobs %-3d solve %8.1fms  %.2fx  (%d worker(s), %d class(es), %d region(s), %d level sweep(s), %d fallback(s))\n",
				pt.Jobs, pt.Solve.Seconds()*1000, speedup,
				pt.Stats.Workers, pt.Stats.ParallelClasses, pt.Stats.CCRegions, pt.Stats.SweepLevels, pt.Stats.SweepFallbacks)
		}
	}

	if *obsBench {
		var o experiment.ObsResult
		mem := measureMem(func() { o, err = experiment.MeasureObs(*obsRequests, *obsRounds) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		f.Obs = &obsJSON{
			Requests:  o.Requests,
			Rounds:    o.Rounds,
			WarmOnUS:  float64(o.WarmOn.Microseconds()),
			WarmOffUS: float64(o.WarmOff.Microseconds()),
			Overhead:  o.Overhead(),
			Retained:  o.Retained,
			Events:    o.Events,
			Memory:    mem,
		}
		fmt.Printf("Flight-recorder overhead (warm path, %d req × %d rounds/arm): on %.1fµs, off %.1fµs, overhead %+.2f%% (%d trace(s) resident, %d journal event(s))\n",
			o.Requests, o.Rounds, f.Obs.WarmOnUS, f.Obs.WarmOffUS, f.Obs.Overhead*100, o.Retained, o.Events)
	}

	if *out != "" {
		if err := writeJSON(*out, f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	}
}

// parallelJobsList is the measured curve: sequential baseline, 2, 4,
// and the machine's CPU count, deduplicated and ascending.
func parallelJobsList(ncpu int) []int {
	set := map[int]bool{1: true, 2: true, 4: true, ncpu: true}
	var jobs []int
	for j := range set {
		if j >= 1 {
			jobs = append(jobs, j)
		}
	}
	sort.Ints(jobs)
	return jobs
}

// measureNewAnalyses runs the expansion-pack corpora through the shared
// pipeline: each analysis alone over its seeded example, then const,
// taint, unique, and fdstate together in one constraint pass over the
// union of the C corpora. Timings are medians over rounds; counts come
// from the (deterministic) first run.
func measureNewAnalyses(rounds int) ([]newAnalysisJSON, error) {
	prelude := func(path string) (driver.PreludeFile, error) {
		data, err := os.ReadFile(path)
		return driver.PreludeFile{Path: path, Text: string(data)}, err
	}
	uq, err1 := prelude("examples/unique-c/unique.q")
	fq, err2 := prelude("examples/fdstate/fd.q")
	gq, err3 := prelude("examples/go-fdstate/fd.q")
	tq, err4 := prelude("examples/taint-c/taint.q")
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			return nil, err
		}
	}

	taintC, err := filepath.Glob("examples/taint-c/*.c")
	if err != nil || len(taintC) == 0 {
		return nil, fmt.Errorf("taint corpus missing: %v (%d files)", err, len(taintC))
	}
	sort.Strings(taintC)

	runs := []struct {
		name string
		cfg  driver.Config
		srcs []driver.Source
	}{
		{"unique-c",
			driver.Config{Jobs: 1, Analyses: []string{"unique"}, Preludes: []driver.PreludeFile{uq}},
			driver.FileSources("examples/unique-c/registry.c")},
		{"fdstate-c",
			driver.Config{Jobs: 1, Analyses: []string{"fdstate"}, Preludes: []driver.PreludeFile{fq}},
			driver.FileSources("examples/fdstate/server.c")},
		{"go-fdstate",
			driver.Config{Jobs: 1, Lang: "go", Analyses: []string{"fdstate"}, Preludes: []driver.PreludeFile{gq}},
			driver.FileSources("./examples/go-fdstate/dirty")},
		{"combined-c",
			driver.Config{Jobs: 1, Analyses: []string{"const", "taint", "unique", "fdstate"},
				Preludes: []driver.PreludeFile{tq, uq, fq}},
			driver.FileSources(append(append([]string{}, taintC...),
				"examples/unique-c/registry.c", "examples/fdstate/server.c")...)},
	}

	var out []newAnalysisJSON
	for _, r := range runs {
		var solves, totals []time.Duration
		var first *driver.Result
		var runErr error
		mem := measureMem(func() {
			for i := 0; i < rounds; i++ {
				res, err := driver.Run(r.cfg, r.srcs)
				if err != nil {
					runErr = fmt.Errorf("%s: %v", r.name, err)
					return
				}
				if res.Report == nil {
					runErr = fmt.Errorf("%s: run failed: %v", r.name, res.Errors())
					return
				}
				if first == nil {
					first = res
				}
				solves = append(solves, res.Timings.Solve)
				totals = append(totals, res.Timings.Total())
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		conflicts := 0
		for _, d := range first.Diagnostics {
			if d.Code == "qualifier-conflict" {
				conflicts++
			}
		}
		lang := r.cfg.Lang
		if lang == "" {
			lang = "c"
		}
		out = append(out, newAnalysisJSON{
			Name:        r.name,
			Lang:        lang,
			Analyses:    r.cfg.AnalysisNames(),
			Conflicts:   conflicts,
			Vars:        first.Solver.Vars,
			Constraints: first.Solver.Constraints,
			MaskClasses: first.Solver.MaskClasses,
			SolveMS:     median(solves).Seconds() * 1000,
			TotalMS:     median(totals).Seconds() * 1000,
			Memory:      mem,
		})
	}
	return out, nil
}

// median returns the middle duration (lower middle for even counts).
func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[(len(ds)-1)/2]
}

func writeJSON(path string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
