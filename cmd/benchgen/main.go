// Command benchgen writes the synthetic benchmark suite of the Section
// 4.4 experiment to disk as C files (substitutes for the paper's GNU
// packages; see internal/benchgen for what is preserved).
//
// Usage:
//
//	benchgen [-out dir] [-only name]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/benchgen"
)

func main() {
	out := flag.String("out", "benchmarks", "output directory")
	only := flag.String("only", "", "generate a single benchmark by name")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	written := 0
	for _, cfg := range benchgen.PaperSuite() {
		if *only != "" && cfg.Name != *only {
			continue
		}
		src := benchgen.Generate(cfg)
		path := filepath.Join(*out, cfg.Name+".c")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d lines\n", path, strings.Count(src, "\n"))
		written++
	}
	if written == 0 {
		fmt.Fprintf(os.Stderr, "benchgen: no benchmark named %q\n", *only)
		os.Exit(1)
	}
}
