// Command benchgen writes the synthetic benchmark suite of the Section
// 4.4 experiment to disk as C files (substitutes for the paper's GNU
// packages; see internal/benchgen for what is preserved), or, with
// -parallel, the large mixed-shape corpus of the parallel-solve
// benchmark at any target size.
//
// Every file is reported with its line and qualifier-variable counts,
// so the scale of a generated corpus is auditable without re-running
// the analysis.
//
// Usage:
//
//	benchgen [-out dir] [-only name] [-seed n]
//	benchgen -parallel [-lines n] [-seed n] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/benchgen"
	"repro/internal/driver"
)

func main() {
	out := flag.String("out", "benchmarks", "output directory")
	only := flag.String("only", "", "generate a single benchmark by name")
	seed := flag.Int64("seed", 0, "override the generation seed (0 = each benchmark's default)")
	parallel := flag.Bool("parallel", false, "generate the parallel-solve corpus instead of the paper suite")
	lines := flag.Int("lines", 1_000_000, "with -parallel: target line count")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	var cfgs []benchgen.Config
	if *parallel {
		s := *seed
		if s == 0 {
			s = 2001
		}
		cfgs = []benchgen.Config{benchgen.ParallelCorpus(*lines, s)}
	} else {
		for _, cfg := range benchgen.PaperSuite() {
			if *only != "" && cfg.Name != *only {
				continue
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			cfgs = append(cfgs, cfg)
		}
	}
	written := 0
	for _, cfg := range cfgs {
		src := benchgen.Generate(cfg)
		path := filepath.Join(*out, cfg.Name+".c")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d lines, %d qualifier vars\n",
			path, strings.Count(src, "\n"), countVars(path, src))
		written++
	}
	if written == 0 {
		fmt.Fprintf(os.Stderr, "benchgen: no benchmark named %q\n", *only)
		os.Exit(1)
	}
}

// countVars runs the generated file through the analysis pipeline and
// reports the size of its constraint system in qualifier variables.
func countVars(path, src string) int {
	res, err := driver.Run(driver.Config{}, []driver.Source{driver.TextSource(path, src)})
	if err != nil || res.HasErrors() {
		fmt.Fprintf(os.Stderr, "benchgen: %s: generated file does not analyze cleanly\n", path)
		os.Exit(1)
	}
	return res.Solver.Vars
}
