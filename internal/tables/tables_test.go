package tables

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Name", "Count", "Ratio")
	tb.Row("alpha", 5, 0.5)
	tb.Row("beta-longer", 1234, 0.125)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(out, "0.12") {
		t.Errorf("float not formatted: %s", out)
	}
	// Columns align: all data lines have the same length.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[2], lines[3])
	}
}

func TestFigure(t *testing.T) {
	out := Figure("title", []string{"A", "B", "C"}, []rune{'#', '+', '.'},
		[]StackedBar{
			{Label: "one", Segments: []float64{0.5, 0.25, 0.25}},
			{Label: "two", Segments: []float64{0.1, 0.2, 0.7}},
		}, 40)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
	// The first bar's '#' segment should be about half of 40 chars.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "one") {
			n := strings.Count(line, "#")
			if n < 18 || n > 22 {
				t.Errorf("segment width %d, want ~20: %q", n, line)
			}
			if !strings.Contains(line, "A=50.0%") {
				t.Errorf("percentages missing: %q", line)
			}
		}
	}
	// Over-full segments are clipped, not overflowed.
	out = Figure("t", []string{"X"}, []rune{'#'},
		[]StackedBar{{Label: "b", Segments: []float64{1.5}}}, 10)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b") {
			if strings.Count(line, "#") > 10 {
				t.Errorf("bar overflow: %q", line)
			}
		}
	}
	// Default width applies (count only within the bar row; the legend
	// also contains the rune).
	out = Figure("t", []string{"X"}, []rune{'#'},
		[]StackedBar{{Label: "b", Segments: []float64{1.0}}}, 0)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b ") || strings.HasPrefix(line, "b|") {
			if n := strings.Count(line, "#"); n != 60 {
				t.Errorf("default width not 60: %d in %q", n, line)
			}
		}
	}
}
