// Package tables formats the experiment output: aligned text tables for
// the paper's Table 1 and Table 2, and an ASCII stacked-bar rendering of
// Figure 6 (fraction of total-possible consts that are declared,
// mono-inferred, poly-inferred, or other).
package tables

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch c := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", c)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numbers, left-align first column.
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// StackedBar is one bar of a stacked percentage chart.
type StackedBar struct {
	Label string
	// Segments are fractions of the whole, in draw order; they should sum
	// to at most 1.
	Segments []float64
}

// Figure renders a horizontal stacked-percentage bar chart with the given
// segment names, reproducing the information content of the paper's
// Figure 6.
func Figure(title string, segmentNames []string, runes []rune, bars []StackedBar, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	labelW := 0
	for _, bar := range bars {
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	for _, bar := range bars {
		fmt.Fprintf(&b, "%-*s |", labelW, bar.Label)
		drawn := 0
		for i, frac := range bar.Segments {
			n := int(frac*float64(width) + 0.5)
			if drawn+n > width {
				n = width - drawn
			}
			r := '?'
			if i < len(runes) {
				r = runes[i]
			}
			b.WriteString(strings.Repeat(string(r), n))
			drawn += n
		}
		if drawn < width {
			b.WriteString(strings.Repeat(" ", width-drawn))
		}
		b.WriteString("|")
		for i, frac := range bar.Segments {
			name := "?"
			if i < len(segmentNames) {
				name = segmentNames[i]
			}
			fmt.Fprintf(&b, " %s=%4.1f%%", name, frac*100)
		}
		b.WriteString("\n")
	}
	b.WriteString(fmt.Sprintf("legend: "))
	for i, name := range segmentNames {
		if i > 0 {
			b.WriteString(", ")
		}
		r := '?'
		if i < len(runes) {
			r = runes[i]
		}
		fmt.Fprintf(&b, "%c = %s", r, name)
	}
	b.WriteString("\n")
	return b.String()
}
