package driver

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/initcheck"
	"repro/internal/qual"
)

// Severity classifies a diagnostic.
type Severity int

// Severities.
const (
	// SevError marks diagnostics that make the run fail: unreadable or
	// unparsable input, qualifier conflicts, type errors.
	SevError Severity = iota
	// SevWarning marks advisory diagnostics, e.g. possibly-uninitialized
	// variables from the definite-initialization extension.
	SevWarning
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Stage names the pipeline stage a diagnostic originated in.
type Stage int

// Pipeline stages.
const (
	StageLoad Stage = iota
	StageParse
	StageBuild
	StageConstrain
	StageSolve
	StageClassify
	StageInit
	StageEval
)

func (s Stage) String() string {
	switch s {
	case StageLoad:
		return "load"
	case StageParse:
		return "parse"
	case StageBuild:
		return "build"
	case StageConstrain:
		return "constrain"
	case StageSolve:
		return "solve"
	case StageClassify:
		return "classify"
	case StageInit:
		return "initcheck"
	case StageEval:
		return "eval"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// FlowStep is one hop of a qualifier flow path: the constraint along
// which the conflicting qualifier travelled, with its provenance.
type FlowStep struct {
	// Pos locates the program construct that generated the constraint.
	Pos string
	// Note describes the constraint, e.g. `const ⊑ κ12 (declared const)`.
	Note string
}

// Diagnostic is the unified report shape for everything the pipeline can
// say about a program: load and parse failures, qualifier conflicts with
// their flow paths, type errors, and initialization warnings. It replaces
// the three incompatible error shapes of the underlying packages
// (constraint.Unsat, initcheck.Warning, plain parse errors).
type Diagnostic struct {
	// Pos is the source position ("file:line:col"), possibly empty.
	Pos string
	// Severity is error or warning.
	Severity Severity
	// Stage is where in the pipeline the diagnostic arose.
	Stage Stage
	// Code is a stable machine-readable kind, e.g. "qualifier-conflict".
	Code string
	// Analysis names the qualifier analysis the diagnostic belongs to
	// ("const", "taint"); empty for diagnostics that are not specific to
	// one analysis (load/parse errors, initialization warnings).
	Analysis string
	// Message is the human-readable one-line description.
	Message string
	// Flow, for qualifier conflicts, traces the constraint path from the
	// qualifier's origin to the violated bound, source first.
	Flow []FlowStep
}

// String renders the diagnostic in the conventional file:line: message
// form, with the flow path indented below.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos != "" {
		b.WriteString(d.Pos + ": ")
	}
	b.WriteString(d.Severity.String() + ": " + d.Message)
	for _, f := range d.Flow {
		b.WriteString("\n\tflow: " + f.Note)
		if f.Pos != "" {
			b.WriteString(" at " + f.Pos)
		}
	}
	return b.String()
}

// loadDiagnostic wraps a file-read failure.
func loadDiagnostic(path string, err error) Diagnostic {
	return Diagnostic{
		Pos:      path,
		Severity: SevError,
		Stage:    StageLoad,
		Code:     "read-error",
		Message:  err.Error(),
	}
}

// parseDiagnostic wraps a syntax error from any front end. The error
// message already embeds the position, so Pos carries just the file.
func parseDiagnostic(pos string, err error) Diagnostic {
	return Diagnostic{
		Pos:      pos,
		Severity: SevError,
		Stage:    StageParse,
		Code:     "syntax-error",
		Message:  err.Error(),
	}
}

// conflictDiagnostic converts an unsatisfiable qualifier constraint,
// resolving lattice elements against the qualifier set and keeping the
// blame path as flow steps. Rendering is restricted to the violated
// constraint's component mask so a conflict in one analysis does not
// drag the other analyses' qualifiers into the message; the owning
// analysis is named from the offending components. A nil suite (lambda
// pipeline, whose qualifier sets are free-form) leaves Analysis empty.
func conflictDiagnostic(set *qual.Set, suite *analysis.Suite, u *constraint.Unsat) Diagnostic {
	owner := ""
	if suite != nil {
		owner = suite.Owner(u.Lower &^ u.Bound)
	}
	d := Diagnostic{
		Pos:      u.Con.Why.Pos,
		Severity: SevError,
		Stage:    StageSolve,
		Code:     "qualifier-conflict",
		Analysis: owner,
		Message: fmt.Sprintf("qualifier %s does not fit under bound %s (%s)",
			set.DescribeMask(u.Lower, u.Con.Mask), set.DescribeMask(u.Bound, u.Con.Mask), u.Con.Why.Msg),
	}
	for _, c := range u.Path {
		d.Flow = append(d.Flow, FlowStep{
			Pos:  c.Why.Pos,
			Note: fmt.Sprintf("%s ⊑ %s (%s)", c.L.FormatMask(set, c.Mask), c.R.FormatMask(set, c.Mask), c.Why.Msg),
		})
	}
	return d
}

// preludeDiagnostic wraps a prelude parse or suite-binding failure.
func preludeDiagnostic(pos string, err error) Diagnostic {
	return Diagnostic{
		Pos:      pos,
		Severity: SevError,
		Stage:    StageBuild,
		Code:     "prelude-error",
		Message:  err.Error(),
	}
}

// initDiagnostic converts a definite-initialization warning.
func initDiagnostic(w initcheck.Warning) Diagnostic {
	return Diagnostic{
		Pos:      w.Pos.String(),
		Severity: SevWarning,
		Stage:    StageInit,
		Code:     "maybe-uninitialized",
		Message:  fmt.Sprintf("variable %q may be used uninitialized in %s", w.Var, w.Func),
	}
}

// typeErrorDiagnostic wraps a structural type error from the lambda
// checker.
func typeErrorDiagnostic(err error) Diagnostic {
	return Diagnostic{
		Severity: SevError,
		Stage:    StageConstrain,
		Code:     "type-error",
		Message:  err.Error(),
	}
}

// evalDiagnostic wraps a runtime error from the Figure-5 evaluator.
func evalDiagnostic(err error) Diagnostic {
	return Diagnostic{
		Severity: SevError,
		Stage:    StageEval,
		Code:     "runtime-error",
		Message:  err.Error(),
	}
}
