package driver

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/infer"
	"repro/internal/lambda"
	"repro/internal/obs"
	"repro/internal/qtype"
)

// LambdaConfig selects the qualifier system and mode for the example-
// language pipeline (the paper's Sections 2–3 calculus).
type LambdaConfig struct {
	// Spec is the qualifier system (const, nonzero, figure2, ...).
	Spec *core.Spec
	// Monomorphic disables qualifier polymorphism, the paper's
	// C-type-system baseline.
	Monomorphic bool
	// Eval additionally runs the program under the Figure-5 semantics
	// when checking succeeds.
	Eval bool
}

// LambdaResult is the outcome of a lambda pipeline run. The stages are
// Parse → Constrain (type inference) → Solve → optional Eval; failures
// appear as Diagnostics stage by stage.
type LambdaResult struct {
	Config LambdaConfig
	// Expr is the parsed program; nil on parse failure.
	Expr lambda.Expr
	// Type is the inferred qualified type; nil on parse or type error.
	Type *qtype.QType
	// Checker exposes the solved system for callers rendering solved
	// types (FormatSolved); nil until inference ran.
	Checker *infer.Checker
	// Value is the evaluation result when Eval was requested and
	// checking succeeded.
	Value *eval.TQVal
	// Diagnostics collects parse errors, type errors, qualifier
	// conflicts, and runtime errors.
	Diagnostics []Diagnostic
	// Timings records per-stage wall-clock times.
	Timings Timings
}

// HasErrors reports whether any diagnostic is an error.
func (r *LambdaResult) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns the error diagnostics.
func (r *LambdaResult) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// RunLambda runs one program of the example language through the staged
// pipeline.
func RunLambda(cfg LambdaConfig, file, src string) *LambdaResult {
	return RunLambdaContext(context.Background(), cfg, file, src)
}

// RunLambdaContext is RunLambda with a context: a tracer installed via
// obs.WithTracer records one span per stage.
func RunLambdaContext(ctx context.Context, cfg LambdaConfig, file, src string) *LambdaResult {
	tr := obs.FromContext(ctx)
	res := &LambdaResult{Config: cfg}

	run := tr.Start("driver", "lambda.run", obs.String("file", file))
	defer run.End()

	sp := tr.Start("driver", "lambda.parse")
	start := time.Now()
	e, err := lambda.Parse(file, src)
	res.Timings.Parse = time.Since(start)
	sp.End()
	if err != nil {
		res.Diagnostics = append(res.Diagnostics, parseDiagnostic(file, err))
		return res
	}
	res.Expr = e

	checker := cfg.Spec.NewChecker()
	checker.Monomorphic = cfg.Monomorphic
	res.Checker = checker

	sp = tr.Start("driver", "lambda.constrain")
	start = time.Now()
	qt, err := checker.Infer(nil, e)
	res.Timings.Constrain = time.Since(start)
	sp.End()
	if err != nil {
		res.Diagnostics = append(res.Diagnostics, typeErrorDiagnostic(err))
		return res
	}

	sp = tr.Start("driver", "lambda.solve")
	start = time.Now()
	conflicts := checker.Sys.SolveContext(ctx)
	res.Timings.Solve = time.Since(start)
	sp.End()
	res.Type = qt
	for _, u := range conflicts {
		res.Diagnostics = append(res.Diagnostics, conflictDiagnostic(cfg.Spec.Set, nil, u))
	}

	if cfg.Eval && !res.HasErrors() {
		sp = tr.Start("driver", "lambda.eval")
		start = time.Now()
		v, err := eval.Run(cfg.Spec.Set, eval.LitQual(cfg.Spec.Rules.LitQual), e, 0)
		res.Timings.Eval = time.Since(start)
		sp.End()
		if err != nil {
			res.Diagnostics = append(res.Diagnostics, evalDiagnostic(err))
		} else {
			res.Value = v
		}
	}
	return res
}
