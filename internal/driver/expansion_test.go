package driver

// Tests for the analysis expansion pack: const, taint, unique, and
// fdstate riding the same product lattice through ONE constraint pass,
// with delta sessions none the wiser.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// expansionPreludes declare one library vocabulary per analysis; the
// suite merges them onto disjoint mask components of the product
// lattice.
var expansionPreludes = []PreludeFile{
	{Path: "taint.q", Text: `analysis taint
getenv(_) -> tainted
printf(untainted)
`},
	{Path: "unique.q", Text: `analysis unique
make_buffer(_) -> fresh
register_buffer(aliased)
`},
	{Path: "fd.q", Text: `analysis fdstate
openfd(_) -> fresh
closefd(closed)
readfd(open)
`},
}

// expansionDemo plants exactly one violation per analysis: a write
// through a const parameter, an injection flow, a mutation of an
// escaped buffer, and a use-after-close.
const expansionDemo = `
extern char *getenv(const char *name);
extern int printf(const char *fmt);
extern char *make_buffer(int n);
extern void register_buffer(char *b);
extern int openfd(const char *path);
extern void closefd(int fd);
extern int readfd(int fd);

void constbad(const char *s) { *s = 0; }

int taintbad(void) {
    char *user = getenv("USER");
    return printf(user);
}

void uniquebad(void) {
    char *b = make_buffer(8);
    register_buffer(b);
    b[0] = 1;
}

int fdbad(void) {
    int fd = openfd("log");
    closefd(fd);
    return readfd(fd);
}
`

func expansionConfig(jobs int) Config {
	return Config{
		Jobs:     jobs,
		Analyses: []string{"const", "taint", "unique", "fdstate"},
		Preludes: expansionPreludes,
	}
}

// TestRunFourAnalysesSinglePass is the tentpole acceptance check: all
// four analyses solve in one constraint pass — the trace records
// exactly one driver.solve span — and each reports its planted
// conflict.
func TestRunFourAnalysesSinglePass(t *testing.T) {
	tracer := obs.NewTracer(obs.NewFakeClock(time.Unix(0, 0), time.Microsecond))
	ctx := obs.WithTracer(context.Background(), tracer)
	res, err := RunContext(ctx, expansionConfig(1), []Source{TextSource("demo.c", expansionDemo)})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	solves := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "driver.solve" {
			solves++
		}
	}
	if solves != 1 {
		t.Errorf("driver.solve spans = %d, want exactly 1 (all analyses share one pass)", solves)
	}

	owners := map[string]int{}
	for _, d := range res.Diagnostics {
		if d.Code == "qualifier-conflict" {
			owners[d.Analysis]++
		}
	}
	want := map[string]int{"const": 1, "taint": 1, "unique": 1, "fdstate": 1}
	if !reflect.DeepEqual(owners, want) {
		t.Errorf("conflicts per analysis = %v, want %v\ndiagnostics: %v", owners, want, res.Diagnostics)
	}
}

// TestRunFourAnalysesJobsDeterminism: the combined pass renders
// byte-identically at every worker count, flow traces included.
func TestRunFourAnalysesJobsDeterminism(t *testing.T) {
	render := func(jobs int) string {
		res, err := Run(expansionConfig(jobs), []Source{TextSource("demo.c", expansionDemo)})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range res.Diagnostics {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := render(1)
	if !strings.Contains(want, "flow:") {
		t.Fatalf("no flow trace rendered:\n%s", want)
	}
	for _, jobs := range []int{4, 8} {
		if got := render(jobs); got != want {
			t.Errorf("jobs=%d differs\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s", jobs, want, jobs, got)
		}
	}
}

// TestSessionDeltaFourAnalyses: delta re-solve sessions accept the new
// analyses — the suite fingerprint keys on every qualifier definition —
// and an edited fragment re-solves to the same report as a cold run.
func TestSessionDeltaFourAnalyses(t *testing.T) {
	cfg := expansionConfig(1)
	sess := NewSession(cfg)
	ctx := context.Background()

	edited := strings.Replace(expansionDemo, "return readfd(fd);", "readfd(fd);\n    return readfd(fd);", 1)
	if edited == expansionDemo {
		t.Fatal("edit did not apply")
	}
	for round, src := range []string{expansionDemo, edited} {
		sources := []Source{TextSource("demo.c", src)}
		got, err := sess.RunDelta(ctx, sources)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunContext(ctx, cfg, sources)
		if err != nil {
			t.Fatal(err)
		}
		gj, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		wj, err := want.JSON()
		if err != nil {
			t.Fatal(err)
		}
		gm, wm := normalizeJSON(t, gj), normalizeJSON(t, wj)
		if !reflect.DeepEqual(gm, wm) {
			t.Fatalf("round %d: session and cold reports differ\n got: %s\nwant: %s", round, gj, wj)
		}
	}
	if d := sess.Delta(); !d.Applied {
		t.Fatalf("edit under four analyses did not take the delta path: %+v", d)
	}
}

// TestFindingsAndBaseline covers the lint plumbing at the driver level:
// diagnostics flatten to vet-shaped findings with stable rule ids, the
// JSON round-trips as a baseline, and the baseline keys on rule + file
// + message — positions move without reopening findings, new messages
// fail.
func TestFindingsAndBaseline(t *testing.T) {
	res, err := Run(expansionConfig(1), []Source{TextSource("demo.c", expansionDemo)})
	if err != nil {
		t.Fatal(err)
	}
	findings := Findings(res)
	if len(findings) != 4 {
		t.Fatalf("findings = %d, want 4:\n%+v", len(findings), findings)
	}
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f.Rule] = true
		if f.Analysis == "" || !strings.HasPrefix(f.Rule, f.Analysis+"-") {
			t.Errorf("finding rule %q not derived from analysis %q", f.Rule, f.Analysis)
		}
		line := f.String()
		if !strings.HasPrefix(line, "demo.c:") || !strings.Contains(line, ": "+f.Analysis+": ") {
			t.Errorf("finding not vet-shaped (file:line:col: analysis: message): %q", line)
		}
	}
	for _, want := range []string{"const-conflict", "taint-conflict", "unique-conflict", "fdstate-conflict"} {
		if !rules[want] {
			t.Errorf("missing rule id %q in %v", want, rules)
		}
	}

	var buf bytes.Buffer
	if err := WriteLintJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 4 {
		t.Fatalf("baseline holds %d findings, want 4", base.Len())
	}
	if fresh := base.New(findings); len(fresh) != 0 {
		t.Errorf("findings not suppressed by their own baseline: %+v", fresh)
	}
	moved := findings[0]
	moved.Pos = "demo.c:99:1"
	if fresh := base.New([]Finding{moved}); len(fresh) != 0 {
		t.Error("moving a finding within its file must not reopen it")
	}
	renamed := findings[0]
	renamed.Message = "a brand new conflict"
	if fresh := base.New([]Finding{renamed}); len(fresh) != 1 {
		t.Error("a new message must count as a new finding")
	}
}
