package driver

import (
	"encoding/json"
)

// The JSON report schema is stable output for tooling; field names are
// part of the contract, so the marshal types are explicit rather than
// derived from the internal structs.

type jsonOutput struct {
	Files []string `json:"files"`
	// Lang is present only for non-C front ends, so C output is
	// byte-identical to earlier schema versions.
	Lang        string           `json:"lang,omitempty"`
	Mode        string           `json:"mode"`
	Analyses    []string         `json:"analyses"`
	Summary     *jsonSummary     `json:"summary,omitempty"`
	Positions   []jsonPosition   `json:"positions,omitempty"`
	Suggestions []jsonSuggestion `json:"suggestions,omitempty"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Timings     jsonTimings      `json:"timings"`
	Solver      *jsonSolver      `json:"solver,omitempty"`
}

type jsonSummary struct {
	Functions   int `json:"functions"`
	SCCs        int `json:"sccs"`
	Total       int `json:"total_positions"`
	Declared    int `json:"declared_const"`
	Inferred    int `json:"inferrable_const"`
	NeverConst  int `json:"never_const"`
	Constraints int `json:"constraints"`
	Vars        int `json:"vars"`
	Conflicts   int `json:"conflicts"`
}

type jsonPosition struct {
	Func     string `json:"func"`
	Param    string `json:"param,omitempty"`
	Index    int    `json:"index"`
	Depth    int    `json:"depth"`
	Declared bool   `json:"declared"`
	Verdict  string `json:"verdict"`
	Pos      string `json:"pos"`
}

type jsonSuggestion struct {
	Func  string `json:"func"`
	Pos   string `json:"pos"`
	Old   string `json:"old"`
	New   string `json:"new"`
	Added int    `json:"added"`
}

type jsonDiagnostic struct {
	Pos      string     `json:"pos,omitempty"`
	Severity string     `json:"severity"`
	Stage    string     `json:"stage"`
	Code     string     `json:"code"`
	Analysis string     `json:"analysis,omitempty"`
	Message  string     `json:"message"`
	Flow     []jsonFlow `json:"flow,omitempty"`
}

type jsonFlow struct {
	Pos  string `json:"pos,omitempty"`
	Note string `json:"note"`
}

// jsonSolver mirrors constraint.SolveStats: the final system's size and
// the compression the solver's cycle condensation achieved on it. The
// delta block appears only for runs solved through a retained session
// (driver.Session), so cold output is byte-identical to earlier
// schema versions.
type jsonSolver struct {
	Vars          int          `json:"vars"`
	Constraints   int          `json:"constraints"`
	Components    int          `json:"components"`
	SCCsCollapsed int          `json:"sccs_collapsed"`
	VarsCollapsed int          `json:"vars_collapsed"`
	EdgesDropped  int          `json:"edges_dropped"`
	MaskClasses   int          `json:"mask_classes"`
	Parallel      jsonParallel `json:"parallel"`
	Delta         *jsonDelta   `json:"delta,omitempty"`
}

// jsonParallel records how the solve was executed. It is always
// emitted — the schema is identical at every -solve-jobs setting, and
// these execution counters are the only solver values allowed to vary
// with it (results never do).
type jsonParallel struct {
	Workers   int `json:"workers"`
	Classes   int `json:"classes"`
	Levels    int `json:"levels"`
	Fallbacks int `json:"fallbacks"`
	CCRegions int `json:"cc_regions"`
}

// jsonDelta describes what the retained delta session did for one run.
type jsonDelta struct {
	Applied      bool   `json:"applied"`
	Fallback     string `json:"fallback,omitempty"`
	FragsReused  int    `json:"frags_reused"`
	FragsAdded   int    `json:"frags_added"`
	FragsRemoved int    `json:"frags_removed"`
	ResolvedSCCs int    `json:"resolved_sccs"`
	DirtyVars    int    `json:"dirty_vars"`
	Hits         int    `json:"hits"`
	Fallbacks    int    `json:"fallbacks"`
}

type jsonTimings struct {
	LoadMS      float64 `json:"load_ms"`
	ParseMS     float64 `json:"parse_ms"`
	BuildMS     float64 `json:"build_ms"`
	ConstrainMS float64 `json:"constrain_ms"`
	SolveMS     float64 `json:"solve_ms"`
	ClassifyMS  float64 `json:"classify_ms"`
	ReportMS    float64 `json:"report_ms"`
	EvalMS      float64 `json:"eval_ms"`
	// AnalysisMS is Build+Constrain+Solve+Classify — the paper's
	// Mono/Poly analysis-time column, precomputed so the experiment
	// harness and the server share one schema.
	AnalysisMS float64 `json:"analysis_ms"`
}

// Mode names the inference mode of a config.
func (c Config) Mode() string {
	switch {
	case c.Options.PolyRec:
		return "polymorphic-recursive"
	case c.Options.Poly:
		return "polymorphic"
	default:
		return "monomorphic"
	}
}

// JSON renders the report and diagnostics as indented, machine-readable
// JSON with a stable schema.
func (r *Result) JSON() ([]byte, error) {
	out := jsonOutput{
		Mode:        r.Config.Mode(),
		Analyses:    r.Config.AnalysisNames(),
		Diagnostics: []jsonDiagnostic{},
	}
	if lang := r.Config.Lang; lang != "" && lang != "c" {
		out.Lang = lang
	}
	for _, f := range r.Files {
		if f != nil {
			out.Files = append(out.Files, f.Name)
		}
	}
	if out.Files == nil && r.Program != nil {
		out.Files = r.Program.FileNames()
	}
	if rep := r.Report; rep != nil {
		out.Summary = &jsonSummary{
			Functions:   rep.Functions,
			SCCs:        rep.SCCs,
			Total:       rep.Total,
			Declared:    rep.Declared,
			Inferred:    rep.Inferred,
			NeverConst:  rep.Total - rep.Inferred,
			Constraints: rep.Constraints,
			Vars:        rep.Vars,
			Conflicts:   len(rep.Conflicts),
		}
		for _, p := range rep.Positions {
			out.Positions = append(out.Positions, jsonPosition{
				Func: p.Func, Param: p.Param, Index: p.Index, Depth: p.Depth,
				Declared: p.Declared, Verdict: p.Verdict.String(), Pos: p.Pos.String(),
			})
		}
		for _, s := range rep.Suggested {
			out.Suggestions = append(out.Suggestions, jsonSuggestion{
				Func: s.Func, Pos: s.Pos.String(), Old: s.Old, New: s.New, Added: s.Added,
			})
		}
	}
	for _, d := range r.Diagnostics {
		jd := jsonDiagnostic{
			Pos:      d.Pos,
			Severity: d.Severity.String(),
			Stage:    d.Stage.String(),
			Code:     d.Code,
			Analysis: d.Analysis,
			Message:  d.Message,
		}
		for _, f := range d.Flow {
			jd.Flow = append(jd.Flow, jsonFlow{Pos: f.Pos, Note: f.Note})
		}
		out.Diagnostics = append(out.Diagnostics, jd)
	}
	t := r.Timings
	out.Timings = jsonTimings{
		LoadMS:      ms(t.Load),
		ParseMS:     ms(t.Parse),
		BuildMS:     ms(t.Build),
		ConstrainMS: ms(t.Constrain),
		SolveMS:     ms(t.Solve),
		ClassifyMS:  ms(t.Classify),
		ReportMS:    ms(t.Report),
		EvalMS:      ms(t.Eval),
		AnalysisMS:  ms(t.Analysis()),
	}
	if r.Report != nil { // the Solve stage ran
		out.Solver = &jsonSolver{
			Vars:          r.Solver.Vars,
			Constraints:   r.Solver.Constraints,
			Components:    r.Solver.Components,
			SCCsCollapsed: r.Solver.SCCsCollapsed,
			VarsCollapsed: r.Solver.VarsCollapsed,
			EdgesDropped:  r.Solver.EdgesDropped,
			MaskClasses:   r.Solver.MaskClasses,
			Parallel: jsonParallel{
				Workers:   r.Solver.Workers,
				Classes:   r.Solver.ParallelClasses,
				Levels:    r.Solver.SweepLevels,
				Fallbacks: r.Solver.SweepFallbacks,
				CCRegions: r.Solver.CCRegions,
			},
		}
		if d := r.Delta; d != nil {
			out.Solver.Delta = &jsonDelta{
				Applied:      d.Applied,
				Fallback:     d.Fallback,
				FragsReused:  d.FragsReused,
				FragsAdded:   d.FragsAdded,
				FragsRemoved: d.FragsRemoved,
				ResolvedSCCs: d.ResolvedSCCs,
				DirtyVars:    d.DirtyVars,
				Hits:         r.Solver.DeltaHits,
				Fallbacks:    r.Solver.DeltaFallbacks,
			}
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

func ms(d interface{ Seconds() float64 }) float64 {
	return d.Seconds() * 1000
}
