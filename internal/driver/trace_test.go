package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/constinfer"
	"repro/internal/obs"
)

// traceDemo has several functions across two components so the
// constraint pool has real work and the merge loop emits one
// constrain.func span per body.
const traceDemo = `
int id(int *p) { return *p; }
int twice(int *p) { return id(p) + id(p); }
int fact(int n) { if (n) return n * fact(n - 1); return 1; }
void set(char *p) { *p = 0; }
`

// runTraced runs the pipeline under an injected fake clock and returns
// the exported trace bytes.
func runTraced(t *testing.T, jobs int) []byte {
	t.Helper()
	tracer := obs.NewTracer(obs.NewFakeClock(time.Unix(0, 0), time.Microsecond))
	ctx := obs.WithTracer(context.Background(), tracer)
	res, err := RunContext(ctx, Config{
		Options: constinfer.Options{Poly: true},
		Jobs:    jobs,
	}, []Source{TextSource("demo.c", traceDemo)})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasErrors() {
		t.Fatalf("unexpected errors: %v", res.Diagnostics)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenAcrossJobs is the determinism acceptance check: spans
// are recorded only from the sequential spine (stage boundaries, the
// SCC-ordered merge loop, the solver's class loop), so with a monotonic
// fake clock the exported trace is byte-identical for every pool size.
func TestTraceGoldenAcrossJobs(t *testing.T) {
	golden := runTraced(t, 1)
	for _, jobs := range []int{2, 4, 8} {
		if got := runTraced(t, jobs); !bytes.Equal(got, golden) {
			t.Errorf("trace for jobs=%d differs from jobs=1:\n jobs=1: %s\n jobs=%d: %s",
				jobs, golden, jobs, got)
		}
	}
}

// TestTraceCoversPipeline checks the span inventory: every driver stage,
// at least one per-function constrain span, and at least one per-class
// solver span.
func TestTraceCoversPipeline(t *testing.T) {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(runTraced(t, 4), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	count := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete (X)", e.Name, e.Ph)
		}
		count[e.Name]++
	}
	for _, stage := range []string{
		"driver.run", "driver.load", "driver.parse", "driver.build",
		"driver.constrain", "driver.solve", "driver.classify", "driver.report",
	} {
		if count[stage] != 1 {
			t.Errorf("stage span %q appears %d times, want 1", stage, count[stage])
		}
	}
	if count["constrain.func"] != 4 {
		t.Errorf("constrain.func spans = %d, want 4 (one per defined function)", count["constrain.func"])
	}
	if count["solve.class"] < 1 {
		t.Errorf("no solve.class spans; the solver sweep is untraced")
	}
	for _, e := range doc.TraceEvents {
		if e.Name == "constrain.func" {
			if _, ok := e.Args["func"].(string); !ok {
				t.Errorf("constrain.func span missing func attr: %v", e.Args)
			}
			if _, ok := e.Args["cache"].(string); !ok {
				t.Errorf("constrain.func span missing cache attr: %v", e.Args)
			}
		}
	}
}

// TestTimingsSumToTotal checks the Report-stage satellite: the per-stage
// timings account for the whole run (Total is their sum, and every
// stage a successful run passes through is recorded).
func TestTimingsSumToTotal(t *testing.T) {
	res, err := Run(Config{}, []Source{TextSource("demo.c", traceDemo)})
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	sum := tm.Load + tm.Parse + tm.Build + tm.Constrain + tm.Solve + tm.Classify + tm.Report + tm.Eval
	if tm.Total() != sum {
		t.Errorf("Total() = %v, want the stage sum %v", tm.Total(), sum)
	}
}
