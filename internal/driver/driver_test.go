package driver

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/constinfer"
	"repro/internal/core"
)

const demo = `
int mylen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
void set(char *p) { *p = 0; }
int partial(int c) {
    int x;
    if (c) x = 1;
    return x;
}
`

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{}, []Source{TextSource("demo.c", demo)})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasErrors() {
		t.Fatalf("unexpected errors: %v", res.Diagnostics)
	}
	rep := res.Report
	if rep == nil || rep.Functions != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Inferred != 1 {
		t.Errorf("inferred = %d, want 1 (mylen)", rep.Inferred)
	}
}

func TestRunCollectsAllFrontEndErrors(t *testing.T) {
	res, err := Run(Config{}, []Source{
		TextSource("a.c", "int broken( {"),
		TextSource("b.c", demo),
		TextSource("c.c", "void g( {"),
		{Path: "/nonexistent/driver-test-missing.c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Error("report built despite front-end errors")
	}
	errs := res.Errors()
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3 (two parse + one load): %v", len(errs), errs)
	}
	if errs[0].Stage != StageParse || errs[1].Stage != StageParse || errs[2].Stage != StageLoad {
		t.Errorf("stages = %v %v %v", errs[0].Stage, errs[1].Stage, errs[2].Stage)
	}
	// Diagnostics stay in input order: a.c before c.c.
	if !strings.Contains(errs[0].Message, "a.c") || !strings.Contains(errs[1].Message, "c.c") {
		t.Errorf("diagnostics out of order: %v", errs)
	}
}

func TestRunConflictDiagnostics(t *testing.T) {
	res, err := Run(Config{}, []Source{
		TextSource("bad.c", "void f(const char *s) { *s = 0; }"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasErrors() {
		t.Fatal("const violation not reported")
	}
	d := res.Errors()[0]
	if d.Stage != StageSolve || d.Code != "qualifier-conflict" {
		t.Errorf("diagnostic = %+v", d)
	}
	if len(d.Flow) == 0 {
		t.Error("conflict diagnostic has no flow path")
	}
	if !strings.Contains(d.String(), "const") {
		t.Errorf("rendered diagnostic lacks qualifier name: %s", d)
	}
}

func TestRunUninitWarnings(t *testing.T) {
	res, err := Run(Config{Uninit: true}, []Source{TextSource("demo.c", demo)})
	if err != nil {
		t.Fatal(err)
	}
	var warn []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Stage == StageInit {
			warn = append(warn, d)
		}
	}
	if len(warn) != 1 || warn[0].Severity != SevWarning {
		t.Fatalf("uninit warnings = %v", warn)
	}
	if !strings.Contains(warn[0].Message, `"x"`) {
		t.Errorf("warning does not name x: %s", warn[0].Message)
	}
	// Warnings are not errors: the report still exists.
	if res.Report == nil || res.HasErrors() {
		t.Error("warnings should not fail the run")
	}
}

// TestRunDeterministicAcrossJobs: the per-position classification and the
// whole JSON report are identical for every worker-pool size.
func TestRunDeterministicAcrossJobs(t *testing.T) {
	srcs := []Source{TextSource("demo.c", demo)}
	for _, opts := range []constinfer.Options{{}, {Poly: true, Simplify: true}} {
		base, err := Run(Config{Options: opts, Jobs: 1}, srcs)
		if err != nil {
			t.Fatal(err)
		}
		want := canonicalJSON(t, base)
		for _, jobs := range []int{2, 8} {
			got, err := Run(Config{Options: opts, Jobs: jobs}, srcs)
			if err != nil {
				t.Fatal(err)
			}
			if g := canonicalJSON(t, got); g != want {
				t.Errorf("opts %+v jobs %d: report diverges\nwant %s\ngot  %s", opts, jobs, want, g)
			}
		}
	}
}

// TestRunSolveJobsDeterministic pins the solver-parallelism invariant
// end to end, at the default thresholds: a generated corpus large
// enough to engage the parallel solve (one mask class, so the region
// fan-out and the chunked passes carry it, not the class pool) must
// produce byte-identical reports at every -solve-jobs setting, the
// execution counters aside.
func TestRunSolveJobsDeterministic(t *testing.T) {
	cfg := benchgen.ParallelCorpus(20000, 7)
	srcs := []Source{TextSource(cfg.Name+".c", benchgen.Generate(cfg))}
	base, err := Run(Config{SolveJobs: 1}, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if base.HasErrors() {
		t.Fatalf("corpus does not analyze cleanly: %v", base.Errors())
	}
	want := solveJobsCanonicalJSON(t, base)
	for _, jobs := range []int{2, 8} {
		got, err := Run(Config{SolveJobs: jobs}, srcs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Solver.Workers <= 1 {
			t.Fatalf("jobs=%d: parallel solve did not engage: %+v", jobs, got.Solver)
		}
		if got.Solver.CCRegions == 0 {
			t.Fatalf("jobs=%d: region fan-out did not engage on the corpus shape: %+v", jobs, got.Solver)
		}
		if g := solveJobsCanonicalJSON(t, got); g != want {
			t.Errorf("jobs=%d: report diverges from sequential solve", jobs)
		}
	}
}

// solveJobsCanonicalJSON renders the report with timings and the
// solver's parallel-execution block stripped — the only fields allowed
// to vary with -solve-jobs.
func solveJobsCanonicalJSON(t *testing.T, res *Result) string {
	t.Helper()
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "timings")
	if s, ok := m["solver"].(map[string]any); ok {
		delete(s, "parallel")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// canonicalJSON renders the report with timings stripped (they are the
// only legitimately nondeterministic field).
func canonicalJSON(t *testing.T, res *Result) string {
	t.Helper()
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "timings")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunFilesReusesParse(t *testing.T) {
	mono, err := Run(Config{}, []Source{TextSource("demo.c", demo)})
	if err != nil {
		t.Fatal(err)
	}
	poly, err := RunFiles(Config{Options: constinfer.Options{Poly: true}}, mono.Files)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Report == nil || poly.Report.Total != mono.Report.Total {
		t.Fatalf("poly report = %+v", poly.Report)
	}
	if poly.Timings.Parse != 0 {
		t.Error("RunFiles should not spend time parsing")
	}
	if poly.Report.Inferred < mono.Report.Inferred {
		t.Errorf("poly inferred %d < mono %d", poly.Report.Inferred, mono.Report.Inferred)
	}
}

func TestTimingsRecorded(t *testing.T) {
	res, err := Run(Config{}, []Source{TextSource("demo.c", demo)})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Timings
	if ts.Parse <= 0 || ts.Constrain <= 0 || ts.Solve <= 0 || ts.Classify <= 0 {
		t.Errorf("missing stage timings: %+v", ts)
	}
	if ts.Analysis() < ts.Constrain {
		t.Errorf("Analysis() = %v < Constrain %v", ts.Analysis(), ts.Constrain)
	}
}

func TestRunLambdaAcceptAndEval(t *testing.T) {
	res := RunLambda(LambdaConfig{Spec: core.NonzeroSpec(), Eval: true},
		"test", "100 / (@nonzero (3 - 1))")
	if res.HasErrors() {
		t.Fatalf("errors: %v", res.Diagnostics)
	}
	if res.Type == nil || res.Checker == nil {
		t.Fatal("no type inferred")
	}
	if res.Value == nil {
		t.Fatal("no value evaluated")
	}
	if res.Timings.Parse <= 0 || res.Timings.Constrain <= 0 {
		t.Errorf("missing timings: %+v", res.Timings)
	}
}

func TestRunLambdaRejectsConflict(t *testing.T) {
	res := RunLambda(LambdaConfig{Spec: core.ConstSpec()},
		"test", "(@const ref 1) := 2")
	if !res.HasErrors() {
		t.Fatal("const violation not reported")
	}
	d := res.Errors()[0]
	if d.Code != "qualifier-conflict" || d.Stage != StageSolve {
		t.Errorf("diagnostic = %+v", d)
	}
}

func TestRunLambdaParseAndTypeErrors(t *testing.T) {
	res := RunLambda(LambdaConfig{Spec: core.ConstSpec()}, "test", "let x =")
	if !res.HasErrors() || res.Errors()[0].Stage != StageParse {
		t.Errorf("parse failure not reported: %v", res.Diagnostics)
	}
	res = RunLambda(LambdaConfig{Spec: core.ConstSpec()}, "test", "1 2")
	if !res.HasErrors() {
		t.Errorf("expected an error for application of a non-function: %v", res.Diagnostics)
	}
}

func TestRunNoSources(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("Run with no sources should error")
	}
	if _, err := RunFiles(Config{}, nil); err == nil {
		t.Error("RunFiles with no files should error")
	}
}
