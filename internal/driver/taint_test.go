package driver

import (
	"encoding/json"
	"strings"
	"testing"
)

const taintPrelude = `analysis taint
getenv(_) -> tainted
printf(untainted, ...)
`

const taintDemo = `
extern char *getenv(const char *name);
extern int printf(const char *fmt, ...);

int greet(void) {
    char *user = getenv("USER");
    return printf(user);
}
`

func taintConfig() Config {
	return Config{
		Analyses: []string{"taint"},
		Preludes: []PreludeFile{{Path: "taint.q", Text: taintPrelude}},
	}
}

func TestRunTaintEndToEnd(t *testing.T) {
	res, err := Run(taintConfig(), []Source{TextSource("t.c", taintDemo)})
	if err != nil {
		t.Fatal(err)
	}
	var conflicts []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Code == "qualifier-conflict" {
			conflicts = append(conflicts, d)
		}
	}
	if len(conflicts) != 1 {
		t.Fatalf("%d conflicts, want 1: %v", len(conflicts), res.Diagnostics)
	}
	d := conflicts[0]
	if d.Analysis != "taint" {
		t.Errorf("conflict owner = %q, want taint", d.Analysis)
	}
	if !strings.Contains(d.Message, "{tainted}") || !strings.Contains(d.Message, "{untainted}") {
		t.Errorf("message = %q", d.Message)
	}
	if len(d.Flow) != 2 {
		t.Fatalf("flow has %d steps, want 2: %+v", len(d.Flow), d.Flow)
	}
	if !strings.Contains(d.Flow[0].Note, `result of "getenv" is tainted`) {
		t.Errorf("first hop = %q", d.Flow[0].Note)
	}
	if !strings.Contains(d.Flow[1].Note, "initializer") {
		t.Errorf("second hop = %q", d.Flow[1].Note)
	}
}

func TestRunTaintJSONSchema(t *testing.T) {
	res, err := Run(taintConfig(), []Source{TextSource("t.c", taintDemo)})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Analyses    []string `json:"analyses"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Analysis string `json:"analysis"`
			Flow     []struct {
				Pos  string `json:"pos"`
				Note string `json:"note"`
			} `json:"flow"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Analyses) != 1 || doc.Analyses[0] != "taint" {
		t.Errorf("analyses = %v", doc.Analyses)
	}
	found := false
	for _, d := range doc.Diagnostics {
		if d.Code == "qualifier-conflict" {
			found = true
			if d.Analysis != "taint" || len(d.Flow) == 0 {
				t.Errorf("JSON conflict = %+v", d)
			}
		}
	}
	if !found {
		t.Error("no qualifier-conflict diagnostic in JSON output")
	}
}

func TestRunUnknownAnalysis(t *testing.T) {
	_, err := Run(Config{Analyses: []string{"bogus"}}, []Source{TextSource("t.c", taintDemo)})
	if err == nil || !strings.Contains(err.Error(), `unknown analysis "bogus"`) {
		t.Errorf("err = %v", err)
	}
}

func TestRunPreludeErrorDiagnostic(t *testing.T) {
	cfg := Config{
		Analyses: []string{"taint"},
		Preludes: []PreludeFile{{Path: "bad.q", Text: "getenv(_) -> tainted\n"}},
	}
	res, err := Run(cfg, []Source{TextSource("t.c", taintDemo)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Error("report built despite prelude error")
	}
	errs := res.Errors()
	if len(errs) != 1 || errs[0].Code != "prelude-error" || errs[0].Stage != StageBuild {
		t.Fatalf("diagnostics = %v", res.Diagnostics)
	}
	if !strings.Contains(errs[0].Message, "bad.q:1") {
		t.Errorf("prelude error lacks position: %q", errs[0].Message)
	}
}

func TestRunNoPreludeWarning(t *testing.T) {
	res, err := Run(Config{Analyses: []string{"taint"}}, []Source{TextSource("t.c", taintDemo)})
	if err != nil {
		t.Fatal(err)
	}
	var warned bool
	for _, d := range res.Diagnostics {
		if d.Code == "no-prelude" && d.Severity == SevWarning && d.Analysis == "taint" {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no no-prelude warning: %v", res.Diagnostics)
	}
	if res.Report == nil {
		t.Error("advisory warning suppressed the report")
	}
}

// TestRunTaintDeterministicAcrossJobs: the rendered diagnostics — hop
// sequence included — are identical for Jobs 1, 4, and 8.
func TestRunTaintDeterministicAcrossJobs(t *testing.T) {
	render := func(jobs int) string {
		cfg := taintConfig()
		cfg.Analyses = []string{"const", "taint"}
		cfg.Jobs = jobs
		res, err := Run(cfg, []Source{TextSource("t.c", taintDemo)})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range res.Diagnostics {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := render(1)
	if !strings.Contains(want, "flow:") {
		t.Fatalf("no flow trace rendered:\n%s", want)
	}
	for _, jobs := range []int{4, 8} {
		if got := render(jobs); got != want {
			t.Errorf("jobs=%d differs\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s", jobs, want, jobs, got)
		}
	}
}
