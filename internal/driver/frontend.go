package driver

// The front-end seam: the pipeline's Load/Parse/Build/Constrain stages
// delegated behind an interface, so one driver serves several source
// languages. The paper's framework claim is that the qualifier engine is
// language-agnostic — the lattice, the constraint solver, and the ref-type
// discipline never mention C — and this file is where the repository makes
// that concrete: a FrontEnd turns raw inputs into a Program, a Program
// binds to an Engine, and everything from Solve onward (condensed solver,
// delta sessions, classification, flow traces, JSON schema) is shared.
//
// Two front ends register themselves: "c" (internal/cfront + constinfer,
// registered here) and "go" (internal/gofront, registered by importing
// that package — every binary that wants -lang go imports it). The
// selected language travels in Config.Lang and is part of every cache and
// session key (see internal/cache).

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constinfer"
	"repro/internal/constraint"
	"repro/internal/qual"
)

// FrontEnd parses one source language into programs the shared qualifier
// engine can analyze: parse → fingerprint → constrain. Implementations
// must be stateless values safe for concurrent use; all per-run state
// lives in the Program and Engine they return.
type FrontEnd interface {
	// Lang is the registry key and the -lang spelling ("c", "go").
	Lang() string
	// Extensions lists the source-file extensions the front end claims,
	// leading dot included (".c"); directory watchers take their file
	// filter from it.
	Extensions() []string
	// Check validates a pipeline config against the front end's
	// capabilities before any work runs (e.g. gofront rejects the
	// polymorphic modes it does not implement yet).
	Check(cfg Config) error
	// Load resolves raw inputs into loadable file sources. The returned
	// slices are parallel: files[i] carries the path and text of one
	// unit, errs[i] its load failure (nil text, reported as a
	// load-stage diagnostic). Front ends may expand one input into many
	// files (a Go package pattern) or read texts from disk (a C path).
	Load(sources []Source) (files []Source, errs []error)
	// Parse parses the loaded files into a Program. The returned error
	// slice is parallel to files: per-file syntax errors, reported as
	// parse-stage diagnostics in file order. Entries with a load error
	// are skipped. Parse must honor ctx cancellation between files.
	Parse(ctx context.Context, files []Source, loadErrs []error) (Program, []error)
}

// Program is one parsed corpus, ready to be bound to an analysis
// configuration.
type Program interface {
	// FileNames lists the parsed file names, for reports.
	FileNames() []string
	// Fingerprint is a stable content address of the parsed program
	// (used for corpus identity; caches additionally key on raw texts).
	Fingerprint() string
	// NewEngine binds the program to a configuration and bound analysis
	// suite, returning the constraint engine the Solve stage drives.
	NewEngine(cfg Config, suite *analysis.Suite) Engine
}

// Engine is the staged qualifier-inference engine over one program: the
// Build/Constrain stages produce a constraint system, the Solve stage
// runs the shared condensed solver (cold or through a retained delta
// session), and Classify interprets the solution. *constinfer.Analysis
// is the C engine; internal/gofront provides the Go one.
type Engine interface {
	Prepare()
	ConstrainContext(ctx context.Context, jobs int)
	SolveSystemContext(ctx context.Context) []*constraint.Unsat
	SolveSession(ctx context.Context, ss *constraint.Session) []*constraint.Unsat
	SolveStats() constraint.SolveStats
	Set() *qual.Set
	Classify(conflicts []*constraint.Unsat) *constinfer.Report
}

var (
	feMu  sync.RWMutex
	feReg = map[string]FrontEnd{}
)

// RegisterFrontEnd adds a front end to the registry; it panics on an
// empty or duplicate language key (registration is package-init-time
// configuration, not runtime input).
func RegisterFrontEnd(fe FrontEnd) {
	feMu.Lock()
	defer feMu.Unlock()
	if fe.Lang() == "" {
		panic("driver: RegisterFrontEnd with empty language")
	}
	if _, dup := feReg[fe.Lang()]; dup {
		panic("driver: duplicate front end for language " + fe.Lang())
	}
	feReg[fe.Lang()] = fe
}

// LookupFrontEnd returns the front end registered for the language; the
// empty string selects the default C front end.
func LookupFrontEnd(lang string) (FrontEnd, bool) {
	if lang == "" {
		lang = "c"
	}
	feMu.RLock()
	defer feMu.RUnlock()
	fe, ok := feReg[lang]
	return fe, ok
}

// FrontEndLangs lists the registered languages, sorted.
func FrontEndLangs() []string {
	feMu.RLock()
	defer feMu.RUnlock()
	langs := make([]string, 0, len(feReg))
	for l := range feReg {
		langs = append(langs, l)
	}
	sort.Strings(langs)
	return langs
}

// frontEnd resolves the config's language, erroring on unknown ones
// (an invalid invocation, like an unknown analysis name).
func (c Config) frontEnd() (FrontEnd, error) {
	fe, ok := LookupFrontEnd(c.Lang)
	if !ok {
		langs := FrontEndLangs()
		return nil, fmt.Errorf("driver: unknown language %q (registered: %v)", c.Lang, langs)
	}
	return fe, nil
}

// cFrontEnd is the C front end: cfront parsing feeding the constinfer
// engine — the paper's Section 4 pipeline, unchanged, behind the seam.
type cFrontEnd struct{}

func init() { RegisterFrontEnd(cFrontEnd{}) }

func (cFrontEnd) Lang() string           { return "c" }
func (cFrontEnd) Extensions() []string   { return []string{".c"} }
func (cFrontEnd) Check(cfg Config) error { return nil }

// Load reads every source that does not already carry its text.
func (cFrontEnd) Load(sources []Source) ([]Source, []error) {
	files := make([]Source, len(sources))
	errs := make([]error, len(sources))
	for i, s := range sources {
		files[i] = s
		if s.Text != "" {
			continue
		}
		data, err := os.ReadFile(s.Path)
		if err != nil {
			errs[i] = err
			continue
		}
		files[i].Text = string(data)
	}
	return files, errs
}

// Parse parses translation units concurrently on a GOMAXPROCS-bounded
// pool; per-file syntax errors come back in file order.
func (cFrontEnd) Parse(ctx context.Context, files []Source, loadErrs []error) (Program, []error) {
	parsed := make([]*cfront.File, len(files))
	parseErrs := make([]error, len(files))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range files {
		if loadErrs[i] != nil || ctx.Err() != nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			parsed[i], parseErrs[i] = cfront.Parse(files[i].Path, files[i].Text)
		}(i)
	}
	wg.Wait()
	return &CProgram{Files: parsed}, parseErrs
}

// CProgram is the parsed form of a C corpus: the cfront translation
// units, nil entries for sources that failed to load or parse.
type CProgram struct {
	Files []*cfront.File
}

// FileNames lists the parsed unit names.
func (p *CProgram) FileNames() []string {
	var out []string
	for _, f := range p.Files {
		if f != nil {
			out = append(out, f.Name)
		}
	}
	return out
}

// Fingerprint content-addresses the corpus via cfront's
// position-sensitive AST fingerprinting.
func (p *CProgram) Fingerprint() string {
	h := sha256.New()
	for _, f := range p.Files {
		if f == nil {
			continue
		}
		fmt.Fprintf(h, "file:%s;", f.Name)
		for _, d := range f.Decls {
			cfront.FingerprintDecl(h, d, true)
		}
	}
	return fmt.Sprintf("c:%x", h.Sum(nil))
}

// NewEngine binds the parsed units to the constinfer engine.
func (p *CProgram) NewEngine(cfg Config, suite *analysis.Suite) Engine {
	opts := cfg.Options
	opts.Suite = suite
	a := constinfer.NewAnalysis(p.Files, opts)
	if cfg.Summaries != nil {
		a.SetSummaryCache(cfg.Summaries)
	}
	return a
}
