// Package driver is the staged analysis pipeline of the repository: Load
// → Parse → Build → Constrain → Solve → Classify → Report, the end-to-end
// shape of the paper's Section 4.4 evaluation. Every binary and
// experiment runs a program through this one pipeline instead of
// hand-rolling its own parse→infer→report loop.
//
// The stages have explicit inputs and outputs, every stage is timed
// (Timings), and everything the pipeline can say about a program is
// expressed as a Diagnostic. The Parse stage parses files concurrently;
// the Constrain stage generates per-function constraints on a
// GOMAXPROCS-bounded worker pool with a deterministic merge, so results
// are byte-identical for every worker count (see constinfer/parallel.go).
package driver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constinfer"
	"repro/internal/constraint"
	"repro/internal/initcheck"
	"repro/internal/obs"
)

// Config selects the front end and analysis mode for the qualifier
// pipeline.
type Config struct {
	// Lang selects the front end ("c", "go"); empty means "c". The
	// language is part of every cache and session key.
	Lang string
	// Options is the inference mode (mono/poly/polyrec/simplify).
	Options constinfer.Options
	// Jobs bounds the constraint-generation worker pool; 0 means
	// GOMAXPROCS. Results are identical for every value.
	Jobs int
	// SolveJobs bounds the solver's worker pool (cold-solve mask classes
	// and level sweeps, delta-session class fan-out); 0 means GOMAXPROCS,
	// 1 forces the sequential solver. Results are identical for every
	// value.
	SolveJobs int
	// Uninit additionally runs the flow-sensitive
	// definite-initialization check and reports its warnings.
	Uninit bool
	// Analyses names the registered qualifier analyses to run together
	// in one constraint pass over the shared product lattice (see
	// internal/analysis). Nil or empty selects the classic const
	// inference; unknown names fail the run with an error.
	Analyses []string
	// Preludes are annotation files declaring library-function seeds
	// and sinks for the selected analyses (`analysis taint` / `getenv(_)
	// -> tainted`). Parse failures surface as prelude-error diagnostics.
	Preludes []PreludeFile
	// Summaries, when non-nil, memoizes per-function constraint
	// summaries across runs (see constinfer.SummaryCache and
	// internal/cache): unchanged functions replay their cached
	// fragments instead of re-deriving them, with byte-identical
	// output. It is excluded from request cache keys — it changes
	// cost, never results.
	Summaries constinfer.SummaryCache
}

// PreludeFile is one qualifier prelude: the path (used for positions and
// cache keys) and its text.
type PreludeFile struct {
	Path string
	Text string
}

// AnalysisNames returns the analyses the config selects, defaulting to
// the classic const inference.
func (c Config) AnalysisNames() []string {
	if len(c.Analyses) == 0 {
		return []string{"const"}
	}
	return c.Analyses
}

// Source is one input translation unit. When Text is empty the Load
// stage reads Path from disk.
type Source struct {
	// Path names the file; it is used for positions.
	Path string
	// Text is the source text, when already in memory.
	Text string
}

// FileSources builds Sources that the Load stage reads from disk.
func FileSources(paths ...string) []Source {
	out := make([]Source, len(paths))
	for i, p := range paths {
		out[i] = Source{Path: p}
	}
	return out
}

// TextSource builds an in-memory Source.
func TextSource(name, text string) Source {
	return Source{Path: name, Text: text}
}

// Timings records the wall-clock duration of each pipeline stage.
type Timings struct {
	Load      time.Duration
	Parse     time.Duration
	Build     time.Duration
	Constrain time.Duration
	Solve     time.Duration
	Classify  time.Duration
	// Report is the diagnostic-assembly stage: conflict rendering (with
	// flow traces) and the optional initialization check. It is recorded
	// uniformly by Run/RunContext/RunFiles, so the per-stage timings sum
	// to the pipeline's wall clock.
	Report time.Duration
	Eval   time.Duration
}

// Analysis is the total inference time: everything after the front end
// (the paper's Mono/Poly columns; Parse is its "Compile time" column).
func (t Timings) Analysis() time.Duration {
	return t.Build + t.Constrain + t.Solve + t.Classify
}

// Total sums every stage: the pipeline's wall clock as the stages saw
// it.
func (t Timings) Total() time.Duration {
	return t.Load + t.Parse + t.Analysis() + t.Report + t.Eval
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Config echoes the configuration of the run.
	Config Config
	// Program is the parsed corpus from the selected front end; nil only
	// when the run never reached the Parse stage.
	Program Program
	// Files are the parsed C translation units (nil entries for sources
	// that failed to load or parse); nil for non-C front ends.
	Files []*cfront.File
	// Analysis is the underlying C engine, for callers that need scheme
	// rendering or other drill-down; nil if the front end failed or the
	// run used a non-C front end.
	Analysis *constinfer.Analysis
	// Report is the classification; nil if the front end failed.
	Report *constinfer.Report
	// Diagnostics collects every error and warning of the run, in stage
	// order: load/parse errors, qualifier conflicts, then initialization
	// warnings.
	Diagnostics []Diagnostic
	// Timings records per-stage wall-clock times.
	Timings Timings
	// Solver records the size of the final constraint system and how much
	// the solver's cycle condensation compressed it (zero value if the
	// front end failed and the Solve stage never ran).
	Solver constraint.SolveStats
	// Delta describes what the retained delta session did for this run's
	// solve; nil when the run solved cold (Run/RunContext, or a session
	// mode without fragment spans still sets it, with Applied=false and
	// the fallback reason).
	Delta *constraint.DeltaStats
}

// HasErrors reports whether any diagnostic is an error.
func (r *Result) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns the error diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Run executes the full pipeline over the sources. Front-end failures do
// not abort the run early: every source is loaded and parsed and every
// failure is reported as a diagnostic, and only then, if any front-end
// error occurred, does the pipeline stop (Report stays nil). The
// returned error is reserved for invalid invocations (no sources).
func Run(cfg Config, sources []Source) (*Result, error) {
	return RunContext(context.Background(), cfg, sources)
}

// RunContext is Run with cancellation: the context is checked at every
// stage boundary (and between parses), and a cancelled or expired
// context aborts the pipeline with ctx.Err(). Cancellation granularity
// is the stage — a long Constrain or Solve runs to completion before the
// deadline is noticed — which keeps every stage's determinism guarantees
// intact.
func RunContext(ctx context.Context, cfg Config, sources []Source) (*Result, error) {
	return runPipeline(ctx, cfg, sources, nil)
}

// runPipeline is the shared Load → … → Report spine behind RunContext
// and Session.RunDelta; a non-nil sess routes the Solve stage through
// its retained constraint session.
func runPipeline(ctx context.Context, cfg Config, sources []Source, sess *Session) (*Result, error) {
	if len(sources) == 0 {
		return nil, errors.New("driver: no input sources")
	}
	fe, err := cfg.frontEnd()
	if err != nil {
		return nil, err
	}
	if err := fe.Check(cfg); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}
	tr := obs.FromContext(ctx)
	run := tr.Start("driver", "driver.run",
		obs.String("mode", cfg.Mode()),
		obs.String("analyses", strings.Join(cfg.AnalysisNames(), ",")),
		obs.Int("sources", len(sources)))
	defer run.End()

	// Load: resolve every input into file sources, collecting every
	// failure (a front end may expand one input into many files).
	sp := tr.Start("driver", "driver.load", obs.Int("sources", len(sources)))
	start := time.Now()
	files, loadErrs := fe.Load(sources)
	res.Timings.Load = time.Since(start)
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Parse: the front end parses the loaded files (concurrently if it
	// chooses); one span brackets the whole stage (per-file spans would
	// make traces scheduling-dependent).
	sp = tr.Start("driver", "driver.parse", obs.Int("files", len(files)))
	start = time.Now()
	prog, parseErrs := fe.Parse(ctx, files, loadErrs)
	res.Timings.Parse = time.Since(start)
	res.Program = prog
	if cp, ok := prog.(*CProgram); ok {
		res.Files = cp.Files
	}
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Front-end diagnostics count toward the Report stage, so the stage
	// timings sum to wall clock on the failure path too. Load and parse
	// errors interleave per file, in file order.
	start = time.Now()
	for i := range files {
		if loadErrs[i] != nil {
			res.Diagnostics = append(res.Diagnostics, loadDiagnostic(files[i].Path, loadErrs[i]))
		} else if parseErrs[i] != nil {
			res.Diagnostics = append(res.Diagnostics, parseDiagnostic(files[i].Path, parseErrs[i]))
		}
	}
	// Front ends may attach non-fatal notes to the parsed program (the Go
	// front end downgrades type-check problems to warnings so analysis
	// always proceeds).
	if n, ok := prog.(interface{ Notes() []Diagnostic }); ok && n != nil {
		res.Diagnostics = append(res.Diagnostics, n.Notes()...)
	}
	res.Timings.Report += time.Since(start)
	if res.HasErrors() {
		return res, nil
	}

	if err := runAnalysis(ctx, cfg, res, sess); err != nil {
		return nil, err
	}
	return res, nil
}

// RunFiles executes the pipeline over already-parsed C files, skipping
// the Load and Parse stages. It is used when the same parse is analyzed
// in several modes (the experiment's mono and poly passes).
func RunFiles(cfg Config, files []*cfront.File) (*Result, error) {
	if len(files) == 0 {
		return nil, errors.New("driver: no input files")
	}
	res := &Result{Config: cfg, Files: files, Program: &CProgram{Files: files}}
	if err := runAnalysis(context.Background(), cfg, res, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// runAnalysis drives the Build → Constrain → Solve → Classify stages and
// the optional initialization check over res.Program, checking ctx at
// each stage boundary.
func runAnalysis(ctx context.Context, cfg Config, res *Result, sess *Session) error {
	tr := obs.FromContext(ctx)
	sp := tr.Start("driver", "driver.build")
	start := time.Now()
	suite, diags, err := buildSuite(cfg)
	res.Diagnostics = append(res.Diagnostics, diags...)
	if err != nil {
		sp.End()
		return err
	}
	if suite == nil {
		// Prelude failures are front-end-style errors: reported as
		// diagnostics, no analysis runs, Report stays nil.
		res.Timings.Build = time.Since(start)
		sp.End()
		return nil
	}
	a := res.Program.NewEngine(cfg, suite)
	if ca, ok := a.(*constinfer.Analysis); ok {
		res.Analysis = ca
	}
	if sj, ok := a.(interface{ SetSolveJobs(int) }); ok {
		sj.SetSolveJobs(cfg.SolveJobs)
	}

	a.Prepare()
	res.Timings.Build = time.Since(start)
	sp.End()
	if err := ctx.Err(); err != nil {
		return err
	}

	sp = tr.Start("driver", "driver.constrain")
	start = time.Now()
	a.ConstrainContext(ctx, cfg.Jobs)
	res.Timings.Constrain = time.Since(start)
	sp.End()
	if err := ctx.Err(); err != nil {
		return err
	}

	sp = tr.Start("driver", "driver.solve")
	start = time.Now()
	var conflicts []*constraint.Unsat
	if sess != nil {
		if sess.ss == nil {
			sess.ss = constraint.NewSession(a.Set())
		}
		sess.ss.SetSolveJobs(cfg.SolveJobs)
		conflicts = a.SolveSession(ctx, sess.ss)
		d := sess.ss.Delta()
		res.Delta = &d
	} else {
		conflicts = a.SolveSystemContext(ctx)
	}
	res.Timings.Solve = time.Since(start)
	res.Solver = a.SolveStats()
	sp.SetAttr(obs.Int("vars", res.Solver.Vars),
		obs.Int("constraints", res.Solver.Constraints),
		obs.Int("mask_classes", res.Solver.MaskClasses),
		obs.Int("conflicts", len(conflicts)))
	sp.End()
	if err := ctx.Err(); err != nil {
		return err
	}

	sp = tr.Start("driver", "driver.classify")
	start = time.Now()
	res.Report = a.Classify(conflicts)
	res.Timings.Classify = time.Since(start)
	sp.End()

	// Report: conflict diagnostics (each with its blame-path flow trace)
	// and the optional initialization check. Timed as its own stage so
	// the stage timings sum to wall clock for every caller.
	sp = tr.Start("driver", "driver.report", obs.Int("conflicts", len(conflicts)))
	start = time.Now()
	for _, u := range conflicts {
		res.Diagnostics = append(res.Diagnostics, conflictDiagnostic(a.Set(), suite, u))
	}
	if cfg.Uninit {
		for _, f := range res.Files {
			for _, w := range initcheck.CheckFile(f) {
				res.Diagnostics = append(res.Diagnostics, initDiagnostic(w))
			}
		}
	}
	res.Timings.Report += time.Since(start)
	sp.End()
	return nil
}

// buildSuite resolves the config's analysis names and preludes into a
// bound suite. Unknown analysis names are invalid invocations (error);
// prelude problems are input problems reported as diagnostics with a nil
// suite. A prelude-wanting analysis running without one gets an advisory
// warning alongside a non-nil suite.
func buildSuite(cfg Config) (*analysis.Suite, []Diagnostic, error) {
	names := cfg.AnalysisNames()
	for _, n := range names {
		if _, ok := analysis.Lookup(n); !ok {
			return nil, nil, fmt.Errorf("driver: unknown analysis %q (registered: %s)",
				n, strings.Join(analysis.Names(), ", "))
		}
	}
	var diags []Diagnostic
	var preludes []*analysis.Prelude
	for _, p := range cfg.Preludes {
		pr, err := analysis.ParsePrelude(p.Path, p.Text)
		if err != nil {
			diags = append(diags, preludeDiagnostic(p.Path, err))
			continue
		}
		preludes = append(preludes, pr)
	}
	if len(diags) > 0 {
		return nil, diags, nil
	}
	suite, err := analysis.NewSuite(names, preludes)
	if err != nil {
		return nil, []Diagnostic{preludeDiagnostic("", err)}, nil
	}
	for _, b := range suite.Bindings() {
		if b.A.WantsPrelude && !b.HasPrelude() {
			diags = append(diags, Diagnostic{
				Severity: SevWarning,
				Stage:    StageBuild,
				Code:     "no-prelude",
				Analysis: b.A.Name,
				Message: fmt.Sprintf("analysis %q has no prelude: no seeds or sinks are defined (use -prelude)",
					b.A.Name),
			})
		}
	}
	return suite, diags, nil
}
