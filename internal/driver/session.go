package driver

// Retained analysis sessions: the delta re-solve engine's front door at
// the pipeline level.
//
// A Session pairs one Config with one constraint.Session and re-runs
// the full pipeline on each RunDelta call. The front end (Load, Parse,
// Build, Constrain) always runs — it is what re-derives the constraint
// system and its fragment spans for the edited sources — while the
// Solve stage hands the fresh system to the retained session, which
// re-solves only the region downstream of changed fragments (or falls
// back to a cold solve; results are byte-identical either way, held to
// that by the delta oracle in internal/constraint).
//
// Fragments are content-addressed (see constinfer.FragmentSpans), so
// the session needs no notion of which files changed: whatever the
// edit, unchanged fragments re-derive unchanged keys and are reused.

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/constraint"
)

// Session retains solver state between pipeline runs over successive
// versions of the same program. The zero value is not usable; call
// NewSession. A Session is safe for concurrent RunDelta calls (they
// serialize), but one session must only ever see versions of one
// logical program — feeding it unrelated programs is correct yet
// defeats the reuse.
type Session struct {
	cfg Config

	mu sync.Mutex
	ss *constraint.Session // created on first RunDelta, once the suite exists

	// snap is the latest SessionSnapshot, maintained at the end of each
	// RunDelta. It is read lock-free by introspection (/v1/introspect):
	// RunDelta holds mu for the whole pipeline run, so any reader that
	// took the lock would stall behind an in-flight analysis.
	snap atomic.Pointer[SessionSnapshot]
}

// SessionSnapshot is the lock-free introspection view of a session:
// what its last completed run did. Fields are value copies — safe to
// serialize while the next run is in flight.
type SessionSnapshot struct {
	// Runs counts completed RunDelta calls, including failed ones.
	Runs uint64 `json:"runs"`
	// Sources is the number of sources in the last run.
	Sources int `json:"sources"`
	// Diagnostics is the last run's diagnostic count.
	Diagnostics int `json:"diagnostics"`
	// Solver is the last run's solve statistics.
	Solver constraint.SolveStats `json:"solver"`
	// Delta describes what the retained state did for the last solve.
	Delta constraint.DeltaStats `json:"delta"`
	// Err is the last run's pipeline error, if any.
	Err string `json:"err,omitempty"`
}

// NewSession creates a retained analysis session for the config. The
// config is fixed for the session's lifetime: mode, analyses, and
// preludes all shape the constraint system, so changing them means a
// new session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg}
}

// Config returns the session's pipeline configuration.
func (s *Session) Config() Config { return s.cfg }

// RunDelta executes the pipeline over the sources with the Solve stage
// routed through the session's retained state. The Result is identical
// to RunContext's — diagnostics, positions, stats, everything — with
// Result.Delta additionally describing the fragment diff and dirty
// region (or the fallback reason). Front-end failures leave the
// retained state untouched.
func (s *Session) RunDelta(ctx context.Context, sources []Source) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := runPipeline(ctx, s.cfg, sources, s)
	snap := SessionSnapshot{Sources: len(sources)}
	if prev := s.snap.Load(); prev != nil {
		snap.Runs = prev.Runs
	}
	snap.Runs++
	if err != nil {
		snap.Err = err.Error()
	}
	if res != nil {
		snap.Diagnostics = len(res.Diagnostics)
		snap.Solver = res.Solver
		if res.Delta != nil {
			snap.Delta = *res.Delta
		}
	}
	s.snap.Store(&snap)
	return res, err
}

// Snapshot returns the last completed run's introspection view without
// taking the session lock; nil before the first RunDelta completes.
func (s *Session) Snapshot() *SessionSnapshot { return s.snap.Load() }

// Delta reports what the session's last solve did; the zero value
// before any solve has happened.
func (s *Session) Delta() constraint.DeltaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ss == nil {
		return constraint.DeltaStats{}
	}
	return s.ss.Delta()
}
