package driver

// Retained analysis sessions: the delta re-solve engine's front door at
// the pipeline level.
//
// A Session pairs one Config with one constraint.Session and re-runs
// the full pipeline on each RunDelta call. The front end (Load, Parse,
// Build, Constrain) always runs — it is what re-derives the constraint
// system and its fragment spans for the edited sources — while the
// Solve stage hands the fresh system to the retained session, which
// re-solves only the region downstream of changed fragments (or falls
// back to a cold solve; results are byte-identical either way, held to
// that by the delta oracle in internal/constraint).
//
// Fragments are content-addressed (see constinfer.FragmentSpans), so
// the session needs no notion of which files changed: whatever the
// edit, unchanged fragments re-derive unchanged keys and are reused.

import (
	"context"
	"sync"

	"repro/internal/constraint"
)

// Session retains solver state between pipeline runs over successive
// versions of the same program. The zero value is not usable; call
// NewSession. A Session is safe for concurrent RunDelta calls (they
// serialize), but one session must only ever see versions of one
// logical program — feeding it unrelated programs is correct yet
// defeats the reuse.
type Session struct {
	cfg Config

	mu sync.Mutex
	ss *constraint.Session // created on first RunDelta, once the suite exists
}

// NewSession creates a retained analysis session for the config. The
// config is fixed for the session's lifetime: mode, analyses, and
// preludes all shape the constraint system, so changing them means a
// new session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg}
}

// Config returns the session's pipeline configuration.
func (s *Session) Config() Config { return s.cfg }

// RunDelta executes the pipeline over the sources with the Solve stage
// routed through the session's retained state. The Result is identical
// to RunContext's — diagnostics, positions, stats, everything — with
// Result.Delta additionally describing the fragment diff and dirty
// region (or the fallback reason). Front-end failures leave the
// retained state untouched.
func (s *Session) RunDelta(ctx context.Context, sources []Source) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return runPipeline(ctx, s.cfg, sources, s)
}

// Delta reports what the session's last solve did; the zero value
// before any solve has happened.
func (s *Session) Delta() constraint.DeltaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ss == nil {
		return constraint.DeltaStats{}
	}
	return s.ss.Delta()
}
