// Lint findings: the vet-shaped view of a Result. Where the default
// report is organized around the paper's experiment (counts of const
// positions, solver statistics), lint mode reduces a run to a flat,
// stable list of findings — one per diagnostic, each with a machine-
// readable rule id — so the tool slots into editor integrations and CI
// gates the way go vet does. A committed baseline file turns the gate
// incremental: existing findings are suppressed, new ones fail.
package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Finding is one lint finding. The JSON field names are the stable
// `-lint -json` schema (and the baseline file schema — a baseline is
// simply a previous run's findings array).
type Finding struct {
	// Rule is the stable rule id: "<analysis>-conflict" for qualifier
	// conflicts, the diagnostic code otherwise ("syntax-error",
	// "maybe-uninitialized", ...).
	Rule string `json:"rule"`
	// Pos is "file:line:col" (possibly just a file, possibly empty).
	Pos string `json:"pos,omitempty"`
	// Analysis names the owning qualifier analysis, if any.
	Analysis string `json:"analysis,omitempty"`
	// Severity is "error" or "warning".
	Severity string `json:"severity"`
	// Message is the one-line description.
	Message string `json:"message"`
	// Flow is the qualifier flow trace of a conflict, source first.
	Flow []lintFlow `json:"flow,omitempty"`
}

type lintFlow struct {
	Pos  string `json:"pos,omitempty"`
	Note string `json:"note"`
}

// RuleID derives the stable rule id of a diagnostic.
func RuleID(d Diagnostic) string {
	if d.Code == "qualifier-conflict" && d.Analysis != "" {
		return d.Analysis + "-conflict"
	}
	return d.Code
}

// Findings flattens a Result's diagnostics into lint findings, in
// diagnostic order (stage order, then the deterministic solver order).
func Findings(res *Result) []Finding {
	var out []Finding
	for _, d := range res.Diagnostics {
		f := Finding{
			Rule:     RuleID(d),
			Pos:      d.Pos,
			Analysis: d.Analysis,
			Severity: d.Severity.String(),
			Message:  d.Message,
		}
		for _, step := range d.Flow {
			f.Flow = append(f.Flow, lintFlow{Pos: step.Pos, Note: step.Note})
		}
		out = append(out, f)
	}
	return out
}

// String renders the finding in the vet-conventional
// "file:line:col: analysis: message" form (the rule id stands in for
// findings with no owning analysis).
func (f Finding) String() string {
	label := f.Analysis
	if label == "" {
		label = f.Rule
	}
	if f.Pos == "" {
		return label + ": " + f.Message
	}
	return f.Pos + ": " + label + ": " + f.Message
}

// lintJSON is the `-lint -json` (and baseline file) schema.
type lintJSON struct {
	Findings []Finding `json:"findings"`
}

// WriteLintJSON writes the findings array as JSON; `cqual -lint -json`
// output redirected to a file IS a valid baseline.
func WriteLintJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(lintJSON{Findings: findings})
}

// Baseline is a set of previously accepted findings. Keys deliberately
// ignore line and column: adding a line above a known finding must not
// re-open it, so a finding is identified by rule + file + message.
type Baseline struct {
	keys map[string]bool
}

// LoadBaseline reads a baseline file (the schema of `-lint -json`).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc lintJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: malformed baseline: %v", path, err)
	}
	b := &Baseline{keys: make(map[string]bool, len(doc.Findings))}
	for _, f := range doc.Findings {
		b.keys[baselineKey(f)] = true
	}
	return b, nil
}

// Len reports the number of distinct baseline keys.
func (b *Baseline) Len() int { return len(b.keys) }

// New returns the findings not covered by the baseline.
func (b *Baseline) New(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !b.keys[baselineKey(f)] {
			out = append(out, f)
		}
	}
	return out
}

// baselineKey identifies a finding across unrelated edits: the rule,
// the file (position with line:col stripped), and the message.
func baselineKey(f Finding) string {
	file := f.Pos
	if i := strings.IndexByte(file, ':'); i >= 0 {
		file = file[:i]
	}
	return f.Rule + "\x00" + file + "\x00" + f.Message
}
