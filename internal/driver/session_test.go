package driver

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

const sessProgV1 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); }
`

const sessProgV2 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); probe(buf); }
`

// normalizeJSON strips the run-dependent parts of a report — timings
// and the delta block — so session and cold output can be compared as
// rendered bytes.
func normalizeJSON(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "timings")
	if s, ok := m["solver"].(map[string]any); ok {
		delete(s, "delta")
	}
	return m
}

func TestSessionRunDeltaMatchesCold(t *testing.T) {
	cfg := Config{Jobs: 1}
	sess := NewSession(cfg)
	for round, src := range []string{sessProgV1, sessProgV2, sessProgV1} {
		sources := []Source{TextSource("t.c", src)}
		got, err := sess.RunDelta(context.Background(), sources)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunContext(context.Background(), cfg, sources)
		if err != nil {
			t.Fatal(err)
		}
		if got.Delta == nil {
			t.Fatalf("round %d: session run has no Delta", round)
		}
		if want.Delta != nil {
			t.Fatalf("round %d: cold run has a Delta: %+v", round, want.Delta)
		}
		gj, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		wj, err := want.JSON()
		if err != nil {
			t.Fatal(err)
		}
		gm, wm := normalizeJSON(t, gj), normalizeJSON(t, wj)
		if !reflect.DeepEqual(gm, wm) {
			t.Fatalf("round %d: reports differ\n got: %s\nwant: %s", round, gj, wj)
		}
	}
	// Round 1 edits only the trailing function; round 2 restores v1.
	// Both must have engaged the delta machinery.
	if d := sess.Delta(); !d.Applied && d.Fallback == "first-solve" {
		t.Fatalf("session never advanced past the first solve: %+v", d)
	}
}

func TestSessionRunDeltaTrailingEditHits(t *testing.T) {
	sess := NewSession(Config{Jobs: 1})
	ctx := context.Background()
	if _, err := sess.RunDelta(ctx, []Source{TextSource("t.c", sessProgV1)}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunDelta(ctx, []Source{TextSource("t.c", sessProgV2)})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Delta
	if d == nil || !d.Applied {
		t.Fatalf("trailing edit should take the delta path: %+v", d)
	}
	if d.FragsReused == 0 {
		t.Fatalf("no fragments reused: %+v", d)
	}
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Solver struct {
			Delta *struct {
				Applied     bool `json:"applied"`
				FragsReused int  `json:"frags_reused"`
				Hits        int  `json:"hits"`
			} `json:"delta"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Solver.Delta == nil || !m.Solver.Delta.Applied || m.Solver.Delta.Hits != 1 {
		t.Fatalf("JSON delta block: %+v", m.Solver.Delta)
	}
}

// TestSessionRunDeltaFrontEndError pins that a parse failure leaves the
// retained state untouched: the next good run still diffs against the
// last good solve.
func TestSessionRunDeltaFrontEndError(t *testing.T) {
	sess := NewSession(Config{Jobs: 1})
	ctx := context.Background()
	if _, err := sess.RunDelta(ctx, []Source{TextSource("t.c", sessProgV1)}); err != nil {
		t.Fatal(err)
	}
	bad, err := sess.RunDelta(ctx, []Source{TextSource("t.c", "void broken( {")})
	if err != nil {
		t.Fatal(err)
	}
	if !bad.HasErrors() || bad.Delta != nil {
		t.Fatalf("broken run: errors=%v delta=%+v", bad.HasErrors(), bad.Delta)
	}
	res, err := sess.RunDelta(ctx, []Source{TextSource("t.c", sessProgV2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta == nil || !res.Delta.Applied {
		t.Fatalf("run after a front-end error should still delta: %+v", res.Delta)
	}
}
