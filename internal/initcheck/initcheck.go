// Package initcheck is a flow-sensitive qualifier analysis for C built on
// the Section 6 extension of "A Theory of Type Qualifiers" (PLDI 1999):
// every local scalar variable gets a distinct qualifier variable per
// program point, definite assignments are strong updates that clear the
// positive qualifier "uninit", control-flow joins merge branch points,
// and every read asserts ¬uninit. This is the lclint-style analysis the
// paper says the flow-insensitive framework cannot express — and the
// flow-sensitive machinery (infer.Flow) can.
//
// The checker is intentionally scoped to the paper's sketch: it tracks
// scalar locals whose address is never taken; pointers, aggregates, and
// address-taken variables are conservatively treated as initialized on
// declaration (a may-alias write would be a weak update anyway).
package initcheck

import (
	"fmt"
	"sort"

	"repro/internal/cfront"
	"repro/internal/constraint"
	"repro/internal/infer"
	"repro/internal/qual"
)

// Warning reports a read of a possibly-uninitialized variable.
type Warning struct {
	Func string
	Var  string
	Pos  cfront.Pos
}

func (w Warning) String() string {
	return fmt.Sprintf("%s: variable %q may be used uninitialized in %s", w.Pos, w.Var, w.Func)
}

// CheckFile analyzes every function in the file and returns the warnings,
// sorted by position.
func CheckFile(f *cfront.File) []Warning {
	var out []Warning
	for _, d := range f.Decls {
		if fd, ok := d.(*cfront.FuncDecl); ok && fd.Body != nil {
			out = append(out, checkFunc(fd)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Col < out[j].Pos.Col
	})
	return out
}

// CheckSource parses and checks one file.
func CheckSource(name, src string) ([]Warning, error) {
	f, err := cfront.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return CheckFile(f), nil
}

type checker struct {
	set      *qual.Set
	sys      *constraint.System
	fn       string
	uninit   qual.Elem
	notUnin  qual.Elem
	tracked  map[string]bool // locals we track (scalar, address never taken)
	warnings []Warning
	// useSites maps constraint index to the use it checks, for reporting.
	uses []Warning
}

func checkFunc(fd *cfront.FuncDecl) []Warning {
	set := qual.MustSet(qual.Qualifier{Name: "uninit", Sign: qual.Positive})
	c := &checker{
		set:     set,
		sys:     constraint.NewSystem(set),
		fn:      fd.Name,
		uninit:  set.MustOnly("uninit"),
		notUnin: set.MustNot("uninit"),
		tracked: map[string]bool{},
	}
	// Pass 1: find address-taken locals; they are untracked.
	addrTaken := map[string]bool{}
	var scanE func(e cfront.Expr)
	var scanS func(s cfront.Stmt)
	scanE = func(e cfront.Expr) {
		switch e := e.(type) {
		case nil:
		case *cfront.Unary:
			if e.Op == cfront.UAddr {
				if id, ok := e.X.(*cfront.Ident); ok {
					addrTaken[id.Name] = true
				}
			}
			scanE(e.X)
		case *cfront.Postfix:
			scanE(e.X)
		case *cfront.Binary:
			scanE(e.L)
			scanE(e.R)
		case *cfront.AssignExpr:
			scanE(e.L)
			scanE(e.R)
		case *cfront.Cond:
			scanE(e.C)
			scanE(e.T)
			scanE(e.F)
		case *cfront.Call:
			scanE(e.Fn)
			for _, a := range e.Args {
				scanE(a)
			}
		case *cfront.Index:
			scanE(e.X)
			scanE(e.I)
		case *cfront.Member:
			scanE(e.X)
		case *cfront.Cast:
			scanE(e.X)
		case *cfront.Comma:
			scanE(e.L)
			scanE(e.R)
		case *cfront.InitList:
			for _, it := range e.Items {
				scanE(it)
			}
		}
	}
	scanS = func(s cfront.Stmt) {
		switch s := s.(type) {
		case nil:
		case *cfront.Block:
			for _, it := range s.Items {
				scanS(it)
			}
		case *cfront.DeclStmt:
			for _, d := range s.Decls {
				if v, ok := d.(*cfront.VarDecl); ok && v.Init != nil {
					scanE(v.Init)
				}
			}
		case *cfront.ExprStmt:
			scanE(s.X)
		case *cfront.IfStmt:
			scanE(s.Cond)
			scanS(s.Then)
			scanS(s.Else)
		case *cfront.WhileStmt:
			scanE(s.Cond)
			scanS(s.Body)
		case *cfront.DoWhileStmt:
			scanS(s.Body)
			scanE(s.Cond)
		case *cfront.ForStmt:
			scanS(s.Init)
			scanE(s.Cond)
			scanE(s.Post)
			scanS(s.Body)
		case *cfront.ReturnStmt:
			scanE(s.Value)
		case *cfront.LabelStmt:
			scanS(s.Stmt)
		case *cfront.SwitchStmt:
			scanE(s.Tag)
			scanS(s.Body)
		case *cfront.CaseStmt:
			scanE(s.Value)
			scanS(s.Stmt)
		}
	}
	scanS(fd.Body)

	flow := infer.NewFlow(c.sys)
	// Parameters are initialized by the caller.
	for _, p := range fd.Type.Params {
		if p.Name != "" {
			flow.Declare(p.Name, set.Bottom(), constraint.Reason{Msg: "parameter"})
		}
	}
	c.stmt(flow, fd.Body, addrTaken)

	// Solve once; each recorded use constraint that fails becomes a
	// warning. The solver reports every violated sink constraint.
	for _, u := range c.sys.Solve() {
		// Match the failing constraint back to a recorded use by its
		// provenance position.
		pos := u.Con.Why.Pos
		for _, use := range c.uses {
			if use.Pos.String() == pos {
				c.warnings = append(c.warnings, use)
				break
			}
		}
	}
	return c.warnings
}

func (c *checker) trackable(v *cfront.VarDecl, addrTaken map[string]bool) bool {
	if v.Storage == cfront.SCStatic || v.Storage == cfront.SCExtern {
		return false // statics are zero-initialized; externs elsewhere
	}
	if addrTaken[v.Name] {
		return false
	}
	switch v.Type.Kind {
	case cfront.TInt, cfront.TChar, cfront.TFloat, cfront.TEnum, cfront.TPointer:
		return true
	default:
		return false
	}
}

func (c *checker) stmt(flow *infer.Flow, s cfront.Stmt, addrTaken map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *cfront.Block:
		for _, it := range s.Items {
			c.stmt(flow, it, addrTaken)
		}
	case *cfront.DeclStmt:
		for _, d := range s.Decls {
			v, ok := d.(*cfront.VarDecl)
			if !ok {
				continue
			}
			if v.Init != nil {
				c.expr(flow, v.Init)
			}
			if !c.trackable(v, addrTaken) {
				continue
			}
			initial := c.uninit
			if v.Init != nil {
				initial = c.set.Bottom()
			}
			c.tracked[v.Name] = true
			flow.Declare(v.Name, initial, constraint.Reason{Pos: v.Pos.String(), Msg: "declaration of " + v.Name})
		}
	case *cfront.ExprStmt:
		c.expr(flow, s.X)
	case *cfront.EmptyStmt:
	case *cfront.IfStmt:
		c.expr(flow, s.Cond)
		thenBr := flow.Fork()
		c.stmt(thenBr, s.Then, addrTaken)
		elseBr := flow.Fork()
		c.stmt(elseBr, s.Else, addrTaken)
		thenBr.Join(elseBr, constraint.Reason{Pos: s.Pos.String(), Msg: "if join"})
		*flow = *thenBr
	case *cfront.WhileStmt:
		c.expr(flow, s.Cond)
		entry := flow.Fork()
		body := flow.Fork()
		c.stmt(body, s.Body, addrTaken)
		body.Widen(entry, constraint.Reason{Pos: s.Pos.String(), Msg: "loop back-edge"})
		// Zero-iteration path: continue from entry (Widen already merged
		// body effects into entry's points).
		*flow = *entry
	case *cfront.DoWhileStmt:
		// The body runs at least once.
		entry := flow.Fork()
		c.stmt(flow, s.Body, addrTaken)
		c.expr(flow, s.Cond)
		flow.Widen(entry, constraint.Reason{Pos: s.Pos.String(), Msg: "do-while back-edge"})
		// Unlike while, effects of one guaranteed iteration are kept weak
		// through the widen; this is conservative.
	case *cfront.ForStmt:
		c.stmt(flow, s.Init, addrTaken)
		if s.Cond != nil {
			c.expr(flow, s.Cond)
		}
		entry := flow.Fork()
		body := flow.Fork()
		c.stmt(body, s.Body, addrTaken)
		if s.Post != nil {
			c.expr(body, s.Post)
		}
		body.Widen(entry, constraint.Reason{Pos: s.Pos.String(), Msg: "loop back-edge"})
		*flow = *entry
	case *cfront.ReturnStmt:
		if s.Value != nil {
			c.expr(flow, s.Value)
		}
	case *cfront.BreakStmt, *cfront.ContinueStmt, *cfront.GotoStmt:
	case *cfront.LabelStmt:
		c.stmt(flow, s.Stmt, addrTaken)
	case *cfront.SwitchStmt:
		c.expr(flow, s.Tag)
		// Each case is a branch from the switch head; conservatively fork
		// and join the whole body once (cases rarely initialize in a way
		// this simple model could prove anyway).
		body := flow.Fork()
		c.stmt(body, s.Body, addrTaken)
		body.Join(flow, constraint.Reason{Pos: s.Pos.String(), Msg: "switch join"})
		*flow = *body
	case *cfront.CaseStmt:
		if s.Value != nil {
			c.expr(flow, s.Value)
		}
		c.stmt(flow, s.Stmt, addrTaken)
	}
}

// expr walks an expression: reads of tracked variables assert ¬uninit,
// assignments strong-update.
func (c *checker) expr(flow *infer.Flow, e cfront.Expr) {
	switch e := e.(type) {
	case nil:
	case *cfront.Ident:
		if c.tracked[e.Name] {
			c.use(flow, e.Name, e.Pos)
		}
	case *cfront.IntLit, *cfront.FloatLit, *cfront.CharLit, *cfront.StrLit, *cfront.SizeofType:
	case *cfront.SizeofExpr:
		// Operand not evaluated.
	case *cfront.Unary:
		switch e.Op {
		case cfront.UPreInc, cfront.UPreDec:
			// Read-modify-write: a read and then a strong update.
			if id, ok := e.X.(*cfront.Ident); ok && c.tracked[id.Name] {
				c.use(flow, id.Name, e.Pos)
				c.assign(flow, id.Name, e.Pos)
				return
			}
			c.expr(flow, e.X)
		default:
			c.expr(flow, e.X)
		}
	case *cfront.Postfix:
		if id, ok := e.X.(*cfront.Ident); ok && c.tracked[id.Name] {
			c.use(flow, id.Name, e.Pos)
			c.assign(flow, id.Name, e.Pos)
			return
		}
		c.expr(flow, e.X)
	case *cfront.Binary:
		c.expr(flow, e.L)
		c.expr(flow, e.R)
	case *cfront.AssignExpr:
		c.expr(flow, e.R)
		if id, ok := e.L.(*cfront.Ident); ok && c.tracked[id.Name] {
			if e.Op != cfront.PlainAssign {
				// Compound assignment reads the old value first.
				c.use(flow, id.Name, e.Pos)
			}
			c.assign(flow, id.Name, e.Pos)
			return
		}
		c.expr(flow, e.L)
	case *cfront.Cond:
		c.expr(flow, e.C)
		// Branch values evaluated under forks; variable states merge.
		t := flow.Fork()
		c.expr(t, e.T)
		f := flow.Fork()
		c.expr(f, e.F)
		t.Join(f, constraint.Reason{Pos: e.Pos.String(), Msg: "?: join"})
		*flow = *t
	case *cfront.Call:
		c.expr(flow, e.Fn)
		for _, a := range e.Args {
			c.expr(flow, a)
		}
	case *cfront.Index:
		c.expr(flow, e.X)
		c.expr(flow, e.I)
	case *cfront.Member:
		c.expr(flow, e.X)
	case *cfront.Cast:
		c.expr(flow, e.X)
	case *cfront.Comma:
		c.expr(flow, e.L)
		c.expr(flow, e.R)
	case *cfront.InitList:
		for _, it := range e.Items {
			c.expr(flow, it)
		}
	}
}

func (c *checker) use(flow *infer.Flow, name string, pos cfront.Pos) {
	w := Warning{Func: c.fn, Var: name, Pos: pos}
	c.uses = append(c.uses, w)
	_ = flow.Assert(name, c.notUnin, constraint.Reason{Pos: pos.String(), Msg: "use of " + name})
}

func (c *checker) assign(flow *infer.Flow, name string, pos cfront.Pos) {
	fresh := constraint.V(c.sys.Fresh())
	_ = flow.StrongUpdate(name, fresh, constraint.Reason{Pos: pos.String(), Msg: "assignment to " + name})
}
