package initcheck

import (
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Warning {
	t.Helper()
	ws, err := CheckSource("test.c", src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	return ws
}

func warnedVars(ws []Warning) map[string]bool {
	out := map[string]bool{}
	for _, w := range ws {
		out[w.Var] = true
	}
	return out
}

func TestUseBeforeInit(t *testing.T) {
	ws := check(t, `
		int f(void) {
			int x;
			return x;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("no warning for x: %v", ws)
	}
	if !strings.Contains(ws[0].String(), "uninitialized") || !strings.Contains(ws[0].String(), "test.c:4") {
		t.Errorf("warning text: %s", ws[0])
	}
}

func TestInitializedUses(t *testing.T) {
	ws := check(t, `
		int f(int p) {
			int a = 1;
			int b;
			b = p + a;
			return a + b + p;
		}`)
	if len(ws) != 0 {
		t.Errorf("false positives: %v", ws)
	}
}

func TestBranchPartialInit(t *testing.T) {
	ws := check(t, `
		int f(int c) {
			int x;
			if (c)
				x = 1;
			return x;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("partial initialization not caught: %v", ws)
	}
	// Both branches initializing is fine.
	ws = check(t, `
		int g(int c) {
			int x;
			if (c)
				x = 1;
			else
				x = 2;
			return x;
		}`)
	if len(ws) != 0 {
		t.Errorf("false positive after full branch init: %v", ws)
	}
}

func TestUseInsideBranchAfterInitThere(t *testing.T) {
	// Flow-sensitivity: the use is in the same branch as the definite
	// assignment, which a flow-insensitive qualifier could not express.
	ws := check(t, `
		int f(int c) {
			int x;
			if (c) {
				x = 5;
				return x;
			}
			return 0;
		}`)
	if len(ws) != 0 {
		t.Errorf("false positive inside initializing branch: %v", ws)
	}
}

func TestLoopMayRunZeroTimes(t *testing.T) {
	ws := check(t, `
		int f(int n) {
			int x;
			int i;
			for (i = 0; i < n; i++)
				x = i;
			return x;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("zero-iteration loop init not caught: %v", ws)
	}
	if warnedVars(ws)["i"] {
		t.Errorf("false positive on the loop counter: %v", ws)
	}
}

func TestWhileConditionUse(t *testing.T) {
	ws := check(t, `
		int f(void) {
			int x;
			while (x < 10)
				x = 10;
			return 0;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("use in loop condition not caught: %v", ws)
	}
}

func TestCompoundAssignReadsFirst(t *testing.T) {
	ws := check(t, `
		int f(void) {
			int x;
			x += 1;
			return x;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("compound assignment read not caught: %v", ws)
	}
	// Increment of uninitialized.
	ws = check(t, `
		int g(void) {
			int x;
			x++;
			return x;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("postfix increment read not caught: %v", ws)
	}
}

func TestAddressTakenUntracked(t *testing.T) {
	// &x passed out: the callee may initialize it; conservatively silent.
	ws := check(t, `
		extern void fill(int *p);
		int f(void) {
			int x;
			fill(&x);
			return x;
		}`)
	if warnedVars(ws)["x"] {
		t.Errorf("address-taken variable warned: %v", ws)
	}
}

func TestStaticsAndParamsUntracked(t *testing.T) {
	ws := check(t, `
		int f(int p) {
			static int s;
			return s + p;
		}`)
	if len(ws) != 0 {
		t.Errorf("statics/params warned: %v", ws)
	}
}

func TestConditionalExpressionJoin(t *testing.T) {
	ws := check(t, `
		int f(int c) {
			int x;
			int y = c ? 1 : 2;
			x = y;
			return x;
		}`)
	if len(ws) != 0 {
		t.Errorf("false positives around ?:: %v", ws)
	}
}

func TestMultipleFunctions(t *testing.T) {
	ws := check(t, `
		int ok(void) { int a = 1; return a; }
		int bad1(void) { int b; return b; }
		int bad2(void) { int c; return c + 1; }`)
	vars := warnedVars(ws)
	if !vars["b"] || !vars["c"] || vars["a"] {
		t.Errorf("warnings: %v", ws)
	}
	// Sorted by position.
	for i := 1; i < len(ws); i++ {
		if ws[i].Pos.Line < ws[i-1].Pos.Line {
			t.Error("warnings not sorted")
		}
	}
}

func TestSwitchConservative(t *testing.T) {
	// Initialization inside a switch is treated as partial (cases may be
	// skipped).
	ws := check(t, `
		int f(int c) {
			int x;
			switch (c) {
			case 1: x = 1; break;
			default: x = 2; break;
			}
			return x;
		}`)
	// Conservative: a warning here is acceptable (the simple model cannot
	// prove exhaustiveness); what must not happen is a crash or a missing
	// warning for the clearly-broken variant below.
	_ = ws
	ws = check(t, `
		int g(int c) {
			int x;
			switch (c) {
			case 1: break;
			}
			return x;
		}`)
	if !warnedVars(ws)["x"] {
		t.Errorf("switch with no init not caught: %v", ws)
	}
}

func TestPointerLocalsTracked(t *testing.T) {
	ws := check(t, `
		char *f(int c) {
			char *p;
			if (c)
				p = "yes";
			return p;
		}`)
	if !warnedVars(ws)["p"] {
		t.Errorf("uninitialized pointer not caught: %v", ws)
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, err := CheckSource("bad.c", "int f( {"); err == nil {
		t.Error("parse error not propagated")
	}
}
