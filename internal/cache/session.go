package cache

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/driver"
)

// SessionKey derives the session-store key for a delta re-solve corpus.
// It hashes everything in the config that shapes the analysis result —
// the front-end language, the inference mode, the uninit flag, the
// selected analyses, and every prelude — plus the caller-chosen corpus
// id. Jobs is deliberately
// excluded: results are identical for every pool size, and keying on it
// would split one logical corpus into per-client sessions. Sources are
// excluded by construction — diffing successive source versions is the
// session's whole job.
func SessionKey(cfg driver.Config, corpus string) string {
	h := sha256.New()
	fmt.Fprintf(h, "lang:%s;", langKey(cfg))
	fmt.Fprintf(h, "cfg:%t,%t,%t,%d,%t;",
		cfg.Options.Poly, cfg.Options.PolyRec, cfg.Options.Simplify,
		cfg.Options.MaxPolyRecIters, cfg.Uninit)
	for _, a := range cfg.AnalysisNames() {
		fmt.Fprintf(h, "an:%d:%s;", len(a), a)
	}
	for _, p := range cfg.Preludes {
		fmt.Fprintf(h, "pre:%d:%s%d:%s", len(p.Path), p.Path, len(p.Text), p.Text)
	}
	fmt.Fprintf(h, "id:%d:%s", len(corpus), corpus)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// SessionStore is a bounded LRU of retained driver sessions, keyed by
// SessionKey. Eviction simply drops the retained solver state: the next
// request for that corpus creates a fresh session and pays one cold
// solve. Safe for concurrent use.
type SessionStore struct {
	lru *lru[string, *driver.Session]
}

// NewSessionStore builds a session store bounded by entry count
// (0 = unbounded).
func NewSessionStore(maxEntries int) *SessionStore {
	return &SessionStore{lru: newLRU[string, *driver.Session](maxEntries, 0)}
}

// OnEvict registers a hook observing every evicted session key. The
// hook fires outside the store lock. Register once, at startup, before
// traffic.
func (c *SessionStore) OnEvict(fn func(key string)) { c.lru.onEvict = fn }

// GetOrCreate returns the session for the key, creating it with mk under
// the store lock when absent — two racing requests for a new corpus get
// the same session, never one each. The boolean reports whether the
// session already existed.
func (c *SessionStore) GetOrCreate(key string, mk func() *driver.Session) (*driver.Session, bool) {
	l := c.lru
	l.mu.Lock()
	if e, ok := l.items[key]; ok {
		l.hits.Add(1)
		l.unlink(e)
		l.pushFront(e)
		l.mu.Unlock()
		return e.val, true
	}
	l.misses.Add(1)
	sess := mk()
	e := &entry[string, *driver.Session]{key: key, val: sess, cost: 1}
	l.items[key] = e
	l.pushFront(e)
	l.bytes.Add(1)
	l.entries.Add(1)
	var evicted []string
	for len(l.items) > 1 && l.maxEntries > 0 && len(l.items) > l.maxEntries {
		cold := l.root.prev
		l.unlink(cold)
		delete(l.items, cold.key)
		l.bytes.Add(-cold.cost)
		l.entries.Add(-1)
		l.evictions.Add(1)
		if l.onEvict != nil {
			evicted = append(evicted, cold.key)
		}
	}
	hook := l.onEvict
	l.mu.Unlock()
	for _, key := range evicted {
		hook(key)
	}
	return sess, false
}

// SessionEntry is one retained session as seen by Entries.
type SessionEntry struct {
	Key     string
	Session *driver.Session
}

// Entries lists the retained sessions, most recently used first — the
// /v1/introspect view. The listing copies key and pointer under the
// store lock; callers read session state through the sessions' own
// lock-free snapshots.
func (c *SessionStore) Entries() []SessionEntry {
	l := c.lru
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SessionEntry, 0, len(l.items))
	for e := l.root.next; e != &l.root; e = e.next {
		out = append(out, SessionEntry{Key: e.key, Session: e.val})
	}
	return out
}

// Stats snapshots the store counters. Bytes counts entries (a session's
// retained graph size is not cheaply known), so the byte gauge doubles
// as an occupancy gauge.
func (c *SessionStore) Stats() Stats { return c.lru.stats() }
