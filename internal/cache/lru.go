// Package cache provides the content-addressed caches behind the cquald
// analysis server: a request-level result cache keyed by source texts
// plus analysis configuration, and a per-function summary store that
// makes re-analysis of mostly-unchanged programs sublinear (see
// constinfer.SummaryCache). Both are bounded LRU maps, safe for
// concurrent use, with hit/miss/eviction counters exported for the
// server's /metrics endpoint.
package cache

import (
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a cache's counters and occupancy.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// entry is one LRU node; the list is intrusive and doubly linked with a
// sentinel root (root.next = most recent, root.prev = least recent).
type entry[K comparable, V any] struct {
	key        K
	val        V
	cost       int64
	prev, next *entry[K, V]
}

// lru is a mutex-guarded LRU map bounded by entry count and/or total
// cost. A zero bound means unbounded in that dimension. The counters
// and occupancy figures are atomic so that stats() — the /metrics
// scrape path — never takes the map mutex and never contends with
// lookups.
type lru[K comparable, V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	items      map[K]*entry[K, V]
	root       entry[K, V] // sentinel
	bytes      atomic.Int64
	entries    atomic.Int64
	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	// onEvict, when set, observes every evicted key. It fires after the
	// map mutex is released so an observer (journal append, metrics) can
	// never deadlock back into the cache.
	onEvict func(key K)
}

func newLRU[K comparable, V any](maxEntries int, maxBytes int64) *lru[K, V] {
	l := &lru[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		items:      make(map[K]*entry[K, V]),
	}
	l.root.prev, l.root.next = &l.root, &l.root
	return l
}

func (l *lru[K, V]) unlink(e *entry[K, V]) {
	e.prev.next, e.next.prev = e.next, e.prev
}

func (l *lru[K, V]) pushFront(e *entry[K, V]) {
	e.prev, e.next = &l.root, l.root.next
	e.prev.next, e.next.prev = e, e
}

// get returns the cached value and marks it most recently used.
func (l *lru[K, V]) get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.items[k]
	if !ok {
		l.misses.Add(1)
		var zero V
		return zero, false
	}
	l.hits.Add(1)
	l.unlink(e)
	l.pushFront(e)
	return e.val, true
}

// put inserts or refreshes a value with the given cost and evicts from
// the cold end until both bounds hold. An over-budget single value is
// still admitted (and evicts everything else): rejecting it would make
// the cache silently useless for that key.
func (l *lru[K, V]) put(k K, v V, cost int64) {
	l.mu.Lock()
	var evicted []K
	if e, ok := l.items[k]; ok {
		l.bytes.Add(cost - e.cost)
		e.val, e.cost = v, cost
		l.unlink(e)
		l.pushFront(e)
	} else {
		e = &entry[K, V]{key: k, val: v, cost: cost}
		l.items[k] = e
		l.pushFront(e)
		l.bytes.Add(cost)
		l.entries.Add(1)
	}
	for len(l.items) > 1 &&
		((l.maxEntries > 0 && len(l.items) > l.maxEntries) ||
			(l.maxBytes > 0 && l.bytes.Load() > l.maxBytes)) {
		cold := l.root.prev
		l.unlink(cold)
		delete(l.items, cold.key)
		l.bytes.Add(-cold.cost)
		l.entries.Add(-1)
		l.evictions.Add(1)
		if l.onEvict != nil {
			evicted = append(evicted, cold.key)
		}
	}
	hook := l.onEvict
	l.mu.Unlock()
	for _, key := range evicted {
		hook(key)
	}
}

// stats snapshots the counters without taking the map mutex: the fields
// are atomics, so a scrape never contends with lookups or insertions.
func (l *lru[K, V]) stats() Stats {
	return Stats{
		Hits:      l.hits.Load(),
		Misses:    l.misses.Load(),
		Evictions: l.evictions.Load(),
		Entries:   int(l.entries.Load()),
		Bytes:     l.bytes.Load(),
	}
}
