package cache

import "repro/internal/constinfer"

// SummaryStore is the bounded LRU implementation of
// constinfer.SummaryCache: per-function constraint summaries keyed by
// content address (prepare fingerprint + function AST fingerprint). A
// resident server shares one store across every request, so analyzing a
// program in which one function changed replays every other function's
// fragment from here. Safe for concurrent use; stored summaries are
// immutable and may be read by many analyses at once.
type SummaryStore struct {
	lru *lru[constinfer.SummaryKey, *constinfer.BodySummary]
}

// NewSummaryStore builds a summary store bounded by entry count and
// (approximate) total bytes; a zero bound means unbounded in that
// dimension.
func NewSummaryStore(maxEntries int, maxBytes int64) *SummaryStore {
	return &SummaryStore{lru: newLRU[constinfer.SummaryKey, *constinfer.BodySummary](maxEntries, maxBytes)}
}

// GetSummary implements constinfer.SummaryCache.
func (s *SummaryStore) GetSummary(k constinfer.SummaryKey) (*constinfer.BodySummary, bool) {
	return s.lru.get(k)
}

// PutSummary implements constinfer.SummaryCache.
func (s *SummaryStore) PutSummary(k constinfer.SummaryKey, b *constinfer.BodySummary) {
	s.lru.put(k, b, b.ApproxBytes())
}

// Stats snapshots the store counters.
func (s *SummaryStore) Stats() Stats { return s.lru.stats() }
