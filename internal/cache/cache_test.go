package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/driver"
)

// --- LRU mechanics ---

func TestLRUHitMissEviction(t *testing.T) {
	c := NewResultCache(2, 0)
	ka, kb, kc := Key{'a'}, Key{'b'}, Key{'c'}

	if _, ok := c.Get(ka); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(ka, []byte("ra"))
	c.Put(kb, []byte("rb"))
	if got, ok := c.Get(ka); !ok || string(got) != "ra" {
		t.Fatalf("Get(a) = %q, %v; want ra, true", got, ok)
	}
	// a was just used, so inserting c must evict b.
	c.Put(kc, []byte("rc"))
	if _, ok := c.Get(kb); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	if _, ok := c.Get(ka); !ok {
		t.Fatal("a evicted although most recently used")
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v; want 2 hits, 2 misses, 1 eviction, 2 entries", s)
	}
}

func TestLRUByteBound(t *testing.T) {
	c := NewResultCache(0, 10)
	c.Put(Key{1}, []byte("123456"))
	c.Put(Key{2}, []byte("123456")) // 12 bytes total: entry 1 must go
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 6 || s.Evictions != 1 {
		t.Fatalf("stats = %+v; want 1 entry, 6 bytes, 1 eviction", s)
	}
	// A single over-budget value is still admitted (the cache would
	// otherwise be useless for it), but evicts everything else.
	c.Put(Key{3}, bytes.Repeat([]byte("x"), 100))
	s = c.Stats()
	if s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("stats after oversized put = %+v; want the one oversized entry", s)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewResultCache(4, 0)
	k := Key{9}
	c.Put(k, []byte("old"))
	c.Put(k, []byte("newer"))
	if got, _ := c.Get(k); string(got) != "newer" {
		t.Fatalf("Get = %q; want newer", got)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 5 {
		t.Fatalf("stats = %+v; want 1 entry of 5 bytes after update", s)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewResultCache(64, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{byte(g), byte(i % 100)}
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty value from cache")
				}
				c.Put(k, []byte(fmt.Sprintf("%d-%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 64 {
		t.Fatalf("entry bound violated: %d entries", s.Entries)
	}
}

// --- request keys ---

func TestRequestKey(t *testing.T) {
	srcs := []driver.Source{{Path: "a.c", Text: "int f(void) { return 0; }\n"}}
	base := RequestKey(driver.Config{}, srcs)

	if RequestKey(driver.Config{}, srcs) != base {
		t.Fatal("equal requests produced different keys")
	}
	edited := []driver.Source{{Path: "a.c", Text: "int f(void) { return 1; }\n"}}
	if RequestKey(driver.Config{}, edited) == base {
		t.Fatal("text edit did not change the key")
	}
	poly := driver.Config{}
	poly.Options.Poly = true
	if RequestKey(poly, srcs) == base {
		t.Fatal("mode change did not change the key")
	}
	// Length prefixes: moving a byte between path and text must matter.
	a := RequestKey(driver.Config{}, []driver.Source{{Path: "ab", Text: "c"}})
	b := RequestKey(driver.Config{}, []driver.Source{{Path: "a", Text: "bc"}})
	if a == b {
		t.Fatal("path/text boundary not separated in the key")
	}
	// The summary cache changes cost, never results: same key with and
	// without one installed.
	warm := driver.Config{Summaries: NewSummaryStore(0, 0)}
	if RequestKey(warm, srcs) != base {
		t.Fatal("Summaries leaked into the request key")
	}
}

// --- end-to-end determinism of the summary layer ---

const progA = `
int deref(const int *p) { return *p; }
int twice(int x) { return deref(&x) + deref(&x); }
int entry(int *q) { return twice(*q); }
`

// progAEdited changes one function body in place (same declarations,
// same positions elsewhere): only entry's fragment should be re-derived.
const progAEdited = `
int deref(const int *p) { return *p; }
int twice(int x) { return deref(&x) + deref(&x); }
int entry(int *q) { return twice(*q) + 1; }
`

func runJSON(t *testing.T, cfg driver.Config, text string) []byte {
	t.Helper()
	res, err := driver.Run(cfg, []driver.Source{{Path: "prog.c", Text: text}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatalf("front end failed: %+v", res.Diagnostics)
	}
	res.Timings = driver.Timings{} // wall-clock is the one permitted difference
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSummaryDeterminism is the acceptance check: an analysis replayed
// from a warm summary cache must be byte-identical to a cold run.
func TestSummaryDeterminism(t *testing.T) {
	for _, mode := range []string{"mono", "poly"} {
		t.Run(mode, func(t *testing.T) {
			var cfg driver.Config
			cfg.Options.Poly = mode == "poly"
			cold := runJSON(t, cfg, progA)

			store := NewSummaryStore(0, 0)
			cfg.Summaries = store
			first := runJSON(t, cfg, progA) // fills the store
			warm := runJSON(t, cfg, progA)  // replays every fragment

			if !bytes.Equal(cold, first) {
				t.Errorf("cold-store run differs from cacheless run:\n%s\n---\n%s", cold, first)
			}
			if !bytes.Equal(cold, warm) {
				t.Errorf("warm run differs from cold run:\n%s\n---\n%s", cold, warm)
			}
			s := store.Stats()
			if s.Hits == 0 {
				t.Errorf("warm run recorded no summary hits: %+v", s)
			}
		})
	}
}

// TestSummaryIncremental edits one function body and checks both that
// the other functions replay from cache and that the result is still
// byte-identical to a cold run of the edited program.
func TestSummaryIncremental(t *testing.T) {
	var cold driver.Config
	want := runJSON(t, cold, progAEdited)

	store := NewSummaryStore(0, 0)
	cfg := driver.Config{Summaries: store}
	runJSON(t, cfg, progA) // prime: 3 function summaries
	base := store.Stats()

	got := runJSON(t, cfg, progAEdited)
	if !bytes.Equal(want, got) {
		t.Errorf("incremental run differs from cold run:\n%s\n---\n%s", want, got)
	}
	s := store.Stats()
	if hits := s.Hits - base.Hits; hits != 2 {
		t.Errorf("summary hits = %d; want 2 (deref and twice unchanged, entry edited)", hits)
	}
}

// TestSummaryConcurrent shares one store across parallel analyses of
// distinct programs; run under -race this exercises the locking and the
// immutability of stored fragments.
func TestSummaryConcurrent(t *testing.T) {
	store := NewSummaryStore(0, 0)
	progs := []string{progA, progAEdited,
		"int id(int x) { return x; }\nint use(int *p) { return id(*p); }\n",
	}
	wants := make([][]byte, len(progs))
	for i, p := range progs {
		wants[i] = runJSON(t, driver.Config{}, p)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, p := range progs {
			wg.Add(1)
			go func(i int, p string) {
				defer wg.Done()
				got := runJSON(t, driver.Config{Summaries: store}, p)
				if !bytes.Equal(got, wants[i]) {
					t.Errorf("prog %d: concurrent cached run differs from cold run", i)
				}
			}(i, p)
		}
	}
	wg.Wait()
}
