package cache

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/driver"
)

// Key is the content address of one analysis request: a hash of the
// source texts and the analysis configuration.
type Key [sha256.Size]byte

// langKey normalizes the config's front-end language for hashing: the
// empty string and "c" are the same front end and must key identically.
func langKey(cfg driver.Config) string {
	if cfg.Lang == "" {
		return "c"
	}
	return cfg.Lang
}

// RequestKey derives the result-cache key for an analysis request. It
// hashes the front-end language, the inference mode (poly/polyrec/
// simplify, the poly-rec iteration bound), the jobs setting, the
// uninit flag, the selected
// analyses, every prelude's path and text, and every source's path and
// text, all length-prefixed so concatenations cannot collide. Sources
// must carry their text: a path-only source would key on the name rather
// than the content. cfg.Summaries is deliberately excluded — a summary
// cache changes how fast a result is derived, never what it is.
func RequestKey(cfg driver.Config, sources []driver.Source) Key {
	h := sha256.New()
	fmt.Fprintf(h, "lang:%s;", langKey(cfg))
	fmt.Fprintf(h, "cfg:%t,%t,%t,%d,%d,%d,%t;",
		cfg.Options.Poly, cfg.Options.PolyRec, cfg.Options.Simplify,
		cfg.Options.MaxPolyRecIters, cfg.Jobs, cfg.SolveJobs, cfg.Uninit)
	for _, a := range cfg.AnalysisNames() {
		fmt.Fprintf(h, "an:%d:%s;", len(a), a)
	}
	for _, p := range cfg.Preludes {
		fmt.Fprintf(h, "pre:%d:%s%d:%s", len(p.Path), p.Path, len(p.Text), p.Text)
	}
	for _, s := range sources {
		fmt.Fprintf(h, "src:%d:%s%d:%s", len(s.Path), s.Path, len(s.Text), s.Text)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// ResultCache memoizes finished analysis reports (the rendered JSON
// bytes) by request key. Because the pipeline is deterministic, serving
// the stored bytes is byte-identical to re-running the analysis. Safe
// for concurrent use.
type ResultCache struct {
	lru *lru[Key, []byte]
}

// NewResultCache builds a result cache bounded by entry count and total
// stored bytes; a zero bound means unbounded in that dimension.
func NewResultCache(maxEntries int, maxBytes int64) *ResultCache {
	return &ResultCache{lru: newLRU[Key, []byte](maxEntries, maxBytes)}
}

// OnEvict registers a hook observing every evicted request key. The
// hook fires outside the cache lock. Register once, at startup, before
// traffic.
func (c *ResultCache) OnEvict(fn func(k Key)) { c.lru.onEvict = fn }

// Get returns the stored report for the key. The returned slice is
// shared and must not be modified.
func (c *ResultCache) Get(k Key) ([]byte, bool) { return c.lru.get(k) }

// Put stores a finished report under its request key.
func (c *ResultCache) Put(k Key, report []byte) {
	c.lru.put(k, report, int64(len(report)))
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() Stats { return c.lru.stats() }
