package infer

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/lambda"
	"repro/internal/progen"
	"repro/internal/qtype"
	"repro/internal/qual"
)

func constSet(t testing.TB) *qual.Set {
	t.Helper()
	return qual.MustSet(qual.Qualifier{Name: "const", Sign: qual.Positive})
}

func nonzeroSet(t testing.TB) *qual.Set {
	t.Helper()
	return qual.MustSet(qual.Qualifier{Name: "nonzero", Sign: qual.Negative})
}

func fullSet(t testing.TB) *qual.Set {
	t.Helper()
	return qual.MustSet(
		qual.Qualifier{Name: "const", Sign: qual.Positive},
		qual.Qualifier{Name: "dynamic", Sign: qual.Positive},
		qual.Qualifier{Name: "nonzero", Sign: qual.Negative},
	)
}

// check runs source through a fresh checker and returns the result.
func check(t *testing.T, set *qual.Set, rules Rules, src string) *Result {
	t.Helper()
	c := New(set, rules)
	res, err := c.CheckSource("test", src)
	if err != nil {
		t.Fatalf("CheckSource(%q): %v", src, err)
	}
	return res
}

func mustPass(t *testing.T, set *qual.Set, rules Rules, src string) *Result {
	t.Helper()
	res := check(t, set, rules, src)
	if len(res.Conflicts) != 0 {
		t.Fatalf("program %q rejected: %v", src, res.Conflicts[0].Explain(set))
	}
	return res
}

func mustFail(t *testing.T, set *qual.Set, rules Rules, src string) []*constraint.Unsat {
	t.Helper()
	res := check(t, set, rules, src)
	if len(res.Conflicts) == 0 {
		t.Fatalf("program %q accepted, want qualifier conflict", src)
	}
	return res.Conflicts
}

func TestBasicTyping(t *testing.T) {
	set := constSet(t)
	cases := []struct {
		src  string
		want string // structure of the stripped type
	}{
		{"5", "int"},
		{"()", "unit"},
		{"fn x => x", "(α1 → α1)"},
		{"fn x => 5", "(α1 → int)"},
		{"ref 1", "ref(int)"},
		{"!(ref 1)", "int"},
		{"ref 1 := 2", "unit"},
		{"let x = 1 in x ni", "int"},
		{"if 1 then 2 else 3 fi", "int"},
		{"(fn x => x) 5", "int"},
		{"1 + 2 * 3", "int"},
		{"1 == 2", "int"},
		{"let f = fn x => !x in f (ref ()) ni", "unit"},
		{"fn f => fn x => f x", "((α1 → α2) → (α1 → α2))"},
	}
	for _, c := range cases {
		res := mustPass(t, set, Rules{}, c.src)
		got := qtype.Strip(res.Type).String()
		// Compare up to variable numbering by normalizing variable ids.
		if !alphaEq(got, c.want) {
			t.Errorf("type of %q = %s, want %s", c.src, got, c.want)
		}
	}
}

// alphaEq compares type strings ignoring the specific numbers on αN.
func alphaEq(a, b string) bool {
	norm := func(s string) string {
		var out strings.Builder
		names := map[string]string{}
		i := 0
		for i < len(s) {
			if strings.HasPrefix(s[i:], "α") {
				j := i + len("α")
				for j < len(s) && s[j] >= '0' && s[j] <= '9' {
					j++
				}
				id := s[i:j]
				if _, ok := names[id]; !ok {
					names[id] = "α" + string(rune('a'+len(names)))
				}
				out.WriteString(names[id])
				i = j
				continue
			}
			out.WriteByte(s[i])
			i++
		}
		return out.String()
	}
	return norm(a) == norm(b)
}

func TestTypeErrors(t *testing.T) {
	set := constSet(t)
	cases := []string{
		"5 6",                    // applying an int
		"!5",                     // deref of an int
		"5 := 1",                 // assign to an int
		"if () then 1 else 2 fi", // unit guard
		"1 + ()",                 // unit operand
		"if 1 then 2 else () fi", // branch mismatch
		"(fn x => x x) 1",        // occurs check
		"y",                      // unbound variable
	}
	for _, src := range cases {
		c := New(set, Rules{})
		if _, err := c.CheckSource("test", src); err == nil {
			t.Errorf("CheckSource(%q) succeeded, want type error", src)
		}
	}
}

func TestConstAssignRule(t *testing.T) {
	set := constSet(t)
	rules := ConstRules(set)
	// Writing through a const ref is rejected.
	conflicts := mustFail(t, set, rules, "let x = @const ref 1 in x := 2 ni")
	if !strings.Contains(conflicts[0].Con.Why.Msg, "assignment target") &&
		!strings.Contains(conflicts[0].Explain(set), "const") {
		t.Errorf("conflict lacks context: %v", conflicts[0])
	}
	// Writing through a plain ref is fine.
	mustPass(t, set, rules, "let x = ref 1 in x := 2 ni")
	// Reading a const ref is fine.
	mustPass(t, set, rules, "let x = @const ref 1 in !x ni")
	// Subsumption: a non-const ref can be used where const is expected.
	mustPass(t, set, rules, `
		let f = fn r => !(r |[^const]) in
		f (ref 1)
		ni`)
}

func TestConstFlowThroughAlias(t *testing.T) {
	set := constSet(t)
	rules := ConstRules(set)
	// The alias receives the same ref cell; constness conflicts surface
	// even through the alias.
	mustFail(t, set, rules, `
		let x = @const ref 1 in
		let y = x in
		y := 2
		ni ni`)
}

// TestSection24Unsoundness reproduces the paper's Section 2.4 example: with
// the sound invariant-contents rule for refs, the program that launders a
// zero through an alias and then asserts nonzero is rejected.
func TestSection24Unsoundness(t *testing.T) {
	set := nonzeroSet(t)
	rules := NonzeroRules(set)
	mustFail(t, set, rules, `
		let x = ref (@nonzero 37) in
		let y = x in
		y := 0;
		(!x) |[nonzero]
		ni ni`)
	// Control: without the zero store the program is fine.
	mustPass(t, set, rules, `
		let x = ref (@nonzero 37) in
		let y = x in
		(!x) |[nonzero]
		ni ni`)
}

func TestNonzeroDivision(t *testing.T) {
	set := nonzeroSet(t)
	rules := NonzeroRules(set)
	// Dividing by a literal nonzero is fine.
	mustPass(t, set, rules, "10 / 2")
	// Dividing by zero is rejected.
	mustFail(t, set, rules, "10 / 0")
	// Dividing by an arithmetic result is rejected (conservative).
	mustFail(t, set, rules, "10 / (1 + 1)")
	// Dividing by an annotated value is fine.
	mustPass(t, set, rules, "10 / (@nonzero (1 + 1))")
	// The zero literal flowing through a let is caught.
	mustFail(t, set, rules, "let z = 0 in 10 / z ni")
}

func TestAssertValidation(t *testing.T) {
	set := fullSet(t)
	c := New(set, Rules{})
	// Asserting absence of a negative qualifier is rejected as misuse.
	if _, err := c.CheckSource("t", "5 |[^nonzero]"); err == nil {
		t.Error("^nonzero accepted")
	}
	// Asserting presence of a positive qualifier is rejected as misuse.
	c2 := New(set, Rules{})
	if _, err := c2.CheckSource("t", "5 |[const]"); err == nil {
		t.Error("|[const] accepted")
	}
	// Unknown names.
	c3 := New(set, Rules{})
	if _, err := c3.CheckSource("t", "5 |[^volatile]"); err == nil {
		t.Error("unknown qualifier in assertion accepted")
	}
	c4 := New(set, Rules{})
	if _, err := c4.CheckSource("t", "@volatile 5"); err == nil {
		t.Error("unknown qualifier in annotation accepted")
	}
	var qe *QualError
	_, err := New(set, Rules{}).CheckSource("t", "@volatile 5")
	if e, ok := err.(*QualError); ok {
		qe = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(qe.Error(), "volatile") || !strings.Contains(qe.Error(), "t:1:") {
		t.Errorf("QualError = %q", qe.Error())
	}
}

func TestAnnotationSemantics(t *testing.T) {
	set := fullSet(t)
	// @const raises only the const component.
	res := mustPass(t, set, Rules{}, "@const 5")
	q := res.Type.Q
	if !q.IsVar() {
		t.Fatal("annotation result should be a variable")
	}
	lo := res.Sys.Lower(q.Var())
	if !set.Has(lo, "const") {
		t.Error("const not forced by annotation")
	}
	if set.Has(lo, "dynamic") {
		t.Error("annotation leaked into dynamic")
	}
	// Stacked annotations accumulate.
	res = mustPass(t, set, Rules{}, "@const @dynamic 5")
	lo = res.Sys.Lower(res.Type.Q.Var())
	if !set.Has(lo, "const") || !set.Has(lo, "dynamic") {
		t.Errorf("stacked annotations = %s", set.Describe(lo))
	}
	// A negative annotation is an upper bound (assumed presence).
	res = mustPass(t, set, Rules{}, "@nonzero (1 + 1)")
	up := res.Sys.Upper(res.Type.Q.Var())
	if !set.Has(up, "nonzero") {
		t.Error("negative annotation did not force presence in the upper bound")
	}
}

func TestAssertionPassAndFail(t *testing.T) {
	set := fullSet(t)
	rules := Merge(ConstRules(set), NonzeroRules(set))
	mustPass(t, set, rules, "(ref 1) |[^const]")
	mustFail(t, set, rules, "(@const ref 1) |[^const]")
	mustPass(t, set, rules, "5 |[nonzero]")
	mustFail(t, set, rules, "0 |[nonzero]")
	// Assertion does not change the type: the value still flows.
	mustPass(t, set, rules, "1 + (5 |[nonzero])")
}

// TestPolyId reproduces the paper's Section 3.2 example: one identity
// function used at const and non-const types. Monomorphic inference
// rejects the program; polymorphic inference accepts it.
func TestPolyId(t *testing.T) {
	set := constSet(t)
	src := `
		let id = fn x => x in
		let y = id (ref 1) in
		let u = y := 2 in
		let z = id (@const ref 1) in
		()
		ni ni ni ni`
	// Polymorphic: accepted.
	c := New(set, ConstRules(set))
	res, err := c.CheckSource("poly", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("polymorphic inference rejected the id example: %v", res.Conflicts[0].Explain(set))
	}
	// Monomorphic: rejected.
	m := New(set, ConstRules(set))
	m.Monomorphic = true
	res, err = m.CheckSource("mono", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) == 0 {
		t.Error("monomorphic inference accepted the id example")
	}
}

// TestPolyIdSimplified runs the same example with scheme simplification
// enabled; results must not change.
func TestPolyIdSimplified(t *testing.T) {
	set := constSet(t)
	src := `
		let id = fn x => x in
		let y = id (ref 1) in
		let u = y := 2 in
		let z = id (@const ref 1) in
		()
		ni ni ni ni`
	c := New(set, ConstRules(set))
	c.Simplify = true
	res, err := c.CheckSource("poly", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("simplified polymorphic inference rejected the id example: %v", res.Conflicts[0].Explain(set))
	}
}

func TestValueRestriction(t *testing.T) {
	set := constSet(t)
	// A ref is not a value, so its type is monomorphic and the cell is
	// shared: const flowing in one use constrains the other.
	src := `
		let r = ref 1 in
		let u = r := 2 in
		(r) |[^const]
		ni ni`
	mustPass(t, set, ConstRules(set), src)
	// The init "ref 1" must NOT be generalized: both uses must alias.
	src2 := `
		let r = ref (@nonzero 37) in
		let a = r in
		let u = a := 0 in
		(!r) |[nonzero]
		ni ni ni`
	setNZ := nonzeroSet(t)
	mustFail(t, setNZ, NonzeroRules(setNZ), src2)
}

func TestBindingTime(t *testing.T) {
	set := qual.MustSet(qual.Qualifier{Name: "dynamic", Sign: qual.Positive})
	rules := BindingTimeRules(set)
	// A static computation over static data is fine.
	mustPass(t, set, rules, "let f = fn x => x + 1 in f 2 ni")
	// Branching on dynamic data makes the result dynamic: asserting it
	// static fails.
	mustFail(t, set, rules, `
		let d = @dynamic 1 in
		(if d then 1 else 2 fi) |[^dynamic]
		ni`)
	// Applying a dynamic function yields a dynamic result.
	mustFail(t, set, rules, `
		let f = @dynamic (fn x => x) in
		(f 1) |[^dynamic]
		ni`)
	// Well-formedness: nothing dynamic inside a static value. A reference
	// asserted static must not hold dynamic contents.
	mustFail(t, set, rules, `
		let r = ref (@dynamic 1) in
		r |[^dynamic]
		ni`)
}

func TestTaint(t *testing.T) {
	set := qual.MustSet(qual.Qualifier{Name: "tainted", Sign: qual.Positive})
	rules := TaintRules(set)
	// Tainted data reaching an untainted sink is rejected.
	mustFail(t, set, rules, `
		let input = @tainted 42 in
		let sink = fn x => x |[^tainted] in
		sink input
		ni ni`)
	// Taint propagates through arithmetic.
	mustFail(t, set, rules, `
		let input = @tainted 42 in
		(input + 1) |[^tainted]
		ni`)
	// Clean data passes.
	mustPass(t, set, rules, `
		let sink = fn x => x |[^tainted] in
		sink 42
		ni`)
}

// TestObservation1 checks the paper's Observation 1 on concrete programs:
// stripping qualifiers from a typable annotated program leaves a typable
// program with the same standard type, and annotation-free programs never
// produce qualifier conflicts under the pure framework rules.
func TestObservation1(t *testing.T) {
	set := fullSet(t)
	programs := []string{
		"@const 5",
		"let x = @const ref (@nonzero 1) in (!x) |[nonzero] ni",
		"let id = fn x => x in id (@const ref 1) ni",
		"fn f => fn x => (f (x |[^const]))",
		"(@dynamic (fn x => x)) 3",
	}
	for _, src := range programs {
		e := lambda.MustParse(src)
		c1 := New(set, Rules{})
		q1, err := c1.Infer(nil, e)
		if err != nil {
			t.Errorf("annotated %q: %v", src, err)
			continue
		}
		c2 := New(set, Rules{})
		q2, err := c2.Infer(nil, lambda.Strip(e))
		if err != nil {
			t.Errorf("stripped %q: %v", src, err)
			continue
		}
		if !qtype.EqualSType(qtype.Strip(q1), qtype.Strip(q2)) {
			t.Errorf("%q: standard types differ: %s vs %s", src, qtype.Strip(q1), qtype.Strip(q2))
		}
		// The stripped program generates no conflicts under empty rules.
		if errs := c2.Sys.Solve(); errs != nil {
			t.Errorf("stripped %q has conflicts: %v", src, errs[0])
		}
	}
}

func TestInstantiateSharesMonoTypeVars(t *testing.T) {
	set := constSet(t)
	// Qualifier polymorphism does not duplicate type structure: using id
	// at int and then at unit is a standard type error (the paper's
	// polymorphism ranges over qualifiers only).
	src := `
		let id = fn x => x in
		let a = id 1 in
		id ()
		ni ni`
	c := New(set, Rules{})
	_, err := c.CheckSource("t", src)
	if err == nil {
		t.Error("id used at two standard types; qualifier polymorphism must not allow this")
	}
}

func TestSchemeInstantiationIndependence(t *testing.T) {
	set := constSet(t)
	// Two instantiations must not share internal qualifier variables:
	// const at one call site must not leak to the other.
	src := `
		let id = fn x => x in
		let a = id (@const ref 1) in
		let b = id (ref 2) in
		let u = b := 5 in
		()
		ni ni ni ni`
	mustPass(t, set, ConstRules(set), src)
}

func TestEnvLookup(t *testing.T) {
	var env *Env
	if _, ok := env.Lookup("x"); ok {
		t.Error("lookup in empty env succeeded")
	}
	set := constSet(t)
	c := New(set, Rules{})
	q := c.intType(constraint.C(set.Bottom()))
	env = env.Bind("x", Mono(q))
	env2 := env.Bind("x", Mono(c.B.Apply(ConRef, q)))
	s, ok := env2.Lookup("x")
	if !ok || qtype.Strip(s.Body).String() != "ref(int)" {
		t.Error("shadowing broken")
	}
	s, ok = env.Lookup("x")
	if !ok || qtype.Strip(s.Body).String() != "int" {
		t.Error("outer binding damaged")
	}
}

func TestSequencing(t *testing.T) {
	set := constSet(t)
	res := mustPass(t, set, ConstRules(set), "let r = ref 1 in r := 2; !r ni")
	if qtype.Strip(res.Type).String() != "int" {
		t.Errorf("sequencing type = %s", qtype.Strip(res.Type))
	}
}

func TestFormatSolvedOutput(t *testing.T) {
	set := constSet(t)
	res := mustPass(t, set, ConstRules(set), "@const ref 1")
	got := res.Type.FormatSolved(set, res.Sys)
	if !strings.Contains(got, "const") || !strings.Contains(got, "ref") {
		t.Errorf("FormatSolved = %q", got)
	}
}

func TestLetRecTyping(t *testing.T) {
	set := constSet(t)
	res := mustPass(t, set, Rules{}, `
		letrec fact = fn n => if n then n * fact (n - 1) else 1 fi in
		fact 5
		ni`)
	if got := qtype.Strip(res.Type).String(); got != "int" {
		t.Errorf("fact 5 : %s", got)
	}
	// The initializer must be a value.
	c := New(set, Rules{})
	if _, err := c.CheckSource("t", "letrec f = f 1 in f ni"); err == nil {
		t.Error("letrec with non-value initializer accepted")
	}
	// Ill-typed recursion is a type error.
	c2 := New(set, Rules{})
	if _, err := c2.CheckSource("t", "letrec f = fn n => f in f ni"); err == nil {
		t.Error("infinite type through letrec accepted")
	}
}

// TestLetRecPolymorphism: a recursive flow-through function is qualifier-
// polymorphic across its uses, like the C polyrec extension.
func TestLetRecPolymorphism(t *testing.T) {
	set := constSet(t)
	src := `
		letrec walk = fn r => if !r then walk r else r fi in
		let a = walk (ref 1) in
		let u = a := 2 in
		let b = walk (@const ref 0) in
		()
		ni ni ni ni`
	res := mustPass(t, set, ConstRules(set), src)
	_ = res
	// Monomorphically the const and the write collide.
	m := New(set, ConstRules(set))
	m.Monomorphic = true
	mres, err := m.CheckSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.Conflicts) == 0 {
		t.Error("monomorphic letrec accepted the mixed-use program")
	}
}

func TestLetRecMutualViaRef(t *testing.T) {
	set := constSet(t)
	// Mutual recursion encoded through a ref cell (the language has
	// single letrec only); self-application would need polymorphic
	// recursion over types, which qualifier polymorphism rightly does not
	// provide.
	mustPass(t, set, Rules{}, `
		let oddcell = ref (fn n => n) in
		letrec even = fn n => if n then (!oddcell) (n - 1) else 1 fi in
		let odd = fn n => if n then even (n - 1) else 0 fi in
		oddcell := odd;
		even 10
		ni ni ni`)
	// And the simply-typed system rejects self-application through letrec.
	c := New(set, Rules{})
	if _, err := c.CheckSource("t", "letrec f = fn s => s s in f f ni"); err == nil {
		t.Error("self-application accepted")
	}
}

// TestPropertyMonoAcceptImpliesPolyAccept: over a generated corpus, every
// program the monomorphic system accepts is also accepted polymorphically
// (polymorphism only relaxes constraints), and scheme simplification
// never changes the verdict.
func TestPropertyMonoAcceptImpliesPolyAccept(t *testing.T) {
	set := constSet(t)
	rules := ConstRules(set)
	g := progen.New(31, progen.DefaultConfig())
	monoAccepted, polyAccepted, simplifyMismatch := 0, 0, 0
	for i := 0; i < 2000; i++ {
		prog := g.Program()

		mono := New(set, rules)
		mono.Monomorphic = true
		mres, err := mono.Check(nil, prog)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}

		poly := New(set, rules)
		pres, err := poly.Check(nil, prog)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}

		simp := New(set, rules)
		simp.Simplify = true
		sres, err := simp.Check(nil, prog)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}

		mok := len(mres.Conflicts) == 0
		pok := len(pres.Conflicts) == 0
		sok := len(sres.Conflicts) == 0
		if mok {
			monoAccepted++
			if !pok {
				t.Fatalf("iteration %d: mono accepts but poly rejects:\n%s",
					i, lambda.Print(prog))
			}
		}
		if pok {
			polyAccepted++
		}
		if pok != sok {
			simplifyMismatch++
			t.Errorf("iteration %d: simplify changed the verdict (poly=%v simplified=%v):\n%s",
				i, pok, sok, lambda.Print(prog))
		}
	}
	if polyAccepted < monoAccepted {
		t.Errorf("poly accepted %d < mono accepted %d", polyAccepted, monoAccepted)
	}
	t.Logf("mono accepted %d, poly accepted %d, simplify mismatches %d",
		monoAccepted, polyAccepted, simplifyMismatch)
}

// TestMergeAllHooks: merging rule sets composes every hook; each
// component's effect is observable.
func TestMergeAllHooks(t *testing.T) {
	set := fullSet(t)
	calls := map[string]int{}
	mk := func(tag string) Rules {
		return Rules{
			LitQual: func(s *qual.Set, n int64) qual.Elem { calls[tag+".lit"]++; return s.Bottom() },
			Assign: func(sys *constraint.System, refQ constraint.Term, pos lambda.Pos) {
				calls[tag+".assign"]++
			},
			Deref: func(sys *constraint.System, refQ, resQ constraint.Term, pos lambda.Pos) {
				calls[tag+".deref"]++
			},
			App: func(sys *constraint.System, funQ, resQ constraint.Term, pos lambda.Pos) {
				calls[tag+".app"]++
			},
			If: func(sys *constraint.System, condQ, resQ constraint.Term, pos lambda.Pos) {
				calls[tag+".if"]++
			},
			Bin: func(sys *constraint.System, op lambda.BinOp, lq, rq, resQ constraint.Term, pos lambda.Pos) {
				calls[tag+".bin"]++
			},
			WellFormed: func(sys *constraint.System, parent, child constraint.Term) {
				calls[tag+".wf"]++
			},
		}
	}
	merged := Merge(mk("a"), mk("b"))
	c := New(set, merged)
	_, err := c.CheckSource("t", `
		let r = ref 1 in
		let f = fn x => x + 1 in
		if !r then r := f 2 else () fi
		ni ni`)
	if err != nil {
		t.Fatal(err)
	}
	for _, hook := range []string{"lit", "assign", "deref", "app", "if", "bin", "wf"} {
		for _, tag := range []string{"a", "b"} {
			if calls[tag+"."+hook] == 0 {
				t.Errorf("hook %s.%s never called", tag, hook)
			}
		}
	}
	if calls["a.assign"] != calls["b.assign"] {
		t.Error("merged hooks called unevenly")
	}
}

// TestDerefHook: the Deref rule hook receives the ref and result terms.
func TestDerefHook(t *testing.T) {
	set := constSet(t)
	var got []constraint.Term
	rules := Rules{
		Deref: func(sys *constraint.System, refQ, resQ constraint.Term, pos lambda.Pos) {
			got = append(got, refQ, resQ)
			// Custom rule: reading a const ref marks the result const.
			sys.AddMasked(refQ, resQ, set.MustMask("const"),
				constraint.Reason{Pos: pos.String(), Msg: "const contents stay const"})
		},
	}
	res := mustPass(t, set, rules, "!(@const ref 1)")
	if len(got) != 2 {
		t.Fatalf("deref hook called %d times", len(got)/2)
	}
	if !set.Has(res.Sys.Lower(res.Type.Q.Var()), "const") {
		t.Error("custom deref rule had no effect")
	}
}

// TestObservation1Property checks Observation 1 over the generated
// corpus: for every annotated program that is structurally well-typed,
// the stripped program is too, with the same standard type — qualifiers
// never change the underlying type structure.
func TestObservation1Property(t *testing.T) {
	set := fullSet(t)
	g := progen.New(77, progen.Config{
		MaxDepth:      6,
		Annotate:      []string{"const", "dynamic"},
		AssertAbsent:  []string{"const", "dynamic"},
		NegAnnotate:   []string{"nonzero"},
		AssertPresent: []string{"nonzero"},
	})
	for i := 0; i < 1500; i++ {
		prog := g.Program()
		c1 := New(set, Rules{})
		q1, err := c1.Infer(nil, prog)
		if err != nil {
			t.Fatalf("iteration %d: annotated program ill-typed: %v\n%s", i, err, lambda.Print(prog))
		}
		c2 := New(set, Rules{})
		q2, err := c2.Infer(nil, lambda.Strip(prog))
		if err != nil {
			t.Fatalf("iteration %d: stripped program ill-typed: %v", i, err)
		}
		if !qtype.EqualSType(qtype.Strip(q1), qtype.Strip(q2)) {
			t.Fatalf("iteration %d: standard types differ: %s vs %s\n%s",
				i, qtype.Strip(q1), qtype.Strip(q2), lambda.Print(prog))
		}
		// And the stripped program generates no conflicts under the pure
		// framework (no rules, no annotations): the ⊥(e) direction.
		if errs := c2.Sys.Solve(); errs != nil {
			t.Fatalf("iteration %d: stripped program has conflicts: %v", i, errs[0])
		}
	}
}
