package infer

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/qual"
)

// This file implements the flow-sensitive extension sketched in Section 6
// of the paper: "assign each location a distinct type at every program
// point and add subtyping constraints between the different types. …if s
// does not perform a strong update of x we add the constraint τ1 ≤ τ2; if
// s strongly updates x then we do not add this constraint."
//
// Flow tracks a current qualifier variable per abstract location. A weak
// update links the old point to the new one (the location may retain its
// old contents); a strong update starts a fresh point constrained only by
// the incoming value. Control-flow joins create fresh points above both
// branches. This is enough to express lclint-style per-program-point
// annotations, e.g. an "uninit" qualifier that a definite assignment
// clears — exactly the analysis the paper notes the flow-insensitive
// framework cannot express.

// Flow is a flow-sensitive qualifier environment: one current qualifier
// variable per location, advanced at updates and joins.
type Flow struct {
	sys *constraint.System
	set *qual.Set
	cur map[string]constraint.Var
}

// NewFlow creates an empty flow-sensitive environment over sys.
func NewFlow(sys *constraint.System) *Flow {
	return &Flow{sys: sys, set: sys.Set(), cur: make(map[string]constraint.Var)}
}

// Declare introduces a location whose initial point carries at least the
// given element (e.g. "uninit" present for an uninitialized declaration).
func (f *Flow) Declare(name string, initial qual.Elem, why constraint.Reason) {
	v := f.sys.Fresh()
	if initial != f.set.Bottom() {
		f.sys.Add(constraint.C(initial), constraint.V(v), why)
	}
	f.cur[name] = v
}

// Use returns the location's qualifier at the current program point.
func (f *Flow) Use(name string) (constraint.Term, error) {
	v, ok := f.cur[name]
	if !ok {
		return constraint.Term{}, fmt.Errorf("infer: flow location %q not declared", name)
	}
	return constraint.V(v), nil
}

// Assert bounds the location's current point from above (a qualifier
// assertion at this program point).
func (f *Flow) Assert(name string, bound qual.Elem, why constraint.Reason) error {
	t, err := f.Use(name)
	if err != nil {
		return err
	}
	f.sys.Add(t, constraint.C(bound), why)
	return nil
}

// StrongUpdate moves the location to a fresh point constrained only by
// the incoming qualifier: the old contents are definitely overwritten, so
// no edge from the old point is added (the Section 6 rule).
func (f *Flow) StrongUpdate(name string, incoming constraint.Term, why constraint.Reason) error {
	if _, ok := f.cur[name]; !ok {
		return fmt.Errorf("infer: flow location %q not declared", name)
	}
	v := f.sys.Fresh()
	f.sys.Add(incoming, constraint.V(v), why)
	f.cur[name] = v
	return nil
}

// WeakUpdate moves the location to a fresh point that may hold either the
// old contents or the incoming value: both flow in.
func (f *Flow) WeakUpdate(name string, incoming constraint.Term, why constraint.Reason) error {
	old, ok := f.cur[name]
	if !ok {
		return fmt.Errorf("infer: flow location %q not declared", name)
	}
	v := f.sys.Fresh()
	f.sys.Add(constraint.V(old), constraint.V(v), why)
	f.sys.Add(incoming, constraint.V(v), why)
	f.cur[name] = v
	return nil
}

// Fork copies the environment for analyzing one branch of a conditional.
func (f *Flow) Fork() *Flow {
	out := &Flow{sys: f.sys, set: f.set, cur: make(map[string]constraint.Var, len(f.cur))}
	for k, v := range f.cur {
		out.cur[k] = v
	}
	return out
}

// Join merges a branch back: every location common to both environments
// gets a fresh point above both branch points; locations declared in only
// one branch go out of scope.
func (f *Flow) Join(other *Flow, why constraint.Reason) {
	merged := make(map[string]constraint.Var)
	for name, a := range f.cur {
		b, ok := other.cur[name]
		if !ok {
			continue
		}
		if a == b {
			merged[name] = a
			continue
		}
		v := f.sys.Fresh()
		f.sys.Add(constraint.V(a), constraint.V(v), why)
		f.sys.Add(constraint.V(b), constraint.V(v), why)
		merged[name] = v
	}
	f.cur = merged
}

// Widen closes a loop: back-edges make the loop-entry point absorb the
// loop-exit point, so updates inside the loop body become weak with
// respect to re-entry. Call with the environment at loop entry and the
// environment after one abstract iteration.
func (f *Flow) Widen(entry *Flow, why constraint.Reason) {
	for name, exitV := range f.cur {
		if entryV, ok := entry.cur[name]; ok && entryV != exitV {
			f.sys.Add(constraint.V(exitV), constraint.V(entryV), why)
			// Analysis after the loop sees the merged point.
			f.cur[name] = entryV
		}
	}
}
