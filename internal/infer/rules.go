package infer

import (
	"repro/internal/constraint"
	"repro/internal/lambda"
	"repro/internal/qual"
)

// This file provides the rule sets for the qualifiers discussed in the
// paper: const (Section 2.4), nonzero (Figure 2 and the Section 2.4
// unsoundness example), and binding-time static/dynamic (Sections 1–2).
// Each is a worked instance of the framework's "qualifier designer
// restricts the choice points" mechanism.

// ConstRules returns the rules for the const qualifier, which must be
// registered as a positive qualifier named "const" in the set: the
// left-hand side of an assignment must not be const (the paper's Assign'
// rule).
func ConstRules(set *qual.Set) Rules {
	notConst := set.MustNot("const")
	return Rules{
		Assign: func(sys *constraint.System, refQ constraint.Term, pos lambda.Pos) {
			sys.Add(refQ, constraint.C(notConst),
				constraint.Reason{Pos: pos.String(), Msg: "assignment target must not be const"})
		},
	}
}

// NonzeroRules returns the rules for the negative qualifier "nonzero":
// the literal 0 loses the qualifier, every other literal keeps it,
// divisors must be nonzero, and arithmetic results are conservatively not
// known to be nonzero.
func NonzeroRules(set *qual.Set) Rules {
	bit := set.MustMask("nonzero")
	zeroElem := mustWithout(set, set.Bottom(), "nonzero")
	requireNZ := set.MustRequire("nonzero")
	return Rules{
		LitQual: func(s *qual.Set, n int64) qual.Elem {
			if n == 0 {
				return zeroElem
			}
			return s.Bottom() // nonzero present at ⊥
		},
		Bin: func(sys *constraint.System, op lambda.BinOp, lq, rq, resQ constraint.Term, pos lambda.Pos) {
			if op == lambda.OpDiv {
				sys.Add(rq, constraint.C(requireNZ),
					constraint.Reason{Pos: pos.String(), Msg: "divisor must be nonzero"})
			}
			// Results of arithmetic are not known to be nonzero.
			sys.AddMasked(constraint.C(bit), resQ, bit,
				constraint.Reason{Pos: pos.String(), Msg: "arithmetic result not known nonzero"})
		},
	}
}

// BindingTimeRules returns the rules for binding-time analysis with the
// positive qualifier "dynamic" (static is its absence, as in the paper):
// nothing dynamic may appear inside a static value (the well-formedness
// condition of Section 2), applying a dynamic function gives a dynamic
// result, and branching on a dynamic guard gives a dynamic result.
func BindingTimeRules(set *qual.Set) Rules {
	dyn := set.MustMask("dynamic")
	return Rules{
		WellFormed: func(sys *constraint.System, parent, child constraint.Term) {
			sys.AddMasked(child, parent, dyn,
				constraint.Reason{Msg: "nothing dynamic inside a static value"})
		},
		App: func(sys *constraint.System, funQ, resQ constraint.Term, pos lambda.Pos) {
			sys.AddMasked(funQ, resQ, dyn,
				constraint.Reason{Pos: pos.String(), Msg: "applying a dynamic function yields a dynamic result"})
		},
		If: func(sys *constraint.System, condQ, resQ constraint.Term, pos lambda.Pos) {
			sys.AddMasked(condQ, resQ, dyn,
				constraint.Reason{Pos: pos.String(), Msg: "branching on a dynamic guard yields a dynamic result"})
		},
		Bin: func(sys *constraint.System, op lambda.BinOp, lq, rq, resQ constraint.Term, pos lambda.Pos) {
			r := constraint.Reason{Pos: pos.String(), Msg: "arithmetic on dynamic operands yields a dynamic result"}
			sys.AddMasked(lq, resQ, dyn, r)
			sys.AddMasked(rq, resQ, dyn, r)
		},
		Deref: func(sys *constraint.System, refQ, resQ constraint.Term, pos lambda.Pos) {
			sys.AddMasked(refQ, resQ, dyn,
				constraint.Reason{Pos: pos.String(), Msg: "reading a dynamic reference yields a dynamic result"})
		},
	}
}

// TaintRules returns the rules for a secure-information-flow pair in the
// style the paper cites ([VS97]): a positive qualifier "tainted" marks
// untrusted data. Sources annotate, sinks assert ^tainted; subsumption
// does the propagation, and arithmetic propagates taint from operands to
// results.
func TaintRules(set *qual.Set) Rules {
	taint := set.MustMask("tainted")
	return Rules{
		Bin: func(sys *constraint.System, op lambda.BinOp, lq, rq, resQ constraint.Term, pos lambda.Pos) {
			r := constraint.Reason{Pos: pos.String(), Msg: "taint propagates through arithmetic"}
			sys.AddMasked(lq, resQ, taint, r)
			sys.AddMasked(rq, resQ, taint, r)
		},
	}
}

// Merge combines rule sets; each hook runs every non-nil component in
// order, and LitQual joins the component elements. It lets several
// qualifier analyses share one checker, as in the paper's Figure 2
// lattice over {const, dynamic, nonzero}.
func Merge(rules ...Rules) Rules {
	var out Rules
	for _, r := range rules {
		r := r
		if r.LitQual != nil {
			prev := out.LitQual
			out.LitQual = func(set *qual.Set, n int64) qual.Elem {
				e := r.LitQual(set, n)
				if prev != nil {
					// Each analysis raises only its own components above
					// ⊥ (the all-zero normalized element), so combining
					// is the lattice join.
					e = qual.Join(e, prev(set, n))
				}
				return e
			}
		}
		if r.Assign != nil {
			prev := out.Assign
			out.Assign = func(sys *constraint.System, refQ constraint.Term, pos lambda.Pos) {
				if prev != nil {
					prev(sys, refQ, pos)
				}
				r.Assign(sys, refQ, pos)
			}
		}
		if r.Deref != nil {
			prev := out.Deref
			out.Deref = func(sys *constraint.System, refQ, resQ constraint.Term, pos lambda.Pos) {
				if prev != nil {
					prev(sys, refQ, resQ, pos)
				}
				r.Deref(sys, refQ, resQ, pos)
			}
		}
		if r.App != nil {
			prev := out.App
			out.App = func(sys *constraint.System, funQ, resQ constraint.Term, pos lambda.Pos) {
				if prev != nil {
					prev(sys, funQ, resQ, pos)
				}
				r.App(sys, funQ, resQ, pos)
			}
		}
		if r.If != nil {
			prev := out.If
			out.If = func(sys *constraint.System, condQ, resQ constraint.Term, pos lambda.Pos) {
				if prev != nil {
					prev(sys, condQ, resQ, pos)
				}
				r.If(sys, condQ, resQ, pos)
			}
		}
		if r.Bin != nil {
			prev := out.Bin
			out.Bin = func(sys *constraint.System, op lambda.BinOp, lq, rq, resQ constraint.Term, pos lambda.Pos) {
				if prev != nil {
					prev(sys, op, lq, rq, resQ, pos)
				}
				r.Bin(sys, op, lq, rq, resQ, pos)
			}
		}
		if r.WellFormed != nil {
			prev := out.WellFormed
			out.WellFormed = func(sys *constraint.System, parent, child constraint.Term) {
				if prev != nil {
					prev(sys, parent, child)
				}
				r.WellFormed(sys, parent, child)
			}
		}
	}
	return out
}

func mustWithout(set *qual.Set, e qual.Elem, name string) qual.Elem {
	out, err := set.Without(e, name)
	if err != nil {
		panic(err)
	}
	return out
}
