package infer

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/qual"
)

// The flow-sensitivity tests model the lclint-style "definitely
// initialized" discipline the paper's Section 6 motivates: a positive
// qualifier uninit marks possibly-uninitialized storage; declarations
// start uninit, strong updates clear it, weak updates and joins keep it,
// and uses assert ^uninit.
func uninitSetup(t *testing.T) (*qual.Set, *constraint.System, *Flow, qual.Elem, qual.Elem) {
	t.Helper()
	set := qual.MustSet(qual.Qualifier{Name: "uninit", Sign: qual.Positive})
	sys := constraint.NewSystem(set)
	return set, sys, NewFlow(sys), set.MustOnly("uninit"), set.MustNot("uninit")
}

func fresh(sys *constraint.System) constraint.Term {
	return constraint.V(sys.Fresh())
}

func TestFlowUseBeforeInit(t *testing.T) {
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{Msg: "declare x"})
	if err := f.Assert("x", notUninit, constraint.Reason{Msg: "use x"}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) == 0 {
		t.Error("use of uninitialized location accepted")
	}
}

func TestFlowStrongUpdateClears(t *testing.T) {
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{Msg: "declare x"})
	if err := f.StrongUpdate("x", fresh(sys), constraint.Reason{Msg: "x = 1"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Assert("x", notUninit, constraint.Reason{Msg: "use x"}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) != 0 {
		t.Errorf("strong update did not clear uninit: %v", errs[0])
	}
}

func TestFlowWeakUpdateKeeps(t *testing.T) {
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{Msg: "declare x"})
	// A write through a may-alias is weak: the old point survives.
	if err := f.WeakUpdate("x", fresh(sys), constraint.Reason{Msg: "*p = 1"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Assert("x", notUninit, constraint.Reason{Msg: "use x"}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) == 0 {
		t.Error("weak update cleared uninit")
	}
}

func TestFlowSensitivityVsInsensitivity(t *testing.T) {
	// x is used only AFTER its definite assignment: flow-sensitively
	// fine, and the same constraints made flow-insensitive (one variable
	// for all points) would be rejected — the paper's motivating gap.
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{})
	if err := f.StrongUpdate("x", fresh(sys), constraint.Reason{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Assert("x", notUninit, constraint.Reason{}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) != 0 {
		t.Errorf("flow-sensitive analysis rejected the correct program: %v", errs[0])
	}

	// Flow-insensitive rendering of the same program: declaration bound
	// and assertion on one variable.
	set2 := qual.MustSet(qual.Qualifier{Name: "uninit", Sign: qual.Positive})
	sys2 := constraint.NewSystem(set2)
	x := sys2.Fresh()
	sys2.Add(constraint.C(set2.MustOnly("uninit")), constraint.V(x), constraint.Reason{})
	sys2.Add(constraint.V(x), constraint.C(set2.MustNot("uninit")), constraint.Reason{})
	if errs := sys2.Solve(); len(errs) == 0 {
		t.Error("flow-insensitive version unexpectedly accepted")
	}
}

func TestFlowBranchJoin(t *testing.T) {
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{})

	// if (...) x = 1; else <nothing>; use x  — must be rejected.
	thenBr := f.Fork()
	if err := thenBr.StrongUpdate("x", fresh(sys), constraint.Reason{Msg: "then"}); err != nil {
		t.Fatal(err)
	}
	elseBr := f.Fork()
	thenBr.Join(elseBr, constraint.Reason{Msg: "join"})
	if err := thenBr.Assert("x", notUninit, constraint.Reason{Msg: "use"}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) == 0 {
		t.Error("partially-initialized location accepted after join")
	}
}

func TestFlowBothBranchesInitialize(t *testing.T) {
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{})
	thenBr := f.Fork()
	if err := thenBr.StrongUpdate("x", fresh(sys), constraint.Reason{}); err != nil {
		t.Fatal(err)
	}
	elseBr := f.Fork()
	if err := elseBr.StrongUpdate("x", fresh(sys), constraint.Reason{}); err != nil {
		t.Fatal(err)
	}
	thenBr.Join(elseBr, constraint.Reason{})
	if err := thenBr.Assert("x", notUninit, constraint.Reason{}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) != 0 {
		t.Errorf("both-branch initialization rejected: %v", errs[0])
	}
}

func TestFlowJoinUntouchedLocation(t *testing.T) {
	_, sys, f, uninit, _ := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{})
	a := f.Fork()
	b := f.Fork()
	a.Join(b, constraint.Reason{})
	// Untouched in both branches: the point is unchanged, no fresh var.
	ta, _ := a.Use("x")
	tf, _ := f.Use("x")
	if ta != tf {
		t.Error("join of untouched location created a new point")
	}
	_ = sys
}

func TestFlowLoopWiden(t *testing.T) {
	_, sys, f, uninit, notUninit := uninitSetup(t)
	f.Declare("x", uninit, constraint.Reason{})
	f.Declare("y", uninit, constraint.Reason{})
	// while (...) { x = 1; use y }  — y's use inside the loop is an
	// error; x after the loop is only weakly initialized (the loop may
	// run zero times).
	entry := f.Fork()
	body := f.Fork()
	if err := body.StrongUpdate("x", fresh(sys), constraint.Reason{Msg: "x = 1"}); err != nil {
		t.Fatal(err)
	}
	body.Widen(entry, constraint.Reason{Msg: "loop back-edge"})
	if err := body.Assert("x", notUninit, constraint.Reason{Msg: "use x after loop"}); err != nil {
		t.Fatal(err)
	}
	if errs := sys.Solve(); len(errs) == 0 {
		t.Error("zero-iteration loop treated as definite initialization")
	}
}

func TestFlowErrors(t *testing.T) {
	_, sys, f, _, notUninit := uninitSetup(t)
	if _, err := f.Use("nope"); err == nil {
		t.Error("Use of undeclared location succeeded")
	}
	if err := f.Assert("nope", notUninit, constraint.Reason{}); err == nil {
		t.Error("Assert on undeclared location succeeded")
	}
	if err := f.StrongUpdate("nope", fresh(sys), constraint.Reason{}); err == nil {
		t.Error("StrongUpdate on undeclared location succeeded")
	}
	if err := f.WeakUpdate("nope", fresh(sys), constraint.Reason{}); err == nil {
		t.Error("WeakUpdate on undeclared location succeeded")
	}
}
