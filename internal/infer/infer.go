// Package infer implements qualified type inference for the example
// language, following Sections 2.3, 3.1 and 3.2 of "A Theory of Type
// Qualifiers" (PLDI 1999).
//
// The checker is the image of the paper's construction: each standard
// inference rule is rewritten with the spread operator so that every type
// carries qualifier variables, a subsumption step inserts subtyping
// constraints at every flow point, and the rules for qualifier
// annotations and assertions manipulate only the top-level qualifier.
// Everything specific to a particular qualifier — const's non-const
// assignment targets, nonzero divisors, binding-time well-formedness — is
// supplied through the Rules hooks, mirroring the paper's observation
// that the qualifier designer may restrict the qualifiers the constructed
// rules would otherwise leave arbitrary (Section 2.4).
//
// Polymorphism is let-style and ranges over qualifiers only (Section
// 3.2): let-bound syntactic values are generalized into constrained type
// schemes ∀κ⃗. ρ \ C, instantiated with fresh qualifier variables and a
// copy of C at every use.
package infer

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/lambda"
	"repro/internal/qtype"
	"repro/internal/qual"
)

// The type constructors of the example language: Σ = {int, unit, →, ref}.
var (
	// ConInt is the integer type constructor.
	ConInt = &qtype.Constructor{Name: "int"}
	// ConUnit is the unit type constructor.
	ConUnit = &qtype.Constructor{Name: "unit"}
	// ConFun is the function type constructor; its domain is
	// contravariant and its range covariant (rule SubFun).
	ConFun = &qtype.Constructor{Name: "→", Variance: []qtype.Variance{qtype.Contravariant, qtype.Covariant}, Infix: true}
	// ConRef is the updateable-reference constructor; its contents are
	// invariant (rule SubRef), which repairs the aliasing unsoundness
	// demonstrated in Section 2.4.
	ConRef = &qtype.Constructor{Name: "ref", Variance: []qtype.Variance{qtype.Invariant}}
)

// Rules collects the per-qualifier hooks. Every field may be nil, giving
// the pure framework behaviour of Figure 4. Hooks add constraints through
// the supplied system; they must not solve it.
type Rules struct {
	// LitQual chooses the qualifier element for an integer literal.
	// Default: ⊥, the paper's (Int) rule. A nonzero analysis maps 0 to
	// the element with nonzero absent.
	LitQual func(set *qual.Set, n int64) qual.Elem
	// Assign is invoked at e1 := e2 with the qualifier of the reference
	// being stored through; the const rule adds the bound refQ ⊑ ¬const
	// (the paper's Assign' rule).
	Assign func(sys *constraint.System, refQ constraint.Term, pos lambda.Pos)
	// Deref is invoked at !e with the reference's qualifier and the
	// qualifier of the resulting contents.
	Deref func(sys *constraint.System, refQ, resQ constraint.Term, pos lambda.Pos)
	// App is invoked at e1 e2 with the function's top-level qualifier and
	// the result's qualifier; binding-time analysis makes the result at
	// least as dynamic as the function.
	App func(sys *constraint.System, funQ, resQ constraint.Term, pos lambda.Pos)
	// If is invoked with the guard's and the result's qualifiers.
	If func(sys *constraint.System, condQ, resQ constraint.Term, pos lambda.Pos)
	// Bin is invoked for arithmetic with the operand and result
	// qualifiers; a nonzero analysis bounds divisors and taints results.
	Bin func(sys *constraint.System, op lambda.BinOp, lq, rq, resQ constraint.Term, pos lambda.Pos)
	// WellFormed is invoked for every parent/child qualifier pair of every
	// constructed type; binding-time analysis adds child ⊑ parent on the
	// dynamic component.
	WellFormed func(sys *constraint.System, parent, child constraint.Term)
}

// Scheme is a constrained polymorphic type ∀κ⃗. ρ \ C. A scheme with no
// quantified variables and no constraints is a monomorphic binding.
type Scheme struct {
	// QVars are the quantified qualifier variables, renamed fresh at each
	// instantiation.
	QVars []constraint.Var
	// Body is the scheme's qualified type.
	Body *qtype.QType
	// Cons is the captured constraint fragment C, replayed (with QVars
	// renamed) at each instantiation.
	Cons []constraint.Constraint
}

// Mono wraps a qualified type as a monomorphic scheme.
func Mono(q *qtype.QType) *Scheme { return &Scheme{Body: q} }

// Env is a persistent type environment mapping program variables to
// schemes.
type Env struct {
	name   string
	scheme *Scheme
	next   *Env
}

// Bind extends the environment; the receiver may be nil (the empty
// environment).
func (e *Env) Bind(name string, s *Scheme) *Env {
	return &Env{name: name, scheme: s, next: e}
}

// Lookup finds the innermost binding of name.
func (e *Env) Lookup(name string) (*Scheme, bool) {
	for ; e != nil; e = e.next {
		if e.name == name {
			return e.scheme, true
		}
	}
	return nil, false
}

// Checker performs qualified type inference over one constraint system.
type Checker struct {
	Set   *qual.Set
	Rules Rules
	Sys   *constraint.System
	B     *qtype.Builder
	// Simplify enables scheme simplification: the constraint fragment
	// captured at generalization is projected onto the scheme's interface
	// variables (the paper's Section 6 presentation problem). Semantics
	// are unchanged; schemes get smaller and instantiation cheaper.
	Simplify bool
	// Monomorphic disables qualifier polymorphism: let-bound values get
	// plain monomorphic types, as in the C type system. The paper's
	// experiments compare exactly these two modes.
	Monomorphic bool
}

// New creates a checker for the qualifier set with the given rules.
func New(set *qual.Set, rules Rules) *Checker {
	sys := constraint.NewSystem(set)
	b := qtype.NewBuilder(sys)
	c := &Checker{Set: set, Rules: rules, Sys: sys, B: b}
	if rules.WellFormed != nil {
		b.OnNode = func(parent, child constraint.Term) {
			rules.WellFormed(sys, parent, child)
		}
	}
	return c
}

// QualError reports a qualifier-related error that is not a lattice
// conflict, such as an unknown qualifier name in an annotation.
type QualError struct {
	Pos lambda.Pos
	Msg string
}

func (e *QualError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

func (c *Checker) intType(q constraint.Term) *qtype.QType {
	return &qtype.QType{Q: q, T: &qtype.Type{Con: ConInt}}
}

func why(pos lambda.Pos, msg string) constraint.Reason {
	return constraint.Reason{Pos: pos.String(), Msg: msg}
}

// Infer computes the qualified type of e under env, adding constraints to
// the checker's system. Standard type errors and qualifier-syntax errors
// are returned immediately; lattice satisfiability is checked by Solve.
func (c *Checker) Infer(env *Env, e lambda.Expr) (*qtype.QType, error) {
	switch e := e.(type) {
	case *lambda.Var:
		s, ok := env.Lookup(e.Name)
		if !ok {
			return nil, &QualError{Pos: e.P, Msg: fmt.Sprintf("unbound variable %q", e.Name)}
		}
		return c.Instantiate(s), nil

	case *lambda.IntLit:
		// The checking rule (Int) gives n : ⊥ int; the constructed
		// inference rules spread a fresh variable instead, with the
		// literal's element as a lower bound — same least solution, but
		// subsumption and well-formedness rules can raise it.
		q := c.Set.Bottom()
		if c.Rules.LitQual != nil {
			q = c.Rules.LitQual(c.Set, e.Val)
		}
		out := c.intType(c.B.FreshQ())
		if q != c.Set.Bottom() {
			c.Sys.Add(constraint.C(q), out.Q, why(e.P, "integer literal"))
		}
		return out, nil

	case *lambda.UnitLit:
		return c.B.Apply(ConUnit), nil

	case *lambda.Lam:
		param := c.B.Qual(c.B.FreshTVar())
		body, err := c.Infer(env.Bind(e.Param, Mono(param)), e.Body)
		if err != nil {
			return nil, err
		}
		return c.B.Apply(ConFun, param, body), nil

	case *lambda.App:
		fn, err := c.Infer(env, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, err := c.Infer(env, e.Arg)
		if err != nil {
			return nil, err
		}
		dom := c.B.Qual(c.B.FreshTVar())
		res := c.B.Qual(c.B.FreshTVar())
		ft := c.B.Apply(ConFun, dom, res)
		if err := c.B.Equal(fn, ft, why(e.P, "application: function type")); err != nil {
			return nil, err
		}
		if err := c.B.Subtype(arg, dom, why(e.Arg.Pos(), "application: argument")); err != nil {
			return nil, err
		}
		if c.Rules.App != nil {
			c.Rules.App(c.Sys, ft.Q, res.Q, e.P)
		}
		return res, nil

	case *lambda.If:
		cond, err := c.Infer(env, e.Cond)
		if err != nil {
			return nil, err
		}
		guard := c.intType(c.B.FreshQ())
		if err := c.B.Equal(cond, guard, why(e.Cond.Pos(), "if guard (an integer)")); err != nil {
			return nil, err
		}
		thn, err := c.Infer(env, e.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.Infer(env, e.Else)
		if err != nil {
			return nil, err
		}
		res := c.B.Qual(c.B.FreshTVar())
		if err := c.B.Subtype(thn, res, why(e.Then.Pos(), "if: then branch")); err != nil {
			return nil, err
		}
		if err := c.B.Subtype(els, res, why(e.Else.Pos(), "if: else branch")); err != nil {
			return nil, err
		}
		if c.Rules.If != nil {
			c.Rules.If(c.Sys, guard.Q, res.Q, e.P)
		}
		return res, nil

	case *lambda.Let:
		var scheme *Scheme
		if lambda.IsValue(e.Init) && !c.Monomorphic {
			s, err := c.Generalize(env, e.Init)
			if err != nil {
				return nil, err
			}
			scheme = s
		} else {
			init, err := c.Infer(env, e.Init)
			if err != nil {
				return nil, err
			}
			scheme = Mono(init)
		}
		return c.Infer(env.Bind(e.Name, scheme), e.Body)

	case *lambda.LetRec:
		scheme, err := c.generalizeRec(env, e)
		if err != nil {
			return nil, err
		}
		return c.Infer(env.Bind(e.Name, scheme), e.Body)

	case *lambda.Ref:
		inner, err := c.Infer(env, e.E)
		if err != nil {
			return nil, err
		}
		return c.B.Apply(ConRef, inner), nil

	case *lambda.Deref:
		ref, err := c.Infer(env, e.E)
		if err != nil {
			return nil, err
		}
		inner := c.B.Qual(c.B.FreshTVar())
		rt := c.B.Apply(ConRef, inner)
		if err := c.B.Equal(ref, rt, why(e.P, "dereference")); err != nil {
			return nil, err
		}
		if c.Rules.Deref != nil {
			c.Rules.Deref(c.Sys, rt.Q, inner.Q, e.P)
		}
		return inner, nil

	case *lambda.Assign:
		lhs, err := c.Infer(env, e.Lhs)
		if err != nil {
			return nil, err
		}
		rhs, err := c.Infer(env, e.Rhs)
		if err != nil {
			return nil, err
		}
		contents := c.B.Qual(c.B.FreshTVar())
		rt := c.B.Apply(ConRef, contents)
		if err := c.B.Equal(lhs, rt, why(e.P, "assignment")); err != nil {
			return nil, err
		}
		if err := c.B.Subtype(rhs, contents, why(e.Rhs.Pos(), "assigned value")); err != nil {
			return nil, err
		}
		if c.Rules.Assign != nil {
			c.Rules.Assign(c.Sys, rt.Q, e.P)
		}
		return c.B.Apply(ConUnit), nil

	case *lambda.Annot:
		return c.inferAnnot(env, e)

	case *lambda.Assert:
		return c.inferAssert(env, e)

	case *lambda.Bin:
		l, err := c.Infer(env, e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.Infer(env, e.R)
		if err != nil {
			return nil, err
		}
		lt := c.intType(c.B.FreshQ())
		rt := c.intType(c.B.FreshQ())
		if err := c.B.Equal(l, lt, why(e.L.Pos(), "left operand of "+e.Op.String())); err != nil {
			return nil, err
		}
		if err := c.B.Equal(r, rt, why(e.R.Pos(), "right operand of "+e.Op.String())); err != nil {
			return nil, err
		}
		res := c.intType(c.B.FreshQ())
		if c.Rules.Bin != nil {
			c.Rules.Bin(c.Sys, e.Op, lt.Q, rt.Q, res.Q, e.P)
		}
		return res, nil

	default:
		return nil, fmt.Errorf("infer: unknown expression %T", e)
	}
}

// inferAnnot implements the (Annot) rule generalized to per-qualifier
// annotations. The paper's "l e" carries a whole lattice element l, checks
// Q ⊑ l and retypes e at l; with named qualifiers the annotation @q
// strengthens exactly the q component: for a positive qualifier the
// result's qualifier is raised to include q, for a negative qualifier the
// result is lowered to include q (an unchecked assumption, like the
// paper's sorted example). All other components flow through unchanged.
func (c *Checker) inferAnnot(env *Env, e *lambda.Annot) (*qtype.QType, error) {
	inner, err := c.Infer(env, e.E)
	if err != nil {
		return nil, err
	}
	idx, ok := c.Set.Lookup(e.Qual)
	if !ok {
		return nil, &QualError{Pos: e.P, Msg: fmt.Sprintf("unknown qualifier %q in annotation", e.Qual)}
	}
	def := c.Set.Qualifier(idx)
	bit, err := c.Set.Mask(e.Qual)
	if err != nil {
		return nil, &QualError{Pos: e.P, Msg: err.Error()}
	}
	out := &qtype.QType{Q: c.B.FreshQ(), T: inner.T}
	r := why(e.P, "annotation @"+e.Qual)
	if def.Sign == qual.Positive {
		// Everything flows up; additionally q is present.
		c.Sys.Add(inner.Q, out.Q, r)
		c.Sys.AddMasked(constraint.C(bit), out.Q, bit, r)
	} else {
		// Other components flow; the q component is assumed present
		// (which for a negative qualifier is the bottom of its
		// two-point lattice, so it is imposed as an upper bound).
		c.Sys.AddMasked(inner.Q, out.Q, c.Set.FullMask()&^bit, r)
		c.Sys.AddMasked(out.Q, constraint.C(0), bit, r)
	}
	return out, nil
}

// inferAssert implements the (Assert) rule: e|l checks Q ⊑ l and leaves
// the type unchanged. Forbid entries demand absence (positive qualifiers,
// bound ¬q); Require entries demand presence (negative qualifiers, bound
// Require(q)).
func (c *Checker) inferAssert(env *Env, e *lambda.Assert) (*qtype.QType, error) {
	inner, err := c.Infer(env, e.E)
	if err != nil {
		return nil, err
	}
	bound := c.Set.Top()
	var names []string
	for _, q := range e.Forbid {
		idx, ok := c.Set.Lookup(q)
		if !ok {
			return nil, &QualError{Pos: e.P, Msg: fmt.Sprintf("unknown qualifier %q in assertion", q)}
		}
		if c.Set.Qualifier(idx).Sign != qual.Positive {
			return nil, &QualError{Pos: e.P, Msg: fmt.Sprintf("assertion ^%s: absence of a negative qualifier is not an upper bound; assert presence instead", q)}
		}
		b, err := c.Set.Without(bound, q)
		if err != nil {
			return nil, &QualError{Pos: e.P, Msg: err.Error()}
		}
		bound = b
		names = append(names, "^"+q)
	}
	for _, q := range e.Require {
		idx, ok := c.Set.Lookup(q)
		if !ok {
			return nil, &QualError{Pos: e.P, Msg: fmt.Sprintf("unknown qualifier %q in assertion", q)}
		}
		if c.Set.Qualifier(idx).Sign != qual.Negative {
			return nil, &QualError{Pos: e.P, Msg: fmt.Sprintf("assertion %s: presence of a positive qualifier is not an upper bound; annotate instead", q)}
		}
		b, err := c.Set.With(bound, q)
		if err != nil {
			return nil, &QualError{Pos: e.P, Msg: err.Error()}
		}
		bound = b
		names = append(names, q)
	}
	c.Sys.Add(inner.Q, constraint.C(bound), why(e.P, fmt.Sprintf("assertion |%v", names)))
	return inner, nil
}

// Generalize infers the type of a syntactic value and abstracts over the
// qualifier variables created during its inference (which can never be
// free in the environment), capturing the constraint fragment generated
// alongside — the paper's (Letv) rule. The fragment also stays in the
// global system, implementing the existential quantification ∃κ⃗.C1 that
// checks the purely local constraints once.
func (c *Checker) Generalize(env *Env, v lambda.Expr) (*Scheme, error) {
	startVar := c.Sys.NumVars()
	startCon := c.Sys.NumConstraints()
	body, err := c.Infer(env, v)
	if err != nil {
		return nil, err
	}
	return c.generalizeFrom(startVar, startCon, body), nil
}

// generalizeRec infers a recursive binding: the name is visible inside
// its own initializer at a monomorphic type (the (Letv) rule extended to
// recursion), and the result is generalized afterwards. In Monomorphic
// mode the recursive type itself is the binding.
func (c *Checker) generalizeRec(env *Env, e *lambda.LetRec) (*Scheme, error) {
	if !lambda.IsValue(e.Init) {
		return nil, &QualError{Pos: e.P, Msg: "letrec initializer must be a syntactic value"}
	}
	startVar := c.Sys.NumVars()
	startCon := c.Sys.NumConstraints()
	self := c.B.Qual(c.B.FreshTVar())
	init, err := c.Infer(env.Bind(e.Name, Mono(self)), e.Init)
	if err != nil {
		return nil, err
	}
	if err := c.B.Equal(init, self, why(e.P, "recursive binding of "+e.Name)); err != nil {
		return nil, err
	}
	if c.Monomorphic {
		return Mono(init), nil
	}
	return c.generalizeFrom(startVar, startCon, init), nil
}

// generalizeFrom builds a scheme quantifying the qualifier variables
// created since the snapshot (which can never be free in the enclosing
// environment) and capturing the constraints generated alongside.
func (c *Checker) generalizeFrom(startVar, startCon int, body *qtype.QType) *Scheme {
	endVar := c.Sys.NumVars()
	cons := append([]constraint.Constraint(nil), c.Sys.Constraints()[startCon:]...)

	qvars := make([]constraint.Var, 0, endVar-startVar)
	for i := startVar; i < endVar; i++ {
		qvars = append(qvars, constraint.Var(i))
	}
	if c.Simplify {
		// Project the fragment onto the variables visible in the scheme
		// body plus the pre-existing (shared) variables it mentions.
		iface := qtype.FreeQVars(body, nil)
		seen := map[constraint.Var]bool{}
		for _, v := range iface {
			seen[v] = true
		}
		for _, con := range cons {
			for _, t := range []constraint.Term{con.L, con.R} {
				if t.IsVar() && int(t.Var()) < startVar && !seen[t.Var()] {
					iface = append(iface, t.Var())
					seen[t.Var()] = true
				}
			}
		}
		cons = constraint.Restrict(c.Set, cons, iface)
		// Only quantify variables that can still occur in the scheme.
		kept := make([]constraint.Var, 0, len(qvars))
		for _, v := range qvars {
			if seen[v] {
				kept = append(kept, v)
			}
		}
		qvars = kept
	}
	return &Scheme{QVars: qvars, Body: body, Cons: cons}
}

// Instantiate implements the (Var') rule: the scheme's quantified
// qualifier variables are replaced with fresh ones in both the body and
// the captured constraints. Type variables are shared — polymorphism
// ranges over qualifiers only.
func (c *Checker) Instantiate(s *Scheme) *qtype.QType {
	if len(s.QVars) == 0 && len(s.Cons) == 0 {
		return s.Body
	}
	rename := make(map[constraint.Var]constraint.Var, len(s.QVars))
	for _, v := range s.QVars {
		rename[v] = c.Sys.Fresh()
	}
	c.Sys.AddConstraints(s.Cons, rename)
	return renameQType(s.Body, rename, map[*qtype.Type]*qtype.Type{})
}

func renameQType(q *qtype.QType, rename map[constraint.Var]constraint.Var, memo map[*qtype.Type]*qtype.Type) *qtype.QType {
	out := &qtype.QType{Q: q.Q, T: renameType(q.T, rename, memo)}
	if q.Q.IsVar() {
		if nv, ok := rename[q.Q.Var()]; ok {
			out.Q = constraint.V(nv)
		}
	}
	return out
}

func renameType(t *qtype.Type, rename map[constraint.Var]constraint.Var, memo map[*qtype.Type]*qtype.Type) *qtype.Type {
	t = t.Resolve()
	if t.Con == nil {
		// Unbound type variables are shared across instantiations:
		// qualifier polymorphism does not copy type structure.
		return t
	}
	if got, ok := memo[t]; ok {
		return got
	}
	args := make([]*qtype.QType, len(t.Args))
	out := &qtype.Type{Con: t.Con, Args: args}
	memo[t] = out
	for i, a := range t.Args {
		args[i] = renameQType(a, rename, memo)
	}
	return out
}

// Result bundles the outcome of a whole-program check.
type Result struct {
	// Type is the program's qualified type.
	Type *qtype.QType
	// Sys is the solved constraint system, usable for classification.
	Sys *constraint.System
	// Conflicts are the unsatisfiable qualifier constraints (nil when the
	// program is qualifier-correct).
	Conflicts []*constraint.Unsat
}

// Check infers and solves in one step, starting from an empty (or
// caller-provided) environment.
func (c *Checker) Check(env *Env, e lambda.Expr) (*Result, error) {
	qt, err := c.Infer(env, e)
	if err != nil {
		return nil, err
	}
	return &Result{Type: qt, Sys: c.Sys, Conflicts: c.Sys.Solve()}, nil
}

// CheckSource parses and checks a program in one step.
func (c *Checker) CheckSource(file, src string) (*Result, error) {
	e, err := lambda.Parse(file, src)
	if err != nil {
		return nil, err
	}
	return c.Check(nil, e)
}
