// Package eval implements the small-step operational semantics of Figure
// 5 of "A Theory of Type Qualifiers" (PLDI 1999): call-by-value reduction
// over a store, where every semantic value carries a qualifier annotation
// (l v) and qualifier assertions perform the dynamic check l2 ⊑ l1.
//
// The evaluator exists to validate the paper's soundness theorem
// (Corollary 1): a program accepted by the qualified type system either
// reduces to a value or diverges — it never gets stuck, and in particular
// its qualifier assertions never fail. The test suite exercises this as a
// property over randomly generated programs.
package eval

import (
	"fmt"

	"repro/internal/lambda"
	"repro/internal/qual"
)

// Term is a runtime term: the source language extended with store
// locations and qualified values.
type Term interface{ isTerm() }

// TVar is a runtime variable occurrence.
type TVar struct{ Name string }

// TInt is an unqualified integer; it steps to a qualified value.
type TInt struct{ Val int64 }

// TUnit is the unqualified unit value.
type TUnit struct{}

// TLam is an unqualified lambda.
type TLam struct {
	Param string
	Body  Term
}

// TLoc is a store location (the paper's a).
type TLoc struct{ Addr int }

// TQVal is a qualified value l v, the only form values take at runtime.
type TQVal struct {
	L qual.Elem
	V Term // TInt, TUnit, TLam or TLoc
}

// TApp is application.
type TApp struct{ Fn, Arg Term }

// TIf is the conditional.
type TIf struct{ Cond, Then, Else Term }

// TLet is let-binding.
type TLet struct {
	Name       string
	Init, Body Term
}

// TRef allocates a reference.
type TRef struct{ E Term }

// TDeref reads a reference.
type TDeref struct{ E Term }

// TAssign writes a reference.
type TAssign struct{ Lhs, Rhs Term }

// TAnnot is a runtime qualifier annotation for the named qualifier; the
// sign determines whether it raises or lowers the value's qualifier.
type TAnnot struct {
	Bit  qual.Elem // the qualifier's component mask
	Sign qual.Sign
	E    Term
}

// TAssert is a runtime qualifier assertion with bound L: the value's
// qualifier must satisfy l ⊑ L or evaluation is stuck.
type TAssert struct {
	Bound qual.Elem
	Desc  string
	E     Term
}

// TBin is arithmetic.
type TBin struct {
	Op   lambda.BinOp
	L, R Term
}

func (*TVar) isTerm()    {}
func (*TInt) isTerm()    {}
func (*TUnit) isTerm()   {}
func (*TLam) isTerm()    {}
func (*TLoc) isTerm()    {}
func (*TQVal) isTerm()   {}
func (*TApp) isTerm()    {}
func (*TIf) isTerm()     {}
func (*TLet) isTerm()    {}
func (*TRef) isTerm()    {}
func (*TDeref) isTerm()  {}
func (*TAssign) isTerm() {}
func (*TAnnot) isTerm()  {}
func (*TAssert) isTerm() {}
func (*TBin) isTerm()    {}

// LitQual chooses the runtime qualifier for integer literals, mirroring
// the static rule so that dynamic and static semantics agree.
type LitQual func(set *qual.Set, n int64) qual.Elem

// CompileError reports a name that cannot be resolved during translation
// to runtime terms.
type CompileError struct {
	Pos lambda.Pos
	Msg string
}

func (e *CompileError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Compile translates a source expression to a runtime term, resolving
// qualifier names against the set. lit may be nil (all literals at ⊥, the
// paper's convention of inserting ⊥ annotations).
func Compile(set *qual.Set, lit LitQual, e lambda.Expr) (Term, error) {
	switch e := e.(type) {
	case *lambda.Var:
		return &TVar{Name: e.Name}, nil
	case *lambda.IntLit:
		q := set.Bottom()
		if lit != nil {
			q = lit(set, e.Val)
		}
		return &TQVal{L: q, V: &TInt{Val: e.Val}}, nil
	case *lambda.UnitLit:
		return &TQVal{L: set.Bottom(), V: &TUnit{}}, nil
	case *lambda.Lam:
		body, err := Compile(set, lit, e.Body)
		if err != nil {
			return nil, err
		}
		return &TQVal{L: set.Bottom(), V: &TLam{Param: e.Param, Body: body}}, nil
	case *lambda.App:
		fn, err := Compile(set, lit, e.Fn)
		if err != nil {
			return nil, err
		}
		arg, err := Compile(set, lit, e.Arg)
		if err != nil {
			return nil, err
		}
		return &TApp{Fn: fn, Arg: arg}, nil
	case *lambda.If:
		c, err := Compile(set, lit, e.Cond)
		if err != nil {
			return nil, err
		}
		th, err := Compile(set, lit, e.Then)
		if err != nil {
			return nil, err
		}
		el, err := Compile(set, lit, e.Else)
		if err != nil {
			return nil, err
		}
		return &TIf{Cond: c, Then: th, Else: el}, nil
	case *lambda.Let:
		init, err := Compile(set, lit, e.Init)
		if err != nil {
			return nil, err
		}
		body, err := Compile(set, lit, e.Body)
		if err != nil {
			return nil, err
		}
		return &TLet{Name: e.Name, Init: init, Body: body}, nil
	case *lambda.LetRec:
		// Landin's knot: letrec f = v in e ni runs as
		//   let $rec$f = ref (fn z => z) in $rec$f := v[f↦!$rec$f]; e[f↦!$rec$f] ni
		// The helper name cannot be lexed as an identifier, so generated
		// programs cannot capture it, and v is a value so the dummy is
		// never invoked.
		r := "$rec$" + e.Name
		use := &lambda.Deref{E: &lambda.Var{Name: r, P: e.P}, P: e.P}
		desugared := &lambda.Let{
			Name: r,
			Init: &lambda.Ref{E: &lambda.Lam{Param: "z", Body: &lambda.Var{Name: "z", P: e.P}, P: e.P}, P: e.P},
			Body: &lambda.Let{
				Name: "_",
				Init: &lambda.Assign{Lhs: &lambda.Var{Name: r, P: e.P}, Rhs: lambda.Subst(e.Name, use, e.Init), P: e.P},
				Body: lambda.Subst(e.Name, use, e.Body),
				P:    e.P,
			},
			P: e.P,
		}
		return Compile(set, lit, desugared)

	case *lambda.Ref:
		inner, err := Compile(set, lit, e.E)
		if err != nil {
			return nil, err
		}
		return &TRef{E: inner}, nil
	case *lambda.Deref:
		inner, err := Compile(set, lit, e.E)
		if err != nil {
			return nil, err
		}
		return &TDeref{E: inner}, nil
	case *lambda.Assign:
		lhs, err := Compile(set, lit, e.Lhs)
		if err != nil {
			return nil, err
		}
		rhs, err := Compile(set, lit, e.Rhs)
		if err != nil {
			return nil, err
		}
		return &TAssign{Lhs: lhs, Rhs: rhs}, nil
	case *lambda.Annot:
		inner, err := Compile(set, lit, e.E)
		if err != nil {
			return nil, err
		}
		idx, ok := set.Lookup(e.Qual)
		if !ok {
			return nil, &CompileError{Pos: e.P, Msg: fmt.Sprintf("unknown qualifier %q", e.Qual)}
		}
		bit, err := set.Mask(e.Qual)
		if err != nil {
			return nil, &CompileError{Pos: e.P, Msg: err.Error()}
		}
		return &TAnnot{Bit: bit, Sign: set.Qualifier(idx).Sign, E: inner}, nil
	case *lambda.Assert:
		inner, err := Compile(set, lit, e.E)
		if err != nil {
			return nil, err
		}
		bound := set.Top()
		desc := ""
		for _, q := range e.Forbid {
			b, err := set.Without(bound, q)
			if err != nil {
				return nil, &CompileError{Pos: e.P, Msg: err.Error()}
			}
			bound = b
			desc += " ^" + q
		}
		for _, q := range e.Require {
			b, err := set.With(bound, q)
			if err != nil {
				return nil, &CompileError{Pos: e.P, Msg: err.Error()}
			}
			bound = b
			desc += " " + q
		}
		return &TAssert{Bound: bound, Desc: desc, E: inner}, nil
	case *lambda.Bin:
		l, err := Compile(set, lit, e.L)
		if err != nil {
			return nil, err
		}
		r, err := Compile(set, lit, e.R)
		if err != nil {
			return nil, err
		}
		return &TBin{Op: e.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("eval: unknown expression %T", e)
	}
}

// IsValue reports whether t is a (qualified) value.
func IsValue(t Term) bool {
	_, ok := t.(*TQVal)
	return ok
}

// Store is the mutable heap: locations to qualified values.
type Store struct {
	cells map[int]*TQVal
	next  int
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{cells: make(map[int]*TQVal)} }

// Alloc places v at a fresh location.
func (s *Store) Alloc(v *TQVal) int {
	a := s.next
	s.next++
	s.cells[a] = v
	return a
}

// Get reads a location.
func (s *Store) Get(a int) (*TQVal, bool) {
	v, ok := s.cells[a]
	return v, ok
}

// Set overwrites a location that must already exist.
func (s *Store) Set(a int, v *TQVal) bool {
	if _, ok := s.cells[a]; !ok {
		return false
	}
	s.cells[a] = v
	return true
}

// Len reports the number of allocated cells.
func (s *Store) Len() int { return len(s.cells) }

// StuckError reports that no reduction rule applies: a type-safety
// violation, which soundness says cannot happen for accepted programs.
type StuckError struct {
	Msg  string
	Term Term
}

func (e *StuckError) Error() string { return "stuck: " + e.Msg }

// AssertFailure is the specific stuck state of a failed qualifier
// assertion: the rule (l2 v)|l1 → l2 v requires l2 ⊑ l1.
type AssertFailure struct {
	Have  qual.Elem
	Bound qual.Elem
	Desc  string
}

func (e *AssertFailure) Error() string {
	return fmt.Sprintf("stuck: qualifier assertion%s failed", e.Desc)
}

// DivByZero is an arithmetic fault, distinct from a type-safety stuck
// state. The nonzero qualifier discipline rules it out only insofar as
// @nonzero annotations are honest (the paper's annotations are trusted
// assumptions).
type DivByZero struct{}

func (e *DivByZero) Error() string { return "division by zero" }

// subst replaces free occurrences of name by value v in t. Substituted
// values are closed (whole programs are closed and evaluation is
// call-by-value), so no capture can occur.
func subst(name string, v Term, t Term) Term {
	switch t := t.(type) {
	case *TVar:
		if t.Name == name {
			return v
		}
		return t
	case *TInt, *TUnit, *TLoc:
		return t
	case *TLam:
		if t.Param == name {
			return t
		}
		return &TLam{Param: t.Param, Body: subst(name, v, t.Body)}
	case *TQVal:
		return &TQVal{L: t.L, V: subst(name, v, t.V)}
	case *TApp:
		return &TApp{Fn: subst(name, v, t.Fn), Arg: subst(name, v, t.Arg)}
	case *TIf:
		return &TIf{Cond: subst(name, v, t.Cond), Then: subst(name, v, t.Then), Else: subst(name, v, t.Else)}
	case *TLet:
		init := subst(name, v, t.Init)
		body := t.Body
		if t.Name != name {
			body = subst(name, v, body)
		}
		return &TLet{Name: t.Name, Init: init, Body: body}
	case *TRef:
		return &TRef{E: subst(name, v, t.E)}
	case *TDeref:
		return &TDeref{E: subst(name, v, t.E)}
	case *TAssign:
		return &TAssign{Lhs: subst(name, v, t.Lhs), Rhs: subst(name, v, t.Rhs)}
	case *TAnnot:
		return &TAnnot{Bit: t.Bit, Sign: t.Sign, E: subst(name, v, t.E)}
	case *TAssert:
		return &TAssert{Bound: t.Bound, Desc: t.Desc, E: subst(name, v, t.E)}
	case *TBin:
		return &TBin{Op: t.Op, L: subst(name, v, t.L), R: subst(name, v, t.R)}
	default:
		panic(fmt.Sprintf("eval: unknown term %T", t))
	}
}

// Step performs one reduction step (Figure 5). It returns the reduced
// term, or an error when the configuration is stuck.
func (s *Store) Step(t Term) (Term, error) {
	switch t := t.(type) {
	case *TQVal:
		return nil, &StuckError{Msg: "value cannot step", Term: t}

	case *TVar:
		return nil, &StuckError{Msg: "unbound variable " + t.Name, Term: t}

	case *TInt, *TUnit, *TLam, *TLoc:
		// Unqualified value forms receive the ⊥ annotation, implementing
		// the paper's "programs are rewritten by inserting ⊥ annotations".
		return &TQVal{L: 0, V: t}, nil

	case *TApp:
		if !IsValue(t.Fn) {
			fn, err := s.Step(t.Fn)
			if err != nil {
				return nil, err
			}
			return &TApp{Fn: fn, Arg: t.Arg}, nil
		}
		if !IsValue(t.Arg) {
			arg, err := s.Step(t.Arg)
			if err != nil {
				return nil, err
			}
			return &TApp{Fn: t.Fn, Arg: arg}, nil
		}
		qv := t.Fn.(*TQVal)
		lam, ok := qv.V.(*TLam)
		if !ok {
			return nil, &StuckError{Msg: "application of a non-function", Term: t}
		}
		return subst(lam.Param, t.Arg, lam.Body), nil

	case *TIf:
		if !IsValue(t.Cond) {
			c, err := s.Step(t.Cond)
			if err != nil {
				return nil, err
			}
			return &TIf{Cond: c, Then: t.Then, Else: t.Else}, nil
		}
		qv := t.Cond.(*TQVal)
		n, ok := qv.V.(*TInt)
		if !ok {
			return nil, &StuckError{Msg: "if guard is not an integer", Term: t}
		}
		if n.Val != 0 {
			return t.Then, nil
		}
		return t.Else, nil

	case *TLet:
		if !IsValue(t.Init) {
			init, err := s.Step(t.Init)
			if err != nil {
				return nil, err
			}
			return &TLet{Name: t.Name, Init: init, Body: t.Body}, nil
		}
		return subst(t.Name, t.Init, t.Body), nil

	case *TRef:
		if !IsValue(t.E) {
			e, err := s.Step(t.E)
			if err != nil {
				return nil, err
			}
			return &TRef{E: e}, nil
		}
		a := s.Alloc(t.E.(*TQVal))
		return &TQVal{L: 0, V: &TLoc{Addr: a}}, nil

	case *TDeref:
		if !IsValue(t.E) {
			e, err := s.Step(t.E)
			if err != nil {
				return nil, err
			}
			return &TDeref{E: e}, nil
		}
		qv := t.E.(*TQVal)
		loc, ok := qv.V.(*TLoc)
		if !ok {
			return nil, &StuckError{Msg: "dereference of a non-reference", Term: t}
		}
		v, ok := s.Get(loc.Addr)
		if !ok {
			return nil, &StuckError{Msg: "dangling location", Term: t}
		}
		return v, nil

	case *TAssign:
		if !IsValue(t.Lhs) {
			l, err := s.Step(t.Lhs)
			if err != nil {
				return nil, err
			}
			return &TAssign{Lhs: l, Rhs: t.Rhs}, nil
		}
		if !IsValue(t.Rhs) {
			r, err := s.Step(t.Rhs)
			if err != nil {
				return nil, err
			}
			return &TAssign{Lhs: t.Lhs, Rhs: r}, nil
		}
		qv := t.Lhs.(*TQVal)
		loc, ok := qv.V.(*TLoc)
		if !ok {
			return nil, &StuckError{Msg: "assignment to a non-reference", Term: t}
		}
		if !s.Set(loc.Addr, t.Rhs.(*TQVal)) {
			return nil, &StuckError{Msg: "assignment to a dangling location", Term: t}
		}
		return &TQVal{L: 0, V: &TUnit{}}, nil

	case *TAnnot:
		if !IsValue(t.E) {
			e, err := s.Step(t.E)
			if err != nil {
				return nil, err
			}
			return &TAnnot{Bit: t.Bit, Sign: t.Sign, E: e}, nil
		}
		qv := t.E.(*TQVal)
		// The rule l1 (l2 v) → l v strengthens the qualifier: positive
		// qualifiers are added (join), negative qualifiers are assumed
		// present (their normalized "absent" bit is cleared).
		var l qual.Elem
		if t.Sign == qual.Positive {
			l = qv.L | t.Bit
		} else {
			l = qv.L &^ t.Bit
		}
		return &TQVal{L: l, V: qv.V}, nil

	case *TAssert:
		if !IsValue(t.E) {
			e, err := s.Step(t.E)
			if err != nil {
				return nil, err
			}
			return &TAssert{Bound: t.Bound, Desc: t.Desc, E: e}, nil
		}
		qv := t.E.(*TQVal)
		if !qual.Leq(qv.L, t.Bound) {
			return nil, &AssertFailure{Have: qv.L, Bound: t.Bound, Desc: t.Desc}
		}
		return qv, nil

	case *TBin:
		if !IsValue(t.L) {
			l, err := s.Step(t.L)
			if err != nil {
				return nil, err
			}
			return &TBin{Op: t.Op, L: l, R: t.R}, nil
		}
		if !IsValue(t.R) {
			r, err := s.Step(t.R)
			if err != nil {
				return nil, err
			}
			return &TBin{Op: t.Op, L: t.L, R: r}, nil
		}
		lv, lok := t.L.(*TQVal).V.(*TInt)
		rv, rok := t.R.(*TQVal).V.(*TInt)
		if !lok || !rok {
			return nil, &StuckError{Msg: "arithmetic on non-integers", Term: t}
		}
		var out int64
		switch t.Op {
		case lambda.OpAdd:
			out = lv.Val + rv.Val
		case lambda.OpSub:
			out = lv.Val - rv.Val
		case lambda.OpMul:
			out = lv.Val * rv.Val
		case lambda.OpDiv:
			if rv.Val == 0 {
				return nil, &DivByZero{}
			}
			out = lv.Val / rv.Val
		case lambda.OpEq:
			if lv.Val == rv.Val {
				out = 1
			}
		case lambda.OpLt:
			if lv.Val < rv.Val {
				out = 1
			}
		default:
			return nil, &StuckError{Msg: "unknown operator", Term: t}
		}
		return &TQVal{L: 0, V: &TInt{Val: out}}, nil

	default:
		return nil, &StuckError{Msg: fmt.Sprintf("unknown term %T", t), Term: t}
	}
}

// Fuel bounds the number of reduction steps in Eval.
const DefaultFuel = 100000

// Diverged reports that evaluation did not finish within the fuel bound;
// soundness permits divergence, so tests treat it as success.
type Diverged struct{ Steps int }

func (e *Diverged) Error() string { return fmt.Sprintf("no value after %d steps", e.Steps) }

// Eval reduces t to a value, running at most fuel steps (DefaultFuel if
// fuel <= 0).
func Eval(s *Store, t Term, fuel int) (*TQVal, error) {
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	for i := 0; i < fuel; i++ {
		if v, ok := t.(*TQVal); ok {
			return v, nil
		}
		next, err := s.Step(t)
		if err != nil {
			return nil, err
		}
		t = next
	}
	return nil, &Diverged{Steps: fuel}
}

// Run compiles and evaluates a source expression under the qualifier set.
func Run(set *qual.Set, lit LitQual, e lambda.Expr, fuel int) (*TQVal, error) {
	t, err := Compile(set, lit, e)
	if err != nil {
		return nil, err
	}
	return Eval(NewStore(), t, fuel)
}

// Format renders a runtime value for display.
func Format(set *qual.Set, v *TQVal) string {
	prefix := set.String(v.L)
	if prefix != "" {
		prefix += " "
	}
	switch inner := v.V.(type) {
	case *TInt:
		return fmt.Sprintf("%s%d", prefix, inner.Val)
	case *TUnit:
		return prefix + "()"
	case *TLam:
		return prefix + "<fn " + inner.Param + ">"
	case *TLoc:
		return fmt.Sprintf("%sloc(%d)", prefix, inner.Addr)
	default:
		return prefix + "<?>"
	}
}
