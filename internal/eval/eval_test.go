package eval

import (
	"strings"
	"testing"

	"repro/internal/infer"
	"repro/internal/lambda"
	"repro/internal/progen"
	"repro/internal/qual"
)

func constSet(t testing.TB) *qual.Set {
	t.Helper()
	return qual.MustSet(qual.Qualifier{Name: "const", Sign: qual.Positive})
}

func nzSet(t testing.TB) *qual.Set {
	t.Helper()
	return qual.MustSet(qual.Qualifier{Name: "nonzero", Sign: qual.Negative})
}

func run(t *testing.T, set *qual.Set, lit LitQual, src string) (*TQVal, error) {
	t.Helper()
	e, err := lambda.Parse("t", src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Run(set, lit, e, 0)
}

func mustInt(t *testing.T, v *TQVal, want int64) {
	t.Helper()
	n, ok := v.V.(*TInt)
	if !ok {
		t.Fatalf("value %T, want int", v.V)
	}
	if n.Val != want {
		t.Errorf("value = %d, want %d", n.Val, want)
	}
}

func TestEvalBasics(t *testing.T) {
	set := constSet(t)
	cases := []struct {
		src  string
		want int64
	}{
		{"42", 42},
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"10 / 3", 3},
		{"7 - 2", 5},
		{"1 == 1", 1},
		{"1 == 2", 0},
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"if 1 then 10 else 20 fi", 10},
		{"if 0 then 10 else 20 fi", 20},
		{"let x = 5 in x + 1 ni", 6},
		{"(fn x => x + 1) 4", 5},
		{"!(ref 9)", 9},
		{"let r = ref 1 in r := 7; !r ni", 7},
		{"let r = ref 1 in let s = r in s := 3; !r ni ni", 3}, // aliasing
		{"@const 5", 5},
		{"5 |[^const]", 5},
		{"let f = fn x => fn y => x + y in f 3 4 ni", 7}, // currying... f 3 returns closure
	}
	for _, c := range cases {
		v, err := run(t, set, nil, c.src)
		if err != nil {
			t.Errorf("eval %q: %v", c.src, err)
			continue
		}
		mustInt(t, v, c.want)
	}
}

func TestEvalQualifierSemantics(t *testing.T) {
	set := constSet(t)
	// Annotation attaches the qualifier at runtime.
	v, err := run(t, set, nil, "@const 5")
	if err != nil {
		t.Fatal(err)
	}
	if !set.Has(v.L, "const") {
		t.Error("runtime value lacks const after annotation")
	}
	// Plain values are at ⊥.
	v, err = run(t, set, nil, "5")
	if err != nil {
		t.Fatal(err)
	}
	if set.Has(v.L, "const") {
		t.Error("plain literal carries const")
	}
	// Assertion failure: the dynamic check (l2 v)|l1 requires l2 ⊑ l1.
	_, err = run(t, set, nil, "(@const 5) |[^const]")
	if err == nil {
		t.Fatal("assertion on const value passed")
	}
	af, ok := err.(*AssertFailure)
	if !ok {
		t.Fatalf("error %T, want *AssertFailure", err)
	}
	if !set.Has(af.Have, "const") {
		t.Error("failure does not carry the offending qualifier")
	}
	if !strings.Contains(af.Error(), "assertion") {
		t.Errorf("AssertFailure message: %v", af)
	}
}

func TestEvalNegativeQualifier(t *testing.T) {
	set := nzSet(t)
	lit := func(s *qual.Set, n int64) qual.Elem {
		if n == 0 {
			e, _ := s.Without(s.Bottom(), "nonzero")
			return e
		}
		return s.Bottom()
	}
	// Nonzero literal passes the assertion.
	if _, err := run(t, set, lit, "5 |[nonzero]"); err != nil {
		t.Errorf("5 |[nonzero]: %v", err)
	}
	// Zero fails it.
	if _, err := run(t, set, lit, "0 |[nonzero]"); err == nil {
		t.Error("0 |[nonzero] passed")
	}
	// Annotation overrides (trusted assumption).
	if _, err := run(t, set, lit, "(@nonzero (1 - 1)) |[nonzero]"); err != nil {
		t.Errorf("annotated value failed assertion: %v", err)
	}
	// Arithmetic results are ⊥-annotated; with lit they lose nonzero only
	// via the literal rule, so 1-1 at runtime is ⊥ = nonzero-present...
	// the static analysis is what rejects the division; the dynamic fault
	// is DivByZero.
	_, err := run(t, set, lit, "1 / (1 - 1)")
	if _, ok := err.(*DivByZero); !ok {
		t.Errorf("division by zero: got %v", err)
	}
}

func TestEvalStuckStates(t *testing.T) {
	set := constSet(t)
	cases := []string{
		"5 6",
		"!5",
		"5 := 1",
		"if () then 1 else 2 fi",
		"1 + ()",
		"x",
	}
	for _, src := range cases {
		_, err := run(t, set, nil, src)
		if err == nil {
			t.Errorf("eval %q: no error", src)
			continue
		}
		if _, ok := err.(*StuckError); !ok {
			t.Errorf("eval %q: error %T (%v), want *StuckError", src, err, err)
		}
	}
}

func TestEvalDivergence(t *testing.T) {
	set := constSet(t)
	// The classic Ω via self-application through a ref (Landin's knot).
	src := `
		let r = ref (fn x => x) in
		let f = fn x => (!r) x in
		r := f;
		f 1
		ni ni`
	_, err := run(t, set, nil, src)
	if _, ok := err.(*Diverged); !ok {
		t.Errorf("got %v, want *Diverged", err)
	}
}

func TestCompileErrors(t *testing.T) {
	set := constSet(t)
	for _, src := range []string{"@bogus 5", "5 |[^bogus]", "5 |[bogus]"} {
		e := lambda.MustParse(src)
		if _, err := Compile(set, nil, e); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestStoreOps(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Error("new store not empty")
	}
	a := s.Alloc(&TQVal{V: &TInt{Val: 1}})
	if s.Len() != 1 {
		t.Error("alloc did not grow store")
	}
	if v, ok := s.Get(a); !ok || v.V.(*TInt).Val != 1 {
		t.Error("get after alloc failed")
	}
	if !s.Set(a, &TQVal{V: &TInt{Val: 2}}) {
		t.Error("set of existing cell failed")
	}
	if v, _ := s.Get(a); v.V.(*TInt).Val != 2 {
		t.Error("set did not update")
	}
	if s.Set(99, &TQVal{V: &TInt{}}) {
		t.Error("set of missing cell succeeded")
	}
	if _, ok := s.Get(42); ok {
		t.Error("get of missing cell succeeded")
	}
}

func TestFormatValues(t *testing.T) {
	set := constSet(t)
	cases := []struct {
		v    *TQVal
		want string
	}{
		{&TQVal{L: 0, V: &TInt{Val: 5}}, "5"},
		{&TQVal{L: set.MustElem("const"), V: &TInt{Val: 5}}, "const 5"},
		{&TQVal{L: 0, V: &TUnit{}}, "()"},
		{&TQVal{L: 0, V: &TLam{Param: "x"}}, "<fn x>"},
		{&TQVal{L: 0, V: &TLoc{Addr: 3}}, "loc(3)"},
	}
	for _, c := range cases {
		if got := Format(set, c.v); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

// TestSoundnessConst is the property behind Theorem 1/Corollary 1, tested
// over randomly generated programs with the const qualifier: every
// program the qualified type system accepts either evaluates to a value,
// diverges, or faults arithmetically — it never gets stuck, and its
// assertions never fail.
func TestSoundnessConst(t *testing.T) {
	set := constSet(t)
	rules := infer.ConstRules(set)
	g := progen.New(7, progen.DefaultConfig())
	accepted, rejected := 0, 0
	for i := 0; i < 3000; i++ {
		prog := g.Program()
		c := infer.New(set, rules)
		res, err := c.Check(nil, prog)
		if err != nil {
			t.Fatalf("iteration %d: structural error on generated program %s: %v", i, lambda.Print(prog), err)
		}
		if len(res.Conflicts) > 0 {
			rejected++
			continue
		}
		accepted++
		_, err = Run(set, nil, prog, 3000)
		switch err.(type) {
		case nil, *Diverged, *DivByZero:
			// Sound outcomes.
		default:
			t.Fatalf("iteration %d: accepted program got stuck (%v):\n%s", i, err, lambda.Print(prog))
		}
	}
	if accepted < 100 {
		t.Errorf("only %d accepted programs out of %d; generator too conservative", accepted, accepted+rejected)
	}
	t.Logf("soundness/const: %d accepted, %d rejected", accepted, rejected)
}

// TestSoundnessNonzero exercises the negative-qualifier side: accepted
// programs never fail a nonzero assertion at runtime.
func TestSoundnessNonzero(t *testing.T) {
	set := nzSet(t)
	rules := infer.NonzeroRules(set)
	lit := func(s *qual.Set, n int64) qual.Elem { return rules.LitQual(s, n) }
	cfg := progen.Config{
		MaxDepth:      6,
		NegAnnotate:   []string{"nonzero"},
		AssertPresent: []string{"nonzero"},
	}
	g := progen.New(99, cfg)
	accepted := 0
	for i := 0; i < 3000; i++ {
		prog := g.Program()
		c := infer.New(set, rules)
		res, err := c.Check(nil, prog)
		if err != nil {
			t.Fatalf("iteration %d: structural error: %v", i, err)
		}
		if len(res.Conflicts) > 0 {
			continue
		}
		accepted++
		_, err = Run(set, lit, prog, 3000)
		switch err.(type) {
		case nil, *Diverged, *DivByZero:
		default:
			t.Fatalf("iteration %d: accepted program got stuck (%v):\n%s", i, err, lambda.Print(prog))
		}
	}
	if accepted < 100 {
		t.Errorf("only %d accepted programs; generator too conservative", accepted)
	}
}

// TestSubjectReductionTypes: single-step reduction preserves the
// evaluated result across the static/dynamic boundary — the value of an
// accepted program carries only qualifiers the static type allows on its
// top level (the dynamic counterpart of subject reduction).
func TestSubjectReductionQualifiers(t *testing.T) {
	set := constSet(t)
	rules := infer.ConstRules(set)
	g := progen.New(1234, progen.DefaultConfig())
	checked := 0
	for i := 0; i < 2000; i++ {
		prog := g.Program()
		c := infer.New(set, rules)
		res, err := c.Check(nil, prog)
		if err != nil || len(res.Conflicts) > 0 {
			continue
		}
		v, err := Run(set, nil, prog, 3000)
		if err != nil {
			continue
		}
		checked++
		// The runtime qualifier must be within the static upper bound of
		// the program's top-level qualifier.
		var bound qual.Elem
		if res.Type.Q.IsVar() {
			bound = res.Sys.Upper(res.Type.Q.Var())
		} else {
			// Constant qualifiers are exact only as lower bounds; the
			// runtime value may not exceed any upper bound implied by
			// subsumption, which for a constant is ⊤.
			bound = set.Top()
		}
		if !qual.Leq(v.L, bound) {
			t.Fatalf("iteration %d: runtime qualifier %s exceeds static bound %s:\n%s",
				i, set.Describe(v.L), set.Describe(bound), lambda.Print(prog))
		}
	}
	if checked < 50 {
		t.Errorf("only %d programs checked", checked)
	}
}

func TestLetRecEvaluation(t *testing.T) {
	set := constSet(t)
	cases := []struct {
		src  string
		want int64
	}{
		{"letrec fact = fn n => if n then n * fact (n - 1) else 1 fi in fact 5 ni", 120},
		{"letrec fib = fn n => if n < 2 then n else fib (n - 1) + fib (n - 2) fi in fib 10 ni", 55},
		{"letrec sum = fn n => if n then n + sum (n - 1) else 0 fi in sum 100 ni", 5050},
		// letrec body sees the binding; shadowing works.
		{"letrec f = fn n => n + 1 in let f = fn n => n * 2 in f 10 ni ni", 20},
		// Nested letrec.
		{`letrec outer = fn n =>
			letrec inner = fn k => if k then k + inner (k - 1) else 0 fi in
			if n then inner n + outer (n - 1) else 0 fi
			ni in
		outer 3 ni`, 10},
	}
	for _, c := range cases {
		v, err := run(t, set, nil, c.src)
		if err != nil {
			t.Errorf("eval %q: %v", c.src, err)
			continue
		}
		mustInt(t, v, c.want)
	}
}

func TestLetRecDivergence(t *testing.T) {
	set := constSet(t)
	_, err := run(t, set, nil, "letrec loop = fn n => loop n in loop 1 ni")
	if _, ok := err.(*Diverged); !ok {
		t.Errorf("got %v, want *Diverged", err)
	}
}

// TestLetRecSoundness: typed letrec programs with const qualifiers never
// get stuck.
func TestLetRecSoundness(t *testing.T) {
	set := constSet(t)
	rules := infer.ConstRules(set)
	programs := []string{
		`letrec f = fn r => if !r then f r else !r fi in f (@const ref 0) ni`,
		`letrec g = fn n => if n then g (n - 1) else @const 7 fi in (g 3) |[^const] ni`,
	}
	for _, src := range programs {
		prog := lambda.MustParse(src)
		c := infer.New(set, rules)
		res, err := c.Check(nil, prog)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		accepted := len(res.Conflicts) == 0
		_, rerr := Run(set, nil, prog, 50000)
		switch rerr.(type) {
		case nil, *Diverged, *DivByZero:
			// fine regardless
		default:
			if accepted {
				t.Errorf("accepted %q got stuck: %v", src, rerr)
			}
		}
	}
}

func TestErrorStrings(t *testing.T) {
	if got := (&Diverged{Steps: 7}).Error(); !strings.Contains(got, "7") {
		t.Errorf("Diverged: %q", got)
	}
	if got := (&StuckError{Msg: "boom"}).Error(); !strings.Contains(got, "boom") {
		t.Errorf("StuckError: %q", got)
	}
	if got := (&DivByZero{}).Error(); !strings.Contains(got, "zero") {
		t.Errorf("DivByZero: %q", got)
	}
	ce := &CompileError{Pos: lambda.Pos{File: "f", Line: 1, Col: 2}, Msg: "bad"}
	if got := ce.Error(); !strings.Contains(got, "f:1:2") || !strings.Contains(got, "bad") {
		t.Errorf("CompileError: %q", got)
	}
}

func TestStepOnValuePanicsGracefully(t *testing.T) {
	set := constSet(t)
	s := NewStore()
	v := &TQVal{V: &TInt{Val: 1}}
	if _, err := s.Step(v); err == nil {
		t.Error("stepping a value succeeded")
	}
	_ = set
}

func TestDanglingLocation(t *testing.T) {
	s := NewStore()
	// A location never allocated: deref and assign are stuck.
	loc := &TQVal{V: &TLoc{Addr: 99}}
	if _, err := s.Step(&TDeref{E: loc}); err == nil {
		t.Error("deref of dangling location succeeded")
	}
	if _, err := s.Step(&TAssign{Lhs: loc, Rhs: &TQVal{V: &TInt{}}}); err == nil {
		t.Error("assign to dangling location succeeded")
	}
}
