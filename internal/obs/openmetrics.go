package obs

// OpenMetrics 1.0 text exposition — the negotiated upgrade from the
// Prometheus 0.0.4 format that WritePrometheus emits. The two renderers
// walk the same registry snapshot and differ only where the specs
// differ:
//
//   - counter family names drop the `_total` suffix in HELP/TYPE lines
//     (the sample line keeps it — OpenMetrics treats `_total` as the
//     counter's value suffix, not part of the family name)
//   - histogram bucket lines carry exemplars: ` # {trace_id="..."} v`,
//     linking the bucket to a retained flight-recorder trace; exemplar
//     timestamps are deliberately omitted so renders stay deterministic
//     for a fixed metric state
//   - the exposition ends with `# EOF`
//
// ContentTypeOpenMetrics is what a scraper that sent
// `Accept: application/openmetrics-text` gets back.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Content types for the two expositions /metrics can negotiate.
const (
	ContentTypePrometheus  = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// WriteOpenMetrics renders every registered metric in OpenMetrics 1.0
// text format, with exemplars on histogram buckets. Family and series
// order match WritePrometheus, so the two expositions are line-for-line
// comparable.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	fams := r.snapshot()

	var b strings.Builder
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		famName := f.name
		if f.kind == kindCounter {
			famName = strings.TrimSuffix(famName, "_total")
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", famName, f.help, famName, typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.gauge.Value())
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.fn()))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					writeOMBucket(&b, s.name, mergeLabels(s.labels, "le", formatFloat(bound)), cum, h.exemplars[i].Load())
				}
				cum += h.buckets[len(h.bounds)].Load()
				writeOMBucket(&b, s.name, mergeLabels(s.labels, "le", "+Inf"), cum, h.exemplars[len(h.bounds)].Load())
				fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", s.name, s.labels, h.Count())
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeOMBucket(b *strings.Builder, name, labels string, cum uint64, ex *Exemplar) {
	fmt.Fprintf(b, "%s_bucket%s %d", name, labels, cum)
	if ex != nil {
		fmt.Fprintf(b, ` # {trace_id="%s"} %s`, escapeLabel(ex.TraceID), formatFloat(ex.Value))
	}
	b.WriteByte('\n')
}
