// Package obs is the observability layer of the analysis pipeline: a
// stdlib-only hierarchical span tracer exporting deterministic Chrome
// trace-event JSON, and a typed metrics registry rendering Prometheus
// text format. Both are threaded through the pipeline via
// context.Context, cost nothing when disabled (a nil Tracer no-ops on
// every method), and depend on nothing outside the standard library, so
// every layer — driver, constinfer, constraint, cache, server — can
// import them without cycles.
//
// Determinism. The pipeline guarantees byte-identical analysis output
// for every worker-pool size; traces inherit the same property by
// construction. Spans are only ever started and ended from the
// deterministic sequential spine of the pipeline (stage boundaries, the
// SCC-ordered merge loop, the mask-class loop of the solver) — never
// from pool workers, whose scheduling is not deterministic. With an
// injected fake clock the entire clock-call sequence is therefore
// identical for every -jobs value, and the exported trace is
// byte-identical too (see the driver's golden test). This mirrors how
// constraint fragments themselves are made deterministic: the work may
// be parallel, the observation points are not.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Clock supplies timestamps to a Tracer. The zero tracer uses the wall
// clock; tests inject a fake monotonic clock to make traces
// reproducible.
type Clock interface {
	Now() time.Time
}

// WallClock is the real time.Now clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// FakeClock is a deterministic monotonic clock: every Now call advances
// it by a fixed step. Safe for concurrent use (though deterministic
// traces additionally require a deterministic call sequence; see the
// package comment).
type FakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewFakeClock starts a fake clock at start, advancing by step per Now
// call.
func NewFakeClock(start time.Time, step time.Duration) *FakeClock {
	return &FakeClock{t: start, step: step}
}

// Now returns the current fake time and advances the clock by one step.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.t
	c.t = c.t.Add(c.step)
	return t
}

// Attr is one span attribute, rendered into the Chrome trace event's
// "args" object. Attributes keep their insertion order on export, so a
// deterministic call sequence yields deterministic bytes.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{key, value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{key, value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{key, value} }

// span is one finished (or still-open) trace span.
type span struct {
	name  string
	cat   string
	start time.Time
	end   time.Time
	seq   int // start order, for stable export sorting
	open  bool
	attrs []Attr
}

// Tracer collects hierarchical spans and exports them as Chrome
// trace-event JSON (the chrome://tracing / Perfetto "trace event"
// format, complete events). Create with NewTracer; a nil *Tracer is a
// valid no-op tracer, which is how tracing stays free when disabled.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	epoch time.Time
	spans []*span
	seq   int
}

// NewTracer builds a tracer reading timestamps from clock (nil selects
// the wall clock). The first timestamp read becomes the trace epoch:
// exported timestamps are offsets from it.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock{}
	}
	t := &Tracer{clock: clock}
	t.epoch = clock.Now()
	return t
}

// Span is a handle to an in-flight span. All methods are nil-safe: a
// nil Span (from a nil Tracer) no-ops.
type Span struct {
	t *Tracer
	s *span
}

// Start opens a span. The category groups spans in trace viewers
// ("driver", "constinfer", "solver", "server"). Nil-safe.
func (t *Tracer) Start(cat, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	t.mu.Lock()
	s := &span{name: name, cat: cat, start: now, seq: t.seq, open: true, attrs: attrs}
	t.seq++
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return &Span{t: t, s: s}
}

// End closes the span. Ending a nil or already-ended span is a no-op.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	now := sp.t.clock.Now()
	sp.t.mu.Lock()
	if sp.s.open {
		sp.s.open = false
		sp.s.end = now
	}
	sp.t.mu.Unlock()
}

// SetAttr appends an attribute to the span. Nil-safe.
func (sp *Span) SetAttr(attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	sp.s.attrs = append(sp.s.attrs, attrs...)
	sp.t.mu.Unlock()
}

// WriteJSON exports the trace as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
// Spans still open at export time are flushed with the current clock
// reading as their end. Events are sorted by start time (ties broken by
// start order), timestamps are microseconds from the trace epoch with
// nanosecond precision, and attribute order is insertion order — the
// export is a pure function of the clock-call and span-call sequence.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	now := t.clock.Now()
	t.mu.Lock()
	spans := make([]*span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].start.Equal(spans[j].start) {
			return spans[i].start.Before(spans[j].start)
		}
		return spans[i].seq < spans[j].seq
	})

	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		end := s.end
		if s.open {
			end = now
		}
		ts := float64(s.start.Sub(t.epoch).Nanoseconds()) / 1e3
		dur := float64(end.Sub(s.start).Nanoseconds()) / 1e3
		if dur < 0 {
			dur = 0
		}
		b.WriteString(`{"name":`)
		b.WriteString(quoteJSON(s.name))
		b.WriteString(`,"cat":`)
		b.WriteString(quoteJSON(s.cat))
		b.WriteString(`,"ph":"X","ts":`)
		b.WriteString(formatMicros(ts))
		b.WriteString(`,"dur":`)
		b.WriteString(formatMicros(dur))
		b.WriteString(`,"pid":1,"tid":1`)
		if len(s.attrs) > 0 {
			b.WriteString(`,"args":{`)
			for j, a := range s.attrs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(quoteJSON(a.Key))
				b.WriteByte(':')
				b.WriteString(encodeValue(a.Value))
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString(`],"displayTimeUnit":"ms"}`)
	_, err := io.WriteString(w, b.String())
	return err
}

// formatMicros renders a microsecond quantity with up to nanosecond
// precision and no scientific notation, dropping a trailing ".000".
func formatMicros(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	return strings.TrimSuffix(s, ".000")
}

// encodeValue renders an attribute value as JSON. Only the types the
// Attr constructors produce (string, int, bool) plus a few numeric
// conveniences are supported; anything else is rendered via %v as a
// string, keeping export total.
func encodeValue(v any) string {
	switch v := v.(type) {
	case string:
		return quoteJSON(v)
	case int:
		return strconv.Itoa(v)
	case int32:
		return strconv.FormatInt(int64(v), 10)
	case int64:
		return strconv.FormatInt(v, 10)
	case uint64:
		return strconv.FormatUint(v, 10)
	case bool:
		return strconv.FormatBool(v)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	default:
		return quoteJSON(fmt.Sprintf("%v", v))
	}
}

// quoteJSON escapes a string as a JSON string literal. Only the escapes
// JSON requires are applied; all output is ASCII-safe for the control
// range and passes non-ASCII through verbatim (valid UTF-8 in, valid
// JSON out).
func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
