package obs

// Content negotiation for /metrics. The endpoint can answer in three
// shapes — JSON (the daemon's native snapshot), Prometheus 0.0.4 text,
// or OpenMetrics 1.0 — and the Accept header picks one deterministically:
//
//   - `application/openmetrics-text` selects OpenMetrics
//   - `text/plain` selects Prometheus text
//   - `application/json`, a wildcard (`*/*`), an absent header, or a
//     header that excludes everything (q=0) selects JSON
//
// Wildcards deliberately resolve to JSON rather than "the best" format:
// a browser sends `text/html,...,*/*;q=0.8` and should see the JSON
// snapshot, not a text exposition; scrapers that want text say
// `text/plain` (Prometheus) or `application/openmetrics-text`
// explicitly. Ties on equal q break toward the richer exposition:
// OpenMetrics over Prometheus over JSON.

import (
	"strconv"
	"strings"
)

// Metric format names returned by NegotiateMetricsFormat and accepted
// by the ?format= query parameter.
const (
	FormatJSON        = "json"
	FormatPrometheus  = "prometheus"
	FormatOpenMetrics = "openmetrics"
)

// NegotiateMetricsFormat picks the /metrics response shape for an
// Accept header value. The empty string (absent header) selects JSON.
func NegotiateMetricsFormat(accept string) string {
	if strings.TrimSpace(accept) == "" {
		return FormatJSON
	}
	var qOM, qProm, qJSON float64
	for _, part := range strings.Split(accept, ",") {
		mediaType, q := parseAcceptPart(part)
		switch mediaType {
		case "application/openmetrics-text":
			qOM = max(qOM, q)
		case "text/plain":
			qProm = max(qProm, q)
		case "application/json", "*/*":
			qJSON = max(qJSON, q)
		}
	}
	best := max(qOM, max(qProm, qJSON))
	switch {
	case best <= 0:
		return FormatJSON
	case qOM == best:
		return FormatOpenMetrics
	case qProm == best:
		return FormatPrometheus
	default:
		return FormatJSON
	}
}

// parseAcceptPart splits one Accept entry into its media type and
// quality value (default 1; malformed q parses as 0 — excluded).
func parseAcceptPart(part string) (string, float64) {
	fields := strings.Split(part, ";")
	mediaType := strings.ToLower(strings.TrimSpace(fields[0]))
	q := 1.0
	for _, p := range fields[1:] {
		p = strings.TrimSpace(p)
		if v, ok := strings.CutPrefix(p, "q="); ok {
			parsed, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil || parsed < 0 {
				parsed = 0
			}
			q = parsed
		}
	}
	return mediaType, q
}
