package obs

// Typed metrics with a Prometheus text-format renderer.
//
// The registry is designed for lock-free scrapes: counters and gauges
// are sync/atomic cells, histograms are arrays of atomic bucket
// counters with an atomically-accumulated float sum, and GaugeFunc
// reads a callback at render time for values that already live
// elsewhere (cache occupancy, uptime). Registration takes a lock once,
// at startup; observation and rendering never do.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric label.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{key, value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets is the default histogram bucketing for request and
// stage latencies, in seconds: half-microsecond analyses through
// ten-second batch runs.
var DefLatencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Exemplar links a histogram bucket to a retained trace: the last
// observation that landed in the bucket with a trace id attached. The
// OpenMetrics renderer attaches it to the bucket line so a dashboard
// can jump from a latency bucket straight to /v1/traces/<id>.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram is a fixed-bucket latency histogram with cumulative
// Prometheus semantics. Observations and reads are lock-free.
type Histogram struct {
	bounds    []float64 // upper bounds; the +Inf bucket is implicit
	buckets   []atomic.Uint64
	count     atomic.Uint64
	sumBits   atomic.Uint64 // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar]
}

// Observe records one value (typically seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// attaches it as the bucket's exemplar (last writer wins).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind discriminates renderers.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series: a family name, a rendered label
// set, and the typed cell.
type series struct {
	name   string
	labels string // rendered `{k="v",...}` or ""
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups the series of one metric name, carrying HELP/TYPE.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry holds registered metrics and renders them. Register at
// startup; observe and render freely afterwards.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	s := &series{name: name, labels: renderLabels(labels), kind: kind}
	for _, old := range f.series {
		if old.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
	return s
}

// NewCounter registers a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	s.ctr = &Counter{}
	return s.ctr
}

// NewGauge registers a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	s.gauge = &Gauge{}
	return s.gauge
}

// NewGaugeFunc registers a gauge whose value is read from fn at render
// time — for values maintained elsewhere (cache occupancy, uptime).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// NewHistogram registers a histogram series with the given upper bounds
// (nil selects DefLatencyBuckets). Bounds must be sorted ascending.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	s := r.register(name, help, kindHistogram, labels)
	s.hist = &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	return s.hist
}

// renderLabels renders a label set in sorted-key order, Prometheus
// style, with label values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// mergeLabels splices an extra label into an already-rendered label set
// — used for the `le` label of histogram buckets.
func mergeLabels(rendered, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// snapshot copies the family list under the registration lock so a
// render never races a (startup-time) registration.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, len(r.names))
	for i, n := range r.names {
		f := r.families[n]
		ser := append([]*series(nil), f.series...)
		fams[i] = &family{name: f.name, help: f.help, kind: f.kind, series: ser}
	}
	return fams
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; series within a family are sorted by label set, so the output
// is deterministic. The render itself takes no metric locks.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := r.snapshot()

	var b strings.Builder
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.gauge.Value())
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.fn()))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, mergeLabels(s.labels, "le", formatFloat(bound)), cum)
				}
				cum += h.buckets[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, mergeLabels(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", s.name, s.labels, h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
