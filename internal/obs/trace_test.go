package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// traceFile mirrors the Chrome trace-event JSON shape for decoding in
// tests.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func decodeTrace(t *testing.T, data []byte) traceFile {
	t.Helper()
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return f
}

func TestTracerNestingAndExport(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0), time.Microsecond)
	tr := NewTracer(clock)

	root := tr.Start("driver", "driver.run", String("mode", "monomorphic"))
	child := tr.Start("driver", "driver.parse", Int("files", 2))
	child.End()
	root.SetAttr(Bool("ok", true))
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, buf.Bytes())
	if len(f.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(f.TraceEvents))
	}
	// Sorted by start time: root first.
	if f.TraceEvents[0].Name != "driver.run" || f.TraceEvents[1].Name != "driver.parse" {
		t.Fatalf("event order = %s, %s", f.TraceEvents[0].Name, f.TraceEvents[1].Name)
	}
	root0 := f.TraceEvents[0]
	par := f.TraceEvents[1]
	if root0.Ph != "X" || root0.Cat != "driver" {
		t.Fatalf("root event = %+v", root0)
	}
	// The child must nest inside the parent's [ts, ts+dur] window.
	if par.TS < root0.TS || par.TS+par.Dur > root0.TS+root0.Dur {
		t.Fatalf("child [%v,%v] not nested in root [%v,%v]",
			par.TS, par.TS+par.Dur, root0.TS, root0.TS+root0.Dur)
	}
	if root0.Args["mode"] != "monomorphic" || root0.Args["ok"] != true {
		t.Fatalf("root args = %v", root0.Args)
	}
	if par.Args["files"] != float64(2) {
		t.Fatalf("child args = %v", par.Args)
	}
}

func TestTracerDeterministicWithFakeClock(t *testing.T) {
	run := func() []byte {
		clock := NewFakeClock(time.Unix(100, 0), 3*time.Microsecond)
		tr := NewTracer(clock)
		a := tr.Start("x", "a")
		b := tr.Start("x", "b", Int("n", 7))
		b.End()
		a.End()
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical call sequences produced different trace bytes")
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "a")
	sp.SetAttr(Int("n", 1))
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, buf.Bytes())
	if len(f.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported %d events", len(f.TraceEvents))
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context has a tracer")
	}
	if sp := StartSpan(ctx, "x", "a"); sp != nil {
		t.Fatal("StartSpan on empty context returned a live span")
	}
	tr := NewTracer(NewFakeClock(time.Unix(0, 0), time.Microsecond))
	ctx = WithTracer(ctx, tr)
	if FromContext(ctx) != tr {
		t.Fatal("tracer did not round-trip through context")
	}
	sp := StartSpan(ctx, "x", "a")
	if sp == nil {
		t.Fatal("StartSpan returned nil with a tracer attached")
	}
	sp.End()
}

func TestOpenSpansFlushedAtExport(t *testing.T) {
	tr := NewTracer(NewFakeClock(time.Unix(0, 0), time.Microsecond))
	tr.Start("x", "open") // never ended
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, buf.Bytes())
	if len(f.TraceEvents) != 1 || f.TraceEvents[0].Dur < 0 {
		t.Fatalf("open span not flushed: %+v", f.TraceEvents)
	}
}

func TestQuoteJSONEscapes(t *testing.T) {
	tr := NewTracer(NewFakeClock(time.Unix(0, 0), time.Microsecond))
	tr.Start("c", `quote " back \ newline`+"\n", String("k", "v\twith\ttabs")).End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, buf.Bytes())
	if want := `quote " back \ newline` + "\n"; f.TraceEvents[0].Name != want {
		t.Fatalf("name round-trip = %q, want %q", f.TraceEvents[0].Name, want)
	}
	if !strings.Contains(buf.String(), `\t`) {
		t.Fatalf("tabs not escaped: %s", buf.String())
	}
}
