package obs

// SLO burn-rate tracking. An SLOTracker pairs one endpoint with a
// declared latency objective ("99% of analyze requests complete within
// 250ms") and classifies every finished request as good or bad — bad
// when it failed or exceeded the objective. Counts land in a ring of
// epoch-stamped 10-second slots, so multi-window burn rates are
// computed on demand at scrape time from the same atomics the request
// path writes; there is no background goroutine and no lock.
//
// Burn rate is the standard SRE definition: the observed bad fraction
// over a window divided by the budgeted bad fraction (1 − target). A
// burn rate of 1.0 spends the error budget exactly at the sustainable
// pace; 14.4 over 5 minutes is the classic page-now threshold.
//
// The slot ring is sized for the longest window. Writing a slot whose
// epoch has moved on resets it with a CAS on the epoch followed by
// plain stores of the counters — a concurrent Observe between those two
// steps can lose a handful of counts at a slot boundary. That race is
// benign (it perturbs a 10-second slice of a multi-minute window) and
// is the price of a lock-free request path; tests pin the clock so they
// never cross a boundary.

import (
	"fmt"
	"sync/atomic"
	"time"
)

const sloSlotSeconds = 10

// BurnWindows are the burn-rate windows rendered per SLO, shortest
// first. 5m/1h is the conventional fast-burn alert pair; 6h catches
// slow leaks.
var BurnWindows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}

// WindowLabel renders a burn window as a metric label value ("5m",
// "1h", "6h").
func WindowLabel(w time.Duration) string {
	if w < time.Hour {
		return fmt.Sprintf("%dm", int(w/time.Minute))
	}
	return fmt.Sprintf("%dh", int(w/time.Hour))
}

// DefSLOTarget is the success-fraction objective applied when a
// latency objective is declared without an explicit target.
const DefSLOTarget = 0.99

type sloSlot struct {
	epoch atomic.Int64
	good  atomic.Uint64
	bad   atomic.Uint64
}

// SLOTracker classifies requests against one endpoint's latency
// objective and answers burn-rate queries over sliding windows. Safe
// for concurrent use; Observe and BurnRate are lock-free.
type SLOTracker struct {
	endpoint  string
	objective float64 // seconds
	target    float64 // success fraction, e.g. 0.99
	clock     func() time.Time
	slots     []sloSlot
}

// NewSLOTracker declares an objective for endpoint: within `objective`
// latency for at least `target` fraction of requests (0 selects
// DefSLOTarget). The ring covers the longest BurnWindows entry.
func NewSLOTracker(endpoint string, objective time.Duration, target float64) *SLOTracker {
	if target <= 0 || target >= 1 {
		target = DefSLOTarget
	}
	longest := BurnWindows[len(BurnWindows)-1]
	n := int(longest/(sloSlotSeconds*time.Second)) + 1
	return &SLOTracker{
		endpoint:  endpoint,
		objective: objective.Seconds(),
		target:    target,
		clock:     time.Now,
		slots:     make([]sloSlot, n),
	}
}

// SetClock overrides the time source (tests).
func (t *SLOTracker) SetClock(clock func() time.Time) { t.clock = clock }

// Endpoint returns the endpoint this tracker guards.
func (t *SLOTracker) Endpoint() string { return t.endpoint }

// Objective returns the latency objective in seconds.
func (t *SLOTracker) Objective() float64 { return t.objective }

// Target returns the success-fraction objective.
func (t *SLOTracker) Target() float64 { return t.target }

// Observe classifies one finished request: bad when it failed or
// exceeded the latency objective.
func (t *SLOTracker) Observe(seconds float64, failed bool) {
	epoch := t.clock().Unix() / sloSlotSeconds
	s := &t.slots[int(epoch)%len(t.slots)]
	if s.epoch.Load() != epoch {
		if s.epoch.CompareAndSwap(s.epoch.Load(), epoch) {
			s.good.Store(0)
			s.bad.Store(0)
		}
	}
	if failed || seconds > t.objective {
		s.bad.Add(1)
	} else {
		s.good.Add(1)
	}
}

// Totals sums good and bad counts over the trailing window.
func (t *SLOTracker) Totals(window time.Duration) (good, bad uint64) {
	now := t.clock().Unix() / sloSlotSeconds
	span := int64(window / (sloSlotSeconds * time.Second))
	if span < 1 {
		span = 1
	}
	for i := range t.slots {
		s := &t.slots[i]
		e := s.epoch.Load()
		if e > now || now-e >= span {
			continue
		}
		good += s.good.Load()
		bad += s.bad.Load()
	}
	return good, bad
}

// BurnRate returns the error-budget burn rate over the trailing window:
// the observed bad fraction divided by the budgeted bad fraction
// (1 − target). Zero traffic burns nothing.
func (t *SLOTracker) BurnRate(window time.Duration) float64 {
	good, bad := t.Totals(window)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - t.target)
}
