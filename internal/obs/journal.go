package obs

// The structured event journal: a typed, bounded, in-memory ring of
// service-level events — session evictions, delta fallbacks, cache
// churn, watch re-analyses, slow requests — each stamped with a
// monotonic sequence number so clients can poll incrementally
// ("give me everything after seq N") and long-poll for the next one.
//
// The journal is the flight recorder's narrative track: where the trace
// ring answers "what did request X spend its time on", the journal
// answers "what has the service been doing". It is deliberately small
// and mutex-guarded — events are service-level (evictions, fallbacks),
// not per-constraint, so the lock never sits on an analysis hot path,
// and the /metrics scrape path never touches it.
//
// Two bridges connect the journal to log/slog:
//
//   - Journal.SetMirror(logger) makes every Append also emit one slog
//     record through the given logger, so journal events show up in the
//     operator's existing log stream.
//   - NewJournalHandler(j, inner) is a slog.Handler that records every
//     log record as a journal event (type "log") and forwards it to
//     inner — the fan-in direction, used for the daemon's slow-request
//     log so those records are queryable at /v1/events too.
//
// The two are loop-safe by construction: Append mirrors through the
// raw logger, never through a journal-handler-wrapped one, and the
// handler appends without mirroring.

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Event is one journal entry. Attrs is a flat string map (encoding/json
// renders map keys sorted, so serialized events are deterministic for a
// given attribute set).
type Event struct {
	Seq     uint64            `json:"seq"`
	TimeMS  int64             `json:"time_ms"` // unix milliseconds
	Type    string            `json:"type"`
	Level   string            `json:"level"` // "info", "warn", "error"
	Message string            `json:"message"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// JournalStats is a point-in-time snapshot of the journal's counters.
type JournalStats struct {
	// NextSeq is the sequence number the next event will get; the newest
	// retained event has NextSeq-1.
	NextSeq uint64 `json:"next_seq"`
	// Entries is the number of events currently retained.
	Entries int `json:"entries"`
	// Dropped counts events that have fallen off the ring.
	Dropped uint64 `json:"dropped"`
}

// Journal is a bounded in-memory event ring with monotonic sequence
// numbers. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	cap     int
	buf     []Event // ring storage
	start   int     // index of the oldest retained event
	n       int     // retained count
	seq     uint64  // next sequence number (first event gets 1)
	dropped uint64
	wake    chan struct{} // closed and replaced on every append
	mirror  *slog.Logger
	clock   func() time.Time
}

// NewJournal builds a journal retaining at most capacity events
// (capacity <= 0 selects 1024).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Journal{
		cap:   capacity,
		buf:   make([]Event, capacity),
		wake:  make(chan struct{}),
		clock: time.Now,
	}
}

// SetMirror makes every Append also emit one record through logger.
// Pass the raw logger, not one wrapped in NewJournalHandler — the
// handler path appends without mirroring precisely so the two bridges
// cannot loop.
func (j *Journal) SetMirror(logger *slog.Logger) {
	j.mu.Lock()
	j.mirror = logger
	j.mu.Unlock()
}

// SetClock overrides the timestamp source (tests).
func (j *Journal) SetClock(clock func() time.Time) {
	j.mu.Lock()
	j.clock = clock
	j.mu.Unlock()
}

// Append records an event and returns its sequence number. Attrs are
// alternating key, value strings; a trailing odd key is dropped.
func (j *Journal) Append(typ, level, message string, attrs ...string) uint64 {
	return j.append(typ, level, message, kvMap(attrs), true)
}

func kvMap(attrs []string) map[string]string {
	if len(attrs) < 2 {
		return nil
	}
	m := make(map[string]string, len(attrs)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		m[attrs[i]] = attrs[i+1]
	}
	return m
}

func (j *Journal) append(typ, level, message string, attrs map[string]string, mirror bool) uint64 {
	j.mu.Lock()
	j.seq++
	ev := Event{
		Seq:     j.seq,
		TimeMS:  j.clock().UnixMilli(),
		Type:    typ,
		Level:   level,
		Message: message,
		Attrs:   attrs,
	}
	if j.n == j.cap {
		j.start = (j.start + 1) % j.cap
		j.n--
		j.dropped++
	}
	j.buf[(j.start+j.n)%j.cap] = ev
	j.n++
	close(j.wake)
	j.wake = make(chan struct{})
	m := j.mirror
	j.mu.Unlock()

	if mirror && m != nil {
		lv := slog.LevelInfo
		switch level {
		case "warn":
			lv = slog.LevelWarn
		case "error":
			lv = slog.LevelError
		}
		args := make([]any, 0, 2+2*len(attrs))
		args = append(args, "event", typ)
		for k, v := range attrs {
			args = append(args, k, v)
		}
		m.Log(context.Background(), lv, message, args...)
	}
	return ev.Seq
}

// Since returns up to max events with Seq > since, oldest first, plus
// the sequence number to pass as the next `since` (the Seq of the last
// returned event, or since itself when nothing is newer). max <= 0
// means no limit.
func (j *Journal) Since(since uint64, max int) ([]Event, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.start+i)%j.cap]
		if ev.Seq <= since {
			continue
		}
		out = append(out, ev)
		if max > 0 && len(out) == max {
			break
		}
	}
	if len(out) == 0 {
		return nil, since
	}
	return out, out[len(out)-1].Seq
}

// Wait blocks until an event with Seq > since exists or the context
// ends, and reports whether new events are available. It is the
// long-poll primitive behind GET /v1/events.
func (j *Journal) Wait(ctx context.Context, since uint64) bool {
	for {
		j.mu.Lock()
		ready := j.seq > since
		wake := j.wake
		j.mu.Unlock()
		if ready {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-wake:
		}
	}
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{NextSeq: j.seq + 1, Entries: j.n, Dropped: j.dropped}
}

// JournalHandler is a slog.Handler that records every log record as a
// journal event (type "log") and forwards it to an inner handler, so
// existing slog call sites — the daemon's slow-request log — also feed
// the journal without being rewritten.
type JournalHandler struct {
	j     *Journal
	inner slog.Handler
	// attrs accumulated by WithAttrs, applied to every record.
	attrs []slog.Attr
}

// NewJournalHandler wraps inner with journal fan-in. A nil inner
// discards the forwarded records (journal only).
func NewJournalHandler(j *Journal, inner slog.Handler) *JournalHandler {
	return &JournalHandler{j: j, inner: inner}
}

// Enabled implements slog.Handler; the journal records every level the
// inner handler would, and everything at Info and above regardless.
func (h *JournalHandler) Enabled(ctx context.Context, level slog.Level) bool {
	if level >= slog.LevelInfo {
		return true
	}
	return h.inner != nil && h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler.
func (h *JournalHandler) Handle(ctx context.Context, r slog.Record) error {
	attrs := make(map[string]string, r.NumAttrs()+len(h.attrs))
	for _, a := range h.attrs {
		attrs[a.Key] = a.Value.String()
	}
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.String()
		return true
	})
	level := "info"
	switch {
	case r.Level >= slog.LevelError:
		level = "error"
	case r.Level >= slog.LevelWarn:
		level = "warn"
	}
	h.j.append("log", level, r.Message, attrs, false)
	if h.inner != nil && h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

// WithAttrs implements slog.Handler.
func (h *JournalHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	inner := h.inner
	if inner != nil {
		inner = inner.WithAttrs(attrs)
	}
	all := append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &JournalHandler{j: h.j, inner: inner, attrs: all}
}

// WithGroup implements slog.Handler; groups are flattened (the journal's
// attr map is flat), the inner handler keeps its grouping.
func (h *JournalHandler) WithGroup(name string) slog.Handler {
	inner := h.inner
	if inner != nil {
		inner = inner.WithGroup(name)
	}
	return &JournalHandler{j: h.j, inner: inner, attrs: h.attrs}
}
