package obs

// The flight recorder: tail-based trace retention. Every request
// records spans into a Tracer; at request end — once the latency and
// outcome are known — Decide picks whether the exported trace is worth
// keeping, and Put stores it in a bounded ring retrievable by trace id.
// The point is inverted sampling: head-based tracing (?trace=1) only
// captures problems the client predicted; tail-based retention captures
// exactly the requests an operator asks about afterwards — the slow
// ones, the failed ones, and a deterministic background sample for
// baseline comparison.
//
// Retention policy, in evaluation order (a request may match several;
// every matched reason's counter is bumped, so the counters over-count
// relative to admissions by design — admissions reconcile as
// admitted == resident + evicted instead):
//
//   - forced:   the client passed ?trace=1 (always kept)
//   - error:    the request failed (non-200)
//   - shed:     the request was load-shed or timed out (429/504)
//   - fallback: the delta session fell back to a cold solve
//   - slow:     per latency-histogram bucket, the first SlowestPerBucket
//     requests landing in the bucket are kept, and afterwards only new
//     per-bucket maxima — so every populated latency bucket always has
//     recent representative traces, and the slowest tail is always
//     retained (this is also what the OpenMetrics exemplars link to)
//   - sample:   a deterministic 1-in-SampleEvery pick by request
//     ordinal (the first request is always sampled, so a fresh server
//     has a baseline trace immediately)
//
// Lock freedom. Decide and Put are the per-request record path and Get
// is the operator read path; all three touch only atomics — the ring is
// a fixed array of atomic.Pointer slots claimed by an atomic cursor, and
// the per-bucket slow state is a counter plus a CAS'd float-bits
// maximum — so recording never contends with scrapes and a /metrics or
// /v1/introspect poll never delays a request.

import (
	"math"
	"sort"
	"sync/atomic"
)

// RetainPolicy configures the tail-retention decision. Zero values
// select the documented defaults.
type RetainPolicy struct {
	// RingEntries bounds the retained-trace ring (0 = 64).
	RingEntries int
	// SlowestPerBucket is the per-latency-bucket admission count before
	// only new bucket maxima are kept (0 = 2; negative disables the
	// slow policy).
	SlowestPerBucket int
	// SampleEvery keeps one request in every SampleEvery as a baseline
	// sample (0 = 64; negative disables sampling).
	SampleEvery int
	// Buckets are the latency bucket upper bounds, in seconds, for the
	// slow policy (nil = DefLatencyBuckets). Use the same buckets as the
	// latency histogram the exemplars annotate.
	Buckets []float64
}

func (p RetainPolicy) withDefaults() RetainPolicy {
	if p.RingEntries <= 0 {
		p.RingEntries = 64
	}
	if p.SlowestPerBucket == 0 {
		p.SlowestPerBucket = 2
	}
	if p.SampleEvery == 0 {
		p.SampleEvery = 64
	}
	if p.Buckets == nil {
		p.Buckets = DefLatencyBuckets
	}
	return p
}

// Sample is one finished request presented to Decide.
type Sample struct {
	// Seconds is the end-to-end request latency.
	Seconds float64
	// Err marks a failed request (non-200).
	Err bool
	// Shed marks a load-shed or deadline-exceeded request.
	Shed bool
	// Fallback marks a delta-session solve that fell back cold.
	Fallback bool
	// Forced marks an explicit ?trace=1 opt-in.
	Forced bool
}

// RetainReasons enumerates the policy counters in render order.
var RetainReasons = []string{"forced", "error", "shed", "fallback", "slow", "sample"}

// RetainedTrace is one ring entry.
type RetainedTrace struct {
	ID      string
	Data    []byte
	Seconds float64
	Reasons []string
}

// RetainedInfo is the introspection view of one ring entry (no body).
type RetainedInfo struct {
	ID      string   `json:"id"`
	Bytes   int      `json:"bytes"`
	Seconds float64  `json:"seconds"`
	Reasons []string `json:"reasons"`
}

// RecorderStats snapshots the retention counters. Admitted always
// equals Resident + Evicted; Decisions - Admitted requests were
// discarded unretained.
type RecorderStats struct {
	Decisions uint64            `json:"decisions"`
	Admitted  uint64            `json:"admitted"`
	Evicted   uint64            `json:"evicted"`
	Resident  int               `json:"resident"`
	ByReason  map[string]uint64 `json:"by_reason"`
}

// Recorder decides and stores tail-retained traces. Create with
// NewRecorder; all methods are safe for concurrent use and lock-free.
type Recorder struct {
	pol         RetainPolicy
	slots       []atomic.Pointer[RetainedTrace]
	cursor      atomic.Uint64
	decisions   atomic.Uint64
	admitted    atomic.Uint64
	evicted     atomic.Uint64
	byReason    [6]atomic.Uint64 // indexed like RetainReasons
	bucketCount []atomic.Uint64  // slow-policy admissions per bucket
	bucketMax   []atomic.Uint64  // float bits of the slowest retained latency per bucket
}

// NewRecorder builds a recorder with the given policy (zero value for
// defaults).
func NewRecorder(pol RetainPolicy) *Recorder {
	pol = pol.withDefaults()
	return &Recorder{
		pol:         pol,
		slots:       make([]atomic.Pointer[RetainedTrace], pol.RingEntries),
		bucketCount: make([]atomic.Uint64, len(pol.Buckets)+1),
		bucketMax:   make([]atomic.Uint64, len(pol.Buckets)+1),
	}
}

// Policy returns the recorder's effective (defaulted) policy.
func (r *Recorder) Policy() RetainPolicy { return r.pol }

// Decide evaluates the retention policy for one finished request and
// returns whether to retain its trace, with the matched reasons in
// RetainReasons order. Each Decide call consumes one sampling ordinal,
// so the 1-in-K pick is deterministic in request arrival order.
func (r *Recorder) Decide(s Sample) (bool, []string) {
	ordinal := r.decisions.Add(1)
	var reasons []string
	if s.Forced {
		reasons = append(reasons, "forced")
		r.byReason[0].Add(1)
	}
	if s.Err {
		reasons = append(reasons, "error")
		r.byReason[1].Add(1)
	}
	if s.Shed {
		reasons = append(reasons, "shed")
		r.byReason[2].Add(1)
	}
	if s.Fallback {
		reasons = append(reasons, "fallback")
		r.byReason[3].Add(1)
	}
	if r.slowRetain(s.Seconds) {
		reasons = append(reasons, "slow")
		r.byReason[4].Add(1)
	}
	if k := r.pol.SampleEvery; k > 0 && ordinal%uint64(k) == 1%uint64(k) {
		reasons = append(reasons, "sample")
		r.byReason[5].Add(1)
	}
	return len(reasons) > 0, reasons
}

// slowRetain is the per-bucket slow policy: admit the first
// SlowestPerBucket requests of a bucket, then only new bucket maxima.
func (r *Recorder) slowRetain(seconds float64) bool {
	n := r.pol.SlowestPerBucket
	if n <= 0 {
		return false
	}
	i := sort.SearchFloat64s(r.pol.Buckets, seconds)
	for {
		c := r.bucketCount[i].Load()
		if c >= uint64(n) {
			break
		}
		if r.bucketCount[i].CompareAndSwap(c, c+1) {
			r.raiseBucketMax(i, seconds)
			return true
		}
	}
	for {
		old := r.bucketMax[i].Load()
		if seconds <= math.Float64frombits(old) {
			return false
		}
		if r.bucketMax[i].CompareAndSwap(old, math.Float64bits(seconds)) {
			return true
		}
	}
}

func (r *Recorder) raiseBucketMax(i int, seconds float64) {
	for {
		old := r.bucketMax[i].Load()
		if seconds <= math.Float64frombits(old) {
			return
		}
		if r.bucketMax[i].CompareAndSwap(old, math.Float64bits(seconds)) {
			return
		}
	}
}

// Put stores a retained trace, evicting the oldest slot when the ring
// is full. The ring is append-ordered: slots are claimed by an atomic
// cursor, so concurrent Puts never block each other.
func (r *Recorder) Put(id string, data []byte, seconds float64, reasons []string) {
	i := (r.cursor.Add(1) - 1) % uint64(len(r.slots))
	old := r.slots[i].Swap(&RetainedTrace{ID: id, Data: data, Seconds: seconds, Reasons: reasons})
	r.admitted.Add(1)
	if old != nil {
		r.evicted.Add(1)
	}
}

// Get returns the retained trace bytes for id. A miss means the request
// was never retained or its slot has been evicted.
func (r *Recorder) Get(id string) ([]byte, bool) {
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil && e.ID == id {
			return e.Data, true
		}
	}
	return nil, false
}

// Retained lists the ring's current entries, newest first, without
// bodies — the introspection view.
func (r *Recorder) Retained() []RetainedInfo {
	n := len(r.slots)
	cur := r.cursor.Load()
	out := make([]RetainedInfo, 0, n)
	for k := 0; k < n; k++ {
		// Walk backwards from the most recently claimed slot.
		i := (cur + uint64(n) - 1 - uint64(k)) % uint64(n)
		if e := r.slots[i].Load(); e != nil {
			out = append(out, RetainedInfo{ID: e.ID, Bytes: len(e.Data), Seconds: e.Seconds, Reasons: e.Reasons})
		}
	}
	return out
}

// Stats snapshots the retention counters; Resident scans the ring.
func (r *Recorder) Stats() RecorderStats {
	resident := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			resident++
		}
	}
	by := make(map[string]uint64, len(RetainReasons))
	for i, name := range RetainReasons {
		by[name] = r.byReason[i].Load()
	}
	return RecorderStats{
		Decisions: r.decisions.Load(),
		Admitted:  r.admitted.Load(),
		Evicted:   r.evicted.Load(),
		Resident:  resident,
		ByReason:  by,
	}
}
