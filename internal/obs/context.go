package obs

import "context"

// tracerKey is the context key carrying the active *Tracer.
type tracerKey struct{}

// WithTracer returns a context carrying the tracer. Every pipeline
// layer retrieves it with FromContext; a context without a tracer
// yields nil, and all tracer methods no-op on nil, so instrumented code
// needs no conditionals.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil if none is attached.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer. It returns a nil
// (no-op) span when the context carries no tracer.
func StartSpan(ctx context.Context, cat, name string, attrs ...Attr) *Span {
	return FromContext(ctx).Start(cat, name, attrs...)
}
