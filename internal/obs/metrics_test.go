package obs

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cqual_requests_total", "Analyze requests received.")
	g := r.NewGauge("cqual_in_flight", "Requests in flight.")
	r.NewGaugeFunc("cqual_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	c.Add(3)
	c.Inc()
	g.Set(2)
	g.Add(-1)

	out := render(t, r)
	for _, want := range []string{
		"# HELP cqual_requests_total Analyze requests received.",
		"# TYPE cqual_requests_total counter",
		"cqual_requests_total 4",
		"# TYPE cqual_in_flight gauge",
		"cqual_in_flight 1",
		"cqual_uptime_seconds 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledSeriesSortedWithinFamily(t *testing.T) {
	r := NewRegistry()
	b := r.NewCounter("cqual_analysis_requests_total", "Per-analysis requests.", L("analysis", "taint"))
	a := r.NewCounter("cqual_analysis_requests_total", "Per-analysis requests.", L("analysis", "const"))
	a.Add(1)
	b.Add(2)
	out := render(t, r)
	i := strings.Index(out, `analysis="const"`)
	j := strings.Index(out, `analysis="taint"`)
	if i < 0 || j < 0 || i > j {
		t.Fatalf("series not sorted by label set:\n%s", out)
	}
	if !strings.Contains(out, `cqual_analysis_requests_total{analysis="const"} 1`) {
		t.Fatalf("labeled counter missing:\n%s", out)
	}
	// HELP/TYPE appear once per family, not per series.
	if strings.Count(out, "# TYPE cqual_analysis_requests_total counter") != 1 {
		t.Fatalf("TYPE repeated:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("cqual_stage_duration_seconds", "Stage latency.",
		[]float64{0.1, 1}, L("stage", "solve"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	out := render(t, r)
	for _, want := range []string{
		"# TYPE cqual_stage_duration_seconds histogram",
		`cqual_stage_duration_seconds_bucket{stage="solve",le="0.1"} 1`,
		`cqual_stage_duration_seconds_bucket{stage="solve",le="1"} 2`,
		`cqual_stage_duration_seconds_bucket{stage="solve",le="+Inf"} 3`,
		`cqual_stage_duration_seconds_count{stage="solve"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Sum() != 5.55 {
		t.Fatalf("sum = %v, want 5.55", h.Sum())
	}
	// Observations exactly on a bound land in that bound's bucket
	// (Prometheus le semantics are inclusive).
	h2 := r.NewHistogram("cqual_edge", "Edge case.", []float64{1})
	h2.Observe(1)
	if got := h2.buckets[0].Load(); got != 1 {
		t.Fatalf("observation on bound landed in bucket %v", got)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	h := r.NewHistogram("h_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter=%d hist count=%d, want 8000", c.Value(), h.Count())
	}
	if got := h.Sum(); got < 79.9 || got > 80.1 {
		t.Fatalf("hist sum = %v, want ~80", got)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "d")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.NewCounter("dup_total", "d")
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "e", L("path", `a"b\c`))
	c.Inc()
	out := render(t, r)
	if !strings.Contains(out, `esc_total{path="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}
