package obs

// Unit tests for the flight-recorder building blocks: the tail-retention
// ring, the event journal and its slog bridges, the SLO burn-rate
// tracker, OpenMetrics rendering with exemplars, and /metrics content
// negotiation.

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Recorder -------------------------------------------------------

func TestRecorderDecideReasons(t *testing.T) {
	r := NewRecorder(RetainPolicy{SlowestPerBucket: -1, SampleEvery: -1})
	cases := []struct {
		s    Sample
		want []string
	}{
		{Sample{Forced: true}, []string{"forced"}},
		{Sample{Err: true}, []string{"error"}},
		{Sample{Shed: true}, []string{"shed"}},
		{Sample{Fallback: true}, []string{"fallback"}},
		{Sample{Err: true, Fallback: true}, []string{"error", "fallback"}},
		{Sample{}, nil},
	}
	for _, c := range cases {
		retain, reasons := r.Decide(c.s)
		if retain != (len(c.want) > 0) {
			t.Errorf("Decide(%+v) retain = %v, want %v", c.s, retain, len(c.want) > 0)
		}
		if fmt.Sprint(reasons) != fmt.Sprint(c.want) {
			t.Errorf("Decide(%+v) reasons = %v, want %v", c.s, reasons, c.want)
		}
	}
}

func TestRecorderSlowPolicy(t *testing.T) {
	// Two admissions per bucket, then only new bucket maxima.
	r := NewRecorder(RetainPolicy{SlowestPerBucket: 2, SampleEvery: -1, Buckets: []float64{0.1, 1}})
	decide := func(sec float64) bool {
		ok, _ := r.Decide(Sample{Seconds: sec})
		return ok
	}
	if !decide(0.05) || !decide(0.06) {
		t.Fatal("first two in bucket should be retained")
	}
	if decide(0.04) {
		t.Fatal("below-max third entry should not be retained")
	}
	if !decide(0.07) {
		t.Fatal("new bucket maximum should be retained")
	}
	if decide(0.07) {
		t.Fatal("equal-to-max entry should not be retained")
	}
	// A different bucket has its own budget.
	if !decide(0.5) {
		t.Fatal("first entry of second bucket should be retained")
	}
}

func TestRecorderSampleEvery(t *testing.T) {
	r := NewRecorder(RetainPolicy{SlowestPerBucket: -1, SampleEvery: 4})
	var got []int
	for i := 1; i <= 9; i++ {
		if ok, reasons := r.Decide(Sample{}); ok {
			if len(reasons) != 1 || reasons[0] != "sample" {
				t.Fatalf("request %d: reasons = %v", i, reasons)
			}
			got = append(got, i)
		}
	}
	// The first request is always sampled, then every 4th after it.
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 5, 9}) {
		t.Fatalf("sampled ordinals = %v, want [1 5 9]", got)
	}
}

func TestRecorderRingEvictionAndReconcile(t *testing.T) {
	r := NewRecorder(RetainPolicy{RingEntries: 4})
	for i := 0; i < 10; i++ {
		r.Put(fmt.Sprintf("t%02d", i), []byte("x"), 0.001, []string{"sample"})
	}
	st := r.Stats()
	if st.Admitted != 10 || st.Resident != 4 || st.Evicted != 6 {
		t.Fatalf("stats = %+v, want admitted 10 = resident 4 + evicted 6", st)
	}
	if _, ok := r.Get("t09"); !ok {
		t.Fatal("newest entry missing")
	}
	if _, ok := r.Get("t03"); ok {
		t.Fatal("evicted entry still retrievable")
	}
	infos := r.Retained()
	if len(infos) != 4 || infos[0].ID != "t09" || infos[3].ID != "t06" {
		t.Fatalf("Retained() = %+v, want t09..t06 newest first", infos)
	}
}

func TestRecorderConcurrentReconcile(t *testing.T) {
	r := NewRecorder(RetainPolicy{RingEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("g%d-%03d", g, i)
				r.Put(id, []byte(id), 0.001, []string{"sample"})
				r.Get(id)
				r.Stats()
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Admitted != 400 {
		t.Fatalf("admitted = %d, want 400", st.Admitted)
	}
	if st.Admitted != uint64(st.Resident)+st.Evicted {
		t.Fatalf("admitted %d != resident %d + evicted %d", st.Admitted, st.Resident, st.Evicted)
	}
}

// --- Journal --------------------------------------------------------

func TestJournalSinceAndDrop(t *testing.T) {
	j := NewJournal(3)
	j.SetClock(func() time.Time { return time.UnixMilli(42) })
	for i := 1; i <= 5; i++ {
		seq := j.Append("cache_evict", "info", fmt.Sprintf("evict %d", i), "key", fmt.Sprint(i))
		if seq != uint64(i) {
			t.Fatalf("Append seq = %d, want %d", seq, i)
		}
	}
	evs, next := j.Since(0, 0)
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("Since(0) = %+v, want seqs 3..5", evs)
	}
	if next != 5 {
		t.Fatalf("next = %d, want 5", next)
	}
	if evs[0].TimeMS != 42 || evs[0].Attrs["key"] != "3" {
		t.Fatalf("event fields wrong: %+v", evs[0])
	}
	if evs2, next2 := j.Since(5, 0); evs2 != nil || next2 != 5 {
		t.Fatalf("Since(5) = %v, %d, want nil, 5", evs2, next2)
	}
	st := j.Stats()
	if st.NextSeq != 6 || st.Entries != 3 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJournalWaitLongPoll(t *testing.T) {
	j := NewJournal(8)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan bool, 1)
	go func() { done <- j.Wait(ctx, 0) }()
	time.Sleep(10 * time.Millisecond)
	j.Append("watch_reanalyze", "info", "dir changed")
	if !<-done {
		t.Fatal("Wait returned false with a new event available")
	}
	// Expired context with nothing new returns false.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if j.Wait(ctx2, 1) {
		t.Fatal("Wait returned true with no new events")
	}
}

func TestJournalSlogBridges(t *testing.T) {
	j := NewJournal(8)
	var buf bytes.Buffer
	raw := slog.New(slog.NewTextHandler(&buf, nil))
	j.SetMirror(raw)

	// Append mirrors to slog.
	j.Append("session_evict", "warn", "session evicted", "key", "abc")
	if out := buf.String(); !strings.Contains(out, "session evicted") || !strings.Contains(out, "event=session_evict") {
		t.Fatalf("mirror output missing event: %q", out)
	}

	// slog through JournalHandler lands in the journal and the inner
	// handler, and does NOT re-mirror (no loop).
	before := buf.Len()
	wrapped := slog.New(NewJournalHandler(j, slog.NewTextHandler(&buf, nil)))
	wrapped.Warn("slow request", "trace", "t01")
	evs, _ := j.Since(1, 0)
	if len(evs) != 1 || evs[0].Type != "log" || evs[0].Level != "warn" || evs[0].Attrs["trace"] != "t01" {
		t.Fatalf("journal fan-in event wrong: %+v", evs)
	}
	inner := buf.String()[before:]
	if !strings.Contains(inner, "slow request") {
		t.Fatalf("inner handler not forwarded: %q", inner)
	}
	if strings.Count(inner, "slow request") != 1 {
		t.Fatalf("handler record mirrored back (loop): %q", inner)
	}

	// WithAttrs attrs reach the journal.
	slog.New(NewJournalHandler(j, nil)).With("shard", "2").Info("hello")
	evs, _ = j.Since(2, 0)
	if len(evs) != 1 || evs[0].Attrs["shard"] != "2" {
		t.Fatalf("WithAttrs attrs missing: %+v", evs)
	}
}

// --- SLO ------------------------------------------------------------

func TestSLOBurnRate(t *testing.T) {
	tr := NewSLOTracker("analyze", 250*time.Millisecond, 0.99)
	now := time.Unix(1_000_000, 0)
	tr.SetClock(func() time.Time { return now })

	// 98 good, 1 slow, 1 failed: 2% bad against a 1% budget → burn 2.
	for i := 0; i < 98; i++ {
		tr.Observe(0.01, false)
	}
	tr.Observe(0.5, false)
	tr.Observe(0.01, true)

	good, bad := tr.Totals(5 * time.Minute)
	if good != 98 || bad != 2 {
		t.Fatalf("totals = %d good, %d bad", good, bad)
	}
	if br := tr.BurnRate(5 * time.Minute); br < 1.99 || br > 2.01 {
		t.Fatalf("burn rate = %v, want 2", br)
	}

	// Advance past the 5m window: short window empties, 6h still sees it.
	now = now.Add(6 * time.Minute)
	if br := tr.BurnRate(5 * time.Minute); br != 0 {
		t.Fatalf("5m burn after idle = %v, want 0", br)
	}
	if br := tr.BurnRate(6 * time.Hour); br < 1.99 || br > 2.01 {
		t.Fatalf("6h burn = %v, want 2", br)
	}
}

func TestSLOZeroTrafficAndDefaults(t *testing.T) {
	tr := NewSLOTracker("analyze", 100*time.Millisecond, 0)
	if tr.Target() != DefSLOTarget {
		t.Fatalf("default target = %v", tr.Target())
	}
	if br := tr.BurnRate(time.Hour); br != 0 {
		t.Fatalf("zero-traffic burn = %v, want 0", br)
	}
	if WindowLabel(5*time.Minute) != "5m" || WindowLabel(time.Hour) != "1h" || WindowLabel(6*time.Hour) != "6h" {
		t.Fatal("WindowLabel rendering wrong")
	}
}

// --- OpenMetrics + exemplars ---------------------------------------

func TestOpenMetricsRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cquald_requests_total", "Requests.")
	c.Add(7)
	g := r.NewGauge("cquald_in_flight", "In flight.")
	g.Set(2)
	h := r.NewHistogram("cquald_request_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-aa")
	h.Observe(0.06) // no trace id: exemplar keeps trace-aa
	h.ObserveExemplar(0.5, "trace-bb")

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cquald_requests counter\n", // family name drops _total
		"cquald_requests_total 7\n",        // sample keeps it
		"# TYPE cquald_in_flight gauge\n",
		`cquald_request_seconds_bucket{le="0.1"} 2 # {trace_id="trace-aa"} 0.05` + "\n",
		`cquald_request_seconds_bucket{le="1"} 3 # {trace_id="trace-bb"} 0.5` + "\n",
		`cquald_request_seconds_bucket{le="+Inf"} 3` + "\n",
		"cquald_request_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
	if strings.Contains(out, "# HELP cquald_requests_total") {
		t.Fatalf("counter HELP kept _total suffix:\n%s", out)
	}

	// The Prometheus rendering is unaffected by exemplars.
	prom := render(t, r)
	if strings.Contains(prom, "trace_id") || strings.Contains(prom, "# EOF") {
		t.Fatalf("Prometheus rendering leaked OpenMetrics syntax:\n%s", prom)
	}
}

// --- Negotiation ----------------------------------------------------

func TestNegotiateMetricsFormat(t *testing.T) {
	cases := []struct {
		accept, want string
	}{
		{"", FormatJSON},                 // absent header
		{"*/*", FormatJSON},              // browser wildcard
		{"text/plain;q=0", FormatJSON},   // everything excluded
		{"text/plain", FormatPrometheus}, // classic scraper
		{"text/plain; version=0.0.4", FormatPrometheus},
		{"application/json", FormatJSON},
		{"application/openmetrics-text", FormatOpenMetrics},
		// Prometheus 2.x scrape header: OpenMetrics preferred by q.
		{"application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1", FormatOpenMetrics},
		// Equal q ties break toward the richer exposition.
		{"application/openmetrics-text,text/plain", FormatOpenMetrics},
		{"text/plain,application/json", FormatPrometheus},
		// Wildcard with higher q than an excluded specific type.
		{"text/plain;q=0,*/*;q=0.5", FormatJSON},
		// Browsers: html first, wildcard fallback → JSON.
		{"text/html,application/xhtml+xml,*/*;q=0.8", FormatJSON},
		// Unknown types only → JSON fallback.
		{"application/xml", FormatJSON},
		// Malformed q excludes the entry.
		{"text/plain;q=banana", FormatJSON},
		// Case-insensitive media types.
		{"TEXT/PLAIN", FormatPrometheus},
	}
	for _, c := range cases {
		if got := NegotiateMetricsFormat(c.accept); got != c.want {
			t.Errorf("NegotiateMetricsFormat(%q) = %q, want %q", c.accept, got, c.want)
		}
	}
}
