package core_test

import (
	"fmt"

	"repro/internal/core"
)

// Checking the paper's const assignment rule end to end.
func ExampleSpec_Check() {
	spec := core.ConstSpec()
	res, err := spec.Check("example", "let x = @const ref 1 in x := 2 ni")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("conflicts:", len(res.Conflicts))
	// Output:
	// conflicts: 1
}

// The Section 3.2 identity example: polymorphic qualifier inference
// accepts what the monomorphic C type system must reject.
func ExampleSpec_NewMonoChecker() {
	spec := core.ConstSpec()
	src := `
		let id = fn x => x in
		let y = id (ref 1) in
		let u = y := 2 in
		let z = id (@const ref 1) in
		() ni ni ni ni`
	poly, _ := spec.NewChecker().CheckSource("ex", src)
	mono, _ := spec.NewMonoChecker().CheckSource("ex", src)
	fmt.Println("polymorphic conflicts:", len(poly.Conflicts))
	fmt.Println("monomorphic conflicts:", len(mono.Conflicts) > 0)
	// Output:
	// polymorphic conflicts: 0
	// monomorphic conflicts: true
}
