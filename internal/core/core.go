// Package core is the front door of the qualifier framework of Foster,
// Fähndrich and Aiken, "A Theory of Type Qualifiers" (PLDI 1999). A Spec
// bundles a qualifier set (the user-supplied q1…qn with their subtyping
// orientation) with the per-qualifier inference rules; a Spec yields
// checkers for the example language and gives programmatic access to the
// lattice.
//
// The heavy lifting lives in the subpackages: qual (lattices), constraint
// (the atomic-subtyping solver), qtype (qualified types), lambda (the
// example language), infer (qualified type inference and polymorphism),
// eval (the Figure-5 operational semantics), cfront/constinfer (the
// Section-4 const inference for C).
package core

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/infer"
	"repro/internal/lambda"
	"repro/internal/qual"
)

// Spec is a complete qualifier-system definition: what the qualifiers
// are, how they order, and the extra inference rules that give them
// meaning.
type Spec struct {
	// Name identifies the spec in output.
	Name string
	// Doc is a one-line description.
	Doc string
	// Set is the qualifier lattice.
	Set *qual.Set
	// Rules are the per-qualifier inference hooks.
	Rules infer.Rules
}

// NewChecker builds a fresh polymorphic checker for the spec.
func (s *Spec) NewChecker() *infer.Checker {
	return infer.New(s.Set, s.Rules)
}

// NewMonoChecker builds a checker with qualifier polymorphism disabled,
// the C-type-system baseline of the paper's experiments.
func (s *Spec) NewMonoChecker() *infer.Checker {
	c := infer.New(s.Set, s.Rules)
	c.Monomorphic = true
	return c
}

// Check parses and checks src with a fresh polymorphic checker.
func (s *Spec) Check(file, src string) (*infer.Result, error) {
	return s.NewChecker().CheckSource(file, src)
}

// Run parses, compiles and evaluates src under the Figure-5 semantics.
func (s *Spec) Run(file, src string) (*eval.TQVal, error) {
	e, err := lambda.Parse(file, src)
	if err != nil {
		return nil, err
	}
	return eval.Run(s.Set, eval.LitQual(s.Rules.LitQual), e, 0)
}

// ConstSpec is the ANSI C const qualifier (paper Sections 1, 2.4, 4): a
// positive qualifier whose assignment rule forbids stores through const
// references.
func ConstSpec() *Spec {
	set := qual.MustSet(qual.Qualifier{Name: "const", Sign: qual.Positive})
	return &Spec{
		Name:  "const",
		Doc:   "ANSI C const: initialized but never updated",
		Set:   set,
		Rules: infer.ConstRules(set),
	}
}

// NonzeroSpec is the negative nonzero qualifier of Figure 2: zero
// literals lose it, divisors must have it.
func NonzeroSpec() *Spec {
	set := qual.MustSet(qual.Qualifier{Name: "nonzero", Sign: qual.Negative})
	return &Spec{
		Name:  "nonzero",
		Doc:   "integers known to be nonzero; divisors are checked",
		Set:   set,
		Rules: infer.NonzeroRules(set),
	}
}

// BindingTimeSpec is binding-time analysis with the positive qualifier
// dynamic (static is its absence), including the well-formedness rule
// that nothing dynamic appears inside a static value.
func BindingTimeSpec() *Spec {
	set := qual.MustSet(qual.Qualifier{Name: "dynamic", Sign: qual.Positive})
	return &Spec{
		Name:  "bindingtime",
		Doc:   "binding-time analysis: static vs dynamic",
		Set:   set,
		Rules: infer.BindingTimeRules(set),
	}
}

// TaintSpec is a secure-information-flow qualifier in the style of the
// systems the paper cites: tainted data must not reach untainted sinks.
func TaintSpec() *Spec {
	set := qual.MustSet(qual.Qualifier{Name: "tainted", Sign: qual.Positive})
	return &Spec{
		Name:  "taint",
		Doc:   "untrusted data must not reach trusted sinks",
		Set:   set,
		Rules: infer.TaintRules(set),
	}
}

// Figure2Spec combines const, dynamic and nonzero into the eight-point
// lattice drawn in Figure 2 of the paper, with all three rule sets
// active.
func Figure2Spec() *Spec {
	set := qual.MustSet(
		qual.Qualifier{Name: "const", Sign: qual.Positive},
		qual.Qualifier{Name: "dynamic", Sign: qual.Positive},
		qual.Qualifier{Name: "nonzero", Sign: qual.Negative},
	)
	return &Spec{
		Name: "figure2",
		Doc:  "the const × dynamic × nonzero lattice of Figure 2",
		Set:  set,
		Rules: infer.Merge(
			infer.ConstRules(set),
			infer.BindingTimeRules(set),
			infer.NonzeroRules(set),
		),
	}
}

// Specs returns all built-in specs, keyed by name.
func Specs() map[string]*Spec {
	out := map[string]*Spec{}
	for _, s := range []*Spec{ConstSpec(), NonzeroSpec(), BindingTimeSpec(), TaintSpec(), Figure2Spec()} {
		out[s.Name] = s
	}
	return out
}

// Lookup finds a built-in spec by name.
func Lookup(name string) (*Spec, error) {
	s, ok := Specs()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown qualifier spec %q", name)
	}
	return s, nil
}

// Custom builds a Spec from raw qualifier definitions with no extra
// rules; the framework's generic behaviour (Figure 4) applies.
func Custom(name string, quals ...qual.Qualifier) (*Spec, error) {
	set, err := qual.NewSet(quals...)
	if err != nil {
		return nil, err
	}
	return &Spec{Name: name, Doc: "user-defined qualifier set", Set: set}, nil
}
