package core

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/qual"
)

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	for _, name := range []string{"const", "nonzero", "bindingtime", "taint", "figure2"} {
		s, ok := specs[name]
		if !ok {
			t.Errorf("missing spec %q", name)
			continue
		}
		if s.Set == nil || s.Doc == "" {
			t.Errorf("spec %q incomplete", name)
		}
	}
	if _, err := Lookup("const"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown spec succeeded")
	}
}

func TestConstSpecEndToEnd(t *testing.T) {
	s := ConstSpec()
	res, err := s.Check("t", "let x = @const ref 1 in x := 2 ni")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) == 0 {
		t.Error("const violation accepted")
	}
	res, err = s.Check("t", "let x = ref 1 in x := 2 ni")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Error("legal program rejected")
	}
}

func TestMonoVsPolyCheckers(t *testing.T) {
	s := ConstSpec()
	src := `
		let id = fn x => x in
		let y = id (ref 1) in
		let u = y := 2 in
		let z = id (@const ref 1) in
		() ni ni ni ni`
	poly := s.NewChecker()
	res, err := poly.CheckSource("t", src)
	if err != nil || len(res.Conflicts) != 0 {
		t.Errorf("poly checker rejected the id example (err=%v)", err)
	}
	mono := s.NewMonoChecker()
	res, err = mono.CheckSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) == 0 {
		t.Error("mono checker accepted the id example")
	}
}

func TestSpecRun(t *testing.T) {
	s := NonzeroSpec()
	v, err := s.Run("t", "10 / 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := eval.Format(s.Set, v); !strings.Contains(got, "5") {
		t.Errorf("Run result = %q", got)
	}
	// The spec's LitQual is threaded into the runtime semantics: zero
	// literals lack nonzero at runtime.
	v, err = s.Run("t", "0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Set.Has(v.L, "nonzero") {
		t.Error("runtime zero carries nonzero")
	}
	v, err = s.Run("t", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Set.Has(v.L, "nonzero") {
		t.Error("runtime 7 lacks nonzero")
	}
}

func TestFigure2SpecLattice(t *testing.T) {
	s := Figure2Spec()
	if s.Set.Len() != 3 {
		t.Fatalf("figure2 lattice has %d qualifiers, want 3", s.Set.Len())
	}
	if got := len(s.Set.Elems()); got != 8 {
		t.Errorf("lattice size %d, want 8", got)
	}
	// All three rule sets must be active: const assignment…
	res, err := s.Check("t", "(@const ref 1) := 2")
	if err != nil || len(res.Conflicts) == 0 {
		t.Error("figure2 spec lost the const rule")
	}
	// …nonzero division…
	res, err = s.Check("t", "1 / 0")
	if err != nil || len(res.Conflicts) == 0 {
		t.Error("figure2 spec lost the nonzero rule")
	}
	// …and binding-time propagation.
	res, err = s.Check("t", "(if @dynamic 1 then 1 else 2 fi) |[^dynamic]")
	if err != nil || len(res.Conflicts) == 0 {
		t.Error("figure2 spec lost the binding-time rule")
	}
	// And a benign program passes all three at once.
	res, err = s.Check("t", "let r = ref (@nonzero 6) in 12 / !r ni")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("benign program rejected: %v", res.Conflicts[0].Explain(s.Set))
	}
}

func TestCustomSpec(t *testing.T) {
	// A custom positive qualifier needs no extra rules: annotate sources,
	// assert absence at sinks, and subsumption does the propagation (the
	// paper's "even without any additional rules on qualifiers, the
	// qualified type system can be quite useful").
	s, err := Custom("secret", qual.Qualifier{Name: "secret", Sign: qual.Positive})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Check("t", `
		let publish = fn x => x |[^secret] in
		publish 5
		ni`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("public data rejected: %v", res.Conflicts[0].Explain(s.Set))
	}
	res, err = s.Check("t", `
		let key = @secret 42 in
		let publish = fn x => x |[^secret] in
		publish key
		ni ni`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) == 0 {
		t.Error("secret data published")
	}
	// A custom negative qualifier behaves as an assumption discipline:
	// with no literal rules everything starts at ⊥ (qualifier present),
	// matching the paper's trusted "sorted" annotations.
	neg, err := Custom("sorted", qual.Qualifier{Name: "sorted", Sign: qual.Negative})
	if err != nil {
		t.Fatal(err)
	}
	res, err = neg.Check("t", `
		let sort = fn l => @sorted l in
		let merge = fn l => l |[sorted] in
		merge (sort 5)
		ni ni`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("sorted pipeline rejected: %v", res.Conflicts[0].Explain(neg.Set))
	}
	if _, err := Custom("bad", qual.Qualifier{Name: "", Sign: qual.Positive}); err == nil {
		t.Error("Custom accepted an invalid qualifier")
	}
}
