// Package qual implements type qualifiers and the qualifier lattice of
// Foster, Fähndrich and Aiken, "A Theory of Type Qualifiers" (PLDI 1999),
// Section 2.
//
// A qualifier q is positive if τ ≤ q τ for every standard type τ (e.g.
// const), and negative if q τ ≤ τ (e.g. nonzero). Each positive qualifier
// defines the two-point lattice ¬q ⊑ q and each negative qualifier the
// two-point lattice q ⊑ ¬q. The qualifier lattice L is the product of the
// per-qualifier lattices (Definition 2).
//
// Internally every lattice element is normalized to a bit vector in which
// bit i set means "the i-th component is at its top": for a positive
// qualifier the top is "qualifier present", for a negative qualifier it is
// "qualifier absent". Under this normalization the partial order is bitwise
// subset, join is OR and meet is AND, so all lattice operations are O(1).
package qual

import (
	"fmt"
	"sort"
	"strings"
)

// Sign says on which side of the subtype relation a qualifier sits
// (Definition 1 of the paper).
type Sign int

const (
	// Positive qualifiers satisfy τ ≤ q τ; values flow from unqualified
	// to qualified (const, dynamic, tainted).
	Positive Sign = iota
	// Negative qualifiers satisfy q τ ≤ τ; values flow from qualified to
	// unqualified (nonzero, untainted, sorted).
	Negative
)

func (s Sign) String() string {
	switch s {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return fmt.Sprintf("Sign(%d)", int(s))
	}
}

// Qualifier describes one user-supplied type qualifier.
type Qualifier struct {
	// Name is the source-level spelling, e.g. "const".
	Name string
	// Sign determines the orientation of the two-point lattice.
	Sign Sign
	// NegName optionally names the absent state for diagnostics: the
	// negative qualifier "untainted" reads better rendered as "tainted"
	// when absent than as "¬untainted". Empty means render "¬Name".
	NegName string
}

// MaxQualifiers is the maximum number of qualifiers in one Set; elements
// are packed into a 64-bit word.
const MaxQualifiers = 64

// Set is an immutable collection of qualifiers defining the product
// lattice L. The zero Set is the empty lattice (a single point).
type Set struct {
	quals []Qualifier
	index map[string]int
}

// NewSet builds a qualifier set. It fails if a name repeats, a name is
// empty, or more than MaxQualifiers qualifiers are supplied.
func NewSet(quals ...Qualifier) (*Set, error) {
	if len(quals) > MaxQualifiers {
		return nil, fmt.Errorf("qual: %d qualifiers exceeds maximum %d", len(quals), MaxQualifiers)
	}
	s := &Set{
		quals: append([]Qualifier(nil), quals...),
		index: make(map[string]int, len(quals)),
	}
	for i, q := range quals {
		if q.Name == "" {
			return nil, fmt.Errorf("qual: qualifier %d has empty name", i)
		}
		if q.Sign != Positive && q.Sign != Negative {
			return nil, fmt.Errorf("qual: qualifier %q has invalid sign %d", q.Name, q.Sign)
		}
		if _, dup := s.index[q.Name]; dup {
			return nil, fmt.Errorf("qual: duplicate qualifier %q", q.Name)
		}
		s.index[q.Name] = i
	}
	return s, nil
}

// MustSet is NewSet but panics on error; intended for tests and
// package-level variables with literal arguments.
func MustSet(quals ...Qualifier) *Set {
	s, err := NewSet(quals...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the number of qualifiers in the set.
func (s *Set) Len() int { return len(s.quals) }

// Qualifiers returns a copy of the qualifier definitions in order.
func (s *Set) Qualifiers() []Qualifier {
	return append([]Qualifier(nil), s.quals...)
}

// Lookup returns the index of the named qualifier and whether it exists.
func (s *Set) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Qualifier returns the definition at index i.
func (s *Set) Qualifier(i int) Qualifier { return s.quals[i] }

// Elem is one element of the qualifier lattice L, i.e. a choice of
// present/absent for every qualifier in the Set. Elem values are only
// meaningful relative to the Set that produced them.
type Elem uint64

// Bottom returns ⊥, the least lattice element: all positive qualifiers
// absent and all negative qualifiers present.
func (s *Set) Bottom() Elem { return 0 }

// Top returns ⊤, the greatest lattice element: all positive qualifiers
// present and all negative qualifiers absent.
func (s *Set) Top() Elem {
	if len(s.quals) == 64 {
		return Elem(^uint64(0))
	}
	return Elem(uint64(1)<<uint(len(s.quals)) - 1)
}

// Elem builds the lattice element in which exactly the named qualifiers
// are present. It fails on unknown names.
func (s *Set) Elem(present ...string) (Elem, error) {
	var e Elem
	for _, name := range present {
		i, ok := s.index[name]
		if !ok {
			return 0, fmt.Errorf("qual: unknown qualifier %q", name)
		}
		if s.quals[i].Sign == Positive {
			e |= 1 << uint(i)
		}
	}
	// Negative qualifiers not listed are absent, which is their top.
	for i, q := range s.quals {
		if q.Sign == Negative && !contains(present, q.Name) {
			e |= 1 << uint(i)
		}
	}
	return e, nil
}

// MustElem is Elem but panics on error.
func (s *Set) MustElem(present ...string) Elem {
	e, err := s.Elem(present...)
	if err != nil {
		panic(err)
	}
	return e
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// Has reports whether the named qualifier is present in e.
func (s *Set) Has(e Elem, name string) bool {
	i, ok := s.index[name]
	if !ok {
		return false
	}
	bit := e&(1<<uint(i)) != 0
	if s.quals[i].Sign == Positive {
		return bit
	}
	return !bit
}

// With returns e with the named qualifier made present. It fails on
// unknown names.
func (s *Set) With(e Elem, name string) (Elem, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("qual: unknown qualifier %q", name)
	}
	if s.quals[i].Sign == Positive {
		return e | 1<<uint(i), nil
	}
	return e &^ (1 << uint(i)), nil
}

// Without returns e with the named qualifier made absent.
func (s *Set) Without(e Elem, name string) (Elem, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("qual: unknown qualifier %q", name)
	}
	if s.quals[i].Sign == Positive {
		return e &^ (1 << uint(i)), nil
	}
	return e | 1<<uint(i), nil
}

// Not returns the element written ¬q in the paper: the greatest lattice
// element in which q is absent. For a positive qualifier it is the
// natural upper bound for assertions such as e|¬const ("e must not be
// const"); for a negative qualifier it degenerates to ⊤ (use Require to
// demand a negative qualifier instead).
func (s *Set) Not(name string) (Elem, error) {
	return s.Without(s.Top(), name)
}

// Require returns the greatest lattice element in which q is present: the
// natural upper bound for assertions that demand a negative qualifier,
// such as e|nonzero ("e must be nonzero"). For a positive qualifier it
// degenerates to ⊤.
func (s *Set) Require(name string) (Elem, error) {
	return s.With(s.Top(), name)
}

// MustRequire is Require but panics on error.
func (s *Set) MustRequire(name string) Elem {
	e, err := s.Require(name)
	if err != nil {
		panic(err)
	}
	return e
}

// MustNot is Not but panics on error.
func (s *Set) MustNot(name string) Elem {
	e, err := s.Not(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Only returns the least lattice element in which q is present: ⊥ with q
// turned on. It is the natural lower bound for annotations such as
// "const e".
func (s *Set) Only(name string) (Elem, error) {
	return s.With(s.Bottom(), name)
}

// MustOnly is Only but panics on error.
func (s *Set) MustOnly(name string) Elem {
	e, err := s.Only(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Mask returns the sub-lattice mask selecting exactly the named
// components. Masks parameterize per-component constraints (used, for
// example, by binding-time well-formedness rules that relate only the
// dynamic component of two qualifier sets).
func (s *Set) Mask(names ...string) (Elem, error) {
	var m Elem
	for _, name := range names {
		i, ok := s.index[name]
		if !ok {
			return 0, fmt.Errorf("qual: unknown qualifier %q", name)
		}
		m |= 1 << uint(i)
	}
	return m, nil
}

// MustMask is Mask but panics on error.
func (s *Set) MustMask(names ...string) Elem {
	m, err := s.Mask(names...)
	if err != nil {
		panic(err)
	}
	return m
}

// FullMask selects every component of the lattice.
func (s *Set) FullMask() Elem { return s.Top() }

// Leq reports a ⊑ b in the product lattice.
func Leq(a, b Elem) bool { return a&^b == 0 }

// Join returns a ⊔ b.
func Join(a, b Elem) Elem { return a | b }

// Meet returns a ⊓ b.
func Meet(a, b Elem) Elem { return a & b }

// LeqMask reports a ⊑ b restricted to the components in mask.
func LeqMask(a, b, mask Elem) bool { return (a&mask)&^(b&mask) == 0 }

// String renders e as the space-separated list of present qualifiers, the
// notation used throughout the paper (absent qualifiers are omitted). The
// bottom-of-everything element renders as "⊥-ish" empty string; Format
// callers typically want Describe instead.
func (s *Set) String(e Elem) string {
	var parts []string
	for _, q := range s.quals {
		if s.Has(e, q.Name) {
			parts = append(parts, q.Name)
		}
	}
	return strings.Join(parts, " ")
}

// Describe renders e unambiguously, writing absent qualifiers of either
// sign explicitly when verbose diagnostics are needed.
func (s *Set) Describe(e Elem) string {
	return s.DescribeMask(e, s.Top())
}

// DescribeMask renders only the components of e selected by mask. It is
// the Describe for diagnostics about masked constraints: in a product
// lattice shared by several analyses, a conflict on one component should
// not drag the other analyses' qualifiers into the message.
func (s *Set) DescribeMask(e, mask Elem) string {
	var parts []string
	for i, q := range s.quals {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if s.Has(e, q.Name) {
			parts = append(parts, q.Name)
		} else {
			parts = append(parts, q.negLabel())
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// negLabel is how the qualifier's absent state is spelled in diagnostics.
func (q Qualifier) negLabel() string {
	if q.NegName != "" {
		return q.NegName
	}
	return "¬" + q.Name
}

// Parse interprets a space-separated list of qualifier names as the
// lattice element with exactly those qualifiers present.
func (s *Set) Parse(text string) (Elem, error) {
	fields := strings.Fields(text)
	return s.Elem(fields...)
}

// Elems enumerates every element of the lattice in an order consistent
// with ⊑ (a appears before b whenever a ⊏ b). It is intended for small
// lattices (tests, lattice diagrams); the result has 2^Len entries.
func (s *Set) Elems() []Elem {
	n := uint(len(s.quals))
	out := make([]Elem, 0, 1<<n)
	for v := uint64(0); v < 1<<n; v++ {
		out = append(out, Elem(v))
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := popcount(out[i]), popcount(out[j])
		if pi != pj {
			return pi < pj
		}
		return out[i] < out[j]
	})
	return out
}

func popcount(e Elem) int {
	n := 0
	for v := uint64(e); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Covers reports whether b covers a in the lattice: a ⊏ b with no element
// strictly between. In the product of two-point lattices this holds
// exactly when b is a with one additional bit.
func Covers(a, b Elem) bool {
	d := uint64(b &^ a)
	return a != b && uint64(a)&^uint64(b) == 0 && d&(d-1) == 0
}

// HasseEdges returns all covering pairs (a, b) of the lattice, the edge
// set of its Hasse diagram (Figure 2 of the paper is the diagram for
// {const, dynamic, nonzero}). Intended for small lattices.
func (s *Set) HasseEdges() [][2]Elem {
	elems := s.Elems()
	var edges [][2]Elem
	for _, a := range elems {
		for _, b := range elems {
			if Covers(a, b) {
				edges = append(edges, [2]Elem{a, b})
			}
		}
	}
	return edges
}

// HasseDiagram renders the lattice level by level, bottom first, one line
// per rank, with the covering relation listed underneath. It reproduces
// the information content of Figure 2.
func (s *Set) HasseDiagram() string {
	elems := s.Elems()
	byRank := make(map[int][]Elem)
	maxRank := 0
	for _, e := range elems {
		r := popcount(e)
		byRank[r] = append(byRank[r], e)
		if r > maxRank {
			maxRank = r
		}
	}
	var b strings.Builder
	for r := maxRank; r >= 0; r-- {
		var names []string
		for _, e := range byRank[r] {
			n := s.String(e)
			if n == "" {
				n = "∅"
			}
			names = append(names, n)
		}
		fmt.Fprintf(&b, "rank %d: %s\n", r, strings.Join(names, "   |   "))
	}
	b.WriteString("covers:\n")
	for _, edge := range s.HasseEdges() {
		lo, hi := s.String(edge[0]), s.String(edge[1])
		if lo == "" {
			lo = "∅"
		}
		if hi == "" {
			hi = "∅"
		}
		fmt.Fprintf(&b, "  %s ⊏ %s\n", lo, hi)
	}
	return b.String()
}
