package qual_test

import (
	"fmt"

	"repro/internal/qual"
)

// The qualifier lattice of the paper's Figure 2: positive const and
// dynamic, negative nonzero.
func ExampleSet() {
	set := qual.MustSet(
		qual.Qualifier{Name: "const", Sign: qual.Positive},
		qual.Qualifier{Name: "dynamic", Sign: qual.Positive},
		qual.Qualifier{Name: "nonzero", Sign: qual.Negative},
	)
	fmt.Println("⊥ =", set.String(set.Bottom()))
	fmt.Println("⊤ =", set.String(set.Top()))
	a := set.MustElem("const", "nonzero")
	b := set.MustElem("const")
	fmt.Println("const nonzero ⊑ const:", qual.Leq(a, b))
	// Moving up the lattice adds positive qualifiers and removes
	// negative ones, so the join loses nonzero.
	fmt.Println("join:", set.String(qual.Join(a, set.MustElem("dynamic"))))
	// Output:
	// ⊥ = nonzero
	// ⊤ = const dynamic
	// const nonzero ⊑ const: true
	// join: const dynamic
}

func ExampleSet_Not() {
	set := qual.MustSet(qual.Qualifier{Name: "const", Sign: qual.Positive})
	notConst := set.MustNot("const")
	fmt.Println("plain ⊑ ¬const:", qual.Leq(set.MustElem(), notConst))
	fmt.Println("const ⊑ ¬const:", qual.Leq(set.MustElem("const"), notConst))
	// Output:
	// plain ⊑ ¬const: true
	// const ⊑ ¬const: false
}
