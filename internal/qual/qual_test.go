package qual

import (
	"strings"
	"testing"
	"testing/quick"
)

// fig2 is the qualifier set of Figure 2 in the paper: positive const and
// dynamic, negative nonzero.
func fig2(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet(
		Qualifier{Name: "const", Sign: Positive},
		Qualifier{Name: "dynamic", Sign: Positive},
		Qualifier{Name: "nonzero", Sign: Negative},
	)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestNewSetErrors(t *testing.T) {
	if _, err := NewSet(Qualifier{Name: "", Sign: Positive}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSet(
		Qualifier{Name: "const", Sign: Positive},
		Qualifier{Name: "const", Sign: Negative},
	); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewSet(Qualifier{Name: "x", Sign: Sign(7)}); err == nil {
		t.Error("invalid sign accepted")
	}
	many := make([]Qualifier, MaxQualifiers+1)
	for i := range many {
		many[i] = Qualifier{Name: strings.Repeat("q", i+1), Sign: Positive}
	}
	if _, err := NewSet(many...); err == nil {
		t.Error("too many qualifiers accepted")
	}
}

func TestMustSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSet did not panic on invalid input")
		}
	}()
	MustSet(Qualifier{Name: "", Sign: Positive})
}

func TestExactly64Qualifiers(t *testing.T) {
	quals := make([]Qualifier, 64)
	for i := range quals {
		quals[i] = Qualifier{Name: strings.Repeat("q", i+1), Sign: Positive}
	}
	s, err := NewSet(quals...)
	if err != nil {
		t.Fatalf("NewSet with 64 qualifiers: %v", err)
	}
	if s.Top() != Elem(^uint64(0)) {
		t.Errorf("Top = %x, want all ones", uint64(s.Top()))
	}
	if !Leq(s.Bottom(), s.Top()) {
		t.Error("⊥ ⊑ ⊤ fails at width 64")
	}
}

func TestBottomTopOrdering(t *testing.T) {
	s := fig2(t)
	for _, e := range s.Elems() {
		if !Leq(s.Bottom(), e) {
			t.Errorf("⊥ ⊑ %s fails", s.Describe(e))
		}
		if !Leq(e, s.Top()) {
			t.Errorf("%s ⊑ ⊤ fails", s.Describe(e))
		}
	}
}

func TestSignSemantics(t *testing.T) {
	s := fig2(t)
	// Bottom: positive qualifiers absent, negative present.
	if s.Has(s.Bottom(), "const") || s.Has(s.Bottom(), "dynamic") {
		t.Error("positive qualifier present at ⊥")
	}
	if !s.Has(s.Bottom(), "nonzero") {
		t.Error("negative qualifier absent at ⊥")
	}
	// Top: positive present, negative absent.
	if !s.Has(s.Top(), "const") || !s.Has(s.Top(), "dynamic") {
		t.Error("positive qualifier absent at ⊤")
	}
	if s.Has(s.Top(), "nonzero") {
		t.Error("negative qualifier present at ⊤")
	}
	// Moving up the lattice adds positive qualifiers and removes negative
	// ones (paper, discussion of Figure 2).
	nz := s.MustElem("nonzero")
	plain := s.MustElem()
	if !Leq(nz, plain) {
		t.Error("nonzero int ⋢ int: negative qualifier must lower the element")
	}
	cst := s.MustElem("const")
	if !Leq(plain, cst) {
		t.Error("int ⋢ const int: positive qualifier must raise the element")
	}
}

func TestElemHasRoundTrip(t *testing.T) {
	s := fig2(t)
	cases := [][]string{
		{},
		{"const"},
		{"dynamic"},
		{"nonzero"},
		{"const", "nonzero"},
		{"const", "dynamic"},
		{"dynamic", "nonzero"},
		{"const", "dynamic", "nonzero"},
	}
	for _, present := range cases {
		e, err := s.Elem(present...)
		if err != nil {
			t.Fatalf("Elem(%v): %v", present, err)
		}
		for _, q := range s.Qualifiers() {
			want := false
			for _, p := range present {
				if p == q.Name {
					want = true
				}
			}
			if got := s.Has(e, q.Name); got != want {
				t.Errorf("Elem(%v): Has(%q) = %v, want %v", present, q.Name, got, want)
			}
		}
	}
}

func TestElemUnknown(t *testing.T) {
	s := fig2(t)
	if _, err := s.Elem("volatile"); err == nil {
		t.Error("unknown qualifier accepted by Elem")
	}
	if _, err := s.With(0, "volatile"); err == nil {
		t.Error("unknown qualifier accepted by With")
	}
	if _, err := s.Without(0, "volatile"); err == nil {
		t.Error("unknown qualifier accepted by Without")
	}
	if _, err := s.Mask("volatile"); err == nil {
		t.Error("unknown qualifier accepted by Mask")
	}
	if s.Has(0, "volatile") {
		t.Error("Has reports unknown qualifier present")
	}
}

func TestWithWithout(t *testing.T) {
	s := fig2(t)
	for _, e := range s.Elems() {
		for _, q := range s.Qualifiers() {
			w, err := s.With(e, q.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Has(w, q.Name) {
				t.Errorf("With(%s, %s) lacks %s", s.Describe(e), q.Name, q.Name)
			}
			wo, err := s.Without(e, q.Name)
			if err != nil {
				t.Fatal(err)
			}
			if s.Has(wo, q.Name) {
				t.Errorf("Without(%s, %s) still has %s", s.Describe(e), q.Name, q.Name)
			}
			// With must move up for positive qualifiers and down for
			// negative ones; Without the reverse.
			if q.Sign == Positive {
				if !Leq(e, w) || !Leq(wo, e) {
					t.Errorf("positive With/Without not monotone at %s", s.Describe(e))
				}
			} else {
				if !Leq(w, e) || !Leq(e, wo) {
					t.Errorf("negative With/Without not antitone at %s", s.Describe(e))
				}
			}
		}
	}
}

func TestNotOnly(t *testing.T) {
	s := fig2(t)
	nc := s.MustNot("const")
	if s.Has(nc, "const") {
		t.Error("¬const has const")
	}
	// ¬const must be the greatest element without const: every element
	// lacking const is ⊑ ¬const.
	for _, e := range s.Elems() {
		if !s.Has(e, "const") && !Leq(e, nc) {
			t.Errorf("%s lacks const but ⋢ ¬const", s.Describe(e))
		}
		if s.Has(e, "const") && Leq(e, nc) {
			t.Errorf("%s has const but ⊑ ¬const", s.Describe(e))
		}
	}
	oc := s.MustOnly("const")
	for _, e := range s.Elems() {
		if s.Has(e, "const") && !Leq(oc, e) {
			t.Errorf("%s has const but ⋣ only-const", s.Describe(e))
		}
		if !s.Has(e, "const") && Leq(oc, e) {
			t.Errorf("%s lacks const but ⊒ only-const", s.Describe(e))
		}
	}
	// For a negative qualifier, ¬q degenerates to ⊤ and Require(q) plays
	// the bounding role: e ⊑ Require(nonzero) iff e has nonzero.
	if s.MustNot("nonzero") != s.Top() {
		t.Error("¬nonzero must be ⊤ for a negative qualifier")
	}
	rnz := s.MustRequire("nonzero")
	for _, e := range s.Elems() {
		if s.Has(e, "nonzero") != Leq(e, rnz) {
			t.Errorf("Require(nonzero) misclassifies %s", s.Describe(e))
		}
	}
	// And Require degenerates to ⊤ for a positive qualifier.
	if s.MustRequire("const") != s.Top() {
		t.Error("Require(const) must be ⊤ for a positive qualifier")
	}
}

func TestLatticeLaws(t *testing.T) {
	s := fig2(t)
	elems := s.Elems()
	for _, a := range elems {
		if !Leq(a, a) {
			t.Fatalf("reflexivity fails at %s", s.Describe(a))
		}
		for _, b := range elems {
			if Leq(a, b) && Leq(b, a) && a != b {
				t.Fatalf("antisymmetry fails at %s, %s", s.Describe(a), s.Describe(b))
			}
			j, m := Join(a, b), Meet(a, b)
			if !Leq(a, j) || !Leq(b, j) {
				t.Fatalf("join not an upper bound for %s, %s", s.Describe(a), s.Describe(b))
			}
			if !Leq(m, a) || !Leq(m, b) {
				t.Fatalf("meet not a lower bound for %s, %s", s.Describe(a), s.Describe(b))
			}
			for _, c := range elems {
				if Leq(a, b) && Leq(b, c) && !Leq(a, c) {
					t.Fatalf("transitivity fails")
				}
				if Leq(a, c) && Leq(b, c) && !Leq(j, c) {
					t.Fatalf("join not least upper bound")
				}
				if Leq(c, a) && Leq(c, b) && !Leq(c, m) {
					t.Fatalf("meet not greatest lower bound")
				}
			}
		}
	}
}

func TestLatticeLawsQuick(t *testing.T) {
	mask := uint64(1)<<16 - 1
	assoc := func(a, b, c uint64) bool {
		x, y, z := Elem(a&mask), Elem(b&mask), Elem(c&mask)
		return Join(Join(x, y), z) == Join(x, Join(y, z)) &&
			Meet(Meet(x, y), z) == Meet(x, Meet(y, z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	absorb := func(a, b uint64) bool {
		x, y := Elem(a&mask), Elem(b&mask)
		return Join(x, Meet(x, y)) == x && Meet(x, Join(x, y)) == x
	}
	if err := quick.Check(absorb, nil); err != nil {
		t.Error(err)
	}
	orderFromOps := func(a, b uint64) bool {
		x, y := Elem(a&mask), Elem(b&mask)
		return Leq(x, y) == (Join(x, y) == y) && Leq(x, y) == (Meet(x, y) == x)
	}
	if err := quick.Check(orderFromOps, nil); err != nil {
		t.Error(err)
	}
}

func TestLeqMask(t *testing.T) {
	s := fig2(t)
	dyn := s.MustMask("dynamic")
	a := s.MustElem("const", "dynamic")
	b := s.MustElem("dynamic", "nonzero")
	if Leq(a, b) {
		t.Fatal("precondition: a ⋢ b in the full lattice")
	}
	if !LeqMask(a, b, dyn) {
		t.Error("a ⊑ b must hold restricted to the dynamic component")
	}
	c := s.MustElem("const")
	if LeqMask(a, c, dyn) {
		t.Error("dynamic component of a must exceed that of c")
	}
}

func TestStringAndDescribe(t *testing.T) {
	s := fig2(t)
	e := s.MustElem("const", "nonzero")
	if got := s.String(e); got != "const nonzero" {
		t.Errorf("String = %q, want %q", got, "const nonzero")
	}
	if got := s.String(s.MustElem()); got != "" {
		t.Errorf("String(no qualifiers) = %q, want empty", got)
	}
	d := s.Describe(e)
	for _, want := range []string{"const", "¬dynamic", "nonzero"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe = %q missing %q", d, want)
		}
	}
	empty := MustSet()
	if got := empty.Describe(0); got != "{}" {
		t.Errorf("empty set Describe = %q", got)
	}
}

func TestParse(t *testing.T) {
	s := fig2(t)
	e, err := s.Parse("  const   nonzero ")
	if err != nil {
		t.Fatal(err)
	}
	if e != s.MustElem("const", "nonzero") {
		t.Errorf("Parse mismatch: %s", s.Describe(e))
	}
	if _, err := s.Parse("const bogus"); err == nil {
		t.Error("Parse accepted unknown qualifier")
	}
	if e, err := s.Parse(""); err != nil || e != s.MustElem() {
		t.Errorf("Parse(\"\") = %v, %v", e, err)
	}
}

func TestElemsOrderedByRank(t *testing.T) {
	s := fig2(t)
	elems := s.Elems()
	if len(elems) != 8 {
		t.Fatalf("Elems returned %d elements, want 8", len(elems))
	}
	seen := make(map[Elem]bool)
	for i, e := range elems {
		if seen[e] {
			t.Fatalf("duplicate element at %d", i)
		}
		seen[e] = true
		// Topological: no later element may be strictly below an earlier one.
		for _, f := range elems[:i] {
			if Leq(e, f) && e != f {
				t.Errorf("element %s appears after %s but is below it", s.Describe(e), s.Describe(f))
			}
		}
	}
}

func TestCovers(t *testing.T) {
	s := fig2(t)
	elems := s.Elems()
	for _, a := range elems {
		for _, b := range elems {
			// Brute-force covering relation.
			want := a != b && Leq(a, b)
			if want {
				for _, c := range elems {
					if c != a && c != b && Leq(a, c) && Leq(c, b) {
						want = false
					}
				}
			}
			if got := Covers(a, b); got != want {
				t.Errorf("Covers(%s, %s) = %v, want %v", s.Describe(a), s.Describe(b), got, want)
			}
		}
	}
}

// TestFigure2Lattice checks the structure of the paper's Figure 2: the
// lattice over {const, dynamic, nonzero} has 8 elements, 12 covering
// edges, bottom "nonzero" and top "const dynamic".
func TestFigure2Lattice(t *testing.T) {
	s := fig2(t)
	if got := len(s.Elems()); got != 8 {
		t.Errorf("lattice size = %d, want 8", got)
	}
	edges := s.HasseEdges()
	if len(edges) != 12 {
		t.Errorf("Hasse edge count = %d, want 12 (cube)", len(edges))
	}
	if got := s.String(s.Bottom()); got != "nonzero" {
		t.Errorf("⊥ = %q, want %q", got, "nonzero")
	}
	if got := s.String(s.Top()); got != "const dynamic" {
		t.Errorf("⊤ = %q, want %q", got, "const dynamic")
	}
	diagram := s.HasseDiagram()
	for _, want := range []string{"rank 3", "rank 0: nonzero", "const dynamic", "covers:"} {
		if !strings.Contains(diagram, want) {
			t.Errorf("HasseDiagram missing %q:\n%s", want, diagram)
		}
	}
}

func TestSignString(t *testing.T) {
	if Positive.String() != "positive" || Negative.String() != "negative" {
		t.Error("Sign.String mismatch")
	}
	if got := Sign(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown sign string = %q", got)
	}
}
