package cfront

import "testing"

// FuzzLexer: the lexer must terminate on every input — either reaching
// EOF or reporting a positioned syntax error — and must make progress on
// every token so a hostile input cannot wedge the front end.
func FuzzLexer(f *testing.F) {
	f.Add("int main(void) { return 0; }\n")
	f.Add(`char *s = "str with \"escape\" and \n";`)
	f.Add("/* unterminated comment")
	f.Add("\"unterminated string")
	f.Add("'c' 'x 0x1f 1e9 .5 ... -> <<= >>= ++ --")
	f.Add("#include <stdio.h>\nint x;\n")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, src string) {
		l := NewLexer("fuzz.c", src)
		// Tokens are at least one byte wide, so len(src)+1 Next calls
		// must reach EOF or an error; more means the lexer is stuck.
		for i := 0; i <= len(src); i++ {
			tok, err := l.Next()
			if err != nil {
				se, ok := err.(*SyntaxError)
				if !ok {
					t.Fatalf("non-syntax error %T: %v", err, err)
				}
				if se.Pos.Line < 1 || se.Pos.Col < 1 {
					t.Fatalf("error without position: %v", err)
				}
				return
			}
			if tok.Kind == EOF {
				return
			}
		}
		t.Fatalf("lexer did not terminate within %d tokens", len(src)+1)
	})
}
