// Package cfront is a C front end for the const-inference experiment of
// Section 4 of "A Theory of Type Qualifiers" (PLDI 1999): a lexer,
// recursive-descent parser and AST for a realistic subset of ANSI C —
// declarations with full declarator syntax, typedefs, structs, unions,
// enums, the complete expression grammar with casts and sizeof, all
// statements, variadic functions, and the const/volatile qualifiers.
//
// Preprocessor directives are skipped line-wise (the analysis consumes
// preprocessed or preprocessor-free sources, as the paper's experiments
// effectively did).
package cfront

import "fmt"

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// TokKind enumerates C token kinds.
type TokKind int

// Token kinds.
const (
	EOF TokKind = iota
	IDENT
	INTLIT
	FLOATLIT
	CHARLIT
	STRLIT

	// Keywords.
	kwAuto
	kwBreak
	kwCase
	kwChar
	kwConst
	kwContinue
	kwDefault
	kwDo
	kwDouble
	kwElse
	kwEnum
	kwExtern
	kwFloat
	kwFor
	kwGoto
	kwIf
	kwInt
	kwLong
	kwRegister
	kwReturn
	kwShort
	kwSigned
	kwSizeof
	kwStatic
	kwStruct
	kwSwitch
	kwTypedef
	kwUnion
	kwUnsigned
	kwVoid
	kwVolatile
	kwWhile

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	ELLIPSIS // ...
	DOT      // .
	ARROW    // ->
	INC      // ++
	DEC      // --
	AMP      // &
	STAR     // *
	PLUS     // +
	MINUS    // -
	TILDE    // ~
	NOT      // !
	SLASH    // /
	PERCENT  // %
	SHL      // <<
	SHR      // >>
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NE       // !=
	CARET    // ^
	PIPE     // |
	ANDAND   // &&
	OROR     // ||
	QUESTION // ?
	COLON    // :
	ASSIGN   // =
	MULEQ    // *=
	DIVEQ    // /=
	MODEQ    // %=
	ADDEQ    // +=
	SUBEQ    // -=
	SHLEQ    // <<=
	SHREQ    // >>=
	ANDEQ    // &=
	XOREQ    // ^=
	OREQ     // |=
)

var keywords = map[string]TokKind{
	"auto": kwAuto, "break": kwBreak, "case": kwCase, "char": kwChar,
	"const": kwConst, "continue": kwContinue, "default": kwDefault,
	"do": kwDo, "double": kwDouble, "else": kwElse, "enum": kwEnum,
	"extern": kwExtern, "float": kwFloat, "for": kwFor, "goto": kwGoto,
	"if": kwIf, "int": kwInt, "long": kwLong, "register": kwRegister,
	"return": kwReturn, "short": kwShort, "signed": kwSigned,
	"sizeof": kwSizeof, "static": kwStatic, "struct": kwStruct,
	"switch": kwSwitch, "typedef": kwTypedef, "union": kwUnion,
	"unsigned": kwUnsigned, "void": kwVoid, "volatile": kwVolatile,
	"while": kwWhile,
}

var tokNames = map[TokKind]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal", CHARLIT: "character literal", STRLIT: "string literal",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LBRACK: "'['", RBRACK: "']'", SEMI: "';'", COMMA: "','",
	ELLIPSIS: "'...'", DOT: "'.'", ARROW: "'->'", INC: "'++'", DEC: "'--'",
	AMP: "'&'", STAR: "'*'", PLUS: "'+'", MINUS: "'-'", TILDE: "'~'",
	NOT: "'!'", SLASH: "'/'", PERCENT: "'%'", SHL: "'<<'", SHR: "'>>'",
	LT: "'<'", GT: "'>'", LE: "'<='", GE: "'>='", EQ: "'=='", NE: "'!='",
	CARET: "'^'", PIPE: "'|'", ANDAND: "'&&'", OROR: "'||'",
	QUESTION: "'?'", COLON: "':'", ASSIGN: "'='",
	MULEQ: "'*='", DIVEQ: "'/='", MODEQ: "'%='", ADDEQ: "'+='",
	SUBEQ: "'-='", SHLEQ: "'<<='", SHREQ: "'>>='", ANDEQ: "'&='",
	XOREQ: "'^='", OREQ: "'|='",
}

func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	for text, kw := range keywords {
		if kw == k {
			return "'" + text + "'"
		}
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// SyntaxError is a lexing or parsing error with a source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}
