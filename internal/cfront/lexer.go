package cfront

import (
	"strings"
	"unicode"
)

// Lexer tokenizes C source. Preprocessor directives are skipped one line
// at a time (with backslash continuations honored).
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(i int) byte {
	if l.off+i >= len(l.src) {
		return 0
	}
	return l.src[l.off+i]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skip consumes whitespace, comments, and preprocessor lines. It reports
// an error for unterminated block comments.
func (l *Lexer) skip() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &SyntaxError{Pos: start, Msg: "unterminated comment"}
			}
		case c == '#' && l.col == l.lineIndentCol():
			// Preprocessor directive: skip to end of line, honoring
			// backslash-newline continuations.
			for l.off < len(l.src) {
				c := l.advance()
				if c == '\\' && l.peek() == '\n' {
					l.advance()
					continue
				}
				if c == '\n' {
					break
				}
			}
		default:
			return nil
		}
	}
	return nil
}

// lineIndentCol returns the column of the first non-blank character on
// the current line if the lexer is positioned at it; directives are
// recognized only at the start of a line (allowing leading whitespace).
func (l *Lexer) lineIndentCol() int {
	// Walk back from the current offset to the line start and check that
	// everything before is whitespace.
	i := l.off - 1
	col := l.col
	for i >= 0 && l.src[i] != '\n' {
		if l.src[i] != ' ' && l.src[i] != '\t' {
			return -1
		}
		i--
	}
	return col
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skip(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: p}, nil

	case isDigit(c) || c == '.' && isDigit(l.peekAt(1)):
		return l.number(p)

	case c == '\'':
		return l.charLit(p)

	case c == '"':
		return l.strLit(p)
	}

	// Operators and punctuation, longest match first.
	three := l.slice(3)
	switch three {
	case "...", "<<=", ">>=":
		l.advanceN(3)
		kinds := map[string]TokKind{"...": ELLIPSIS, "<<=": SHLEQ, ">>=": SHREQ}
		return Token{Kind: kinds[three], Text: three, Pos: p}, nil
	}
	two := l.slice(2)
	twoKinds := map[string]TokKind{
		"->": ARROW, "++": INC, "--": DEC, "<<": SHL, ">>": SHR,
		"<=": LE, ">=": GE, "==": EQ, "!=": NE, "&&": ANDAND, "||": OROR,
		"*=": MULEQ, "/=": DIVEQ, "%=": MODEQ, "+=": ADDEQ, "-=": SUBEQ,
		"&=": ANDEQ, "^=": XOREQ, "|=": OREQ,
	}
	if k, ok := twoKinds[two]; ok {
		l.advanceN(2)
		return Token{Kind: k, Text: two, Pos: p}, nil
	}
	oneKinds := map[byte]TokKind{
		'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE,
		'[': LBRACK, ']': RBRACK, ';': SEMI, ',': COMMA, '.': DOT,
		'&': AMP, '*': STAR, '+': PLUS, '-': MINUS, '~': TILDE, '!': NOT,
		'/': SLASH, '%': PERCENT, '<': LT, '>': GT, '^': CARET, '|': PIPE,
		'?': QUESTION, ':': COLON, '=': ASSIGN,
	}
	if k, ok := oneKinds[c]; ok {
		l.advance()
		return Token{Kind: k, Text: string(rune(c)), Pos: p}, nil
	}
	return Token{}, &SyntaxError{Pos: p, Msg: "unexpected character " + strings.TrimSpace(string(rune(c)))}
}

func (l *Lexer) slice(n int) string {
	if l.off+n > len(l.src) {
		return ""
	}
	return l.src[l.off : l.off+n]
}

func (l *Lexer) advanceN(n int) {
	for i := 0; i < n; i++ {
		l.advance()
	}
}

func (l *Lexer) number(p Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advanceN(2)
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peekAt(1)
			if isDigit(next) || (next == '+' || next == '-') && isDigit(l.peekAt(2)) {
				isFloat = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: u, l, ul, ll, f…
	for {
		c := l.peek()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			l.advance()
			continue
		}
		if isFloat && (c == 'f' || c == 'F') {
			l.advance()
			continue
		}
		break
	}
	kind := INTLIT
	if isFloat {
		kind = FLOATLIT
	}
	return Token{Kind: kind, Text: l.src[start:l.off], Pos: p}, nil
}

func (l *Lexer) charLit(p Pos) (Token, error) {
	start := l.off
	l.advance() // '
	for l.off < len(l.src) {
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			l.advance()
			continue
		}
		if c == '\'' {
			return Token{Kind: CHARLIT, Text: l.src[start:l.off], Pos: p}, nil
		}
		if c == '\n' {
			break
		}
	}
	return Token{}, &SyntaxError{Pos: p, Msg: "unterminated character literal"}
}

func (l *Lexer) strLit(p Pos) (Token, error) {
	start := l.off
	l.advance() // "
	for l.off < len(l.src) {
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			l.advance()
			continue
		}
		if c == '"' {
			return Token{Kind: STRLIT, Text: l.src[start:l.off], Pos: p}, nil
		}
		if c == '\n' {
			break
		}
	}
	return Token{}, &SyntaxError{Pos: p, Msg: "unterminated string literal"}
}

// Tokenize lexes the entire input, mainly for tests.
func Tokenize(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
