package cfront

// This file defines the C AST produced by the parser: external
// declarations, statements and expressions, all carrying positions.

// File is one parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
	// EnumConsts maps enumerator names seen in this unit to their values.
	EnumConsts map[string]int64
}

// StorageClass is the declaration storage class.
type StorageClass int

// Storage classes.
const (
	SCNone StorageClass = iota
	SCTypedef
	SCExtern
	SCStatic
	SCAuto
	SCRegister
)

func (s StorageClass) String() string {
	switch s {
	case SCNone:
		return ""
	case SCTypedef:
		return "typedef"
	case SCExtern:
		return "extern"
	case SCStatic:
		return "static"
	case SCAuto:
		return "auto"
	case SCRegister:
		return "register"
	default:
		return "storage?"
	}
}

// Decl is an external declaration.
type Decl interface {
	DeclPos() Pos
	isDecl()
}

// FuncDecl is a function definition or prototype (Body == nil).
type FuncDecl struct {
	Name    string
	Type    *Type // always TFunc
	Storage StorageClass
	Body    *Block // nil for a prototype
	Pos     Pos
}

// VarDecl is a global or local variable declaration.
type VarDecl struct {
	Name    string
	Type    *Type
	Storage StorageClass
	Init    Expr // may be nil
	Pos     Pos
}

// TypedefDecl records a typedef (also entered into the parser's table).
type TypedefDecl struct {
	Name string
	Type *Type
	Pos  Pos
}

// TagDecl is a standalone struct/union/enum definition.
type TagDecl struct {
	Type *Type
	Pos  Pos
}

// DeclPos returns the declaration's source position.
func (d *FuncDecl) DeclPos() Pos { return d.Pos }

// DeclPos returns the declaration's source position.
func (d *VarDecl) DeclPos() Pos { return d.Pos }

// DeclPos returns the declaration's source position.
func (d *TypedefDecl) DeclPos() Pos { return d.Pos }

// DeclPos returns the declaration's source position.
func (d *TagDecl) DeclPos() Pos { return d.Pos }

func (*FuncDecl) isDecl()    {}
func (*VarDecl) isDecl()     {}
func (*TypedefDecl) isDecl() {}
func (*TagDecl) isDecl()     {}

// Stmt is a statement.
type Stmt interface {
	StmtPos() Pos
	isStmt()
}

// Block is a compound statement.
type Block struct {
	Items []Stmt
	Pos   Pos
}

// DeclStmt wraps local declarations appearing in a block.
type DeclStmt struct {
	Decls []Decl // VarDecl or TypedefDecl or TagDecl
	Pos   Pos
}

// ExprStmt is an expression statement.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Pos Pos }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Pos  Pos
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil. Init may be a
// DeclStmt (C99 style) or an ExprStmt.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// ReturnStmt returns from a function; Value may be nil.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// BreakStmt breaks a loop or switch.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues a loop.
type ContinueStmt struct{ Pos Pos }

// GotoStmt jumps to a label.
type GotoStmt struct {
	Label string
	Pos   Pos
}

// LabelStmt is a labelled statement.
type LabelStmt struct {
	Label string
	Stmt  Stmt
	Pos   Pos
}

// SwitchStmt is a switch; its body is typically a Block containing
// CaseStmt-labelled statements.
type SwitchStmt struct {
	Tag  Expr
	Body Stmt
	Pos  Pos
}

// CaseStmt is "case e:" or "default:" (Value nil) followed by a
// statement.
type CaseStmt struct {
	Value Expr // nil for default
	Stmt  Stmt
	Pos   Pos
}

// StmtPos returns the statement's source position.
func (s *Block) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *DeclStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ExprStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *EmptyStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *IfStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *WhileStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *DoWhileStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ForStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *BreakStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *GotoStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *LabelStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *SwitchStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *CaseStmt) StmtPos() Pos { return s.Pos }

func (*Block) isStmt()        {}
func (*DeclStmt) isStmt()     {}
func (*ExprStmt) isStmt()     {}
func (*EmptyStmt) isStmt()    {}
func (*IfStmt) isStmt()       {}
func (*WhileStmt) isStmt()    {}
func (*DoWhileStmt) isStmt()  {}
func (*ForStmt) isStmt()      {}
func (*ReturnStmt) isStmt()   {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}
func (*GotoStmt) isStmt()     {}
func (*LabelStmt) isStmt()    {}
func (*SwitchStmt) isStmt()   {}
func (*CaseStmt) isStmt()     {}

// Expr is an expression.
type Expr interface {
	ExprPos() Pos
	isExpr()
}

// Ident is a name reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer constant (value unparsed; Text preserved).
type IntLit struct {
	Text string
	Val  int64
	Pos  Pos
}

// FloatLit is a floating constant.
type FloatLit struct {
	Text string
	Pos  Pos
}

// CharLit is a character constant.
type CharLit struct {
	Text string
	Pos  Pos
}

// StrLit is a string literal (adjacent literals concatenated).
type StrLit struct {
	Text string
	Pos  Pos
}

// UnaryOp enumerates prefix operators.
type UnaryOp int

// Unary operators.
const (
	UNeg   UnaryOp = iota // -
	UPlus                 // +
	UNot                  // !
	UBNot                 // ~
	UDeref                // *
	UAddr                 // &
	UPreInc
	UPreDec
)

var unaryNames = map[UnaryOp]string{
	UNeg: "-", UPlus: "+", UNot: "!", UBNot: "~", UDeref: "*", UAddr: "&",
	UPreInc: "++", UPreDec: "--",
}

func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a prefix operation.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// Postfix is x++ or x--.
type Postfix struct {
	Op  UnaryOp // UPreInc/UPreDec reused as the operator identity
	X   Expr
	Pos Pos
}

// BinaryOp enumerates infix operators (assignment separate).
type BinaryOp int

// Binary operators.
const (
	BMul BinaryOp = iota
	BDiv
	BMod
	BAdd
	BSub
	BShl
	BShr
	BLt
	BGt
	BLe
	BGe
	BEq
	BNe
	BAnd
	BXor
	BOr
	BLAnd
	BLOr
)

var binaryNames = map[BinaryOp]string{
	BMul: "*", BDiv: "/", BMod: "%", BAdd: "+", BSub: "-",
	BShl: "<<", BShr: ">>", BLt: "<", BGt: ">", BLe: "<=", BGe: ">=",
	BEq: "==", BNe: "!=", BAnd: "&", BXor: "^", BOr: "|",
	BLAnd: "&&", BLOr: "||",
}

func (op BinaryOp) String() string { return binaryNames[op] }

// Binary is an infix operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
	Pos  Pos
}

// AssignExpr is "lhs op= rhs"; Op is BinaryOp(-1) for plain assignment.
type AssignExpr struct {
	Op   BinaryOp // -1 for '='
	L, R Expr
	Pos  Pos
}

// PlainAssign marks AssignExpr.Op for simple '='.
const PlainAssign BinaryOp = -1

// Cond is the ternary operator.
type Cond struct {
	C, T, F Expr
	Pos     Pos
}

// Call is a function call.
type Call struct {
	Fn   Expr
	Args []Expr
	Pos  Pos
}

// Index is array subscripting a[i].
type Index struct {
	X, I Expr
	Pos  Pos
}

// Member is x.f or x->f.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
	Pos   Pos
}

// Cast is an explicit cast (T)e.
type Cast struct {
	To  *Type
	X   Expr
	Pos Pos
}

// SizeofType is sizeof(T).
type SizeofType struct {
	T   *Type
	Pos Pos
}

// SizeofExpr is sizeof e.
type SizeofExpr struct {
	X   Expr
	Pos Pos
}

// Comma is the comma operator.
type Comma struct {
	L, R Expr
	Pos  Pos
}

// InitList is a braced initializer { e1, e2, … }.
type InitList struct {
	Items []Expr
	Pos   Pos
}

// ExprPos returns the expression's source position.
func (e *InitList) ExprPos() Pos { return e.Pos }

func (*InitList) isExpr() {}

// ExprPos returns the expression's source position.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *IntLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *FloatLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *CharLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *StrLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Unary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Postfix) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Binary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *AssignExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Cond) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Call) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Index) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Member) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Cast) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *SizeofType) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *SizeofExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Comma) ExprPos() Pos { return e.Pos }

func (*Ident) isExpr()      {}
func (*IntLit) isExpr()     {}
func (*FloatLit) isExpr()   {}
func (*CharLit) isExpr()    {}
func (*StrLit) isExpr()     {}
func (*Unary) isExpr()      {}
func (*Postfix) isExpr()    {}
func (*Binary) isExpr()     {}
func (*AssignExpr) isExpr() {}
func (*Cond) isExpr()       {}
func (*Call) isExpr()       {}
func (*Index) isExpr()      {}
func (*Member) isExpr()     {}
func (*Cast) isExpr()       {}
func (*SizeofType) isExpr() {}
func (*SizeofExpr) isExpr() {}
func (*Comma) isExpr()      {}
