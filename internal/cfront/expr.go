package cfront

// Expression parsing: the complete C expression grammar, precedence
// climbing from comma down to primary.

func (p *Parser) parseExpr() (Expr, error) {
	e, err := p.parseAssignment()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == COMMA {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAssignment()
		if err != nil {
			return nil, err
		}
		e = &Comma{L: e, R: r, Pos: pos}
	}
	return e, nil
}

var assignOps = map[TokKind]BinaryOp{
	ASSIGN: PlainAssign,
	MULEQ:  BMul, DIVEQ: BDiv, MODEQ: BMod, ADDEQ: BAdd, SUBEQ: BSub,
	SHLEQ: BShl, SHREQ: BShr, ANDEQ: BAnd, XOREQ: BXor, OREQ: BOr,
}

func (p *Parser) parseAssignment() (Expr, error) {
	l, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	if op, ok := assignOps[p.tok.Kind]; ok {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAssignment()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op, L: l, R: r, Pos: pos}, nil
	}
	return l, nil
}

func (p *Parser) parseConditional() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != QUESTION {
		return c, nil
	}
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	f, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, T: t, F: f, Pos: pos}, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]struct {
	tok TokKind
	op  BinaryOp
}{
	{{OROR, BLOr}},
	{{ANDAND, BLAnd}},
	{{PIPE, BOr}},
	{{CARET, BXor}},
	{{AMP, BAnd}},
	{{EQ, BEq}, {NE, BNe}},
	{{LT, BLt}, {GT, BGt}, {LE, BLe}, {GE, BGe}},
	{{SHL, BShl}, {SHR, BShr}},
	{{PLUS, BAdd}, {MINUS, BSub}},
	{{STAR, BMul}, {SLASH, BDiv}, {PERCENT, BMod}},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseCastExpr()
	}
	e, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range binLevels[level] {
			if p.tok.Kind == cand.tok {
				pos := p.tok.Pos
				if err := p.next(); err != nil {
					return nil, err
				}
				r, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				e = &Binary{Op: cand.op, L: e, R: r, Pos: pos}
				matched = true
				break
			}
		}
		if !matched {
			return e, nil
		}
	}
}

// parseCastExpr handles "(type-name) cast-expr" versus parenthesized
// expressions.
func (p *Parser) parseCastExpr() (Expr, error) {
	if p.tok.Kind == LPAREN && p.parenIsTypeName() {
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		x, err := p.parseCastExpr()
		if err != nil {
			return nil, err
		}
		return &Cast{To: t, X: x, Pos: pos}, nil
	}
	return p.parseUnary()
}

// parenIsTypeName looks one token past '(' to decide cast vs expression.
func (p *Parser) parenIsTypeName() bool {
	saved := *p.lex
	savedTok := p.tok
	defer func() { *p.lex = saved; p.tok = savedTok }()
	if p.next() != nil {
		return false
	}
	switch p.tok.Kind {
	case kwVoid, kwChar, kwInt, kwLong, kwShort, kwSigned, kwUnsigned,
		kwFloat, kwDouble, kwConst, kwVolatile, kwStruct, kwUnion, kwEnum:
		return true
	case IDENT:
		_, ok := p.typedefs[p.tok.Text]
		return ok
	default:
		return false
	}
}

// parseTypeName parses a type-name (declaration-specifiers plus an
// abstract declarator), used in casts and sizeof.
func (p *Parser) parseTypeName() (*Type, error) {
	ds, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	if ds.storage != SCNone {
		return nil, p.errf("storage class in type name")
	}
	name, typ, _, err := p.parseDeclarator(ds.base, true)
	if err != nil {
		return nil, err
	}
	if name != "" {
		return nil, p.errf("unexpected name %q in type name", name)
	}
	return typ, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case INC, DEC:
		op := UPreInc
		if p.tok.Kind == DEC {
			op = UPreDec
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x, Pos: pos}, nil
	case AMP, STAR, PLUS, MINUS, TILDE, NOT:
		ops := map[TokKind]UnaryOp{
			AMP: UAddr, STAR: UDeref, PLUS: UPlus, MINUS: UNeg,
			TILDE: UBNot, NOT: UNot,
		}
		op := ops[p.tok.Kind]
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseCastExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x, Pos: pos}, nil
	case kwSizeof:
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == LPAREN && p.parenIsTypeName() {
			if err := p.next(); err != nil {
				return nil, err
			}
			t, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return &SizeofType{T: t, Pos: pos}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{X: x, Pos: pos}, nil
	default:
		return p.parsePostfix()
	}
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.tok.Pos
		switch p.tok.Kind {
		case LBRACK:
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Index{X: e, I: idx, Pos: pos}
		case LPAREN:
			if err := p.next(); err != nil {
				return nil, err
			}
			var args []Expr
			for p.tok.Kind != RPAREN {
				a, err := p.parseAssignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.Kind != COMMA {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			e = &Call{Fn: e, Args: args, Pos: pos}
		case DOT, ARROW:
			arrow := p.tok.Kind == ARROW
			if err := p.next(); err != nil {
				return nil, err
			}
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Name: name.Text, Arrow: arrow, Pos: pos}
		case INC, DEC:
			op := UPreInc
			if p.tok.Kind == DEC {
				op = UPreDec
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			e = &Postfix{Op: op, X: e, Pos: pos}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case IDENT:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Ident{Name: name, Pos: pos}, nil
	case INTLIT:
		text := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &IntLit{Text: text, Val: parseIntText(text), Pos: pos}, nil
	case FLOATLIT:
		text := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &FloatLit{Text: text, Pos: pos}, nil
	case CHARLIT:
		text := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &CharLit{Text: text, Pos: pos}, nil
	case STRLIT:
		text := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		// Adjacent string literals concatenate.
		for p.tok.Kind == STRLIT {
			text = text[:len(text)-1] + p.tok.Text[1:]
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		return &StrLit{Text: text, Pos: pos}, nil
	case LPAREN:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, found %s %q", p.tok.Kind, p.tok.Text)
	}
}
