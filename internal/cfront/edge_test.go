package cfront

import (
	"strings"
	"testing"
)

func TestEvalConstOperators(t *testing.T) {
	src := `
		enum e {
			A = 1 + 2,
			B = 10 - 3,
			C = 4 * 5,
			D = 20 / 4,
			E = 20 % 6,
			F = 1 << 4,
			G = 64 >> 2,
			H = 12 & 10,
			I = 12 | 3,
			J = 12 ^ 10,
			K = -5,
			L = +5,
			M = ~0,
			N = !0,
			O = !7,
			P = 'a',
			Q = A + B,
		};
		int arr[A];`
	f := parse(t, src)
	want := map[string]int64{
		"A": 3, "B": 7, "C": 20, "D": 5, "E": 2, "F": 16, "G": 16,
		"H": 8, "I": 15, "J": 6, "K": -5, "L": 5, "M": -1, "N": 1, "O": 0,
		"P": 'a', "Q": 10,
	}
	for name, w := range want {
		if got, ok := f.EnumConsts[name]; !ok || got != w {
			t.Errorf("enum %s = %d (ok=%v), want %d", name, got, ok, w)
		}
	}
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "arr" && v.Type.ArrayLen != 3 {
			t.Errorf("arr length %d", v.Type.ArrayLen)
		}
	}
}

func TestEvalConstNonConstant(t *testing.T) {
	// Array sizes that cannot be evaluated stay unknown (-1) instead of
	// failing the parse.
	f := parse(t, "extern int n; int arr[n + 1];")
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "arr" {
			if v.Type.ArrayLen != -1 {
				t.Errorf("arr length %d, want -1 (unknown)", v.Type.ArrayLen)
			}
		}
	}
	// Division and modulo by zero are not constant.
	f = parse(t, "enum z { BAD = 5 / 0, WORSE = 5 % 0, NEXT };")
	// Values are unspecified but parsing must succeed and NEXT exists.
	if _, ok := f.EnumConsts["NEXT"]; !ok {
		t.Error("NEXT missing")
	}
}

func TestParseIntTextForms(t *testing.T) {
	cases := map[string]int64{
		"0":                  0,
		"42":                 42,
		"0x1F":               31,
		"0X10":               16,
		"017":                15, // octal
		"42u":                42,
		"42UL":               42,
		"42ull":              42,
		"1234567890":         1234567890,
		"0xFFFFFFFFFFFFFFFF": -1, // saturates through uint64
	}
	for text, want := range cases {
		if got := parseIntText(text); got != want {
			t.Errorf("parseIntText(%q) = %d, want %d", text, got, want)
		}
	}
}

func TestLexerNumericForms(t *testing.T) {
	toks, err := Tokenize("t.c", "1.5f 2e10 3.14e-2 0x1F 017 10UL 1e+5 1.f")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{FLOATLIT, FLOATLIT, FLOATLIT, INTLIT, INTLIT, INTLIT, FLOATLIT, FLOATLIT, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
	// "1.e" with no exponent digits: 1. then identifier? Our lexer treats
	// e without digits as the end of the number.
	toks, err = Tokenize("t.c", "1.e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != FLOATLIT || toks[1].Kind != IDENT {
		t.Errorf("1.e lexed as %v", toks)
	}
}

func TestLocalTypedefAndTag(t *testing.T) {
	f := parse(t, `
		int g(void) {
			typedef int counter;
			struct pt { int x, y; };
			counter c = 0;
			struct pt p;
			p.x = 1;
			p.y = 2;
			c += p.x;
			return c + p.y;
		}`)
	fd := f.Decls[0].(*FuncDecl)
	found := 0
	for _, it := range fd.Body.Items {
		if ds, ok := it.(*DeclStmt); ok {
			for _, d := range ds.Decls {
				switch d.(type) {
				case *TypedefDecl, *TagDecl:
					found++
				}
			}
		}
	}
	if found < 2 {
		t.Errorf("local typedef/tag decls found: %d", found)
	}
}

func TestTypeStrings(t *testing.T) {
	for k, want := range map[TypeKind]string{
		TVoid: "void", TChar: "char", TInt: "int", TFloat: "float",
		TPointer: "pointer", TArray: "array", TFunc: "function",
		TStruct: "struct", TEnum: "enum",
	} {
		if k.String() != want {
			t.Errorf("TypeKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(TypeKind(99).String(), "99") {
		t.Error("unknown TypeKind string")
	}
	st := &StructType{Tag: "s"}
	if st.String() != "struct s" {
		t.Errorf("struct String = %q", st.String())
	}
	u := &StructType{Union: true, ID: 7}
	if !strings.Contains(u.String(), "union") || !strings.Contains(u.String(), "7") {
		t.Errorf("anon union String = %q", u.String())
	}
	f := parse(t, "enum tag { X }; enum tag e; float fl; void *vp; int fn(void);")
	var rendered []string
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok {
			rendered = append(rendered, v.Type.String())
		}
		if fd, ok := d.(*FuncDecl); ok {
			rendered = append(rendered, fd.Type.String())
		}
	}
	joined := strings.Join(rendered, ";")
	for _, want := range []string{"enum tag", "float", "ptr(void)", "fn() int"} {
		if !strings.Contains(joined, want) {
			t.Errorf("type strings %q missing %q", joined, want)
		}
	}
}

func TestPosAccessors(t *testing.T) {
	f := parse(t, `
		typedef int t;
		struct s { int x; };
		int v = 1;
		int fn(int a) {
			int loc;
			;
			loc = a;
			if (a) loc++; else loc--;
			while (a) break;
			do continue; while (0);
			for (;;) break;
			switch (a) { case 1: break; default: break; }
			lab: goto lab2;
			lab2: return loc;
		}`)
	for _, d := range f.Decls {
		if !d.DeclPos().IsValid() {
			t.Errorf("%T has invalid position", d)
		}
	}
	fd := f.Decls[len(f.Decls)-1].(*FuncDecl)
	var walk func(Stmt)
	walk = func(s Stmt) {
		if s == nil {
			return
		}
		if !s.StmtPos().IsValid() {
			t.Errorf("%T has invalid position", s)
		}
		switch s := s.(type) {
		case *Block:
			for _, it := range s.Items {
				walk(it)
			}
		case *IfStmt:
			walk(s.Then)
			walk(s.Else)
		case *WhileStmt:
			walk(s.Body)
		case *DoWhileStmt:
			walk(s.Body)
		case *ForStmt:
			walk(s.Init)
			walk(s.Body)
		case *SwitchStmt:
			walk(s.Body)
		case *CaseStmt:
			walk(s.Stmt)
		case *LabelStmt:
			walk(s.Stmt)
		}
	}
	walk(fd.Body)
	var zero Pos
	if zero.IsValid() {
		t.Error("zero position valid")
	}
	if got := (Pos{Line: 2, Col: 3}).String(); got != "2:3" {
		t.Errorf("Pos.String = %q", got)
	}
}

func TestExprPosAccessors(t *testing.T) {
	f := parse(t, `
		struct s { int f; };
		int g(struct s *p, int a[]) {
			int x = (a[0], -a[1] + p->f * sizeof(int) - sizeof a);
			x = a[0] ? (int)1.5 : x++;
			return x;
		}`)
	fd := f.Decls[1].(*FuncDecl)
	var walkE func(Expr)
	walkE = func(e Expr) {
		if e == nil {
			return
		}
		if !e.ExprPos().IsValid() {
			t.Errorf("%T has invalid position", e)
		}
		switch e := e.(type) {
		case *Unary:
			walkE(e.X)
		case *Postfix:
			walkE(e.X)
		case *Binary:
			walkE(e.L)
			walkE(e.R)
		case *AssignExpr:
			walkE(e.L)
			walkE(e.R)
		case *Cond:
			walkE(e.C)
			walkE(e.T)
			walkE(e.F)
		case *Call:
			walkE(e.Fn)
		case *Index:
			walkE(e.X)
			walkE(e.I)
		case *Member:
			walkE(e.X)
		case *Cast:
			walkE(e.X)
		case *SizeofExpr:
			walkE(e.X)
		case *Comma:
			walkE(e.L)
			walkE(e.R)
		case *InitList:
			for _, it := range e.Items {
				walkE(it)
			}
		}
	}
	var walkS func(Stmt)
	walkS = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			for _, it := range s.Items {
				walkS(it)
			}
		case *DeclStmt:
			for _, d := range s.Decls {
				if v, ok := d.(*VarDecl); ok && v.Init != nil {
					walkE(v.Init)
				}
			}
		case *ExprStmt:
			walkE(s.X)
		case *ReturnStmt:
			walkE(s.Value)
		}
	}
	walkS(fd.Body)
}

func TestMultiDimAndMixedDeclarators(t *testing.T) {
	f := parse(t, `
		char grid[4][8];
		int *a, b, **c, d[2];
		const volatile int cv;
	`)
	types := map[string]string{}
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok {
			types[v.Name] = v.Type.String()
		}
	}
	wants := map[string]string{
		"grid": "array[4](array[8](char))",
		"a":    "ptr(int)",
		"b":    "int",
		"c":    "ptr(ptr(int))",
		"d":    "array[2](int)",
		"cv":   "const volatile int",
	}
	for name, want := range wants {
		if types[name] != want {
			t.Errorf("%s: %s, want %s", name, types[name], want)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	for _, k := range []TokKind{EOF, IDENT, INTLIT, STRLIT, LPAREN, ELLIPSIS,
		SHLEQ, ARROW, kwConst, kwStruct, kwWhile} {
		if k.String() == "" {
			t.Errorf("TokKind %d has empty string", k)
		}
	}
	if !strings.Contains(TokKind(999).String(), "999") {
		t.Error("unknown TokKind string")
	}
}

func TestParserEnumConstantsAccessor(t *testing.T) {
	p := &Parser{enums: map[string]int64{"X": 3}}
	if p.EnumConstants()["X"] != 3 {
		t.Error("EnumConstants accessor broken")
	}
}

func TestCommaAndConditionalInDeclarations(t *testing.T) {
	f := parse(t, `
		int pick(int c) {
			int x = c ? 1 : 2, y = (c, 3);
			return x + y;
		}`)
	fd := f.Decls[0].(*FuncDecl)
	ds := fd.Body.Items[0].(*DeclStmt)
	if len(ds.Decls) != 2 {
		t.Fatalf("decls: %d", len(ds.Decls))
	}
	if _, ok := ds.Decls[0].(*VarDecl).Init.(*Cond); !ok {
		t.Error("x init not a conditional")
	}
}

func TestStringEscapes(t *testing.T) {
	f := parse(t, `char *s = "a\"b\\c\n";`)
	v := f.Decls[0].(*VarDecl)
	lit, ok := v.Init.(*StrLit)
	if !ok {
		t.Fatalf("init %T", v.Init)
	}
	if !strings.Contains(lit.Text, `\"`) {
		t.Errorf("escape lost: %q", lit.Text)
	}
}

func TestPointerToFunctionParams(t *testing.T) {
	f := parse(t, "void qsort(void *base, unsigned long n, unsigned long sz, int (*cmp)(const void *, const void *));")
	fd := f.Decls[0].(*FuncDecl)
	cmp := fd.Type.Params[3].Type
	if cmp.String() != "ptr(fn(ptr(const void), ptr(const void)) int)" {
		t.Errorf("cmp: %s", cmp)
	}
	// Round trip through the printer.
	if got := TypeDecl("qsort", fd.Type); !strings.Contains(got, "int (*cmp)(const void *, const void *)") {
		t.Errorf("TypeDecl = %q", got)
	}
}
