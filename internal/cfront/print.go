package cfront

import (
	"fmt"
	"strings"
)

// This file renders the C AST back to compilable source: types in real
// declarator syntax (inside-out, with parentheses where pointers meet
// arrays or functions), declarations, statements and expressions. The
// printer supports the parser's round-trip tests and the const-inference
// output that re-declares functions with their inferred qualifiers.

// TypeDecl renders a declaration of name with type t in C declarator
// syntax, e.g. ("f", fn(int)→ptr(int)) ⇒ "int *f(int)". An empty name
// yields an abstract declarator (for casts).
func TypeDecl(name string, t *Type) string {
	base, decl := declParts(name, t)
	if decl == "" {
		return base
	}
	return base + " " + decl
}

// declParts splits a declaration into base-specifier text and declarator
// text.
func declParts(name string, t *Type) (string, string) {
	decl := name
	for {
		switch t.Kind {
		case TPointer:
			q := t.Quals.String()
			if q != "" {
				q += " "
			}
			decl = "*" + q + decl
			t = t.Elem
			// Pointer to array or function needs parentheses.
			if t.Kind == TArray || t.Kind == TFunc {
				decl = "(" + decl + ")"
			}
		case TArray:
			if t.ArrayLen >= 0 {
				decl = fmt.Sprintf("%s[%d]", decl, t.ArrayLen)
			} else {
				decl += "[]"
			}
			t = t.Elem
		case TFunc:
			var ps []string
			for _, p := range t.Params {
				ps = append(ps, TypeDecl(p.Name, p.Type))
			}
			if t.Variadic {
				ps = append(ps, "...")
			}
			if len(ps) == 0 {
				ps = []string{"void"}
			}
			decl += "(" + strings.Join(ps, ", ") + ")"
			t = t.Ret
		default:
			base := baseName(t)
			if q := t.Quals.String(); q != "" {
				base = q + " " + base
			}
			return base, decl
		}
	}
}

func baseName(t *Type) string {
	switch t.Kind {
	case TStruct:
		return structName(t.Struct)
	case TEnum:
		if t.EnumTag != "" {
			return "enum " + t.EnumTag
		}
		return "int"
	default:
		if t.Spelling != "" {
			return t.Spelling
		}
		return t.Kind.String()
	}
}

// structName names a struct for printing; anonymous structs get a
// synthetic tag derived from their identity so that printed programs
// reparse.
func structName(st *StructType) string {
	kw := "struct"
	if st.Union {
		kw = "union"
	}
	if st.Tag != "" {
		return kw + " " + st.Tag
	}
	return fmt.Sprintf("%s __anon%d", kw, st.ID)
}

// PrintFile renders a whole translation unit. Struct definitions that the
// source carried inside typedefs or declarations are emitted as standalone
// definitions before first use, so the output reparses completely.
func PrintFile(f *File) string {
	p := &printer{emitted: make(map[*StructType]bool)}
	for _, d := range f.Decls {
		p.emitStructsOf(declType(d))
		p.decl(d)
	}
	return p.b.String()
}

func declType(d Decl) *Type {
	switch d := d.(type) {
	case *FuncDecl:
		return d.Type
	case *VarDecl:
		return d.Type
	case *TypedefDecl:
		return d.Type
	case *TagDecl:
		return d.Type
	default:
		return nil
	}
}

type printer struct {
	b       strings.Builder
	indent  int
	emitted map[*StructType]bool
}

// emitStructsOf prints the definitions of any complete structs reachable
// from t that have not been printed yet.
func (p *printer) emitStructsOf(t *Type) {
	if t == nil {
		return
	}
	p.emitStructsOf(t.Elem)
	p.emitStructsOf(t.Ret)
	for _, param := range t.Params {
		p.emitStructsOf(param.Type)
	}
	if t.Kind == TStruct && t.Struct != nil && t.Struct.Complete && !p.emitted[t.Struct] {
		p.emitted[t.Struct] = true
		// Fields may reference other structs; emit those first (pointers
		// to the struct being defined are fine in C).
		for _, fld := range t.Struct.Fields {
			if fld.Type.Kind != TPointer {
				p.emitStructsOf(fld.Type)
			}
		}
		p.line("%s {", structName(t.Struct))
		p.indent++
		for _, fld := range t.Struct.Fields {
			p.line("%s;", TypeDecl(fld.Name, fld.Type))
		}
		p.indent--
		p.line("};")
	}
}

func (p *printer) pf(format string, args ...interface{}) {
	fmt.Fprintf(&p.b, format, args...)
}

func (p *printer) line(format string, args ...interface{}) {
	p.pf("%s", strings.Repeat("\t", p.indent))
	p.pf(format, args...)
	p.pf("\n")
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *FuncDecl:
		storage := d.Storage.String()
		if storage != "" {
			storage += " "
		}
		if d.Body == nil {
			p.line("%s%s;", storage, TypeDecl(d.Name, d.Type))
			return
		}
		p.line("%s%s", storage, TypeDecl(d.Name, d.Type))
		p.block(d.Body)
		p.pf("\n")
	case *VarDecl:
		p.varDecl(d)
	case *TypedefDecl:
		p.line("typedef %s;", TypeDecl(d.Name, d.Type))
	case *TagDecl:
		p.tagDecl(d.Type)
	}
}

func (p *printer) varDecl(d *VarDecl) {
	storage := d.Storage.String()
	if storage != "" {
		storage += " "
	}
	if d.Init != nil {
		p.line("%s%s = %s;", storage, TypeDecl(d.Name, d.Type), ExprString(d.Init))
	} else {
		p.line("%s%s;", storage, TypeDecl(d.Name, d.Type))
	}
}

func (p *printer) tagDecl(t *Type) {
	// Complete struct definitions were emitted by emitStructsOf; print a
	// reference declaration for anything else (incomplete tags, enums).
	if t.Kind == TStruct && t.Struct != nil && p.emitted[t.Struct] {
		return
	}
	if t.Kind == TEnum && len(t.Enumerators) > 0 {
		tag := t.EnumTag
		if tag != "" {
			tag = " " + tag
		}
		var items []string
		for _, e := range t.Enumerators {
			items = append(items, fmt.Sprintf("%s = %d", e.Name, e.Value))
		}
		p.line("enum%s { %s };", tag, strings.Join(items, ", "))
		return
	}
	p.line("%s;", baseName(t))
}

func (p *printer) block(b *Block) {
	p.line("{")
	p.indent++
	for _, s := range b.Items {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.block(s)
	case *DeclStmt:
		for _, d := range s.Decls {
			p.emitStructsOf(declType(d))
			p.decl(d)
		}
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	case *EmptyStmt:
		p.line(";")
	case *IfStmt:
		p.line("if (%s)", ExprString(s.Cond))
		p.nested(s.Then)
		if s.Else != nil {
			p.line("else")
			p.nested(s.Else)
		}
	case *WhileStmt:
		p.line("while (%s)", ExprString(s.Cond))
		p.nested(s.Body)
	case *DoWhileStmt:
		p.line("do")
		p.nested(s.Body)
		p.line("while (%s);", ExprString(s.Cond))
	case *ForStmt:
		init := ""
		switch is := s.Init.(type) {
		case nil:
		case *ExprStmt:
			init = ExprString(is.X)
		default:
			// Declaration initializers are hoisted above the loop to stay
			// within the ANSI subset.
			p.stmt(s.Init)
		}
		cond, post := "", ""
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		if s.Post != nil {
			post = ExprString(s.Post)
		}
		p.line("for (%s; %s; %s)", init, cond, post)
		p.nested(s.Body)
	case *ReturnStmt:
		if s.Value != nil {
			p.line("return %s;", ExprString(s.Value))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *GotoStmt:
		p.line("goto %s;", s.Label)
	case *LabelStmt:
		p.line("%s:", s.Label)
		p.stmt(s.Stmt)
	case *SwitchStmt:
		p.line("switch (%s)", ExprString(s.Tag))
		p.nested(s.Body)
	case *CaseStmt:
		if s.Value != nil {
			p.line("case %s:", ExprString(s.Value))
		} else {
			p.line("default:")
		}
		p.stmt(s.Stmt)
	}
}

func (p *printer) nested(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

// Expression precedence levels for minimal parenthesization.
const (
	precComma = iota
	precAssign
	precCond
	precLOr
	precLAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAddSub
	precMulDiv
	precCast
	precUnary
	precPostfix
	precPrimary
)

func binPrec(op BinaryOp) int {
	switch op {
	case BLOr:
		return precLOr
	case BLAnd:
		return precLAnd
	case BOr:
		return precBitOr
	case BXor:
		return precBitXor
	case BAnd:
		return precBitAnd
	case BEq, BNe:
		return precEq
	case BLt, BGt, BLe, BGe:
		return precRel
	case BShl, BShr:
		return precShift
	case BAdd, BSub:
		return precAddSub
	default:
		return precMulDiv
	}
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	var b strings.Builder
	printExpr(&b, e, precComma)
	return b.String()
}

func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *Comma:
		return precComma
	case *AssignExpr:
		return precAssign
	case *Cond:
		return precCond
	case *Binary:
		return binPrec(e.Op)
	case *Cast:
		return precCast
	case *Unary:
		return precUnary
	case *SizeofExpr, *SizeofType:
		return precUnary
	case *Postfix, *Call, *Index, *Member:
		return precPostfix
	default:
		return precPrimary
	}
}

func printExpr(b *strings.Builder, e Expr, min int) {
	if exprPrec(e) < min {
		b.WriteString("(")
		printExpr(b, e, precComma)
		b.WriteString(")")
		return
	}
	switch e := e.(type) {
	case *Ident:
		b.WriteString(e.Name)
	case *IntLit:
		b.WriteString(e.Text)
	case *FloatLit:
		b.WriteString(e.Text)
	case *CharLit:
		b.WriteString(e.Text)
	case *StrLit:
		b.WriteString(e.Text)
	case *Unary:
		b.WriteString(e.Op.String())
		// Guard -(-x) and &(&x) from fusing into -- and &&.
		if inner, ok := e.X.(*Unary); ok && inner.Op == e.Op && (e.Op == UNeg || e.Op == UAddr || e.Op == UPlus) {
			b.WriteString("(")
			printExpr(b, e.X, precComma)
			b.WriteString(")")
			return
		}
		printExpr(b, e.X, precUnary)
	case *Postfix:
		printExpr(b, e.X, precPostfix)
		b.WriteString(e.Op.String())
	case *Binary:
		pr := binPrec(e.Op)
		printExpr(b, e.L, pr)
		b.WriteString(" " + e.Op.String() + " ")
		printExpr(b, e.R, pr+1)
	case *AssignExpr:
		printExpr(b, e.L, precCond)
		if e.Op == PlainAssign {
			b.WriteString(" = ")
		} else {
			b.WriteString(" " + e.Op.String() + "= ")
		}
		printExpr(b, e.R, precAssign)
	case *Cond:
		printExpr(b, e.C, precLOr)
		b.WriteString(" ? ")
		printExpr(b, e.T, precComma)
		b.WriteString(" : ")
		printExpr(b, e.F, precCond)
	case *Call:
		printExpr(b, e.Fn, precPostfix)
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a, precAssign)
		}
		b.WriteString(")")
	case *Index:
		printExpr(b, e.X, precPostfix)
		b.WriteString("[")
		printExpr(b, e.I, precComma)
		b.WriteString("]")
	case *Member:
		printExpr(b, e.X, precPostfix)
		if e.Arrow {
			b.WriteString("->")
		} else {
			b.WriteString(".")
		}
		b.WriteString(e.Name)
	case *Cast:
		b.WriteString("(" + TypeDecl("", e.To) + ")")
		printExpr(b, e.X, precCast)
	case *SizeofType:
		b.WriteString("sizeof(" + TypeDecl("", e.T) + ")")
	case *SizeofExpr:
		b.WriteString("sizeof ")
		printExpr(b, e.X, precUnary)
	case *Comma:
		printExpr(b, e.L, precAssign)
		b.WriteString(", ")
		printExpr(b, e.R, precAssign)
	case *InitList:
		b.WriteString("{ ")
		for i, item := range e.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, item, precAssign)
		}
		b.WriteString(" }")
	default:
		fmt.Fprintf(b, "/* ? %T */", e)
	}
}
