package cfront

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("t.c", `int x = 42; /* c */ // line
		char *s = "hi\n"; 'a' 0x1F 3.14 1e-3 10UL ... <<= >>= -> ++`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{kwInt, IDENT, ASSIGN, INTLIT, SEMI,
		kwChar, STAR, IDENT, ASSIGN, STRLIT, SEMI,
		CHARLIT, INTLIT, FLOATLIT, FLOATLIT, INTLIT,
		ELLIPSIS, SHLEQ, SHREQ, ARROW, INC, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerPreprocessorSkipped(t *testing.T) {
	toks, err := Tokenize("t.c", `
#include <stdio.h>
#define FOO(x) \
	((x) + 1)
int x;
  # pragma once
char c;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 7 { // int x ; char c ; EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", `"unterminated`, "'a", "$"} {
		if _, err := Tokenize("t.c", src); err == nil {
			t.Errorf("Tokenize(%q) succeeded", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("t.c", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestParseSimpleDecls(t *testing.T) {
	f := parse(t, `
		int x;
		const int y = 5;
		char *s;
		const char *cs;
		char * const pc;
		int arr[10];
		int m[3][4];
		unsigned long ul;
		double d;
		static int counter;
		extern int lib_fn(int, char *);
	`)
	byName := map[string]*VarDecl{}
	var fns []*FuncDecl
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			byName[d.Name] = d
		case *FuncDecl:
			fns = append(fns, d)
		}
	}
	if got := byName["x"].Type.String(); got != "int" {
		t.Errorf("x: %s", got)
	}
	if got := byName["y"].Type.String(); got != "const int" {
		t.Errorf("y: %s", got)
	}
	if byName["y"].Init == nil {
		t.Error("y has no initializer")
	}
	if got := byName["s"].Type.String(); got != "ptr(char)" {
		t.Errorf("s: %s", got)
	}
	if got := byName["cs"].Type.String(); got != "ptr(const char)" {
		t.Errorf("cs: %s", got)
	}
	if got := byName["pc"].Type.String(); got != "const ptr(char)" {
		t.Errorf("pc: %s", got)
	}
	if got := byName["arr"].Type.String(); got != "array[10](int)" {
		t.Errorf("arr: %s", got)
	}
	if got := byName["m"].Type.String(); got != "array[3](array[4](int))" {
		t.Errorf("m: %s", got)
	}
	if got := byName["ul"].Type.String(); got != "unsigned long" {
		t.Errorf("ul: %s", got)
	}
	if byName["counter"].Storage != SCStatic {
		t.Error("counter not static")
	}
	if len(fns) != 1 || fns[0].Name != "lib_fn" || fns[0].Body != nil {
		t.Fatalf("prototype wrong: %+v", fns)
	}
	if fns[0].Storage != SCExtern {
		t.Error("lib_fn not extern")
	}
	if got := fns[0].Type.String(); got != "fn(int, ptr(char)) int" {
		t.Errorf("lib_fn: %s", got)
	}
}

func TestParseComplexDeclarators(t *testing.T) {
	f := parse(t, `
		int *pf(void);
		int (*fp)(int);
		int (*fparr[4])(char);
		char **argv;
		const char * const * path;
		int (*(*ff)(int))(char);
	`)
	types := map[string]string{}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			types[d.Name] = d.Type.String()
		case *FuncDecl:
			types[d.Name] = d.Type.String()
		}
	}
	cases := map[string]string{
		"pf":    "fn() ptr(int)",
		"fp":    "ptr(fn(int) int)",
		"fparr": "array[4](ptr(fn(char) int))",
		"argv":  "ptr(ptr(char))",
		"path":  "ptr(const ptr(const char))",
		"ff":    "ptr(fn(int) ptr(fn(char) int))",
	}
	for name, want := range cases {
		if types[name] != want {
			t.Errorf("%s: got %s, want %s", name, types[name], want)
		}
	}
}

func TestParseFunctionDef(t *testing.T) {
	f := parse(t, `
		int add(int a, int b) {
			return a + b;
		}
	`)
	fd, ok := f.Decls[0].(*FuncDecl)
	if !ok {
		t.Fatalf("got %T", f.Decls[0])
	}
	if fd.Name != "add" || fd.Body == nil {
		t.Fatal("definition not recognized")
	}
	if len(fd.Type.Params) != 2 || fd.Type.Params[0].Name != "a" || fd.Type.Params[1].Name != "b" {
		t.Errorf("params: %+v", fd.Type.Params)
	}
	if len(fd.Body.Items) != 1 {
		t.Fatalf("body items: %d", len(fd.Body.Items))
	}
	ret, ok := fd.Body.Items[0].(*ReturnStmt)
	if !ok {
		t.Fatalf("got %T", fd.Body.Items[0])
	}
	bin, ok := ret.Value.(*Binary)
	if !ok || bin.Op != BAdd {
		t.Errorf("return value: %#v", ret.Value)
	}
}

func TestParseStructSharing(t *testing.T) {
	f := parse(t, `
		struct st { int x; char *name; };
		struct st a, b;
		struct st *p;
	`)
	var types []*Type
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok {
			types = append(types, v.Type)
		}
	}
	if len(types) != 3 {
		t.Fatalf("got %d vars", len(types))
	}
	sa, sb := types[0].Struct, types[1].Struct
	if sa == nil || sa != sb {
		t.Error("a and b do not share the struct definition")
	}
	if types[2].Kind != TPointer || types[2].Elem.Struct != sa {
		t.Error("p does not point to the shared struct")
	}
	if len(sa.Fields) != 2 || sa.Fields[1].Type.String() != "ptr(char)" {
		t.Errorf("fields: %+v", sa.Fields)
	}
	if !sa.Complete {
		t.Error("struct incomplete after definition")
	}
}

func TestParseIncompleteAndSelfRefStruct(t *testing.T) {
	f := parse(t, `
		struct node;
		struct node { int v; struct node *next; };
		struct list { struct node *head; };
	`)
	var node *StructType
	for _, d := range f.Decls {
		if td, ok := d.(*TagDecl); ok && td.Type.Struct != nil && td.Type.Struct.Tag == "node" {
			node = td.Type.Struct
		}
	}
	if node == nil {
		t.Fatal("node not found")
	}
	if !node.Complete {
		t.Error("node incomplete")
	}
	if node.Fields[1].Type.Elem.Struct != node {
		t.Error("self reference does not share definition")
	}
}

func TestParseUnionAndEnum(t *testing.T) {
	f := parse(t, `
		union u { int i; float f; };
		enum color { RED, GREEN = 5, BLUE };
		enum color c;
		union u uu;
	`)
	found := 0
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *TagDecl:
			if d.Type.Struct != nil && d.Type.Struct.Union {
				found++
			}
			if d.Type.Kind == TEnum {
				found++
			}
		case *VarDecl:
			if d.Name == "c" && d.Type.Kind == TEnum {
				found++
			}
			if d.Name == "uu" && d.Type.Kind == TStruct && d.Type.Struct.Union {
				found++
			}
		}
	}
	if found != 4 {
		t.Errorf("found %d of 4 expected declarations", found)
	}
}

func TestEnumConstantsEvaluated(t *testing.T) {
	p := &Parser{
		lex:      NewLexer("t.c", "enum e { A, B = 10, C, D = B + 5 }; int arr[D];"),
		typedefs: map[string]*Type{},
		tags:     map[string]*StructType{},
		enums:    map[string]int64{},
	}
	if err := p.next(); err != nil {
		t.Fatal(err)
	}
	var decls []Decl
	for p.tok.Kind != EOF {
		ds, err := p.parseExternalDecl()
		if err != nil {
			t.Fatal(err)
		}
		decls = append(decls, ds...)
	}
	wantConsts := map[string]int64{"A": 0, "B": 10, "C": 11, "D": 15}
	for name, want := range wantConsts {
		if got := p.enums[name]; got != want {
			t.Errorf("enum %s = %d, want %d", name, got, want)
		}
	}
	for _, d := range decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "arr" {
			if v.Type.ArrayLen != 15 {
				t.Errorf("arr length %d, want 15", v.Type.ArrayLen)
			}
		}
	}
}

func TestParseTypedef(t *testing.T) {
	f := parse(t, `
		typedef int *ip;
		ip c, d;
		typedef struct pair { int a, b; } pair_t;
		pair_t pp;
		typedef unsigned long size_type;
		size_type n;
	`)
	byName := map[string]*VarDecl{}
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok {
			byName[v.Name] = v
		}
	}
	if got := byName["c"].Type.String(); got != "ptr(int)" {
		t.Errorf("c: %s", got)
	}
	// Typedefs are macro-expanded: c and d have distinct type trees.
	if byName["c"].Type == byName["d"].Type {
		t.Error("c and d share a type tree; typedef must macro-expand")
	}
	// But struct definitions inside typedefs stay shared.
	if byName["pp"].Type.Struct == nil {
		t.Fatal("pp lost its struct")
	}
	if got := byName["n"].Type.String(); got != "unsigned long" {
		t.Errorf("n: %s", got)
	}
}

func TestParseStatements(t *testing.T) {
	f := parse(t, `
		int f(int n) {
			int i, sum = 0;
			for (i = 0; i < n; i++) sum += i;
			while (sum > 100) { sum /= 2; }
			do { sum--; } while (sum > 50);
			if (sum == 50) return sum; else sum = 0;
			switch (n) {
			case 0: return 1;
			case 1:
			case 2: sum = 2; break;
			default: break;
			}
			{ int shadow; shadow = 1; sum += shadow; }
			lbl: sum++;
			if (sum < 1000) goto lbl;
			for (;;) break;
			;
			return sum;
		}
	`)
	fd := f.Decls[0].(*FuncDecl)
	kinds := map[string]bool{}
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			kinds["block"] = true
			for _, it := range s.Items {
				walk(it)
			}
		case *DeclStmt:
			kinds["decl"] = true
		case *ForStmt:
			kinds["for"] = true
			walk(s.Body)
		case *WhileStmt:
			kinds["while"] = true
			walk(s.Body)
		case *DoWhileStmt:
			kinds["do"] = true
			walk(s.Body)
		case *IfStmt:
			kinds["if"] = true
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *SwitchStmt:
			kinds["switch"] = true
			walk(s.Body)
		case *CaseStmt:
			kinds["case"] = true
			walk(s.Stmt)
		case *LabelStmt:
			kinds["label"] = true
			walk(s.Stmt)
		case *GotoStmt:
			kinds["goto"] = true
		case *BreakStmt:
			kinds["break"] = true
		case *ContinueStmt:
			kinds["continue"] = true
		case *ReturnStmt:
			kinds["return"] = true
		case *ExprStmt:
			kinds["expr"] = true
		case *EmptyStmt:
			kinds["empty"] = true
		}
	}
	walk(fd.Body)
	for _, k := range []string{"block", "decl", "for", "while", "do", "if", "switch", "case", "label", "goto", "break", "return", "expr", "empty"} {
		if !kinds[k] {
			t.Errorf("statement kind %q not parsed", k)
		}
	}
}

func TestParseExpressions(t *testing.T) {
	f := parse(t, `
		struct s { int f; };
		int g(struct s *p, int a[], char *str) {
			int x = a[2] + p->f * 3 - (-1);
			x = x << 2 | x >> 1 & 7 ^ 2;
			x = x && 1 || 0;
			x = x < 1 ? p->f : a[0];
			x += sizeof(int) + sizeof x;
			x = (int)3.5;
			x = *str++ + str[1];
			x = (x, x + 1);
			(&x, *(&x));
			x = !x + ~x + -x + +x;
			++x; --x; x++; x--;
			x %= 3; x &= 1; x |= 2; x ^= 3; x <<= 1; x >>= 1; x *= 2; x /= 2; x -= 1;
			return g(p, a, "lit" "eral");
		}
	`)
	fd, ok := f.Decls[1].(*FuncDecl)
	if !ok || fd.Name != "g" {
		t.Fatal("g not parsed")
	}
	// Find the concatenated string literal.
	found := false
	var walkE func(Expr)
	walkS := func(s Stmt) {}
	walkE = func(e Expr) {
		switch e := e.(type) {
		case *StrLit:
			if e.Text == `"literal"` {
				found = true
			}
		case *Call:
			walkE(e.Fn)
			for _, a := range e.Args {
				walkE(a)
			}
		}
	}
	_ = walkS
	for _, it := range fd.Body.Items {
		if r, ok := it.(*ReturnStmt); ok {
			walkE(r.Value)
		}
	}
	if !found {
		t.Error("adjacent string literals not concatenated")
	}
}

func TestCastVsParen(t *testing.T) {
	f := parse(t, `
		typedef int myint;
		int h(int y) {
			int a = (myint)y;    /* cast via typedef */
			int b = (y) + 1;     /* parenthesized expr */
			char *p = (char *)0; /* pointer cast */
			return a + b + (int)*p;
		}
	`)
	fd := f.Decls[1].(*FuncDecl)
	ds := fd.Body.Items[0].(*DeclStmt)
	v := ds.Decls[0].(*VarDecl)
	if _, ok := v.Init.(*Cast); !ok {
		t.Errorf("a's initializer is %T, want *Cast", v.Init)
	}
	ds2 := fd.Body.Items[1].(*DeclStmt)
	v2 := ds2.Decls[0].(*VarDecl)
	if _, ok := v2.Init.(*Cast); ok {
		t.Error("(y)+1 parsed as a cast")
	}
	ds3 := fd.Body.Items[2].(*DeclStmt)
	v3 := ds3.Decls[0].(*VarDecl)
	c, ok := v3.Init.(*Cast)
	if !ok {
		t.Fatalf("p's initializer is %T", v3.Init)
	}
	if c.To.String() != "ptr(char)" {
		t.Errorf("cast type %s", c.To)
	}
}

func TestVariadicAndVoidParams(t *testing.T) {
	f := parse(t, `
		int printf(const char *fmt, ...);
		int nop(void);
		int bare();
	`)
	fns := map[string]*FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			fns[fd.Name] = fd
		}
	}
	if !fns["printf"].Type.Variadic {
		t.Error("printf not variadic")
	}
	if got := fns["printf"].Type.Params[0].Type.String(); got != "ptr(const char)" {
		t.Errorf("printf fmt: %s", got)
	}
	if len(fns["nop"].Type.Params) != 0 {
		t.Error("nop has params")
	}
	if len(fns["bare"].Type.Params) != 0 {
		t.Error("bare has params")
	}
}

func TestArrayParamDecay(t *testing.T) {
	f := parse(t, `void sort(int base[], int n);`)
	fd := f.Decls[0].(*FuncDecl)
	if got := fd.Type.Params[0].Type.String(); got != "ptr(int)" {
		t.Errorf("array param type %s, want ptr(int)", got)
	}
}

func TestInitializers(t *testing.T) {
	f := parse(t, `
		int a[3] = {1, 2, 3};
		struct p { int x, y; } pt = { 4, 5 };
		char *words[] = { "a", "b" };
	`)
	v := f.Decls[0].(*VarDecl)
	il, ok := v.Init.(*InitList)
	if !ok || len(il.Items) != 3 {
		t.Errorf("a init: %#v", v.Init)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int",
		"int x",
		"int x = ;",
		"int f( {",
		"struct { int x; }",
		"int f(void) { return }",
		"int f(void) { if (1) }",
		"@",
		"int f(void) { x ]; }",
		"typedef; int x;",
		"struct s { int x; }; struct s { int y; };", // redefinition
	}
	for _, src := range cases {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("file.c", "int x;\nint y = @;")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "file.c:2:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestRealisticProgram(t *testing.T) {
	// A miniature of the paper's benchmark style: string utilities with
	// const, structs, typedefs, library calls.
	f := parse(t, `
		typedef unsigned long size_t;
		extern size_t strlen(const char *s);
		extern char *strcpy(char *dst, const char *src);
		extern void *malloc(size_t n);

		struct buffer {
			char *data;
			size_t len;
			size_t cap;
		};

		static struct buffer *buf_new(size_t cap) {
			struct buffer *b = (struct buffer *)malloc(sizeof(struct buffer));
			b->data = (char *)malloc(cap);
			b->len = 0;
			b->cap = cap;
			return b;
		}

		int buf_append(struct buffer *b, const char *s) {
			size_t n = strlen(s);
			if (b->len + n >= b->cap)
				return -1;
			strcpy(b->data + b->len, s);
			b->len += n;
			return 0;
		}

		const char *buf_view(struct buffer *b) {
			return b->data;
		}

		int main(int argc, char **argv) {
			struct buffer *b = buf_new(128);
			int i;
			for (i = 1; i < argc; i++) {
				if (buf_append(b, argv[i]) < 0)
					break;
			}
			return (int)strlen(buf_view(b));
		}
	`)
	var fns []string
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			fns = append(fns, fd.Name)
		}
	}
	want := []string{"buf_new", "buf_append", "buf_view", "main"}
	if len(fns) != len(want) {
		t.Fatalf("functions: %v", fns)
	}
	for i := range want {
		if fns[i] != want[i] {
			t.Errorf("fn %d = %s, want %s", i, fns[i], want[i])
		}
	}
}

func TestTypeHelpers(t *testing.T) {
	if !NewPrim(TInt, "int").IsInteger() || !NewPrim(TChar, "char").IsInteger() {
		t.Error("IsInteger broken")
	}
	if NewPrim(TFloat, "double").IsInteger() {
		t.Error("double is integer")
	}
	if !NewPointer(NewPrim(TVoid, "void")).IsScalar() {
		t.Error("pointer not scalar")
	}
	if NewPrim(TVoid, "void").IsScalar() {
		t.Error("void is scalar")
	}
	var nilT *Type
	if nilT.Clone() != nil {
		t.Error("nil Clone")
	}
	if nilT.String() != "<nil>" {
		t.Error("nil String")
	}
	// Clone shares struct definitions but copies the spine.
	st := &StructType{Tag: "s", Complete: true}
	orig := NewPointer(&Type{Kind: TStruct, Struct: st})
	cl := orig.Clone()
	if cl == orig || cl.Elem == orig.Elem {
		t.Error("Clone shared spine")
	}
	if cl.Elem.Struct != st {
		t.Error("Clone copied struct definition")
	}
}

func TestStorageClassString(t *testing.T) {
	cases := map[StorageClass]string{
		SCNone: "", SCTypedef: "typedef", SCExtern: "extern",
		SCStatic: "static", SCAuto: "auto", SCRegister: "register",
	}
	for sc, want := range cases {
		if sc.String() != want {
			t.Errorf("%d: %q != %q", sc, sc.String(), want)
		}
	}
}
