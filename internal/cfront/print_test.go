package cfront

import (
	"strings"
	"testing"
)

func TestTypeDecl(t *testing.T) {
	cases := []struct {
		src  string // a declaration to parse
		name string // the declared name to find
		want string // expected TypeDecl rendering
	}{
		{"int x;", "x", "int x"},
		{"const int y;", "y", "const int y"},
		{"char *s;", "s", "char *s"},
		{"const char *cs;", "cs", "const char *cs"},
		{"char * const pc;", "pc", "char *const pc"},
		{"const char * const cpc;", "cpc", "const char *const cpc"},
		{"int a[10];", "a", "int a[10]"},
		{"int m[3][4];", "m", "int m[3][4]"},
		{"int *pa[5];", "pa", "int *pa[5]"},
		{"int (*ap)[5];", "ap", "int (*ap)[5]"},
		{"int f(int a, char *b);", "f", "int f(int a, char *b)"},
		{"int (*fp)(int);", "fp", "int (*fp)(int)"},
		{"int (*fparr[4])(char);", "fparr", "int (*fparr[4])(char)"},
		{"char **argv;", "argv", "char **argv"},
		{"int (*(*ff)(int))(char);", "ff", "int (*(*ff)(int))(char)"},
		{"unsigned long n;", "n", "unsigned long n"},
		{"int printf(const char *fmt, ...);", "printf", "int printf(const char *fmt, ...)"},
		{"void nop(void);", "nop", "void nop(void)"},
	}
	for _, c := range cases {
		f := parse(t, c.src)
		var typ *Type
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *VarDecl:
				if d.Name == c.name {
					typ = d.Type
				}
			case *FuncDecl:
				if d.Name == c.name {
					typ = d.Type
				}
			}
		}
		if typ == nil {
			t.Fatalf("%s: %q not found", c.src, c.name)
		}
		got := TypeDecl(c.name, typ)
		if got != c.want {
			t.Errorf("TypeDecl(%s) = %q, want %q", c.src, got, c.want)
		}
		// The rendering must itself reparse to the same type.
		f2, err := Parse("rt.c", got+";")
		if err != nil {
			t.Errorf("TypeDecl output %q does not reparse: %v", got, err)
			continue
		}
		typ2 := declType(f2.Decls[0])
		sm := map[*StructType]*StructType{}
		if !equalTypes(typ, typ2, sm) {
			t.Errorf("TypeDecl round trip changed the type: %q", got)
		}
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a = b = c", "a = b = c"},
		{"a ? b : c", "a ? b : c"},
		{"*p++", "*p++"},
		{"(*p)++", "(*p)++"},
		{"- -x", "-(-x)"},
		{"&*p", "&*p"},
		{"a[i + 1]", "a[i + 1]"},
		{"f(a, b)(c)", "f(a, b)(c)"},
		{"p->f.g", "p->f.g"},
		{"(char *)0", "(char *)0"},
		{"sizeof(int)", "sizeof(int)"},
		{"sizeof x", "sizeof x"},
		{"a << 2 | b", "a << 2 | b"},
		{"(a | b) & c", "(a | b) & c"},
		{"a && b || c", "a && b || c"},
		{"a %= 3", "a %= 3"},
		{"x, y", "x, y"},
		{"!(a == b)", "!(a == b)"},
		{"-x + +y", "-x + +y"},
	}
	for _, c := range cases {
		// Wrap in a statement to parse.
		f := parse(t, "int g(int a, int b, int c, int i, int x, int y, int *p) { "+c.src+"; }")
		fd := f.Decls[0].(*FuncDecl)
		es, ok := fd.Body.Items[0].(*ExprStmt)
		if !ok {
			t.Fatalf("%s: not an expression statement", c.src)
		}
		if got := ExprString(es.X); got != c.want {
			t.Errorf("ExprString(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

// TestPrintFileRoundTrip: print a parsed file and reparse it; the two
// ASTs must be structurally equal.
func TestPrintFileRoundTrip(t *testing.T) {
	srcs := []string{
		`
		typedef unsigned long size_t;
		extern size_t strlen(const char *s);
		struct buf { char *data; size_t len; struct buf *next; };
		static int use(struct buf *b) {
			int n = 0;
			while (b) {
				n += (int)strlen(b->data);
				b = b->next;
			}
			return n;
		}
		int main(int argc, char **argv) {
			struct buf b;
			int i;
			b.data = argv[0];
			b.len = 0;
			b.next = 0;
			for (i = 1; i < argc; i++)
				b.len += 1;
			if (argc > 2) return use(&b);
			else return 0;
		}`,
		`
		enum mode { OFF, ON = 5, AUTO };
		int pick(int m) {
			switch (m) {
			case 0: return OFF;
			case 1: return ON;
			default: break;
			}
			do { m--; } while (m > 0);
			lbl: m += 2;
			if (m < 10) goto lbl;
			return AUTO;
		}`,
		`
		typedef struct pair { int a; int b; } pair_t;
		pair_t origin = { 0, 0 };
		int arr[3] = { 1, 2, 3 };
		int sum(pair_t *p) { return p->a + p->b; }`,
		`
		int (*dispatch(int k))(int) ;
		static int idf(int x) { return x; }
		int (*dispatch(int k))(int) { return idf; }
		int run(int v) { return dispatch(v)(v * 2); }`,
	}
	for i, src := range srcs {
		f1 := parse(t, src)
		printed := PrintFile(f1)
		f2, err := Parse("rt.c", printed)
		if err != nil {
			t.Errorf("case %d: printed file does not reparse: %v\n%s", i, err, printed)
			continue
		}
		if !equalFiles(f1, f2) {
			t.Errorf("case %d: round trip changed the AST\n--- printed ---\n%s", i, printed)
		}
		// Idempotence: printing the reparse gives identical text.
		printed2 := PrintFile(f2)
		if printed != printed2 {
			t.Errorf("case %d: printing not idempotent:\n%s\n---\n%s", i, printed, printed2)
		}
	}
}

// TestPrintBenchmarkRoundTrip round-trips a whole generated benchmark.
func TestPrintBenchmarkRoundTrip(t *testing.T) {
	// Use the realistic program from the parser test corpus instead of
	// importing benchgen (which would create an import cycle through this
	// package's tests); benchgen's own tests cover generated programs.
	f1 := parse(t, `
		typedef unsigned long size_t;
		extern size_t strlen(const char *s);
		extern char *strcpy(char *dst, const char *src);
		extern void *malloc(size_t n);
		struct buffer { char *data; size_t len; size_t cap; };
		static struct buffer *buf_new(size_t cap) {
			struct buffer *b = (struct buffer *)malloc(sizeof(struct buffer));
			b->data = (char *)malloc(cap);
			b->len = 0;
			b->cap = cap;
			return b;
		}
		int buf_append(struct buffer *b, const char *s) {
			size_t n = strlen(s);
			if (b->len + n >= b->cap)
				return -1;
			strcpy(b->data + b->len, s);
			b->len += n;
			return 0;
		}`)
	printed := PrintFile(f1)
	f2, err := Parse("rt.c", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if !equalFiles(f1, f2) {
		t.Errorf("round trip changed the AST:\n%s", printed)
	}
}

// --- structural AST equality (test helper) ---

func equalFiles(a, b *File) bool {
	// Printing may emit struct definitions as extra TagDecls and omit
	// original TagDecls; compare declaration-by-name instead of by index
	// for functions/vars/typedefs, and struct shapes via the types.
	am, bm := declMap(a), declMap(b)
	if len(am) != len(bm) {
		return false
	}
	sm := map[*StructType]*StructType{}
	for name, da := range am {
		db, ok := bm[name]
		if !ok || !equalDecls(da, db, sm) {
			return false
		}
	}
	return true
}

func declMap(f *File) map[string]Decl {
	out := map[string]Decl{}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *FuncDecl:
			// Definitions shadow prototypes.
			if prev, ok := out["f:"+d.Name].(*FuncDecl); !ok || prev.Body == nil {
				out["f:"+d.Name] = d
			}
		case *VarDecl:
			out["v:"+d.Name] = d
		case *TypedefDecl:
			out["t:"+d.Name] = d
		}
	}
	return out
}

func equalDecls(a, b Decl, sm map[*StructType]*StructType) bool {
	switch a := a.(type) {
	case *FuncDecl:
		b, ok := b.(*FuncDecl)
		if !ok || a.Name != b.Name || a.Storage != b.Storage || (a.Body == nil) != (b.Body == nil) {
			return false
		}
		if !equalTypes(a.Type, b.Type, sm) {
			return false
		}
		if a.Body != nil {
			return equalStmts(a.Body, b.Body, sm)
		}
		return true
	case *VarDecl:
		b, ok := b.(*VarDecl)
		if !ok || a.Name != b.Name || a.Storage != b.Storage || (a.Init == nil) != (b.Init == nil) {
			return false
		}
		if !equalTypes(a.Type, b.Type, sm) {
			return false
		}
		if a.Init != nil {
			return equalExprs(a.Init, b.Init)
		}
		return true
	case *TypedefDecl:
		b, ok := b.(*TypedefDecl)
		return ok && a.Name == b.Name && equalTypes(a.Type, b.Type, sm)
	default:
		return true
	}
}

func equalTypes(a, b *Type, sm map[*StructType]*StructType) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Kind != b.Kind || a.Quals.Const != b.Quals.Const || a.Quals.Volatile != b.Quals.Volatile {
		return false
	}
	switch a.Kind {
	case TVoid, TChar, TInt, TFloat:
		return a.Spelling == b.Spelling
	case TPointer:
		return equalTypes(a.Elem, b.Elem, sm)
	case TArray:
		return a.ArrayLen == b.ArrayLen && equalTypes(a.Elem, b.Elem, sm)
	case TFunc:
		if a.Variadic != b.Variadic || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if a.Params[i].Name != b.Params[i].Name ||
				!equalTypes(a.Params[i].Type, b.Params[i].Type, sm) {
				return false
			}
		}
		return equalTypes(a.Ret, b.Ret, sm)
	case TStruct:
		if mapped, ok := sm[a.Struct]; ok {
			return mapped == b.Struct
		}
		sm[a.Struct] = b.Struct
		if a.Struct.Union != b.Struct.Union || a.Struct.Complete != b.Struct.Complete ||
			len(a.Struct.Fields) != len(b.Struct.Fields) {
			return false
		}
		for i := range a.Struct.Fields {
			if a.Struct.Fields[i].Name != b.Struct.Fields[i].Name ||
				!equalTypes(a.Struct.Fields[i].Type, b.Struct.Fields[i].Type, sm) {
				return false
			}
		}
		return true
	case TEnum:
		return true // constants compared via usage
	default:
		return false
	}
}

func equalStmts(a, b Stmt, sm map[*StructType]*StructType) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	switch a := a.(type) {
	case *Block:
		b, ok := b.(*Block)
		if !ok || len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !equalStmts(a.Items[i], b.Items[i], sm) {
				return false
			}
		}
		return true
	case *DeclStmt:
		b, ok := b.(*DeclStmt)
		if !ok || len(a.Decls) != len(b.Decls) {
			return false
		}
		for i := range a.Decls {
			if !equalDecls(a.Decls[i], b.Decls[i], sm) {
				return false
			}
		}
		return true
	case *ExprStmt:
		b, ok := b.(*ExprStmt)
		return ok && equalExprs(a.X, b.X)
	case *EmptyStmt:
		_, ok := b.(*EmptyStmt)
		return ok
	case *IfStmt:
		b, ok := b.(*IfStmt)
		return ok && equalExprs(a.Cond, b.Cond) && equalStmts(a.Then, b.Then, sm) && equalStmts(a.Else, b.Else, sm)
	case *WhileStmt:
		b, ok := b.(*WhileStmt)
		return ok && equalExprs(a.Cond, b.Cond) && equalStmts(a.Body, b.Body, sm)
	case *DoWhileStmt:
		b, ok := b.(*DoWhileStmt)
		return ok && equalExprs(a.Cond, b.Cond) && equalStmts(a.Body, b.Body, sm)
	case *ForStmt:
		b, ok := b.(*ForStmt)
		return ok && equalStmts(a.Init, b.Init, sm) && equalOptExprs(a.Cond, b.Cond) &&
			equalOptExprs(a.Post, b.Post) && equalStmts(a.Body, b.Body, sm)
	case *ReturnStmt:
		b, ok := b.(*ReturnStmt)
		return ok && equalOptExprs(a.Value, b.Value)
	case *BreakStmt:
		_, ok := b.(*BreakStmt)
		return ok
	case *ContinueStmt:
		_, ok := b.(*ContinueStmt)
		return ok
	case *GotoStmt:
		b, ok := b.(*GotoStmt)
		return ok && a.Label == b.Label
	case *LabelStmt:
		b, ok := b.(*LabelStmt)
		return ok && a.Label == b.Label && equalStmts(a.Stmt, b.Stmt, sm)
	case *SwitchStmt:
		b, ok := b.(*SwitchStmt)
		return ok && equalExprs(a.Tag, b.Tag) && equalStmts(a.Body, b.Body, sm)
	case *CaseStmt:
		b, ok := b.(*CaseStmt)
		return ok && equalOptExprs(a.Value, b.Value) && equalStmts(a.Stmt, b.Stmt, sm)
	default:
		return false
	}
}

func equalOptExprs(a, b Expr) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return equalExprs(a, b)
}

func equalExprs(a, b Expr) bool {
	// Compare by printed form: the printer is deterministic and
	// normalizing, so this is precise enough for round trips.
	return ExprString(a) == ExprString(b)
}

func TestPrintedBenchmarkIsC(t *testing.T) {
	// Printing inserts no analysis artifacts: the printed text contains
	// no internal markers.
	f := parse(t, "struct s { int x; }; int f(struct s *p) { return p->x; }")
	out := PrintFile(f)
	for _, bad := range []string{"<anon", "?", "RKind"} {
		if strings.Contains(out, bad) {
			t.Errorf("printed output contains %q:\n%s", bad, out)
		}
	}
}
