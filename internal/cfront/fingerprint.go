package cfront

// AST fingerprinting for content-addressed caching.
//
// A fingerprint is a stable byte encoding of a declaration — structure,
// names, literals, types, and every source position — such that two
// declarations with equal fingerprints generate byte-identical analysis
// output. Positions are included deliberately: constraint provenance and
// report positions embed "file:line:col" strings, so a function whose
// text is unchanged but whose line numbers shifted must fingerprint
// differently.
//
// Skeleton mode (FingerprintDecl with includeBody=false) elides function
// bodies, encoding only the declaration interface. The incremental cache
// uses the skeleton of a whole program as the "prepare fingerprint" (the
// shared state all function analyses observe) and the full fingerprint of
// one function as its body key.

import (
	"fmt"
	"io"
)

// fingerprinter writes the encoding. Struct definitions are written once
// per fingerprint (by tag and ID afterwards) to terminate on
// self-referential structs.
type fingerprinter struct {
	w    io.Writer
	seen map[*StructType]bool
}

// FingerprintDecl writes a stable encoding of d to w (typically a
// hash.Hash). With includeBody=false, function bodies are elided and only
// the declaration interface (name, storage, type, positions) is encoded.
func FingerprintDecl(w io.Writer, d Decl, includeBody bool) {
	f := &fingerprinter{w: w, seen: make(map[*StructType]bool)}
	f.decl(d, includeBody)
}

// FingerprintFuncBody writes the full encoding of one function
// definition, including its body; it is the content key of the
// per-function incremental cache.
func FingerprintFuncBody(w io.Writer, d *FuncDecl) {
	FingerprintDecl(w, d, true)
}

func (f *fingerprinter) str(s string) {
	fmt.Fprintf(f.w, "%d:%s", len(s), s)
}

func (f *fingerprinter) tag(t string) { io.WriteString(f.w, t+";") }

func (f *fingerprinter) num(ns ...int64) {
	for _, n := range ns {
		fmt.Fprintf(f.w, "%d,", n)
	}
}

func (f *fingerprinter) pos(p Pos) {
	f.str(p.File)
	f.num(int64(p.Line), int64(p.Col))
}

func (f *fingerprinter) decl(d Decl, includeBody bool) {
	switch d := d.(type) {
	case nil:
		f.tag("dnil")
	case *FuncDecl:
		f.tag("dfunc")
		f.str(d.Name)
		f.num(int64(d.Storage))
		f.pos(d.Pos)
		f.typ(d.Type)
		if d.Body == nil {
			f.tag("proto")
		} else if includeBody {
			f.tag("body")
			f.stmt(d.Body)
		} else {
			f.tag("defined") // skeleton: definition exists, body elided
		}
	case *VarDecl:
		f.tag("dvar")
		f.str(d.Name)
		f.num(int64(d.Storage))
		f.pos(d.Pos)
		f.typ(d.Type)
		if d.Init == nil {
			f.tag("noinit")
		} else if includeBody {
			f.tag("init")
			f.expr(d.Init)
		} else {
			// Skeleton: global initializers are analyzed after every
			// function body, so their contents do not affect the state a
			// body analysis observes — only their presence is encoded.
			f.tag("hasinit")
		}
	case *TypedefDecl:
		f.tag("dtypedef")
		f.str(d.Name)
		f.pos(d.Pos)
		f.typ(d.Type)
	case *TagDecl:
		f.tag("dtag")
		f.pos(d.Pos)
		f.typ(d.Type)
	default:
		f.tag(fmt.Sprintf("decl?%T", d))
	}
}

func (f *fingerprinter) typ(t *Type) {
	if t == nil {
		f.tag("tnil")
		return
	}
	f.tag("t")
	f.num(int64(t.Kind))
	if t.Quals.Const {
		f.tag("const")
		f.pos(t.Quals.ConstPos)
	}
	if t.Quals.Volatile {
		f.tag("volatile")
	}
	f.str(t.Spelling)
	switch t.Kind {
	case TPointer, TArray:
		f.num(t.ArrayLen)
		f.typ(t.Elem)
	case TFunc:
		if t.Variadic {
			f.tag("variadic")
		}
		f.num(int64(len(t.Params)))
		for _, p := range t.Params {
			f.str(p.Name)
			f.pos(p.Pos)
			f.typ(p.Type)
		}
		f.typ(t.Ret)
	case TStruct:
		f.structType(t.Struct)
	case TEnum:
		f.str(t.EnumTag)
		f.num(int64(len(t.Enumerators)))
		for _, e := range t.Enumerators {
			f.str(e.Name)
			f.num(e.Value)
		}
	}
}

func (f *fingerprinter) structType(st *StructType) {
	if st == nil {
		f.tag("snil")
		return
	}
	if st.Union {
		f.tag("union")
	} else {
		f.tag("struct")
	}
	f.str(st.Tag)
	f.num(int64(st.ID))
	if f.seen[st] {
		f.tag("ref") // already encoded in this fingerprint
		return
	}
	f.seen[st] = true
	if !st.Complete {
		f.tag("incomplete")
		return
	}
	f.pos(st.DefPos)
	f.num(int64(len(st.Fields)))
	for _, fl := range st.Fields {
		f.str(fl.Name)
		f.pos(fl.Pos)
		f.typ(fl.Type)
	}
}

func (f *fingerprinter) stmt(s Stmt) {
	switch s := s.(type) {
	case nil:
		f.tag("snil")
	case *Block:
		f.tag("block")
		f.pos(s.Pos)
		f.num(int64(len(s.Items)))
		for _, it := range s.Items {
			f.stmt(it)
		}
	case *DeclStmt:
		f.tag("declstmt")
		f.pos(s.Pos)
		f.num(int64(len(s.Decls)))
		for _, d := range s.Decls {
			f.decl(d, true)
		}
	case *ExprStmt:
		f.tag("exprstmt")
		f.pos(s.Pos)
		f.expr(s.X)
	case *EmptyStmt:
		f.tag("empty")
		f.pos(s.Pos)
	case *IfStmt:
		f.tag("if")
		f.pos(s.Pos)
		f.expr(s.Cond)
		f.stmt(s.Then)
		f.stmt(s.Else)
	case *WhileStmt:
		f.tag("while")
		f.pos(s.Pos)
		f.expr(s.Cond)
		f.stmt(s.Body)
	case *DoWhileStmt:
		f.tag("dowhile")
		f.pos(s.Pos)
		f.stmt(s.Body)
		f.expr(s.Cond)
	case *ForStmt:
		f.tag("for")
		f.pos(s.Pos)
		f.stmt(s.Init)
		f.expr(s.Cond)
		f.expr(s.Post)
		f.stmt(s.Body)
	case *ReturnStmt:
		f.tag("return")
		f.pos(s.Pos)
		f.expr(s.Value)
	case *BreakStmt:
		f.tag("break")
		f.pos(s.Pos)
	case *ContinueStmt:
		f.tag("continue")
		f.pos(s.Pos)
	case *GotoStmt:
		f.tag("goto")
		f.str(s.Label)
		f.pos(s.Pos)
	case *LabelStmt:
		f.tag("label")
		f.str(s.Label)
		f.pos(s.Pos)
		f.stmt(s.Stmt)
	case *SwitchStmt:
		f.tag("switch")
		f.pos(s.Pos)
		f.expr(s.Tag)
		f.stmt(s.Body)
	case *CaseStmt:
		f.tag("case")
		f.pos(s.Pos)
		f.expr(s.Value)
		f.stmt(s.Stmt)
	default:
		f.tag(fmt.Sprintf("stmt?%T", s))
	}
}

func (f *fingerprinter) expr(e Expr) {
	switch e := e.(type) {
	case nil:
		f.tag("enil")
	case *Ident:
		f.tag("id")
		f.str(e.Name)
		f.pos(e.Pos)
	case *IntLit:
		f.tag("int")
		f.str(e.Text)
		f.num(e.Val)
		f.pos(e.Pos)
	case *FloatLit:
		f.tag("float")
		f.str(e.Text)
		f.pos(e.Pos)
	case *CharLit:
		f.tag("char")
		f.str(e.Text)
		f.pos(e.Pos)
	case *StrLit:
		f.tag("str")
		f.str(e.Text)
		f.pos(e.Pos)
	case *Unary:
		f.tag("unary")
		f.num(int64(e.Op))
		f.pos(e.Pos)
		f.expr(e.X)
	case *Postfix:
		f.tag("postfix")
		f.num(int64(e.Op))
		f.pos(e.Pos)
		f.expr(e.X)
	case *Binary:
		f.tag("binary")
		f.num(int64(e.Op))
		f.pos(e.Pos)
		f.expr(e.L)
		f.expr(e.R)
	case *AssignExpr:
		f.tag("assign")
		f.num(int64(e.Op))
		f.pos(e.Pos)
		f.expr(e.L)
		f.expr(e.R)
	case *Cond:
		f.tag("cond")
		f.pos(e.Pos)
		f.expr(e.C)
		f.expr(e.T)
		f.expr(e.F)
	case *Call:
		f.tag("call")
		f.pos(e.Pos)
		f.expr(e.Fn)
		f.num(int64(len(e.Args)))
		for _, a := range e.Args {
			f.expr(a)
		}
	case *Index:
		f.tag("index")
		f.pos(e.Pos)
		f.expr(e.X)
		f.expr(e.I)
	case *Member:
		f.tag("member")
		f.str(e.Name)
		if e.Arrow {
			f.tag("arrow")
		}
		f.pos(e.Pos)
		f.expr(e.X)
	case *Cast:
		f.tag("cast")
		f.pos(e.Pos)
		f.typ(e.To)
		f.expr(e.X)
	case *SizeofType:
		f.tag("sizeoft")
		f.pos(e.Pos)
		f.typ(e.T)
	case *SizeofExpr:
		f.tag("sizeofe")
		f.pos(e.Pos)
		f.expr(e.X)
	case *Comma:
		f.tag("comma")
		f.pos(e.Pos)
		f.expr(e.L)
		f.expr(e.R)
	case *InitList:
		f.tag("initlist")
		f.pos(e.Pos)
		f.num(int64(len(e.Items)))
		for _, it := range e.Items {
			f.expr(it)
		}
	default:
		f.tag(fmt.Sprintf("expr?%T", e))
	}
}
