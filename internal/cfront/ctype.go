package cfront

import (
	"fmt"
	"strings"
)

// TypeKind enumerates the C type constructors handled by the front end.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota
	TChar
	TInt   // all integer flavours collapse here; Signedness/Width kept for printing
	TFloat // float and double
	TPointer
	TArray
	TFunc
	TStruct // struct or union, via the shared StructType
	TEnum
)

func (k TypeKind) String() string {
	switch k {
	case TVoid:
		return "void"
	case TChar:
		return "char"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TPointer:
		return "pointer"
	case TArray:
		return "array"
	case TFunc:
		return "function"
	case TStruct:
		return "struct"
	case TEnum:
		return "enum"
	default:
		return fmt.Sprintf("TypeKind(%d)", int(k))
	}
}

// Quals is the C qualifier set on one type level. The const inference
// reads and rewrites the Const flag; Volatile is parsed and preserved but
// not analyzed.
type Quals struct {
	Const    bool
	Volatile bool
	// ConstPos is where the const keyword appeared, for diagnostics.
	ConstPos Pos
}

func (q Quals) String() string {
	var parts []string
	if q.Const {
		parts = append(parts, "const")
	}
	if q.Volatile {
		parts = append(parts, "volatile")
	}
	return strings.Join(parts, " ")
}

// StructType is a struct or union definition. Declarations referring to
// the same tag share the same *StructType, which is what makes struct
// fields share their qualifier variables in the const inference (Section
// 4.2 of the paper).
type StructType struct {
	Tag      string // empty for anonymous
	Union    bool
	Fields   []Field
	Complete bool
	DefPos   Pos
	// ID distinguishes anonymous and same-tag-different-scope structs.
	ID int
}

// Field is one struct/union member.
type Field struct {
	Name string
	Type *Type
	Pos  Pos
}

func (s *StructType) String() string {
	kw := "struct"
	if s.Union {
		kw = "union"
	}
	if s.Tag != "" {
		return kw + " " + s.Tag
	}
	return fmt.Sprintf("%s <anon#%d>", kw, s.ID)
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	Pos  Pos
}

// Type is a C type term. Types form trees except for Struct nodes, which
// share their *StructType definition.
type Type struct {
	Kind  TypeKind
	Quals Quals

	// Signedness/width spelling for integer kinds ("unsigned long" etc.),
	// used only for printing.
	Spelling string

	// Elem is the pointee (TPointer) or element (TArray) type.
	Elem *Type
	// ArrayLen is the declared length, or -1 if unspecified.
	ArrayLen int64

	// Func parts.
	Ret      *Type
	Params   []Param
	Variadic bool

	// Struct/union definition.
	Struct *StructType

	// EnumTag names the enum, for printing.
	EnumTag string
	// Enumerators holds the enum's constants when this Type carries the
	// definition.
	Enumerators []Enumerator
}

// Enumerator is one enum constant.
type Enumerator struct {
	Name  string
	Value int64
}

// NewPrim builds a primitive type.
func NewPrim(kind TypeKind, spelling string) *Type {
	return &Type{Kind: kind, Spelling: spelling}
}

// NewPointer builds a pointer to elem.
func NewPointer(elem *Type) *Type { return &Type{Kind: TPointer, Elem: elem} }

// Clone deep-copies the type tree. Struct definitions are shared, not
// copied — the paper requires declarations of the same struct type to
// share field qualifiers, while typedefs are macro-expanded so that each
// use gets fresh qualifier positions.
func (t *Type) Clone() *Type {
	if t == nil {
		return nil
	}
	out := *t
	out.Elem = t.Elem.Clone()
	out.Ret = t.Ret.Clone()
	if t.Params != nil {
		out.Params = make([]Param, len(t.Params))
		for i, p := range t.Params {
			out.Params[i] = Param{Name: p.Name, Type: p.Type.Clone(), Pos: p.Pos}
		}
	}
	return &out
}

// IsInteger reports whether the type is an integer-like scalar (enums
// included).
func (t *Type) IsInteger() bool {
	return t.Kind == TInt || t.Kind == TChar || t.Kind == TEnum
}

// IsScalar reports whether the type is usable in boolean contexts.
func (t *Type) IsScalar() bool {
	return t.IsInteger() || t.Kind == TFloat || t.Kind == TPointer || t.Kind == TArray
}

// String renders the type in a readable prefix form (not C declarator
// syntax), e.g. "ptr(const char)".
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	var b strings.Builder
	if q := t.Quals.String(); q != "" {
		b.WriteString(q)
		b.WriteString(" ")
	}
	switch t.Kind {
	case TVoid, TChar, TInt, TFloat:
		if t.Spelling != "" {
			b.WriteString(t.Spelling)
		} else {
			b.WriteString(t.Kind.String())
		}
	case TPointer:
		fmt.Fprintf(&b, "ptr(%s)", t.Elem)
	case TArray:
		if t.ArrayLen >= 0 {
			fmt.Fprintf(&b, "array[%d](%s)", t.ArrayLen, t.Elem)
		} else {
			fmt.Fprintf(&b, "array(%s)", t.Elem)
		}
	case TFunc:
		b.WriteString("fn(")
		for i, p := range t.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.Type.String())
		}
		if t.Variadic {
			if len(t.Params) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...")
		}
		fmt.Fprintf(&b, ") %s", t.Ret)
	case TStruct:
		b.WriteString(t.Struct.String())
	case TEnum:
		if t.EnumTag != "" {
			b.WriteString("enum " + t.EnumTag)
		} else {
			b.WriteString("enum")
		}
	default:
		b.WriteString(t.Kind.String())
	}
	return b.String()
}
