package cfront

// Statement parsing.

func (p *Parser) parseBlock() (*Block, error) {
	pos := p.tok.Pos
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for p.tok.Kind != RBRACE {
		if p.tok.Kind == EOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, s)
	}
	return b, p.next() // consume }
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case LBRACE:
		return p.parseBlock()

	case SEMI:
		return &EmptyStmt{Pos: pos}, p.next()

	case kwIf:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.tok.Kind == kwElse {
			if err := p.next(); err != nil {
				return nil, err
			}
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil

	case kwWhile:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil

	case kwDo:
		if err := p.next(); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(kwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Pos: pos}, nil

	case kwFor:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var init Stmt
		if p.tok.Kind == SEMI {
			if err := p.next(); err != nil {
				return nil, err
			}
		} else if p.isTypeStart() {
			d, err := p.parseLocalDecl()
			if err != nil {
				return nil, err
			}
			init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			init = &ExprStmt{X: e, Pos: e.ExprPos()}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		}
		var cond Expr
		if p.tok.Kind != SEMI {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		var post Expr
		if p.tok.Kind != RPAREN {
			var err error
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: pos}, nil

	case kwReturn:
		if err := p.next(); err != nil {
			return nil, err
		}
		var val Expr
		if p.tok.Kind != SEMI {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: val, Pos: pos}, nil

	case kwBreak:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil

	case kwContinue:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil

	case kwGoto:
		if err := p.next(); err != nil {
			return nil, err
		}
		label, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &GotoStmt{Label: label.Text, Pos: pos}, nil

	case kwSwitch:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		tag, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &SwitchStmt{Tag: tag, Body: body, Pos: pos}, nil

	case kwCase:
		if err := p.next(); err != nil {
			return nil, err
		}
		val, err := p.parseConditional()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &CaseStmt{Value: val, Stmt: stmt, Pos: pos}, nil

	case kwDefault:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &CaseStmt{Stmt: stmt, Pos: pos}, nil

	case IDENT:
		// Could be a label, a typedef-led declaration, or an expression.
		if p.peekIsColon() {
			label := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.next(); err != nil { // colon
				return nil, err
			}
			stmt, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &LabelStmt{Label: label, Stmt: stmt, Pos: pos}, nil
		}
		if p.isTypeStart() {
			return p.parseLocalDecl()
		}
		return p.parseExprStmt()

	default:
		if p.isTypeStart() {
			return p.parseLocalDecl()
		}
		return p.parseExprStmt()
	}
}

func (p *Parser) peekIsColon() bool {
	saved := *p.lex
	savedTok := p.tok
	defer func() { *p.lex = saved; p.tok = savedTok }()
	if p.next() != nil {
		return false
	}
	return p.tok.Kind == COLON
}

func (p *Parser) parseExprStmt() (Stmt, error) {
	pos := p.tok.Pos
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: pos}, nil
}

// parseLocalDecl parses a declaration inside a block (consuming the
// trailing semicolon) and wraps it in a DeclStmt.
func (p *Parser) parseLocalDecl() (*DeclStmt, error) {
	pos := p.tok.Pos
	ds, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	out := &DeclStmt{Pos: pos}
	if p.tok.Kind == SEMI {
		if err := p.next(); err != nil {
			return nil, err
		}
		out.Decls = append(out.Decls, &TagDecl{Type: ds.base, Pos: pos})
		return out, nil
	}
	for {
		name, typ, namePos, err := p.parseDeclarator(ds.base.Clone(), false)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("expected declared name")
		}
		if ds.storage == SCTypedef {
			p.typedefs[name] = typ
			out.Decls = append(out.Decls, &TypedefDecl{Name: name, Type: typ, Pos: namePos})
		} else {
			var init Expr
			if p.tok.Kind == ASSIGN {
				if err := p.next(); err != nil {
					return nil, err
				}
				init, err = p.parseInitializer()
				if err != nil {
					return nil, err
				}
			}
			out.Decls = append(out.Decls, &VarDecl{Name: name, Type: typ, Storage: ds.storage, Init: init, Pos: namePos})
		}
		if p.tok.Kind != COMMA {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return out, nil
}
