package cfront

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for the C subset. It maintains a
// typedef table (needed to disambiguate declarations from expressions), a
// struct/union tag registry (shared definitions give shared field
// qualifiers), and an enum-constant table.
type Parser struct {
	lex *Lexer
	tok Token

	typedefs map[string]*Type
	tags     map[string]*StructType
	enums    map[string]int64
	anonID   int
}

// Parse parses a complete translation unit.
func Parse(file, src string) (*File, error) {
	p := &Parser{
		lex:      NewLexer(file, src),
		typedefs: make(map[string]*Type),
		tags:     make(map[string]*StructType),
		enums:    make(map[string]int64),
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	f := &File{Name: file}
	for p.tok.Kind != EOF {
		decls, err := p.parseExternalDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, decls...)
	}
	f.EnumConsts = p.enums
	return f, nil
}

// EnumConstants exposes the enum constants seen while parsing, for
// clients that resolve identifiers.
func (p *Parser) EnumConstants() map[string]int64 { return p.enums }

func (p *Parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, &SyntaxError{Pos: p.tok.Pos, Msg: fmt.Sprintf("expected %s, found %s %q", k, p.tok.Kind, p.tok.Text)}
	}
	t := p.tok
	return t, p.next()
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the current token can begin
// declaration-specifiers.
func (p *Parser) isTypeStart() bool {
	switch p.tok.Kind {
	case kwVoid, kwChar, kwInt, kwLong, kwShort, kwSigned, kwUnsigned,
		kwFloat, kwDouble, kwConst, kwVolatile, kwStruct, kwUnion, kwEnum,
		kwTypedef, kwExtern, kwStatic, kwAuto, kwRegister:
		return true
	case IDENT:
		_, ok := p.typedefs[p.tok.Text]
		return ok
	default:
		return false
	}
}

// ---------------------------------------------------------------------
// Declarations

type declSpecs struct {
	storage StorageClass
	base    *Type
	pos     Pos
}

// parseDeclSpecs parses storage classes, qualifiers and type specifiers.
func (p *Parser) parseDeclSpecs() (*declSpecs, error) {
	ds := &declSpecs{pos: p.tok.Pos}
	var quals Quals
	var (
		sawSigned, sawUnsigned bool
		longs, shorts          int
		baseKw                 TokKind = -1
	)
	sawSpecifier := func() bool {
		return baseKw >= 0 || sawSigned || sawUnsigned || longs > 0 || shorts > 0 || ds.base != nil
	}
	for {
		switch p.tok.Kind {
		case kwTypedef, kwExtern, kwStatic, kwAuto, kwRegister:
			if ds.storage != SCNone {
				return nil, p.errf("multiple storage classes")
			}
			switch p.tok.Kind {
			case kwTypedef:
				ds.storage = SCTypedef
			case kwExtern:
				ds.storage = SCExtern
			case kwStatic:
				ds.storage = SCStatic
			case kwAuto:
				ds.storage = SCAuto
			case kwRegister:
				ds.storage = SCRegister
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwConst:
			quals.Const = true
			quals.ConstPos = p.tok.Pos
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwVolatile:
			quals.Volatile = true
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwSigned:
			sawSigned = true
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwUnsigned:
			sawUnsigned = true
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwLong:
			longs++
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwShort:
			shorts++
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwVoid, kwChar, kwInt, kwFloat, kwDouble:
			if baseKw >= 0 || ds.base != nil {
				return nil, p.errf("multiple type specifiers")
			}
			baseKw = p.tok.Kind
			if err := p.next(); err != nil {
				return nil, err
			}
		case kwStruct, kwUnion:
			if sawSpecifier() {
				return nil, p.errf("struct specifier after another type specifier")
			}
			st, err := p.parseStructSpecifier(p.tok.Kind == kwUnion)
			if err != nil {
				return nil, err
			}
			ds.base = &Type{Kind: TStruct, Struct: st}
		case kwEnum:
			if sawSpecifier() {
				return nil, p.errf("enum specifier after another type specifier")
			}
			et, err := p.parseEnumSpecifier()
			if err != nil {
				return nil, err
			}
			ds.base = et
		case IDENT:
			// A typedef name acts as a type specifier only when no
			// specifier has been seen yet.
			if td, ok := p.typedefs[p.tok.Text]; ok && !sawSpecifier() {
				// Macro-expand the typedef: deep-copy so each use has
				// independent qualifier positions (paper Section 4.2).
				ds.base = td.Clone()
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			goto done
		default:
			goto done
		}
	}
done:
	if ds.base == nil {
		spelling, kind := intSpelling(baseKw, sawSigned, sawUnsigned, longs, shorts)
		if kind == TypeKind(-1) {
			if !sawSpecifier() && !quals.Const && !quals.Volatile && ds.storage == SCNone {
				return nil, p.errf("expected declaration, found %s %q", p.tok.Kind, p.tok.Text)
			}
			// Implicit int (K&R style "const x;" or bare storage class).
			spelling, kind = "int", TInt
		}
		ds.base = NewPrim(kind, spelling)
	}
	ds.base.Quals.Const = ds.base.Quals.Const || quals.Const
	ds.base.Quals.Volatile = ds.base.Quals.Volatile || quals.Volatile
	if quals.Const {
		ds.base.Quals.ConstPos = quals.ConstPos
	}
	return ds, nil
}

func intSpelling(base TokKind, signed, unsigned bool, longs, shorts int) (string, TypeKind) {
	prefix := ""
	if unsigned {
		prefix = "unsigned "
	} else if signed {
		prefix = "signed "
	}
	switch base {
	case kwVoid:
		return "void", TVoid
	case kwChar:
		return prefix + "char", TChar
	case kwFloat:
		return "float", TFloat
	case kwDouble:
		if longs > 0 {
			return "long double", TFloat
		}
		return "double", TFloat
	case kwInt, TokKind(-1):
		if base == TokKind(-1) && !signed && !unsigned && longs == 0 && shorts == 0 {
			return "", TypeKind(-1)
		}
		switch {
		case longs >= 2:
			return prefix + "long long", TInt
		case longs == 1:
			return prefix + "long", TInt
		case shorts >= 1:
			return prefix + "short", TInt
		default:
			return prefix + "int", TInt
		}
	default:
		return "", TypeKind(-1)
	}
}

func (p *Parser) parseStructSpecifier(isUnion bool) (*StructType, error) {
	if err := p.next(); err != nil { // struct/union keyword
		return nil, err
	}
	tag := ""
	defPos := p.tok.Pos
	if p.tok.Kind == IDENT {
		tag = p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	var st *StructType
	if tag != "" {
		if existing, ok := p.tags[tag]; ok && existing.Union == isUnion {
			st = existing
		}
	}
	if st == nil {
		p.anonID++
		st = &StructType{Tag: tag, Union: isUnion, DefPos: defPos, ID: p.anonID}
		if tag != "" {
			p.tags[tag] = st
		}
	}
	if p.tok.Kind != LBRACE {
		if tag == "" {
			return nil, p.errf("anonymous struct without a body")
		}
		return st, nil
	}
	if st.Complete {
		return nil, &SyntaxError{Pos: defPos, Msg: fmt.Sprintf("redefinition of %s", st)}
	}
	if err := p.next(); err != nil { // {
		return nil, err
	}
	for p.tok.Kind != RBRACE {
		ds, err := p.parseDeclSpecs()
		if err != nil {
			return nil, err
		}
		for {
			name, typ, namePos, err := p.parseDeclarator(ds.base.Clone(), false)
			if err != nil {
				return nil, err
			}
			if p.tok.Kind == COLON { // bit-field
				if err := p.next(); err != nil {
					return nil, err
				}
				if _, err := p.parseConditional(); err != nil {
					return nil, err
				}
			}
			if name == "" {
				return nil, p.errf("expected field name")
			}
			st.Fields = append(st.Fields, Field{Name: name, Type: typ, Pos: namePos})
			if p.tok.Kind != COMMA {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	if err := p.next(); err != nil { // }
		return nil, err
	}
	st.Complete = true
	return st, nil
}

func (p *Parser) parseEnumSpecifier() (*Type, error) {
	if err := p.next(); err != nil { // enum
		return nil, err
	}
	tag := ""
	if p.tok.Kind == IDENT {
		tag = p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	t := &Type{Kind: TEnum, EnumTag: tag, Spelling: "int"}
	if p.tok.Kind != LBRACE {
		if tag == "" {
			return nil, p.errf("anonymous enum without a body")
		}
		return t, nil
	}
	if err := p.next(); err != nil { // {
		return nil, err
	}
	var val int64
	for p.tok.Kind != RBRACE {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.tok.Kind == ASSIGN {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.parseConditional()
			if err != nil {
				return nil, err
			}
			if v, ok := p.evalConst(e); ok {
				val = v
			}
		}
		p.enums[name.Text] = val
		t.Enumerators = append(t.Enumerators, Enumerator{Name: name.Text, Value: val})
		val++
		if p.tok.Kind != COMMA {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return t, nil
}

// parseDeclarator parses a (possibly abstract when allowAbstract) C
// declarator applied to the base type; it returns the declared name (""
// for abstract), the complete type, and the name's position.
func (p *Parser) parseDeclarator(base *Type, allowAbstract bool) (string, *Type, Pos, error) {
	// Pointers: each '*' may be followed by qualifiers that attach to
	// that pointer level.
	t := base
	for p.tok.Kind == STAR {
		if err := p.next(); err != nil {
			return "", nil, Pos{}, err
		}
		pt := NewPointer(t)
		for p.tok.Kind == kwConst || p.tok.Kind == kwVolatile {
			if p.tok.Kind == kwConst {
				pt.Quals.Const = true
				pt.Quals.ConstPos = p.tok.Pos
			} else {
				pt.Quals.Volatile = true
			}
			if err := p.next(); err != nil {
				return "", nil, Pos{}, err
			}
		}
		t = pt
	}
	return p.parseDirectDeclarator(t, allowAbstract)
}

func (p *Parser) parseDirectDeclarator(base *Type, allowAbstract bool) (string, *Type, Pos, error) {
	var name string
	var namePos Pos
	// inner defers wrapping a parenthesized declarator around the suffixed
	// base (e.g. int (*f)(void)).
	var inner func(*Type) (string, *Type, Pos, error)

	switch {
	case p.tok.Kind == IDENT:
		name = p.tok.Text
		namePos = p.tok.Pos
		if err := p.next(); err != nil {
			return "", nil, Pos{}, err
		}
	case p.tok.Kind == LPAREN && p.parenStartsDeclarator():
		if err := p.next(); err != nil { // (
			return "", nil, Pos{}, err
		}
		// Parse the inner declarator with its base type deferred; the
		// suffixes collected below complete it.
		innerName, innerComplete, innerPos, err := p.parseDeclaratorDeferred()
		if err != nil {
			return "", nil, Pos{}, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return "", nil, Pos{}, err
		}
		name, namePos = innerName, innerPos
		inner = innerComplete
	default:
		if !allowAbstract {
			return "", nil, Pos{}, p.errf("expected declarator, found %s %q", p.tok.Kind, p.tok.Text)
		}
	}

	// Suffixes: arrays and parameter lists, outermost first.
	var suffixes []func(*Type) (*Type, error)
	for {
		switch p.tok.Kind {
		case LBRACK:
			if err := p.next(); err != nil {
				return "", nil, Pos{}, err
			}
			length := int64(-1)
			if p.tok.Kind != RBRACK {
				e, err := p.parseAssignment()
				if err != nil {
					return "", nil, Pos{}, err
				}
				if v, ok := p.evalConst(e); ok {
					length = v
				}
			}
			if _, err := p.expect(RBRACK); err != nil {
				return "", nil, Pos{}, err
			}
			n := length
			suffixes = append(suffixes, func(elem *Type) (*Type, error) {
				return &Type{Kind: TArray, Elem: elem, ArrayLen: n}, nil
			})
		case LPAREN:
			if err := p.next(); err != nil {
				return "", nil, Pos{}, err
			}
			params, variadic, err := p.parseParamList()
			if err != nil {
				return "", nil, Pos{}, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return "", nil, Pos{}, err
			}
			ps, v := params, variadic
			suffixes = append(suffixes, func(ret *Type) (*Type, error) {
				return &Type{Kind: TFunc, Ret: ret, Params: ps, Variadic: v}, nil
			})
		default:
			goto wrap
		}
	}
wrap:
	// Apply suffixes right-to-left around the base (closest suffix to the
	// name binds tightest).
	t := base
	var err error
	for i := len(suffixes) - 1; i >= 0; i-- {
		t, err = suffixes[i](t)
		if err != nil {
			return "", nil, Pos{}, err
		}
	}
	if inner != nil {
		_, t, namePos, err = inner(t)
		if err != nil {
			return "", nil, Pos{}, err
		}
	}
	return name, t, namePos, nil
}

// parseDeclaratorDeferred parses a declarator whose base type is not yet
// known (inside parentheses); it returns a function that completes the
// type once the base is available.
func (p *Parser) parseDeclaratorDeferred() (string, func(*Type) (string, *Type, Pos, error), Pos, error) {
	// Collect pointer levels.
	type ptrLevel struct{ quals Quals }
	var ptrs []ptrLevel
	for p.tok.Kind == STAR {
		if err := p.next(); err != nil {
			return "", nil, Pos{}, err
		}
		var q Quals
		for p.tok.Kind == kwConst || p.tok.Kind == kwVolatile {
			if p.tok.Kind == kwConst {
				q.Const = true
				q.ConstPos = p.tok.Pos
			} else {
				q.Volatile = true
			}
			if err := p.next(); err != nil {
				return "", nil, Pos{}, err
			}
		}
		ptrs = append(ptrs, ptrLevel{q})
	}

	var name string
	var namePos Pos
	var inner func(*Type) (string, *Type, Pos, error)
	switch {
	case p.tok.Kind == IDENT:
		name = p.tok.Text
		namePos = p.tok.Pos
		if err := p.next(); err != nil {
			return "", nil, Pos{}, err
		}
	case p.tok.Kind == LPAREN && p.parenStartsDeclarator():
		if err := p.next(); err != nil {
			return "", nil, Pos{}, err
		}
		n, f, np, err := p.parseDeclaratorDeferred()
		if err != nil {
			return "", nil, Pos{}, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return "", nil, Pos{}, err
		}
		name, inner, namePos = n, f, np
	}

	var suffixes []func(*Type) (*Type, error)
	for {
		switch p.tok.Kind {
		case LBRACK:
			if err := p.next(); err != nil {
				return "", nil, Pos{}, err
			}
			length := int64(-1)
			if p.tok.Kind != RBRACK {
				e, err := p.parseAssignment()
				if err != nil {
					return "", nil, Pos{}, err
				}
				if v, ok := p.evalConst(e); ok {
					length = v
				}
			}
			if _, err := p.expect(RBRACK); err != nil {
				return "", nil, Pos{}, err
			}
			n := length
			suffixes = append(suffixes, func(elem *Type) (*Type, error) {
				return &Type{Kind: TArray, Elem: elem, ArrayLen: n}, nil
			})
		case LPAREN:
			if err := p.next(); err != nil {
				return "", nil, Pos{}, err
			}
			params, variadic, err := p.parseParamList()
			if err != nil {
				return "", nil, Pos{}, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return "", nil, Pos{}, err
			}
			ps, v := params, variadic
			suffixes = append(suffixes, func(ret *Type) (*Type, error) {
				return &Type{Kind: TFunc, Ret: ret, Params: ps, Variadic: v}, nil
			})
		default:
			goto build
		}
	}
build:
	finalName, finalPos := name, namePos
	innerF := inner
	ptrsCopy := ptrs
	sufCopy := suffixes
	complete := func(base *Type) (string, *Type, Pos, error) {
		t := base
		for _, pl := range ptrsCopy {
			pt := NewPointer(t)
			pt.Quals = pl.quals
			t = pt
		}
		var err error
		for i := len(sufCopy) - 1; i >= 0; i-- {
			t, err = sufCopy[i](t)
			if err != nil {
				return "", nil, Pos{}, err
			}
		}
		if innerF != nil {
			return innerF(t)
		}
		return finalName, t, finalPos, nil
	}
	return name, complete, namePos, nil
}

// parenStartsDeclarator decides whether '(' begins a nested declarator
// (true) or a parameter list of an abstract declarator (false).
func (p *Parser) parenStartsDeclarator() bool {
	// Cheap one-token lookahead on the lexer state.
	saved := *p.lex
	savedTok := p.tok
	defer func() { *p.lex = saved; p.tok = savedTok }()
	if p.next() != nil {
		return false
	}
	switch p.tok.Kind {
	case STAR, IDENT:
		// "(*" is always a declarator. "(name" is a declarator unless
		// name is a typedef (then it is a parameter list).
		if p.tok.Kind == IDENT {
			_, isType := p.typedefs[p.tok.Text]
			return !isType
		}
		return true
	case LPAREN:
		return true
	default:
		return false
	}
}

func (p *Parser) parseParamList() ([]Param, bool, error) {
	var params []Param
	variadic := false
	if p.tok.Kind == RPAREN {
		return nil, false, nil // ()
	}
	// (void)
	if p.tok.Kind == kwVoid {
		saved := *p.lex
		savedTok := p.tok
		if err := p.next(); err != nil {
			return nil, false, err
		}
		if p.tok.Kind == RPAREN {
			return nil, false, nil
		}
		*p.lex = saved
		p.tok = savedTok
	}
	for {
		if p.tok.Kind == ELLIPSIS {
			variadic = true
			if err := p.next(); err != nil {
				return nil, false, err
			}
			break
		}
		ds, err := p.parseDeclSpecs()
		if err != nil {
			return nil, false, err
		}
		name, typ, namePos, err := p.parseDeclarator(ds.base.Clone(), true)
		if err != nil {
			return nil, false, err
		}
		// Arrays and functions decay to pointers in parameter position.
		typ = decay(typ)
		params = append(params, Param{Name: name, Type: typ, Pos: namePos})
		if p.tok.Kind != COMMA {
			break
		}
		if err := p.next(); err != nil {
			return nil, false, err
		}
	}
	return params, variadic, nil
}

// decay converts array-of-T to pointer-to-T and function types to
// pointers-to-function in parameter position.
func decay(t *Type) *Type {
	switch t.Kind {
	case TArray:
		pt := NewPointer(t.Elem)
		pt.Quals = t.Quals
		return pt
	case TFunc:
		return NewPointer(t)
	default:
		return t
	}
}

// parseExternalDecl parses one top-level declaration, which may expand to
// several Decl nodes (comma-separated declarators).
func (p *Parser) parseExternalDecl() ([]Decl, error) {
	ds, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	// Tag-only declaration: "struct s { ... };"
	if p.tok.Kind == SEMI {
		if ds.storage == SCTypedef {
			return nil, p.errf("typedef without a declarator")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return []Decl{&TagDecl{Type: ds.base, Pos: ds.pos}}, nil
	}

	var decls []Decl
	first := true
	for {
		name, typ, namePos, err := p.parseDeclarator(ds.base.Clone(), false)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("expected declared name")
		}
		if ds.storage == SCTypedef {
			p.typedefs[name] = typ
			decls = append(decls, &TypedefDecl{Name: name, Type: typ, Pos: namePos})
		} else if first && typ.Kind == TFunc && p.tok.Kind == LBRACE {
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			decls = append(decls, &FuncDecl{Name: name, Type: typ, Storage: ds.storage, Body: body, Pos: namePos})
			return decls, nil
		} else if typ.Kind == TFunc {
			decls = append(decls, &FuncDecl{Name: name, Type: typ, Storage: ds.storage, Pos: namePos})
		} else {
			var init Expr
			if p.tok.Kind == ASSIGN {
				if err := p.next(); err != nil {
					return nil, err
				}
				init, err = p.parseInitializer()
				if err != nil {
					return nil, err
				}
			}
			decls = append(decls, &VarDecl{Name: name, Type: typ, Storage: ds.storage, Init: init, Pos: namePos})
		}
		first = false
		if p.tok.Kind != COMMA {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseInitializer() (Expr, error) {
	if p.tok.Kind != LBRACE {
		return p.parseAssignment()
	}
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	var items []Expr
	for p.tok.Kind != RBRACE {
		item, err := p.parseInitializer()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.tok.Kind != COMMA {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return &InitList{Items: items, Pos: pos}, nil
}

// evalConst evaluates small constant expressions (for array sizes and
// enum values). It returns false when the value is not statically known
// to this evaluator.
func (p *Parser) evalConst(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *CharLit:
		if len(e.Text) >= 3 && e.Text[1] != '\\' {
			return int64(e.Text[1]), true
		}
		return 0, false
	case *Ident:
		v, ok := p.enums[e.Name]
		return v, ok
	case *Unary:
		v, ok := p.evalConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case UNeg:
			return -v, true
		case UPlus:
			return v, true
		case UBNot:
			return ^v, true
		case UNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *Binary:
		l, ok1 := p.evalConst(e.L)
		r, ok2 := p.evalConst(e.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case BAdd:
			return l + r, true
		case BSub:
			return l - r, true
		case BMul:
			return l * r, true
		case BDiv:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case BMod:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case BShl:
			return l << uint(r&63), true
		case BShr:
			return l >> uint(r&63), true
		case BAnd:
			return l & r, true
		case BOr:
			return l | r, true
		case BXor:
			return l ^ r, true
		}
		return 0, false
	default:
		return 0, false
	}
}

func parseIntText(text string) int64 {
	t := text
	for len(t) > 0 {
		last := t[len(t)-1]
		if last == 'u' || last == 'U' || last == 'l' || last == 'L' {
			t = t[:len(t)-1]
			continue
		}
		break
	}
	v, err := strconv.ParseInt(t, 0, 64)
	if err != nil {
		// Out-of-range literals saturate; the analysis does not use the value.
		u, uerr := strconv.ParseUint(t, 0, 64)
		if uerr == nil {
			return int64(u)
		}
		return 0
	}
	return v
}
