package server

// Flight-recorder tests: tail retention without client opt-in (the
// PR's acceptance criterion), ring eviction under concurrency, the
// event journal endpoint (including long-poll), introspection, and the
// /metrics content-negotiation matrix.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", url, err, data)
		}
	}
	return resp
}

// TestFlightRecorderRetainsWithoutOptIn is the acceptance criterion:
// a request that errors, and a request whose delta session fell back
// cold, are retrievable at /v1/traces/<id> without the client having
// passed ?trace=1.
func TestFlightRecorderRetainsWithoutOptIn(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	// An erroring request (unknown analysis → 400) is retained.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"sources":[{"path":"p.c","text":"int x;"}],"analyses":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-analysis POST: status %d, want 400", resp.StatusCode)
	}
	errID := resp.Header.Get("X-Trace-Id")
	if errID == "" {
		t.Fatal("error response missing X-Trace-Id")
	}
	tr, err := http.Get(ts.URL + "/v1/traces/" + errID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("error request's trace not retained: status %d", tr.StatusCode)
	}

	// A session request whose solve fell back cold (the priming
	// first-solve) is retained, and its trace carries pipeline spans.
	r2, _ := postAnalyze(t, ts, sessionBody("flight", prog))
	if r2.Header.Get("X-Cache") != "session" {
		t.Fatalf("X-Cache = %q, want session", r2.Header.Get("X-Cache"))
	}
	fbID := r2.Header.Get("X-Trace-Id")
	tr2, err := http.Get(ts.URL + "/v1/traces/" + fbID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tr2.Body)
	tr2.Body.Close()
	if tr2.StatusCode != http.StatusOK {
		t.Fatalf("fallback request's trace not retained: status %d", tr2.StatusCode)
	}
	if !strings.Contains(string(body), "driver.solve") {
		t.Errorf("retained trace missing pipeline spans:\n%.300s", body)
	}

	// The retention shows up in the counters.
	var intro Introspection
	getJSON(t, ts.URL+"/v1/introspect", &intro)
	if intro.Retention.Admitted == 0 || intro.Retention.ByReason["error"] == 0 || intro.Retention.ByReason["fallback"] == 0 {
		t.Errorf("retention counters = %+v, want error and fallback matches", intro.Retention.RecorderStats)
	}
}

// TestTraceRingEvictionHammer hammers a tiny retention ring from
// concurrent requests (run under -race in CI): evicted ids 404 cleanly
// and the retention counters reconcile with admissions.
func TestTraceRingEvictionHammer(t *testing.T) {
	ts := httptest.NewServer(New(Config{TraceEntries: 4}))
	defer ts.Close()

	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// ?trace=1 forces retention, so every request competes
				// for the 4 ring slots.
				resp, err := http.Post(ts.URL+"/v1/analyze?trace=1", "application/json",
					strings.NewReader(analyzeBody(map[string]string{
						"p.c": fmt.Sprintf("int f%d_%d(int *p) { return *p; }", g, i),
					})))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				ids = append(ids, resp.Header.Get("X-Trace-Id"))
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	var intro Introspection
	getJSON(t, ts.URL+"/v1/introspect", &intro)
	ret := intro.Retention
	if ret.Admitted != 40 {
		t.Fatalf("admitted = %d, want 40 (every ?trace=1 request)", ret.Admitted)
	}
	if ret.Admitted != uint64(ret.Resident)+ret.Evicted {
		t.Fatalf("admitted %d != resident %d + evicted %d", ret.Admitted, ret.Resident, ret.Evicted)
	}
	if ret.Resident != 4 {
		t.Fatalf("resident = %d, want ring size 4", ret.Resident)
	}

	// Every id either serves its trace (resident) or 404s (evicted);
	// the split matches the ring exactly.
	var served, missing int
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			served++
		case http.StatusNotFound:
			missing++
		default:
			t.Fatalf("GET /v1/traces/%s: status %d", id, resp.StatusCode)
		}
	}
	if served != 4 || missing != 36 {
		t.Fatalf("served/missing = %d/%d, want 4/36", served, missing)
	}
}

// TestEventsEndpoint covers the journal surface: events appear with
// monotonic sequence numbers, ?since resumes incrementally, and ?wait=1
// long-polls until a new event arrives.
func TestEventsEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	// A session's priming solve journals a delta_fallback event.
	postAnalyze(t, ts, sessionBody("ev", prog))

	var ev EventsResponse
	getJSON(t, ts.URL+"/v1/events", &ev)
	if len(ev.Events) == 0 {
		t.Fatal("no events after a session fallback")
	}
	var fallback *string
	for i, e := range ev.Events {
		if i > 0 && e.Seq <= ev.Events[i-1].Seq {
			t.Fatalf("sequence not monotonic: %+v", ev.Events)
		}
		if e.Type == "delta_fallback" {
			r := e.Attrs["reason"]
			fallback = &r
		}
	}
	if fallback == nil || *fallback != "first-solve" {
		t.Fatalf("missing delta_fallback event with reason first-solve: %+v", ev.Events)
	}
	if ev.Next != ev.Events[len(ev.Events)-1].Seq {
		t.Fatalf("next = %d, want last seq %d", ev.Next, ev.Events[len(ev.Events)-1].Seq)
	}

	// Resuming from next returns nothing new.
	var ev2 EventsResponse
	getJSON(t, fmt.Sprintf("%s/v1/events?since=%d", ts.URL, ev.Next), &ev2)
	if len(ev2.Events) != 0 || ev2.Next != ev.Next {
		t.Fatalf("resume returned %d events, next %d; want 0, %d", len(ev2.Events), ev2.Next, ev.Next)
	}

	// A long-poll parked on ?wait=1 returns once a new event arrives.
	done := make(chan EventsResponse, 1)
	go func() {
		var ev3 EventsResponse
		getJSON(t, fmt.Sprintf("%s/v1/events?since=%d&wait=1", ts.URL, ev.Next), &ev3)
		done <- ev3
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	postAnalyze(t, ts, sessionBody("ev2", prog))
	select {
	case ev3 := <-done:
		if len(ev3.Events) == 0 {
			t.Fatal("long-poll returned no events after one was appended")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned")
	}

	// Malformed since is a 400.
	resp, err := http.Get(ts.URL + "/v1/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("since=banana: status %d, want 400", resp.StatusCode)
	}
}

// TestIntrospectEndpoint checks /v1/introspect exposes retained
// sessions with their last-run stats, worker state, and SLO burn rates.
func TestIntrospectEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxConcurrent: 3}))
	defer ts.Close()

	postAnalyze(t, ts, sessionBody("intro", prog))
	postAnalyze(t, ts, sessionBody("intro", prog+"\nint g(int *q) { return deref(q); }\n"))

	var intro Introspection
	getJSON(t, ts.URL+"/v1/introspect", &intro)
	if intro.Workers.MaxConcurrent != 3 {
		t.Errorf("max_concurrent = %d, want 3", intro.Workers.MaxConcurrent)
	}
	if len(intro.Sessions) != 1 {
		t.Fatalf("sessions = %+v, want one", intro.Sessions)
	}
	last := intro.Sessions[0].Last
	if last == nil || last.Runs != 2 {
		t.Fatalf("session snapshot = %+v, want 2 runs", last)
	}
	if last.Solver.Vars == 0 {
		t.Errorf("session snapshot missing solver stats: %+v", last)
	}
	if !last.Delta.Applied {
		t.Errorf("second run's delta should have applied: %+v", last.Delta)
	}
	if intro.Caches.Session.Entries != 1 {
		t.Errorf("session cache entries = %d, want 1", intro.Caches.Session.Entries)
	}
	found := false
	for _, slo := range intro.SLOs {
		if slo.Endpoint == "analyze" {
			found = true
			if slo.ObjectiveMS != 250 || slo.Target != 0.99 {
				t.Errorf("default analyze SLO = %+v", slo)
			}
			for _, w := range []string{"5m", "1h", "6h"} {
				if _, ok := slo.Burn[w]; !ok {
					t.Errorf("missing burn window %q: %+v", w, slo.Burn)
				}
			}
		}
	}
	if !found {
		t.Error("introspection missing the default analyze SLO")
	}
}

// TestMetricsNegotiationMatrix is the satellite's explicit matrix:
// wildcard, excluded, and absent Accept headers get JSON; text/plain
// gets Prometheus; the OpenMetrics accept (and ?format=openmetrics)
// gets OpenMetrics with exemplars and the # EOF terminator.
func TestMetricsNegotiationMatrix(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	// One analyzed request so histograms have a sample and the recorder
	// has a retained trace to use as an exemplar.
	r1, _ := postAnalyze(t, ts, analyzeBody(map[string]string{"prog.c": prog}))
	traceID := r1.Header.Get("X-Trace-Id")

	cases := []struct {
		accept, wantCT string
	}{
		{"", "application/json"},
		{"*/*", "application/json"},
		{"text/plain;q=0", "application/json"},
		{"text/html,application/xhtml+xml,*/*;q=0.8", "application/json"},
		{"text/plain", "text/plain; version=0.0.4; charset=utf-8"},
		{"application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1",
			"application/openmetrics-text; version=1.0.0; charset=utf-8"},
	}
	for _, c := range cases {
		resp, data := getMetrics(t, ts, c.accept)
		if ct := resp.Header.Get("Content-Type"); ct != c.wantCT {
			t.Errorf("Accept %q: Content-Type = %q, want %q", c.accept, ct, c.wantCT)
		}
		if strings.HasPrefix(c.wantCT, "application/json") {
			var m Metrics
			if err := json.Unmarshal(data, &m); err != nil {
				t.Errorf("Accept %q: JSON shape broken: %v", c.accept, err)
			}
		}
	}

	// ?format= wins over the header.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=openmetrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("?format=openmetrics Content-Type = %q", ct)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF")
	}
	if !strings.Contains(text, "# TYPE cquald_requests counter\n") {
		t.Error("OpenMetrics counter family kept _total suffix")
	}
	want := fmt.Sprintf(`# {trace_id="%s"}`, traceID)
	if !strings.Contains(text, want) {
		t.Errorf("OpenMetrics exposition missing exemplar %q", want)
	}

	// The Prometheus exposition carries no exemplar syntax.
	_, promData := getMetrics(t, ts, "text/plain")
	if strings.Contains(string(promData), "trace_id=") {
		t.Error("Prometheus exposition leaked exemplars")
	}
}
