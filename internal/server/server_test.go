package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
)

const prog = `
int deref(const int *p) { return *p; }
int entry(int *q) { return deref(q); }
`

func postAnalyze(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func analyzeBody(srcs map[string]string) string {
	req := AnalyzeRequest{}
	for p, text := range srcs {
		req.Sources = append(req.Sources, SourceJSON{Path: p, Text: text})
	}
	b, _ := json.Marshal(req)
	return string(b)
}

// TestAnalyzeMissThenHit is the acceptance check: the second POST of
// unchanged sources is served from cache, byte-identical to the first,
// and the hit is visible in /metrics.
func TestAnalyzeMissThenHit(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	body := analyzeBody(map[string]string{"prog.c": prog})
	r1, d1 := postAnalyze(t, ts, body)
	if r1.StatusCode != 200 || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first POST: status %d, X-Cache %q; want 200 miss", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	r2, d2 := postAnalyze(t, ts, body)
	if r2.StatusCode != 200 || r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second POST: status %d, X-Cache %q; want 200 hit", r2.StatusCode, r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("cache hit not byte-identical to cold run:\n%s\n---\n%s", d1, d2)
	}

	// The local driver over the same sources must agree modulo timings
	// (the cached response freezes the cold run's timings).
	res, err := driver.Run(driver.Config{}, []driver.Source{{Path: "prog.c", Text: prog}})
	if err != nil {
		t.Fatal(err)
	}
	local, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if stripMS(string(d1)) != stripMS(string(local)+"\n") {
		t.Fatalf("server report differs from local driver:\n%s\n---\n%s", d1, local)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2 || m.Analyses != 1 || m.ResultCache.Hits != 1 {
		t.Fatalf("metrics = %+v; want 2 requests, 1 analysis, 1 result-cache hit", m)
	}
	if m.Stages.Runs != 1 {
		t.Fatalf("stage runs = %d; want 1 (hits spend time in no stage)", m.Stages.Runs)
	}
}

// stripMS removes the wall-clock lines (the only permitted variance).
func stripMS(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, "_ms\"") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestAnalyzeBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, 400},
		{"no sources", `{"sources":[]}`, 400},
		{"negative jobs", `{"sources":[{"path":"a.c","text":"int x;"}],"jobs":-1}`, 400},
		{"missing path", `{"sources":[{"text":"int x;"}]}`, 400},
		{"missing text", `{"sources":[{"path":"a.c"}]}`, 400},
		{"unknown field", `{"sources":[{"path":"a.c","text":"int x;"}],"bogus":1}`, 400},
		{"malformed", `{"sources":`, 400},
	} {
		resp, data := postAnalyze(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d; want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not JSON with error field", tc.name, data)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze: status %d; want 405", resp.StatusCode)
	}
}

// TestAnalyzeParseErrorStillReports: front-end failures are a valid
// report (diagnostics, no summary), not an HTTP error.
func TestAnalyzeParseErrorStillReports(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, data := postAnalyze(t, ts, analyzeBody(map[string]string{"bad.c": "int f( {"}))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d; want 200 (%s)", resp.StatusCode, data)
	}
	var rep struct {
		Summary     *json.RawMessage  `json:"summary"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary != nil || len(rep.Diagnostics) == 0 {
		t.Fatalf("want nil summary and diagnostics, got %s", data)
	}
}

// TestAnalyzeDeadline: a deadline that cannot be met (it covers queue
// time) answers 504 and counts a timeout.
func TestAnalyzeDeadline(t *testing.T) {
	srv := New(Config{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postAnalyze(t, ts, analyzeBody(map[string]string{"prog.c": prog}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d; want 504", resp.StatusCode)
	}
	if m := srv.Snapshot(); m.Timeouts != 1 {
		t.Fatalf("timeouts = %d; want 1", m.Timeouts)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || strings.TrimSpace(string(data)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, data)
	}
}

// TestConcurrentClients hammers one server with a mix of distinct
// programs from many goroutines; under -race this exercises the caches,
// the limiter, and the metrics. Every response must be byte-identical
// to that program's first response.
func TestConcurrentClients(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const variants = 4
	bodies := make([]string, variants)
	firsts := make([][]byte, variants)
	for i := range bodies {
		text := prog + fmt.Sprintf("int extra%d(int x) { return x + %d; }\n", i, i)
		bodies[i] = analyzeBody(map[string]string{"prog.c": text})
		resp, data := postAnalyze(t, ts, bodies[i])
		if resp.StatusCode != 200 {
			t.Fatalf("prime %d: status %d", i, resp.StatusCode)
		}
		firsts[i] = data
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				v := (g + i) % variants
				resp, data := postAnalyze(t, ts, bodies[v])
				if resp.StatusCode != 200 {
					t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
				if !bytes.Equal(data, firsts[v]) {
					t.Errorf("goroutine %d: response for variant %d differs from first", g, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	m := srv.Snapshot()
	if m.Requests != variants+80 || m.Failures != 0 {
		t.Fatalf("metrics = %+v; want %d requests, 0 failures", m, variants+80)
	}
	if m.ResultCache.Hits < 80 {
		t.Fatalf("result-cache hits = %d; want >= 80", m.ResultCache.Hits)
	}
}
