package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const taintProg = `
extern char *getenv(const char *name);
extern int printf(const char *fmt, ...);

int greet(void) {
    char *user = getenv("USER");
    return printf(user);
}
`

const taintPreludeText = `analysis taint
getenv(_) -> tainted
printf(untainted, ...)
`

func taintBody(t *testing.T, analyses []string, prelude string) string {
	t.Helper()
	req := AnalyzeRequest{
		Sources:  []SourceJSON{{Path: "t.c", Text: taintProg}},
		Analyses: analyses,
	}
	if prelude != "" {
		req.Preludes = []PreludeJSON{{Path: "taint.q", Text: prelude}}
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAnalyzeTaintSmoke is the daemon taint acceptance check: a taint
// request reports the planted flow with its trace, the warm repeat is a
// byte-identical cache hit, and /metrics carries per-analysis counters.
func TestAnalyzeTaintSmoke(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	body := taintBody(t, []string{"taint"}, taintPreludeText)
	r1, d1 := postAnalyze(t, ts, body)
	if r1.StatusCode != 200 || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold POST: status %d, X-Cache %q", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	var doc struct {
		Analyses    []string `json:"analyses"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Analysis string `json:"analysis"`
			Flow     []struct {
				Note string `json:"note"`
			} `json:"flow"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(d1, &doc); err != nil {
		t.Fatalf("invalid report: %v\n%s", err, d1)
	}
	if len(doc.Analyses) != 1 || doc.Analyses[0] != "taint" {
		t.Errorf("analyses = %v", doc.Analyses)
	}
	conflicts := 0
	for _, d := range doc.Diagnostics {
		if d.Code != "qualifier-conflict" {
			continue
		}
		conflicts++
		if d.Analysis != "taint" || len(d.Flow) == 0 {
			t.Errorf("conflict = %+v; want taint-owned with a flow trace", d)
		}
		if !strings.Contains(d.Flow[0].Note, `result of "getenv" is tainted`) {
			t.Errorf("first hop = %q", d.Flow[0].Note)
		}
	}
	if conflicts != 1 {
		t.Fatalf("%d conflicts, want 1:\n%s", conflicts, d1)
	}

	// Warm cache: byte-identical.
	r2, d2 := postAnalyze(t, ts, body)
	if r2.Header.Get("X-Cache") != "hit" || !bytes.Equal(d1, d2) {
		t.Fatalf("warm POST not a byte-identical hit (X-Cache %q)", r2.Header.Get("X-Cache"))
	}

	// A const request over the same sources must not alias the taint
	// entry: different analysis set, different key.
	r3, _ := postAnalyze(t, ts, taintBody(t, nil, ""))
	if r3.Header.Get("X-Cache") != "miss" {
		t.Fatal("const request aliased the taint cache entry")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	taintM := m.PerAnalysis["taint"]
	constM := m.PerAnalysis["const"]
	if taintM.Requests != 2 || taintM.Diagnostics != 1 {
		t.Errorf("taint metrics = %+v; want 2 requests, 1 diagnostic (hits not recounted)", taintM)
	}
	if constM.Requests != 1 {
		t.Errorf("const metrics = %+v; want 1 request", constM)
	}
}

func TestAnalyzeUnknownAnalysis(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, data := postAnalyze(t, ts, taintBody(t, []string{"bogus"}, ""))
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	var e errorJSON
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, `unknown analysis "bogus"`) {
		t.Errorf("error body = %s", data)
	}
}

// TestAnalyzePreludeErrorStillReports: a malformed prelude is an input
// problem — a 200 report carrying a prelude-error diagnostic, mirroring
// how parse errors are served.
func TestAnalyzePreludeErrorStillReports(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, data := postAnalyze(t, ts, taintBody(t, []string{"taint"}, "no header here\n"))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "prelude-error") {
		t.Errorf("no prelude-error diagnostic:\n%s", data)
	}
}
