package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// getMetrics fetches /metrics with the given Accept header.
func getMetrics(t *testing.T, ts *httptest.Server, accept string) (*http.Response, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestMetricsPrometheus is the exposition acceptance check: the default
// response stays JSON with the original shape, and Accept: text/plain
// (or ?format=prometheus) selects Prometheus text including histogram
// bucket series.
func TestMetricsPrometheus(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	postAnalyze(t, ts, analyzeBody(map[string]string{"prog.c": prog}))

	resp, data := getMetrics(t, ts, "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("default /metrics is not the JSON shape: %v", err)
	}
	if m.Requests != 1 || m.Analyses != 1 || m.Stages.Runs != 1 {
		t.Errorf("requests/analyses/runs = %d/%d/%d, want 1/1/1", m.Requests, m.Analyses, m.Stages.Runs)
	}

	resp, data = getMetrics(t, ts, "text/plain")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus Content-Type = %q, want text/plain", ct)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE cquald_requests_total counter",
		"cquald_requests_total 1",
		"# TYPE cquald_request_seconds histogram",
		`cquald_request_seconds_bucket{cache="miss",le="+Inf"} 1`,
		`cquald_stage_seconds_bucket{stage="solve",le="+Inf"} 1`,
		`cquald_analysis_requests_total{analysis="const"} 1`,
		`cquald_cache_misses{cache="result"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q", want)
		}
	}

	// ?format=prometheus selects the same rendering without the header.
	resp2, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(data2), "# TYPE cquald_request_seconds histogram") {
		t.Error("?format=prometheus did not render Prometheus text")
	}
}

// TestMetricsPreregisterAnalyses: every registered analysis — the
// expansion pack included — has its request counter pre-registered on
// the lock-free /metrics path before any request names it, so scrapes
// see a stable series set from the first sample.
func TestMetricsPreregisterAnalyses(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	_, data := getMetrics(t, ts, "text/plain")
	text := string(data)
	for _, analysis := range []string{"const", "taint", "unique", "fdstate"} {
		want := fmt.Sprintf("cquald_analysis_requests_total{analysis=%q} 0", analysis)
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing pre-registered series %q", want)
		}
	}
}

// TestRequestTracing checks the per-request trace path: every analyze
// response carries an X-Trace-Id, ?trace=1 forces retention of a Chrome
// trace retrievable at /v1/traces/<id>, and the flight recorder's
// always-on recording leaves the report body byte-identical.
func TestRequestTracing(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	body := analyzeBody(map[string]string{"prog.c": prog})
	r1, d1 := postAnalyze(t, ts, body)
	if r1.Header.Get("X-Trace-Id") == "" {
		t.Error("untraced response missing X-Trace-Id")
	}

	resp, err := http.Post(ts.URL+"/v1/analyze?trace=1", "application/json",
		strings.NewReader(analyzeBody(map[string]string{"prog2.c": prog + "\nint extra(int *r) { return deref(r); }\n"})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("traced response missing X-Trace-Id")
	}

	tresp, err := http.Get(ts.URL + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != 200 {
		t.Fatalf("GET /v1/traces/%s: status %d", id, tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"driver.run", "driver.constrain", "solve.class"} {
		if !names[want] {
			t.Errorf("trace missing span %q; got %v", want, names)
		}
	}

	// The first request never passed ?trace=1, but the flight recorder's
	// tail-retention policy keeps it anyway (it is the first request of
	// its latency bucket and the 1-in-K sample): its trace is
	// retrievable after the fact. This is the recorder's whole point —
	// see TestFlightRecorderRetainsWithoutOptIn for the full contract.
	nresp, err := http.Get(ts.URL + "/v1/traces/" + r1.Header.Get("X-Trace-Id"))
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusOK {
		t.Errorf("tail-retained id served status %d, want 200", nresp.StatusCode)
	}

	// An id the server never issued 404s.
	nresp2, err := http.Get(ts.URL + "/v1/traces/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	nresp2.Body.Close()
	if nresp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id served status %d, want 404", nresp2.StatusCode)
	}

	// Tracing never leaks into the report body: re-POST the first batch
	// with ?trace=1 and compare against the cached untraced bytes.
	resp3, err := http.Post(ts.URL+"/v1/analyze?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	d3, _ := io.ReadAll(resp3.Body)
	if string(d3) != string(d1) {
		t.Error("?trace=1 changed the report body")
	}
}

// TestMetricsAnalyzeRace hammers /metrics (both renderings) while
// analyses run. The scrape path is lock-free; under -race this verifies
// every counter it reads is safely published.
func TestMetricsAnalyzeRace(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				// Alternate a shared program (cache hits) with unique
				// ones (misses) so both paths run under the scrapers.
				src := prog
				if j%2 == 1 {
					src = fmt.Sprintf("int f%d_%d(int *p) { return *p; }", i, j)
				}
				url := ts.URL + "/v1/analyze"
				if j%3 == 0 {
					url += "?trace=1"
				}
				resp, err := http.Post(url, "application/json",
					strings.NewReader(analyzeBody(map[string]string{"prog.c": src})))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			accept := ""
			if i%2 == 0 {
				accept = "text/plain"
			}
			for j := 0; j < 20; j++ {
				resp, data := getMetrics(t, ts, accept)
				if resp.StatusCode != 200 || len(data) == 0 {
					t.Errorf("scrape %d/%d: status %d, %d bytes", i, j, resp.StatusCode, len(data))
					return
				}
			}
		}(i)
	}
	wg.Wait()

	_, data := getMetrics(t, ts, "")
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 20 {
		t.Errorf("requests = %d, want 20", m.Requests)
	}
	if m.Analyses == 0 || m.ResultCache.Hits == 0 {
		t.Errorf("analyses = %d, hits = %d; want both nonzero", m.Analyses, m.ResultCache.Hits)
	}
}

// TestPprofOptIn checks the profiling endpoints are mounted only when
// configured.
func TestPprofOptIn(t *testing.T) {
	off := httptest.NewServer(New(Config{}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without EnablePprof: status %d", resp.StatusCode)
	}

	on := httptest.NewServer(New(Config{EnablePprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index with EnablePprof: status %d, want 200", resp.StatusCode)
	}
}
