package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sessV1 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); }
`

const sessV2 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); probe(buf); }
`

func sessionBody(session, src string) string {
	b, _ := json.Marshal(AnalyzeRequest{
		Sources: []SourceJSON{{Path: "prog.c", Text: src}},
		Session: session,
	})
	return string(b)
}

// deltaBlock extracts the solver.delta block of a report.
func deltaBlock(t *testing.T, report []byte) map[string]any {
	t.Helper()
	var m struct {
		Solver struct {
			Delta map[string]any `json:"delta"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(report, &m); err != nil {
		t.Fatal(err)
	}
	return m.Solver.Delta
}

// stripDelta removes the one block a session report legitimately adds
// over a cold report, so the remainder can be compared byte-for-byte
// (modulo timings, which stripMS handles).
func stripDelta(t *testing.T, report []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(report, &m); err != nil {
		t.Fatal(err)
	}
	if s, ok := m["solver"].(map[string]any); ok {
		delete(s, "delta")
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return stripMS(string(out))
}

// TestAnalyzeSession drives one corpus through v1 → v2 → v1 with a
// session id and checks the retained session against cold runs of the
// same sources: identical reports modulo the delta block, a delta hit
// on the edits, and the counters visible in /metrics.
func TestAnalyzeSession(t *testing.T) {
	ts := httptest.NewServer(New(Config{Jobs: 1}))
	defer ts.Close()

	var reports [][]byte
	for round, src := range []string{sessV1, sessV2, sessV1} {
		resp, data := postAnalyze(t, ts, sessionBody("corpus-a", src))
		if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "session" {
			t.Fatalf("round %d: status %d, X-Cache %q; want 200 session",
				round, resp.StatusCode, resp.Header.Get("X-Cache"))
		}
		d := deltaBlock(t, data)
		if d == nil {
			t.Fatalf("round %d: session response has no solver.delta block:\n%s", round, data)
		}
		if round == 0 {
			if d["applied"] != false || d["fallback"] != "first-solve" {
				t.Fatalf("round 0 delta: %v", d)
			}
		} else if d["applied"] != true {
			t.Fatalf("round %d should be a delta hit: %v", round, d)
		}
		reports = append(reports, data)
	}

	// Each session response must match a sessionless run of the same
	// sources once the delta block is stripped.
	for round, src := range []string{sessV1, sessV2, sessV1} {
		resp, cold := postAnalyze(t, ts, analyzeBody(map[string]string{"prog.c": src}))
		if resp.StatusCode != 200 {
			t.Fatalf("cold round %d: status %d", round, resp.StatusCode)
		}
		if got, want := stripDelta(t, reports[round]), stripDelta(t, cold); got != want {
			t.Fatalf("round %d: session report differs from cold:\n%s\n---\n%s", round, got, want)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Delta.Hits != 2 || m.Delta.Fallbacks != 1 {
		t.Fatalf("delta totals: %+v; want 2 hits, 1 fallback", m.Delta)
	}
	if m.Sessions.Entries != 1 || m.Sessions.Misses != 1 || m.Sessions.Hits != 2 {
		t.Fatalf("session store stats: %+v", m.Sessions)
	}
	// Session traffic must not leak into the result cache: the cold
	// verification runs (two distinct source versions) are its only
	// entries.
	if m.ResultCache.Entries != 2 {
		t.Fatalf("result cache entries: %d; want 2 (cold runs only)", m.ResultCache.Entries)
	}

	promResp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, err := io.ReadAll(promResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cquald_delta_hits_total 2",
		"cquald_delta_fallbacks_total 1",
		`cquald_cache_entries{cache="session"} 1`,
		`cquald_delta_dirty_vars_count 2`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, prom)
		}
	}
}

// TestAnalyzeSessionIsolation pins the session key: two corpus ids
// never share state, and the same id under a different mode is a
// different session.
func TestAnalyzeSessionIsolation(t *testing.T) {
	ts := httptest.NewServer(New(Config{Jobs: 1}))
	defer ts.Close()

	if _, data := postAnalyze(t, ts, sessionBody("corpus-a", sessV1)); deltaBlock(t, data)["fallback"] != "first-solve" {
		t.Fatalf("corpus-a round 0: %v", deltaBlock(t, data))
	}
	// A different corpus id must start from its own first solve.
	if _, data := postAnalyze(t, ts, sessionBody("corpus-b", sessV1)); deltaBlock(t, data)["fallback"] != "first-solve" {
		t.Fatalf("corpus-b must not reuse corpus-a's session: %v", deltaBlock(t, data))
	}
	// Same id, different mode: also a fresh session.
	b, _ := json.Marshal(AnalyzeRequest{
		Sources: []SourceJSON{{Path: "prog.c", Text: sessV1}},
		Session: "corpus-a",
		Poly:    true,
	})
	if _, data := postAnalyze(t, ts, string(b)); deltaBlock(t, data)["fallback"] != "first-solve" {
		t.Fatalf("poly corpus-a must not reuse mono corpus-a's session: %v", deltaBlock(t, data))
	}
}

// TestSessionEviction checks the LRU bound: with room for one session,
// alternating corpora re-solve cold every time.
func TestSessionEviction(t *testing.T) {
	ts := httptest.NewServer(New(Config{Jobs: 1, SessionEntries: 1}))
	defer ts.Close()

	for round, corpus := range []string{"a", "b", "a"} {
		_, data := postAnalyze(t, ts, sessionBody(corpus, sessV1))
		if d := deltaBlock(t, data); d["fallback"] != "first-solve" {
			t.Fatalf("round %d (%s): evicted corpus should cold-solve: %v", round, corpus, d)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Sessions.Entries != 1 || m.Sessions.Evictions != 2 {
		t.Fatalf("session store stats: %+v; want 1 entry, 2 evictions", m.Sessions)
	}
}
