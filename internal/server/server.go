// Package server wraps the staged analysis driver in a long-running
// HTTP/JSON service — the resident form of the paper's Section 4.4 batch
// experiment. POST /v1/analyze accepts a batch of C sources and returns
// the same JSON report `cqual -json` emits; repeated requests for
// unchanged sources are served from a content-addressed result cache,
// and partially-changed programs re-derive only the fragments of the
// functions that changed, via the shared per-function summary store.
//
// Endpoints:
//
//	POST /v1/analyze  — analyze a batch of sources; the response body is
//	                    byte-identical to cqual -json over the same
//	                    inputs, X-Cache reports hit or miss, X-Trace-Id
//	                    identifies the request. Every request records
//	                    spans into the flight recorder; at request end a
//	                    tail-retention policy decides whether the trace
//	                    is kept (slow, failed, shed, delta-fallback, and
//	                    sampled requests are; ?trace=1 forces it)
//	GET  /healthz     — liveness probe
//	GET  /metrics     — JSON counters by default: requests, cache stats,
//	                    per-stage timing aggregates, per-analysis request
//	                    and diagnostic counts. Accept: text/plain (or
//	                    ?format=prometheus) selects Prometheus text with
//	                    the latency histograms; Accept:
//	                    application/openmetrics-text (or
//	                    ?format=openmetrics) selects OpenMetrics 1.0 with
//	                    trace-id exemplars on histogram buckets
//	GET  /v1/traces/<id> — the Chrome trace-event JSON of a retained
//	                    request (tail-retained or ?trace=1-forced)
//	GET  /v1/events   — the structured event journal: session evictions,
//	                    delta fallbacks, cache churn, slow requests.
//	                    ?since=<seq> resumes after a known event;
//	                    ?wait=1 long-polls until something newer arrives
//	GET  /v1/introspect — live server state: retained sessions with
//	                    their last solve/delta stats, cache occupancy,
//	                    worker/queue depths, retention ring and journal
//	                    stats, SLO burn rates
//	/debug/pprof/     — net/http/pprof profiling handlers, mounted only
//	                    when Config.EnablePprof is set
//
// The metrics scrape path is lock-free: every counter the handler reads
// is an atomic (or an obs.Registry series, which is atomics underneath),
// so a scraper polling /metrics never contends with in-flight analyses.
// The flight recorder keeps that property: retention decisions and ring
// reads are atomics too (see obs.Recorder); only the event journal takes
// a mutex, and only for service-level events, never per constraint.
//
// A concurrency limiter bounds simultaneous analyses so N clients share
// the constraint-generation worker pool instead of oversubscribing it;
// each request runs under a deadline enforced at pipeline stage
// boundaries. Graceful shutdown is the http.Server.Shutdown of the
// enclosing daemon (cmd/cquald): the listener closes, in-flight requests
// drain.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/constinfer"
	"repro/internal/constraint"
	"repro/internal/driver"
	"repro/internal/obs"
)

// Config sizes the server: worker pool, concurrency limit, deadlines,
// and cache bounds. Zero values select the documented defaults.
type Config struct {
	// Jobs is the constraint-generation pool size per analysis
	// (0 = GOMAXPROCS); requests may lower it per call but not raise it.
	Jobs int
	// SolveJobs is the solver pool size per analysis (0 = GOMAXPROCS);
	// requests may lower it per call but not raise it. Solver output is
	// byte-identical at every setting.
	SolveJobs int
	// MaxConcurrent bounds simultaneous analyses (0 = GOMAXPROCS).
	MaxConcurrent int
	// RequestTimeout is the per-request deadline including queue time
	// (0 = 30s; negative = no deadline).
	RequestTimeout time.Duration
	// ResultEntries/ResultBytes bound the request-level result cache
	// (0 = 1024 entries / 256 MiB).
	ResultEntries int
	ResultBytes   int64
	// SummaryEntries/SummaryBytes bound the per-function summary store
	// (0 = 65536 entries / 256 MiB).
	SummaryEntries int
	SummaryBytes   int64
	// SessionEntries bounds the retained delta re-solve sessions
	// (0 = 64). Eviction drops solver state; the next request for that
	// corpus pays one cold solve.
	SessionEntries int
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/. Off by default: the endpoints expose goroutine
	// stacks and heap contents, so they are opt-in.
	EnablePprof bool
	// SlowRequest is the latency threshold at or above which a completed
	// analyze request is logged through Logger (0 = disabled).
	SlowRequest time.Duration
	// Logger receives slow-request records (nil = slog.Default()). The
	// server additionally routes these records into the event journal.
	Logger *slog.Logger
	// TraceEntries bounds the flight recorder's retained-trace ring
	// (0 = 32).
	TraceEntries int
	// JournalEntries bounds the structured event journal (0 = 1024).
	JournalEntries int
	// RetainSlowest is the flight recorder's per-latency-bucket slow
	// admission count (0 = 2; negative disables the slow policy).
	RetainSlowest int
	// RetainSample keeps one request in every RetainSample as a baseline
	// trace sample (0 = 64; negative disables sampling).
	RetainSample int
	// SLOs declares per-endpoint latency objectives for burn-rate
	// tracking, keyed by endpoint name ("analyze", "metrics", ...); nil
	// selects {"analyze": 250ms}. An explicitly empty non-nil map
	// declares no SLOs.
	SLOs map[string]time.Duration
	// SLOTarget is the success-fraction objective shared by all declared
	// SLOs (0 = 0.99).
	SLOTarget float64
	// DisableRecorder turns the always-on flight recorder off for this
	// server: no span recording, no tail retention, no exemplars. It
	// exists solely as the baseline arm of the paperbench -obs overhead
	// measurement (recording on vs off); production servers leave it
	// false and there is no flag for it.
	DisableRecorder bool
}

// DefaultRequestTimeout is the per-request deadline when none is
// configured.
const DefaultRequestTimeout = 30 * time.Second

// stage indexes the per-stage aggregates. The order matches the driver
// pipeline and the Prometheus "stage" label values.
const (
	stageLoad = iota
	stageParse
	stageBuild
	stageConstrain
	stageSolve
	stageClassify
	stageReport
	numStages
)

var stageNames = [numStages]string{
	"load", "parse", "build", "constrain", "solve", "classify", "report",
}

// Server is the analysis service. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	cfg       Config
	results   *cache.ResultCache
	summaries *cache.SummaryStore
	sessions  *cache.SessionStore
	sem       chan struct{}
	mux       *http.ServeMux
	start     time.Time
	logger    *slog.Logger

	// Every aggregate below is an atomic or an obs.Registry series
	// (atomics underneath): the /metrics handler takes no lock.
	requests *obs.Counter // analyze requests received
	analyses *obs.Counter // analyses actually run (result-cache misses)
	failures *obs.Counter // requests answered with a non-200 status
	timeouts *obs.Counter // requests that hit their deadline
	inFlight atomic.Int64 // analyze requests currently being served

	stageRuns atomic.Uint64             // completed runs contributing to the stage sums
	stageHist [numStages]*obs.Histogram // per-stage latency, seconds
	reqHist   map[string]*obs.Histogram // end-to-end latency by cache hit/miss/session
	solver    [11]*obs.Counter          // summed solver condensation + parallel-execution counters

	// Delta re-solve aggregates over session requests that reached the
	// solver: hits took the incremental path, fallbacks re-solved cold.
	deltaHits      *obs.Counter
	deltaFallbacks *obs.Counter
	deltaSCCs      *obs.Counter   // components re-solved on delta hits
	deltaDirty     *obs.Histogram // dirty-region size (variables) per hit

	// perAnalysis is keyed by registered analysis name and fully
	// populated at New — the map is never written afterwards, so
	// handlers read and bump it without a lock.
	perAnalysis map[string]*analysisCounters

	// endpoints is the per-endpoint RED instrumentation (requests,
	// errors, duration, optional SLO tracker), fully populated at New.
	endpoints map[string]*endpointMetrics

	reg      *obs.Registry
	traceSeq atomic.Uint64
	recorder *obs.Recorder
	journal  *obs.Journal
	retained *obs.Counter // traces admitted to the retention ring
}

// endpointMetrics is one endpoint's RED slice: rate, errors, duration,
// plus the SLO tracker when an objective is declared for it.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	hist     *obs.Histogram
	slo      *obs.SLOTracker
}

// analysisCounters tracks load per registered qualifier analysis.
type analysisCounters struct {
	requests    *obs.Counter // analyze requests selecting the analysis
	diagnostics *obs.Counter // diagnostics the analysis produced (cache misses only)
}

// New builds a server with the given configuration.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.ResultEntries == 0 {
		cfg.ResultEntries = 1024
	}
	if cfg.ResultBytes == 0 {
		cfg.ResultBytes = 256 << 20
	}
	if cfg.SummaryEntries == 0 {
		cfg.SummaryEntries = 65536
	}
	if cfg.SummaryBytes == 0 {
		cfg.SummaryBytes = 256 << 20
	}
	if cfg.SessionEntries == 0 {
		cfg.SessionEntries = 64
	}
	if cfg.TraceEntries == 0 {
		cfg.TraceEntries = 32
	}
	if cfg.SLOs == nil {
		cfg.SLOs = map[string]time.Duration{"analyze": 250 * time.Millisecond}
	}
	rawLogger := cfg.Logger
	if rawLogger == nil {
		rawLogger = slog.Default()
	}
	journal := obs.NewJournal(cfg.JournalEntries)
	// Journal events mirror to the raw logger; slog records (the
	// slow-request log) fan into the journal through the handler bridge.
	// The two bridges are loop-safe: see obs.Journal.
	journal.SetMirror(rawLogger)
	s := &Server{
		cfg:         cfg,
		results:     cache.NewResultCache(cfg.ResultEntries, cfg.ResultBytes),
		summaries:   cache.NewSummaryStore(cfg.SummaryEntries, cfg.SummaryBytes),
		sessions:    cache.NewSessionStore(cfg.SessionEntries),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		logger:      slog.New(obs.NewJournalHandler(journal, rawLogger.Handler())),
		perAnalysis: make(map[string]*analysisCounters),
		endpoints:   make(map[string]*endpointMetrics),
		reg:         obs.NewRegistry(),
		journal:     journal,
		recorder: obs.NewRecorder(obs.RetainPolicy{
			RingEntries:      cfg.TraceEntries,
			SlowestPerBucket: cfg.RetainSlowest,
			SampleEvery:      cfg.RetainSample,
		}),
	}
	s.sessions.OnEvict(func(key string) {
		s.journal.Append("session_evict", "warn", "delta session evicted; next request pays a cold solve",
			"key", shortKey(key))
	})
	s.results.OnEvict(func(k cache.Key) {
		s.journal.Append("cache_evict", "info", "result-cache entry evicted",
			"cache", "result", "key", fmt.Sprintf("%x", k[:6]))
	})
	s.registerMetrics()
	s.mux.HandleFunc("/v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/traces/", s.instrument("traces", s.handleTrace))
	s.mux.HandleFunc("/v1/events", s.instrument("events", s.handleEvents))
	s.mux.HandleFunc("/v1/introspect", s.instrument("introspect", s.handleIntrospect))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// registerMetrics creates every Prometheus series. All labeled families
// are fully enumerated here — per-analysis from the analysis registry,
// per-stage from the pipeline — so the serving paths never allocate a
// series and never take a registration lock.
func (s *Server) registerMetrics() {
	r := s.reg
	s.requests = r.NewCounter("cquald_requests_total", "Analyze requests received.")
	s.analyses = r.NewCounter("cquald_analyses_total", "Analyses actually run (result-cache misses).")
	s.failures = r.NewCounter("cquald_failures_total", "Requests answered with a non-200 status.")
	s.timeouts = r.NewCounter("cquald_timeouts_total", "Requests that hit their deadline.")
	r.NewGaugeFunc("cquald_in_flight", "Analyze requests currently being served.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.NewGaugeFunc("cquald_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	for _, c := range []struct {
		name  string
		stats func() cache.Stats
	}{
		{"result", s.results.Stats},
		{"summary", s.summaries.Stats},
		{"session", s.sessions.Stats},
	} {
		stats := c.stats
		lbl := obs.L("cache", c.name)
		r.NewGaugeFunc("cquald_cache_hits", "Cache hits.", func() float64 { return float64(stats().Hits) }, lbl)
		r.NewGaugeFunc("cquald_cache_misses", "Cache misses.", func() float64 { return float64(stats().Misses) }, lbl)
		r.NewGaugeFunc("cquald_cache_evictions", "Cache evictions.", func() float64 { return float64(stats().Evictions) }, lbl)
		r.NewGaugeFunc("cquald_cache_entries", "Entries resident in the cache.", func() float64 { return float64(stats().Entries) }, lbl)
		r.NewGaugeFunc("cquald_cache_bytes", "Bytes resident in the cache.", func() float64 { return float64(stats().Bytes) }, lbl)
	}

	s.reqHist = map[string]*obs.Histogram{
		"hit": r.NewHistogram("cquald_request_seconds",
			"End-to-end analyze latency, by result-cache outcome.", nil, obs.L("cache", "hit")),
		"miss": r.NewHistogram("cquald_request_seconds",
			"End-to-end analyze latency, by result-cache outcome.", nil, obs.L("cache", "miss")),
		"session": r.NewHistogram("cquald_request_seconds",
			"End-to-end analyze latency, by result-cache outcome.", nil, obs.L("cache", "session")),
	}
	for i, name := range stageNames {
		s.stageHist[i] = r.NewHistogram("cquald_stage_seconds",
			"Per-stage pipeline latency over completed analyses.", nil, obs.L("stage", name))
	}

	solverNames := [11]string{"vars", "constraints", "components", "sccs_collapsed", "vars_collapsed", "edges_dropped",
		"workers", "parallel_classes", "sweep_levels", "sweep_fallbacks", "cc_regions"}
	for i, name := range solverNames {
		s.solver[i] = r.NewCounter("cquald_solver_"+name+"_total",
			"Summed solver counter over completed analyses (see constraint.SolveStats).")
	}

	s.deltaHits = r.NewCounter("cquald_delta_hits_total",
		"Session solves that took the incremental delta path.")
	s.deltaFallbacks = r.NewCounter("cquald_delta_fallbacks_total",
		"Session solves that fell back to a cold solve.")
	s.deltaSCCs = r.NewCounter("cquald_delta_resolved_sccs_total",
		"Condensed components re-solved across delta hits.")
	s.deltaDirty = r.NewHistogram("cquald_delta_dirty_vars",
		"Dirty-region size in variables per delta hit.",
		[]float64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000})

	for _, name := range analysis.Names() {
		s.perAnalysis[name] = &analysisCounters{
			requests: r.NewCounter("cquald_analysis_requests_total",
				"Analyze requests selecting the analysis.", obs.L("analysis", name)),
			diagnostics: r.NewCounter("cquald_analysis_diagnostics_total",
				"Diagnostics the analysis produced across completed runs.", obs.L("analysis", name)),
		}
	}

	// Per-endpoint RED series, plus SLO burn-rate gauges for endpoints
	// with declared objectives. Burn rates are computed at scrape time
	// from the trackers' atomic slot rings.
	for _, ep := range endpointNames {
		em := &endpointMetrics{
			requests: r.NewCounter("cquald_endpoint_requests_total",
				"Requests received, by endpoint.", obs.L("endpoint", ep)),
			errors: r.NewCounter("cquald_endpoint_errors_total",
				"Requests answered with status >= 400, by endpoint.", obs.L("endpoint", ep)),
			hist: r.NewHistogram("cquald_endpoint_seconds",
				"End-to-end request latency, by endpoint.", nil, obs.L("endpoint", ep)),
		}
		if obj, ok := s.cfg.SLOs[ep]; ok {
			em.slo = obs.NewSLOTracker(ep, obj, s.cfg.SLOTarget)
			tr := em.slo
			r.NewGaugeFunc("cquald_slo_objective_seconds",
				"Declared latency objective, by endpoint.",
				tr.Objective, obs.L("endpoint", ep))
			r.NewGaugeFunc("cquald_slo_target",
				"Declared success-fraction objective, by endpoint.",
				tr.Target, obs.L("endpoint", ep))
			for _, w := range obs.BurnWindows {
				w := w
				r.NewGaugeFunc("cquald_slo_burn_rate",
					"Error-budget burn rate over the trailing window (1.0 = budget spent exactly at the sustainable pace).",
					func() float64 { return tr.BurnRate(w) },
					obs.L("endpoint", ep), obs.L("window", obs.WindowLabel(w)))
			}
		}
		s.endpoints[ep] = em
	}

	// Flight-recorder retention counters.
	s.retained = r.NewCounter("cquald_traces_retained_total",
		"Traces admitted to the retention ring.")
	r.NewGaugeFunc("cquald_traces_resident", "Traces resident in the retention ring.",
		func() float64 { return float64(s.recorder.Stats().Resident) })
	r.NewGaugeFunc("cquald_traces_evicted", "Traces evicted from the retention ring.",
		func() float64 { return float64(s.recorder.Stats().Evicted) })
	for _, reason := range obs.RetainReasons {
		reason := reason
		r.NewGaugeFunc("cquald_trace_retention_decisions",
			"Retention policy matches, by reason (a request may match several).",
			func() float64 { return float64(s.recorder.Stats().ByReason[reason]) },
			obs.L("reason", reason))
	}
	r.NewGaugeFunc("cquald_journal_events", "Events currently retained in the journal.",
		func() float64 { return float64(s.journal.Stats().Entries) })
	r.NewGaugeFunc("cquald_journal_dropped", "Events that have fallen off the journal ring.",
		func() float64 { return float64(s.journal.Stats().Dropped) })
}

// endpointNames enumerates the instrumented endpoints, in registration
// order.
var endpointNames = []string{"analyze", "metrics", "traces", "events", "introspect"}

// shortKey abbreviates a session key for journal events.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// statusWriter captures the response status for RED accounting and the
// retention decision. A handler that never calls WriteHeader answered
// 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps a handler with the endpoint's RED accounting and SLO
// classification.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		dur := time.Since(began).Seconds()
		failed := sw.status() >= 400
		em.requests.Inc()
		if failed {
			em.errors.Inc()
		}
		em.hist.Observe(dur)
		if em.slo != nil {
			em.slo.Observe(dur, failed)
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AnalyzeRequest is the POST /v1/analyze body: a batch of named source
// texts plus the cqual mode flags.
type AnalyzeRequest struct {
	Sources []SourceJSON `json:"sources"`
	// Lang selects the front end ("c", "go"); empty means "c". Unknown
	// languages are rejected with 400. With lang "go" the sources are
	// .go file texts analyzed together as one package (package patterns
	// are a local-filesystem concept; the server analyzes
	// request-supplied texts only).
	Lang string `json:"lang,omitempty"`
	// Poly/PolyRec/Simplify/Uninit mirror the cqual flags.
	Poly     bool `json:"poly,omitempty"`
	PolyRec  bool `json:"polyrec,omitempty"`
	Simplify bool `json:"simplify,omitempty"`
	Uninit   bool `json:"uninit,omitempty"`
	// Jobs bounds the constraint-generation pool for this request
	// (0 = server default). Results are identical for every value.
	Jobs int `json:"jobs,omitempty"`
	// SolveJobs bounds the solver pool for this request (0 = server
	// default). Results are identical for every value; only the
	// solver.parallel execution counters in the report vary.
	SolveJobs int `json:"solve_jobs,omitempty"`
	// Analyses names the registered qualifier analyses to run together
	// (empty = const). Unknown names are rejected with 400.
	Analyses []string `json:"analyses,omitempty"`
	// Preludes carry qualifier prelude texts declaring library seeds
	// and sinks for the selected analyses.
	Preludes []PreludeJSON `json:"preludes,omitempty"`
	// Session names a corpus for delta re-solve: requests carrying the
	// same session id (under the same mode, analyses, and preludes) share
	// a retained constraint-graph session, and each solve re-derives only
	// the region downstream of changed constraint fragments. The response
	// body gains a solver.delta block and X-Cache reports "session"; the
	// result cache is bypassed, since a session report depends on the
	// session's history, not just the request. Results remain
	// byte-identical to a cold run modulo that block.
	Session string `json:"session,omitempty"`
}

// SourceJSON is one in-memory translation unit.
type SourceJSON struct {
	Path string `json:"path"`
	Text string `json:"text"`
}

// PreludeJSON is one in-memory qualifier prelude file.
type PreludeJSON struct {
	Path string `json:"path"`
	Text string `json:"text"`
}

// errorJSON is the body of every non-200 response.
type errorJSON struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failures.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{Error: fmt.Sprintf(format, args...)})
}

// nextTraceID mints a request identifier: the server's start time pins
// the process, a sequence number pins the request within it.
func (s *Server) nextTraceID() string {
	return fmt.Sprintf("%x-%d", uint64(s.start.UnixNano()), s.traceSeq.Add(1))
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	began := time.Now()
	s.requests.Inc()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	traceID := s.nextTraceID()
	w.Header().Set("X-Trace-Id", traceID)

	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}

	// The flight recorder is always on: every request records spans, and
	// at request end the tail-retention policy decides whether the
	// exported Chrome trace is kept at /v1/traces/<id> — slow, failed,
	// shed, delta-fallback, and 1-in-K sampled requests are; ?trace=1
	// forces it. The response body stays byte-identical to the
	// pre-recorder contract — only the header and the ring change.
	var tracer *obs.Tracer
	if !s.cfg.DisableRecorder {
		tracer = obs.NewTracer(nil)
	}
	fin := &finishState{forced: r.URL.Query().Get("trace") == "1"}
	defer s.finishAnalyze(w, r, tracer, traceID, fin, began)

	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if len(req.Sources) == 0 {
		s.fail(w, http.StatusBadRequest, "no sources")
		return
	}
	if req.Jobs < 0 {
		s.fail(w, http.StatusBadRequest, "jobs must be >= 0, got %d", req.Jobs)
		return
	}
	jobs := req.Jobs
	if jobs == 0 || (s.cfg.Jobs > 0 && jobs > s.cfg.Jobs) {
		jobs = s.cfg.Jobs
	}
	if req.SolveJobs < 0 {
		s.fail(w, http.StatusBadRequest, "solve_jobs must be >= 0, got %d", req.SolveJobs)
		return
	}
	solveJobs := req.SolveJobs
	if solveJobs == 0 || (s.cfg.SolveJobs > 0 && solveJobs > s.cfg.SolveJobs) {
		solveJobs = s.cfg.SolveJobs
	}
	sources := make([]driver.Source, len(req.Sources))
	for i, src := range req.Sources {
		if src.Path == "" {
			s.fail(w, http.StatusBadRequest, "source %d has no path", i)
			return
		}
		if src.Text == "" {
			s.fail(w, http.StatusBadRequest, "source %q has no text (the server analyzes request-supplied texts, not server-side files)", src.Path)
			return
		}
		sources[i] = driver.Source{Path: src.Path, Text: src.Text}
	}
	// Unknown languages and analysis names are client errors, answered
	// before any cache lookup or pipeline work.
	if _, ok := driver.LookupFrontEnd(req.Lang); !ok {
		s.fail(w, http.StatusBadRequest, "unknown language %q (registered: %s)",
			req.Lang, strings.Join(driver.FrontEndLangs(), ", "))
		return
	}
	for _, name := range req.Analyses {
		if _, ok := analysis.Lookup(name); !ok {
			s.fail(w, http.StatusBadRequest, "unknown analysis %q (registered: %s)",
				name, strings.Join(analysis.Names(), ", "))
			return
		}
	}
	preludes := make([]driver.PreludeFile, len(req.Preludes))
	for i, p := range req.Preludes {
		preludes[i] = driver.PreludeFile{Path: p.Path, Text: p.Text}
	}
	cfg := driver.Config{
		Lang: req.Lang,
		Options: constinfer.Options{
			Poly:     req.Poly || req.PolyRec,
			PolyRec:  req.PolyRec,
			Simplify: req.Simplify,
		},
		Jobs:      jobs,
		SolveJobs: solveJobs,
		Uninit:    req.Uninit,
		Analyses:  req.Analyses,
		Preludes:  preludes,
		Summaries: s.summaries,
	}
	s.countRequests(cfg.AnalysisNames())

	// Session requests bypass the result cache in both directions: the
	// retained session must observe every source version to stay
	// current, and a session report's delta block depends on session
	// history, so caching it under (config, sources) would replay a
	// stale diff.
	var sess *driver.Session
	if req.Session != "" {
		sess, _ = s.sessions.GetOrCreate(cache.SessionKey(cfg, req.Session),
			func() *driver.Session { return driver.NewSession(cfg) })
	}

	fin.sources = len(sources)
	key := cache.RequestKey(cfg, sources)
	if sess == nil {
		if report, ok := s.results.Get(key); ok {
			s.writeReport(w, report, "hit")
			fin.cacheState = "hit"
			return
		}
	}

	ctx := r.Context()
	if tracer != nil {
		ctx = obs.WithTracer(ctx, tracer)
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	// The limiter shares the worker pool across clients; the deadline
	// covers queue time, so a saturated server sheds load instead of
	// stacking it.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.deadline(w, ctx.Err())
		return
	}

	var res *driver.Result
	var err error
	if sess != nil {
		res, err = sess.RunDelta(ctx, sources)
	} else {
		res, err = driver.RunContext(ctx, cfg, sources)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadline(w, err)
		} else {
			s.fail(w, http.StatusInternalServerError, "analysis failed: %v", err)
		}
		return
	}
	report, err := res.JSON()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	s.analyses.Inc()
	s.countDiagnostics(res.Diagnostics)
	s.recordTimings(res.Timings, res.Solver)
	if sess != nil {
		s.recordDelta(traceID, res.Delta)
		fin.fallback = res.Delta != nil && !res.Delta.Applied
		s.writeReport(w, report, "session")
		fin.cacheState = "session"
		return
	}
	s.results.Put(key, report)
	s.writeReport(w, report, "miss")
	fin.cacheState = "miss"
}

// recordDelta aggregates one session solve's delta outcome. A nil stats
// pointer means the run failed before the solver (front-end errors);
// those runs move no delta counter. Fallbacks land in the event journal
// with their reason code — they are exactly the "why was this request
// suddenly slow" moments an operator greps for.
func (s *Server) recordDelta(traceID string, d *constraint.DeltaStats) {
	if d == nil {
		return
	}
	if d.Applied {
		s.deltaHits.Inc()
		s.deltaSCCs.Add(uint64(d.ResolvedSCCs))
		s.deltaDirty.Observe(float64(d.DirtyVars))
	} else {
		s.deltaFallbacks.Inc()
		s.journal.Append("delta_fallback", "info", "session solve fell back cold",
			"reason", d.Fallback, "trace_id", traceID)
	}
}

// finishState carries what handleAnalyze learned about the request into
// the deferred finishAnalyze: whether tracing was forced, whether the
// delta path fell back, and the cache outcome (empty on failed
// requests, which never reach a report).
type finishState struct {
	forced     bool
	fallback   bool
	cacheState string
	sources    int
}

// finishAnalyze is the flight recorder's tail: it runs after the
// response is written, decides trace retention now that latency and
// outcome are known, observes the latency histogram (attaching the
// trace id as the bucket exemplar when the trace was retained), and
// emits the slow-request log line when the configured threshold is met.
func (s *Server) finishAnalyze(w http.ResponseWriter, r *http.Request, tracer *obs.Tracer, traceID string, fin *finishState, began time.Time) {
	dur := time.Since(began)
	status := http.StatusOK
	if sw, ok := w.(*statusWriter); ok {
		status = sw.status()
	}
	shed := status == http.StatusTooManyRequests || status == http.StatusGatewayTimeout
	exemplar := ""
	if tracer != nil { // nil only under Config.DisableRecorder (bench baseline)
		retain, reasons := s.recorder.Decide(obs.Sample{
			Seconds:  dur.Seconds(),
			Err:      status >= 400 && !shed,
			Shed:     shed,
			Fallback: fin.fallback,
			Forced:   fin.forced,
		})
		if retain {
			var buf bytes.Buffer
			if tracer.WriteJSON(&buf) == nil {
				s.recorder.Put(traceID, buf.Bytes(), dur.Seconds(), reasons)
				s.retained.Inc()
				exemplar = traceID
			}
		}
	}
	if fin.cacheState != "" {
		s.reqHist[fin.cacheState].ObserveExemplar(dur.Seconds(), exemplar)
	}
	if s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest {
		s.logger.Warn("slow analyze request",
			"trace_id", traceID,
			"duration_ms", float64(dur.Microseconds())/1000,
			"threshold_ms", float64(s.cfg.SlowRequest.Microseconds())/1000,
			"cache", fin.cacheState,
			"sources", fin.sources,
			"remote", r.RemoteAddr)
	}
}

func (s *Server) deadline(w http.ResponseWriter, err error) {
	s.timeouts.Inc()
	s.fail(w, http.StatusGatewayTimeout, "analysis aborted: %v", err)
}

func (s *Server) writeReport(w http.ResponseWriter, report []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Write(append(report, '\n'))
}

func (s *Server) recordTimings(t driver.Timings, st constraint.SolveStats) {
	for i, d := range [numStages]time.Duration{
		t.Load, t.Parse, t.Build, t.Constrain, t.Solve, t.Classify, t.Report,
	} {
		s.stageHist[i].Observe(d.Seconds())
	}
	s.stageRuns.Add(1)
	for i, v := range [11]int{
		st.Vars, st.Constraints, st.Components, st.SCCsCollapsed, st.VarsCollapsed, st.EdgesDropped,
		st.Workers, st.ParallelClasses, st.SweepLevels, st.SweepFallbacks, st.CCRegions,
	} {
		s.solver[i].Add(uint64(v))
	}
}

// countRequests credits one analyze request to each selected analysis.
// The counter map is immutable after New, so no lock is needed.
func (s *Server) countRequests(names []string) {
	for _, name := range names {
		if c := s.perAnalysis[name]; c != nil {
			c.requests.Inc()
		}
	}
}

// countDiagnostics credits each analysis-owned diagnostic of a finished
// run. Cache hits re-serve stored bytes without re-counting: the
// counters measure analysis work, not traffic.
func (s *Server) countDiagnostics(diags []driver.Diagnostic) {
	for _, d := range diags {
		if c := s.perAnalysis[d.Analysis]; c != nil {
			c.diagnostics.Inc()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleTrace serves a tail-retained (or ?trace=1-forced) trace by id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	data, ok := s.recorder.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no retained trace %q (the flight recorder retains slow, failed, shed, fallback, sampled, and ?trace=1 requests, bounded to the most recent %d)", id, s.cfg.TraceEntries)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// EventsResponse is the GET /v1/events response shape.
type EventsResponse struct {
	// Events are the journal entries newer than ?since, oldest first.
	Events []obs.Event `json:"events"`
	// Next is the sequence number to pass as the next ?since.
	Next uint64 `json:"next"`
	// Dropped counts events that have fallen off the journal ring; a
	// client whose since is older than the ring sees a gap.
	Dropped uint64 `json:"dropped"`
}

// maxEventWait bounds a ?wait=1 long poll so intermediaries never see
// an unbounded request.
const maxEventWait = 25 * time.Second

// handleEvents serves the structured event journal. ?since=<seq>
// resumes after a known event; ?max=<n> bounds the batch; ?wait=1
// long-polls until an event newer than since exists (bounded by
// maxEventWait — an empty batch on timeout is the keep-alive).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, err := parseUint(q.Get("since"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "invalid since: %v", err)
		return
	}
	max := 0
	if v := q.Get("max"); v != "" {
		m, err := parseUint(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "invalid max: %v", err)
			return
		}
		max = int(m)
	}
	if q.Get("wait") == "1" {
		ctx, cancel := context.WithTimeout(r.Context(), maxEventWait)
		defer cancel()
		s.journal.Wait(ctx, since)
	}
	events, next := s.journal.Since(since, max)
	if events == nil {
		events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(EventsResponse{Events: events, Next: next, Dropped: s.journal.Stats().Dropped})
}

func parseUint(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.ParseUint(v, 10, 64)
}

// Introspection is the GET /v1/introspect response shape: the live
// server state an operator (or cqualtop) reads at a glance.
type Introspection struct {
	UptimeMS  float64             `json:"uptime_ms"`
	Workers   WorkerIntrospect    `json:"workers"`
	Caches    CacheIntrospect     `json:"caches"`
	Sessions  []SessionIntrospect `json:"sessions"`
	Retention RetentionIntrospect `json:"retention"`
	Journal   obs.JournalStats    `json:"journal"`
	SLOs      []SLOIntrospect     `json:"slos"`
}

// WorkerIntrospect reports concurrency-limiter state.
type WorkerIntrospect struct {
	// InFlight is the number of analyze requests currently being served
	// (including those queued on the limiter).
	InFlight int64 `json:"in_flight"`
	// Running is the number of limiter slots currently held.
	Running int `json:"running"`
	// MaxConcurrent is the limiter capacity.
	MaxConcurrent int `json:"max_concurrent"`
	// Jobs/SolveJobs are the server's per-analysis pool bounds.
	Jobs      int `json:"jobs"`
	SolveJobs int `json:"solve_jobs"`
}

// CacheIntrospect groups the three cache stat blocks.
type CacheIntrospect struct {
	Result  cache.Stats `json:"result"`
	Summary cache.Stats `json:"summary"`
	Session cache.Stats `json:"session"`
}

// SessionIntrospect is one retained delta session: its (abbreviated)
// key and the lock-free snapshot of its last completed run.
type SessionIntrospect struct {
	Key string `json:"key"`
	// Last is nil for a session created but never run.
	Last *driver.SessionSnapshot `json:"last,omitempty"`
}

// RetentionIntrospect is the flight recorder's ring state.
type RetentionIntrospect struct {
	obs.RecorderStats
	// Traces lists the resident ring entries, newest first.
	Traces []obs.RetainedInfo `json:"traces"`
}

// SLOIntrospect is one declared SLO with its current burn rates.
type SLOIntrospect struct {
	Endpoint    string  `json:"endpoint"`
	ObjectiveMS float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	// Burn maps window label ("5m") to the current burn rate.
	Burn map[string]float64 `json:"burn"`
}

// handleIntrospect dumps live server state as JSON. Every read is an
// atomic load or a short-lived cache-lock copy; an in-flight analysis
// is never blocked by an introspection poll (session state comes from
// lock-free snapshots, not the sessions' run locks).
func (s *Server) handleIntrospect(w http.ResponseWriter, r *http.Request) {
	entries := s.sessions.Entries()
	sess := make([]SessionIntrospect, len(entries))
	for i, e := range entries {
		sess[i] = SessionIntrospect{Key: shortKey(e.Key), Last: e.Session.Snapshot()}
	}
	slos := make([]SLOIntrospect, 0, len(s.cfg.SLOs))
	for _, ep := range endpointNames {
		em := s.endpoints[ep]
		if em.slo == nil {
			continue
		}
		burn := make(map[string]float64, len(obs.BurnWindows))
		for _, win := range obs.BurnWindows {
			burn[obs.WindowLabel(win)] = em.slo.BurnRate(win)
		}
		slos = append(slos, SLOIntrospect{
			Endpoint:    ep,
			ObjectiveMS: em.slo.Objective() * 1000,
			Target:      em.slo.Target(),
			Burn:        burn,
		})
	}
	out := Introspection{
		UptimeMS: time.Since(s.start).Seconds() * 1000,
		Workers: WorkerIntrospect{
			InFlight:      s.inFlight.Load(),
			Running:       len(s.sem),
			MaxConcurrent: s.cfg.MaxConcurrent,
			Jobs:          s.cfg.Jobs,
			SolveJobs:     s.cfg.SolveJobs,
		},
		Caches: CacheIntrospect{
			Result:  s.results.Stats(),
			Summary: s.summaries.Stats(),
			Session: s.sessions.Stats(),
		},
		Sessions:  sess,
		Retention: RetentionIntrospect{RecorderStats: s.recorder.Stats(), Traces: s.recorder.Retained()},
		Journal:   s.journal.Stats(),
		SLOs:      slos,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// Metrics is the GET /metrics response shape.
type Metrics struct {
	UptimeMS     float64      `json:"uptime_ms"`
	Requests     uint64       `json:"requests"`
	Analyses     uint64       `json:"analyses"`
	Failures     uint64       `json:"failures"`
	Timeouts     uint64       `json:"timeouts"`
	InFlight     int64        `json:"in_flight"`
	ResultCache  cache.Stats  `json:"result_cache"`
	SummaryCache cache.Stats  `json:"summary_cache"`
	Sessions     cache.Stats  `json:"sessions"`
	Stages       StageTotals  `json:"stages"`
	Solver       SolverTotals `json:"solver"`
	Delta        DeltaTotals  `json:"delta"`
	// PerAnalysis breaks request and diagnostic counts down by qualifier
	// analysis ("const", "taint", ...).
	PerAnalysis map[string]AnalysisMetrics `json:"per_analysis"`
}

// AnalysisMetrics is the per-analysis slice of the metrics.
type AnalysisMetrics struct {
	// Requests counts analyze requests that selected the analysis,
	// including cache hits and failed runs.
	Requests uint64 `json:"requests"`
	// Diagnostics counts diagnostics the analysis produced across
	// completed runs (cache misses only).
	Diagnostics uint64 `json:"diagnostics"`
}

// StageTotals sums per-stage wall-clock time over every analysis run
// (result-cache hits spend time in no stage and are excluded).
type StageTotals struct {
	Runs        uint64  `json:"runs"`
	LoadMS      float64 `json:"load_ms"`
	ParseMS     float64 `json:"parse_ms"`
	BuildMS     float64 `json:"build_ms"`
	ConstrainMS float64 `json:"constrain_ms"`
	SolveMS     float64 `json:"solve_ms"`
	ClassifyMS  float64 `json:"classify_ms"`
	ReportMS    float64 `json:"report_ms"`
	AnalysisMS  float64 `json:"analysis_ms"`
}

// SolverTotals sums the solver's size and condensation counters (see
// constraint.SolveStats) over every analysis run; like Stages, cache
// hits run no solve and are excluded.
type SolverTotals struct {
	Vars          uint64 `json:"vars"`
	Constraints   uint64 `json:"constraints"`
	Components    uint64 `json:"components"`
	SCCsCollapsed uint64 `json:"sccs_collapsed"`
	VarsCollapsed uint64 `json:"vars_collapsed"`
	EdgesDropped  uint64 `json:"edges_dropped"`
	// Parallel-execution counters: how the solves ran, never what they
	// computed. Workers sums the per-run worker count (Workers/Runs is
	// the mean pool size); the rest count classes fanned out, level
	// sweeps run, and classes that fell back to sequential sweeps.
	Workers         uint64 `json:"workers"`
	ParallelClasses uint64 `json:"parallel_classes"`
	SweepLevels     uint64 `json:"sweep_levels"`
	SweepFallbacks  uint64 `json:"sweep_fallbacks"`
	CCRegions       uint64 `json:"cc_regions"`
}

// DeltaTotals sums the delta re-solve outcomes over session requests
// that reached the solver. DirtyVars is the summed dirty-region size
// over hits — with Hits it gives the mean incremental region.
type DeltaTotals struct {
	Hits         uint64 `json:"hits"`
	Fallbacks    uint64 `json:"fallbacks"`
	ResolvedSCCs uint64 `json:"resolved_sccs"`
	DirtyVars    uint64 `json:"dirty_vars"`
}

// Snapshot returns the current metrics. Every read is an atomic load;
// a snapshot taken during a storm of analyses costs the analyses
// nothing.
func (s *Server) Snapshot() Metrics {
	per := make(map[string]AnalysisMetrics, len(s.perAnalysis))
	for name, c := range s.perAnalysis {
		req, diag := c.requests.Value(), c.diagnostics.Value()
		if req == 0 && diag == 0 {
			// The JSON shape predates series pre-registration: analyses
			// never requested stay absent, as they always have.
			continue
		}
		per[name] = AnalysisMetrics{Requests: req, Diagnostics: diag}
	}
	stageMS := func(i int) float64 { return s.stageHist[i].Sum() * 1000 }
	return Metrics{
		UptimeMS:     time.Since(s.start).Seconds() * 1000,
		Requests:     s.requests.Value(),
		Analyses:     s.analyses.Value(),
		Failures:     s.failures.Value(),
		Timeouts:     s.timeouts.Value(),
		InFlight:     s.inFlight.Load(),
		ResultCache:  s.results.Stats(),
		SummaryCache: s.summaries.Stats(),
		Sessions:     s.sessions.Stats(),
		PerAnalysis:  per,
		Delta: DeltaTotals{
			Hits:         s.deltaHits.Value(),
			Fallbacks:    s.deltaFallbacks.Value(),
			ResolvedSCCs: s.deltaSCCs.Value(),
			DirtyVars:    uint64(s.deltaDirty.Sum()),
		},
		Solver: SolverTotals{
			Vars:            s.solver[0].Value(),
			Constraints:     s.solver[1].Value(),
			Components:      s.solver[2].Value(),
			SCCsCollapsed:   s.solver[3].Value(),
			VarsCollapsed:   s.solver[4].Value(),
			EdgesDropped:    s.solver[5].Value(),
			Workers:         s.solver[6].Value(),
			ParallelClasses: s.solver[7].Value(),
			SweepLevels:     s.solver[8].Value(),
			SweepFallbacks:  s.solver[9].Value(),
			CCRegions:       s.solver[10].Value(),
		},
		Stages: StageTotals{
			Runs:        s.stageRuns.Load(),
			LoadMS:      stageMS(stageLoad),
			ParseMS:     stageMS(stageParse),
			BuildMS:     stageMS(stageBuild),
			ConstrainMS: stageMS(stageConstrain),
			SolveMS:     stageMS(stageSolve),
			ClassifyMS:  stageMS(stageClassify),
			ReportMS:    stageMS(stageReport),
			AnalysisMS:  stageMS(stageBuild) + stageMS(stageConstrain) + stageMS(stageSolve) + stageMS(stageClassify),
		},
	}
}

// handleMetrics renders the counters. The default JSON shape is the
// service's original contract and is unchanged; the two text
// expositions (with the latency histograms, which JSON does not carry)
// are selected by content negotiation — Accept: text/plain for
// Prometheus 0.0.4, Accept: application/openmetrics-text for
// OpenMetrics 1.0 with trace-id exemplars — or explicitly with
// ?format=prometheus / ?format=openmetrics / ?format=json, which wins
// over the header. Wildcard, absent, and everything-excluded Accept
// headers deterministically select JSON (see obs.NegotiateMetricsFormat).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = obs.NegotiateMetricsFormat(r.Header.Get("Accept"))
	}
	switch format {
	case obs.FormatPrometheus:
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		s.reg.WritePrometheus(w)
	case obs.FormatOpenMetrics:
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		s.reg.WriteOpenMetrics(w)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	}
}
