// Package server wraps the staged analysis driver in a long-running
// HTTP/JSON service — the resident form of the paper's Section 4.4 batch
// experiment. POST /v1/analyze accepts a batch of C sources and returns
// the same JSON report `cqual -json` emits; repeated requests for
// unchanged sources are served from a content-addressed result cache,
// and partially-changed programs re-derive only the fragments of the
// functions that changed, via the shared per-function summary store.
//
// Endpoints:
//
//	POST /v1/analyze  — analyze a batch of sources; the response body is
//	                    byte-identical to cqual -json over the same
//	                    inputs, X-Cache reports hit or miss
//	GET  /healthz     — liveness probe
//	GET  /metrics     — JSON counters: requests, cache stats, per-stage
//	                    timing aggregates, per-analysis request and
//	                    diagnostic counts
//
// A concurrency limiter bounds simultaneous analyses so N clients share
// the constraint-generation worker pool instead of oversubscribing it;
// each request runs under a deadline enforced at pipeline stage
// boundaries. Graceful shutdown is the http.Server.Shutdown of the
// enclosing daemon (cmd/cquald): the listener closes, in-flight requests
// drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/constinfer"
	"repro/internal/constraint"
	"repro/internal/driver"
)

// Config sizes the server: worker pool, concurrency limit, deadlines,
// and cache bounds. Zero values select the documented defaults.
type Config struct {
	// Jobs is the constraint-generation pool size per analysis
	// (0 = GOMAXPROCS); requests may lower it per call but not raise it.
	Jobs int
	// MaxConcurrent bounds simultaneous analyses (0 = GOMAXPROCS).
	MaxConcurrent int
	// RequestTimeout is the per-request deadline including queue time
	// (0 = 30s; negative = no deadline).
	RequestTimeout time.Duration
	// ResultEntries/ResultBytes bound the request-level result cache
	// (0 = 1024 entries / 256 MiB).
	ResultEntries int
	ResultBytes   int64
	// SummaryEntries/SummaryBytes bound the per-function summary store
	// (0 = 65536 entries / 256 MiB).
	SummaryEntries int
	SummaryBytes   int64
}

// DefaultRequestTimeout is the per-request deadline when none is
// configured.
const DefaultRequestTimeout = 30 * time.Second

// Server is the analysis service. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	cfg       Config
	results   *cache.ResultCache
	summaries *cache.SummaryStore
	sem       chan struct{}
	mux       *http.ServeMux
	start     time.Time

	requests atomic.Uint64 // analyze requests received
	analyses atomic.Uint64 // analyses actually run (result-cache misses)
	failures atomic.Uint64 // requests answered with a non-200 status
	timeouts atomic.Uint64 // requests that hit their deadline
	inFlight atomic.Int64  // analyze requests currently being served

	tmu         sync.Mutex
	stageTotal  driver.Timings // summed wall-clock per stage over analyses
	stageRuns   uint64
	solverTotal SolverTotals // summed solver condensation counters

	amu         sync.Mutex
	perAnalysis map[string]*analysisCounters
}

// analysisCounters tracks load per registered qualifier analysis.
type analysisCounters struct {
	requests    uint64 // analyze requests selecting the analysis
	diagnostics uint64 // diagnostics the analysis produced (cache misses only)
}

// New builds a server with the given configuration.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.ResultEntries == 0 {
		cfg.ResultEntries = 1024
	}
	if cfg.ResultBytes == 0 {
		cfg.ResultBytes = 256 << 20
	}
	if cfg.SummaryEntries == 0 {
		cfg.SummaryEntries = 65536
	}
	if cfg.SummaryBytes == 0 {
		cfg.SummaryBytes = 256 << 20
	}
	s := &Server{
		cfg:         cfg,
		results:     cache.NewResultCache(cfg.ResultEntries, cfg.ResultBytes),
		summaries:   cache.NewSummaryStore(cfg.SummaryEntries, cfg.SummaryBytes),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		perAnalysis: make(map[string]*analysisCounters),
	}
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AnalyzeRequest is the POST /v1/analyze body: a batch of named source
// texts plus the cqual mode flags.
type AnalyzeRequest struct {
	Sources []SourceJSON `json:"sources"`
	// Poly/PolyRec/Simplify/Uninit mirror the cqual flags.
	Poly     bool `json:"poly,omitempty"`
	PolyRec  bool `json:"polyrec,omitempty"`
	Simplify bool `json:"simplify,omitempty"`
	Uninit   bool `json:"uninit,omitempty"`
	// Jobs bounds the constraint-generation pool for this request
	// (0 = server default). Results are identical for every value.
	Jobs int `json:"jobs,omitempty"`
	// Analyses names the registered qualifier analyses to run together
	// (empty = const). Unknown names are rejected with 400.
	Analyses []string `json:"analyses,omitempty"`
	// Preludes carry qualifier prelude texts declaring library seeds
	// and sinks for the selected analyses.
	Preludes []PreludeJSON `json:"preludes,omitempty"`
}

// SourceJSON is one in-memory translation unit.
type SourceJSON struct {
	Path string `json:"path"`
	Text string `json:"text"`
}

// PreludeJSON is one in-memory qualifier prelude file.
type PreludeJSON struct {
	Path string `json:"path"`
	Text string `json:"text"`
}

// errorJSON is the body of every non-200 response.
type errorJSON struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failures.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if len(req.Sources) == 0 {
		s.fail(w, http.StatusBadRequest, "no sources")
		return
	}
	if req.Jobs < 0 {
		s.fail(w, http.StatusBadRequest, "jobs must be >= 0, got %d", req.Jobs)
		return
	}
	jobs := req.Jobs
	if jobs == 0 || (s.cfg.Jobs > 0 && jobs > s.cfg.Jobs) {
		jobs = s.cfg.Jobs
	}
	sources := make([]driver.Source, len(req.Sources))
	for i, src := range req.Sources {
		if src.Path == "" {
			s.fail(w, http.StatusBadRequest, "source %d has no path", i)
			return
		}
		if src.Text == "" {
			s.fail(w, http.StatusBadRequest, "source %q has no text (the server analyzes request-supplied texts, not server-side files)", src.Path)
			return
		}
		sources[i] = driver.Source{Path: src.Path, Text: src.Text}
	}
	// Unknown analysis names are a client error, answered before any
	// cache lookup or pipeline work.
	for _, name := range req.Analyses {
		if _, ok := analysis.Lookup(name); !ok {
			s.fail(w, http.StatusBadRequest, "unknown analysis %q (registered: %s)",
				name, strings.Join(analysis.Names(), ", "))
			return
		}
	}
	preludes := make([]driver.PreludeFile, len(req.Preludes))
	for i, p := range req.Preludes {
		preludes[i] = driver.PreludeFile{Path: p.Path, Text: p.Text}
	}
	cfg := driver.Config{
		Options: constinfer.Options{
			Poly:     req.Poly || req.PolyRec,
			PolyRec:  req.PolyRec,
			Simplify: req.Simplify,
		},
		Jobs:      jobs,
		Uninit:    req.Uninit,
		Analyses:  req.Analyses,
		Preludes:  preludes,
		Summaries: s.summaries,
	}
	s.countRequests(cfg.AnalysisNames())

	key := cache.RequestKey(cfg, sources)
	if report, ok := s.results.Get(key); ok {
		s.writeReport(w, report, "hit")
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	// The limiter shares the worker pool across clients; the deadline
	// covers queue time, so a saturated server sheds load instead of
	// stacking it.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.deadline(w, ctx.Err())
		return
	}

	res, err := driver.RunContext(ctx, cfg, sources)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadline(w, err)
		} else {
			s.fail(w, http.StatusInternalServerError, "analysis failed: %v", err)
		}
		return
	}
	report, err := res.JSON()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	s.analyses.Add(1)
	s.countDiagnostics(res.Diagnostics)
	s.recordTimings(res.Timings, res.Solver)
	s.results.Put(key, report)
	s.writeReport(w, report, "miss")
}

func (s *Server) deadline(w http.ResponseWriter, err error) {
	s.timeouts.Add(1)
	s.fail(w, http.StatusGatewayTimeout, "analysis aborted: %v", err)
}

func (s *Server) writeReport(w http.ResponseWriter, report []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Write(append(report, '\n'))
}

func (s *Server) recordTimings(t driver.Timings, st constraint.SolveStats) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	s.stageTotal.Load += t.Load
	s.stageTotal.Parse += t.Parse
	s.stageTotal.Build += t.Build
	s.stageTotal.Constrain += t.Constrain
	s.stageTotal.Solve += t.Solve
	s.stageTotal.Classify += t.Classify
	s.stageTotal.Eval += t.Eval
	s.stageRuns++
	s.solverTotal.Vars += uint64(st.Vars)
	s.solverTotal.Constraints += uint64(st.Constraints)
	s.solverTotal.Components += uint64(st.Components)
	s.solverTotal.SCCsCollapsed += uint64(st.SCCsCollapsed)
	s.solverTotal.VarsCollapsed += uint64(st.VarsCollapsed)
	s.solverTotal.EdgesDropped += uint64(st.EdgesDropped)
}

// counters returns the counter cell for an analysis, creating it on
// first use. Callers must hold amu.
func (s *Server) counters(name string) *analysisCounters {
	c := s.perAnalysis[name]
	if c == nil {
		c = &analysisCounters{}
		s.perAnalysis[name] = c
	}
	return c
}

// countRequests credits one analyze request to each selected analysis.
func (s *Server) countRequests(names []string) {
	s.amu.Lock()
	defer s.amu.Unlock()
	for _, name := range names {
		s.counters(name).requests++
	}
}

// countDiagnostics credits each analysis-owned diagnostic of a finished
// run. Cache hits re-serve stored bytes without re-counting: the
// counters measure analysis work, not traffic.
func (s *Server) countDiagnostics(diags []driver.Diagnostic) {
	s.amu.Lock()
	defer s.amu.Unlock()
	for _, d := range diags {
		if d.Analysis != "" {
			s.counters(d.Analysis).diagnostics++
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Metrics is the GET /metrics response shape.
type Metrics struct {
	UptimeMS     float64      `json:"uptime_ms"`
	Requests     uint64       `json:"requests"`
	Analyses     uint64       `json:"analyses"`
	Failures     uint64       `json:"failures"`
	Timeouts     uint64       `json:"timeouts"`
	InFlight     int64        `json:"in_flight"`
	ResultCache  cache.Stats  `json:"result_cache"`
	SummaryCache cache.Stats  `json:"summary_cache"`
	Stages       StageTotals  `json:"stages"`
	Solver       SolverTotals `json:"solver"`
	// PerAnalysis breaks request and diagnostic counts down by qualifier
	// analysis ("const", "taint", ...).
	PerAnalysis map[string]AnalysisMetrics `json:"per_analysis"`
}

// AnalysisMetrics is the per-analysis slice of the metrics.
type AnalysisMetrics struct {
	// Requests counts analyze requests that selected the analysis,
	// including cache hits and failed runs.
	Requests uint64 `json:"requests"`
	// Diagnostics counts diagnostics the analysis produced across
	// completed runs (cache misses only).
	Diagnostics uint64 `json:"diagnostics"`
}

// StageTotals sums per-stage wall-clock time over every analysis run
// (result-cache hits spend time in no stage and are excluded).
type StageTotals struct {
	Runs        uint64  `json:"runs"`
	LoadMS      float64 `json:"load_ms"`
	ParseMS     float64 `json:"parse_ms"`
	BuildMS     float64 `json:"build_ms"`
	ConstrainMS float64 `json:"constrain_ms"`
	SolveMS     float64 `json:"solve_ms"`
	ClassifyMS  float64 `json:"classify_ms"`
	AnalysisMS  float64 `json:"analysis_ms"`
}

// SolverTotals sums the solver's size and condensation counters (see
// constraint.SolveStats) over every analysis run; like Stages, cache
// hits run no solve and are excluded.
type SolverTotals struct {
	Vars          uint64 `json:"vars"`
	Constraints   uint64 `json:"constraints"`
	Components    uint64 `json:"components"`
	SCCsCollapsed uint64 `json:"sccs_collapsed"`
	VarsCollapsed uint64 `json:"vars_collapsed"`
	EdgesDropped  uint64 `json:"edges_dropped"`
}

// Snapshot returns the current metrics.
func (s *Server) Snapshot() Metrics {
	s.tmu.Lock()
	t, runs, solver := s.stageTotal, s.stageRuns, s.solverTotal
	s.tmu.Unlock()
	s.amu.Lock()
	per := make(map[string]AnalysisMetrics, len(s.perAnalysis))
	for name, c := range s.perAnalysis {
		per[name] = AnalysisMetrics{Requests: c.requests, Diagnostics: c.diagnostics}
	}
	s.amu.Unlock()
	ms := func(d time.Duration) float64 { return d.Seconds() * 1000 }
	return Metrics{
		UptimeMS:     ms(time.Since(s.start)),
		Requests:     s.requests.Load(),
		Analyses:     s.analyses.Load(),
		Failures:     s.failures.Load(),
		Timeouts:     s.timeouts.Load(),
		InFlight:     s.inFlight.Load(),
		ResultCache:  s.results.Stats(),
		SummaryCache: s.summaries.Stats(),
		PerAnalysis:  per,
		Solver:       solver,
		Stages: StageTotals{
			Runs:        runs,
			LoadMS:      ms(t.Load),
			ParseMS:     ms(t.Parse),
			BuildMS:     ms(t.Build),
			ConstrainMS: ms(t.Constrain),
			SolveMS:     ms(t.Solve),
			ClassifyMS:  ms(t.Classify),
			AnalysisMS:  ms(t.Analysis()),
		},
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
