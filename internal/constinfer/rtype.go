// Package constinfer implements the const-inference system for C of
// Section 4 of "A Theory of Type Qualifiers" (PLDI 1999): every C
// variable is an updateable reference, C types are translated to ref
// types by the θ mapping of Section 4.1, constraint generation walks
// function bodies, and the solved system classifies every "interesting"
// const position (pointer parameters and pointer results of defined
// functions) as must-const, must-not-const, or could-be-either.
//
// Two inference modes reproduce the paper's experiment: monomorphic (the
// C type system) and polymorphic (let-style qualifier polymorphism over
// the strongly-connected components of the function dependence graph,
// Definition 4 and Section 4.3).
package constinfer

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constraint"
	"repro/internal/qual"
)

// RKind enumerates the analysis type constructors.
type RKind int

// Analysis type kinds.
const (
	RLeaf   RKind = iota // int, char, float, void, enum — qualifier-opaque scalars
	RRef                 // updateable reference (every C l-value, every pointer target)
	RFunc                // function
	RStruct              // struct/union value with shared field references
)

// RType is a qualified ref type. Q is the top-level qualifier term; for
// RRef nodes it is the qualifier the const inference classifies.
type RType struct {
	Kind RKind
	Q    constraint.Term

	// Elem is the referent of an RRef.
	Elem *RType

	// Func parts; Params hold the r-value types of parameters.
	Ret      *RType
	Params   []*RType
	Variadic bool

	// Struct identity and shared field l-values.
	Struct *cfront.StructType
	Fields map[string]*RType // field name → RRef, shared per Struct

	// Spelling preserves the C scalar spelling for display.
	Spelling string

	// DeclaredConst marks a ref whose C type carried const in the source.
	DeclaredConst bool
	// ConstPos is where that const appeared.
	ConstPos cfront.Pos
}

// String renders the type with qualifier variables as κn.
func (t *RType) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case RLeaf:
		if t.Spelling != "" {
			return t.Spelling
		}
		return "scalar"
	case RRef:
		return fmt.Sprintf("%v ref(%s)", t.Q, t.Elem)
	case RFunc:
		s := "fn("
		for i, p := range t.Params {
			if i > 0 {
				s += ", "
			}
			s += p.String()
		}
		if t.Variadic {
			s += ", ..."
		}
		return s + ") " + t.Ret.String()
	case RStruct:
		return t.Struct.String()
	default:
		return fmt.Sprintf("RKind(%d)", int(t.Kind))
	}
}

// translator builds RTypes from C types, sharing struct definitions and
// pinning their qualifier variables against generalization.
type translator struct {
	sys        *constraint.System
	set        *qual.Set
	suite      *analysis.Suite
	structVals map[*cfront.StructType]*RType
	// pinned qualifier variables must never be quantified: struct fields
	// and globals are monomorphic (paper Section 4.2/4.3).
	pinned map[constraint.Var]bool
	// pinning is enabled while translating struct fields and globals.
	pinning bool

	// Speculative worker forks (see parallel.go) share the parent's
	// structVals read-only and record their own pins in pinned, with the
	// parent's frozen set available through basePinned.
	basePinned  map[constraint.Var]bool
	speculative bool
}

// isPinned reports whether v is pinned in this translator or (for worker
// forks) in the parent it was forked from.
func (tr *translator) isPinned(v constraint.Var) bool {
	return tr.pinned[v] || tr.basePinned[v]
}

func newTranslator(sys *constraint.System, suite *analysis.Suite) *translator {
	return &translator{
		sys:        sys,
		set:        sys.Set(),
		suite:      suite,
		structVals: make(map[*cfront.StructType]*RType),
		pinned:     make(map[constraint.Var]bool),
	}
}

func (tr *translator) freshQ() constraint.Term {
	v := tr.sys.Fresh()
	if tr.pinning {
		tr.pinned[v] = true
	}
	return constraint.V(v)
}

// newRef builds a reference with a fresh qualifier and lets every
// analysis seed it from the source-declared C qualifiers (const seeds
// its component when the source spelled const here).
func (tr *translator) newRef(elem *RType, quals cfront.Quals) *RType {
	r := &RType{Kind: RRef, Q: tr.freshQ(), Elem: elem}
	if quals.Const {
		r.DeclaredConst = true
		r.ConstPos = quals.ConstPos
	}
	for _, b := range tr.suite.Bindings() {
		if h := b.A.Hooks.DeclQual; h != nil {
			h(tr.sys, b, r.Q, quals)
		}
	}
	return r
}

// LValue translates a declared C type to the l-value ref type of a
// variable of that type: θ(CTyp) = Q' ref(ρ) (Section 4.1). The
// outermost ref is the variable's own cell; its qualifier carries the
// top-level const of the declaration.
func (tr *translator) LValue(ct *cfront.Type) *RType {
	content := tr.RValue(ct)
	return tr.newRef(content, ct.Quals)
}

// RValue translates a C type to the r-value type of an expression of
// that type: θ' without the outermost ref. Pointers become refs to the
// translation of their pointee (carrying the pointee's qualifiers);
// arrays decay to pointers; functions translate structurally.
func (tr *translator) RValue(ct *cfront.Type) *RType {
	switch ct.Kind {
	case cfront.TPointer, cfront.TArray:
		// Pointers to functions are identified with the function type
		// itself: C function designators decay to function pointers, so
		// the two must unify at assignments and calls.
		if ct.Elem.Kind == cfront.TFunc {
			return tr.RValue(ct.Elem)
		}
		inner := tr.RValue(ct.Elem)
		return tr.newRef(inner, ct.Elem.Quals)
	case cfront.TFunc:
		f := &RType{Kind: RFunc, Q: tr.freshQ(), Variadic: ct.Variadic}
		f.Ret = tr.RValue(ct.Ret)
		for _, p := range ct.Params {
			f.Params = append(f.Params, tr.RValue(p.Type))
		}
		return f
	case cfront.TStruct:
		return tr.structVal(ct.Struct)
	default:
		return &RType{Kind: RLeaf, Q: tr.freshQ(), Spelling: ct.Spelling}
	}
}

// structVal returns the shared struct-value type for a definition,
// creating it (and its shared field references) on first use. Fields are
// pinned: all variables of the same struct type share the field
// qualifiers, only top-level qualifiers may differ (Section 4.2).
func (tr *translator) structVal(st *cfront.StructType) *RType {
	if v, ok := tr.structVals[st]; ok {
		return v
	}
	if tr.speculative {
		// First use of this struct type is inside a body: the shared
		// value must be created by the sequential path.
		panic(specMiss{"struct type first used inside a body"})
	}
	savedPinning := tr.pinning
	tr.pinning = true
	v := &RType{Kind: RStruct, Q: tr.freshQ(), Struct: st, Fields: make(map[string]*RType)}
	tr.structVals[st] = v // register before fields: self-referencing structs
	for _, f := range st.Fields {
		v.Fields[f.Name] = tr.fieldLValue(f)
	}
	tr.pinning = savedPinning
	return v
}

func (tr *translator) fieldLValue(f cfront.Field) *RType {
	content := tr.RValue(f.Type)
	return tr.newRef(content, f.Type.Quals)
}

// Field returns the shared l-value reference of a struct field, creating
// late-completed fields on demand (the struct may have been incomplete at
// first use).
func (tr *translator) Field(sv *RType, name string) (*RType, bool) {
	if f, ok := sv.Fields[name]; ok {
		return f, true
	}
	if tr.speculative {
		// Completing the shared field map mutates state every body sees.
		panic(specMiss{"late-completed struct field"})
	}
	// The definition may have been completed after sv was created.
	for _, f := range sv.Struct.Fields {
		if _, ok := sv.Fields[f.Name]; !ok {
			savedPinning := tr.pinning
			tr.pinning = true
			sv.Fields[f.Name] = tr.fieldLValue(f)
			tr.pinning = savedPinning
		}
	}
	f, ok := sv.Fields[name]
	return f, ok
}

// subtype records rvalue a ≤ b. Shape mismatches (int flowing into a
// pointer, unrelated structs, casts the program performs implicitly) are
// tolerated by severing the relation, as the paper does for casts.
func (tr *translator) subtype(a, b *RType, why constraint.Reason) {
	if a == nil || b == nil || a == b {
		return
	}
	switch {
	case a.Kind == RRef && b.Kind == RRef:
		tr.sys.Add(a.Q, b.Q, why)
		// SubRef: contents are invariant.
		tr.equal(a.Elem, b.Elem, why)
	case a.Kind == RLeaf && b.Kind == RLeaf:
		tr.sys.Add(a.Q, b.Q, why)
	case a.Kind == RFunc && b.Kind == RFunc:
		tr.sys.Add(a.Q, b.Q, why)
		tr.subtype(a.Ret, b.Ret, why)
		for i := range a.Params {
			if i < len(b.Params) {
				tr.subtype(b.Params[i], a.Params[i], why) // contravariant
			}
		}
	case a.Kind == RStruct && b.Kind == RStruct && a.Struct == b.Struct:
		// Shared fields: only the (value-level) qualifier relates.
		tr.sys.Add(a.Q, b.Q, why)
	default:
		// Severed: implicit conversion between unrelated shapes.
	}
}

// equal records a = b (both directions).
func (tr *translator) equal(a, b *RType, why constraint.Reason) {
	if a == nil || b == nil || a == b {
		return
	}
	tr.subtype(a, b, why)
	tr.subtype(b, a, why)
}

// instantiate deep-copies t, renaming qualifier variables through ren
// (missing entries are allocated fresh lazily only for quantified vars —
// the caller prepares ren from the scheme's quantified set). Struct
// values are shared, never copied.
func (tr *translator) instantiate(t *RType, ren map[constraint.Var]constraint.Var, memo map[*RType]*RType) *RType {
	if t == nil {
		return nil
	}
	if t.Kind == RStruct {
		return t // shared, monomorphic
	}
	if got, ok := memo[t]; ok {
		return got
	}
	out := &RType{
		Kind: t.Kind, Q: renameTerm(t.Q, ren), Variadic: t.Variadic,
		Spelling: t.Spelling, DeclaredConst: t.DeclaredConst, ConstPos: t.ConstPos,
		Struct: t.Struct, Fields: t.Fields,
	}
	memo[t] = out
	out.Elem = tr.instantiate(t.Elem, ren, memo)
	out.Ret = tr.instantiate(t.Ret, ren, memo)
	if t.Params != nil {
		out.Params = make([]*RType, len(t.Params))
		for i, p := range t.Params {
			out.Params[i] = tr.instantiate(p, ren, memo)
		}
	}
	return out
}

func renameTerm(t constraint.Term, ren map[constraint.Var]constraint.Var) constraint.Term {
	if t.IsVar() {
		if nv, ok := ren[t.Var()]; ok {
			return constraint.V(nv)
		}
	}
	return t
}

// collectPositions walks the pointer spine of an r-value type and
// appends every reference level — the paper's "interesting" const
// positions: recall consts can only be placed on pointers, so the
// positions of int foo(int x, int *y) are exactly the contents of y.
// Struct interiors and function types are not positions of this
// parameter (struct fields are shared declarations, counted separately).
func collectPositions(t *RType, depth int, out []*posRef) []*posRef {
	if t == nil {
		return out
	}
	if t.Kind == RRef {
		out = append(out, &posRef{ref: t, depth: depth})
		return collectPositions(t.Elem, depth+1, out)
	}
	return out
}

type posRef struct {
	ref   *RType
	depth int
}
