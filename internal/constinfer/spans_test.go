package constinfer

import (
	"context"
	"testing"

	"repro/internal/cfront"
	"repro/internal/constraint"
)

// analyzeThroughSession runs the full pipeline on src with the solve
// stage routed through ss, returning the report.
func analyzeThroughSession(t *testing.T, ss *constraint.Session, src string, opts Options) *Report {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis([]*cfront.File{f}, opts)
	a.Prepare()
	a.Constrain(1)
	return a.Classify(a.SolveSession(context.Background(), ss))
}

const spansProgV1 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); }
`

// v2 edits only the last function; every earlier fragment's constraints
// (and variable numbering) are untouched, so the session reuses them.
const spansProgV2 = `
int strlen(const char *s);
void sink(char *p) { *p = 0; }
int probe(const char *s) { return strlen(s); }
void use(char *buf) { sink(buf); probe(buf); probe(buf); }
`

func testSessionMatchesCold(t *testing.T, opts Options) {
	ss := constraint.NewSession(NewAnalysis(nil, opts).Set())
	for round, src := range []string{spansProgV1, spansProgV2, spansProgV1} {
		got := analyzeThroughSession(t, ss, src, opts)
		want, err := AnalyzeSource("t.c", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Positions) != len(want.Positions) {
			t.Fatalf("round %d: %d positions, want %d", round, len(got.Positions), len(want.Positions))
		}
		for i := range got.Positions {
			g, w := got.Positions[i], want.Positions[i]
			if g.Verdict != w.Verdict || g.Func != w.Func || g.Param != w.Param || g.Depth != w.Depth {
				t.Fatalf("round %d position %d: got %+v want %+v", round, i, g, w)
			}
		}
		if len(got.Conflicts) != len(want.Conflicts) {
			t.Fatalf("round %d: %d conflicts, want %d", round, len(got.Conflicts), len(want.Conflicts))
		}
	}
	if d := ss.Delta(); !d.Applied && d.Fallback == "" {
		t.Fatalf("session never engaged: %+v", d)
	}
}

func TestSessionSolveMatchesColdMono(t *testing.T) {
	testSessionMatchesCold(t, Options{})
}

func TestSessionSolveMatchesColdPoly(t *testing.T) {
	testSessionMatchesCold(t, Options{Poly: true})
}

func TestSessionSolveMatchesColdPolySimplify(t *testing.T) {
	testSessionMatchesCold(t, Options{Poly: true, Simplify: true})
}

// TestSessionReusesPrefixFragments pins the delta behavior the -watch
// loop relies on: editing the last function keeps every earlier
// fragment's key stable, so the second solve takes the delta path.
func TestSessionReusesPrefixFragments(t *testing.T) {
	ss := constraint.NewSession(NewAnalysis(nil, Options{}).Set())
	analyzeThroughSession(t, ss, spansProgV1, Options{})
	if d := ss.Delta(); d.Applied || d.Fallback != "first-solve" {
		t.Fatalf("first solve: %+v", d)
	}
	analyzeThroughSession(t, ss, spansProgV2, Options{})
	d := ss.Delta()
	if !d.Applied {
		t.Fatalf("expected delta hit after trailing edit, got %+v", d)
	}
	if d.FragsReused == 0 || d.FragsAdded == 0 || d.FragsRemoved == 0 {
		t.Fatalf("expected a real fragment diff (reuse + replace), got %+v", d)
	}
}

// TestSessionPolyRecHasNoSpans pins the gate: polymorphic recursion
// keeps its sequential path and reports no fragment spans, so the
// session transparently solves cold.
func TestSessionPolyRecHasNoSpans(t *testing.T) {
	f, err := cfront.Parse("t.c", spansProgV1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis([]*cfront.File{f}, Options{Poly: true, PolyRec: true})
	a.Prepare()
	a.Constrain(1)
	if spans := a.FragmentSpans(); spans != nil {
		t.Fatalf("PolyRec mode returned spans: %v", spans)
	}
	ss := constraint.NewSession(a.Set())
	a.Classify(a.SolveSession(context.Background(), ss))
	if d := ss.Delta(); d.Applied || d.Fallback != "" {
		t.Fatalf("session should stay untouched without spans: %+v", d)
	}
}
