package constinfer

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfront"
)

const taintPrelude = `analysis taint
getenv(_) -> tainted
system(untainted)
printf(untainted, ...)
`

// taintDemo routes an environment variable through a local, a defined
// helper, and a second local before it reaches the system() sink:
// a five-hop constraint chain ending at the prelude sink.
const taintDemo = `
extern char *getenv(const char *name);
extern int system(const char *cmd);

static char *pass(char *s) { return s; }

int run(void) {
    char *cmd = getenv("CMD");
    char *through = pass(cmd);
    return system(through);
}
`

func taintSuite(t *testing.T, names ...string) *analysis.Suite {
	t.Helper()
	pre, err := analysis.ParsePrelude("taint.q", taintPrelude)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := analysis.NewSuite(names, []*analysis.Prelude{pre})
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

func TestTaintConflictFlow(t *testing.T) {
	rep, err := AnalyzeSource("t.c", taintDemo, Options{Suite: taintSuite(t, "taint")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Conflicts) != 1 {
		t.Fatalf("%d conflicts, want 1: %+v", len(rep.Conflicts), rep.Conflicts)
	}
	u := rep.Conflicts[0]
	if !strings.Contains(u.Con.Why.Msg, `argument 1 of "system" must be untainted`) {
		t.Errorf("sink reason = %q", u.Con.Why.Msg)
	}
	if len(u.Path) != 5 {
		t.Fatalf("flow path has %d hops, want 5: %+v", len(u.Path), u.Path)
	}
	wantMsgs := []string{
		`result of "getenv" is tainted (prelude)`,
		"initializer",
		"function argument",
		"returned value",
		"initializer",
	}
	for i, c := range u.Path {
		if c.Why.Msg != wantMsgs[i] {
			t.Errorf("hop %d = %q, want %q", i, c.Why.Msg, wantMsgs[i])
		}
	}
	// The taint suite tracks no const positions.
	if rep.Total != 0 {
		t.Errorf("taint-only run classified %d const positions", rep.Total)
	}
}

// TestTaintCleanProgram: literals and prelude-free locals never trip the
// sink.
func TestTaintCleanProgram(t *testing.T) {
	rep, err := AnalyzeSource("t.c", `
extern int system(const char *cmd);
int run(void) {
    char *cmd = "ls";
    return system(cmd);
}
`, Options{Suite: taintSuite(t, "taint")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Conflicts) != 0 {
		t.Fatalf("clean program has conflicts: %v", rep.Conflicts[0].Error())
	}
}

// TestConstVerdictInvariance: adding the taint analysis to the suite
// must not change a single const verdict — the product lattice keeps the
// components independent through the shared constraint pass.
func TestConstVerdictInvariance(t *testing.T) {
	src := taintDemo + `
int mylen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
void set(char *p) { *p = 0; }
`
	constOnly, err := AnalyzeSource("t.c", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := AnalyzeSource("t.c", src, Options{Suite: taintSuite(t, "const", "taint")})
	if err != nil {
		t.Fatal(err)
	}
	if len(constOnly.Positions) != len(both.Positions) {
		t.Fatalf("position counts differ: %d vs %d", len(constOnly.Positions), len(both.Positions))
	}
	for i, p := range constOnly.Positions {
		q := both.Positions[i]
		if p.Func != q.Func || p.Param != q.Param || p.Depth != q.Depth || p.Verdict != q.Verdict {
			t.Errorf("verdict drift at %s/%s depth %d: %v vs %v", p.Func, p.Param, p.Depth, p.Verdict, q.Verdict)
		}
	}
	if constOnly.Inferred != both.Inferred || constOnly.Declared != both.Declared || constOnly.Total != both.Total {
		t.Errorf("summary drift: const-only %+v vs combined %+v", constOnly, both)
	}
	// The combined run finds the taint conflict the const-only run can't.
	if len(constOnly.Conflicts) != 0 || len(both.Conflicts) != 1 {
		t.Errorf("conflicts: const-only %d, combined %d; want 0 and 1",
			len(constOnly.Conflicts), len(both.Conflicts))
	}
}

// TestTaintJobsDeterminism: conflict reports, including the extracted
// flow paths, are byte-identical for every worker count.
func TestTaintJobsDeterminism(t *testing.T) {
	f, err := cfront.Parse("t.c", taintDemo)
	if err != nil {
		t.Fatal(err)
	}
	render := func(jobs int) string {
		a := NewAnalysis([]*cfront.File{f}, Options{Suite: taintSuite(t, "const", "taint")})
		a.Prepare()
		a.Constrain(jobs)
		var b strings.Builder
		for _, u := range a.SolveSystem() {
			b.WriteString(u.Explain(a.Set()))
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := render(1)
	if !strings.Contains(want, "⊑") {
		t.Fatalf("no flow rendered:\n%s", want)
	}
	for _, jobs := range []int{2, 4, 8} {
		if got := render(jobs); got != want {
			t.Errorf("jobs=%d output differs\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s", jobs, want, jobs, got)
		}
	}
}
