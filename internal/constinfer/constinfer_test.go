package constinfer

import (
	"strings"
	"testing"

	"repro/internal/cfront"
)

func analyze(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	rep, err := AnalyzeSource("test.c", src, opts)
	if err != nil {
		t.Fatalf("analyze: %v\nsource:\n%s", err, src)
	}
	return rep
}

func mustClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Conflicts) > 0 {
		t.Fatalf("unexpected conflict: %v", rep.Conflicts[0].Error())
	}
}

// find returns the classified position for a function/param (param "" =
// result) at depth.
func find(t *testing.T, rep *Report, fn, param string, depth int) PositionResult {
	t.Helper()
	for _, p := range rep.Positions {
		if p.Func == fn && p.Param == param && p.Depth == depth {
			return p
		}
	}
	t.Fatalf("position %s/%s depth %d not found in %+v", fn, param, depth, rep.Positions)
	return PositionResult{}
}

func TestReadOnlyParamIsConstable(t *testing.T) {
	rep := analyze(t, `
		int mylen(char *s) {
			int n = 0;
			while (*s) { s++; n++; }
			return n;
		}`, Options{})
	mustClean(t, rep)
	p := find(t, rep, "mylen", "s", 0)
	if p.Verdict != Either {
		t.Errorf("read-only parameter verdict = %v, want either", p.Verdict)
	}
	if rep.Total != 1 || rep.Inferred != 1 || rep.Declared != 0 {
		t.Errorf("counters: total=%d inferred=%d declared=%d", rep.Total, rep.Inferred, rep.Declared)
	}
}

func TestWrittenParamIsNotConst(t *testing.T) {
	rep := analyze(t, `
		void setz(char *s) { *s = 0; }`, Options{})
	mustClean(t, rep)
	p := find(t, rep, "setz", "s", 0)
	if p.Verdict != MustNotConst {
		t.Errorf("written parameter verdict = %v, want not-const", p.Verdict)
	}
	if rep.Inferred != 0 {
		t.Errorf("inferred = %d, want 0", rep.Inferred)
	}
}

func TestDeclaredConstIsMustConst(t *testing.T) {
	rep := analyze(t, `
		int mylen(const char *s) {
			int n = 0;
			while (s[n]) n++;
			return n;
		}`, Options{})
	mustClean(t, rep)
	p := find(t, rep, "mylen", "s", 0)
	if p.Verdict != MustConst {
		t.Errorf("declared const verdict = %v, want must-const", p.Verdict)
	}
	if !p.Declared || rep.Declared != 1 {
		t.Error("declared count wrong")
	}
	if rep.Inferred != 1 {
		t.Errorf("inferred = %d, want 1", rep.Inferred)
	}
}

func TestWriteThroughDeclaredConstConflicts(t *testing.T) {
	rep := analyze(t, `
		void bad(const char *s) { *s = 0; }`, Options{})
	if len(rep.Conflicts) == 0 {
		t.Fatal("writing through const parameter produced no conflict")
	}
	msg := rep.Conflicts[0].Error()
	if !strings.Contains(msg, "const") {
		t.Errorf("conflict message: %s", msg)
	}
}

func TestIncrementForbidsConstOnCell(t *testing.T) {
	// s++ writes the parameter cell, not the contents; the contents stay
	// const-able (paper: consts go on pointers' referents).
	rep := analyze(t, `
		int f(char *s) { s++; return *s; }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "f", "s", 0); p.Verdict != Either {
		t.Errorf("verdict = %v, want either", p.Verdict)
	}
}

func TestFlowThroughCallMono(t *testing.T) {
	rep := analyze(t, `
		void set(char *p) { *p = 1; }
		void caller(char *q) { set(q); }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "set", "p", 0); p.Verdict != MustNotConst {
		t.Errorf("set.p = %v", p.Verdict)
	}
	if p := find(t, rep, "caller", "q", 0); p.Verdict != MustNotConst {
		t.Errorf("caller.q = %v, want not-const (flows into a writer)", p.Verdict)
	}
}

func TestFlowThroughCallPolyStillDetectsWrite(t *testing.T) {
	// Polymorphism must not hide real writes: the callee's write bound is
	// replayed at each instantiation.
	rep := analyze(t, `
		void set(char *p) { *p = 1; }
		void caller(char *q) { set(q); }`, Options{Poly: true})
	mustClean(t, rep)
	if p := find(t, rep, "caller", "q", 0); p.Verdict != MustNotConst {
		t.Errorf("caller.q = %v, want not-const even with polymorphism", p.Verdict)
	}
}

// TestIdentityPolymorphism is the paper's central example (Sections 1 and
// 3.2, and the source of Poly > Mono in Table 2): a flow-through function
// used by both a writer and a reader. Monomorphically everything is
// forced non-const; polymorphically the identity function and the reader
// stay const-able.
func TestIdentityPolymorphism(t *testing.T) {
	src := `
		char *ident(char *s) { return s; }
		void writer(char *buf) { char *t = ident(buf); *t = 0; }
		int reader(char *msg) { char *u = ident(msg); return *u; }`

	mono := analyze(t, src, Options{})
	mustClean(t, mono)
	poly := analyze(t, src, Options{Poly: true})
	mustClean(t, poly)

	// Mono: the single instance of ident links writer and reader.
	for _, c := range []struct {
		fn, param string
	}{{"ident", "s"}, {"ident", ""}, {"writer", "buf"}, {"reader", "msg"}} {
		if p := find(t, mono, c.fn, c.param, 0); p.Verdict != MustNotConst {
			t.Errorf("mono %s/%s = %v, want not-const", c.fn, c.param, p.Verdict)
		}
	}
	// Poly: only the writer's path is forced.
	if p := find(t, poly, "writer", "buf", 0); p.Verdict != MustNotConst {
		t.Errorf("poly writer.buf = %v, want not-const", p.Verdict)
	}
	for _, c := range []struct {
		fn, param string
	}{{"ident", "s"}, {"ident", ""}, {"reader", "msg"}} {
		if p := find(t, poly, c.fn, c.param, 0); p.Verdict != Either {
			t.Errorf("poly %s/%s = %v, want either", c.fn, c.param, p.Verdict)
		}
	}
	if poly.Inferred <= mono.Inferred {
		t.Errorf("poly inferred %d not greater than mono %d", poly.Inferred, mono.Inferred)
	}
}

func TestIdentityPolymorphismSimplified(t *testing.T) {
	src := `
		char *ident(char *s) { return s; }
		void writer(char *buf) { char *t = ident(buf); *t = 0; }
		int reader(char *msg) { char *u = ident(msg); return *u; }`
	rep := analyze(t, src, Options{Poly: true, Simplify: true})
	mustClean(t, rep)
	if p := find(t, rep, "reader", "msg", 0); p.Verdict != Either {
		t.Errorf("simplified poly reader.msg = %v, want either", p.Verdict)
	}
	if p := find(t, rep, "writer", "buf", 0); p.Verdict != MustNotConst {
		t.Errorf("simplified poly writer.buf = %v, want not-const", p.Verdict)
	}
}

func TestLibraryConservatism(t *testing.T) {
	rep := analyze(t, `
		extern unsigned long strlen(const char *s);
		extern char *strcpy(char *dst, const char *src);
		int f(char *a, char *b) {
			strcpy(a, b);
			return (int)strlen(b);
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "f", "a", 0); p.Verdict != MustNotConst {
		t.Errorf("a = %v, want not-const (library may write)", p.Verdict)
	}
	if p := find(t, rep, "f", "b", 0); p.Verdict != Either {
		t.Errorf("b = %v, want either (library params declared const)", p.Verdict)
	}
}

func TestImplicitDeclarationConservatism(t *testing.T) {
	rep := analyze(t, `
		int f(char *a) { mystery(a); return 0; }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "f", "a", 0); p.Verdict != MustNotConst {
		t.Errorf("a = %v, want not-const (undeclared callee)", p.Verdict)
	}
}

func TestCastSevers(t *testing.T) {
	rep := analyze(t, `
		void f(char *p) {
			char *q = (char *)p;
			*q = 0;
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "f", "p", 0); p.Verdict != Either {
		t.Errorf("p = %v, want either (explicit cast severs flow)", p.Verdict)
	}
}

func TestSection41Example(t *testing.T) {
	// The paper's Section 4.1 program: x = y with y const; typechecks
	// because y's const sits on the ref, not the int.
	rep := analyze(t, `
		int x;
		const int y = 1;
		int f(void) { x = y; return x; }`, Options{})
	mustClean(t, rep)
}

func TestPointerToConstAssignment(t *testing.T) {
	// Section 4.1's second example: int *x; const int *y; y = x; is
	// accepted under the standard ref subtyping.
	rep := analyze(t, `
		void f(void) {
			int v;
			int *x = &v;
			const int *y;
			y = x;
		}`, Options{})
	mustClean(t, rep)
}

func TestDoublePointerPositions(t *testing.T) {
	rep := analyze(t, `
		int count(char **v) {
			int n = 0;
			while (v[n]) n++;
			return n;
		}`, Options{})
	mustClean(t, rep)
	if rep.Total != 2 {
		t.Fatalf("total positions = %d, want 2 (two pointer levels)", rep.Total)
	}
	if p := find(t, rep, "count", "v", 0); p.Verdict != Either {
		t.Errorf("level 0 = %v", p.Verdict)
	}
	if p := find(t, rep, "count", "v", 1); p.Verdict != Either {
		t.Errorf("level 1 = %v", p.Verdict)
	}
}

func TestReturnPositions(t *testing.T) {
	rep := analyze(t, `
		static char buffer[100];
		char *get(void) { return buffer; }`, Options{})
	mustClean(t, rep)
	p := find(t, rep, "get", "", 0)
	if p.Index != -1 {
		t.Errorf("result index = %d, want -1", p.Index)
	}
}

func TestStructFieldSharing(t *testing.T) {
	// Writing through one variable's field forbids const on every
	// variable's copy of that field (they share the declaration).
	src := `
		struct st { char *p; };
		void w(struct st *a) { *(a->p) = 1; }
		int r(struct st *b) { return *(b->p); }`
	a := NewAnalysis(mustParseFiles(t, src), Options{})
	rep, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	// The shared field's content qualifier must be forbidden const.
	var st *cfront.StructType
	for s := range a.tr.structVals {
		st = s
	}
	if st == nil {
		t.Fatal("struct not translated")
	}
	fieldRef := a.tr.structVals[st].Fields["p"]
	inner := fieldRef.Elem // the char* value stored in the field
	if inner.Kind != RRef {
		t.Fatalf("field content kind %v", inner.Kind)
	}
	if !a.sys.Forbidden(inner.Q.Var(), "const") {
		t.Error("write through a->p did not forbid const on the shared field")
	}
}

func TestStructAssignmentTopLevelOnly(t *testing.T) {
	// a = b for same-struct variables is fine; only the assigned cell
	// must be non-const.
	rep := analyze(t, `
		struct st { int x; };
		void f(void) {
			struct st a, b;
			a = b;
		}`, Options{})
	mustClean(t, rep)
}

func TestSelfReferentialStruct(t *testing.T) {
	rep := analyze(t, `
		struct node { int v; struct node *next; };
		int sum(struct node *n) {
			int s = 0;
			while (n) { s += n->v; n = n->next; }
			return s;
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "sum", "n", 0); p.Verdict != Either {
		t.Errorf("n = %v, want either", p.Verdict)
	}
}

func TestMutualRecursionSCC(t *testing.T) {
	src := `
		int even(int n);
		int odd(int n) { if (n == 0) return 0; return even(n - 1); }
		int even(int n) { if (n == 0) return 1; return odd(n - 1); }
		int entry(char *s) { return even(*s); }`
	for _, opts := range []Options{{}, {Poly: true}, {Poly: true, PolyRec: true}} {
		rep := analyze(t, src, opts)
		mustClean(t, rep)
		if rep.Functions != 3 {
			t.Errorf("opts %+v: functions = %d, want 3", opts, rep.Functions)
		}
		// odd and even must share one SCC: 2 SCCs total.
		if rep.SCCs != 2 {
			t.Errorf("opts %+v: SCCs = %d, want 2", opts, rep.SCCs)
		}
	}
}

func TestRecursivePointerFunction(t *testing.T) {
	src := `
		char *skip(char *s) {
			if (*s == 0) return s;
			return skip(s + 1);
		}
		void use(char *a) { *skip(a) = 0; }
		int look(char *b) { return *skip(b); }`
	mono := analyze(t, src, Options{})
	mustClean(t, mono)
	poly := analyze(t, src, Options{Poly: true})
	mustClean(t, poly)
	polyrec := analyze(t, src, Options{Poly: true, PolyRec: true})
	mustClean(t, polyrec)
	// Plain poly cannot separate the two users of the self-recursive skip
	// (its SCC is analyzed monomorphically), but polymorphic recursion can.
	if p := find(t, poly, "look", "b", 0); p.Verdict != MustNotConst {
		t.Logf("note: poly look.b = %v", p.Verdict)
	}
	if p := find(t, polyrec, "look", "b", 0); p.Verdict != Either {
		t.Errorf("polyrec look.b = %v, want either", p.Verdict)
	}
	if p := find(t, polyrec, "use", "a", 0); p.Verdict != MustNotConst {
		t.Errorf("polyrec use.a = %v, want not-const", p.Verdict)
	}
	if polyrec.Inferred < poly.Inferred {
		t.Errorf("polyrec inferred %d < poly %d", polyrec.Inferred, poly.Inferred)
	}
}

func TestGlobalsMonomorphic(t *testing.T) {
	// A global pointer is shared; writing through it in one function
	// forbids const everywhere it flows.
	rep := analyze(t, `
		char *g;
		void w(void) { *g = 0; }
		void install(char *p) { g = p; }`, Options{Poly: true})
	mustClean(t, rep)
	if p := find(t, rep, "install", "p", 0); p.Verdict != MustNotConst {
		t.Errorf("install.p = %v, want not-const (flows into written global)", p.Verdict)
	}
}

func TestStringLiteralsUnconstrained(t *testing.T) {
	rep := analyze(t, `
		extern int puts(const char *s);
		int f(void) { return puts("hello"); }
		char *g(void) { return "world"; }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "g", "", 0); p.Verdict != Either {
		t.Errorf("string literal result = %v, want either", p.Verdict)
	}
}

func TestVarargsIgnored(t *testing.T) {
	rep := analyze(t, `
		extern int printf(const char *fmt, ...);
		int f(char *buf, int n) {
			return printf("%s %d", buf, n);
		}`, Options{})
	mustClean(t, rep)
	// buf passed as a variadic extra argument: ignored, stays const-able.
	if p := find(t, rep, "f", "buf", 0); p.Verdict != Either {
		t.Errorf("variadic argument = %v, want either", p.Verdict)
	}
}

func TestWrongArityIgnored(t *testing.T) {
	rep := analyze(t, `
		int two(int a, int b) { return a + b; }
		int f(char *x) { return two(1, 2, x); }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "f", "x", 0); p.Verdict != Either {
		t.Errorf("excess argument = %v, want either", p.Verdict)
	}
}

func TestMultipleFiles(t *testing.T) {
	f1 := mustParse(t, "a.c", `
		void set(char *p) { *p = 1; }`)
	f2 := mustParse(t, "b.c", `
		extern void set(char *p);
		void caller(char *q) { set(q); }`)
	rep, err := Analyze([]*cfront.File{f1, f2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	// Cross-file: set is defined in a.c, so the definition wins over the
	// extern prototype and the write propagates.
	if p := find(t, rep, "caller", "q", 0); p.Verdict != MustNotConst {
		t.Errorf("cross-file caller.q = %v, want not-const", p.Verdict)
	}
}

func TestTypedefExpansionIndependence(t *testing.T) {
	// typedef int *ip; ip c, d; — c and d share no qualifiers (Section
	// 4.2): writing through c must not force d non-const.
	rep := analyze(t, `
		typedef char *cp;
		void f(cp c, cp d) {
			*c = 1;
			if (*d) return;
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "f", "c", 0); p.Verdict != MustNotConst {
		t.Errorf("c = %v, want not-const", p.Verdict)
	}
	if p := find(t, rep, "f", "d", 0); p.Verdict != Either {
		t.Errorf("d = %v, want either (typedef must not share)", p.Verdict)
	}
}

func TestConditionalMerge(t *testing.T) {
	rep := analyze(t, `
		char *pick(int c, char *a, char *b) {
			return c ? a : b;
		}
		void user(char *x, char *y) {
			*pick(1, x, y) = 0;
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "user", "x", 0); p.Verdict != MustNotConst {
		t.Errorf("x = %v, want not-const (write through conditional)", p.Verdict)
	}
	if p := find(t, rep, "user", "y", 0); p.Verdict != MustNotConst {
		t.Errorf("y = %v, want not-const (write through conditional)", p.Verdict)
	}
}

func TestArraysAndIndexing(t *testing.T) {
	rep := analyze(t, `
		void fill(int *a, int n) {
			int i;
			for (i = 0; i < n; i++) a[i] = 0;
		}
		int total(int *a, int n) {
			int i, s = 0;
			for (i = 0; i < n; i++) s += a[i];
			return s;
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "fill", "a", 0); p.Verdict != MustNotConst {
		t.Errorf("fill.a = %v", p.Verdict)
	}
	if p := find(t, rep, "total", "a", 0); p.Verdict != Either {
		t.Errorf("total.a = %v", p.Verdict)
	}
}

func TestAddressOfAndPointerWrite(t *testing.T) {
	rep := analyze(t, `
		void inc(int *p) { (*p)++; }
		int f(void) {
			int x = 0;
			inc(&x);
			return x;
		}`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "inc", "p", 0); p.Verdict != MustNotConst {
		t.Errorf("inc.p = %v, want not-const", p.Verdict)
	}
}

func TestMonoSubsetOfPoly(t *testing.T) {
	// On any program, poly must infer at least as many const positions.
	programs := []string{
		`char *id(char *s) { return s; }
		 void a(char *x) { *id(x) = 0; }
		 int b(char *y) { return *id(y); }`,
		`void set(char *p) { *p = 1; }
		 void get(const char *p);
		 int f(char *a, char *b) { set(a); return *b; }`,
		`struct s { char *f; };
		 void w(struct s *x) { *(x->f) = 0; }
		 int r(struct s *y) { return *(y->f); }`,
	}
	for i, src := range programs {
		mono := analyze(t, src, Options{})
		poly := analyze(t, src, Options{Poly: true})
		if poly.Inferred < mono.Inferred {
			t.Errorf("program %d: poly %d < mono %d", i, poly.Inferred, mono.Inferred)
		}
		if poly.Total != mono.Total || poly.Declared != mono.Declared {
			t.Errorf("program %d: totals differ between modes", i)
		}
	}
}

func TestFuncPointers(t *testing.T) {
	rep := analyze(t, `
		int apply(int (*f)(int), int x) { return f(x); }
		int twice(int v) { return v * 2; }
		int main(void) { return apply(twice, 21); }`, Options{Poly: true})
	mustClean(t, rep)
	if rep.Functions != 3 {
		t.Errorf("functions = %d", rep.Functions)
	}
}

func TestVerdictString(t *testing.T) {
	if MustConst.String() != "must-const" || MustNotConst.String() != "not-const" || Either.String() != "either" {
		t.Error("verdict strings")
	}
	if !strings.Contains(Verdict(9).String(), "9") {
		t.Error("unknown verdict")
	}
}

func mustParse(t *testing.T, name, src string) *cfront.File {
	t.Helper()
	f, err := cfront.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustParseFiles(t *testing.T, src string) []*cfront.File {
	t.Helper()
	return []*cfront.File{mustParse(t, "test.c", src)}
}

func TestPointerToConstStructProtectsFields(t *testing.T) {
	// Writing a member through a struct pointer forbids const on the
	// pointed-to struct (C's pointer-to-const semantics).
	rep := analyze(t, `
		struct st { int tag; };
		void set_tag(struct st *s, int v) { s->tag = v; }
		int get_tag(struct st *s) { return s->tag; }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "set_tag", "s", 0); p.Verdict != MustNotConst {
		t.Errorf("set_tag.s = %v, want not-const", p.Verdict)
	}
	if p := find(t, rep, "get_tag", "s", 0); p.Verdict != Either {
		t.Errorf("get_tag.s = %v, want either", p.Verdict)
	}
	// And writing through a declared-const struct pointer conflicts.
	rep = analyze(t, `
		struct st { int tag; };
		void bad(const struct st *s) { ((struct st *)s)->tag = 1; }`, Options{})
	mustClean(t, rep) // cast severs: fine
	rep = analyze(t, `
		struct st { int tag; };
		void bad(const struct st *s) { s->tag = 1; }`, Options{})
	if len(rep.Conflicts) == 0 {
		t.Error("member write through const struct pointer accepted")
	}
}

func TestDotMemberWriteGuardsVariable(t *testing.T) {
	rep := analyze(t, `
		struct st { int tag; };
		void f(void) {
			const struct st s;
			struct st t;
			t.tag = 1;
		}`, Options{})
	mustClean(t, rep)
	rep = analyze(t, `
		struct st { int tag; };
		void f(void) {
			const struct st s;
			s.tag = 1;
		}`, Options{})
	if len(rep.Conflicts) == 0 {
		t.Error("member write to const struct variable accepted")
	}
}

func TestSuggestions(t *testing.T) {
	rep := analyze(t, `
		int mylen(char *s) {
			int n = 0;
			while (s[n]) n++;
			return n;
		}
		void set(char *p) { *p = 0; }
		int already(const char *q) { return *q; }
		int deep(char **v) { return v[0][0]; }`, Options{})
	mustClean(t, rep)
	byFunc := map[string]Suggestion{}
	for _, s := range rep.Suggested {
		byFunc[s.Func] = s
	}
	// mylen's parameter can be const.
	sg, ok := byFunc["mylen"]
	if !ok {
		t.Fatal("no suggestion for mylen")
	}
	if sg.New != "int mylen(const char *s)" {
		t.Errorf("mylen suggestion = %q", sg.New)
	}
	if sg.Old != "int mylen(char *s)" || sg.Added != 1 {
		t.Errorf("mylen old/added = %q/%d", sg.Old, sg.Added)
	}
	// set writes; no suggestion.
	if _, ok := byFunc["set"]; ok {
		t.Error("suggestion for a writer")
	}
	// already is fully declared; no suggestion.
	if _, ok := byFunc["already"]; ok {
		t.Error("suggestion for an already-const function")
	}
	// deep gets both levels.
	sg, ok = byFunc["deep"]
	if !ok {
		t.Fatal("no suggestion for deep")
	}
	if sg.New != "int deep(const char *const *v)" {
		t.Errorf("deep suggestion = %q", sg.New)
	}
	if sg.Added != 2 {
		t.Errorf("deep added = %d", sg.Added)
	}
}

func TestSuggestionsReturnPosition(t *testing.T) {
	rep := analyze(t, `
		static char buffer[64];
		char *view(void) { return buffer; }`, Options{})
	mustClean(t, rep)
	if len(rep.Suggested) != 1 {
		t.Fatalf("suggestions: %+v", rep.Suggested)
	}
	if got := rep.Suggested[0].New; got != "const char *view(void)" {
		t.Errorf("result suggestion = %q", got)
	}
	// The suggested declaration must itself parse.
	if _, err := cfront.Parse("s.c", rep.Suggested[0].New+";"); err != nil {
		t.Errorf("suggestion does not parse: %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	a := NewAnalysis(mustParseFiles(t, `
		char *ident(char *s) { return s; }
		void w(char *p) { *p = 0; }`), Options{Poly: true, Simplify: true})
	rep, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	s, ok := a.SchemeString("ident")
	if !ok {
		t.Fatal("no scheme for ident")
	}
	for _, want := range []string{"∀", "ident :", "fn(", "ref(char)", "⊑"} {
		if !strings.Contains(s, want) {
			t.Errorf("scheme %q missing %q", s, want)
		}
	}
	// The writer's scheme shows its ¬const upper bound.
	s, ok = a.SchemeString("w")
	if !ok {
		t.Fatal("no scheme for w")
	}
	if !strings.Contains(s, "¬const") {
		t.Errorf("writer scheme lacks the write bound: %q", s)
	}
	// Unknown and library functions have no scheme.
	if _, ok := a.SchemeString("nothere"); ok {
		t.Error("scheme for unknown function")
	}
	// Monomorphic runs have no schemes.
	m := NewAnalysis(mustParseFiles(t, `int f(char *s) { return *s; }`), Options{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.SchemeString("f"); ok {
		t.Error("scheme in monomorphic mode")
	}
}

func TestInitializers(t *testing.T) {
	// Braced initializers: array elements, struct fields, nested lists,
	// and the flow they induce.
	rep := analyze(t, `
		struct pt { int x; int y; };
		struct wrap { struct pt p; char *label; };
		int f(char *tag) {
			int a[3] = { 1, 2, 3 };
			int m[2][2] = { { 1, 2 }, { 3, 4 } };
			struct pt q = { 5, 6 };
			struct wrap w = { { 7, 8 }, tag };
			char *names[2] = { "a", tag };
			return a[0] + m[1][1] + q.x + w.p.y + (names[0] ? 1 : 0);
		}
		void scribble(struct wrap *w) { *(w->label) = 0; }`, Options{})
	mustClean(t, rep)
	// tag flows into the shared label field, which scribble writes
	// through: tag must not be const.
	if p := find(t, rep, "f", "tag", 0); p.Verdict != MustNotConst {
		t.Errorf("tag = %v, want not-const (flows into written field)", p.Verdict)
	}
}

func TestLateCompletedStruct(t *testing.T) {
	// A struct used through a pointer before its definition appears: the
	// field table is completed on demand.
	rep := analyze(t, `
		struct late;
		int peek(struct late *p);
		struct late { int v; };
		int peek(struct late *p) { return p->v; }
		void poke(struct late *p) { p->v = 1; }`, Options{})
	mustClean(t, rep)
	if p := find(t, rep, "peek", "p", 0); p.Verdict != Either {
		t.Errorf("peek.p = %v", p.Verdict)
	}
	if p := find(t, rep, "poke", "p", 0); p.Verdict != MustNotConst {
		t.Errorf("poke.p = %v", p.Verdict)
	}
}

func TestRTypeString(t *testing.T) {
	a := NewAnalysis(mustParseFiles(t, `
		struct s { int x; };
		int f(char **v, struct s *p, int (*cb)(int, ...)) { return 0; }`), Options{})
	rep, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, rep)
	sig := a.funcs["f"].sig
	s := sig.String()
	for _, want := range []string{"fn(", "ref(", "char", "struct s", "..."} {
		if !strings.Contains(s, want) {
			t.Errorf("RType.String %q missing %q", s, want)
		}
	}
	var nilT *RType
	if nilT.String() != "<nil>" {
		t.Error("nil RType string")
	}
	if !strings.Contains((&RType{Kind: RKind(9)}).String(), "9") {
		t.Error("unknown RKind string")
	}
}

func TestFunctionSubtypingThroughPointers(t *testing.T) {
	// Storing functions into function-pointer cells exercises the
	// contravariant parameter rule of the analysis subtype relation.
	rep := analyze(t, `
		int reader(const char *s) { return *s; }
		int writerish(char *s) { *s = 1; return 0; }
		int dispatch(int which, char *buf) {
			int (*fp)(char *);
			fp = writerish;
			if (which)
				return fp(buf);
			return reader(buf);
		}`, Options{})
	mustClean(t, rep)
	// buf reaches writerish through the pointer: not const.
	if p := find(t, rep, "dispatch", "buf", 0); p.Verdict != MustNotConst {
		t.Errorf("dispatch.buf = %v", p.Verdict)
	}
}
