package constinfer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfront"
	"repro/internal/constraint"
)

// Suggestion is one function whose declaration can carry more consts than
// the source does: the paper's desired output, "the text of the original
// C program with some extra const qualifiers inserted" (Section 4.2),
// rendered as the re-declared signature.
type Suggestion struct {
	// Func is the function name.
	Func string
	// Pos locates its definition.
	Pos cfront.Pos
	// Old is the declaration as written.
	Old string
	// New is the declaration with every const-able position declared
	// const.
	New string
	// Added counts the consts inserted.
	Added int
}

// buildSuggestions computes the re-declared signatures for every defined
// function with at least one addable const; solve attaches the result to
// the report.
func (a *Analysis) buildSuggestions(rep *Report) []Suggestion {
	// Group addable positions by function.
	addable := map[string][]PositionResult{}
	for _, p := range rep.Positions {
		if !p.Declared && (p.Verdict == Either || p.Verdict == MustConst) {
			addable[p.Func] = append(addable[p.Func], p)
		}
	}
	var out []Suggestion
	for name, ps := range addable {
		fi := a.funcs[name]
		if fi == nil || !fi.defined {
			continue
		}
		clone := fi.decl.Type.Clone()
		added := 0
		for _, p := range ps {
			if markConst(clone, p.Index, p.Depth) {
				added++
			}
		}
		if added == 0 {
			continue
		}
		out = append(out, Suggestion{
			Func:  name,
			Pos:   fi.decl.Pos,
			Old:   cfront.TypeDecl(name, fi.decl.Type),
			New:   cfront.TypeDecl(name, clone),
			Added: added,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// markConst sets the const flag at the pointer level `depth` of parameter
// `index` (or the result for index < 0) of a cloned function type. Depth
// 0 is the immediate pointee — `char *s` becomes `const char *s`.
func markConst(fn *cfront.Type, index, depth int) bool {
	var t *cfront.Type
	if index < 0 {
		t = fn.Ret
	} else {
		if index >= len(fn.Params) {
			return false
		}
		t = fn.Params[index].Type
	}
	// Walk down `depth` pointer levels; the const attaches to the pointee
	// reached from the final pointer.
	for i := 0; i < depth; i++ {
		if t == nil || (t.Kind != cfront.TPointer && t.Kind != cfront.TArray) {
			return false
		}
		t = t.Elem
	}
	if t == nil || (t.Kind != cfront.TPointer && t.Kind != cfront.TArray) || t.Elem == nil {
		return false
	}
	if t.Elem.Quals.Const {
		return false
	}
	t.Elem.Quals.Const = true
	return true
}

// SchemeString renders a function's inferred polymorphic qualifier type:
// the signature over qualifier variables, the quantifier prefix, and the
// constraint set projected onto the signature's variables — the paper's
// Section 6 presentation problem ("in practice these constraint systems
// can be large and difficult to interpret; simplifying these constrained
// types for presentation is an open research problem"), answered with the
// Restrict projection. Returns false if the function has no scheme
// (monomorphic run, or not a defined function).
func (a *Analysis) SchemeString(name string) (string, bool) {
	fi := a.funcs[name]
	if fi == nil || fi.scheme == nil {
		return "", false
	}
	iface := collectVars(fi.sig, nil, map[*RType]bool{})
	restricted := constraint.Restrict(a.set, fi.scheme.cons, iface)

	var b strings.Builder
	quantified := make([]string, 0, len(iface))
	for _, v := range iface {
		if fi.scheme.qvars[v] {
			quantified = append(quantified, fmt.Sprintf("κ%d", int(v)))
		}
	}
	if len(quantified) > 0 {
		b.WriteString("∀" + strings.Join(quantified, ",") + ". ")
	}
	b.WriteString(name + " : " + fi.sig.String())
	if len(restricted) > 0 {
		var cs []string
		for _, c := range restricted {
			cs = append(cs, c.L.Format(a.set)+" ⊑ "+c.R.Format(a.set))
		}
		sort.Strings(cs)
		b.WriteString(" \\ {" + strings.Join(cs, ", ") + "}")
	}
	return b.String(), true
}
