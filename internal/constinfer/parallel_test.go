package constinfer

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cfront"
)

// runStaged runs the staged pipeline with an explicit worker count and
// returns the analysis plus its report.
func runStaged(t *testing.T, files []*cfront.File, opts Options, jobs int) (*Analysis, *Report) {
	t.Helper()
	a := NewAnalysis(files, opts)
	a.Prepare()
	a.Constrain(jobs)
	return a, a.Classify(a.SolveSystem())
}

// snapshot renders everything observable about a run into comparable
// strings: system size, every constraint, every classified position,
// every suggestion, and every scheme.
func snapshot(a *Analysis, rep *Report) []string {
	var out []string
	out = append(out, fmt.Sprintf("vars=%d cons=%d funcs=%d sccs=%d", rep.Vars, rep.Constraints, rep.Functions, rep.SCCs))
	out = append(out, fmt.Sprintf("declared=%d inferred=%d total=%d conflicts=%d", rep.Declared, rep.Inferred, rep.Total, len(rep.Conflicts)))
	for _, c := range a.sys.Constraints() {
		out = append(out, c.String()+" // "+c.Why.String())
	}
	for _, p := range rep.Positions {
		out = append(out, fmt.Sprintf("pos %s %s#%d depth=%d declared=%v %v", p.Func, p.Param, p.Index, p.Depth, p.Declared, p.Verdict))
	}
	for _, s := range rep.Suggested {
		out = append(out, fmt.Sprintf("suggest %s: %s -> %s (+%d)", s.Func, s.Old, s.New, s.Added))
	}
	var names []string
	for name, fi := range a.funcs {
		if fi.defined {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if s, ok := a.SchemeString(name); ok {
			out = append(out, "scheme "+s)
		}
	}
	return out
}

// TestConstrainDeterministic: the staged pipeline produces an identical
// constraint system, classification, and scheme set for any worker-pool
// size, over every corpus file and mode.
func TestConstrainDeterministic(t *testing.T) {
	corpus := loadCorpus(t)
	var files []*cfront.File
	var order []string
	for name := range corpus {
		order = append(order, name)
	}
	sort.Strings(order)
	for _, name := range order {
		files = append(files, corpus[name])
	}

	modes := []Options{
		{},
		{Poly: true},
		{Poly: true, Simplify: true},
	}
	for mi, opts := range modes {
		t.Run(fmt.Sprintf("mode%d", mi), func(t *testing.T) {
			aSerial, repSerial := runStaged(t, files, opts, 1)
			want := snapshot(aSerial, repSerial)
			for _, jobs := range []int{2, 4, 8} {
				aPar, repPar := runStaged(t, files, opts, jobs)
				got := snapshot(aPar, repPar)
				if !reflect.DeepEqual(want, got) {
					for i := range want {
						if i >= len(got) || want[i] != got[i] {
							t.Fatalf("jobs=%d diverges at line %d:\n serial: %s\n jobs=%d: %s",
								jobs, i, want[i], jobs, lineOr(got, i))
						}
					}
					t.Fatalf("jobs=%d: parallel run longer than serial (%d vs %d lines)", jobs, len(got), len(want))
				}
			}
		})
	}
}

func lineOr(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

// TestConstrainSpeculationMisses: bodies that must mutate shared state
// (implicit globals, implicit declarations, struct types first reached
// inside a body) fall back to the sequential path and still match the
// one-worker run exactly.
func TestConstrainSpeculationMisses(t *testing.T) {
	src := `
struct late;
struct late { int x; char *p; };

int use_implicit(int n) {
	undeclared_counter = undeclared_counter + n;
	return undeclared_counter;
}

int call_implicit(int n) {
	return implicit_fn(n) + implicit_fn(n + 1);
}

int touch_struct(struct late *l) {
	return l->x;
}

int driver(struct late *l, int n) {
	return use_implicit(n) + call_implicit(n) + touch_struct(l);
}
`
	f, err := cfront.Parse("spec.c", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {Poly: true, Simplify: true}} {
		aSerial, repSerial := runStaged(t, []*cfront.File{f}, opts, 1)
		want := snapshot(aSerial, repSerial)
		aPar, repPar := runStaged(t, []*cfront.File{f}, opts, 4)
		got := snapshot(aPar, repPar)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("opts %+v: speculation-miss run diverges from serial", opts)
		}
	}
}

// TestStagedMatchesRun: Run (the composed pipeline) agrees with the
// manually staged calls.
func TestStagedMatchesRun(t *testing.T) {
	corpus := loadCorpus(t)
	for name, f := range corpus {
		opts := Options{Poly: true, Simplify: true}
		repRun, err := Analyze([]*cfront.File{f}, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, repStaged := runStaged(t, []*cfront.File{f}, opts, 4)
		if repRun.Inferred != repStaged.Inferred || repRun.Total != repStaged.Total ||
			repRun.Declared != repStaged.Declared || len(repRun.Conflicts) != len(repStaged.Conflicts) {
			t.Errorf("%s: Run vs staged mismatch: %+v", name, repRun)
		}
	}
}
