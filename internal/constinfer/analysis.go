package constinfer

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constraint"
	"repro/internal/obs"
	"repro/internal/qual"
)

// Options selects the inference mode.
type Options struct {
	// Poly enables qualifier polymorphism over the function dependence
	// graph (Section 4.3); off reproduces the monomorphic C type system.
	Poly bool
	// Simplify projects each scheme's constraints onto its interface
	// variables before storing it (Section 6's presentation/efficiency
	// simplification); semantics are unchanged.
	Simplify bool
	// PolyRec additionally applies polymorphic recursion inside each
	// strongly-connected component by Kleene iteration (the extension the
	// paper attributes to Rehof); functions in a cycle may then use each
	// other polymorphically.
	PolyRec bool
	// MaxPolyRecIters bounds the Kleene iteration (default 4).
	MaxPolyRecIters int
	// Suite selects the qualifier analyses to run together in one
	// constraint pass over the shared product lattice (see
	// internal/analysis). Nil selects the classic const-only suite.
	Suite *analysis.Suite
}

// Verdict classifies one const position (the paper's three outcomes).
type Verdict int

// Position verdicts.
const (
	// MustConst: every solution carries const here.
	MustConst Verdict = iota
	// MustNotConst: the position is written through; const is impossible.
	MustNotConst
	// Either: unconstrained — the position can be made const (or left
	// non-const), the paper's additional-const count.
	Either
)

func (v Verdict) String() string {
	switch v {
	case MustConst:
		return "must-const"
	case MustNotConst:
		return "not-const"
	case Either:
		return "either"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Position is one interesting const position: a pointer level in a
// parameter or result of a defined function.
type Position struct {
	// Func is the defined function owning the position.
	Func string
	// Param is the parameter name; empty for the function result.
	Param string
	// Index is the parameter index, or -1 for the result.
	Index int
	// Depth is the pointer level (0 = contents of the pointer itself).
	Depth int
	// Declared reports whether the source already spelled const here.
	Declared bool
	// Pos locates the parameter or result in the source.
	Pos cfront.Pos

	ref *RType
}

// PositionResult is a classified position.
type PositionResult struct {
	Position
	Verdict Verdict
}

// Report is the outcome of one analysis run, with the counters of the
// paper's Table 2.
type Report struct {
	// Positions lists every interesting position with its verdict.
	Positions []PositionResult
	// Declared counts positions already const in the source.
	Declared int
	// Inferred counts positions that may be const: must-const plus
	// either (the Mono/Poly columns of Table 2).
	Inferred int
	// Total counts all interesting positions (Table 2's "Total possible").
	Total int
	// Conflicts are unsatisfiable qualifier constraints; correct C
	// programs produce none.
	Conflicts []*constraint.Unsat
	// Suggested lists, per function, the declaration rewritten with every
	// addable const inserted (the paper's re-annotated program text).
	Suggested []Suggestion
	// Functions counts defined functions; SCCs counts the components of
	// the FDG; Constraints and Vars report solver load.
	Functions   int
	SCCs        int
	Constraints int
	Vars        int
}

type funcInfo struct {
	name    string
	decl    *cfront.FuncDecl // the defining decl, or a prototype
	defined bool
	sig     *RType // RFunc; created when the function's SCC is processed
	scheme  *scheme
	scc     int // index into Analysis.sccs; -1 until Prepare assigns it
	ord     int // index into Analysis.defined; -1 for undefined functions
}

// sccInfo is one strongly-connected component of the function dependence
// graph with the variable/constraint brackets the staged pipeline needs
// for generalization: signatures are created in a first sequential sweep,
// body constraints are merged later, so a component's fragment is the
// union of two contiguous ranges rather than one.
type sccInfo struct {
	funcs []*funcInfo
	// sigVars/sigCons bracket the signature-creation fragment.
	sigVars, sigCons [2]int
	// bodyVars/bodyCons bracket the merged body fragment.
	bodyVars, bodyCons [2]int
}

type scheme struct {
	sig   *RType
	qvars map[constraint.Var]bool
	cons  []constraint.Constraint
}

// Analysis is the const-inference engine over one whole program (a set of
// translation units analyzed together, as the paper analyzes program
// collections). It runs as a staged pipeline — Prepare, Constrain, Solve,
// Classify — that Run composes; internal/driver exposes the stages with
// timing hooks.
type Analysis struct {
	opts Options
	set  *qual.Set
	sys  *constraint.System
	tr   *translator

	files     []*cfront.File
	globals   map[string]*RType // l-value refs
	funcs     map[string]*funcInfo
	enums     map[string]bool
	positions []*Position

	// suite holds the bound analyses; constActive caches whether the
	// const analysis is among them (position classification is
	// const-specific and skipped otherwise).
	suite       *analysis.Suite
	constActive bool

	// Staged-pipeline state, filled by Prepare.
	globalDecls []*cfront.VarDecl
	defined     []*funcInfo
	sccs        []*sccInfo
	prepared    bool

	// spec marks a speculative constrain-worker clone; see parallel.go.
	spec *speculation

	// summaries, when set, memoizes per-function constraint fragments
	// across runs; see summary.go.
	summaries SummaryCache
}

// NewAnalysis prepares an analysis over the parsed files.
func NewAnalysis(files []*cfront.File, opts Options) *Analysis {
	suite := opts.Suite
	if suite == nil {
		suite = analysis.Default()
	}
	set := suite.Set()
	sys := constraint.NewSystem(set)
	if opts.MaxPolyRecIters <= 0 {
		opts.MaxPolyRecIters = 4
	}
	return &Analysis{
		opts:        opts,
		set:         set,
		sys:         sys,
		tr:          newTranslator(sys, suite),
		files:       files,
		globals:     make(map[string]*RType),
		funcs:       make(map[string]*funcInfo),
		enums:       make(map[string]bool),
		suite:       suite,
		constActive: suite.Binding("const") != nil,
	}
}

// Set returns the qualifier set the analysis runs over.
func (a *Analysis) Set() *qual.Set { return a.set }

// Suite returns the bound analysis suite.
func (a *Analysis) Suite() *analysis.Suite { return a.suite }

// Analyze parses nothing itself: it consumes parsed files, generates
// constraints, solves, and classifies.
func Analyze(files []*cfront.File, opts Options) (*Report, error) {
	a := NewAnalysis(files, opts)
	return a.Run()
}

// AnalyzeSource parses a single source text and analyzes it.
func AnalyzeSource(file, src string, opts Options) (*Report, error) {
	f, err := cfront.Parse(file, src)
	if err != nil {
		return nil, err
	}
	return Analyze([]*cfront.File{f}, opts)
}

// Run executes the full pipeline: Prepare, Constrain (with the default
// worker-pool size), Solve and Classify.
func (a *Analysis) Run() (*Report, error) {
	a.Prepare()
	a.Constrain(0)
	return a.Classify(a.SolveSystem()), nil
}

// Prepare is the Build stage: it collects functions (definitions win over
// prototypes), globals and enum constants, translates global and library
// signatures, and computes the strongly-connected components of the
// function dependence graph. It allocates qualifier variables but walks
// no function bodies.
func (a *Analysis) Prepare() {
	if a.prepared {
		return
	}
	a.prepared = true
	for _, f := range a.files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *cfront.FuncDecl:
				fi := a.funcs[d.Name]
				if fi == nil {
					fi = &funcInfo{name: d.Name, decl: d, scc: -1, ord: -1}
					a.funcs[d.Name] = fi
				}
				if d.Body != nil && !fi.defined {
					fi.decl = d
					fi.defined = true
				}
			case *cfront.VarDecl:
				a.globalDecls = append(a.globalDecls, d)
			}
		}
		for name := range f.EnumConsts {
			a.enums[name] = true
		}
	}

	// Globals are monomorphic and pinned.
	for _, d := range a.globalDecls {
		if _, dup := a.globals[d.Name]; dup {
			continue // tentative definitions / extern redeclarations
		}
		a.tr.pinning = true
		a.globals[d.Name] = a.tr.LValue(d.Type)
		a.tr.pinning = false
	}

	// Undefined (library) functions get monomorphic signatures with the
	// paper's conservative rule: parameters not declared const are
	// treated as written through.
	for _, fi := range sortedFuncs(a.funcs) {
		if !fi.defined {
			a.makeLibSignature(fi)
		}
	}

	// FDG over defined functions; SCCs come out callees-first (Tarjan
	// emits components in reverse topological order).
	a.defined = a.definedFuncs()
	for i, fi := range a.defined {
		fi.ord = i
	}
	for i, comp := range a.buildSCCs(a.defined) {
		a.sccs = append(a.sccs, &sccInfo{funcs: comp})
		for _, fi := range comp {
			fi.scc = i
		}
	}
}

// Constrain is the constraint-generation stage. Signatures are created
// sequentially in SCC order; per-function body constraints are then
// generated concurrently on a worker pool of the given size (0 selects
// GOMAXPROCS) and merged back in deterministic SCC order, so the
// resulting system — and every downstream report — is identical for any
// pool size. Polymorphic recursion re-analyzes bodies iteratively and
// keeps the sequential per-SCC path.
func (a *Analysis) Constrain(jobs int) {
	a.ConstrainContext(context.Background(), jobs)
}

// ConstrainContext is Constrain with tracing. When the context carries
// an obs.Tracer, the stage emits "constrain.signatures", "constrain.pool"
// and "constrain.globals" spans plus one "constrain.func" span per
// defined function, recorded at the deterministic SCC-ordered merge —
// never from pool workers — with the function name and how its fragment
// was obtained (cache: summary-cache replay, pool: merged worker
// fragment, seq: sequential re-analysis after a speculation miss). The
// span sequence is therefore identical for every pool size, which is
// what makes traces byte-identical across -jobs values under a fake
// clock (see obs).
func (a *Analysis) ConstrainContext(ctx context.Context, jobs int) {
	tr := obs.FromContext(ctx)
	a.Prepare()
	if a.opts.PolyRec {
		sp := tr.Start("constinfer", "constrain.polyrec",
			obs.Int("sccs", len(a.sccs)))
		for _, scc := range a.sccs {
			a.processSCC(scc.funcs)
		}
		sp.End()
		a.analyzeGlobalInits()
		return
	}

	// Signatures and positions, SCC order (sequential: signatures of one
	// component may share struct types with any other).
	sp := tr.Start("constinfer", "constrain.signatures",
		obs.Int("sccs", len(a.sccs)), obs.Int("functions", len(a.defined)))
	for _, scc := range a.sccs {
		scc.sigVars[0], scc.sigCons[0] = a.sys.NumVars(), a.sys.NumConstraints()
		for _, fi := range scc.funcs {
			fi.sig = a.tr.RValue(fi.decl.Type)
			a.registerPositions(fi)
		}
		scc.sigVars[1], scc.sigCons[1] = a.sys.NumVars(), a.sys.NumConstraints()
	}
	sp.End()

	// Per-function constraint generation on the worker pool (with cached
	// summaries replayed for unchanged functions), then the deterministic
	// SCC-ordered merge and generalization. The pool span brackets the
	// parallel section from the sequential spine; workers record nothing.
	sp = tr.Start("constinfer", "constrain.pool")
	results := a.cachedBodyResults(jobs)
	hits := 0
	for i := range results {
		if results[i].cached {
			hits++
		}
	}
	sp.SetAttr(obs.Int("functions", len(a.defined)),
		obs.Int("cache_hits", hits), obs.Int("cache_misses", len(a.defined)-hits))
	sp.End()
	for _, scc := range a.sccs {
		scc.bodyVars[0], scc.bodyCons[0] = a.sys.NumVars(), a.sys.NumConstraints()
		for _, fi := range scc.funcs {
			r := &results[fi.ord]
			src := "pool"
			switch {
			case r.miss:
				src = "seq"
			case r.cached:
				src = "cache"
			}
			fsp := tr.Start("constinfer", "constrain.func",
				obs.String("func", fi.name), obs.String("cache", src))
			if r.miss {
				// The body needs a shared entity (implicit global or
				// declaration, in-body struct type) that only the
				// sequential path may create.
				a.analyzeBody(fi)
			} else {
				a.mergeBody(r)
			}
			fsp.End()
		}
		scc.bodyVars[1], scc.bodyCons[1] = a.sys.NumVars(), a.sys.NumConstraints()
		if a.opts.Poly {
			a.generalizeSCC(scc)
		}
	}
	sp = tr.Start("constinfer", "constrain.globals")
	a.analyzeGlobalInits()
	sp.End()
}

// analyzeGlobalInits relates global initializers after the FDG traversal
// (Section 4.3: "After we reach the root node of the FDG, we analyze any
// global variable definitions").
func (a *Analysis) analyzeGlobalInits() {
	for _, d := range a.globalDecls {
		if d.Init != nil {
			env := newEnv(a)
			lv := a.globals[d.Name]
			a.initialize(env, lv, d.Init)
		}
	}
}

// SolveSystem is the Solve stage: it runs the atomic-subtyping solver and
// returns the unsatisfiable constraints.
func (a *Analysis) SolveSystem() []*constraint.Unsat {
	return a.sys.Solve()
}

// SetSolveJobs bounds the solver's worker pool (0 = GOMAXPROCS, 1 =
// sequential); solver output is byte-identical at every setting.
func (a *Analysis) SetSolveJobs(n int) { a.sys.SetSolveJobs(n) }

// SolveSystemContext is SolveSystem with tracing: the solver emits one
// "solve.class" span per mask class (see constraint.SolveContext).
func (a *Analysis) SolveSystemContext(ctx context.Context) []*constraint.Unsat {
	return a.sys.SolveContext(ctx)
}

// SolveStats reports the size and condensation counters of the final
// system's last solve. Valid only after SolveSystem.
func (a *Analysis) SolveStats() constraint.SolveStats {
	return a.sys.Stats()
}

// generalizeSCC captures the component's constraint fragment into a type
// scheme for each member function (Section 4.3 generalization).
func (a *Analysis) generalizeSCC(scc *sccInfo) {
	all := a.sys.Constraints()
	cons := append([]constraint.Constraint(nil), all[scc.sigCons[0]:scc.sigCons[1]]...)
	cons = append(cons, all[scc.bodyCons[0]:scc.bodyCons[1]]...)
	qvars := make(map[constraint.Var]bool)
	for _, rg := range [][2]int{scc.sigVars, scc.bodyVars} {
		for v := rg[0]; v < rg[1]; v++ {
			if !a.tr.pinned[constraint.Var(v)] {
				qvars[constraint.Var(v)] = true
			}
		}
	}
	if a.opts.Simplify {
		cons, qvars = a.simplifySchemeCons(scc.funcs, cons, qvars)
	}
	for _, fi := range scc.funcs {
		fi.scheme = &scheme{sig: fi.sig, qvars: qvars, cons: cons}
	}
}

func sortedFuncs(m map[string]*funcInfo) []*funcInfo {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*funcInfo, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

func (a *Analysis) definedFuncs() []*funcInfo {
	var out []*funcInfo
	for _, fi := range sortedFuncs(a.funcs) {
		if fi.defined {
			out = append(out, fi)
		}
	}
	return out
}

// makeLibSignature builds the signature of an undefined function. Per
// analysis, either a prelude entry speaks for the function — its result
// annotation attaches to the shared signature here, while parameter
// annotations apply per call site (preludeArg) — or the analysis's
// conservative LibRef rule runs over every reference level of every
// parameter (for const: parameters not declared const are treated as
// written through).
func (a *Analysis) makeLibSignature(fi *funcInfo) {
	a.tr.pinning = true
	fi.sig = a.tr.RValue(fi.decl.Type)
	a.tr.pinning = false
	for _, b := range a.suite.Bindings() {
		if ent, ok := b.Entry(fi.name); ok {
			if fi.sig.Ret != nil {
				b.ApplyResult(a.sys, ent, fi.sig.Ret.Q)
			}
			continue
		}
		if b.A.Hooks.LibRef == nil {
			continue
		}
		for _, p := range fi.sig.Params {
			for _, pr := range collectPositions(p, 0, nil) {
				b.A.Hooks.LibRef(a.sys, b, analysis.LibUse{
					Fn: fi.name, Pos: fi.decl.Pos.String(),
					DeclaredConst: pr.ref.DeclaredConst,
				}, pr.ref.Q)
			}
		}
	}
}

// preludeArg applies per-argument prelude annotations for a direct call
// to a library function: the seeds and sinks of -prelude, positioned at
// the offending argument rather than at the shared prototype.
func (a *Analysis) preludeArg(fn string, i int, rv *RType, pos cfront.Pos) {
	if rv == nil {
		return
	}
	for _, b := range a.suite.Bindings() {
		if ent, ok := b.Entry(fn); ok {
			b.ApplyParam(a.sys, ent, i, rv.Q, pos.String())
		}
	}
}

// buildSCCs computes the strongly-connected components of the function
// dependence graph (Definition 4: an edge from f to g iff f's body
// contains an occurrence of the name g), returned callees-first.
func (a *Analysis) buildSCCs(defined []*funcInfo) [][]*funcInfo {
	index := make(map[string]int, len(defined))
	for i, fi := range defined {
		index[fi.name] = i
	}
	adj := make([][]int, len(defined))
	for i, fi := range defined {
		seen := map[int]bool{}
		for _, name := range occurrences(fi.decl.Body) {
			if j, ok := index[name]; ok && j != i && !seen[j] {
				adj[i] = append(adj[i], j)
				seen[j] = true
			}
		}
	}

	// Tarjan's algorithm, iterative to survive deep call chains.
	n := len(defined)
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i] = -1
	}
	var stack []int
	var sccs [][]*funcInfo
	counter := 0

	type frame struct {
		v, child int
	}
	for start := 0; start < n; start++ {
		if idx[start] != -1 {
			continue
		}
		frames := []frame{{start, 0}}
		idx[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.child < len(adj[f.v]) {
				w := adj[f.v][f.child]
				f.child++
				if idx[w] == -1 {
					idx[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			// Post-visit.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				var comp []*funcInfo
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, defined[w])
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// occurrences collects identifier names occurring in a body.
func occurrences(b *cfront.Block) []string {
	var out []string
	var walkS func(cfront.Stmt)
	var walkE func(cfront.Expr)
	walkE = func(e cfront.Expr) {
		switch e := e.(type) {
		case nil:
		case *cfront.Ident:
			out = append(out, e.Name)
		case *cfront.Unary:
			walkE(e.X)
		case *cfront.Postfix:
			walkE(e.X)
		case *cfront.Binary:
			walkE(e.L)
			walkE(e.R)
		case *cfront.AssignExpr:
			walkE(e.L)
			walkE(e.R)
		case *cfront.Cond:
			walkE(e.C)
			walkE(e.T)
			walkE(e.F)
		case *cfront.Call:
			walkE(e.Fn)
			for _, x := range e.Args {
				walkE(x)
			}
		case *cfront.Index:
			walkE(e.X)
			walkE(e.I)
		case *cfront.Member:
			walkE(e.X)
		case *cfront.Cast:
			walkE(e.X)
		case *cfront.SizeofExpr:
			walkE(e.X)
		case *cfront.Comma:
			walkE(e.L)
			walkE(e.R)
		case *cfront.InitList:
			for _, x := range e.Items {
				walkE(x)
			}
		}
	}
	walkS = func(s cfront.Stmt) {
		switch s := s.(type) {
		case nil:
		case *cfront.Block:
			for _, it := range s.Items {
				walkS(it)
			}
		case *cfront.DeclStmt:
			for _, d := range s.Decls {
				if v, ok := d.(*cfront.VarDecl); ok && v.Init != nil {
					walkE(v.Init)
				}
			}
		case *cfront.ExprStmt:
			walkE(s.X)
		case *cfront.IfStmt:
			walkE(s.Cond)
			walkS(s.Then)
			walkS(s.Else)
		case *cfront.WhileStmt:
			walkE(s.Cond)
			walkS(s.Body)
		case *cfront.DoWhileStmt:
			walkS(s.Body)
			walkE(s.Cond)
		case *cfront.ForStmt:
			walkS(s.Init)
			walkE(s.Cond)
			walkE(s.Post)
			walkS(s.Body)
		case *cfront.ReturnStmt:
			walkE(s.Value)
		case *cfront.LabelStmt:
			walkS(s.Stmt)
		case *cfront.SwitchStmt:
			walkE(s.Tag)
			walkS(s.Body)
		case *cfront.CaseStmt:
			walkE(s.Value)
			walkS(s.Stmt)
		}
	}
	walkS(b)
	return out
}

// processSCC creates the SCC's signatures, analyzes its bodies, and (in
// polymorphic mode) generalizes the signatures into schemes.
func (a *Analysis) processSCC(scc []*funcInfo) {
	startVar := a.sys.NumVars()
	startCon := a.sys.NumConstraints()

	for _, fi := range scc {
		fi.sig = a.tr.RValue(fi.decl.Type)
		a.registerPositions(fi)
	}
	for _, fi := range scc {
		a.analyzeBody(fi)
	}

	if !a.opts.Poly {
		return
	}
	if a.opts.PolyRec && len(scc) > 0 {
		a.polyRecIterate(scc, startVar, startCon)
	}

	endVar := a.sys.NumVars()
	cons := append([]constraint.Constraint(nil), a.sys.Constraints()[startCon:]...)
	qvars := make(map[constraint.Var]bool, endVar-startVar)
	for v := startVar; v < endVar; v++ {
		if !a.tr.pinned[constraint.Var(v)] {
			qvars[constraint.Var(v)] = true
		}
	}
	if a.opts.Simplify {
		cons, qvars = a.simplifySchemeCons(scc, cons, qvars)
	}
	for _, fi := range scc {
		fi.scheme = &scheme{sig: fi.sig, qvars: qvars, cons: cons}
	}
}

// simplifySchemeCons projects the SCC's constraint fragment onto the
// variables visible in its signatures plus any shared (pinned or
// pre-existing) variables mentioned.
func (a *Analysis) simplifySchemeCons(scc []*funcInfo, cons []constraint.Constraint, qvars map[constraint.Var]bool) ([]constraint.Constraint, map[constraint.Var]bool) {
	iface := map[constraint.Var]bool{}
	var order []constraint.Var
	add := func(v constraint.Var) {
		if !iface[v] {
			iface[v] = true
			order = append(order, v)
		}
	}
	for _, fi := range scc {
		for _, v := range collectVars(fi.sig, nil, map[*RType]bool{}) {
			add(v)
		}
	}
	for _, c := range cons {
		for _, t := range []constraint.Term{c.L, c.R} {
			if t.IsVar() && !qvars[t.Var()] {
				add(t.Var())
			}
		}
	}
	restricted := constraint.Restrict(a.set, cons, order)
	kept := map[constraint.Var]bool{}
	for v := range qvars {
		if iface[v] {
			kept[v] = true
		}
	}
	return restricted, kept
}

func collectVars(t *RType, out []constraint.Var, seen map[*RType]bool) []constraint.Var {
	if t == nil || seen[t] {
		return out
	}
	seen[t] = true
	if t.Q.IsVar() {
		out = append(out, t.Q.Var())
	}
	out = collectVars(t.Elem, out, seen)
	out = collectVars(t.Ret, out, seen)
	for _, p := range t.Params {
		out = collectVars(p, out, seen)
	}
	// Struct fields are pinned/shared and excluded from interfaces by
	// construction; no need to walk them.
	return out
}

// polyRecIterate re-analyzes the SCC's bodies with the functions bound to
// provisional schemes, so that recursive calls instantiate fresh
// qualifier variables — polymorphic recursion by Kleene iteration, which
// terminates because the lattice is finite and qualifiers do not change
// the type structure (Section 4.3).
func (a *Analysis) polyRecIterate(scc []*funcInfo, startVar, startCon int) {
	if len(scc) == 1 {
		// Self-recursion only matters if the function mentions itself.
		self := false
		for _, n := range occurrences(scc[0].decl.Body) {
			if n == scc[0].name {
				self = true
				break
			}
		}
		if !self {
			return
		}
	}
	for iter := 0; iter < a.opts.MaxPolyRecIters; iter++ {
		endVar := a.sys.NumVars()
		cons := append([]constraint.Constraint(nil), a.sys.Constraints()[startCon:]...)
		qvars := make(map[constraint.Var]bool, endVar-startVar)
		for v := startVar; v < endVar; v++ {
			if !a.tr.pinned[constraint.Var(v)] {
				qvars[constraint.Var(v)] = true
			}
		}
		prevCount := a.sys.NumConstraints()
		for _, fi := range scc {
			fi.scheme = &scheme{sig: fi.sig, qvars: qvars, cons: cons}
		}
		// Re-analyze with recursive references now polymorphic; fresh
		// signatures keep iterations independent.
		startCon = a.sys.NumConstraints()
		startVar = a.sys.NumVars()
		for _, fi := range scc {
			fi.sig = a.tr.RValue(fi.decl.Type)
		}
		for _, fi := range scc {
			a.analyzeBody(fi)
		}
		// Repoint the recorded positions at the final signatures.
		a.repointPositions(scc)
		if a.sys.NumConstraints()-startCon >= prevCount-startCon && iter > 0 {
			break // constraint growth stabilized
		}
	}
	for _, fi := range scc {
		fi.scheme = nil // final generalization happens in processSCC
	}
}

func (a *Analysis) repointPositions(scc []*funcInfo) {
	names := map[string]*funcInfo{}
	for _, fi := range scc {
		names[fi.name] = fi
	}
	kept := a.positions[:0]
	for _, p := range a.positions {
		if _, ours := names[p.Func]; !ours {
			kept = append(kept, p)
		}
	}
	a.positions = kept
	for _, fi := range scc {
		a.registerPositions(fi)
	}
}

// registerPositions records the interesting const positions of a defined
// function: every pointer level of every parameter and of the result.
// Positions are a const-analysis concept; suites without const track
// none.
func (a *Analysis) registerPositions(fi *funcInfo) {
	if !a.constActive {
		return
	}
	for i, p := range fi.sig.Params {
		name := ""
		pos := fi.decl.Pos
		if i < len(fi.decl.Type.Params) {
			name = fi.decl.Type.Params[i].Name
			if fi.decl.Type.Params[i].Pos.IsValid() {
				pos = fi.decl.Type.Params[i].Pos
			}
		}
		for _, pr := range collectPositions(p, 0, nil) {
			a.positions = append(a.positions, &Position{
				Func: fi.name, Param: name, Index: i, Depth: pr.depth,
				Declared: pr.ref.DeclaredConst, Pos: pos, ref: pr.ref,
			})
		}
	}
	for _, pr := range collectPositions(fi.sig.Ret, 0, nil) {
		a.positions = append(a.positions, &Position{
			Func: fi.name, Index: -1, Depth: pr.depth,
			Declared: pr.ref.DeclaredConst, Pos: fi.decl.Pos, ref: pr.ref,
		})
	}
}

// useFunc returns the r-value type for an occurrence of a function name:
// an instantiation of its scheme in polymorphic mode, its shared
// signature otherwise (including within its own SCC).
func (a *Analysis) useFunc(fi *funcInfo) *RType {
	if fi.sig == nil {
		if a.spec != nil {
			// Signatures are all created before workers start; a nil one
			// means an unusual shared mutation — fall back to sequential.
			panic(specMiss{"function used before its signature exists"})
		}
		// Referenced before its SCC is processed; only possible through
		// odd declaration orders — make a monomorphic signature now.
		a.tr.pinning = true
		fi.sig = a.tr.RValue(fi.decl.Type)
		a.tr.pinning = false
	}
	if a.spec != nil {
		// Worker clone: schemes do not exist yet. A callee in an earlier
		// SCC will have one by merge time, so record a symbolic
		// instantiation to be replayed then; everything else (own SCC,
		// library functions) uses the shared signature, exactly as the
		// sequential path would.
		if a.opts.Poly && fi.defined && fi.scc != a.spec.scc {
			return a.spec.instantiate(a, fi)
		}
		return fi.sig
	}
	if fi.scheme == nil {
		return fi.sig
	}
	ren := make(map[constraint.Var]constraint.Var)
	for _, v := range sortedVars(fi.scheme.qvars) {
		ren[v] = a.sys.Fresh()
	}
	a.sys.AddConstraints(fi.scheme.cons, ren)
	return a.tr.instantiate(fi.scheme.sig, ren, map[*RType]*RType{})
}

// sortedVars returns the keys of a qualifier-variable set in increasing
// order, for deterministic fresh-variable allocation.
func sortedVars(m map[constraint.Var]bool) []constraint.Var {
	out := make([]constraint.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Classify is the final stage: it interprets the solved system over the
// recorded positions and assembles the report.
func (a *Analysis) Classify(conflicts []*constraint.Unsat) *Report {
	rep := &Report{
		Conflicts:   conflicts,
		Functions:   len(a.defined),
		SCCs:        len(a.sccs),
		Constraints: a.sys.NumConstraints(),
		Vars:        a.sys.NumVars(),
	}
	for _, p := range a.positions {
		v := Either
		if p.ref.Q.IsVar() {
			switch {
			case a.sys.Forced(p.ref.Q.Var(), "const"):
				v = MustConst
			case a.sys.Forbidden(p.ref.Q.Var(), "const"):
				v = MustNotConst
			}
		} else if a.set.Has(p.ref.Q.Const(), "const") {
			v = MustConst
		}
		rep.Total++
		if p.Declared {
			rep.Declared++
		}
		if v == MustConst || v == Either {
			rep.Inferred++
		}
		rep.Positions = append(rep.Positions, PositionResult{Position: *p, Verdict: v})
	}
	rep.Suggested = a.buildSuggestions(rep)
	return rep
}
