/* buffer.c — a growable byte buffer: casts, sizeof, pointer arithmetic,
 * compound assignment, do/while, and a const-correct external interface
 * that the inference should confirm and extend. */

typedef unsigned long size_t;
extern void *malloc(size_t n);
extern void free(void *p);
extern char *strcpy(char *dst, const char *src);
extern size_t strlen(const char *s);

struct buffer {
    char *data;
    size_t len;
    size_t cap;
};

static struct buffer *buf_new(size_t cap) {
    struct buffer *b = (struct buffer *)malloc(sizeof(struct buffer));
    b->data = (char *)malloc(cap ? cap : 16);
    b->len = 0;
    b->cap = cap ? cap : 16;
    return b;
}

static int buf_grow(struct buffer *b, size_t need) {
    char *fresh;
    size_t newcap = b->cap;
    do {
        newcap *= 2;
    } while (newcap < b->len + need);
    fresh = (char *)malloc(newcap);
    if (!fresh)
        return -1;
    strcpy(fresh, b->data);
    free(b->data);
    b->data = fresh;
    b->cap = newcap;
    return 0;
}

int buf_append(struct buffer *b, const char *s) {
    size_t n = strlen(s);
    if (b->len + n + 1 > b->cap && buf_grow(b, n + 1) < 0)
        return -1;
    strcpy(b->data + b->len, s);
    b->len += n;
    return 0;
}

/* The const on the result is the interface promise the analysis should
 * keep: callers read, never write. */
const char *buf_view(struct buffer *b) {
    return b->data;
}

/* An undeclared-const reader: the inference finds it. */
size_t buf_len(struct buffer *b) {
    return b->len;
}

void buf_clear(struct buffer *b) {
    b->len = 0;
    if (b->data)
        b->data[0] = 0;
}

void buf_release(struct buffer *b) {
    free(b->data);
    free(b);
}

int buffer_main(void) {
    struct buffer *b = buf_new(8);
    int rc = 0;
    rc += buf_append(b, "hello ");
    rc += buf_append(b, "world");
    rc += (int)strlen(buf_view(b));
    rc += (int)buf_len(b);
    buf_clear(b);
    buf_release(b);
    return rc;
}
