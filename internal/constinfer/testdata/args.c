/* args.c — a small option parser: enums, typedefs, globals, switch
 * statements, string literals, and a function-pointer dispatch table. */

typedef unsigned long size_t;
extern size_t strlen(const char *s);
extern int strcmp(const char *a, const char *b);
extern int printf(const char *fmt, ...);

enum opt_kind { OPT_FLAG, OPT_VALUE = 10, OPT_END };

typedef struct option {
    char *name;
    int kind;
    int seen;
} option_t;

static option_t g_opts[4];
static int g_nopts;
static int g_verbose;

static void opt_register(char *name, int kind) {
    if (g_nopts >= 4)
        return;
    g_opts[g_nopts].name = name;
    g_opts[g_nopts].kind = kind;
    g_opts[g_nopts].seen = 0;
    g_nopts++;
}

/* Reads the option name; could be const. */
static option_t *opt_find(char *name) {
    int i;
    for (i = 0; i < g_nopts; i++)
        if (strcmp(g_opts[i].name, name) == 0)
            return &g_opts[i];
    return 0;
}

static int handle_help(char *arg) {
    printf("usage: %s\n", arg);
    return 0;
}

static int handle_version(char *arg) {
    (void)arg;
    return 1;
}

static int dispatch(char *name, char *arg) {
    int (*handler)(char *);
    switch (name[0]) {
    case 'h':
        handler = handle_help;
        break;
    case 'v':
        handler = handle_version;
        break;
    default:
        return -1;
    }
    return handler(arg);
}

int args_main(int argc, char **argv) {
    int i, status = 0;
    opt_register("help", OPT_FLAG);
    opt_register("version", OPT_FLAG);
    opt_register("output", OPT_VALUE);
    for (i = 1; i < argc; i++) {
        char *a = argv[i];
        option_t *o;
        if (a[0] != '-')
            continue;
        o = opt_find(a + 1);
        if (o) {
            o->seen = 1;
            if (o->kind == OPT_VALUE && i + 1 < argc)
                i++;
        } else {
            status = dispatch(a + 1, a);
        }
        if (g_verbose)
            printf("arg %d: %s (len %lu)\n", i, a, strlen(a));
    }
    return status;
}
