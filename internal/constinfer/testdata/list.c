/* list.c — linked-list utilities: shared struct fields, self-referencing
 * structs, mutual recursion (an FDG cycle), and mixed read/write access
 * to list payloads. */

typedef unsigned long size_t;
extern void *malloc(size_t n);
extern void free(void *p);

struct node {
    char *text;
    int weight;
    struct node *next;
};

struct list {
    struct node *head;
    int count;
};

static struct node *node_new(char *text, int weight) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->text = text;
    n->weight = weight;
    n->next = 0;
    return n;
}

static void list_push(struct list *l, struct node *n) {
    n->next = l->head;
    l->head = n;
    l->count++;
}

/* Pure reader over the list structure. */
static int list_weight(struct list *l) {
    struct node *n;
    int total = 0;
    for (n = l->head; n; n = n->next)
        total += n->weight;
    return total;
}

/* Mutually recursive walkers: one FDG strongly-connected component. */
static int walk_even(struct node *n, int depth);

static int walk_odd(struct node *n, int depth) {
    if (!n)
        return depth;
    return walk_even(n->next, depth + 1);
}

static int walk_even(struct node *n, int depth) {
    if (!n)
        return depth;
    return walk_odd(n->next, depth + 1);
}

/* Writes through the payload pointer stored in the shared field. */
static void list_blank(struct list *l) {
    struct node *n;
    for (n = l->head; n; n = n->next)
        if (n->text)
            *(n->text) = ' ';
}

static void list_free(struct list *l) {
    struct node *n = l->head;
    while (n) {
        struct node *next = n->next;
        free(n);
        n = next;
    }
    l->head = 0;
    l->count = 0;
}

int list_main(void) {
    struct list l;
    char a[16], b[16];
    l.head = 0;
    l.count = 0;
    a[0] = 'x';
    a[1] = 0;
    b[0] = 'y';
    b[1] = 0;
    list_push(&l, node_new(a, 1));
    list_push(&l, node_new(b, 2));
    {
        int w = list_weight(&l);
        int d = walk_odd(l.head, 0);
        list_blank(&l);
        list_free(&l);
        return w + d;
    }
}
