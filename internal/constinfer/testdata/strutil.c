/* strutil.c — string utilities in the style of the paper's benchmarks:
 * a mix of declared-const readers, undeclared readers, writers, and the
 * strchr-style flow-through functions that drive the polymorphism gain. */

typedef unsigned long size_t;

extern size_t strlen(const char *s);
extern char *strcpy(char *dst, const char *src);
extern int strcmp(const char *a, const char *b);

static int str_hash(const char *s) {
    int h = 5381;
    while (*s) {
        h = h * 33 + *s;
        s++;
    }
    return h;
}

/* Reader without the const the programmer could have written. */
static int str_count(char *s, char c) {
    int n = 0;
    for (; *s; s++)
        if (*s == c)
            n++;
    return n;
}

static void str_upper(char *s) {
    for (; *s; s++)
        if (*s >= 'a' && *s <= 'z')
            *s = *s - 'a' + 'A';
}

static void str_reverse(char *s, int n) {
    int i, j;
    for (i = 0, j = n - 1; i < j; i++, j--) {
        char t = s[i];
        s[i] = s[j];
        s[j] = t;
    }
}

/* The strchr pattern: a pointer into the argument flows out. */
static char *str_skip(char *s, char stop) {
    while (*s && *s != stop)
        s++;
    return s;
}

/* Reader through the flow-through helper. */
static int str_tail_len(char *line) {
    char *p = str_skip(line, ':');
    return (int)strlen(p);
}

/* Writer through the same helper: monomorphically this poisons
 * str_tail_len's parameter as well. */
static void str_truncate_at(char *line, char stop) {
    char *p = str_skip(line, stop);
    *p = 0;
}

static int str_equal_upto(char *a, char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i])
            return 0;
        if (a[i] == 0)
            return 1;
    }
    return 1;
}

int str_main(int argc, char **argv) {
    char buf[256];
    int total = 0, i;
    for (i = 1; i < argc; i++) {
        strcpy(buf, argv[i]);
        str_upper(buf);
        str_truncate_at(buf, '#');
        total += str_hash(buf);
        total += str_count(buf, 'A');
        total += str_tail_len(argv[i]);
        total += str_equal_upto(buf, argv[i], 8);
        str_reverse(buf, (int)strlen(buf));
    }
    return total;
}
