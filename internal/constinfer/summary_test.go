package constinfer

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cfront"
	"repro/internal/constraint"
)

// fakeSummaryCache is a map-backed SummaryCache with hit/put counters;
// internal/cache provides the real bounded one (it cannot be used here:
// it imports this package).
type fakeSummaryCache struct {
	mu         sync.Mutex
	m          map[SummaryKey]*BodySummary
	hits, puts int
}

func newFakeSummaryCache() *fakeSummaryCache {
	return &fakeSummaryCache{m: make(map[SummaryKey]*BodySummary)}
}

func (c *fakeSummaryCache) GetSummary(k SummaryKey) (*BodySummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[k]
	if ok {
		c.hits++
	}
	return s, ok
}

func (c *fakeSummaryCache) PutSummary(k SummaryKey, s *BodySummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = s
	c.puts++
}

const summaryProg = `
int ro(const int *p) { return *p; }
int wr(int *p) { *p = 1; return *p; }
int both(int *a, int *b) { return ro(a) + wr(b); }
`

func analyzeCached(t *testing.T, src string, opts Options, c SummaryCache) *Report {
	t.Helper()
	f, err := cfront.Parse("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis([]*cfront.File{f}, opts)
	a.SetSummaryCache(c)
	rep, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSummaryCacheRoundTrip: a warm second run replays every fragment
// and classifies identically.
func TestSummaryCacheRoundTrip(t *testing.T) {
	for _, opts := range []Options{{}, {Poly: true}} {
		cold := analyze(t, summaryProg, opts)
		c := newFakeSummaryCache()
		first := analyzeCached(t, summaryProg, opts, c)
		if c.puts != 3 {
			t.Fatalf("puts = %d; want 3 (one per defined function)", c.puts)
		}
		warm := analyzeCached(t, summaryProg, opts, c)
		if c.hits != 3 {
			t.Fatalf("hits = %d; want 3", c.hits)
		}
		for _, rep := range []*Report{first, warm} {
			if !reflect.DeepEqual(cold.Positions, rep.Positions) ||
				cold.Constraints != rep.Constraints || cold.Vars != rep.Vars {
				t.Fatalf("cached run classified differently:\ncold: %+v\ngot:  %+v", cold, rep)
			}
		}
	}
}

// TestSummaryKeyPositionSensitive: constraint provenance embeds
// positions, so a body whose lines shifted must key differently even
// though its token stream is unchanged.
func TestSummaryKeyPositionSensitive(t *testing.T) {
	c := newFakeSummaryCache()
	analyzeCached(t, summaryProg, Options{}, c)
	analyzeCached(t, "\n"+summaryProg, Options{}, c) // everything one line down
	if c.hits != 0 {
		t.Fatalf("hits = %d after line shift; want 0 (positions are part of the key)", c.hits)
	}
	if c.puts != 6 {
		t.Fatalf("puts = %d; want 6 (both variants stored)", c.puts)
	}
}

// TestSummaryPolyRecBypass: polymorphic recursion keeps its sequential
// iterate-to-fixpoint path and must not consult the cache.
func TestSummaryPolyRecBypass(t *testing.T) {
	c := newFakeSummaryCache()
	analyzeCached(t, summaryProg, Options{Poly: true, PolyRec: true}, c)
	if c.hits != 0 || c.puts != 0 {
		t.Fatalf("polyrec touched the cache: hits=%d puts=%d", c.hits, c.puts)
	}
}

// TestSummaryStaleCalleeRecomputes: a summary whose recorded callee does
// not resolve is rejected (recomputed), never merged wrong.
func TestSummaryStaleCalleeRecomputes(t *testing.T) {
	f, err := cfront.Parse("test.c", summaryProg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis([]*cfront.File{f}, Options{})
	a.Prepare()
	if _, ok := a.resultFromSummary(&BodySummary{
		Insts: []SummaryInst{{Callee: "no_such_function", At: 0}},
	}); ok {
		t.Fatal("summary with unresolvable callee was accepted")
	}
}

// TestSummaryApproxBytes: the cost estimate grows with content, so
// byte-bounded caches see real pressure.
func TestSummaryApproxBytes(t *testing.T) {
	small := (&BodySummary{}).ApproxBytes()
	big := (&BodySummary{
		Cons:   make([]constraint.Constraint, 100),
		Pinned: make([]constraint.Var, 50),
		Insts:  []SummaryInst{{Callee: "f", Ren: make([]RenPair, 10)}},
	}).ApproxBytes()
	if small <= 0 || big <= small {
		t.Fatalf("ApproxBytes: small=%d big=%d", small, big)
	}
}
