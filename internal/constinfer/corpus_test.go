package constinfer

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/cfront"
)

// loadCorpus parses every testdata C file.
func loadCorpus(t *testing.T) map[string]*cfront.File {
	t.Helper()
	paths, err := filepath.Glob("testdata/*.c")
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(paths))
	}
	out := map[string]*cfront.File{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := cfront.Parse(path, string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[filepath.Base(path)] = f
	}
	return out
}

// TestCorpusAllModes: every corpus file analyzes cleanly in every mode
// with the paper's ordering between the modes.
func TestCorpusAllModes(t *testing.T) {
	for name, f := range loadCorpus(t) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			modes := []Options{
				{},
				{Poly: true},
				{Poly: true, Simplify: true},
				{Poly: true, PolyRec: true, Simplify: true},
			}
			var inferred []int
			for _, opts := range modes {
				rep, err := Analyze([]*cfront.File{f}, opts)
				if err != nil {
					t.Fatalf("opts %+v: %v", opts, err)
				}
				if len(rep.Conflicts) > 0 {
					t.Fatalf("opts %+v: conflict: %v", opts, rep.Conflicts[0].Error())
				}
				inferred = append(inferred, rep.Inferred)
				if rep.Declared > rep.Inferred || rep.Inferred > rep.Total {
					t.Errorf("opts %+v: ordering violated: %d/%d/%d", opts, rep.Declared, rep.Inferred, rep.Total)
				}
			}
			// Poly ≥ mono; simplify neutral; polyrec ≥ poly.
			if inferred[1] < inferred[0] {
				t.Errorf("poly %d < mono %d", inferred[1], inferred[0])
			}
			if inferred[2] != inferred[1] {
				t.Errorf("simplify changed results: %d vs %d", inferred[2], inferred[1])
			}
			if inferred[3] < inferred[2] {
				t.Errorf("polyrec %d < poly %d", inferred[3], inferred[2])
			}
		})
	}
}

// TestCorpusPrintRoundTrip: the C printer round-trips every corpus file
// with identical analysis results.
func TestCorpusPrintRoundTrip(t *testing.T) {
	for name, f := range loadCorpus(t) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			printed := cfront.PrintFile(f)
			f2, err := cfront.Parse(name, printed)
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, printed)
			}
			r1, err := Analyze([]*cfront.File{f}, Options{Poly: true, Simplify: true})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Analyze([]*cfront.File{f2}, Options{Poly: true, Simplify: true})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Declared != r2.Declared || r1.Inferred != r2.Inferred || r1.Total != r2.Total {
				t.Errorf("round trip changed results: %d/%d/%d vs %d/%d/%d",
					r1.Declared, r1.Inferred, r1.Total, r2.Declared, r2.Inferred, r2.Total)
			}
		})
	}
}

// TestCorpusStrutilVerdicts spot-checks the string-utility module.
func TestCorpusStrutilVerdicts(t *testing.T) {
	f := loadCorpus(t)["strutil.c"]
	mono, err := Analyze([]*cfront.File{f}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Analyze([]*cfront.File{f}, Options{Poly: true})
	if err != nil {
		t.Fatal(err)
	}
	// The declared-const reader stays const.
	if p := find(t, mono, "str_hash", "s", 0); p.Verdict != MustConst || !p.Declared {
		t.Errorf("str_hash.s = %v declared=%v", p.Verdict, p.Declared)
	}
	// The undeclared reader is const-able in both modes.
	for _, rep := range []*Report{mono, poly} {
		if p := find(t, rep, "str_count", "s", 0); p.Verdict != Either {
			t.Errorf("str_count.s = %v", p.Verdict)
		}
	}
	// Writers never, in either mode.
	if p := find(t, poly, "str_upper", "s", 0); p.Verdict != MustNotConst {
		t.Errorf("str_upper.s = %v", p.Verdict)
	}
	if p := find(t, poly, "str_reverse", "s", 0); p.Verdict != MustNotConst {
		t.Errorf("str_reverse.s = %v", p.Verdict)
	}
	if p := find(t, poly, "str_truncate_at", "line", 0); p.Verdict != MustNotConst {
		t.Errorf("str_truncate_at.line = %v", p.Verdict)
	}
	// The flow-through pattern: poisoned monomorphically, separated
	// polymorphically.
	if p := find(t, mono, "str_tail_len", "line", 0); p.Verdict != MustNotConst {
		t.Errorf("mono str_tail_len.line = %v", p.Verdict)
	}
	if p := find(t, poly, "str_tail_len", "line", 0); p.Verdict != Either {
		t.Errorf("poly str_tail_len.line = %v", p.Verdict)
	}
	if p := find(t, poly, "str_skip", "s", 0); p.Verdict != Either {
		t.Errorf("poly str_skip.s = %v", p.Verdict)
	}
	if poly.Inferred <= mono.Inferred {
		t.Errorf("no poly gain on strutil: %d vs %d", poly.Inferred, mono.Inferred)
	}
}

// TestCorpusListVerdicts spot-checks the linked-list module.
func TestCorpusListVerdicts(t *testing.T) {
	f := loadCorpus(t)["list.c"]
	rep, err := Analyze([]*cfront.File{f}, Options{Poly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SCCs >= rep.Functions {
		t.Errorf("walk_even/walk_odd should share an SCC: %d SCCs for %d functions",
			rep.SCCs, rep.Functions)
	}
	// The pure reader's struct pointer is const-able.
	if p := find(t, rep, "list_weight", "l", 0); p.Verdict != Either {
		t.Errorf("list_weight.l = %v", p.Verdict)
	}
	// list_push writes fields through its parameters.
	if p := find(t, rep, "list_push", "l", 0); p.Verdict != MustNotConst {
		t.Errorf("list_push.l = %v", p.Verdict)
	}
	if p := find(t, rep, "list_push", "n", 0); p.Verdict != MustNotConst {
		t.Errorf("list_push.n = %v", p.Verdict)
	}
	// list_blank writes through the shared text field: node_new's text
	// parameter feeds that field, so its contents are not const.
	if p := find(t, rep, "node_new", "text", 0); p.Verdict != MustNotConst {
		t.Errorf("node_new.text = %v", p.Verdict)
	}
}

// TestCorpusBufferVerdicts spot-checks the buffer module.
func TestCorpusBufferVerdicts(t *testing.T) {
	f := loadCorpus(t)["buffer.c"]
	rep, err := Analyze([]*cfront.File{f}, Options{Poly: true})
	if err != nil {
		t.Fatal(err)
	}
	// The declared-const interface holds.
	if p := find(t, rep, "buf_append", "s", 0); p.Verdict != MustConst {
		t.Errorf("buf_append.s = %v", p.Verdict)
	}
	if p := find(t, rep, "buf_view", "", 0); p.Verdict != MustConst || !p.Declared {
		t.Errorf("buf_view result = %v declared=%v", p.Verdict, p.Declared)
	}
	// The undeclared reader is found.
	if p := find(t, rep, "buf_len", "b", 0); p.Verdict != Either {
		t.Errorf("buf_len.b = %v", p.Verdict)
	}
	// Suggestions include buf_len.
	found := false
	for _, s := range rep.Suggested {
		if s.Func == "buf_len" {
			found = true
			// Typedefs are macro-expanded (Section 4.2), so the
			// suggestion spells the underlying type.
			if s.New != "unsigned long buf_len(const struct buffer *b)" {
				t.Errorf("buf_len suggestion = %q", s.New)
			}
		}
	}
	if !found {
		t.Error("no suggestion for buf_len")
	}
}

// TestCorpusCompilesWithCC validates the corpus is real C when a system
// compiler is available.
func TestCorpusCompilesWithCC(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		if cc, err = exec.LookPath("gcc"); err != nil {
			t.Skip("no C compiler available")
		}
	}
	paths, _ := filepath.Glob("testdata/*.c")
	for _, path := range paths {
		out, err := exec.Command(cc, "-std=c99", "-fsyntax-only", "-Wall", path).CombinedOutput()
		if err != nil {
			t.Errorf("%s: cc rejected: %v\n%s", path, err, out)
		} else if len(out) > 0 {
			t.Logf("%s: cc warnings:\n%s", path, out)
		}
	}
}
