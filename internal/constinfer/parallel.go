package constinfer

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/constraint"
)

// Parallel constraint generation.
//
// Constraint generation is independent per function body once every
// signature exists (Constrain's sequential first sweep), so bodies are
// analyzed concurrently: each worker clones the Analysis with its own
// constraint system allocating variables in a disjoint high range
// (workerVarBase), walks one body, and returns the constraint fragment.
// The fragments are renumbered into the shared system sequentially in SCC
// order, so the merged system — variable numbering, constraint order,
// everything downstream — is identical for every pool size, including 1.
//
// Workers treat all shared state (globals, function infos, struct types)
// as frozen. The handful of constructs that would mutate it — an implicit
// global, an implicitly declared function, a struct type first reached
// inside a body, a late-completed struct field — panic with specMiss
// instead; the merge loop re-analyzes those bodies sequentially at their
// deterministic slot. Because workers observe only the frozen pre-body
// state, which bodies miss is itself deterministic.

// workerVarBase is the first qualifier variable a speculative worker
// allocates. Real programs stay far below it, so worker-allocated
// variables are recognizable by v >= workerVarBase at merge time.
const workerVarBase = 1 << 30

// speculation is the per-worker record of scheme uses. Schemes do not
// exist while workers run (generalization happens at merge), so a call to
// a function in an earlier SCC is instantiated symbolically: the worker
// renames the callee's signature interface with fresh variables and
// records the use; the merge replays the constraint copy against the real
// scheme at the same position.
type speculation struct {
	// scc is the component of the function being analyzed; calls within
	// it use the shared signature, as the sequential path does.
	scc   int
	insts []instRecord
}

// instRecord is one symbolic scheme instantiation.
type instRecord struct {
	callee *funcInfo
	// at is the worker constraint index the instantiation happened at;
	// the replayed scheme constraints are inserted there.
	at int
	// ren maps the callee's non-pinned signature variables to the fresh
	// worker variables the instantiated signature uses.
	ren map[constraint.Var]constraint.Var
}

// specMiss aborts a speculative body analysis that needs to mutate shared
// state; the body is re-analyzed sequentially at merge time.
type specMiss struct{ what string }

// bodyResult is one body's speculative constraint fragment.
type bodyResult struct {
	cons   []constraint.Constraint
	nvars  int              // variables allocated at workerVarBase
	pinned []constraint.Var // worker-allocated pinned variables, sorted
	insts  []instRecord
	miss   bool
	// cached marks a fragment replayed from the summary cache rather
	// than computed by the pool; the tracer's per-function merge spans
	// report it as their cache attribute.
	cached bool
}

// instantiate symbolically instantiates a callee from an earlier SCC: the
// signature's interface variables are renamed to fresh worker variables
// and the use is recorded for replay against the callee's scheme.
func (s *speculation) instantiate(a *Analysis, callee *funcInfo) *RType {
	ren := make(map[constraint.Var]constraint.Var)
	for _, v := range collectVars(callee.sig, nil, map[*RType]bool{}) {
		if !a.tr.isPinned(v) {
			ren[v] = a.sys.Fresh()
		}
	}
	s.insts = append(s.insts, instRecord{
		callee: callee, at: a.sys.NumConstraints(), ren: ren,
	})
	return a.tr.instantiate(callee.sig, ren, map[*RType]*RType{})
}

// constrainBodies analyzes every defined function body on a worker pool
// of the given size (0 selects GOMAXPROCS) and returns the per-function
// fragments indexed by fi.ord. Indices marked in skip (cache hits whose
// fragments are replayed by the caller) are left zero and not analyzed.
func (a *Analysis) constrainBodies(jobs int, skip []bool) []bodyResult {
	results := make([]bodyResult, len(a.defined))
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(a.defined) {
		jobs = len(a.defined)
	}
	if jobs <= 1 {
		for i, fi := range a.defined {
			if skip != nil && skip[i] {
				continue
			}
			results[i] = a.constrainBody(fi)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(a.defined) {
					return
				}
				if skip != nil && skip[i] {
					continue
				}
				results[i] = a.constrainBody(a.defined[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// constrainBody speculatively analyzes one body in a clone of the
// analysis with a private, offset constraint system. The clone shares the
// frozen maps (globals, funcs, enums, struct values) read-only.
func (a *Analysis) constrainBody(fi *funcInfo) (res bodyResult) {
	wsys := constraint.NewSystemAt(a.set, workerVarBase)
	wtr := &translator{
		sys:         wsys,
		set:         a.tr.set,
		suite:       a.tr.suite,
		structVals:  a.tr.structVals,
		pinned:      make(map[constraint.Var]bool),
		basePinned:  a.tr.pinned,
		speculative: true,
	}
	w := &Analysis{
		opts:        a.opts,
		set:         a.set,
		sys:         wsys,
		tr:          wtr,
		files:       a.files,
		globals:     a.globals,
		funcs:       a.funcs,
		enums:       a.enums,
		suite:       a.suite,
		constActive: a.constActive,
		spec:        &speculation{scc: fi.scc},
	}
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(specMiss); ok {
				res = bodyResult{miss: true}
				return
			}
			panic(p)
		}
	}()
	w.analyzeBody(fi)
	return bodyResult{
		cons:   wsys.Constraints(),
		nvars:  wsys.NumVars() - workerVarBase,
		pinned: sortedVars(wtr.pinned),
		insts:  w.spec.insts,
	}
}

// mergeBody renumbers one speculative fragment into the shared system:
// worker variables become fresh shared variables in allocation order,
// worker pins carry over, and each recorded scheme use is replayed at its
// original position exactly as the sequential instantiation would.
func (a *Analysis) mergeBody(r *bodyResult) {
	ren := make(map[constraint.Var]constraint.Var, r.nvars)
	for i := 0; i < r.nvars; i++ {
		ren[constraint.Var(workerVarBase+i)] = a.sys.Fresh()
	}
	for _, v := range r.pinned {
		a.tr.pinned[ren[v]] = true
	}
	prev := 0
	for i := range r.insts {
		rec := &r.insts[i]
		a.sys.AddConstraints(r.cons[prev:rec.at], ren)
		prev = rec.at
		a.replayInst(rec, ren)
	}
	a.sys.AddConstraints(r.cons[prev:], ren)
}

// replayInst copies the callee scheme's constraints for one recorded use.
// Quantified variables the worker pre-named (the signature interface) map
// to their merged counterparts; the remaining quantified variables (the
// scheme's internal ones) get fresh shared variables in sorted order,
// mirroring useFunc.
func (a *Analysis) replayInst(rec *instRecord, ren map[constraint.Var]constraint.Var) {
	sch := rec.callee.scheme
	if sch == nil {
		// Monomorphic callee after all (e.g. polymorphism disabled for
		// its component); the worker used renamed signature variables, so
		// equate them with the shared ones.
		why := constraint.Reason{Msg: "monomorphic use of " + rec.callee.name}
		sigVars := make([]constraint.Var, 0, len(rec.ren))
		for v := range rec.ren {
			sigVars = append(sigVars, v)
		}
		sort.Slice(sigVars, func(i, j int) bool { return sigVars[i] < sigVars[j] })
		for _, v := range sigVars {
			wv := rec.ren[v]
			a.sys.Add(constraint.V(ren[wv]), constraint.V(v), why)
			a.sys.Add(constraint.V(v), constraint.V(ren[wv]), why)
		}
		return
	}
	sren := make(map[constraint.Var]constraint.Var, len(sch.qvars))
	for _, v := range sortedVars(sch.qvars) {
		if wv, ok := rec.ren[v]; ok {
			sren[v] = ren[wv]
		} else {
			sren[v] = a.sys.Fresh()
		}
	}
	a.sys.AddConstraints(sch.cons, sren)
}
