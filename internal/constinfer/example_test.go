package constinfer_test

import (
	"fmt"

	"repro/internal/constinfer"
)

// Classifying the const positions of a small C program (the Section 4
// analysis in miniature).
func ExampleAnalyzeSource() {
	rep, err := constinfer.AnalyzeSource("ex.c", `
		int mylen(char *s) {
			int n = 0;
			while (s[n]) n++;
			return n;
		}
		void set(char *p) { *p = 0; }
	`, constinfer.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, p := range rep.Positions {
		fmt.Printf("%s.%s: %s\n", p.Func, p.Param, p.Verdict)
	}
	for _, s := range rep.Suggested {
		fmt.Println("suggest:", s.New)
	}
	// Output:
	// mylen.s: either
	// set.p: not-const
	// suggest: int mylen(const char *s)
}
