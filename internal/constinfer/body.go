package constinfer

import (
	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constraint"
)

// env is the lexical environment during body analysis: scoped l-value
// types for parameters and locals.
type env struct {
	a      *Analysis
	scopes []map[string]*RType
	fn     *funcInfo // for return statements
}

func newEnv(a *Analysis) *env {
	return &env{a: a, scopes: []map[string]*RType{{}}}
}

func (e *env) push() { e.scopes = append(e.scopes, map[string]*RType{}) }
func (e *env) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *env) bind(name string, lv *RType) {
	e.scopes[len(e.scopes)-1][name] = lv
}

func (e *env) lookup(name string) (*RType, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if lv, ok := e.scopes[i][name]; ok {
			return lv, true
		}
	}
	return nil, false
}

func why(pos cfront.Pos, msg string) constraint.Reason {
	return constraint.Reason{Pos: pos.String(), Msg: msg}
}

// analyzeBody generates constraints for one function definition.
func (a *Analysis) analyzeBody(fi *funcInfo) {
	env := newEnv(a)
	env.fn = fi
	for i, p := range fi.decl.Type.Params {
		if p.Name == "" {
			continue
		}
		content := fi.sig.Params[i]
		cell := a.tr.newRef(content, p.Type.Quals)
		env.bind(p.Name, cell)
	}
	a.stmt(env, fi.decl.Body)
}

func (a *Analysis) stmt(env *env, s cfront.Stmt) {
	switch s := s.(type) {
	case nil:
	case *cfront.Block:
		env.push()
		for _, it := range s.Items {
			a.stmt(env, it)
		}
		env.pop()
	case *cfront.DeclStmt:
		for _, d := range s.Decls {
			if v, ok := d.(*cfront.VarDecl); ok {
				a.localVar(env, v)
			}
		}
	case *cfront.ExprStmt:
		a.exprR(env, s.X)
	case *cfront.EmptyStmt:
	case *cfront.IfStmt:
		a.exprR(env, s.Cond)
		a.stmt(env, s.Then)
		a.stmt(env, s.Else)
	case *cfront.WhileStmt:
		a.exprR(env, s.Cond)
		a.stmt(env, s.Body)
	case *cfront.DoWhileStmt:
		a.stmt(env, s.Body)
		a.exprR(env, s.Cond)
	case *cfront.ForStmt:
		env.push()
		a.stmt(env, s.Init)
		if s.Cond != nil {
			a.exprR(env, s.Cond)
		}
		if s.Post != nil {
			a.exprR(env, s.Post)
		}
		a.stmt(env, s.Body)
		env.pop()
	case *cfront.ReturnStmt:
		if s.Value != nil && env.fn != nil {
			rv := a.exprR(env, s.Value)
			a.tr.subtype(rv, env.fn.sig.Ret, why(s.Pos, "returned value"))
			if rv != nil {
				for _, b := range a.suite.Bindings() {
					if h := b.A.Hooks.Return; h != nil {
						h(a.sys, b, rv.Q, why(s.Pos, "returned from "+env.fn.name))
					}
				}
			}
		}
	case *cfront.BreakStmt, *cfront.ContinueStmt, *cfront.GotoStmt:
	case *cfront.LabelStmt:
		a.stmt(env, s.Stmt)
	case *cfront.SwitchStmt:
		a.exprR(env, s.Tag)
		a.stmt(env, s.Body)
	case *cfront.CaseStmt:
		if s.Value != nil {
			a.exprR(env, s.Value)
		}
		a.stmt(env, s.Stmt)
	}
}

// localVar binds a block-scope variable. Static locals are pinned: their
// storage is shared across all calls, so their qualifiers must not be
// quantified into a scheme.
func (a *Analysis) localVar(env *env, v *cfront.VarDecl) {
	if v.Storage == cfront.SCStatic {
		a.tr.pinning = true
	}
	lv := a.tr.LValue(v.Type)
	a.tr.pinning = false
	env.bind(v.Name, lv)
	if v.Init != nil {
		a.initialize(env, lv, v.Init)
	}
}

// initialize relates an initializer to an l-value cell.
func (a *Analysis) initialize(env *env, lv *RType, init cfront.Expr) {
	if il, ok := init.(*cfront.InitList); ok {
		a.initList(env, lv.Elem, il)
		return
	}
	rv := a.exprR(env, init)
	a.tr.subtype(rv, lv.Elem, why(init.ExprPos(), "initializer"))
}

// initList relates braced initializers: array elements flow to the
// element type, struct items positionally to the fields.
func (a *Analysis) initList(env *env, content *RType, il *cfront.InitList) {
	if content == nil {
		for _, item := range il.Items {
			a.exprR(env, item)
		}
		return
	}
	switch content.Kind {
	case RRef: // array content (decayed): items are elements
		for _, item := range il.Items {
			if sub, ok := item.(*cfront.InitList); ok {
				a.initList(env, content.Elem, sub)
				continue
			}
			rv := a.exprR(env, item)
			a.tr.subtype(rv, content.Elem, why(item.ExprPos(), "array initializer element"))
		}
	case RStruct:
		i := 0
		for _, f := range content.Struct.Fields {
			if i >= len(il.Items) {
				break
			}
			item := il.Items[i]
			i++
			fieldRef, ok := a.tr.Field(content, f.Name)
			if !ok {
				continue
			}
			if sub, ok := item.(*cfront.InitList); ok {
				a.initList(env, fieldRef.Elem, sub)
				continue
			}
			rv := a.exprR(env, item)
			a.tr.subtype(rv, fieldRef.Elem, why(item.ExprPos(), "struct initializer field"))
		}
	default:
		for _, item := range il.Items {
			a.exprR(env, item)
		}
	}
}

// freshLeaf makes an unconstrained scalar.
func (a *Analysis) freshLeaf(spelling string) *RType {
	return &RType{Kind: RLeaf, Q: constraint.V(a.sys.Fresh()), Spelling: spelling}
}

// lval is a tracked l-value: the reference written through, plus guard
// qualifiers that must also be non-const when the l-value is written (a
// struct member write also writes the enclosing struct object, so a
// pointer-to-const struct protects its fields).
type lval struct {
	ref    *RType
	guards []constraint.Term
}

// exprL computes the l-value of an expression, or nil when the
// expression has no l-value this analysis tracks.
func (a *Analysis) exprL(env *env, e cfront.Expr) *lval {
	switch e := e.(type) {
	case *cfront.Ident:
		if lv, ok := env.lookup(e.Name); ok {
			return &lval{ref: lv}
		}
		if lv, ok := a.globals[e.Name]; ok {
			return &lval{ref: lv}
		}
		if a.enums[e.Name] {
			return nil
		}
		if _, ok := a.funcs[e.Name]; ok {
			return nil
		}
		// Unknown name: create an implicit pinned global so repeated
		// uses alias.
		if a.spec != nil {
			panic(specMiss{"implicit global " + e.Name})
		}
		a.tr.pinning = true
		lv := a.tr.newRef(a.freshLeaf("int"), cfront.Quals{})
		a.tr.pinning = false
		a.globals[e.Name] = lv
		return &lval{ref: lv}
	case *cfront.Unary:
		if e.Op == cfront.UDeref {
			rv := a.exprR(env, e.X)
			if rv != nil && rv.Kind == RRef {
				return &lval{ref: rv}
			}
			return nil
		}
		return nil
	case *cfront.Index:
		base := a.exprR(env, e.X)
		a.exprR(env, e.I)
		if base != nil && base.Kind == RRef {
			return &lval{ref: base}
		}
		return nil
	case *cfront.Member:
		var sv *RType
		var guards []constraint.Term
		if e.Arrow {
			rv := a.exprR(env, e.X)
			if rv != nil && rv.Kind == RRef {
				sv = rv.Elem
				guards = append(guards, rv.Q)
			}
		} else {
			inner := a.exprL(env, e.X)
			if inner != nil && inner.ref.Kind == RRef {
				sv = inner.ref.Elem
				guards = append(guards, inner.guards...)
				guards = append(guards, inner.ref.Q)
			}
		}
		if sv == nil || sv.Kind != RStruct {
			return nil
		}
		if f, ok := a.tr.Field(sv, e.Name); ok {
			return &lval{ref: f, guards: guards}
		}
		return nil
	default:
		return nil
	}
}

// forbidWrite runs every analysis's write rule (the paper's Assign') on
// an l-value: for const it bounds the reference and guard qualifiers
// away from const.
func (a *Analysis) forbidWrite(lv *lval, r constraint.Reason) {
	for _, b := range a.suite.Bindings() {
		if h := b.A.Hooks.Write; h != nil {
			h(a.sys, b, lv.ref.Q, lv.guards, r)
		}
	}
}

// exprR computes the r-value type of an expression, generating flow
// constraints along the way.
func (a *Analysis) exprR(env *env, e cfront.Expr) *RType {
	switch e := e.(type) {
	case nil:
		return nil

	case *cfront.Ident:
		if lv, ok := env.lookup(e.Name); ok {
			return lv.Elem
		}
		if lv, ok := a.globals[e.Name]; ok {
			return lv.Elem
		}
		// A function name in value or call position uses its (possibly
		// instantiated) signature.
		if fi, ok := a.funcs[e.Name]; ok {
			return a.useFunc(fi)
		}
		if a.enums[e.Name] {
			return a.freshLeaf("int")
		}
		lv := a.exprL(env, e) // creates the implicit global
		if lv != nil {
			return lv.ref.Elem
		}
		return a.freshLeaf("int")

	case *cfront.IntLit, *cfront.CharLit, *cfront.FloatLit, *cfront.SizeofType:
		return a.freshLeaf("int")

	case *cfront.SizeofExpr:
		// The operand is not evaluated; its type effects are irrelevant.
		return a.freshLeaf("int")

	case *cfront.StrLit:
		// Each string literal is a fresh unconstrained character buffer:
		// it may be viewed const or not per use site.
		return &RType{Kind: RRef, Q: constraint.V(a.sys.Fresh()),
			Elem: a.freshLeaf("char")}

	case *cfront.Unary:
		switch e.Op {
		case cfront.UDeref:
			rv := a.exprR(env, e.X)
			if rv != nil && rv.Kind == RRef {
				return rv.Elem
			}
			if rv != nil && rv.Kind == RFunc {
				// *fp where fp is a function pointer: still the function.
				return rv
			}
			return a.freshLeaf("int")
		case cfront.UAddr:
			if lv := a.exprL(env, e.X); lv != nil {
				return lv.ref
			}
			a.exprR(env, e.X)
			return &RType{Kind: RRef, Q: constraint.V(a.sys.Fresh()),
				Elem: a.freshLeaf("int")}
		case cfront.UPreInc, cfront.UPreDec:
			return a.mutate(env, e.X, e.Pos, "increment/decrement")
		default:
			a.exprR(env, e.X)
			return a.freshLeaf("int")
		}

	case *cfront.Postfix:
		return a.mutate(env, e.X, e.Pos, "increment/decrement")

	case *cfront.Binary:
		l := a.exprR(env, e.L)
		r := a.exprR(env, e.R)
		// Pointer arithmetic keeps the pointer type.
		if l != nil && l.Kind == RRef && (e.Op == cfront.BAdd || e.Op == cfront.BSub) {
			return l
		}
		if r != nil && r.Kind == RRef && e.Op == cfront.BAdd {
			return r
		}
		return a.freshLeaf("int")

	case *cfront.AssignExpr:
		lv := a.exprL(env, e.L)
		rv := a.exprR(env, e.R)
		if lv == nil {
			// Untracked l-value (e.g. cast target): effects severed.
			a.exprR(env, e.L)
			return rv
		}
		a.forbidWrite(lv, why(e.Pos, "assignment target is written"))
		if e.Op == cfront.PlainAssign {
			a.tr.subtype(rv, lv.ref.Elem, why(e.Pos, "assigned value"))
		}
		return lv.ref.Elem

	case *cfront.Cond:
		a.exprR(env, e.C)
		t := a.exprR(env, e.T)
		f := a.exprR(env, e.F)
		if t != nil && f != nil && t.Kind == RRef && f.Kind == RRef {
			res := a.freshen(t, map[*RType]*RType{})
			a.tr.subtype(t, res, why(e.Pos, "conditional branch"))
			a.tr.subtype(f, res, why(e.Pos, "conditional branch"))
			return res
		}
		if t != nil {
			return t
		}
		return f

	case *cfront.Call:
		var fn *RType
		var callee *funcInfo
		if id, ok := e.Fn.(*cfront.Ident); ok {
			if _, isLocal := env.lookup(id.Name); !isLocal {
				if fi, ok := a.funcs[id.Name]; ok {
					fn = a.useFunc(fi)
					callee = fi
				} else if _, isGlobal := a.globals[id.Name]; !isGlobal {
					// Implicit declaration: int f(...). Per analysis,
					// either a prelude entry annotates the arguments or
					// the conservative rule applies (for const: pointer
					// arguments are treated as written through).
					if a.spec != nil {
						panic(specMiss{"implicitly declared function " + id.Name})
					}
					fi := &funcInfo{
						name: id.Name,
						decl: &cfront.FuncDecl{
							Name: id.Name,
							Type: &cfront.Type{Kind: cfront.TFunc,
								Ret: cfront.NewPrim(cfront.TInt, "int"), Variadic: true},
							Pos: id.Pos,
						},
						scc: -1, ord: -1,
					}
					a.funcs[id.Name] = fi
					a.makeLibSignature(fi)
					fn = fi.sig
					for i, arg := range e.Args {
						rv := a.exprR(env, arg)
						if rv == nil {
							continue
						}
						for _, b := range a.suite.Bindings() {
							if ent, ok := b.Entry(id.Name); ok {
								b.ApplyParam(a.sys, ent, i, rv.Q, arg.ExprPos().String())
								continue
							}
							if b.A.Hooks.LibRef != nil && rv.Kind == RRef {
								b.A.Hooks.LibRef(a.sys, b, analysis.LibUse{
									Fn: id.Name, Pos: arg.ExprPos().String(), Implicit: true,
								}, rv.Q)
							}
						}
					}
					return fn.Ret
				}
			}
		}
		if fn == nil {
			fn = a.exprR(env, e.Fn)
		}
		if fn == nil || fn.Kind != RFunc {
			// Calling through something we do not track.
			for _, arg := range e.Args {
				a.exprR(env, arg)
			}
			return a.freshLeaf("int")
		}
		for i, arg := range e.Args {
			rv := a.exprR(env, arg)
			if i < len(fn.Params) {
				a.tr.subtype(rv, fn.Params[i], why(arg.ExprPos(), "function argument"))
			}
			// Extra (variadic or excess) arguments are ignored, as the
			// paper does for wrong-arity calls.
			if callee != nil && !callee.defined {
				// Library call with a prototype: prelude seeds/sinks
				// apply at the argument position.
				a.preludeArg(callee.name, i, rv, arg.ExprPos())
			}
		}
		return fn.Ret

	case *cfront.Index:
		if lv := a.exprL(env, e); lv != nil {
			return lv.ref.Elem
		}
		return a.freshLeaf("int")

	case *cfront.Member:
		if lv := a.exprL(env, e); lv != nil {
			return lv.ref.Elem
		}
		return a.freshLeaf("int")

	case *cfront.Cast:
		// Explicit casts lose any association between the value being
		// cast and the resulting type (Section 4.2).
		a.exprR(env, e.X)
		return a.tr.RValue(e.To)

	case *cfront.Comma:
		a.exprR(env, e.L)
		return a.exprR(env, e.R)

	case *cfront.InitList:
		for _, item := range e.Items {
			a.exprR(env, item)
		}
		return a.freshLeaf("int")

	default:
		return a.freshLeaf("int")
	}
}

// mutate handles ++/--: the target cell is written through.
func (a *Analysis) mutate(env *env, x cfront.Expr, pos cfront.Pos, what string) *RType {
	lv := a.exprL(env, x)
	if lv == nil {
		return a.exprR(env, x)
	}
	a.forbidWrite(lv, why(pos, what+" target is written"))
	return lv.ref.Elem
}

// freshen copies a type shape with all-fresh qualifier variables (struct
// values stay shared), used for merge points like the conditional
// operator.
func (a *Analysis) freshen(t *RType, memo map[*RType]*RType) *RType {
	if t == nil {
		return nil
	}
	if t.Kind == RStruct {
		return t
	}
	if got, ok := memo[t]; ok {
		return got
	}
	out := &RType{Kind: t.Kind, Q: constraint.V(a.sys.Fresh()),
		Variadic: t.Variadic, Spelling: t.Spelling, Struct: t.Struct, Fields: t.Fields}
	memo[t] = out
	out.Elem = a.freshen(t.Elem, memo)
	out.Ret = a.freshen(t.Ret, memo)
	for _, p := range t.Params {
		out.Params = append(out.Params, a.freshen(p, memo))
	}
	return out
}
