package constinfer

// Per-function constraint-summary caching.
//
// Constraint generation for one function body is a pure function of (1)
// the shared pre-body state — declarations, globals, library signatures,
// struct types, the SCC partition of the FDG, and the variable numbering
// they induce — and (2) the function's own definition. The speculative
// worker machinery (parallel.go) already expresses a body's output as a
// relocatable fragment: constraints over worker-local variables plus
// stable references to pre-body variables, with scheme instantiations
// recorded symbolically for replay at merge time.
//
// A BodySummary is exactly that fragment in an Analysis-independent form,
// content-addressed by
//
//	key = H(prepare fingerprint ‖ function name ‖ function AST fingerprint)
//
// where the prepare fingerprint hashes everything a body analysis can
// observe of the shared state (declaration skeletons with bodies elided,
// enum constants, the SCC partition, and the numeric variable/constraint
// brackets of the signature sweep). Re-analyzing a program in which one
// function changed therefore re-derives only that function's fragment —
// every other body is replayed from cache, and the merged system is
// byte-identical to a cold run because the merge consumes fragments in
// the same deterministic SCC order either way.
//
// Summaries are sound across runs, not merely within one: a cached
// fragment is only stored when the speculative analysis completed without
// touching mutable shared state (no specMiss), and it is only replayed
// when the prepare fingerprint — which pins the meaning of every
// pre-body variable the fragment references — is unchanged.
//
// Scheme instantiations are recorded symbolically (callee by name, see
// SummaryInst), not as constraint copies, so a replayed fragment
// instantiates the callee's *current* scheme. Under -simplify that
// scheme's constraint fragment has already been condensed by the
// one-pass constraint.Restrict projection (cycles among internal
// variables collapsed, reachability composed per lattice component), so
// every replay instantiates the condensed form with no extra plumbing:
// fewer constraints enter the merged system per call site, and the
// merge is byte-identical to a cold run either way.

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/cfront"
	"repro/internal/constraint"
)

// SummaryKey is the content address of one function's constraint summary.
type SummaryKey [sha256.Size]byte

// BodySummary is one function body's constraint fragment in relocatable
// form: Cons and Pinned refer to worker-local variables (allocated from
// workerVarBase) and to stable pre-body variables; NVars counts the
// worker-local allocations; Insts records symbolic scheme instantiations
// to be replayed against the callee's current scheme at merge time.
// A stored summary is immutable and may be shared by concurrent readers.
type BodySummary struct {
	Cons   []constraint.Constraint
	NVars  int
	Pinned []constraint.Var
	Insts  []SummaryInst
}

// SummaryInst is one recorded scheme use: the callee by name, the
// fragment constraint index the instantiation happened at, and the
// renaming from the callee's signature variables (stable pre-body ids) to
// the worker-local variables of the instantiated copy.
type SummaryInst struct {
	Callee string
	At     int
	Ren    []RenPair
}

// RenPair maps one callee signature variable to its worker-local copy.
type RenPair struct {
	Sig, Worker constraint.Var
}

// ApproxBytes estimates the in-memory footprint of the summary, for
// byte-bounded caches.
func (s *BodySummary) ApproxBytes() int64 {
	n := int64(64)
	for _, c := range s.Cons {
		n += 48 + int64(len(c.Why.Pos)+len(c.Why.Msg))
	}
	n += int64(8 * len(s.Pinned))
	for _, in := range s.Insts {
		n += int64(32 + len(in.Callee) + 16*len(in.Ren))
	}
	return n
}

// SummaryCache memoizes per-function constraint summaries. Implementations
// must be safe for concurrent use; the cache is shared by every analysis a
// resident server runs. internal/cache provides a bounded LRU
// implementation with hit/miss/eviction counters.
type SummaryCache interface {
	GetSummary(SummaryKey) (*BodySummary, bool)
	PutSummary(SummaryKey, *BodySummary)
}

// SetSummaryCache installs a per-function summary cache consulted by
// Constrain. It must be set before Constrain runs. The cache accelerates
// the monomorphic and polymorphic modes; polymorphic recursion keeps its
// sequential iterate-to-fixpoint path and ignores the cache.
func (a *Analysis) SetSummaryCache(c SummaryCache) { a.summaries = c }

// prepareFingerprint hashes the shared pre-body state: options, the
// declaration skeleton of every file (function bodies and global
// initializer expressions elided — neither affects what a body analysis
// observes), enum constants, the SCC partition, and the numeric
// variable/constraint brackets after the signature sweep. Two runs with
// equal prepare fingerprints allocate identically-numbered pre-body
// variables with identical meanings.
func (a *Analysis) prepareFingerprint() []byte {
	h := sha256.New()
	fmt.Fprintf(h, "opts:%t,%t,%t,%d;", a.opts.Poly, a.opts.PolyRec, a.opts.Simplify, a.opts.MaxPolyRecIters)
	// The suite fingerprint pins the analysis set and every prelude's
	// content: cached fragments embed prelude-derived constraints, so a
	// summary must never be replayed under a different suite.
	fmt.Fprintf(h, "suite:%s;", a.suite.Fingerprint())
	for _, f := range a.files {
		if f == nil {
			fmt.Fprint(h, "file:nil;")
			continue
		}
		fmt.Fprintf(h, "file:%d:%s;", len(f.Name), f.Name)
		for _, d := range f.Decls {
			cfront.FingerprintDecl(h, d, false)
		}
		names := make([]string, 0, len(f.EnumConsts))
		for n := range f.EnumConsts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "enum:%s=%d;", n, f.EnumConsts[n])
		}
	}
	for _, scc := range a.sccs {
		fmt.Fprint(h, "scc:")
		for _, fi := range scc.funcs {
			fmt.Fprintf(h, "%d:%s,", len(fi.name), fi.name)
		}
		fmt.Fprintf(h, "@%d,%d,%d,%d;", scc.sigVars[0], scc.sigVars[1], scc.sigCons[0], scc.sigCons[1])
	}
	fmt.Fprintf(h, "pre:%d,%d;", a.sys.NumVars(), a.sys.NumConstraints())
	return h.Sum(nil)
}

// bodyKey is the content address of one function's fragment: the prepare
// fingerprint (pinning the shared state) plus the function's full AST
// fingerprint (structure, literals, and positions — a body whose line
// numbers shifted keys differently, because positions are embedded in
// constraint provenance).
func bodyKey(pre []byte, fi *funcInfo) SummaryKey {
	h := sha256.New()
	h.Write(pre)
	fmt.Fprintf(h, "func:%d:%s;", len(fi.name), fi.name)
	cfront.FingerprintFuncBody(h, fi.decl)
	var k SummaryKey
	h.Sum(k[:0])
	return k
}

// summaryFromResult converts a clean speculative fragment to its
// Analysis-independent cached form. The constraint and pin slices are
// aliased, not copied: the worker system they came from is discarded, and
// merge only reads them.
func summaryFromResult(r *bodyResult) *BodySummary {
	s := &BodySummary{Cons: r.cons, NVars: r.nvars, Pinned: r.pinned}
	for _, rec := range r.insts {
		pairs := make([]RenPair, 0, len(rec.ren))
		for sig, wv := range rec.ren {
			pairs = append(pairs, RenPair{Sig: sig, Worker: wv})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Sig < pairs[j].Sig })
		s.Insts = append(s.Insts, SummaryInst{Callee: rec.callee.name, At: rec.at, Ren: pairs})
	}
	return s
}

// resultFromSummary rebinds a cached summary to this analysis, resolving
// callees by name. It fails (false) if a recorded callee does not resolve
// to a signatured function — impossible when the prepare fingerprint
// matched, but checked so a stale cache can only cause a recomputation,
// never a wrong merge.
func (a *Analysis) resultFromSummary(s *BodySummary) (bodyResult, bool) {
	insts := make([]instRecord, len(s.Insts))
	for i, si := range s.Insts {
		fi := a.funcs[si.Callee]
		if fi == nil || fi.sig == nil || !fi.defined {
			return bodyResult{}, false
		}
		ren := make(map[constraint.Var]constraint.Var, len(si.Ren))
		for _, p := range si.Ren {
			ren[p.Sig] = p.Worker
		}
		insts[i] = instRecord{callee: fi, at: si.At, ren: ren}
	}
	return bodyResult{cons: s.Cons, nvars: s.NVars, pinned: s.Pinned, insts: insts}, true
}

// cachedBodyResults produces the per-function fragments, replaying cached
// summaries for unchanged functions and running the worker pool only over
// the rest. Without a cache it is exactly constrainBodies. Fragments
// computed live and found clean (no specMiss) are stored for future runs.
func (a *Analysis) cachedBodyResults(jobs int) []bodyResult {
	if a.summaries == nil || a.opts.PolyRec || len(a.defined) == 0 {
		return a.constrainBodies(jobs, nil)
	}
	pre := a.prepareFingerprint()
	keys := make([]SummaryKey, len(a.defined))
	skip := make([]bool, len(a.defined))
	cached := make([]bodyResult, len(a.defined))
	for i, fi := range a.defined {
		keys[i] = bodyKey(pre, fi)
		if s, ok := a.summaries.GetSummary(keys[i]); ok {
			if r, ok := a.resultFromSummary(s); ok {
				r.cached = true
				cached[i] = r
				skip[i] = true
			}
		}
	}
	results := a.constrainBodies(jobs, skip)
	for i := range results {
		if skip[i] {
			results[i] = cached[i]
		} else if !results[i].miss {
			a.summaries.PutSummary(keys[i], summaryFromResult(&results[i]))
		}
	}
	return results
}
