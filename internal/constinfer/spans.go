package constinfer

// Fragment spans for the delta re-solve engine.
//
// ConstrainContext lays the constraint list out in contiguous brackets:
// the prepare region (global pinning, library signatures, prelude
// seeds), one signature fragment per SCC, one merged body fragment per
// SCC, and the global-initializer region at the end. FragmentSpans
// labels those brackets as constraint.FragmentSpan values for
// constraint.Session.
//
// Each span is keyed by a content hash of its constraints — terms,
// masks, and provenance, so variable ids are part of the address. That
// makes the Session contract ("same key ⇒ byte-identical content,
// variable ids included") hold by construction: an edited function
// changes its own fragment's key, and because later fragments allocate
// their variables after it, any shift in variable numbering changes
// their keys too (suffix invalidation). An append-or-edit-at-the-end
// workload — the -watch loop's common case — therefore reuses every
// fragment before the edit.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/constraint"
)

// SolveSession is the Solve stage routed through a retained delta
// session: when this run's mode brackets fragments, the session diffs
// them against its previous call and re-solves only the dirty region
// (or falls back to a cold solve — the result is identical either
// way). A nil session, or a mode without fragment spans, solves cold.
func (a *Analysis) SolveSession(ctx context.Context, ss *constraint.Session) []*constraint.Unsat {
	if ss == nil {
		return a.sys.SolveContext(ctx)
	}
	spans := a.FragmentSpans()
	if spans == nil {
		return a.sys.SolveContext(ctx)
	}
	return ss.SolveContext(ctx, a.sys, spans)
}

// FragmentSpans labels the constraint list of the last Constrain as
// content-addressed fragments, or nil when the mode does not bracket
// fragments (polymorphic recursion re-analyzes bodies iteratively).
// Valid after Constrain and before any further constraint generation.
func (a *Analysis) FragmentSpans() []constraint.FragmentSpan {
	if a.opts.PolyRec || !a.prepared {
		return nil
	}
	all := a.sys.Constraints()
	var spans []constraint.FragmentSpan
	at := 0
	cut := func(tag string, end int) {
		spans = append(spans, constraint.FragmentSpan{
			Key:   contentKey(tag, all[at:end]),
			Start: at,
			End:   end,
		})
		at = end
	}
	if len(a.sccs) > 0 {
		cut("pre", a.sccs[0].sigCons[0])
		for _, scc := range a.sccs {
			cut("sig", scc.sigCons[1])
		}
		for _, scc := range a.sccs {
			cut("body", scc.bodyCons[1])
		}
	}
	cut("glob", len(all))
	return spans
}

// FragmentKey hashes one fragment's constraints into a span key. It is
// exported for other front ends (internal/gofront): every engine that
// brackets fragments for constraint.Session must satisfy the same "same
// key ⇒ byte-identical content, variable ids included" contract, so
// they all share one hash.
func FragmentKey(tag string, cons []constraint.Constraint) string {
	return contentKey(tag, cons)
}

// contentKey hashes one fragment's constraints into its span key.
func contentKey(tag string, cons []constraint.Constraint) string {
	h := sha256.New()
	var buf [8]byte
	word := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	term := func(t constraint.Term) {
		if t.IsVar() {
			word(1)
			word(uint64(t.Var()))
		} else {
			word(0)
			word(uint64(t.Const()))
		}
	}
	for i := range cons {
		c := &cons[i]
		term(c.L)
		term(c.R)
		word(uint64(c.Mask))
		word(uint64(len(c.Why.Pos)))
		h.Write([]byte(c.Why.Pos))
		h.Write([]byte(c.Why.Msg))
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("%s:%x", tag, sum[:12])
}
