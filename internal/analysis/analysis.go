// Package analysis is the pluggable qualifier-analysis registry: the
// repository's concrete form of the paper's central claim that the type
// system is parameterized by an arbitrary lattice of type qualifiers
// (Definitions 1–2 of "A Theory of Type Qualifiers", PLDI 1999).
//
// An Analysis value describes one qualifier analysis: the qualifier it
// contributes to the product lattice, the per-construct hooks the C
// front end invokes while generating constraints (declaration seeding,
// the Assign' write rule, the conservative library rule), and the
// annotation vocabulary a prelude file may use to declare library
// seeds and sinks. Analyses are registered by name; a Suite binds a
// chosen set of them to one shared product lattice so they all run in a
// single constraint pass, separated by the per-component masks the
// solver already supports.
//
// Four instances ship with the registry: "const" (the paper's Section
// 4 const inference, a positive qualifier), "taint" (tainted ⊑
// untainted, a negative qualifier whose seeds and sinks come entirely
// from a prelude file — e.g. getenv returns tainted, the printf format
// argument must be untainted), "unique" (unique ⊑ shared with an
// escape/recovery rule at call boundaries; see unique.go) and
// "fdstate" (an open/closed resource checker; see fdstate.go).
package analysis

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cfront"
	"repro/internal/constraint"
	"repro/internal/qual"
)

// AnnKind says which side of the subtype relation a prelude annotation
// constrains.
type AnnKind int

// Annotation kinds.
const (
	// Seed lower-bounds the annotated position: the pinned qualifier
	// value flows from it (e.g. "getenv returns tainted").
	Seed AnnKind = iota
	// Sink upper-bounds the annotated position: everything flowing into
	// it must fit under the pinned value (e.g. "the printf format
	// argument must be untainted").
	Sink
	// Borrow emits no constraint at all; its entire effect is that the
	// prelude entry covers the function, suppressing the analysis's
	// conservative LibRef rule for the call. It is the recovery rule at
	// call boundaries (Giannini et al.): a borrowed position is used
	// for the duration of the call and handed back unchanged.
	Borrow
)

func (k AnnKind) String() string {
	switch k {
	case Seed:
		return "seed"
	case Sink:
		return "sink"
	case Borrow:
		return "borrow"
	default:
		return fmt.Sprintf("AnnKind(%d)", int(k))
	}
}

// Annotation is one word of an analysis's prelude vocabulary. The
// lattice element it pins is derived from the analysis's qualifier:
// Present selects the value with the qualifier present, ¬Present the
// value with it absent.
type Annotation struct {
	Kind    AnnKind
	Present bool
	Doc     string
}

// LibUse describes one use of a library (undefined) function that an
// analysis's conservative rule may want to constrain.
type LibUse struct {
	// Fn is the function name.
	Fn string
	// Pos is the declaration position (prototype rule) or the argument
	// position (implicit-declaration call sites).
	Pos string
	// DeclaredConst reports whether the reference was declared const in
	// the prototype.
	DeclaredConst bool
	// Implicit marks a call site of an implicitly declared function.
	Implicit bool
}

// Hooks are the per-construct extension points of the C constraint
// generator. A nil hook means the analysis has no rule for that
// construct. Hooks must be pure constraint emitters: they may only add
// constraints to the supplied system (workers run them concurrently on
// private systems).
type Hooks struct {
	// DeclQual seeds a freshly created reference from source-declared C
	// qualifiers (e.g. const on a declaration level).
	DeclQual func(sys *constraint.System, b *Binding, q constraint.Term, quals cfront.Quals)
	// Write is the paper's Assign' rule: the target reference (and any
	// guarding enclosing qualifiers, e.g. the struct object of a member
	// write) is written through.
	Write func(sys *constraint.System, b *Binding, target constraint.Term, guards []constraint.Term, why constraint.Reason)
	// LibRef is the conservative rule for one reference level of a
	// library function's parameter or argument, applied only when no
	// prelude entry covers the function for this analysis.
	LibRef func(sys *constraint.System, b *Binding, use LibUse, q constraint.Term)
	// Return is applied to every value returned from a function defined
	// in the analyzed corpus (e.g. fd-state upper-bounds returned
	// handles away from closed, so a may-closed descriptor escaping to
	// the caller is flagged at the return site).
	Return func(sys *constraint.System, b *Binding, ret constraint.Term, why constraint.Reason)
}

// Analysis describes one registered qualifier analysis.
type Analysis struct {
	// Name is the registry key, e.g. "const" or "taint".
	Name string
	// Qual is the qualifier the analysis contributes to the product
	// lattice.
	Qual qual.Qualifier
	// Doc is a one-line description for `cqual -analyses`.
	Doc string
	// WantsPrelude marks analyses whose seeds and sinks come from a
	// prelude file; running them without one is legal but finds nothing.
	WantsPrelude bool
	// Annotations is the prelude vocabulary, keyed by annotation name.
	Annotations map[string]Annotation
	// Hooks are the per-construct constraint rules.
	Hooks Hooks
}

// AnnotationNames returns the vocabulary in sorted order.
func (a *Analysis) AnnotationNames() []string {
	names := make([]string, 0, len(a.Annotations))
	for n := range a.Annotations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Analysis{}
)

// Register adds an analysis to the registry. It panics on an empty or
// duplicate name — registration is package-init-time configuration, not
// runtime input.
func Register(a *Analysis) {
	regMu.Lock()
	defer regMu.Unlock()
	if a.Name == "" {
		panic("analysis: Register with empty name")
	}
	if _, dup := registry[a.Name]; dup {
		panic("analysis: duplicate registration of " + a.Name)
	}
	registry[a.Name] = a
}

// Lookup returns the registered analysis of that name.
func Lookup(name string) (*Analysis, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := registry[name]
	return a, ok
}

// Names returns the registered analysis names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Binding is an Analysis bound to a concrete product lattice: its
// component mask, the two values of its qualifier as mask-restricted
// lattice elements, and the prelude attached to it (if any). Bindings
// are immutable after Suite construction and safe for concurrent use.
type Binding struct {
	A   *Analysis
	Set *qual.Set
	// Mask selects this analysis's component of the product lattice.
	Mask qual.Elem
	// Present/Absent are the component values with the qualifier
	// present resp. absent, restricted to Mask.
	Present, Absent qual.Elem

	prelude *Prelude
}

// HasPrelude reports whether a prelude is attached.
func (b *Binding) HasPrelude() bool { return b.prelude != nil }

// Entry returns the prelude entry for a library function, if any.
func (b *Binding) Entry(fn string) (*Entry, bool) {
	if b.prelude == nil {
		return nil, false
	}
	e, ok := b.prelude.Entries[fn]
	return e, ok
}

// Apply adds the constraint an annotation denotes on term t: Seed
// annotations lower-bound it with the pinned value, Sink annotations
// upper-bound it, Borrow annotations add nothing (covering the entry
// is their whole effect). Names outside the vocabulary are a no-op
// (the prelude parser already rejects them; Apply stays total).
func (b *Binding) Apply(sys *constraint.System, name string, t constraint.Term, why constraint.Reason) {
	ann, ok := b.A.Annotations[name]
	if !ok {
		return
	}
	val := b.Absent
	if ann.Present {
		val = b.Present
	}
	switch ann.Kind {
	case Seed:
		if val&b.Mask == 0 {
			return // lower bound ⊥ on this component: trivial
		}
		sys.AddMasked(constraint.C(val), t, b.Mask, why)
	case Sink:
		if val&b.Mask == b.Mask {
			return // upper bound ⊤ on this component: trivial
		}
		sys.AddMasked(t, constraint.C(val|^b.Mask), b.Mask, why)
	}
}

// annVerb phrases an annotation for provenance messages: sinks are
// obligations, seeds are facts, borrows are neither.
func annVerb(k AnnKind) string {
	switch k {
	case Sink:
		return "must be"
	case Borrow:
		return "is only"
	default:
		return "is"
	}
}

// ApplyParam applies the prelude annotation for argument i (0-based) of
// a call to the entry's function; pos is the argument's source
// position. Unannotated ("_") and variadic-extra arguments are left
// unconstrained.
func (b *Binding) ApplyParam(sys *constraint.System, ent *Entry, i int, t constraint.Term, pos string) {
	name := ent.Param(i)
	if name == "" || name == Wildcard {
		return
	}
	ann, ok := b.A.Annotations[name]
	if !ok {
		return
	}
	why := constraint.Reason{
		Pos: pos,
		Msg: fmt.Sprintf("argument %d of %q %s %s (prelude %s)", i+1, ent.Func, annVerb(ann.Kind), name, ent.Pos),
	}
	b.Apply(sys, name, t, why)
}

// ApplyRecv applies the entry's receiver annotation (`recv: ann`, Go
// method entries) to the receiver value at a call site; pos is the
// call's source position. Entries without one are left unconstrained.
func (b *Binding) ApplyRecv(sys *constraint.System, ent *Entry, t constraint.Term, pos string) {
	name := ent.Recv
	if name == "" || name == Wildcard {
		return
	}
	ann, ok := b.A.Annotations[name]
	if !ok {
		return
	}
	why := constraint.Reason{
		Pos: pos,
		Msg: fmt.Sprintf("receiver of %q %s %s (prelude %s)", ent.Func, annVerb(ann.Kind), name, ent.Pos),
	}
	b.Apply(sys, name, t, why)
}

// ApplyResult applies the entry's result annotation to the shared
// return type of the library function's signature.
func (b *Binding) ApplyResult(sys *constraint.System, ent *Entry, t constraint.Term) {
	name := ent.Result
	if name == "" || name == Wildcard {
		return
	}
	ann, ok := b.A.Annotations[name]
	if !ok {
		return
	}
	why := constraint.Reason{
		Pos: ent.Pos,
		Msg: fmt.Sprintf("result of %q %s %s (prelude)", ent.Func, annVerb(ann.Kind), name),
	}
	b.Apply(sys, name, t, why)
}

// Suite is a set of analyses bound to one shared product lattice, ready
// to run in a single constraint pass. Suites are immutable and safe for
// concurrent use.
type Suite struct {
	set      *qual.Set
	bindings []*Binding
	byName   map[string]*Binding
	names    []string
	fp       string
}

// NewSuite binds the named analyses (nil or empty selects the classic
// const inference) to a fresh product lattice and attaches the parsed
// preludes to their target analyses. It fails on unknown or duplicate
// analysis names, preludes targeting analyses outside the suite, and
// duplicate prelude entries for one function of one analysis.
func NewSuite(names []string, preludes []*Prelude) (*Suite, error) {
	if len(names) == 0 {
		names = []string{"const"}
	}
	s := &Suite{byName: make(map[string]*Binding, len(names))}
	var quals []qual.Qualifier
	var as []*Analysis
	seen := map[string]bool{}
	for _, n := range names {
		a, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analysis %q (registered: %s)", n, strings.Join(Names(), ", "))
		}
		if seen[n] {
			return nil, fmt.Errorf("analysis: analysis %q selected twice", n)
		}
		seen[n] = true
		as = append(as, a)
		quals = append(quals, a.Qual)
		s.names = append(s.names, n)
	}
	set, err := qual.NewSet(quals...)
	if err != nil {
		return nil, err
	}
	s.set = set
	for _, a := range as {
		mask := set.MustMask(a.Qual.Name)
		present, err := set.With(set.Bottom(), a.Qual.Name)
		if err != nil {
			return nil, err
		}
		absent, err := set.Without(set.Bottom(), a.Qual.Name)
		if err != nil {
			return nil, err
		}
		b := &Binding{
			A: a, Set: set, Mask: mask,
			Present: present & mask, Absent: absent & mask,
		}
		s.bindings = append(s.bindings, b)
		s.byName[a.Name] = b
	}
	for _, p := range preludes {
		b := s.byName[p.Analysis]
		if b == nil {
			return nil, fmt.Errorf("analysis: prelude %s targets analysis %q, which is not enabled (enabled: %s)",
				p.Path, p.Analysis, strings.Join(s.names, ", "))
		}
		if b.prelude == nil {
			b.prelude = p
			continue
		}
		merged, err := b.prelude.Merge(p)
		if err != nil {
			return nil, err
		}
		b.prelude = merged
	}
	s.fp = s.computeFingerprint()
	return s, nil
}

// Default is the classic single-analysis const suite.
func Default() *Suite {
	s, err := NewSuite(nil, nil)
	if err != nil {
		panic(err) // const is always registered
	}
	return s
}

// Set returns the shared product lattice.
func (s *Suite) Set() *qual.Set { return s.set }

// Names returns the analyses in suite order.
func (s *Suite) Names() []string { return append([]string(nil), s.names...) }

// Bindings returns the bound analyses in suite order; the slice must
// not be modified.
func (s *Suite) Bindings() []*Binding { return s.bindings }

// Binding returns the named binding, or nil.
func (s *Suite) Binding(name string) *Binding { return s.byName[name] }

// Owner names the analysis owning the lowest lattice component set in
// bits — the analysis a conflict on those bits belongs to. Bindings
// contribute one qualifier each, in suite order, so component i belongs
// to binding i.
func (s *Suite) Owner(bits qual.Elem) string {
	for i := range s.bindings {
		if bits&(qual.Elem(1)<<uint(i)) != 0 {
			return s.bindings[i].A.Name
		}
	}
	return ""
}

// Fingerprint is a stable content hash of the suite: analysis names and
// qualifier definitions plus every attached prelude's path and text.
// Caches key on it so results derived under different analysis sets or
// prelude contents never alias.
func (s *Suite) Fingerprint() string { return s.fp }

func (s *Suite) computeFingerprint() string {
	h := sha256.New()
	for i, b := range s.bindings {
		fmt.Fprintf(h, "a:%d:%s,%s,%d;", i, b.A.Name, b.A.Qual.Name, int(b.A.Qual.Sign))
		if b.prelude != nil {
			fmt.Fprintf(h, "p:%d:%s:%x;", len(b.prelude.Path), b.prelude.Path, b.prelude.TextHash)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
