package analysis

import (
	"fmt"

	"repro/internal/cfront"
	"repro/internal/constraint"
	"repro/internal/qual"
)

// The first two built-in analyses (unique and fdstate live in their
// own files). const is the paper's Section 4 experiment; taint is the
// second instance proving the framework claim: same engine, different
// lattice orientation, seeds and sinks supplied by a prelude file
// instead of source syntax.
func init() {
	Register(&Analysis{
		Name: "const",
		Qual: qual.Qualifier{Name: "const", Sign: qual.Positive},
		Doc:  "const inference: find references that are never written through",
		Annotations: map[string]Annotation{
			"const": {Kind: Seed, Present: true, Doc: "the function does not write through this reference"},
		},
		Hooks: Hooks{
			DeclQual: func(sys *constraint.System, b *Binding, q constraint.Term, quals cfront.Quals) {
				if !quals.Const {
					return
				}
				sys.AddMasked(constraint.C(b.Present), q, b.Mask,
					constraint.Reason{Pos: quals.ConstPos.String(), Msg: "declared const"})
			},
			Write: func(sys *constraint.System, b *Binding, target constraint.Term, guards []constraint.Term, why constraint.Reason) {
				// Assign': a written-through reference, and every qualifier
				// guarding access to it, cannot be const.
				bound := constraint.C(b.Absent | ^b.Mask)
				sys.AddMasked(target, bound, b.Mask, why)
				for _, g := range guards {
					sys.AddMasked(g, bound, b.Mask, why)
				}
			},
			LibRef: func(sys *constraint.System, b *Binding, use LibUse, q constraint.Term) {
				if use.DeclaredConst {
					return
				}
				msg := fmt.Sprintf("library function %q may write through its parameter", use.Fn)
				if use.Implicit {
					msg = fmt.Sprintf("argument to undeclared function %q", use.Fn)
				}
				sys.AddMasked(q, constraint.C(b.Absent|^b.Mask), b.Mask,
					constraint.Reason{Pos: use.Pos, Msg: msg})
			},
		},
	})

	Register(&Analysis{
		Name:         "taint",
		Qual:         qual.Qualifier{Name: "untainted", Sign: qual.Negative, NegName: "tainted"},
		Doc:          "taint tracking: untrusted library data must not reach trusted sinks",
		WantsPrelude: true,
		Annotations: map[string]Annotation{
			"tainted":   {Kind: Seed, Present: false, Doc: "the position produces untrusted data"},
			"untainted": {Kind: Sink, Present: true, Doc: "the position accepts only trusted data"},
		},
		// No per-construct hooks: taint has no source-level qualifier
		// syntax and no conservative library rule; everything flows from
		// the prelude's seeds into the prelude's sinks through the
		// ordinary subtyping constraints.
	})
}
