package analysis

import (
	"strings"
	"testing"
)

func TestParsePrelude(t *testing.T) {
	text := `# taint prelude
analysis taint

getenv(_) -> tainted
fgets(tainted, _, _) -> tainted
printf(untainted, ...)   # format sink
system(untainted)
`
	p, err := ParsePrelude("taint.q", text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Analysis != "taint" {
		t.Errorf("Analysis = %q", p.Analysis)
	}
	if want := []string{"getenv", "fgets", "printf", "system"}; strings.Join(p.Funcs, ",") != strings.Join(want, ",") {
		t.Errorf("Funcs = %v, want declaration order %v", p.Funcs, want)
	}

	ge := p.Entries["getenv"]
	if len(ge.Params) != 1 || ge.Params[0] != Wildcard || ge.Result != "tainted" || ge.Variadic {
		t.Errorf("getenv entry = %+v", ge)
	}
	if ge.Pos != "taint.q:4" {
		t.Errorf("getenv Pos = %q", ge.Pos)
	}

	fg := p.Entries["fgets"]
	if len(fg.Params) != 3 || fg.Params[0] != "tainted" || fg.Result != "tainted" {
		t.Errorf("fgets entry = %+v", fg)
	}

	pf := p.Entries["printf"]
	if !pf.Variadic || len(pf.Params) != 1 || pf.Params[0] != "untainted" || pf.Result != "" {
		t.Errorf("printf entry = %+v", pf)
	}
	// Variadic extras and out-of-range positions are unconstrained.
	if pf.Param(0) != "untainted" || pf.Param(1) != "" || pf.Param(-1) != "" {
		t.Error("Param indexing broken")
	}
}

// TestParsePreludeMixedNames: one prelude may mix plain C names with
// the Go front end's dotted package and method names — the parser
// treats a name as opaque, so "close" and "os.File.Close" coexist and
// receiver annotations parse alongside positional ones.
func TestParsePreludeMixedNames(t *testing.T) {
	text := `analysis fdstate
open(_, _) -> fresh
close(closed)
os.Open(_) -> fresh
os.File.Close(recv: closed)
os.File.Read(recv: open, _)
`
	p, err := ParsePrelude("fd.q", text)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"open", "close", "os.Open", "os.File.Close", "os.File.Read"}
	if strings.Join(p.Funcs, ",") != strings.Join(want, ",") {
		t.Errorf("Funcs = %v, want %v", p.Funcs, want)
	}

	cl := p.Entries["close"]
	if cl.Recv != "" || len(cl.Params) != 1 || cl.Params[0] != "closed" {
		t.Errorf("close entry = %+v", cl)
	}
	mc := p.Entries["os.File.Close"]
	if mc.Recv != "closed" || len(mc.Params) != 0 {
		t.Errorf("os.File.Close entry = %+v (recv annotation must not count as a parameter)", mc)
	}
	mr := p.Entries["os.File.Read"]
	if mr.Recv != "open" || len(mr.Params) != 1 || mr.Params[0] != Wildcard {
		t.Errorf("os.File.Read entry = %+v", mr)
	}
	oo := p.Entries["os.Open"]
	if oo.Recv != "" || oo.Result != "fresh" {
		t.Errorf("os.Open entry = %+v", oo)
	}
}

func TestParsePreludeErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"empty", "", `empty prelude`},
		{"comment only", "# nothing\n", `empty prelude`},
		{"entry before header", "getenv(_) -> tainted\n", `p.q:1: missing "analysis`},
		{"unknown analysis", "analysis smell\n", `p.q:1: unknown analysis "smell" (registered:`},
		{"duplicate header", "analysis taint\nanalysis taint\n", `p.q:2: duplicate analysis header`},
		{"malformed header", "analysis ta int\n", `p.q:1: malformed analysis header`},
		{"missing parens", "analysis taint\ngetenv\n", `p.q:2: malformed entry`},
		{"missing close", "analysis taint\ngetenv(_ -> tainted\n", `p.q:2: entry for "getenv" is missing ')'`},
		{"bad fn name", "analysis taint\n2fn(_)\n", `p.q:2: malformed function name`},
		{"unknown annotation", "analysis taint\ngetenv(_) -> poison\n",
			`p.q:2: unknown annotation "poison" in entry for "getenv" (analysis "taint" accepts: tainted, untainted)`},
		{"mid dots", "analysis taint\nprintf(..., untainted)\n", `"..." must be the last parameter`},
		{"trailing junk", "analysis taint\ngetenv(_) tainted\n", `unexpected trailing`},
		{"duplicate entry", "analysis taint\ngetenv(_)\ngetenv(_)\n", `p.q:3: duplicate entry for "getenv" (previous at p.q:2)`},
		{"recv not first", "analysis fdstate\nos.File.Read(_, recv: open)\n",
			`"recv:" must be the first parameter`},
		{"recv unknown ann", "analysis fdstate\nos.File.Close(recv: sealed)\n",
			`unknown annotation "sealed"`},
		{"recv empty", "analysis fdstate\nos.File.Close(recv:)\n", `p.q:2: malformed annotation ""`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePrelude("p.q", c.text)
			if err == nil {
				t.Fatalf("ParsePrelude(%q) succeeded", c.text)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestPreludeMerge(t *testing.T) {
	p1, err := ParsePrelude("a.q", "analysis taint\ngetenv(_) -> tainted\n")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePrelude("b.q", "analysis taint\nsystem(untainted)\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p1.Merge(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 2 || m.Path != "a.q,b.q" {
		t.Errorf("merged = %+v", m)
	}
	if _, err := p1.Merge(p1); err == nil || !strings.Contains(err.Error(), "duplicate prelude entry") {
		t.Errorf("self-merge error = %v", err)
	}
}

// FuzzParsePrelude: the parser must never panic and must uphold its
// invariants on every accepted input — a known target analysis, verified
// annotation names, and positions inside the file.
func FuzzParsePrelude(f *testing.F) {
	f.Add("analysis taint\ngetenv(_) -> tainted\nprintf(untainted, ...)\n")
	f.Add("analysis const\nmemcpy(const, const)\n")
	f.Add("# only a comment")
	f.Add("analysis taint\n\xff\xfe(\x00)\n")
	f.Add("analysis taint\nf(tainted, ..., untainted)\n")
	f.Add("analysis unique\nmake_buffer(_) -> fresh\nregister_buffer(aliased)\nbuffer_len(borrowed)\nfree_buffer(owned)\n")
	f.Add("analysis fdstate\nopen(_, _) -> fresh\nclose(closed)\nread(open, _, _)\n")
	f.Add("analysis fdstate\nos.Open(_) -> fresh\nos.File.Close(recv: closed)\nos.File.Read(recv: open, _)\n")
	f.Add("analysis fdstate\nos.File.Read(_, recv: open)\n")
	f.Add("analysis unique\nf(recv: borrowed, ...)\ng(recv:aliased)\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParsePrelude("f.q", text)
		if err != nil {
			return
		}
		a, ok := Lookup(p.Analysis)
		if !ok {
			t.Fatalf("accepted prelude for unregistered analysis %q", p.Analysis)
		}
		if len(p.Funcs) != len(p.Entries) {
			t.Fatalf("Funcs/Entries out of sync: %d vs %d", len(p.Funcs), len(p.Entries))
		}
		for _, fn := range p.Funcs {
			e := p.Entries[fn]
			if e == nil || e.Func != fn {
				t.Fatalf("entry for %q missing or mislabeled", fn)
			}
			anns := append(append([]string(nil), e.Params...), e.Result, e.Recv)
			for _, ann := range anns {
				if ann == "" || ann == Wildcard {
					continue
				}
				if _, ok := a.Annotations[ann]; !ok {
					t.Fatalf("accepted unknown annotation %q", ann)
				}
			}
			if !strings.HasPrefix(e.Pos, "f.q:") {
				t.Fatalf("entry Pos %q not in file", e.Pos)
			}
		}
	})
}
