package analysis

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/qual"
)

// The uniqueness/borrowed analysis: unique ⊑ shared, after Giannini,
// Servetto and Zucca, "Flexible recovery of uniqueness and
// immutability". unique is the bottom of its component (a negative
// qualifier, like untainted): a unique reference may be used where a
// shared one is expected, never the other way around. Mutation is the
// capability uniqueness protects — the Write hook demands every
// written-through reference (and its guards) still be unique, so a
// value that escaped into shared state and is then mutated is flagged
// as an aliased mutation with a flow trace through the escape site.
//
// Call boundaries are where uniqueness is lost and recovered:
//
//   - The conservative escape rule (LibRef) assumes an un-preluded
//     library callee retains an alias of every reference it receives,
//     seeding shared. A C parameter declared const is exempt — a
//     read-only borrow cannot retain a mutable alias.
//   - A prelude entry overrides that per position: "aliased" keeps the
//     escape, "owned" demands a unique value be handed over, and
//     "borrowed" (the Borrow kind) is the recovery rule — the callee
//     only uses the value for the duration of the call, so the caller
//     keeps its uniqueness.
func init() {
	Register(&Analysis{
		Name:         "unique",
		Qual:         qual.Qualifier{Name: "unique", Sign: qual.Negative, NegName: "shared"},
		Doc:          "uniqueness: aliased values must not be mutated or consumed as unique",
		WantsPrelude: true,
		Annotations: map[string]Annotation{
			"fresh":    {Kind: Seed, Present: true, Doc: "the position produces a freshly allocated, unaliased value"},
			"aliased":  {Kind: Seed, Present: false, Doc: "the callee retains an alias; the value is shared from here on"},
			"owned":    {Kind: Sink, Present: true, Doc: "the callee consumes the value; only unique values may flow here"},
			"borrowed": {Kind: Borrow, Doc: "the callee uses the value only for the call (recovery: no escape)"},
		},
		Hooks: Hooks{
			Write: func(sys *constraint.System, b *Binding, target constraint.Term, guards []constraint.Term, why constraint.Reason) {
				// Only unique state is mutable: a write through a
				// reference (or under a guarding qualifier) that may be
				// shared is an aliased mutation.
				bound := constraint.C(b.Present | ^b.Mask)
				sys.AddMasked(target, bound, b.Mask, why)
				for _, g := range guards {
					sys.AddMasked(g, bound, b.Mask, why)
				}
			},
			LibRef: func(sys *constraint.System, b *Binding, use LibUse, q constraint.Term) {
				if use.DeclaredConst {
					return // const parameter: a read-only borrow cannot escape
				}
				msg := fmt.Sprintf("library function %q may retain an alias of its parameter", use.Fn)
				if use.Implicit {
					msg = fmt.Sprintf("argument to undeclared function %q may escape", use.Fn)
				}
				sys.AddMasked(constraint.C(b.Absent), q, b.Mask,
					constraint.Reason{Pos: use.Pos, Msg: msg})
			},
		},
	})
}
