// Prelude files declare the library-level seeds and sinks of an
// analysis: qualifier signatures for functions whose bodies the checker
// never sees. The grammar is line-oriented:
//
//	# comment to end of line
//	analysis <name>                 # exactly one, before any entry
//	fn(ann, _, ...) [-> ann]        # one entry per line
//
// Each parameter position carries an annotation name from the target
// analysis's vocabulary or the wildcard "_" (unconstrained); a trailing
// "..." allows extra, unconstrained arguments. The optional "-> ann"
// annotates the result. For the taint analysis, for example:
//
//	analysis taint
//	getenv(_) -> tainted            # environment data is untrusted
//	printf(untainted, ...)          # the format argument is a sink
//
// Annotation names are validated against the registered analysis at
// parse time, so a typo fails at startup rather than silently checking
// nothing.
//
// Function names may be dotted for the Go front end: "os.Getenv" names
// a package function, "sql.DB.Query" a method (package short name,
// receiver type with any pointer stripped, method name). A method
// entry may annotate its receiver with a "recv:" prefix in the first
// parameter position:
//
//	analysis fdstate
//	os.File.Close(recv: closes)     # closing marks the receiver
//	os.File.Read(recv: live, _)     # reading demands it still open
//
// The remaining positions then count the declared (non-receiver)
// parameters, exactly as for plain functions.
package analysis

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// Wildcard is the prelude spelling for "no annotation here".
const Wildcard = "_"

// Entry is one library-function signature from a prelude file.
type Entry struct {
	// Func is the function name.
	Func string
	// Params holds one annotation name (or Wildcard) per declared
	// parameter position.
	Params []string
	// Variadic allows extra arguments beyond Params, unconstrained.
	Variadic bool
	// Recv is the receiver annotation of a Go method entry ("recv: ann"
	// in the first parameter position), or empty.
	Recv string
	// Result is the result annotation, or empty.
	Result string
	// Pos is "path:line" of the entry, for provenance in diagnostics.
	Pos string
}

// Param returns the annotation for 0-based argument i; extra variadic
// and out-of-range arguments are unconstrained.
func (e *Entry) Param(i int) string {
	if i >= 0 && i < len(e.Params) {
		return e.Params[i]
	}
	return ""
}

// Prelude is a parsed prelude file, bound to one analysis.
type Prelude struct {
	// Analysis is the target analysis name from the header line.
	Analysis string
	// Path is the file path the prelude was parsed from (diagnostics
	// and cache keys; merged preludes join their paths with ",").
	Path string
	// Entries maps function name to its signature.
	Entries map[string]*Entry
	// Funcs lists the function names in declaration order.
	Funcs []string
	// TextHash fingerprints the raw prelude text for cache keys.
	TextHash [sha256.Size]byte
}

// Merge combines two preludes for the same analysis; duplicate function
// entries are an error.
func (p *Prelude) Merge(q *Prelude) (*Prelude, error) {
	if p.Analysis != q.Analysis {
		return nil, fmt.Errorf("analysis: cannot merge preludes for %q and %q", p.Analysis, q.Analysis)
	}
	m := &Prelude{
		Analysis: p.Analysis,
		Path:     p.Path + "," + q.Path,
		Entries:  make(map[string]*Entry, len(p.Entries)+len(q.Entries)),
		TextHash: sha256.Sum256(append(p.TextHash[:], q.TextHash[:]...)),
	}
	for _, fn := range p.Funcs {
		m.Entries[fn] = p.Entries[fn]
		m.Funcs = append(m.Funcs, fn)
	}
	for _, fn := range q.Funcs {
		if prev, dup := m.Entries[fn]; dup {
			return nil, fmt.Errorf("%s: duplicate prelude entry for %q (previous at %s)", q.Entries[fn].Pos, fn, prev.Pos)
		}
		m.Entries[fn] = q.Entries[fn]
		m.Funcs = append(m.Funcs, fn)
	}
	return m, nil
}

// ParsePrelude parses prelude text read from path. Errors carry
// "path:line:" prefixes.
func ParsePrelude(path, text string) (*Prelude, error) {
	p := &Prelude{
		Path:     path,
		Entries:  make(map[string]*Entry),
		TextHash: sha256.Sum256([]byte(text)),
	}
	var target *Analysis
	for lineno, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		pos := fmt.Sprintf("%s:%d", path, lineno+1)
		if name, ok := cutKeyword(line, "analysis"); ok {
			if target != nil {
				return nil, fmt.Errorf("%s: duplicate analysis header (already %q)", pos, p.Analysis)
			}
			if !isIdent(name) {
				return nil, fmt.Errorf("%s: malformed analysis header %q", pos, line)
			}
			a, known := Lookup(name)
			if !known {
				return nil, fmt.Errorf("%s: unknown analysis %q (registered: %s)", pos, name, strings.Join(Names(), ", "))
			}
			target, p.Analysis = a, name
			continue
		}
		if target == nil {
			return nil, fmt.Errorf(`%s: missing "analysis <name>" header before first entry`, pos)
		}
		ent, err := parseEntry(line, pos, target)
		if err != nil {
			return nil, err
		}
		if prev, dup := p.Entries[ent.Func]; dup {
			return nil, fmt.Errorf("%s: duplicate entry for %q (previous at %s)", pos, ent.Func, prev.Pos)
		}
		p.Entries[ent.Func] = ent
		p.Funcs = append(p.Funcs, ent.Func)
	}
	if target == nil {
		return nil, fmt.Errorf(`%s: empty prelude: missing "analysis <name>" header`, path)
	}
	return p, nil
}

// cutKeyword splits "keyword rest" lines, requiring whitespace after the
// keyword.
func cutKeyword(line, kw string) (rest string, ok bool) {
	if !strings.HasPrefix(line, kw) {
		return "", false
	}
	rest = line[len(kw):]
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// parseEntry parses one `fn(ann, _, ...) [-> ann]` line.
func parseEntry(line, pos string, target *Analysis) (*Entry, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 {
		return nil, fmt.Errorf("%s: malformed entry %q (expected fn(...))", pos, line)
	}
	fn := strings.TrimSpace(line[:open])
	if !isFuncName(fn) {
		return nil, fmt.Errorf("%s: malformed function name %q", pos, fn)
	}
	closeIdx := strings.IndexByte(line, ')')
	if closeIdx < open {
		return nil, fmt.Errorf("%s: entry for %q is missing ')'", pos, fn)
	}
	ent := &Entry{Func: fn, Pos: pos}
	args := strings.TrimSpace(line[open+1 : closeIdx])
	if args != "" {
		fields := strings.Split(args, ",")
		for i, field := range fields {
			ann := strings.TrimSpace(field)
			if ann == "..." {
				if i != len(fields)-1 {
					return nil, fmt.Errorf(`%s: "..." must be the last parameter of %q`, pos, fn)
				}
				ent.Variadic = true
				continue
			}
			if rest, ok := strings.CutPrefix(ann, "recv:"); ok {
				if i != 0 {
					return nil, fmt.Errorf(`%s: "recv:" must be the first parameter of %q`, pos, fn)
				}
				ann = strings.TrimSpace(rest)
				if err := checkAnn(ann, target, pos, fn); err != nil {
					return nil, err
				}
				ent.Recv = ann
				continue
			}
			if err := checkAnn(ann, target, pos, fn); err != nil {
				return nil, err
			}
			ent.Params = append(ent.Params, ann)
		}
	}
	tail := strings.TrimSpace(line[closeIdx+1:])
	if tail != "" {
		res, ok := strings.CutPrefix(tail, "->")
		if !ok {
			return nil, fmt.Errorf("%s: unexpected trailing %q after entry for %q", pos, tail, fn)
		}
		res = strings.TrimSpace(res)
		if err := checkAnn(res, target, pos, fn); err != nil {
			return nil, err
		}
		ent.Result = res
	}
	return ent, nil
}

// checkAnn validates one annotation word against the analysis vocabulary.
func checkAnn(ann string, target *Analysis, pos, fn string) error {
	if ann == Wildcard {
		return nil
	}
	if !isIdent(ann) {
		return fmt.Errorf("%s: malformed annotation %q in entry for %q", pos, ann, fn)
	}
	if _, ok := target.Annotations[ann]; !ok {
		return fmt.Errorf("%s: unknown annotation %q in entry for %q (analysis %q accepts: %s)",
			pos, ann, fn, target.Name, strings.Join(target.AnnotationNames(), ", "))
	}
	return nil
}

// isFuncName accepts prelude function names: C identifiers plus the
// dotted spellings the Go front end looks up ("os.Getenv" for package
// functions, "sql.DB.Query" for methods). Dots must separate non-empty
// identifier segments. Annotation names stay plain identifiers.
func isFuncName(s string) bool {
	if s == "" {
		return false
	}
	for _, seg := range strings.Split(s, ".") {
		if !isIdent(seg) {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
