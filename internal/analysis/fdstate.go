package analysis

import (
	"repro/internal/constraint"
	"repro/internal/qual"
)

// The fd-state analysis: an open/closed resource checker in the style
// of the paper's Section 7 outlook (qualifiers as a poor man's typestate),
// seeded entirely from preludes. closed is a positive qualifier —
// open ⊑ closed — so a handle is "may-closed" as soon as any path
// closes it:
//
//   - "closed" (seed) marks the released position: close(2) for C,
//     (*os.File).Close via a receiver annotation for Go.
//   - "open" (sink) marks positions that demand a still-open handle:
//     read(2)/write(2), (*os.File).Read. A may-closed descriptor
//     reaching one is a use-after-close, with the flow trace running
//     back through the close site.
//   - The Return hook bounds every value returned from a defined
//     function away from closed: a may-closed handle escaping to the
//     caller is flagged at the return site (the caller can no longer
//     use it, and double-close lurks behind it).
//
// The checker is flow-insensitive, like every qualifier analysis here:
// "closed anywhere" means "may be closed everywhere that value flows".
// That is the monotone approximation the product lattice supports in a
// single pass; path-sensitive liveness is flow-sensitive qualifiers
// (the PLDI 2002 follow-up), out of scope for this engine.
func init() {
	Register(&Analysis{
		Name:         "fdstate",
		Qual:         qual.Qualifier{Name: "closed", Sign: qual.Positive, NegName: "open"},
		Doc:          "fd-state: closed file descriptors must not be read, written, or returned",
		WantsPrelude: true,
		Annotations: map[string]Annotation{
			"fresh":  {Kind: Seed, Present: false, Doc: "the position produces a newly opened, live handle"},
			"closed": {Kind: Seed, Present: true, Doc: "the callee releases the handle; it is may-closed from here on"},
			"open":   {Kind: Sink, Present: false, Doc: "the callee requires a handle that is still open"},
		},
		Hooks: Hooks{
			Return: func(sys *constraint.System, b *Binding, ret constraint.Term, why constraint.Reason) {
				// Leak-on-return: a may-closed handle must not escape to
				// the caller as if it were usable.
				sys.AddMasked(ret, constraint.C(b.Absent|^b.Mask), b.Mask, why)
			},
		},
	})
}
