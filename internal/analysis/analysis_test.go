package analysis

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/qual"
)

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{"const", "taint"} {
		a, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin analysis %q not registered", name)
		}
		if a.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, a.Name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if c, _ := Lookup("const"); c.Qual.Sign != qual.Positive {
		t.Error("const is not a positive qualifier")
	}
	tt, _ := Lookup("taint")
	if tt.Qual.Sign != qual.Negative || tt.Qual.NegName != "tainted" {
		t.Errorf("taint qualifier = %+v", tt.Qual)
	}
	if !tt.WantsPrelude {
		t.Error("taint does not want a prelude")
	}
	if got := tt.AnnotationNames(); len(got) != 2 || got[0] != "tainted" || got[1] != "untainted" {
		t.Errorf("taint vocabulary = %v", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, a *Analysis) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%s) did not panic", name)
			}
		}()
		Register(a)
	}
	mustPanic("empty", &Analysis{})
	mustPanic("duplicate", &Analysis{Name: "const"})
}

func TestNewSuiteErrors(t *testing.T) {
	if _, err := NewSuite([]string{"nonsense"}, nil); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown analysis error = %v", err)
	}
	if _, err := NewSuite([]string{"const", "const"}, nil); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate analysis error = %v", err)
	}
	pre, err := ParsePrelude("t.q", "analysis taint\ngetenv(_) -> tainted\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSuite([]string{"const"}, []*Prelude{pre}); err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Errorf("prelude for disabled analysis error = %v", err)
	}
}

func TestDefaultSuite(t *testing.T) {
	s := Default()
	if got := s.Names(); len(got) != 1 || got[0] != "const" {
		t.Errorf("Default().Names() = %v", got)
	}
	if b := s.Binding("const"); b == nil || b.A.Name != "const" {
		t.Errorf("Default const binding = %+v", b)
	}
}

// TestBindingApply checks the lattice orientation of seeds and sinks for
// the negative taint qualifier: a seed introduces the tainted (top)
// component value, a sink upper-bounds with untainted (bottom), and a
// variable carrying both is a conflict.
func TestBindingApply(t *testing.T) {
	suite, err := NewSuite([]string{"taint"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := suite.Binding("taint")
	sys := constraint.NewSystem(suite.Set())
	v := sys.Fresh()
	b.Apply(sys, "tainted", constraint.V(v), constraint.Reason{Msg: "seed"})
	b.Apply(sys, "untainted", constraint.V(v), constraint.Reason{Msg: "sink"})
	unsat := sys.Solve()
	if len(unsat) != 1 {
		t.Fatalf("seed+sink on one var: %d conflicts, want 1", len(unsat))
	}
	if got := unsat[0].Con.Why.Msg; got != "sink" {
		t.Errorf("conflict surfaced at %q, want the sink constraint", got)
	}
	if sys.Lower(v)&b.Mask == 0 {
		t.Error("seed did not raise the taint component of the variable")
	}

	// The untainted seed value is the component bottom, so seeding it is
	// a no-op; likewise a tainted "sink" would be the component top.
	sys2 := constraint.NewSystem(suite.Set())
	w := sys2.Fresh()
	b.Apply(sys2, "untainted", constraint.V(w), constraint.Reason{Msg: "sink"})
	if n := sys2.NumConstraints(); n != 1 {
		t.Errorf("sink emitted %d constraints, want 1", n)
	}
	if got := sys2.Solve(); len(got) != 0 {
		t.Errorf("sink alone conflicts: %v", got)
	}
}

func TestSuiteOwner(t *testing.T) {
	suite, err := NewSuite([]string{"const", "taint"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	constMask := suite.Binding("const").Mask
	taintMask := suite.Binding("taint").Mask
	if constMask == taintMask {
		t.Fatalf("analyses share a component: %x", constMask)
	}
	if got := suite.Owner(constMask); got != "const" {
		t.Errorf("Owner(const component) = %q", got)
	}
	if got := suite.Owner(taintMask); got != "taint" {
		t.Errorf("Owner(taint component) = %q", got)
	}
	if got := suite.Owner(0); got != "" {
		t.Errorf("Owner(0) = %q, want empty", got)
	}
}

// TestFingerprint: the suite fingerprint must separate every input that
// can change analysis results — the analysis set, prelude presence, and
// prelude text — and must be stable for identical inputs.
func TestFingerprint(t *testing.T) {
	mk := func(names []string, preludeText string) string {
		t.Helper()
		var pres []*Prelude
		if preludeText != "" {
			p, err := ParsePrelude("t.q", preludeText)
			if err != nil {
				t.Fatal(err)
			}
			pres = append(pres, p)
		}
		s, err := NewSuite(names, pres)
		if err != nil {
			t.Fatal(err)
		}
		return s.Fingerprint()
	}
	base := mk([]string{"taint"}, "")
	if mk([]string{"taint"}, "") != base {
		t.Error("fingerprint not stable for identical inputs")
	}
	seen := map[string]string{"taint, no prelude": base}
	for label, fp := range map[string]string{
		"const only":      mk([]string{"const"}, ""),
		"const+taint":     mk([]string{"const", "taint"}, ""),
		"taint+prelude":   mk([]string{"taint"}, "analysis taint\ngetenv(_) -> tainted\n"),
		"taint+prelude 2": mk([]string{"taint"}, "analysis taint\nsystem(untainted)\n"),
	} {
		for prev, pfp := range seen {
			if fp == pfp {
				t.Errorf("fingerprint collision between %s and %s", label, prev)
			}
		}
		seen[label] = fp
	}
}
