package experiment

import "testing"

// TestMeasureObs runs the overhead A/B at smoke size: both arms must
// produce latencies, the recording arm must actually have recorded
// (resident traces, journal traffic), and the ratio must be finite.
// The ≤5% acceptance bound is checked by the benchmark run, not here —
// a CI machine under load can't hold a tight latency bound.
func TestMeasureObs(t *testing.T) {
	if testing.Short() {
		t.Skip("spins two HTTP servers")
	}
	res, err := MeasureObs(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmOn <= 0 || res.WarmOff <= 0 {
		t.Fatalf("non-positive medians: on=%v off=%v", res.WarmOn, res.WarmOff)
	}
	if res.Retained == 0 {
		t.Error("recording arm retained no traces; the 1-in-K sample alone should retain the first request")
	}
	if res.Events < 0 {
		t.Errorf("events = %d", res.Events)
	}
	if o := res.Overhead(); o < -1 || o > 10 {
		t.Errorf("overhead ratio %v implausible (medians on=%v off=%v)", o, res.WarmOn, res.WarmOff)
	}
}
