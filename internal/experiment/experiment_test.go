package experiment

import (
	"strings"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/constinfer"
)

func smallConfig() benchgen.Config {
	return benchgen.Config{
		Name: "tiny-1.0", Description: "test benchmark",
		TargetLines: 400, Seed: 42,
		ReadersPerGroup: 6, DeclaredConstFrac: 0.5,
		WritersPerGroup: 2, StructFrac: 0.5, FlowFrac: 0.8, MixedFlowFrac: 0.6,
		RecursionFrac: 0.2, IntHelpers: 3,
	}
}

func TestRunProducesConsistentCounters(t *testing.T) {
	res, err := Run(smallConfig(), constinfer.Options{Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines < 300 {
		t.Errorf("lines = %d", res.Lines)
	}
	if !(res.Declared <= res.Mono && res.Mono <= res.Poly && res.Poly <= res.Total) {
		t.Errorf("ordering violated: %d ≤ %d ≤ %d ≤ %d",
			res.Declared, res.Mono, res.Poly, res.Total)
	}
	if res.CompileTime <= 0 || res.MonoTime <= 0 || res.PolyTime <= 0 {
		t.Error("timings not recorded")
	}
	if res.MonoReport == nil || res.PolyReport == nil {
		t.Error("reports not kept")
	}
}

func TestTablesRender(t *testing.T) {
	res, err := Run(smallConfig(), constinfer.Options{Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	rs := []*Result{res}
	t1 := Table1(rs)
	if !strings.Contains(t1, "tiny-1.0") || !strings.Contains(t1, "test benchmark") {
		t.Errorf("Table1:\n%s", t1)
	}
	t2 := Table2(rs)
	for _, col := range []string{"Compile", "Mono", "Poly", "Declared", "Total possible"} {
		if !strings.Contains(t2, col) {
			t.Errorf("Table2 missing %q:\n%s", col, t2)
		}
	}
	f6 := Figure6(rs)
	for _, seg := range []string{"Declared", "Mono", "Poly", "Other", "legend"} {
		if !strings.Contains(f6, seg) {
			t.Errorf("Figure6 missing %q:\n%s", seg, f6)
		}
	}
}

func TestFigure6ZeroTotal(t *testing.T) {
	// Degenerate input must not divide by zero.
	out := Figure6([]*Result{{Config: benchgen.Config{Name: "empty"}}})
	if !strings.Contains(out, "empty") {
		t.Error("missing row")
	}
}

// TestRunSuiteShape runs the full paper suite (a few seconds) and checks
// the qualitative claims of Table 2 hold: ordering, a positive poly gain,
// and poly time within the paper's 3× bound (with slack for CI noise).
func TestRunSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	results, err := RunSuite(constinfer.Options{Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("suite has %d results", len(results))
	}
	for _, r := range results {
		if !(r.Declared <= r.Mono && r.Mono <= r.Poly && r.Poly <= r.Total) {
			t.Errorf("%s: ordering violated: %d/%d/%d/%d",
				r.Config.Name, r.Declared, r.Mono, r.Poly, r.Total)
		}
		if r.Poly <= r.Mono {
			t.Errorf("%s: no polymorphism gain", r.Config.Name)
		}
		gain := float64(r.Poly) / float64(r.Mono)
		if gain > 1.30 {
			t.Errorf("%s: poly gain %.2f outside the paper's band", r.Config.Name, gain)
		}
		if r.PolyTime > 8*r.MonoTime {
			t.Errorf("%s: poly time %v > 8× mono %v", r.Config.Name, r.PolyTime, r.MonoTime)
		}
	}
	// The suite ordering by size is reflected in the totals.
	for i := 1; i < len(results); i++ {
		if results[i].Total < results[i-1].Total/2 {
			t.Errorf("totals wildly non-monotone: %s=%d after %s=%d",
				results[i].Config.Name, results[i].Total,
				results[i-1].Config.Name, results[i-1].Total)
		}
	}
}
