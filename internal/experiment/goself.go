package experiment

// The Go front end's flagship measurement: const inference over this
// repository's own packages — the checker checking itself. The numbers
// land in the go_self block of the BENCH_N.json trajectory next to the
// paper-suite rows.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/constinfer"
	"repro/internal/driver"
	_ "repro/internal/gofront" // registers the "go" front end
)

// GoSelfResult is one self-analysis measurement: corpus size, verdict
// counters, solver load, and the per-stage wall clock (median over the
// measurement rounds).
type GoSelfResult struct {
	Pattern     string
	Files       int
	Functions   int
	Total       int // interesting positions
	Inferred    int // may-const (Go declares none, so all are inference)
	NotConst    int
	Constraints int
	Vars        int
	// FrontEnd covers load, parse, and type check; Constrain and Solve
	// are the shared engine stages; TotalTime is the whole pipeline.
	FrontEnd  time.Duration
	Constrain time.Duration
	Solve     time.Duration
	TotalTime time.Duration
}

// MeasureGoSelf analyzes the packages a go-tool-style pattern names
// with the Go front end, rounds times, and reports the run with the
// median total time.
func MeasureGoSelf(pattern string, rounds int) (*GoSelfResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	type sample struct {
		res   *driver.Result
		total time.Duration
	}
	samples := make([]sample, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		res, err := driver.Run(driver.Config{Lang: "go"}, []driver.Source{{Path: pattern}})
		if err != nil {
			return nil, err
		}
		if res.Report == nil {
			return nil, fmt.Errorf("experiment: go self-analysis of %s failed: %v", pattern, res.Errors())
		}
		samples = append(samples, sample{res: res, total: time.Since(start)})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].total < samples[j].total })
	med := samples[len(samples)/2]
	rep := med.res.Report

	notConst := 0
	for _, p := range rep.Positions {
		if p.Verdict == constinfer.MustNotConst {
			notConst++
		}
	}
	return &GoSelfResult{
		Pattern:     pattern,
		Files:       len(med.res.Program.FileNames()),
		Functions:   rep.Functions,
		Total:       rep.Total,
		Inferred:    rep.Inferred,
		NotConst:    notConst,
		Constraints: rep.Constraints,
		Vars:        rep.Vars,
		FrontEnd:    med.res.Timings.Load + med.res.Timings.Parse,
		Constrain:   med.res.Timings.Build + med.res.Timings.Constrain,
		Solve:       med.res.Timings.Solve,
		TotalTime:   med.total,
	}, nil
}
