package experiment

// Delta re-solve measurement: how much of a cold solve a retained
// constraint.Session saves on a single-function-sized edit. The workload
// is the generated cycle-graph family the solver benchmarks use
// (benchgen.CycleSystem), partitioned into contiguous fragments that
// stand in for per-function constraint spans; each warm round renames
// one fragment's content key, which the session sees as that fragment
// removed and re-added — the shape of one edited function — and
// re-solves only the dirty region.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/benchgen"
	"repro/internal/constraint"
	"repro/internal/qual"
)

// DeltaResult is one warm-vs-cold measurement.
type DeltaResult struct {
	Vars        int           // variables in the generated system
	Constraints int           // constraints in the generated system
	Frags       int           // fragments the constraint list is split into
	ColdSolve   time.Duration // median cold solve over the rounds
	WarmResolve time.Duration // median warm re-solve after a one-fragment edit
	Hits        int           // warm rounds that took the delta path
	Fallbacks   int           // warm rounds that re-solved cold (excludes the first solve)
}

// WarmOverCold is the headline ratio; zero cold time yields zero.
func (r DeltaResult) WarmOverCold() float64 {
	if r.ColdSolve <= 0 {
		return 0
	}
	return r.WarmResolve.Seconds() / r.ColdSolve.Seconds()
}

// deltaSet is the two-component lattice of the solver benchmarks.
func deltaSet() *qual.Set {
	return qual.MustSet(
		qual.Qualifier{Name: "const", Sign: qual.Positive},
		qual.Qualifier{Name: "tainted", Sign: qual.Positive},
	)
}

// deltaConfig is the n-variable cycle-graph workload, matching the
// BenchmarkSolverScaling / BenchmarkRestrictScaling generator settings.
func deltaConfig(n int) benchgen.CycleConfig {
	return benchgen.CycleConfig{
		Vars:       n,
		CycleFrac:  0.5,
		CycleLen:   8,
		CrossEdges: n / 4,
		MaskedFrac: 0.2,
		Seed:       int64(n),
	}
}

// deltaWorkload fixes the measured system: its constraint list, variable
// count, and the fragment partition.
type deltaWorkload struct {
	set      *qual.Set
	cons     []constraint.Constraint
	nv       int
	bounds   []int // fragment i covers cons[bounds[i]:bounds[i+1]]
	editFrag int   // the fragment the warm rounds re-key
}

// newDeltaWorkload generates the system and splits it into fragments of
// roughly fragSize constraints.
func newDeltaWorkload(n, fragSize int) *deltaWorkload {
	set := deltaSet()
	sys, _ := benchgen.CycleSystem(set, deltaConfig(n))
	cons := sys.Constraints()
	w := &deltaWorkload{set: set, cons: cons, nv: sys.NumVars()}
	for at := 0; at < len(cons); at += fragSize {
		w.bounds = append(w.bounds, at)
	}
	w.bounds = append(w.bounds, len(cons))
	w.editFrag = (len(w.bounds) - 1) / 2
	return w
}

// build replays the workload into a fresh system. ver > 0 renames the
// edit fragment's key, which a retained session must treat as that
// fragment removed and re-added.
func (w *deltaWorkload) build(ver int) (*constraint.System, []constraint.FragmentSpan) {
	sys := constraint.NewSystem(w.set)
	for i := 0; i < w.nv; i++ {
		sys.Fresh()
	}
	var spans []constraint.FragmentSpan
	for i := 0; i+1 < len(w.bounds); i++ {
		start := sys.NumConstraints()
		for _, c := range w.cons[w.bounds[i]:w.bounds[i+1]] {
			sys.AddMasked(c.L, c.R, c.Mask, c.Why)
		}
		key := fmt.Sprintf("frag:%d", i)
		if i == w.editFrag && ver > 0 {
			key = fmt.Sprintf("frag:%d@%d", i, ver)
		}
		spans = append(spans, constraint.FragmentSpan{Key: key, Start: start, End: sys.NumConstraints()})
	}
	return sys, spans
}

// MeasureDelta times cold solves against warm session re-solves of the
// n-variable workload over the given number of rounds, reporting the
// medians. Each warm round presents a freshly built system with the edit
// fragment re-keyed; system construction happens outside the timed
// region on both sides, so the ratio compares solve work only.
func MeasureDelta(n, rounds int) DeltaResult {
	if rounds < 1 {
		rounds = 1
	}
	w := newDeltaWorkload(n, 64)
	res := DeltaResult{Vars: w.nv, Constraints: len(w.cons), Frags: len(w.bounds) - 1}

	cold := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		sys, _ := w.build(0)
		start := time.Now()
		if errs := sys.Solve(); errs != nil {
			panic("experiment: delta workload is unsatisfiable")
		}
		cold = append(cold, time.Since(start))
	}

	ss := constraint.NewSession(w.set)
	sys, spans := w.build(0)
	ss.Solve(sys, spans) // first solve is the retained baseline, not a measurement
	warm := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		sys, spans := w.build(r + 1)
		start := time.Now()
		if errs := ss.Solve(sys, spans); errs != nil {
			panic("experiment: delta workload is unsatisfiable")
		}
		warm = append(warm, time.Since(start))
		if d := ss.Delta(); d.Applied {
			res.Hits++
		} else {
			res.Fallbacks++
		}
	}

	res.ColdSolve = median(cold)
	res.WarmResolve = median(warm)
	return res
}

func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}
