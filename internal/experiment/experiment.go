// Package experiment runs the paper's Section 4.4 evaluation end to end:
// generate (or load) a benchmark, parse it ("compile"), run monomorphic
// and polymorphic const inference, and render Table 1, Table 2 and
// Figure 6. Both passes go through the staged internal/driver pipeline;
// the Compile/Mono/Poly columns are the driver's per-stage timings.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/benchgen"
	"repro/internal/constinfer"
	"repro/internal/driver"
	"repro/internal/tables"
)

// Result is one benchmark's measurements: the row data of Tables 1 and 2.
type Result struct {
	Config benchgen.Config
	// Lines is the actual generated line count.
	Lines int
	// CompileTime is the parse time (the paper's "Compile time" column
	// measures the front end).
	CompileTime time.Duration
	// MonoTime and PolyTime are the inference times.
	MonoTime time.Duration
	PolyTime time.Duration
	// Declared, Mono, Poly, Total are the Table 2 counters.
	Declared int
	Mono     int
	Poly     int
	Total    int
	// Reports keep the full classification for drill-down.
	MonoReport *constinfer.Report
	PolyReport *constinfer.Report
}

// Run generates and measures one benchmark. PolyOpts lets callers select
// simplification or polymorphic recursion for the polymorphic pass. The
// monomorphic pass runs the full pipeline (its Parse timing is the
// paper's "Compile time" column); the polymorphic pass reuses the parsed
// files, so its cost is pure inference.
func Run(cfg benchgen.Config, polyOpts constinfer.Options) (*Result, error) {
	src := benchgen.Generate(cfg)
	res := &Result{Config: cfg, Lines: strings.Count(src, "\n")}

	monoRes, err := driver.Run(driver.Config{},
		[]driver.Source{driver.TextSource(cfg.Name+".c", src)})
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", cfg.Name, err)
	}
	if monoRes.Report == nil {
		return nil, fmt.Errorf("experiment %s: parse: %v", cfg.Name, monoRes.Errors()[0].Message)
	}
	mono := monoRes.Report
	if len(mono.Conflicts) > 0 {
		return nil, fmt.Errorf("experiment %s: mono inference found conflicts in a generated (correct) program: %v",
			cfg.Name, mono.Conflicts[0].Error())
	}
	res.CompileTime = monoRes.Timings.Parse
	res.MonoTime = monoRes.Timings.Analysis()

	polyOpts.Poly = true
	polyRes, err := driver.RunFiles(driver.Config{Options: polyOpts}, monoRes.Files)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: poly: %w", cfg.Name, err)
	}
	poly := polyRes.Report
	if len(poly.Conflicts) > 0 {
		return nil, fmt.Errorf("experiment %s: poly inference found conflicts: %v",
			cfg.Name, poly.Conflicts[0].Error())
	}
	res.PolyTime = polyRes.Timings.Analysis()

	res.Declared = mono.Declared
	res.Mono = mono.Inferred
	res.Poly = poly.Inferred
	res.Total = mono.Total
	res.MonoReport = mono
	res.PolyReport = poly
	return res, nil
}

// RunSuite measures every benchmark of the paper suite.
func RunSuite(polyOpts constinfer.Options) ([]*Result, error) {
	var out []*Result
	for _, cfg := range benchgen.PaperSuite() {
		r, err := Run(cfg, polyOpts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Table1 renders the benchmark inventory (paper Table 1).
func Table1(results []*Result) string {
	t := tables.New("Name", "Lines", "Description")
	for _, r := range results {
		t.Row(r.Config.Name, r.Lines, r.Config.Description)
	}
	return "Table 1: Benchmarks for const inference\n" + t.String()
}

// Table2 renders the measurement table (paper Table 2).
func Table2(results []*Result) string {
	t := tables.New("Name", "Compile (s)", "Mono (s)", "Poly (s)",
		"Declared", "Mono", "Poly", "Total possible")
	for _, r := range results {
		t.Row(r.Config.Name,
			seconds(r.CompileTime), seconds(r.MonoTime), seconds(r.PolyTime),
			r.Declared, r.Mono, r.Poly, r.Total)
	}
	return "Table 2: Number of inferred possibly-const positions\n" + t.String()
}

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Figure6 renders the stacked percentage chart (paper Figure 6): for each
// benchmark, the fractions of total-possible consts that are Declared,
// additionally found by Mono, additionally found by Poly, and Other.
func Figure6(results []*Result) string {
	var bars []tables.StackedBar
	for _, r := range results {
		total := float64(r.Total)
		if total == 0 {
			total = 1
		}
		declared := float64(r.Declared) / total
		mono := float64(r.Mono-r.Declared) / total
		poly := float64(r.Poly-r.Mono) / total
		other := 1 - declared - mono - poly
		bars = append(bars, tables.StackedBar{
			Label:    r.Config.Name,
			Segments: []float64{declared, mono, poly, other},
		})
	}
	return tables.Figure(
		"Figure 6: Number of inferred consts for benchmarks (fraction of total possible)",
		[]string{"Declared", "Mono", "Poly", "Other"},
		[]rune{'#', '+', '*', '.'},
		bars, 50)
}
