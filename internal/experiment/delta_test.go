package experiment

import "testing"

// TestMeasureDelta checks the warm-session measurement at a reduced
// size: every warm round must take the delta path, and a one-fragment
// edit must re-solve faster than a cold solve. The headline <20% ratio
// at n=20k is asserted in the committed BENCH_6.json, not here — CI
// machines are too noisy for a tight timing bound in a unit test.
func TestMeasureDelta(t *testing.T) {
	r := MeasureDelta(4000, 5)
	if r.Vars != 4000 || r.Constraints == 0 || r.Frags < 2 {
		t.Fatalf("workload shape: %+v", r)
	}
	if r.Fallbacks != 0 || r.Hits != 5 {
		t.Fatalf("warm rounds should all hit: %+v", r)
	}
	if r.ColdSolve <= 0 || r.WarmResolve <= 0 {
		t.Fatalf("degenerate timings: %+v", r)
	}
	if r.WarmResolve >= r.ColdSolve {
		t.Fatalf("warm re-solve (%v) not faster than cold (%v)", r.WarmResolve, r.ColdSolve)
	}
}
