package experiment

// Flight-recorder overhead measurement: what the always-on recorder
// costs a request on the server's warm path. Two identically configured
// in-process servers — one recording (the shipped default: per-request
// tracer, tail-retention decision, exemplar attachment), one with
// Config.DisableRecorder — serve the same repeated cache-hit request;
// the block reports median per-request latency for both arms and their
// ratio. Cache hits are the right denominator: they are the cheapest
// request the server answers, so the recorder's fixed per-request cost
// shows up at its largest relative size — a ≤5% overhead here bounds
// the overhead everywhere.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
)

// getJSON decodes one GET response body.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ObsResult is the recorder-overhead measurement.
type ObsResult struct {
	Requests int           // timed requests per arm (after warmup)
	Rounds   int           // latency samples the medians are drawn from
	WarmOn   time.Duration // median warm-path request latency, recorder on
	WarmOff  time.Duration // median warm-path request latency, recorder off
	Retained int           // traces resident in the recording arm's ring afterwards
	Events   int           // journal events the recording arm accumulated
}

// Overhead is the headline ratio: recording-on latency over
// recording-off latency, minus one (0.03 = 3% slower). Zero or
// negative off-latency yields zero.
func (r ObsResult) Overhead() float64 {
	if r.WarmOff <= 0 {
		return 0
	}
	return r.WarmOn.Seconds()/r.WarmOff.Seconds() - 1
}

// obsProgram is the measured request body: a small clean program, so
// the warm path is a pure result-cache hit and the recorder's fixed
// cost dominates the measurement rather than solver time.
const obsProgram = `{"sources":[{"path":"bench.c","text":"int strlen(const char *s);\nint probe(const char *s) { return strlen(s); }\nvoid use(char *buf) { probe(buf); }"}]}`

// obsArm times one server configuration: a warmup miss plus hits, then
// rounds of timed single-request batches. The returned slice holds one
// median-of-batch duration per round.
func obsArm(cfg server.Config, requests, rounds int) ([]time.Duration, *httptest.Server, error) {
	ts := httptest.NewServer(server.New(cfg))
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(obsProgram))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("analyze: status %d", resp.StatusCode)
		}
		return nil
	}
	// Warmup: the first request is the miss that populates the cache;
	// a few more settle connection reuse.
	for i := 0; i < 4; i++ {
		if err := post(); err != nil {
			ts.Close()
			return nil, nil, err
		}
	}
	meds := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		lat := make([]time.Duration, 0, requests)
		for i := 0; i < requests; i++ {
			start := time.Now()
			if err := post(); err != nil {
				ts.Close()
				return nil, nil, err
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		meds = append(meds, lat[len(lat)/2])
	}
	return meds, ts, nil
}

// MeasureObs A/Bs the warm path with the flight recorder on (the
// shipped default) and off (Config.DisableRecorder, the baseline that
// exists only for this measurement). Both arms run the same request
// count against freshly started servers; the reported latencies are
// medians of per-round medians, which shrugs off scheduler noise on a
// loaded machine.
func MeasureObs(requests, rounds int) (ObsResult, error) {
	if requests < 1 {
		requests = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	res := ObsResult{Requests: requests, Rounds: rounds}

	on, tsOn, err := obsArm(server.Config{}, requests, rounds)
	if err != nil {
		return res, err
	}
	defer tsOn.Close()
	off, tsOff, err := obsArm(server.Config{DisableRecorder: true}, requests, rounds)
	if err != nil {
		return res, err
	}
	tsOff.Close()

	res.WarmOn = median(on)
	res.WarmOff = median(off)

	// Witness that the recording arm actually recorded: its ring and
	// journal saw the traffic (the off arm's stayed empty by design).
	var intro struct {
		Retention struct {
			Resident int `json:"resident"`
		} `json:"retention"`
		Journal struct {
			NextSeq int `json:"next_seq"`
		} `json:"journal"`
	}
	if err := getJSON(tsOn.URL+"/v1/introspect", &intro); err != nil {
		return res, err
	}
	res.Retained = intro.Retention.Resident
	res.Events = intro.Journal.NextSeq - 1
	return res, nil
}
