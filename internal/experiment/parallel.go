package experiment

// The parallel-solve benchmark: one large benchgen corpus (the
// headline run uses a million lines) pushed through the front end
// once, then cold-solved repeatedly at increasing solver worker
// counts. Re-solving the same System is exactly the cold fixpoint
// computation — Solve never caches results — so the curve isolates
// the solver's scaling from front-end time.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/benchgen"
	"repro/internal/constraint"
	"repro/internal/driver"
)

// ParallelPoint is one measured worker count.
type ParallelPoint struct {
	Jobs  int
	Solve time.Duration // median over rounds
	Stats constraint.SolveStats
}

// ParallelResult is the parallel-solve benchmark block. NumCPU records
// the measuring machine's usable cores: worker counts beyond it
// oversubscribe the scheduler and cannot speed anything up, so a flat
// curve with NumCPU=1 documents the machine, not the solver.
type ParallelResult struct {
	Lines       int // generated corpus size
	Vars        int
	Constraints int
	MaskClasses int
	Rounds      int
	NumCPU      int
	Points      []ParallelPoint
}

// Speedup reports a point's solve-time speedup against the slowest
// measured point (the jobs=1 baseline when present).
func (r ParallelResult) Speedup(p ParallelPoint) float64 {
	base := time.Duration(0)
	for _, q := range r.Points {
		if q.Jobs == 1 {
			base = q.Solve
		}
	}
	if base == 0 || p.Solve == 0 {
		return 0
	}
	return base.Seconds() / p.Solve.Seconds()
}

// MeasureParallel generates a benchgen.ParallelCorpus of about `lines`
// lines, runs it through the C front end once, and measures the cold
// solve of the resulting constraint system at each worker count in
// jobsList (median over rounds). Conflict counts are checked across
// points — any divergence between worker counts is a solver bug and
// fails the measurement.
func MeasureParallel(lines int, seed int64, rounds int, jobsList []int) (ParallelResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	cfg := benchgen.ParallelCorpus(lines, seed)
	src := benchgen.Generate(cfg)
	res, err := driver.Run(driver.Config{SolveJobs: 1},
		[]driver.Source{driver.TextSource(cfg.Name+".c", src)})
	if err != nil {
		return ParallelResult{}, err
	}
	if res.HasErrors() || res.Analysis == nil {
		return ParallelResult{}, fmt.Errorf("experiment: parallel corpus does not analyze cleanly: %v", res.Errors())
	}
	a := res.Analysis
	out := ParallelResult{
		Lines:       res.Solver.Constraints, // placeholder, fixed below
		Vars:        res.Solver.Vars,
		Constraints: res.Solver.Constraints,
		MaskClasses: res.Solver.MaskClasses,
		Rounds:      rounds,
		NumCPU:      runtime.NumCPU(),
	}
	out.Lines = countLines(src)

	wantConflicts := -1
	for _, jobs := range jobsList {
		a.SetSolveJobs(jobs)
		// One untimed solve grows this setting's scratch, then a GC
		// settles the heap so earlier points don't bill collection debt
		// to later ones.
		a.SolveSystem()
		runtime.GC()
		var times []time.Duration
		var conflicts int
		for r := 0; r < rounds; r++ {
			start := time.Now()
			unsats := a.SolveSystem()
			times = append(times, time.Since(start))
			conflicts = len(unsats)
		}
		if wantConflicts == -1 {
			wantConflicts = conflicts
		} else if conflicts != wantConflicts {
			return ParallelResult{}, fmt.Errorf("experiment: solve at jobs=%d found %d conflicts, jobs=%d found %d — solver output diverged",
				jobs, conflicts, jobsList[0], wantConflicts)
		}
		out.Points = append(out.Points, ParallelPoint{
			Jobs:  jobs,
			Solve: median(times),
			Stats: a.SolveStats(),
		})
	}
	return out, nil
}

func countLines(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	return n
}
