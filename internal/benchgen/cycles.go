package benchgen

// Cycle-heavy constraint-system generation.
//
// The C-source generators above exercise the whole pipeline; the solver
// benchmarks need direct control over the *shape* of the atomic
// constraint graph — in particular over ⊑-cycle density, because cycles
// are what the condensed solver collapses (variables in a cycle are
// equal wherever their edge masks overlap, so each strongly-connected
// component solves as one node). CycleSystem builds such graphs
// deterministically: a seeded region whose variables carry constant
// lower bounds, a bounded region whose variables carry constant upper
// bounds, and within each region a configurable mix of ⊑-cycles and
// chains plus random cross edges. Flow only ever runs bounded→seeded,
// so every generated system is satisfiable by construction and the
// benchmarks can assert a clean solve.

import (
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/qual"
)

// CycleConfig sizes one synthetic constraint system.
type CycleConfig struct {
	// Vars is the total number of qualifier variables.
	Vars int
	// CycleFrac is the fraction of variables organized into ⊑-cycles;
	// the rest form chains. 0 reproduces the classic chain benchmark.
	CycleFrac float64
	// CycleLen is the length of each cycle (default 8, minimum 2).
	CycleLen int
	// CrossEdges is the number of extra random edges (within a region,
	// or from the bounded region into the seeded one — never the other
	// way, which keeps the system satisfiable).
	CrossEdges int
	// Seeds is the number of constant lower bounds L ⊑ κ planted in the
	// seeded region (default Vars/100, minimum 1).
	Seeds int
	// Bounds is the number of constant upper bounds κ ⊑ L planted in
	// the bounded region (default Vars/100, minimum 1).
	Bounds int
	// MaskedFrac is the fraction of variable-variable edges restricted
	// to a single random lattice component instead of the full mask;
	// masked cycles are the case the condensation must not over-merge.
	MaskedFrac float64
	// StructMasks assigns masks per structure instead of per edge: every
	// edge of one cycle or chain carries the same (possibly single-
	// component) mask. This is the shape multi-analysis systems have —
	// each analysis masks its own constraints to its lattice component,
	// and flow cycles live within one analysis — and it is the shape on
	// which per-class condensation collapses whole cycles.
	StructMasks bool
	// BitSeeds plants single-component seeds and bounds (each picks one
	// random lattice component) instead of random elements. Combined
	// with full-mask edges this is the other multi-analysis shape: the
	// analyses share the program's value-flow edges, and each analysis
	// contributes its own seeds at its own program points. Distinct
	// components reaching a cycle from distinct points are the worst
	// case for a per-edge fixpoint — one propagation wave around the
	// cycle per component — and are exactly what cycle collapse removes.
	BitSeeds bool
	// Seed makes generation deterministic.
	Seed int64
}

// CycleSystem generates a satisfiable constraint system over set and
// returns it together with a deterministic sample of "interface"
// variables (one per cycle or chain head, capped at 64) for Restrict
// benchmarks. Generation is pure: equal configs yield equal systems.
func CycleSystem(set *qual.Set, cfg CycleConfig) (*constraint.System, []constraint.Var) {
	if cfg.Vars < 4 {
		cfg.Vars = 4
	}
	if cfg.CycleLen < 2 {
		cfg.CycleLen = 8
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = max(1, cfg.Vars/100)
	}
	if cfg.Bounds <= 0 {
		cfg.Bounds = max(1, cfg.Vars/100)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sys := constraint.NewSystem(set)
	vars := make([]constraint.Var, cfg.Vars)
	for i := range vars {
		vars[i] = sys.Fresh()
	}
	full := set.FullMask()
	nbits := set.Len()
	mask := func() qual.Elem {
		if nbits > 0 && rng.Float64() < cfg.MaskedFrac {
			return qual.Elem(1) << uint(rng.Intn(nbits))
		}
		return full
	}
	structMask := full
	edge := func(a, b constraint.Var) {
		m := structMask
		if !cfg.StructMasks {
			m = mask()
		}
		sys.AddMasked(constraint.V(a), constraint.V(b), m, constraint.Reason{})
	}

	// The seeded region is the first half, the bounded region the second.
	half := cfg.Vars / 2
	var iface []constraint.Var
	region := func(lo, hi int) {
		n := hi - lo
		cycled := int(float64(n) * cfg.CycleFrac)
		i := lo
		for ; i+cfg.CycleLen <= lo+cycled; i += cfg.CycleLen {
			structMask = mask() // one mask per cycle under StructMasks
			if len(iface) < 64 {
				iface = append(iface, vars[i])
			}
			for k := 0; k < cfg.CycleLen-1; k++ {
				edge(vars[i+k], vars[i+k+1])
			}
			edge(vars[i+cfg.CycleLen-1], vars[i])
		}
		if i < hi {
			if len(iface) < 64 {
				iface = append(iface, vars[i])
			}
		}
		structMask = mask() // one mask per chain under StructMasks
		for ; i+1 < hi; i++ {
			edge(vars[i], vars[i+1])
		}
	}
	region(0, half)
	region(half, cfg.Vars)

	for k := 0; k < cfg.CrossEdges; k++ {
		structMask = mask() // cross edges draw a fresh mask either way
		switch rng.Intn(3) {
		case 0: // within the seeded region
			edge(vars[rng.Intn(half)], vars[rng.Intn(half)])
		case 1: // within the bounded region
			edge(vars[half+rng.Intn(cfg.Vars-half)], vars[half+rng.Intn(cfg.Vars-half)])
		default: // bounded → seeded, never the reverse
			edge(vars[half+rng.Intn(cfg.Vars-half)], vars[rng.Intn(half)])
		}
	}

	for k := 0; k < cfg.Seeds; k++ {
		e := qual.Elem(rng.Uint64()) & full
		if cfg.BitSeeds && nbits > 0 {
			e = qual.Elem(1) << uint(rng.Intn(nbits))
		}
		sys.Add(constraint.C(e), constraint.V(vars[rng.Intn(half)]), constraint.Reason{})
	}
	for k := 0; k < cfg.Bounds; k++ {
		e := qual.Elem(rng.Uint64()) & full
		if cfg.BitSeeds && nbits > 0 {
			e = full &^ (qual.Elem(1) << uint(rng.Intn(nbits)))
		}
		sys.AddMasked(constraint.V(vars[half+rng.Intn(cfg.Vars-half)]), constraint.C(e), mask(), constraint.Reason{})
	}
	return sys, iface
}
