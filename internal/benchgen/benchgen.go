// Package benchgen generates synthetic C benchmark programs for the
// const-inference experiment of Section 4.4 of "A Theory of Type
// Qualifiers" (PLDI 1999).
//
// The paper measured six real GNU packages (woman, patch, m4, diffutils,
// ssh, uucp). Those sources are not available here, so this generator
// produces deterministic C programs matched to the paper's line counts
// and — more importantly — to the structural features that drive the
// experiment's numbers:
//
//   - pointer parameters that are only read (const-able, the Mono gain);
//   - a per-benchmark fraction of those already declared const ("programs
//     that show a significant effort to use const", Table 1);
//   - parameters written through (never const);
//   - flow-through functions in the strchr pattern, used by both writers
//     and readers — monomorphically everything fuses and is forced
//     non-const, polymorphically the readers stay const-able (the Poly
//     gain of 5–16%);
//   - mutually recursive function groups (FDG SCCs);
//   - shared struct fields, typedefs, globals, extern library functions
//     with const-annotated prototypes, string literals;
//   - pointer-free integer helpers providing realistic bulk, so that the
//     density of const positions per line matches real C (~0.05/line).
//
// Generation is seeded per benchmark, so the suite is reproducible.
package benchgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config describes one synthetic benchmark. The fractions control the
// mix of const-relevant structure per function group.
type Config struct {
	// Name labels the benchmark (paper benchmarks use the original names).
	Name string
	// Description is the Table 1 description.
	Description string
	// TargetLines approximates the generated program length.
	TargetLines int
	// Seed makes generation deterministic.
	Seed int64

	// ReadersPerGroup is the number of read-only string functions per
	// group (each contributes one const-able position).
	ReadersPerGroup int
	// DeclaredConstFrac is the probability that a reader's parameter is
	// already declared const.
	DeclaredConstFrac float64
	// WritersPerGroup is the number of functions writing through their
	// pointer parameter per group.
	WritersPerGroup int
	// StructFrac is the probability a group defines and uses a struct
	// (adds a read-only struct walker and a field-setting writer).
	StructFrac float64
	// FlowFrac is the probability a group has a flow-through helper with
	// a reader client; MixedFlowFrac (of those) adds a writer client,
	// which is what polymorphism untangles.
	FlowFrac float64
	// MixedFlowFrac see FlowFrac.
	MixedFlowFrac float64
	// RecursionFrac is the probability a group includes a mutually
	// recursive pair over its struct (requires the struct).
	RecursionFrac float64
	// IntHelpers is the number of pointer-free helper functions per
	// group, the bulk of real programs.
	IntHelpers int
	// WideHubFrac is the probability a group emits a wide hub: a fan of
	// one-step flow-through functions all feeding one dispatcher. Hubs
	// broaden the constraint graph's condensation — many components at
	// the same topological depth — the shape the solver's
	// level-parallel sweeps exploit.
	WideHubFrac float64
	// DeepChainFrac is the probability a group emits a deep chain of
	// flow-through functions. Chains deepen the condensation — many
	// levels with few components each — the adversarial shape for level
	// parallelism, kept in the mix so the sequential-sweep fallback
	// stays honest.
	DeepChainFrac float64
}

// PaperSuite returns configurations mirroring Table 1 of the paper: the
// same names, descriptions and line counts, with structure parameters
// tuned per benchmark toward the paper's measured ratios (declared/total,
// mono/total, poly/mono).
func PaperSuite() []Config {
	return []Config{
		{Name: "woman-3.0a", Description: "Replacement for man package",
			TargetLines: 1496, Seed: 1001, ReadersPerGroup: 12, DeclaredConstFrac: 0.80,
			WritersPerGroup: 3, StructFrac: 0.5, FlowFrac: 0.5, MixedFlowFrac: 0.5,
			RecursionFrac: 0.10, IntHelpers: 6},
		{Name: "patch-2.5", Description: "Apply a diff file to an original",
			TargetLines: 5303, Seed: 1002, ReadersPerGroup: 13, DeclaredConstFrac: 0.85,
			WritersPerGroup: 5, StructFrac: 0.5, FlowFrac: 0.5, MixedFlowFrac: 0.5,
			RecursionFrac: 0.12, IntHelpers: 6},
		{Name: "m4-1.4", Description: "Unix macro preprocessor",
			TargetLines: 7741, Seed: 1003, ReadersPerGroup: 10, DeclaredConstFrac: 0.38,
			WritersPerGroup: 4, StructFrac: 0.6, FlowFrac: 0.5, MixedFlowFrac: 0.35,
			RecursionFrac: 0.15, IntHelpers: 6},
		{Name: "diffutils-2.7", Description: "Collection of utilities for diffing files",
			TargetLines: 8741, Seed: 1004, ReadersPerGroup: 9, DeclaredConstFrac: 0.88,
			WritersPerGroup: 5, StructFrac: 0.7, FlowFrac: 0.8, MixedFlowFrac: 0.6,
			RecursionFrac: 0.12, IntHelpers: 6},
		{Name: "ssh-1.2.26", Description: "Secure shell",
			TargetLines: 18620, Seed: 1005, ReadersPerGroup: 10, DeclaredConstFrac: 0.52,
			WritersPerGroup: 4, StructFrac: 0.7, FlowFrac: 0.7, MixedFlowFrac: 0.5,
			RecursionFrac: 0.10, IntHelpers: 7},
		{Name: "uucp-1.04", Description: "Unix to unix copy package",
			TargetLines: 36913, Seed: 1006, ReadersPerGroup: 10, DeclaredConstFrac: 0.46,
			WritersPerGroup: 4, StructFrac: 0.7, FlowFrac: 0.8, MixedFlowFrac: 0.6,
			RecursionFrac: 0.12, IntHelpers: 6},
	}
}

// ParallelCorpus returns the configuration of the parallel-solve
// benchmark corpus: a program of about targetLines lines (the
// headline run uses one million) mixing the paper's shapes with wide
// hubs and deep chains, so the constraint graph has both the broad
// condensations the level sweeps exploit and the chain-shaped ones
// that exercise the sequential fallback. Generation is deterministic
// per seed and single-pass — the line count is tracked incrementally,
// so a million-line corpus costs the same per line as a small one.
func ParallelCorpus(targetLines int, seed int64) Config {
	return Config{
		Name:        fmt.Sprintf("synth-%dk", targetLines/1000),
		Description: "parallel-solve benchmark corpus",
		TargetLines: targetLines, Seed: seed,
		ReadersPerGroup: 10, DeclaredConstFrac: 0.5,
		WritersPerGroup: 4, StructFrac: 0.6,
		FlowFrac: 0.6, MixedFlowFrac: 0.5,
		RecursionFrac: 0.12, IntHelpers: 6,
		WideHubFrac: 0.35, DeepChainFrac: 0.25,
	}
}

// Generate produces the benchmark's C source text.
func Generate(cfg Config) string {
	if cfg.ReadersPerGroup <= 0 {
		cfg.ReadersPerGroup = 8
	}
	if cfg.WritersPerGroup <= 0 {
		cfg.WritersPerGroup = 2
	}
	if cfg.IntHelpers < 0 {
		cfg.IntHelpers = 4
	}
	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	return g.program()
}

type gen struct {
	cfg Config
	rng *rand.Rand
	b   strings.Builder
	nl  int // newlines emitted so far; kept incrementally, the builder is never rescanned
	grp int
}

func (g *gen) pf(format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	g.b.WriteString(s)
	g.nl += strings.Count(s, "\n")
}

func (g *gen) program() string {
	g.header()
	var drivers []string
	for g.nl < g.cfg.TargetLines-40 {
		drivers = append(drivers, g.group())
	}
	g.mainFn(drivers)
	return g.b.String()
}

func (g *gen) header() {
	g.pf("/* %s — synthetic benchmark: %s */\n", g.cfg.Name, g.cfg.Description)
	g.pf("/* generated deterministically, seed %d */\n\n", g.cfg.Seed)
	g.pf("typedef unsigned long size_t;\n")
	g.pf("typedef char *string_t;\n\n")
	g.pf("extern size_t strlen(const char *s);\n")
	g.pf("extern char *strcpy(char *dst, const char *src);\n")
	g.pf("extern char *strcat(char *dst, const char *src);\n")
	g.pf("extern int strcmp(const char *a, const char *b);\n")
	g.pf("extern void *malloc(size_t n);\n")
	g.pf("extern void free(void *p);\n")
	g.pf("extern int printf(const char *fmt, ...);\n")
	g.pf("extern int sprintf(char *buf, const char *fmt, ...);\n\n")
	g.pf("static int g_errors;\n")
	g.pf("static int g_verbose;\n")
	g.pf("static char g_scratch[256];\n\n")
}

// intHelper emits a pointer-free function of 10–20 lines.
func (g *gen) intHelper(id, k int) string {
	r := g.rng
	name := fmt.Sprintf("calc%d_%d", id, k)
	g.pf("static int %s(int a, int b) {\n", name)
	g.pf("\tint acc = %d;\n\tint i;\n", r.Intn(100))
	g.pf("\tfor (i = 0; i < (a & 15); i++) {\n")
	switch r.Intn(4) {
	case 0:
		g.pf("\t\tacc += (b >> i) & 1 ? i * %d : -i;\n", 2+r.Intn(9))
	case 1:
		g.pf("\t\tacc ^= (a + i) * %d;\n\t\tif (acc < 0)\n\t\t\tacc = -acc;\n", 3+r.Intn(17))
	case 2:
		g.pf("\t\tswitch (i & 3) {\n\t\tcase 0: acc += b; break;\n\t\tcase 1: acc -= a; break;\n\t\tcase 2: acc *= 2; break;\n\t\tdefault: acc /= 3; break;\n\t\t}\n")
	default:
		g.pf("\t\twhile (acc > %d)\n\t\t\tacc -= b ? b : 1;\n", 500+r.Intn(5000))
	}
	g.pf("\t}\n")
	if r.Intn(2) == 0 {
		g.pf("\tif (g_verbose)\n\t\tg_errors += acc & 1;\n")
	}
	g.pf("\treturn acc;\n}\n\n")
	return name
}

// reader emits a read-only string function; declared controls the const
// keyword on its parameter.
func (g *gen) reader(id, k int, declared bool) string {
	r := g.rng
	name := fmt.Sprintf("rd%d_%d", id, k)
	kw := ""
	if declared {
		kw = "const "
	}
	g.pf("static int %s(%schar *s) {\n", name, kw)
	switch r.Intn(4) {
	case 0:
		g.pf("\tint h = %d;\n", 1+r.Intn(97))
		g.pf("\twhile (*s) {\n\t\th = h * 31 + *s;\n\t\ts++;\n\t}\n\treturn h;\n")
	case 1:
		g.pf("\tint n = 0;\n")
		g.pf("\twhile (s[n] && s[n] != '%c')\n\t\tn++;\n\treturn n;\n", 'a'+rune(r.Intn(26)))
	case 2:
		g.pf("\tint v = 0;\n")
		g.pf("\twhile (*s >= '0' && *s <= '9') {\n\t\tv = v * 10 + (*s - '0');\n\t\ts++;\n\t}\n\treturn v;\n")
	default:
		g.pf("\tint words = 0;\n\tint inword = 0;\n")
		g.pf("\tfor (; *s; s++) {\n\t\tif (*s == ' ' || *s == '\\t') {\n\t\t\tinword = 0;\n\t\t} else if (!inword) {\n\t\t\tinword = 1;\n\t\t\twords++;\n\t\t}\n\t}\n\treturn words;\n")
	}
	g.pf("}\n\n")
	return name
}

// writer emits a function writing through its pointer parameter.
func (g *gen) writer(id, k int) string {
	r := g.rng
	name := fmt.Sprintf("wr%d_%d", id, k)
	g.pf("static void %s(char *dst, int n) {\n", name)
	switch r.Intn(3) {
	case 0:
		g.pf("\tint i;\n\tfor (i = 0; i < n; i++)\n\t\tdst[i] = (char)('%c' + (i %% %d));\n\tdst[n] = 0;\n",
			'A'+rune(r.Intn(20)), 3+r.Intn(23))
	case 1:
		g.pf("\twhile (n-- > 0)\n\t\t*dst++ = '%c';\n\t*dst = 0;\n", 'a'+rune(r.Intn(26)))
	default:
		g.pf("\tint i;\n\tfor (i = 0; i + 1 < n; i += 2) {\n\t\tdst[i] = '%c';\n\t\tdst[i + 1] = '%c';\n\t}\n\tdst[i < n ? i : n] = 0;\n",
			'0'+rune(r.Intn(10)), 'x')
	}
	g.pf("}\n\n")
	return name
}

// wideHub emits a fan of one-step flow-through functions and the
// dispatcher consuming all of them: w independent κ-chains of depth
// one, all at the same topological depth in the condensation.
func (g *gen) wideHub(id int) {
	r := g.rng
	w := 8 + r.Intn(9)
	for k := 0; k < w; k++ {
		g.pf("static char *pick%d_%d(char *s) {\n\treturn s + (*s ? %d : 0);\n}\n\n", id, k, k%3)
	}
	g.pf("static int hub%d(char *s) {\n\tint acc = 0;\n", id)
	for k := 0; k < w; k++ {
		g.pf("\tacc += *pick%d_%d(s);\n", id, k)
	}
	g.pf("\treturn acc;\n}\n\n")
}

// deepChain emits a linear chain of flow-through functions: one
// κ-chain of depth d, a condensation that is all levels and no width.
func (g *gen) deepChain(id int) {
	r := g.rng
	d := 10 + r.Intn(7)
	g.pf("static char *step%d_0(char *s) {\n\treturn s;\n}\n\n", id)
	for k := 1; k < d; k++ {
		g.pf("static char *step%d_%d(char *s) {\n\treturn step%d_%d(s + 1);\n}\n\n", id, k, id, k-1)
	}
	g.pf("static int chain%d(char *s) {\n\treturn *step%d_%d(s);\n}\n\n", id, id, d-1)
}

// group emits one module and returns its driver's name.
func (g *gen) group() string {
	id := g.grp
	g.grp++
	r := g.rng

	hasStruct := r.Float64() < g.cfg.StructFrac
	hasFlow := r.Float64() < g.cfg.FlowFrac
	mixed := hasFlow && r.Float64() < g.cfg.MixedFlowFrac
	recursive := hasStruct && r.Float64() < g.cfg.RecursionFrac
	hasHub := r.Float64() < g.cfg.WideHubFrac
	hasChain := r.Float64() < g.cfg.DeepChainFrac

	var helpers []string
	for k := 0; k < g.cfg.IntHelpers; k++ {
		helpers = append(helpers, g.intHelper(id, k))
	}
	var readers []string
	for k := 0; k < g.cfg.ReadersPerGroup; k++ {
		readers = append(readers, g.reader(id, k, r.Float64() < g.cfg.DeclaredConstFrac))
	}
	var writers []string
	for k := 0; k < g.cfg.WritersPerGroup; k++ {
		writers = append(writers, g.writer(id, k))
	}

	if hasStruct {
		g.pf("struct rec%d {\n\tchar *name;\n\tint tag;\n\tstruct rec%d *next;\n};\n\n", id, id)
		g.pf("static int rec_tag%d(struct rec%d *rp) {\n", id, id)
		g.pf("\tint t = 0;\n\twhile (rp) {\n\t\tt += rp->tag;\n\t\trp = rp->next;\n\t}\n\treturn t;\n}\n\n")
		g.pf("static void rec_set%d(struct rec%d *rp, char *nm, int tg) {\n", id, id)
		g.pf("\trp->name = nm;\n\trp->tag = tg;\n\trp->next = 0;\n}\n\n")
	}

	if hasFlow {
		g.pf("static char *skipws%d(char *s) {\n", id)
		g.pf("\twhile (*s == ' ' || *s == '\\t')\n\t\ts++;\n")
		if r.Intn(2) == 0 {
			g.pf("\tif (*s == '#')\n\t\treturn s + 1;\n")
		}
		g.pf("\treturn s;\n}\n\n")
		g.pf("static int count%d(char *line) {\n", id)
		g.pf("\tchar *p = skipws%d(line);\n", id)
		g.pf("\tint n = 0;\n\twhile (p[n])\n\t\tn++;\n\treturn n;\n}\n\n")
		if mixed {
			g.pf("static void chop%d(char *line) {\n", id)
			g.pf("\tchar *p = skipws%d(line);\n", id)
			g.pf("\t*p = 0;\n}\n\n")
		}
	}

	if hasHub {
		g.wideHub(id)
	}
	if hasChain {
		g.deepChain(id)
	}

	if recursive {
		g.pf("static int walk%d(struct rec%d *rp, int depth);\n", id, id)
		g.pf("static int probe%d(struct rec%d *rp, int depth) {\n", id, id)
		g.pf("\tif (!rp || depth > %d)\n\t\treturn 0;\n", 4+r.Intn(12))
		g.pf("\treturn rp->tag + walk%d(rp->next, depth + 1);\n}\n\n", id)
		g.pf("static int walk%d(struct rec%d *rp, int depth) {\n", id, id)
		g.pf("\tif (!rp)\n\t\treturn depth;\n")
		g.pf("\treturn probe%d(rp, depth + 1);\n}\n\n", id)
	}

	// The group driver, keeping the program type-correct.
	g.pf("static int run%d(int n) {\n", id)
	g.pf("\tchar local[%d];\n", 64+r.Intn(192))
	if hasStruct {
		g.pf("\tstruct rec%d r;\n", id)
	}
	g.pf("\tint acc = 0;\n")
	g.pf("\t%s(local, n %% %d);\n", writers[0], 31+r.Intn(32))
	for _, w := range writers[1:] {
		g.pf("\t%s(g_scratch, n %% %d);\n", w, 7+r.Intn(24))
	}
	for i, rd := range readers {
		if i%2 == 0 {
			g.pf("\tacc += %s(local);\n", rd)
		} else {
			g.pf("\tacc += %s(\"%s\");\n", rd, litText(r))
		}
	}
	for i, h := range helpers {
		g.pf("\tacc += %s(acc, n + %d);\n", h, i)
	}
	if hasFlow {
		g.pf("\tacc += count%d(local);\n", id)
		if mixed {
			g.pf("\tchop%d(local);\n", id)
		}
	}
	if hasHub {
		g.pf("\tacc += hub%d(local);\n", id)
	}
	if hasChain {
		g.pf("\tacc += chain%d(local);\n", id)
	}
	if hasStruct {
		g.pf("\trec_set%d(&r, local, n);\n", id)
		g.pf("\tacc += rec_tag%d(&r);\n", id)
	}
	if recursive {
		g.pf("\tacc += walk%d(&r, 0);\n", id)
	}
	g.pf("\treturn acc;\n}\n\n")
	return fmt.Sprintf("run%d", id)
}

func litText(r *rand.Rand) string {
	words := []string{"usage", "input", "output", "error", "file not found",
		"ok", "--help", "version 1.0", "warning", "done"}
	return words[r.Intn(len(words))]
}

func (g *gen) mainFn(drivers []string) {
	g.pf("int main(int argc, char **argv) {\n")
	g.pf("\tint total = argc;\n")
	for _, d := range drivers {
		g.pf("\ttotal += %s(total & 0xff);\n", d)
	}
	g.pf("\tif (argv[0])\n\t\ttotal += (int)strlen(argv[0]);\n")
	g.pf("\tprintf(\"%%d\\n\", total);\n")
	g.pf("\treturn total == 0;\n}\n")
}
