package benchgen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/constinfer"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := PaperSuite()[0]
	a := Generate(cfg)
	b := Generate(cfg)
	if a != b {
		t.Fatal("generation is not deterministic")
	}
	cfg2 := cfg
	cfg2.Seed++
	if Generate(cfg2) == a {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGenerateParses(t *testing.T) {
	for _, cfg := range PaperSuite() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			src := Generate(cfg)
			f, err := cfront.Parse(cfg.Name+".c", src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v", err)
			}
			funcs := 0
			for _, d := range f.Decls {
				if fd, ok := d.(*cfront.FuncDecl); ok && fd.Body != nil {
					funcs++
				}
			}
			if funcs < 10 {
				t.Errorf("only %d functions generated", funcs)
			}
		})
	}
}

func TestGenerateLineTargets(t *testing.T) {
	for _, cfg := range PaperSuite() {
		src := Generate(cfg)
		lines := strings.Count(src, "\n")
		lo := cfg.TargetLines - 60
		hi := cfg.TargetLines + cfg.TargetLines/5
		if lines < lo || lines > hi {
			t.Errorf("%s: %d lines, want within [%d, %d]", cfg.Name, lines, lo, hi)
		}
	}
}

// TestGenerateAnalyzesCleanly: the generated programs are correct C, so
// both inference modes must find zero conflicts, and the paper's ordering
// Declared ≤ Mono ≤ Poly ≤ Total must hold.
func TestGenerateAnalyzesCleanly(t *testing.T) {
	for _, cfg := range PaperSuite()[:3] { // the small ones, for test speed
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			src := Generate(cfg)
			f, err := cfront.Parse(cfg.Name+".c", src)
			if err != nil {
				t.Fatal(err)
			}
			mono, err := constinfer.Analyze([]*cfront.File{f}, constinfer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(mono.Conflicts) > 0 {
				t.Fatalf("mono conflicts: %v", mono.Conflicts[0].Error())
			}
			poly, err := constinfer.Analyze([]*cfront.File{f}, constinfer.Options{Poly: true, Simplify: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(poly.Conflicts) > 0 {
				t.Fatalf("poly conflicts: %v", poly.Conflicts[0].Error())
			}
			if !(mono.Declared <= mono.Inferred && mono.Inferred <= poly.Inferred && poly.Inferred <= mono.Total) {
				t.Errorf("ordering violated: declared=%d mono=%d poly=%d total=%d",
					mono.Declared, mono.Inferred, poly.Inferred, mono.Total)
			}
			if poly.Inferred <= mono.Inferred {
				t.Errorf("no polymorphism gain: mono=%d poly=%d", mono.Inferred, poly.Inferred)
			}
		})
	}
}

// TestSimplifyDoesNotChangeResults: the Section 6 scheme simplification
// is a pure optimization.
func TestSimplifyDoesNotChangeResults(t *testing.T) {
	cfg := PaperSuite()[0]
	src := Generate(cfg)
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := constinfer.Analyze([]*cfront.File{f}, constinfer.Options{Poly: true})
	if err != nil {
		t.Fatal(err)
	}
	simp, err := constinfer.Analyze([]*cfront.File{f}, constinfer.Options{Poly: true, Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Inferred != simp.Inferred || full.Total != simp.Total || full.Declared != simp.Declared {
		t.Errorf("simplification changed results: full %d/%d, simplified %d/%d",
			full.Inferred, full.Total, simp.Inferred, simp.Total)
	}
}

// TestGeneratedCompilesWithCC compiles the smallest benchmark with the
// system C compiler when one is available, validating that the generator
// emits real C.
func TestGeneratedCompilesWithCC(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		if cc, err = exec.LookPath("gcc"); err != nil {
			t.Skip("no C compiler available")
		}
	}
	src := Generate(PaperSuite()[0])
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(cc, "-std=c99", "-fsyntax-only", "-Wno-everything", path).CombinedOutput()
	if err != nil {
		// Retry without the clang-only flag.
		out, err = exec.Command(cc, "-std=c99", "-fsyntax-only", "-w", path).CombinedOutput()
	}
	if err != nil {
		t.Errorf("cc rejected generated program: %v\n%s", err, out)
	}
}

func TestDefaultsApplied(t *testing.T) {
	src := Generate(Config{Name: "tiny", TargetLines: 200, Seed: 5})
	if !strings.Contains(src, "int main") {
		t.Error("no main generated")
	}
	if _, err := cfront.Parse("tiny.c", src); err != nil {
		t.Errorf("tiny config does not parse: %v", err)
	}
}

// TestPrintAnalyzeRoundTrip: printing a parsed benchmark and reparsing
// the output must preserve the analysis results exactly — a semantic
// round-trip through the C printer.
func TestPrintAnalyzeRoundTrip(t *testing.T) {
	src := Generate(PaperSuite()[0])
	f1, err := cfront.Parse("a.c", src)
	if err != nil {
		t.Fatal(err)
	}
	printed := cfront.PrintFile(f1)
	f2, err := cfront.Parse("b.c", printed)
	if err != nil {
		t.Fatalf("printed benchmark does not reparse: %v", err)
	}
	for _, opts := range []constinfer.Options{{}, {Poly: true, Simplify: true}} {
		r1, err := constinfer.Analyze([]*cfront.File{f1}, opts)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := constinfer.Analyze([]*cfront.File{f2}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Declared != r2.Declared || r1.Inferred != r2.Inferred || r1.Total != r2.Total {
			t.Errorf("opts %+v: analysis changed across print round trip: %d/%d/%d vs %d/%d/%d",
				opts, r1.Declared, r1.Inferred, r1.Total, r2.Declared, r2.Inferred, r2.Total)
		}
	}
}
