package gofront

// Parsing and type checking. The front end parses the loaded files into
// one shared token.FileSet, groups them into packages by directory, and
// type-checks each package with go/types. Imports resolve three ways,
// in order: a package already checked in this run, a module-local
// package loaded from disk and checked transitively, or the standard
// library through the go/types source importer. Any import or
// type-check failure is downgraded to a warning diagnostic and the
// failed package is replaced by an empty stub — the analysis always
// proceeds on whatever type information exists, because a conservative
// answer on a partially typed program is still sound for the positive
// const question ("is this reference never written through?" is only
// ever weakened by missing information we treat as writes at call
// edges).

import (
	"context"
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/driver"
)

// noCgo disables cgo in the build context the source importer reads, so
// cgo-using stdlib packages (net, os/user) type-check their pure-Go
// fallback files instead of failing in containers without a C
// toolchain.
var noCgo sync.Once

// maxPkgNotes bounds the type-error warnings reported per package;
// beyond it one summary note stands in for the rest.
const maxPkgNotes = 8

// Parse parses the loaded files and type-checks them as packages. The
// returned error slice is parallel to files (syntax errors only);
// type-check problems become warning notes on the Program.
func (frontEnd) Parse(ctx context.Context, files []driver.Source, loadErrs []error) (driver.Program, []error) {
	noCgo.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	parsed := make([]*ast.File, len(files))
	parseErrs := make([]error, len(files))
	for i := range files {
		if loadErrs[i] != nil || ctx.Err() != nil {
			continue
		}
		parsed[i], parseErrs[i] = parser.ParseFile(fset, files[i].Path, files[i].Text, parser.SkipObjectResolution)
	}

	prog := &Program{fset: fset}
	h := sha256.New()
	for i := range files {
		fmt.Fprintf(h, "file:%d:%s;%d:", len(files[i].Path), files[i].Path, len(files[i].Text))
		h.Write([]byte(files[i].Text))
	}
	prog.fp = fmt.Sprintf("go:%x", h.Sum(nil))
	// Group the parsed files into packages by directory, preserving load
	// order within each package.
	groups := map[string]*pkgInfo{}
	var dirs []string
	for i, f := range parsed {
		if f == nil {
			continue
		}
		dir := filepath.Dir(files[i].Path)
		g := groups[dir]
		if g == nil {
			g = &pkgInfo{Dir: dir}
			groups[dir] = g
			dirs = append(dirs, dir)
		}
		g.Files = append(g.Files, f)
		g.FileNames = append(g.FileNames, files[i].Path)
	}
	sort.Strings(dirs)

	ld := newLoader(fset, prog)
	for _, dir := range dirs {
		if ctx.Err() != nil {
			break
		}
		g := groups[dir]
		g.Path = ld.importPathFor(dir)
		ld.checkRequested(g)
		prog.Pkgs = append(prog.Pkgs, g)
	}
	// Package identity, not directory spelling, orders the corpus.
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	for _, g := range prog.Pkgs {
		prog.fileNames = append(prog.fileNames, g.FileNames...)
	}
	return prog, parseErrs
}

// pkgInfo is one analyzed package: its parsed files and the go/types
// results constraint generation walks.
type pkgInfo struct {
	// Path is the import path ("repro/internal/qual"), or a synthetic
	// "./dir"-derived path outside any module.
	Path      string
	Dir       string
	Files     []*ast.File
	FileNames []string
	Pkg       *types.Package
	Info      *types.Info
}

// loader resolves and type-checks packages for one Parse call.
type loader struct {
	fset *token.FileSet
	prog *Program
	src  types.ImporterFrom // source importer for GOROOT/GOPATH packages

	// modules caches go.mod lookups by directory.
	modules map[string]moduleInfo
	// done maps import path → checked package (requested, local
	// dependency, or stub). loading guards import cycles.
	done    map[string]*types.Package
	loading map[string]bool
}

type moduleInfo struct {
	Root, Path string
}

func newLoader(fset *token.FileSet, prog *Program) *loader {
	return &loader{
		fset:    fset,
		prog:    prog,
		src:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		modules: map[string]moduleInfo{},
		done:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// moduleFor walks up from dir to the enclosing go.mod, caching results.
func (ld *loader) moduleFor(dir string) (moduleInfo, bool) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return moduleInfo{}, false
	}
	if m, ok := ld.modules[abs]; ok {
		return m, m.Root != ""
	}
	var walk []string
	at := abs
	for {
		if m, ok := ld.modules[at]; ok {
			for _, d := range walk {
				ld.modules[d] = m
			}
			return m, m.Root != ""
		}
		walk = append(walk, at)
		if path := modulePathOf(filepath.Join(at, "go.mod")); path != "" {
			m := moduleInfo{Root: at, Path: path}
			for _, d := range walk {
				ld.modules[d] = m
			}
			return m, true
		}
		parent := filepath.Dir(at)
		if parent == at {
			break
		}
		at = parent
	}
	for _, d := range walk {
		ld.modules[d] = moduleInfo{}
	}
	return moduleInfo{}, false
}

// modulePathOf reads the module path from a go.mod, or "".
func modulePathOf(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// importPathFor derives a package's import path from its directory: the
// module path plus the module-relative directory, or a synthetic
// directory-derived path outside any module.
func (ld *loader) importPathFor(dir string) string {
	if m, ok := ld.moduleFor(dir); ok {
		abs, err := filepath.Abs(dir)
		if err == nil {
			rel, err := filepath.Rel(m.Root, abs)
			if err == nil {
				if rel == "." {
					return m.Path
				}
				return m.Path + "/" + filepath.ToSlash(rel)
			}
		}
	}
	return "./" + filepath.ToSlash(filepath.Clean(dir))
}

// dirForImport maps an import path back to a module-local directory, if
// the path falls under a module this run has seen.
func (ld *loader) dirForImport(path string) (string, bool) {
	for _, m := range ld.sortedModules() {
		if path == m.Path {
			return m.Root, true
		}
		if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
			return filepath.Join(m.Root, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// sortedModules lists the distinct modules seen so far, deterministic
// (longest path first so nested modules shadow their parents).
func (ld *loader) sortedModules() []moduleInfo {
	seen := map[string]moduleInfo{}
	for _, m := range ld.modules {
		if m.Root != "" {
			seen[m.Path] = m
		}
	}
	out := make([]moduleInfo, 0, len(seen))
	for _, m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) > len(out[j].Path)
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// checkRequested type-checks one requested package group, retaining the
// Info maps constraint generation needs.
func (ld *loader) checkRequested(g *pkgInfo) {
	g.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	g.Pkg = ld.check(g.Path, g.Dir, g.Files, g.Info)
}

// check type-checks one package (parsing its files from disk when the
// caller supplies none), records its type errors as warning notes, and
// returns the — possibly incomplete — package. Import cycles and
// re-checks resolve through the done/loading maps.
func (ld *loader) check(path, dir string, files []*ast.File, info *types.Info) *types.Package {
	if pkg, ok := ld.done[path]; ok && info == nil {
		return pkg
	}
	if ld.loading[path] {
		// Import cycle through a module-local package: stub the back
		// edge. (go/types would reject the cycle anyway; the stub keeps
		// the error local to one note.)
		ld.note(token.NoPos, "go-import-cycle", fmt.Sprintf("import cycle through %q; treating the back edge as an empty package", path))
		return ld.stub(path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	if files == nil {
		names, err := goFilesIn(dir)
		if err == nil && len(names) == 0 {
			err = fmt.Errorf("no Go files in %s", dir)
		}
		if err != nil {
			ld.note(token.NoPos, "go-load-error", fmt.Sprintf("loading %q: %v", path, err))
			return ld.stub(path)
		}
		for _, name := range names {
			f, err := parser.ParseFile(ld.fset, name, nil, parser.SkipObjectResolution)
			if err != nil {
				ld.note(token.NoPos, "go-parse-error", fmt.Sprintf("loading %q: %v", path, err))
				continue
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return ld.stub(path)
		}
	}

	var errs []types.Error
	conf := types.Config{
		Importer:         ld,
		Error:            func(err error) { errs = append(errs, err.(types.Error)) },
		FakeImportC:      true,
		IgnoreFuncBodies: info == nil, // dependency packages: interfaces only
	}
	pkg, _ := conf.Check(path, ld.fset, files, info)
	for i, e := range errs {
		if i == maxPkgNotes {
			ld.note(token.NoPos, "go-type-error",
				fmt.Sprintf("package %q: %d more type errors suppressed", path, len(errs)-maxPkgNotes))
			break
		}
		ld.note(e.Pos, "go-type-error", fmt.Sprintf("package %q: %s", path, e.Msg))
	}
	if pkg == nil {
		return ld.stub(path)
	}
	ld.done[path] = pkg
	return pkg
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: local packages first, then
// the source importer, then a stub-with-warning so type checking (and
// with it the analysis) always completes.
func (ld *loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.done[path]; ok {
		return pkg, nil
	}
	if dir, ok := ld.dirForImport(path); ok {
		return ld.check(path, dir, nil, nil), nil
	}
	pkg, err := ld.src.ImportFrom(path, srcDir, 0)
	if err != nil {
		ld.note(token.NoPos, "go-import-error",
			fmt.Sprintf("import %q: %v; treating it as an empty package (its calls get the conservative library rule)", path, err))
		return ld.stub(path), nil
	}
	ld.done[path] = pkg
	return pkg, nil
}

// stub makes (and remembers) an empty package for a failed import.
func (ld *loader) stub(path string) *types.Package {
	if pkg, ok := ld.done[path]; ok {
		return pkg
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if !token.IsIdentifier(name) {
		name = "pkg"
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	ld.done[path] = pkg
	return pkg
}

// note records one non-fatal front-end warning on the program.
func (ld *loader) note(pos token.Pos, code, msg string) {
	d := driver.Diagnostic{
		Severity: driver.SevWarning,
		Stage:    driver.StageParse,
		Code:     code,
		Message:  msg,
	}
	if pos.IsValid() {
		d.Pos = ld.fset.Position(pos).String()
	}
	ld.prog.notes = append(ld.prog.notes, d)
}

// Program is a parsed, type-checked Go corpus.
type Program struct {
	fset      *token.FileSet
	Pkgs      []*pkgInfo
	notes     []driver.Diagnostic
	fileNames []string
	fp        string
}

// FileNames lists the analyzed files, package-sorted.
func (p *Program) FileNames() []string { return p.fileNames }

// Notes returns the non-fatal front-end warnings (import failures,
// type-check errors the analysis proceeded past).
func (p *Program) Notes() []driver.Diagnostic { return p.notes }

// Fingerprint content-addresses the corpus: file names and the exact
// source bytes go/parser saw, in load order. Positions embed file names
// and offsets, so text identity subsumes position identity.
func (p *Program) Fingerprint() string { return p.fp }

// NewEngine binds the program to the shared qualifier engine.
func (p *Program) NewEngine(cfg driver.Config, suite *analysis.Suite) driver.Engine {
	return newEngine(p, cfg, suite)
}
