package gofront

// The Go constraint engine behind driver.Engine: Prepare translates
// every defined function's signature and every package-level variable,
// ConstrainContext walks function bodies and global initializers in
// source order, and Classify reads the solved system back into the
// shared constinfer report shape.
//
// Constraint generation is strictly sequential and iterates only over
// slices built in source order (packages sorted by import path, files
// in load order, declarations in file order); the object-keyed maps are
// lookup-only. Output is therefore byte-identical for every -jobs value
// by construction — the jobs knob is accepted and ignored.
//
// The constraint list is laid out in contiguous brackets for the delta
// session: the prepare region (signatures, globals, struct values), one
// body fragment per function, and the global-initializer region at the
// end. FragmentSpans labels them with the same content hash the C
// engine uses (constinfer.FragmentKey), so `cquald -watch` re-solves
// only edited Go functions exactly as it does for C.

import (
	"context"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constinfer"
	"repro/internal/constraint"
	"repro/internal/driver"
	"repro/internal/qual"
)

// funcInfo is one defined function or method of the corpus.
type funcInfo struct {
	// name is the display and flow-trace name: pkgpath.Name for
	// functions, pkgpath.Recv.Name for methods (pointer stripped).
	name string
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *pkgInfo
	// sig is the rfunc translation; params[0] is the receiver for
	// methods.
	sig *rtype
	// bodyCons brackets the function's body fragment in the constraint
	// list.
	bodyCons [2]int
}

// gpos is one interesting const position: a reference level of a
// defined function's parameter or result.
type gpos struct {
	fn    string
	param string
	index int
	depth int
	pos   token.Position
	ref   *rtype
}

type engine struct {
	prog  *Program
	cfg   driver.Config
	suite *analysis.Suite
	set   *qual.Set
	sys   *constraint.System
	tr    *translator

	// funcs lists defined functions in corpus order; funcByObj resolves
	// call targets (lookup only, never iterated).
	funcs     []*funcInfo
	funcByObj map[*types.Func]*funcInfo

	// env maps every bound object (params, locals, globals) to its cell
	// (an rref); keyed by go/types object identity, lookup only.
	env map[types.Object]*rtype

	// globalVars lists package-level var specs in corpus order, for the
	// glob fragment.
	globalVars []globalVar

	positions []*gpos

	// constActive notes whether the "const" analysis is in the suite
	// (positions and verdicts only exist for it).
	constActive bool

	prepared    bool
	constrained bool
	// preCons/globCons bracket the prepare and global-initializer
	// regions of the constraint list.
	preCons  int
	globCons [2]int
}

func newEngine(p *Program, cfg driver.Config, suite *analysis.Suite) *engine {
	set := suite.Set()
	e := &engine{
		prog:      p,
		cfg:       cfg,
		suite:     suite,
		set:       set,
		sys:       constraint.NewSystem(set),
		funcByObj: map[*types.Func]*funcInfo{},
		env:       map[types.Object]*rtype{},
	}
	e.tr = newGoTranslator(e.sys, suite)
	e.constActive = suite.Binding("const") != nil
	return e
}

type globalVar struct {
	pkg  *pkgInfo
	spec *ast.ValueSpec
}

// Prepare is the Build stage: collect defined functions and
// package-level variables in corpus order, translate signatures and
// global cells, and register const positions. No bodies are walked.
func (e *engine) Prepare() {
	if e.prepared {
		return
	}
	e.prepared = true
	for _, pkg := range e.prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					e.prepareFunc(pkg, d)
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						e.prepareGlobal(pkg, vs)
					}
				}
			}
		}
	}
	e.preCons = e.sys.NumConstraints()
}

func (e *engine) prepareFunc(pkg *pkgInfo, d *ast.FuncDecl) {
	if d.Body == nil {
		return // assembly or linkname stub: analyzed as a library function
	}
	obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if obj == nil {
		return // type checking failed badly enough to lose the object
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	fi := &funcInfo{
		name: definedFuncName(pkg, obj),
		obj:  obj,
		decl: d,
		pkg:  pkg,
		sig:  e.tr.signature(sig),
	}
	e.funcs = append(e.funcs, fi)
	e.funcByObj[obj] = fi
	e.registerPositions(fi, sig)
}

func (e *engine) prepareGlobal(pkg *pkgInfo, vs *ast.ValueSpec) {
	for _, name := range vs.Names {
		obj := pkg.Info.Defs[name]
		if obj == nil || name.Name == "_" {
			continue
		}
		e.env[obj] = e.tr.lvalue(obj.Type())
	}
	if len(vs.Values) > 0 {
		e.globalVars = append(e.globalVars, globalVar{pkg: pkg, spec: vs})
	}
}

// registerPositions records every reference level of the function's
// parameters and results as an interesting const position — the Go
// reading of the paper's "consts can only be placed on pointers":
// pointer, slice, map, and channel parameters are the positions.
func (e *engine) registerPositions(fi *funcInfo, sig *types.Signature) {
	if !e.constActive {
		return
	}
	var vars []*types.Var
	if recv := sig.Recv(); recv != nil {
		vars = append(vars, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		vars = append(vars, sig.Params().At(i))
	}
	for i, v := range vars {
		pos := e.prog.fset.Position(fi.decl.Pos())
		if v.Pos().IsValid() {
			pos = e.prog.fset.Position(v.Pos())
		}
		for _, pr := range refPositions(fi.sig.params[i], 0, nil) {
			e.positions = append(e.positions, &gpos{
				fn: fi.name, param: v.Name(), index: i, depth: pr.depth,
				pos: pos, ref: pr.ref,
			})
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		for _, pr := range refPositions(fi.sig.rets[i], 0, nil) {
			e.positions = append(e.positions, &gpos{
				fn: fi.name, param: r.Name(), index: -1, depth: pr.depth,
				pos: e.prog.fset.Position(fi.decl.Pos()), ref: pr.ref,
			})
		}
	}
}

// definedFuncName renders the display name of a defined function:
// "pkgpath.Name", or "pkgpath.Recv.Name" for methods with any pointer
// receiver stripped.
func definedFuncName(pkg *pkgInfo, obj *types.Func) string {
	prefix := pkg.Path
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return prefix + "." + name + "." + obj.Name()
		}
	}
	return prefix + "." + obj.Name()
}

// recvTypeName names a receiver (or method-owner) type, pointer
// stripped: *sql.DB → "DB".
func recvTypeName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n := canonicalNamed(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// preludeName renders the prelude-lookup key of an imported function:
// "os.Getenv" (package short name) for package functions,
// "sql.DB.Query" for methods (receiver type, pointer stripped).
func preludeName(obj *types.Func) string {
	short := ""
	if obj.Pkg() != nil {
		short = obj.Pkg().Name()
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			if short == "" {
				return name + "." + obj.Name()
			}
			return short + "." + name + "." + obj.Name()
		}
	}
	if short == "" {
		return obj.Name()
	}
	return short + "." + obj.Name()
}

// ConstrainContext is the Constrain stage: one body fragment per
// defined function, then the global initializers. jobs is accepted for
// interface parity and ignored — generation is sequential, so every
// jobs value trivially produces identical output.
func (e *engine) ConstrainContext(ctx context.Context, jobs int) {
	if e.constrained {
		return
	}
	e.constrained = true
	for _, fi := range e.funcs {
		fi.bodyCons[0] = e.sys.NumConstraints()
		if ctx.Err() == nil {
			e.analyzeBody(fi)
		}
		fi.bodyCons[1] = e.sys.NumConstraints()
	}
	e.globCons[0] = e.sys.NumConstraints()
	if ctx.Err() == nil {
		for _, gv := range e.globalVars {
			e.constrainGlobal(gv)
		}
	}
	e.globCons[1] = e.sys.NumConstraints()
}

// FragmentSpans labels the constraint list as content-addressed
// fragments for the delta session: prepare region, one fragment per
// function body, global initializers.
func (e *engine) FragmentSpans() []constraint.FragmentSpan {
	if !e.constrained {
		return nil
	}
	all := e.sys.Constraints()
	var spans []constraint.FragmentSpan
	at := 0
	cut := func(tag string, end int) {
		spans = append(spans, constraint.FragmentSpan{
			Key:   constinfer.FragmentKey(tag, all[at:end]),
			Start: at,
			End:   end,
		})
		at = end
	}
	cut("pre", e.preCons)
	for _, fi := range e.funcs {
		cut("body", fi.bodyCons[1])
	}
	cut("glob", len(all))
	return spans
}

// SolveSystemContext is the cold Solve stage.
func (e *engine) SolveSystemContext(ctx context.Context) []*constraint.Unsat {
	return e.sys.SolveContext(ctx)
}

// SetSolveJobs bounds the solver's worker pool (0 = GOMAXPROCS, 1 =
// sequential); solver output is byte-identical at every setting.
func (e *engine) SetSolveJobs(n int) { e.sys.SetSolveJobs(n) }

// SolveSession routes the Solve stage through a retained delta session,
// falling back to a cold solve when no session or spans exist.
func (e *engine) SolveSession(ctx context.Context, ss *constraint.Session) []*constraint.Unsat {
	if ss == nil {
		return e.sys.SolveContext(ctx)
	}
	spans := e.FragmentSpans()
	if spans == nil {
		return e.sys.SolveContext(ctx)
	}
	return ss.SolveContext(ctx, e.sys, spans)
}

func (e *engine) SolveStats() constraint.SolveStats { return e.sys.Stats() }

func (e *engine) Set() *qual.Set { return e.set }

// Classify reads the solved system back as the shared report shape:
// every position classified must-const / not-const / either, with the
// paper's counters. Go declares no consts, so Declared is always zero —
// every must-const and either position is an inference.
func (e *engine) Classify(conflicts []*constraint.Unsat) *constinfer.Report {
	rep := &constinfer.Report{
		Conflicts:   conflicts,
		Functions:   len(e.funcs),
		Constraints: e.sys.NumConstraints(),
		Vars:        e.sys.NumVars(),
	}
	for _, p := range e.positions {
		v := constinfer.Either
		if p.ref.q.IsVar() {
			switch {
			case e.sys.Forced(p.ref.q.Var(), "const"):
				v = constinfer.MustConst
			case e.sys.Forbidden(p.ref.q.Var(), "const"):
				v = constinfer.MustNotConst
			}
		}
		rep.Total++
		if v == constinfer.MustConst || v == constinfer.Either {
			rep.Inferred++
		}
		rep.Positions = append(rep.Positions, constinfer.PositionResult{
			Position: constinfer.Position{
				Func:  p.fn,
				Param: p.param,
				Index: p.index,
				Depth: p.depth,
				Pos:   cfrontPos(p.pos),
			},
			Verdict: v,
		})
	}
	return rep
}

// cfrontPos converts a token.Position to the report's position type.
func cfrontPos(p token.Position) cfront.Pos {
	return cfront.Pos{File: p.Filename, Line: p.Line, Col: p.Column}
}

// pos renders a node position for constraint provenance.
func (e *engine) pos(n ast.Node) token.Position {
	if n == nil {
		return token.Position{}
	}
	return e.prog.fset.Position(n.Pos())
}

func (e *engine) why(n ast.Node, msg string) constraint.Reason {
	return constraint.Reason{Pos: e.pos(n).String(), Msg: msg}
}
