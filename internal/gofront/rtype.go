package gofront

// The θ mapping for Go (the Go analogue of constinfer's rtype.go):
// every Go variable is an updateable reference Q ref(contents), and Go
// types translate structurally into qualified ref types over the same
// constraint system.
//
//	*T, []T, [N]T, chan T  →  Q ref(θ'(T))
//	map[K]V                →  Q ref(θ'(V))       (keys are not tracked)
//	func(P...) (R...)      →  Q fn(θ'(P)...) (θ'(R)...)
//	named struct           →  Q structval with one shared ref per field
//	everything else        →  Q leaf             (basic, interface, ...)
//
// The single points-to cell per reference is the paper's
// over-approximation of aliasing: all elements of a slice share one
// cell, all values reachable through a map share one cell. Struct
// fields are shared per named type, exactly as Section 4.2 shares C
// struct fields: all values of the type agree on their field
// qualifiers, only top-level qualifiers vary per value.

import (
	"go/types"

	"repro/internal/analysis"
	"repro/internal/cfront"
	"repro/internal/constraint"
	"repro/internal/qual"
)

type rkind int

const (
	rleaf   rkind = iota // basic, interface, type parameter, invalid
	rref                 // pointer, slice, array, map, channel — one shared cell
	rfunc                // function or method signature
	rstruct              // struct value with shared field references
)

// rtype is a qualified Go ref type. q is the top-level qualifier term;
// for rref nodes it is the qualifier the const inference classifies.
type rtype struct {
	kind rkind
	q    constraint.Term

	// elem is the referent of an rref.
	elem *rtype

	// Function parts. params holds the r-value types of parameters, the
	// receiver folded in at index 0 for methods; rets holds one entry
	// per result.
	params   []*rtype
	rets     []*rtype
	variadic bool

	// Struct identity and shared field l-values.
	fields map[string]*rtype

	// spelling preserves the Go type spelling for display.
	spelling string
}

// translator builds rtypes from go/types types, sharing one struct
// value per named type.
type translator struct {
	sys   *constraint.System
	set   *qual.Set
	suite *analysis.Suite

	// structVals shares one struct value per named (or aliased-named)
	// struct type, keyed by the canonical *types.Named identity.
	structVals map[*types.Named]*rtype
	// visiting breaks recursion through non-struct named types
	// (self-referential types whose cycle does not pass through a
	// registered struct value).
	visiting map[types.Type]bool
}

func newGoTranslator(sys *constraint.System, suite *analysis.Suite) *translator {
	return &translator{
		sys:        sys,
		set:        sys.Set(),
		suite:      suite,
		structVals: map[*types.Named]*rtype{},
		visiting:   map[types.Type]bool{},
	}
}

func (tr *translator) freshQ() constraint.Term { return constraint.V(tr.sys.Fresh()) }

// newRef wraps contents in a reference with a fresh qualifier. Go has
// no source-spelled qualifiers, so every analysis's DeclQual hook sees
// the zero qualifier set (nothing seeds; taint and const both infer).
func (tr *translator) newRef(elem *rtype) *rtype {
	r := &rtype{kind: rref, q: tr.freshQ(), elem: elem}
	for _, b := range tr.suite.Bindings() {
		if h := b.A.Hooks.DeclQual; h != nil {
			h(tr.sys, b, r.q, cfront.Quals{})
		}
	}
	return r
}

func (tr *translator) leaf(spelling string) *rtype {
	return &rtype{kind: rleaf, q: tr.freshQ(), spelling: spelling}
}

// lvalue is θ: the cell of a variable of type t — a reference to the
// r-value translation.
func (tr *translator) lvalue(t types.Type) *rtype {
	return tr.newRef(tr.rvalue(t))
}

// rvalue is θ': the r-value translation of a Go type.
func (tr *translator) rvalue(t types.Type) *rtype {
	if t == nil {
		return tr.leaf("invalid")
	}
	if tr.visiting[t] {
		// A recursive type whose cycle avoids every struct value (e.g.
		// `type list *list`): sever the back edge with an opaque leaf,
		// as the C front end severs casts.
		return tr.leaf(t.String())
	}
	tr.visiting[t] = true
	defer delete(tr.visiting, t)

	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return tr.newRef(tr.rvalue(u.Elem()))
	case *types.Slice:
		return tr.newRef(tr.rvalue(u.Elem()))
	case *types.Array:
		return tr.newRef(tr.rvalue(u.Elem()))
	case *types.Map:
		return tr.newRef(tr.rvalue(u.Elem()))
	case *types.Chan:
		return tr.newRef(tr.rvalue(u.Elem()))
	case *types.Signature:
		return tr.signature(u)
	case *types.Struct:
		if named := canonicalNamed(t); named != nil {
			return tr.structVal(named, u)
		}
		// Unnamed struct literal type: a private value, fields not
		// shared across occurrences.
		return tr.newStructVal(nil, u)
	default:
		// Basic, interface, tuple, type parameter, invalid: a
		// qualifier-opaque scalar. The qualifier still flows (a tainted
		// string is a tainted leaf); the structure does not.
		return tr.leaf(t.String())
	}
}

// signature translates a function type, folding the receiver (when
// present) into params[0] so method calls constrain their receiver like
// an ordinary first argument.
func (tr *translator) signature(sig *types.Signature) *rtype {
	f := &rtype{kind: rfunc, q: tr.freshQ(), variadic: sig.Variadic()}
	if recv := sig.Recv(); recv != nil {
		f.params = append(f.params, tr.rvalue(recv.Type()))
	}
	for i := 0; i < sig.Params().Len(); i++ {
		f.params = append(f.params, tr.rvalue(sig.Params().At(i).Type()))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		f.rets = append(f.rets, tr.rvalue(sig.Results().At(i).Type()))
	}
	return f
}

// canonicalNamed unwraps aliases to the named type behind t, or nil.
func canonicalNamed(t types.Type) *types.Named {
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n
	}
	return nil
}

// structVal returns the shared struct value of a named struct type,
// creating it (and its shared field references) on first use. The value
// is registered before its fields are translated, so self-referential
// structs terminate.
func (tr *translator) structVal(named *types.Named, u *types.Struct) *rtype {
	if v, ok := tr.structVals[named]; ok {
		return v
	}
	return tr.newStructVal(named, u)
}

func (tr *translator) newStructVal(named *types.Named, u *types.Struct) *rtype {
	v := &rtype{kind: rstruct, q: tr.freshQ(), fields: map[string]*rtype{}, spelling: u.String()}
	if named != nil {
		v.spelling = named.Obj().Name()
		tr.structVals[named] = v // register before fields: recursive structs
	}
	for i := 0; i < u.NumFields(); i++ {
		f := u.Field(i)
		v.fields[f.Name()] = tr.newRef(tr.rvalue(f.Type()))
	}
	return v
}

// subtype records r-value a ≤ b. Shape mismatches (a pointer boxed into
// an interface leaf, unrelated structs) sever the relation after
// propagating the top-level qualifier — the treatment the paper gives C
// casts.
func (tr *translator) subtype(a, b *rtype, why constraint.Reason) {
	if a == nil || b == nil || a == b {
		return
	}
	switch {
	case a.kind == rref && b.kind == rref:
		tr.sys.Add(a.q, b.q, why)
		// SubRef: contents are invariant.
		tr.equal(a.elem, b.elem, why)
	case a.kind == rfunc && b.kind == rfunc:
		tr.sys.Add(a.q, b.q, why)
		for i := range a.rets {
			if i < len(b.rets) {
				tr.subtype(a.rets[i], b.rets[i], why)
			}
		}
		for i := range a.params {
			if i < len(b.params) {
				tr.subtype(b.params[i], a.params[i], why) // contravariant
			}
		}
	case a.kind == rstruct && b.kind == rstruct && sameStruct(a, b):
		// Shared fields: only the value-level qualifier relates.
		tr.sys.Add(a.q, b.q, why)
	default:
		// Severed shapes still carry their top-level qualifier: a
		// tainted slice boxed into an interface yields a tainted value.
		tr.sys.Add(a.q, b.q, why)
	}
}

// sameStruct reports whether two struct values share their field cells.
func sameStruct(a, b *rtype) bool {
	if len(a.fields) != len(b.fields) {
		return false
	}
	for name, f := range a.fields {
		if b.fields[name] != f {
			return false
		}
	}
	return true
}

// equal records a = b (both directions).
func (tr *translator) equal(a, b *rtype, why constraint.Reason) {
	if a == nil || b == nil || a == b {
		return
	}
	tr.subtype(a, b, why)
	tr.subtype(b, a, why)
}

// refPositions walks the reference spine of an r-value and returns
// every ref level with its depth — the interesting const positions of a
// parameter, and the levels the conservative library rule bounds.
func refPositions(t *rtype, depth int, out []refPos) []refPos {
	if t == nil || t.kind != rref {
		return out
	}
	out = append(out, refPos{ref: t, depth: depth})
	return refPositions(t.elem, depth+1, out)
}

type refPos struct {
	ref   *rtype
	depth int
}
