package gofront

// Call-site constraint generation: conversions, builtins, calls to
// functions defined in the corpus (monomorphic flow into the shared
// signature), and calls to imported library functions (prelude entries
// when declared, the conservative library rule otherwise).

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// call generates constraints for one call expression and returns its
// result types, padded to want entries.
func (bc *bodyCtx) call(x *ast.CallExpr, want int) []*rtype {
	en := bc.e
	fun := ast.Unparen(x.Fun)

	// Conversion: T(v). Structure is severed (the paper's cast rule);
	// the top-level qualifier is kept, so string(taintedBytes) stays
	// tainted.
	if tv, ok := bc.pkg.Info.Types[x.Fun]; ok && tv.IsType() {
		res := en.tr.rvalue(typeOf(bc.pkg, x))
		for _, arg := range x.Args {
			if rv := bc.exprR(arg); rv != nil {
				en.sys.Add(rv.q, res.q, en.why(x, "converted"))
			}
		}
		return pad([]*rtype{res}, want, en)
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := usedObject(bc.pkg, id).(*types.Builtin); ok {
			return pad(bc.builtin(x, b.Name()), want, en)
		}
	}

	// Resolve a static callee: plain function, package-qualified
	// function, or method (the receiver then becomes argument 0).
	var callee *types.Func
	var recvRV *rtype
	switch f := fun.(type) {
	case *ast.Ident:
		callee, _ = usedObject(bc.pkg, f).(*types.Func)
	case *ast.SelectorExpr:
		if sel := bc.pkg.Info.Selections[f]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				callee = fn
				recvRV = bc.exprR(f.X)
			}
		} else {
			callee, _ = usedObject(bc.pkg, f.Sel).(*types.Func)
		}
	}

	if callee != nil {
		if fi, ok := en.funcByObj[callee]; ok {
			return pad(bc.definedCall(x, fi, recvRV), want, en)
		}
		return pad(bc.libraryCall(x, callee, recvRV), want, en)
	}

	// Dynamic call through a function value (or an untracked shape).
	frv := bc.exprR(fun)
	if frv != nil && frv.kind == rfunc {
		bc.flowArgs(x, frv, nil)
		return pad(append([]*rtype(nil), frv.rets...), want, en)
	}
	return pad(bc.unknownCall(x, "indirect call"), want, en)
}

// pad extends results to want entries with fresh leaves.
func pad(out []*rtype, want int, en *engine) []*rtype {
	for len(out) < want {
		out = append(out, en.tr.leaf("result"))
	}
	return out
}

// definedCall flows arguments into the callee's shared monomorphic
// signature and returns its shared result types.
func (bc *bodyCtx) definedCall(x *ast.CallExpr, fi *funcInfo, recvRV *rtype) []*rtype {
	en := bc.e
	if recvRV != nil && len(fi.sig.params) > 0 {
		en.tr.subtype(recvRV, fi.sig.params[0], en.why(x, "receiver of call to "+fi.name))
	}
	bc.flowArgs(x, fi.sig, recvRV)
	return append([]*rtype(nil), fi.sig.rets...)
}

// flowArgs flows call arguments into an rfunc's parameters, handling
// variadic tails and `f(xs...)` spreads. recvRV non-nil means params[0]
// is the (already-flowed) receiver.
func (bc *bodyCtx) flowArgs(x *ast.CallExpr, sig *rtype, recvRV *rtype) {
	en := bc.e
	base := 0
	if recvRV != nil {
		base = 1
	}
	last := len(sig.params) - 1
	for i, arg := range x.Args {
		rv := bc.exprR(arg)
		pi := base + i
		why := en.why(arg, "passed as argument")
		switch {
		case sig.variadic && x.Ellipsis.IsValid() && pi >= last:
			// f(xs...): the slice itself flows into the variadic slot.
			en.tr.subtype(rv, sig.params[last], why)
		case sig.variadic && pi >= last && last >= 0:
			// Extra variadic argument: it becomes an element of the
			// implicit slice.
			if p := sig.params[last]; p != nil && p.kind == rref {
				en.tr.subtype(rv, p.elem, why)
			} else if rv != nil && p != nil {
				en.sys.Add(rv.q, p.q, why)
			}
		case pi < len(sig.params):
			en.tr.subtype(rv, sig.params[pi], why)
		}
	}
}

// libraryCall handles a call to a function the corpus does not define.
// Per analysis: a prelude entry speaks for the function (result
// annotations seed the call's results, parameter annotations sink the
// arguments, both at this call site), or the conservative LibRef rule
// bounds every reference level of every argument. When no analysis has
// an entry, arguments may alias results (bytes.TrimSpace returns a view
// of its argument), so every argument's top-level qualifier flows into
// every result.
func (bc *bodyCtx) libraryCall(x *ast.CallExpr, obj *types.Func, recvRV *rtype) []*rtype {
	en := bc.e
	name := preludeName(obj)

	// Evaluate arguments once, in order.
	args := make([]*rtype, len(x.Args))
	for i, arg := range x.Args {
		args[i] = bc.exprR(arg)
	}

	// Result types from the callee's declared signature.
	var rets []*rtype
	if sig, ok := obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			rets = append(rets, en.tr.rvalue(sig.Results().At(i).Type()))
		}
	}

	covered := false
	for _, b := range en.suite.Bindings() {
		ent, ok := b.Entry(name)
		if ok {
			covered = true
			for _, r := range rets {
				b.ApplyResult(en.sys, ent, r.q)
			}
			// Prelude parameter positions count declared parameters;
			// the receiver is annotated separately via "recv:".
			if recvRV != nil {
				b.ApplyRecv(en.sys, ent, recvRV.q, en.pos(x).String())
			}
			for i, rv := range args {
				if rv != nil {
					b.ApplyParam(en.sys, ent, i, rv.q, en.pos(x.Args[i]).String())
				}
			}
			continue
		}
		if b.A.Hooks.LibRef == nil {
			continue
		}
		libArgs := args
		if recvRV != nil {
			libArgs = append([]*rtype{recvRV}, args...)
		}
		for _, rv := range libArgs {
			for _, pr := range refPositions(rv, 0, nil) {
				b.A.Hooks.LibRef(en.sys, b, analysis.LibUse{
					Fn:  name,
					Pos: en.pos(x).String(),
				}, pr.ref.q)
			}
		}
	}
	if !covered {
		// No analysis speaks for the function: results may carry (or
		// alias) whatever flowed in.
		srcs := args
		if recvRV != nil {
			srcs = append([]*rtype{recvRV}, args...)
		}
		for _, rv := range srcs {
			if rv == nil {
				continue
			}
			for _, r := range rets {
				en.sys.Add(rv.q, r.q, en.why(x, "through library call to "+name))
			}
		}
	}
	return rets
}

// unknownCall is the fallback for calls with no tracked callee shape:
// evaluate arguments, apply the conservative library rule, return an
// opaque result.
func (bc *bodyCtx) unknownCall(x *ast.CallExpr, what string) []*rtype {
	en := bc.e
	res := en.tr.leaf("result")
	for _, arg := range x.Args {
		rv := bc.exprR(arg)
		if rv == nil {
			continue
		}
		en.sys.Add(rv.q, res.q, en.why(x, "through "+what))
		for _, b := range en.suite.Bindings() {
			if h := b.A.Hooks.LibRef; h != nil {
				for _, pr := range refPositions(rv, 0, nil) {
					h(en.sys, b, analysis.LibUse{Fn: what, Pos: en.pos(x).String()}, pr.ref.q)
				}
			}
		}
	}
	return []*rtype{res}
}

// builtin handles Go's predeclared functions; the mutating ones are
// write sites.
func (bc *bodyCtx) builtin(x *ast.CallExpr, name string) []*rtype {
	en := bc.e
	switch name {
	case "append":
		if len(x.Args) == 0 {
			return []*rtype{en.tr.leaf("append")}
		}
		s := bc.exprR(x.Args[0])
		if s != nil && s.kind == rref {
			bc.forbidWrite(&lval{ref: s}, en.why(x, "appended to"))
		}
		for i, arg := range x.Args[1:] {
			rv := bc.exprR(arg)
			if s == nil || s.kind != rref {
				continue
			}
			if x.Ellipsis.IsValid() && i == len(x.Args)-2 {
				en.tr.subtype(rv, s, en.why(arg, "appended (spread)"))
			} else {
				en.tr.subtype(rv, s.elem, en.why(arg, "appended"))
			}
		}
		// The result shares the argument's backing store (append may
		// or may not reallocate).
		if s != nil {
			return []*rtype{s}
		}
		return []*rtype{en.tr.leaf("append")}
	case "copy":
		if len(x.Args) == 2 {
			dst := bc.exprR(x.Args[0])
			src := bc.exprR(x.Args[1])
			if dst != nil && dst.kind == rref {
				bc.forbidWrite(&lval{ref: dst}, en.why(x, "copied into"))
				if src != nil && src.kind == rref {
					en.tr.subtype(src.elem, dst.elem, en.why(x, "copied"))
				} else if src != nil {
					en.sys.Add(src.q, dst.elem.q, en.why(x, "copied"))
				}
			}
		}
		return []*rtype{en.tr.leaf("int")}
	case "delete", "clear", "close":
		for _, arg := range x.Args {
			rv := bc.exprR(arg)
			if rv != nil && rv.kind == rref {
				bc.forbidWrite(&lval{ref: rv}, en.why(x, name+"d"))
			}
		}
		return []*rtype{en.tr.leaf(name)}
	case "new":
		return []*rtype{en.tr.rvalue(typeOf(bc.pkg, x))}
	case "make":
		for _, arg := range x.Args[1:] {
			bc.exprR(arg)
		}
		return []*rtype{en.tr.rvalue(typeOf(bc.pkg, x))}
	case "min", "max":
		res := en.tr.leaf(name)
		for _, arg := range x.Args {
			if rv := bc.exprR(arg); rv != nil {
				en.sys.Add(rv.q, res.q, en.why(arg, "operand of "+name))
			}
		}
		return []*rtype{res}
	default:
		// len, cap, panic, recover, print, println, complex, real,
		// imag, unsafe.*: evaluate arguments, opaque result.
		for _, arg := range x.Args {
			bc.exprR(arg)
		}
		return []*rtype{en.tr.leaf(name)}
	}
}

// constrainGlobal flows a package-level initializer into the already
// prepared global cells.
func (e *engine) constrainGlobal(gv globalVar) {
	bc := &bodyCtx{e: e, pkg: gv.pkg, fi: &funcInfo{name: gv.pkg.Path + ".init", pkg: gv.pkg, sig: &rtype{kind: rfunc, q: e.tr.freshQ()}}}
	vs := gv.spec
	var rvs []*rtype
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		rvs = bc.exprMulti(vs.Values[0], len(vs.Names))
	} else {
		for _, v := range vs.Values {
			rvs = append(rvs, bc.exprR(v))
		}
	}
	for i, name := range vs.Names {
		obj := gv.pkg.Info.Defs[name]
		if obj == nil || name.Name == "_" || i >= len(rvs) {
			continue
		}
		if cell, ok := e.env[obj]; ok {
			e.tr.subtype(rvs[i], cell.elem, e.why(name, "initialization of "+name.Name))
		}
	}
}
