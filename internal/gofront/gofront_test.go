package gofront_test

// End-to-end tests of the Go front end through the shared driver
// pipeline: golden translation verdicts for the core language shapes,
// the seeded taint examples, byte-determinism across worker counts,
// and a fuzzer over the parse→constrain path.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/driver"
	_ "repro/internal/gofront"
)

// runGo pushes in-memory Go sources through the full pipeline.
func runGo(t *testing.T, cfg driver.Config, files map[string]string) *driver.Result {
	t.Helper()
	cfg.Lang = "go"
	var srcs []driver.Source
	for name, text := range files {
		srcs = append(srcs, driver.TextSource(name, text))
	}
	res, err := driver.Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// positionDump renders a report's positions as one line each, with the
// cwd-dependent package-path prefix stripped so the golden strings are
// stable.
func positionDump(res *driver.Result) []string {
	var out []string
	for _, p := range res.Report.Positions {
		fn := p.Func[strings.LastIndex(p.Func, "/")+1:]
		if i := strings.Index(fn, "."); i >= 0 {
			fn = fn[i+1:]
		}
		out = append(out, fmt.Sprintf("%s %s %d %d %s", fn, p.Param, p.Index, p.Depth, p.Verdict))
	}
	return out
}

// TestGoldenTranslation pins the θ translation of the core Go shapes:
// each snippet's positions must classify exactly as listed. A position
// is "not-const" when some path writes through the reference, "either"
// when no constraint forces a write — the paper's Table 2 verdicts,
// computed for Go.
func TestGoldenTranslation(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{"pointer-read-write", `package p
func get(p *int) int { return *p }
func put(p *int) { *p = 1 }
`, []string{
			"get p 0 0 either",
			"put p 0 0 not-const",
		}},
		{"call-propagation", `package p
func put(p *int) { *p = 1 }
func wrap(p *int) { put(p) }
func reads(p *int) int { return *p + *p }
`, []string{
			"put p 0 0 not-const",
			"wrap p 0 0 not-const",
			"reads p 0 0 either",
		}},
		{"method-receiver", `package p
type Buf struct{ n int }
func (b *Buf) Inc() { b.n++ }
func (b *Buf) Len() int { return b.n }
`, []string{
			"Buf.Inc b 0 0 not-const",
			"Buf.Len b 0 0 either",
		}},
		{"slice-and-append", `package p
func fill(s []int) { s[0] = 1 }
func sum(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
func grow(s []int) []int { return append(s, 1) }
`, []string{
			"fill s 0 0 not-const",
			"sum s 0 0 either",
			"grow s 0 0 not-const",
			"grow  -1 0 either",
		}},
		{"map", `package p
func index(m map[string]int, k string) int { return m[k] }
func store(m map[string]int, k string) { m[k] = 1 }
`, []string{
			"index m 0 0 either",
			"store m 0 0 not-const",
		}},
		{"struct-fields", `package p
type pair struct{ a, b *int }
func mutate(x *pair) { *x.a = 1 }
func observe(y *pair) int { return *y.b }
func assignField(z *pair) { z.a = nil }
`, []string{
			// Writing *x.a goes through the field's own reference, not
			// x's (a const struct pointer still permits it, as in C);
			// assigning the field itself writes through z.
			"mutate x 0 0 either",
			"observe y 0 0 either",
			"assignField z 0 0 not-const",
		}},
		{"double-pointer", `package p
func deep(pp **int) { **pp = 1 }
`, []string{
			"deep pp 0 0 either",
			"deep pp 0 1 not-const",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := runGo(t, driver.Config{}, map[string]string{"p.go": c.src})
			if res.HasErrors() {
				t.Fatalf("unexpected errors: %v", res.Diagnostics)
			}
			got := positionDump(res)
			if len(got) != len(c.want) {
				t.Fatalf("positions = %q, want %q", got, c.want)
			}
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Errorf("position %d = %q, want %q", i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestGoConstConflict pins that writing through a position another
// constraint forces const is a solver conflict with a flow trace, for
// Go sources.
func TestGoConstConflict(t *testing.T) {
	// No Go spelling declares const, so force a conflict through taint
	// instead: the dirty example below covers the conflict path. Here,
	// pin that a clean corpus solves with zero conflicts.
	res := runGo(t, driver.Config{}, map[string]string{"p.go": `package p
func id(p *int) *int { return p }
`})
	if res.HasErrors() {
		t.Fatalf("clean corpus reported errors: %v", res.Diagnostics)
	}
	if len(res.Report.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", res.Report.Conflicts)
	}
}

// TestGoTaintExamples runs the seeded examples/go-taint corpus: the
// dirty twin must report both injection flows with multi-hop traces,
// the clean twin none.
func TestGoTaintExamples(t *testing.T) {
	cfg := driver.Config{
		Lang:     "go",
		Analyses: []string{"taint"},
		Preludes: []driver.PreludeFile{loadPrelude(t, "../../examples/go-taint/go.q")},
	}

	dirty, err := driver.Run(cfg, []driver.Source{{Path: "../../examples/go-taint/dirty"}})
	if err != nil {
		t.Fatal(err)
	}
	var conflicts []string
	for _, d := range dirty.Diagnostics {
		if d.Code == "qualifier-conflict" {
			conflicts = append(conflicts, d.String())
		}
	}
	if len(conflicts) != 2 {
		t.Fatalf("dirty twin: got %d conflicts, want 2:\n%s", len(conflicts), strings.Join(conflicts, "\n"))
	}
	all := strings.Join(conflicts, "\n")
	for _, want := range []string{
		`argument 1 of "sql.DB.Query" must be untainted`,
		`argument 3 of "exec.Command" must be untainted`,
		`result of "http.Request.FormValue" is tainted (prelude`,
		"flow:",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("dirty conflicts missing %q:\n%s", want, all)
		}
	}

	clean, err := driver.Run(cfg, []driver.Source{{Path: "../../examples/go-taint/clean"}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.HasErrors() {
		t.Fatalf("clean twin reported conflicts: %v", clean.Diagnostics)
	}
}

func loadPrelude(t *testing.T, path string) driver.PreludeFile {
	t.Helper()
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return driver.PreludeFile{Path: path, Text: string(text)}
}

// TestGoJobsDeterminism pins byte-identical output at every worker
// count: the Go engine generates constraints sequentially in source
// order, so the report must not depend on -jobs.
func TestGoJobsDeterminism(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a
type node struct{ next *node; v int }
func sum(n *node) int {
	t := 0
	for n != nil {
		t += n.v
		n = n.next
	}
	return t
}
func zero(n *node) {
	for n != nil {
		n.v = 0
		n = n.next
	}
}
`,
		"b/b.go": `package b
func reverse(s []byte) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
func count(s []byte, c byte) int {
	n := 0
	for _, b := range s {
		if b == c {
			n++
		}
	}
	return n
}
`,
	}
	var base []byte
	for _, jobs := range []int{1, 2, 8} {
		res := runGo(t, driver.Config{Jobs: jobs}, files)
		if res.HasErrors() {
			t.Fatalf("jobs=%d: errors: %v", jobs, res.Diagnostics)
		}
		buf, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = buf
			continue
		}
		if string(buf) != string(base) {
			t.Errorf("jobs=%d report differs:\n%s\nvs jobs=1:\n%s", jobs, buf, base)
		}
	}
}

// FuzzGoFront feeds arbitrary source text through parse, type-check,
// and constraint generation: the front end must diagnose, never panic.
func FuzzGoFront(f *testing.F) {
	f.Add("package p\nfunc f(p *int) { *p = 1 }\n")
	f.Add("package p\nfunc g(s []int) int { return s[0] }\n")
	f.Add("package p\ntype T struct{ x *T }\nfunc h(t *T) *T { return t.x }\n")
	f.Add("package p\nfunc v(xs ...string) string { return xs[0] }\nfunc c() string { return v(\"a\", \"b\") }\n")
	f.Add("package p\nimport \"strings\"\nfunc u(s string) string { return strings.ToUpper(s) }\n")
	f.Add("package p\nfunc bad( {")
	f.Add("package p\nvar x undefinedIdent\n")
	f.Add("package p\nfunc cl() func() int { n := 0; return func() int { n++; return n } }\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		res, err := driver.Run(driver.Config{Lang: "go", Jobs: 1},
			[]driver.Source{driver.TextSource("fuzz.go", src)})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	})
}
